// Counters: near-data compute on a CoRM node. Two small services that are
// painful over plain remote memory — a token-bucket rate limiter and a
// score leaderboard — become one round trip per operation with the
// pushdown atomics: FetchAdd and CAS execute on the server under the
// object's block lock, so concurrent clients never interleave a
// read-modify-write, and compaction can move the counters mid-run without
// anyone noticing.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"corm"
)

func main() {
	srv, err := corm.NewServer(corm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := srv.ConnectLocal()
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	rateLimiter(cli)
	leaderboard(srv, cli)
}

// rateLimiter implements a fixed-window limiter: one 8-byte counter per
// client window, incremented with a single pushdown FetchAdd. The pre-add
// value decides admission — no read, no lock, no lost updates even with
// every API gateway instance hammering the same counter.
func rateLimiter(cli *corm.Client) {
	const limit = 100 // requests per window

	ctr, err := cli.Alloc(8)
	if err != nil {
		log.Fatal(err)
	}
	if err := cli.Write(&ctr, make([]byte, 8)); err != nil {
		log.Fatal(err)
	}

	allow := func() bool {
		n, err := cli.FetchAdd(&ctr, 0, 1)
		if err != nil {
			log.Fatal(err)
		}
		return n < limit // n is the pre-add count in this window
	}

	// 32 goroutines race 150 requests against a limit of 100: exactly 100
	// are admitted, because every admission decision is one atomic
	// server-side increment.
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, rejected := 0, 0
	requests := make(chan struct{}, 150)
	for i := 0; i < 150; i++ {
		requests <- struct{}{}
	}
	close(requests)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range requests {
				ok := allow()
				mu.Lock()
				if ok {
					admitted++
				} else {
					rejected++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("rate limiter: %d admitted, %d rejected (limit %d)\n", admitted, rejected, limit)
}

// leaderboard keeps a per-player record {score u64, best u64}: score moves
// by FetchAdd; best is maintained with a CAS loop (a conditional max has
// no single-opcode form, but the CAS retries server-side state, never a
// stale client cache). A filtered scan then pulls every player above a
// cutoff in one round trip.
func leaderboard(srv *corm.Server, cli *corm.Client) {
	players := []string{"ana", "bo", "cy", "dee"}
	addrs := make(map[string]*corm.Addr, len(players))
	for _, p := range players {
		a, err := cli.Alloc(16)
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.Write(&a, make([]byte, 16)); err != nil {
			log.Fatal(err)
		}
		addrs[p] = &a
	}

	// award adds points and folds the new total into the best-ever slot.
	award := func(player string, points int64) {
		a := addrs[player]
		old, err := cli.FetchAdd(a, 0, points)
		if err != nil {
			log.Fatal(err)
		}
		total := old + uint64(points)
		for {
			buf := make([]byte, 16)
			if _, err := cli.Read(a, buf); err != nil {
				log.Fatal(err)
			}
			best := le64(buf[8:])
			if best >= total {
				return
			}
			err := cli.CAS(a, 8, buf[8:16], le64b(total))
			if err == nil {
				return
			}
			if !errors.Is(err, corm.ErrConflict) {
				log.Fatal(err)
			}
			// Someone else raised best meanwhile; re-read and re-check.
		}
	}

	var wg sync.WaitGroup
	for i, p := range players {
		wg.Add(1)
		go func(p string, pts int64) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				award(p, pts)
			}
		}(p, int64(i+1))
	}
	wg.Wait()

	// Compaction mid-workload is invisible to the atomics.
	srv.Compact()

	// One filtered scan returns every player with score > 60 — the
	// predicate runs next to the data, so only matches cross the wire.
	matches, err := cli.ScanWhere(int(addrs["ana"].Class()), corm.PredGtU64, 0, le64b(60), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leaderboard: %d players above 60:\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  score=%-4d best=%d\n", le64(m.Payload), le64(m.Payload[8:]))
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func le64b(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}
