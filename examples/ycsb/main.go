// ycsb: a YCSB-style benchmark against a CoRM node over real TCP. It
// spawns a server in-process (or targets -connect), loads a keyed object
// population, then drives concurrent closed-loop clients with a
// configurable key distribution and read:write mix — the workload of
// §4.2.2, on the wire instead of in the simulator.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"corm"
	"corm/internal/workload"
)

func main() {
	connect := flag.String("connect", "", "existing server address (empty: spawn in-process)")
	objects := flag.Int("objects", 50_000, "population size")
	size := flag.Int("size", 32, "object size in bytes")
	clients := flag.Int("clients", 4, "concurrent clients")
	dist := flag.String("dist", "zipf", "key distribution: zipf or uniform")
	theta := flag.Float64("theta", 0.99, "zipf skew")
	reads := flag.Int("reads", 95, "read percentage (writes = 100-reads)")
	oneSided := flag.Bool("onesided", true, "reads use emulated one-sided RDMA")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	flag.Parse()

	addr := *connect
	if addr == "" {
		srv, err := corm.NewServer(corm.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addr, err = srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spawned in-process server on %s\n", addr)
	}

	// Load phase.
	loader, err := corm.Connect(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer loader.Close()
	pop := make([]corm.Addr, *objects)
	payload := make([]byte, *size)
	start := time.Now()
	for i := range pop {
		a, err := loader.Alloc(*size)
		if err != nil {
			log.Fatal(err)
		}
		if err := loader.Write(&a, payload); err != nil {
			log.Fatal(err)
		}
		pop[i] = a
	}
	fmt.Printf("loaded %d x %d B objects in %v\n", *objects, *size, time.Since(start).Round(time.Millisecond))

	d := workload.DistZipf
	if *dist == "uniform" {
		d = workload.DistUniform
	}
	mix := workload.Mix{Read: *reads, Write: 100 - *reads}

	var ops, readOps, writeOps, failures int64
	var wg sync.WaitGroup
	stop := time.Now().Add(*duration)
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := corm.Connect(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			gen := workload.NewYCSB(int64(c)*7919+1, uint64(len(pop)), d, *theta, mix)
			buf := make([]byte, *size)
			for time.Now().Before(stop) {
				op, key := gen.Next()
				a := pop[key] // private copy; corrections stay local
				if op == workload.OpWrite {
					if err := cli.Write(&a, payload); err != nil {
						log.Fatal(err)
					}
					atomic.AddInt64(&writeOps, 1)
				} else if *oneSided {
					_, err := cli.SmartRead(&a, buf)
					if errors.Is(err, corm.ErrInconsistent) {
						atomic.AddInt64(&failures, 1)
						continue
					}
					if err != nil {
						log.Fatal(err)
					}
					atomic.AddInt64(&readOps, 1)
				} else {
					if _, err := cli.Read(&a, buf); err != nil {
						log.Fatal(err)
					}
					atomic.AddInt64(&readOps, 1)
				}
				atomic.AddInt64(&ops, 1)
			}
		}()
	}
	wg.Wait()

	secs := duration.Seconds()
	fmt.Printf("%s %s %d%%:%d%% | %d clients | %.0f ops/s (%.0f reads/s, %.0f writes/s, %d failed reads)\n",
		d, fmtTheta(d, *theta), *reads, 100-*reads, *clients,
		float64(ops)/secs, float64(readOps)/secs, float64(writeOps)/secs, failures)
}

func fmtTheta(d workload.Dist, theta float64) string {
	if d == workload.DistZipf {
		return fmt.Sprintf("(theta=%.2f)", theta)
	}
	return ""
}
