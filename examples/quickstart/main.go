// Quickstart: the Table 2 API end to end on an in-process CoRM node —
// allocate, write, read (RPC and one-sided), compact, observe pointer
// correction, release, free.
package main

import (
	"errors"
	"fmt"
	"log"

	"corm"
)

func main() {
	srv, err := corm.NewServer(corm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	cli, err := srv.ConnectLocal()
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Alloc returns a 128-bit pointer: virtual address + offset hint,
	// object ID, r_key, size class.
	addr, err := cli.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated 64 B object: %v\n", addr)

	if err := cli.Write(&addr, []byte("hello, compactable remote memory")); err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, 64)
	if _, err := cli.Read(&addr, buf); err != nil { // RPC read
		log.Fatal(err)
	}
	fmt.Printf("RPC read:       %q\n", trim(buf))

	if _, err := cli.DirectRead(&addr, buf); err != nil { // one-sided read
		log.Fatal(err)
	}
	fmt.Printf("one-sided read: %q\n", trim(buf))

	// Fragment the store: fill blocks, then free most objects, so
	// compaction has something to do.
	var extras []corm.Addr
	for i := 0; i < 1024; i++ {
		a, err := cli.Alloc(64)
		if err != nil {
			log.Fatal(err)
		}
		extras = append(extras, a)
	}
	for i := range extras {
		if i%16 != 0 {
			if err := cli.Free(&extras[i]); err != nil {
				log.Fatal(err)
			}
		}
	}

	before := srv.ActiveBytes()
	report := srv.Compact()
	fmt.Printf("compaction: %d blocks freed, %d objects moved, active %d -> %d KiB\n",
		report.BlocksFreed, report.ObjectsMoved, before>>10, srv.ActiveBytes()>>10)

	// Our pointer may now be indirect: a plain DirectRead tells us, and
	// ScanRead (or SmartRead) fixes the pointer in place.
	_, err = cli.DirectRead(&addr, buf)
	switch {
	case err == nil:
		fmt.Println("pointer survived compaction directly")
	case errors.Is(err, corm.ErrWrongObject):
		if _, err := cli.ScanRead(&addr, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pointer corrected by ScanRead -> %v\n", addr)
	default:
		log.Fatal(err)
	}
	fmt.Printf("read after compaction: %q\n", trim(buf))

	// Tell the node every copy of the old pointer is gone, so the old
	// virtual address can be reused (§3.3).
	if err := cli.ReleasePtr(&addr); err != nil {
		log.Fatal(err)
	}
	if err := cli.Free(&addr); err != nil {
		log.Fatal(err)
	}
	fmt.Println("released and freed; done")
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
