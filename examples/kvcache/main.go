// kvcache: an LRU caching service built on CoRM — the redis-mem-t2
// scenario of the paper (§4.4.3). The cache stores keys and values as CoRM
// objects; evictions free them. LRU churn across size classes fragments
// the node's memory, and periodic compaction reclaims it while every
// cached pointer keeps working.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"corm"
)

// cacheEntry holds the CoRM pointers of one key/value pair.
type cacheEntry struct {
	key     string
	valAddr corm.Addr
	size    int
	prev    *cacheEntry
	next    *cacheEntry
}

// lruCache is a capacity-bounded LRU over CoRM memory.
type lruCache struct {
	cli      *corm.Client
	capacity int64
	used     int64
	items    map[string]*cacheEntry
	head     *cacheEntry // most recent
	tail     *cacheEntry // least recent
}

func newLRU(cli *corm.Client, capacity int64) *lruCache {
	return &lruCache{cli: cli, capacity: capacity, items: make(map[string]*cacheEntry)}
}

// Put stores value under key, evicting least-recently-used entries as
// needed. The value lives in CoRM memory.
func (c *lruCache) Put(key string, value []byte) error {
	if old, ok := c.items[key]; ok {
		if err := c.evict(old); err != nil {
			return err
		}
	}
	addr, err := c.cli.Alloc(len(value))
	if err != nil {
		return err
	}
	if err := c.cli.Write(&addr, value); err != nil {
		return err
	}
	e := &cacheEntry{key: key, valAddr: addr, size: len(value)}
	c.items[key] = e
	c.pushFront(e)
	c.used += int64(e.size)
	for c.used > c.capacity && c.tail != nil {
		victim := c.tail
		if err := c.evict(victim); err != nil {
			return err
		}
	}
	return nil
}

// Get fetches a value with a one-sided read, falling back to ScanRead
// (pointer correction) when compaction moved it.
func (c *lruCache) Get(key string) ([]byte, bool, error) {
	e, ok := c.items[key]
	if !ok {
		return nil, false, nil
	}
	classSize, err := c.cli.ClassSize(e.valAddr)
	if err != nil {
		return nil, false, err
	}
	buf := make([]byte, classSize)
	if _, err := c.cli.SmartRead(&e.valAddr, buf); err != nil {
		return nil, false, err
	}
	c.remove(e)
	c.pushFront(e)
	return buf[:e.size], true, nil
}

func (c *lruCache) evict(e *cacheEntry) error {
	c.remove(e)
	delete(c.items, e.key)
	c.used -= int64(e.size)
	return c.cli.Free(&e.valAddr)
}

func (c *lruCache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func main() {
	cfg := corm.DefaultConfig()
	cfg.FragThreshold = 1.3
	srv, err := corm.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := srv.ConnectLocal()
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	cache := newLRU(cli, 4<<20) // 4 MiB cache
	rng := rand.New(rand.NewSource(42))

	// Phase 1: small values (like redis-mem-t2's 150-byte phase).
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("user:%06d", i)
		if err := cache.Put(key, make([]byte, 150)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after small-value phase: %d entries, %s active server memory\n",
		len(cache.items), mib(srv.ActiveBytes()))

	// Phase 2: overwrite a random 60% of the keys with larger values. Each
	// overwrite frees a 150-byte object at a random position — scattered
	// holes the allocator cannot reclaim block-wise — and allocates into
	// the 300-byte class: the classic fragmentation spike of §2.1.2.
	for i := 0; i < 12000; i++ {
		key := fmt.Sprintf("user:%06d", rng.Intn(20000))
		if err := cache.Put(key, make([]byte, 300)); err != nil {
			log.Fatal(err)
		}
	}
	before := srv.ActiveBytes()
	fmt.Printf("after churn: %d entries, %s active (fragmented)\n",
		len(cache.items), mib(before))

	// Compact: the cache's pointers survive; memory shrinks.
	report := srv.Compact()
	fmt.Printf("compaction freed %d blocks (%d objects moved): %s -> %s\n",
		report.BlocksFreed, report.ObjectsMoved, mib(before), mib(srv.ActiveBytes()))

	// Verify a random sample of cached entries still reads correctly.
	hits, corrected := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("user:%06d", rng.Intn(20000))
		entry := cache.items[key]
		if entry == nil {
			continue
		}
		wasIndirect := entry.valAddr.HasFlag(corm.FlagIndirect)
		v, ok, err := cache.Get(key)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			hits++
			if len(v) != entry.size {
				log.Fatalf("wrong value size %d", len(v))
			}
			if !wasIndirect && entry.valAddr.HasFlag(corm.FlagIndirect) {
				corrected++
			}
		}
	}
	fmt.Printf("verified %d cache hits after compaction (%d pointers corrected in place)\n",
		hits, corrected)
}

func mib(n int64) string { return fmt.Sprintf("%.2f MiB", float64(n)/float64(1<<20)) }
