// cluster: a three-node CoRM deployment behaving as one logical memory —
// the DSM scenario of the paper's introduction. Keys spread over nodes by
// rendezvous hashing; each node fragments and compacts independently, and
// no client pointer ever breaks.
package main

import (
	"fmt"
	"log"

	"corm"
)

func main() {
	// Spin three nodes on loopback TCP.
	var addrs []string
	var servers []*corm.Server
	for i := 0; i < 3; i++ {
		srv, err := corm.NewServer(corm.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr)
	}
	fmt.Printf("cluster of %d nodes: %v\n", len(addrs), addrs)

	pool, err := corm.DialCluster(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	kv := corm.NewKV(pool)

	// Load a keyed working set; rendezvous hashing spreads it.
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("session:%05d", i)
		if err := kv.Put(key, []byte(fmt.Sprintf("payload for %s", key))); err != nil {
			log.Fatal(err)
		}
	}
	for i, srv := range servers {
		fmt.Printf("node %d: %d allocations, %d KiB active\n",
			i, srv.Stats().Allocs, srv.ActiveBytes()>>10)
	}

	// Churn: overwrite two thirds of the keys with larger values, leaving
	// scattered holes on every node.
	for i := 0; i < 3000; i += 3 {
		for _, j := range []int{i, i + 1} {
			key := fmt.Sprintf("session:%05d", j)
			if err := kv.Put(key, make([]byte, 200)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Compact every node; cluster clients never notice.
	var totalFreed int
	var before, after int64
	for _, srv := range servers {
		before += srv.ActiveBytes()
		r := srv.Compact()
		totalFreed += r.BlocksFreed
		after += srv.ActiveBytes()
	}
	fmt.Printf("compacted all nodes: %d blocks freed, %d KiB -> %d KiB\n",
		totalFreed, before>>10, after>>10)

	// Every key still resolves (SmartRead repairs moved pointers).
	checked := 0
	for i := 0; i < 3000; i += 7 {
		key := fmt.Sprintf("session:%05d", i)
		if _, ok, err := kv.Get(key); err != nil || !ok {
			log.Fatalf("key %s lost after compaction: %v", key, err)
		}
		checked++
	}
	fmt.Printf("verified %d keys across the cluster after compaction\n", checked)
}
