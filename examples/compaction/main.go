// compaction: the allocation-spike scenario of §2.1.2/§4.4.2 under four
// compaction strategies side by side — none (FaRM), Mesh (offset
// conflicts), CoRM-8 and CoRM-16 (random object IDs) — reporting active
// memory against the ideal compactor. This is a miniature of the paper's
// Figure 17.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"corm"
	"corm/internal/core"
)

const (
	objectSize = 2048
	objects    = 200_000
	deallocate = 0.75
	blockBytes = 1 << 20 // 1 MiB blocks, as FaRM uses
)

func main() {
	fmt.Printf("allocation spike: %d objects x %d B, then %.0f%% random deallocation\n",
		objects, objectSize, deallocate*100)
	fmt.Printf("%-22s %12s %12s\n", "strategy", "active", "vs ideal")

	ideal := idealBytes()
	fmt.Printf("%-22s %12s %12s\n", "ideal compactor", mib(ideal), "1.00x")

	for _, v := range []struct {
		name     string
		strategy corm.Strategy
		idBits   int
	}{
		{"none (FaRM)", corm.StrategyNone, 0},
		{"Mesh (offsets)", corm.StrategyMesh, 0},
		{"CoRM-8", corm.StrategyCoRM, 8},
		{"CoRM-16", corm.StrategyCoRM, 16},
	} {
		active := runStrategy(v.strategy, v.idBits)
		fmt.Printf("%-22s %12s %11.2fx\n", v.name, mib(active), float64(active)/float64(ideal))
	}
}

// runStrategy replays the spike on a store with the given strategy and
// compacts to quiescence.
func runStrategy(strategy corm.Strategy, idBits int) int64 {
	cfg := corm.Config{
		Workers:    8,
		BlockBytes: blockBytes,
		Strategy:   strategy,
		IDBits:     idBits,
		DataBacked: false, // accounting mode: no payload bytes needed
		Remap:      corm.RemapRereg,
	}
	srv, err := corm.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	store := srv.Store()

	rng := rand.New(rand.NewSource(7))
	addrs := make([]corm.Addr, 0, objects)
	for i := 0; i < objects; i++ {
		r, err := store.AllocOn(rng.Intn(cfg.Workers), objectSize)
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, r.Addr)
	}
	for _, idx := range rng.Perm(objects)[:int(deallocate*objects)] {
		if err := store.Free(&addrs[idx]); err != nil {
			log.Fatal(err)
		}
	}

	// Compact every class until no block is freed anymore.
	for {
		freed := 0
		for class := range store.Config().Classes {
			r := store.CompactClass(core.CompactOptions{
				Class: class, Leader: 0, MaxOccupancy: core.Occ(0.95), MaxAttempts: 16,
			})
			freed += r.BlocksFreed
		}
		if freed == 0 {
			break
		}
	}
	return srv.ActiveBytes()
}

// idealBytes is the perfectly packed footprint: live payloads, no waste.
func idealBytes() int64 {
	live := int64(objects - int(deallocate*objects))
	perBlock := int64(blockBytes / objectSize)
	blocks := (live + perBlock - 1) / perBlock
	return blocks * blockBytes
}

func mib(n int64) string { return fmt.Sprintf("%.1f MiB", float64(n)/float64(1<<20)) }
