package corm

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestPublicAPILocal(t *testing.T) {
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := srv.ConnectLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	addr, err := cli.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 64)
	if err := cli.Write(&addr, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := cli.DirectRead(&addr, buf); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("DirectRead: %v", err)
	}
	if err := cli.Free(&addr); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Read(&addr, buf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after free: %v", err)
	}
}

func TestPublicAPITCP(t *testing.T) {
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ptr, err := cli.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x11}, 256)
	if err := cli.Write(&ptr, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := cli.SmartRead(&ptr, buf); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("SmartRead over TCP: %v", err)
	}
}

func TestPublicCompaction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FragThreshold = 1.5
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, _ := srv.ConnectLocal()
	defer cli.Close()

	var addrs []Addr
	for i := 0; i < 512; i++ {
		a, err := cli.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	perBlock := make(map[uint64]int)
	var live []Addr
	for _, a := range addrs {
		base := a.VAddr() &^ uint64(cfg.BlockBytes-1)
		if perBlock[base] < 2 {
			perBlock[base]++
			live = append(live, a)
			continue
		}
		aa := a
		if err := cli.Free(&aa); err != nil {
			t.Fatal(err)
		}
	}
	before := srv.ActiveBytes()
	rep := srv.Compact()
	if rep.BlocksFreed == 0 {
		t.Fatalf("compaction freed nothing: %+v", rep)
	}
	if srv.ActiveBytes() >= before {
		t.Fatal("active memory did not drop")
	}
	for i := range live {
		buf := make([]byte, 64)
		if _, err := cli.SmartRead(&live[i], buf); err != nil {
			t.Fatalf("object lost after public Compact: %v", err)
		}
	}
}

func TestCompactionLoop(t *testing.T) {
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stop := CompactionLoop(srv, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stop()
}
