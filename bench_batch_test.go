// Batched-operation benchmarks: the same TCP read hot path as
// BenchmarkRPCThroughputParallel, but issued through Client.MultiRead so N
// sub-reads share one frame, one syscall pair, and one pending-call entry.
// b.N counts sub-reads (the loop advances by the batch width), so ops/s and
// allocs/op are directly comparable with the single-op numbers in
// bench_results.txt.
package corm

import (
	"fmt"
	"testing"

	"corm/internal/core"
)

// benchBatchClient starts a TCP node and a full client context against it
// with `count` written 64-byte objects.
func benchBatchClient(b *testing.B, count int) (*Client, []*core.Addr) {
	b.Helper()
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	cli, err := Connect(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	payload := make([]byte, 64)
	addrs := make([]*core.Addr, count)
	for i := range addrs {
		a, err := cli.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := cli.Write(&a, payload); err != nil {
			b.Fatal(err)
		}
		addrs[i] = &a
	}
	return cli, addrs
}

// BenchmarkMultiReadBatch measures batched RPC reads over TCP at increasing
// batch widths. batch=1 pays the full per-frame cost per read (the
// single-op baseline plus batch framing); wider batches amortize it.
func BenchmarkMultiReadBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			cli, addrs := benchBatchClient(b, batch)
			bufs := make([][]byte, batch)
			for i := range bufs {
				bufs[i] = make([]byte, 64)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				n := batch
				if rem := b.N - i; rem < n {
					n = rem
				}
				results, err := cli.MultiRead(addrs[:n], bufs[:n])
				if err != nil {
					b.Fatal(err)
				}
				for k := range results {
					if results[k].Err != nil {
						b.Fatal(results[k].Err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkReadAsyncPipelined measures the future-based facade: a window of
// in-flight ReadAsync calls that the client-side batcher coalesces into
// OpBatch frames, waited in issue order.
func BenchmarkReadAsyncPipelined(b *testing.B) {
	const window = 64
	cli, addrs := benchBatchClient(b, window)
	bufs := make([][]byte, window)
	futs := make([]*Future, window)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += window {
		n := window
		if rem := b.N - i; rem < n {
			n = rem
		}
		for k := 0; k < n; k++ {
			futs[k] = cli.ReadAsync(addrs[k], bufs[k])
		}
		cli.Flush()
		for k := 0; k < n; k++ {
			if _, err := futs[k].Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
