//go:build !race

package corm

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
