// Wire-path benchmarks: the zero-copy transport measured both over the
// shared-memory fast path (what a co-located client actually gets, since
// Dial auto-selects it) and with shared memory disabled (TCP loopback, the
// apples-to-apples comparison against the pre-writev numbers in
// bench_results.txt). The alloc-budget tests pin the zero-copy claims as
// hard regressions: DirectRead stays within 4 allocs/op and a batch=128
// MultiRead amortizes to zero allocations per sub-read.
package corm

import (
	"testing"

	"corm/internal/client"
	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/transport"
)

// wireVariants runs a sub-benchmark per transport selection: shm (the
// auto-selected same-process fast path) and tcp (loopback socket).
var wireVariants = []struct {
	name       string
	disableSHM bool
}{
	{"shm", false},
	{"tcp", true},
}

// benchWireConn starts a TCP-listening node and one raw transport.Conn.
func benchWireConn(b *testing.B, disableSHM bool) *transport.Conn {
	b.Helper()
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	conn, err := transport.DialOptions(addr, transport.Options{DisableSharedMemory: disableSHM})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		conn.Close()
		srv.Close()
	})
	return conn
}

// benchWireClient starts a node and a full client context with count
// written 64-byte objects, over the selected wire.
func benchWireClient(b *testing.B, disableSHM bool, count int) (*Client, []*core.Addr) {
	b.Helper()
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	cli, err := client.CreateCtxOptions(addr, transport.Options{DisableSharedMemory: disableSHM})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	payload := make([]byte, 64)
	addrs := make([]*core.Addr, count)
	for i := range addrs {
		a, err := cli.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := cli.Write(&a, payload); err != nil {
			b.Fatal(err)
		}
		addrs[i] = &a
	}
	return cli, addrs
}

// BenchmarkWireRPC is the single-op RPC read latency over each wire — the
// headline number tracked in BENCH_wire.json.
func BenchmarkWireRPC(b *testing.B) {
	for _, v := range wireVariants {
		b.Run(v.name, func(b *testing.B) {
			conn := benchWireConn(b, v.disableSHM)
			resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
			if err != nil || resp.Status != rpc.StatusOK {
				b.Fatalf("alloc: %v %v", resp.Status, err)
			}
			addr := resp.Addr
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := conn.Call(rpc.Request{Op: rpc.OpRead, Addr: addr, Size: 64})
				if err != nil {
					b.Fatal(err)
				}
				if resp.Status != rpc.StatusOK {
					b.Fatal(resp.Status)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkWireDirectRead is the single-op emulated one-sided read over
// each wire, landing in the registered receive ring.
func BenchmarkWireDirectRead(b *testing.B) {
	for _, v := range wireVariants {
		b.Run(v.name, func(b *testing.B) {
			conn := benchWireConn(b, v.disableSHM)
			resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
			if err != nil || resp.Status != rpc.StatusOK {
				b.Fatalf("alloc: %v %v", resp.Status, err)
			}
			addr := resp.Addr
			buf := make([]byte, core.DataStride(64))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.DirectRead(addr.RKey(), addr.VAddr(), buf); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkWireMultiRead128 is the 1-core batched read path: 128 sub-reads
// per frame, decoded straight out of the receive lease. b.N counts
// sub-reads, so ns/op and the sub-reads/s metric compare directly with the
// single-op numbers.
func BenchmarkWireMultiRead128(b *testing.B) {
	const batch = 128
	for _, v := range wireVariants {
		b.Run(v.name, func(b *testing.B) {
			cli, addrs := benchWireClient(b, v.disableSHM, batch)
			bufs := make([][]byte, batch)
			for i := range bufs {
				bufs[i] = make([]byte, 64)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				n := batch
				if rem := b.N - i; rem < n {
					n = rem
				}
				results, err := cli.MultiRead(addrs[:n], bufs[:n])
				if err != nil {
					b.Fatal(err)
				}
				for k := range results {
					if results[k].Err != nil {
						b.Fatal(results[k].Err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sub-reads/s")
		})
	}
}

// TestDirectReadAllocBudget pins the zero-copy DMA claim: a client-level
// DirectRead (lease checkout, in-ring landing, in-place extract, release)
// stays within 4 allocations per op on both wires. The pre-writev path
// spent 8.
func TestDirectReadAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; budgets hold for production builds")
	}
	for _, v := range wireVariants {
		t.Run(v.name, func(t *testing.T) {
			cli, addrs := benchWireClientT(t, v.disableSHM, 1)
			buf := make([]byte, 64)
			// Warm the connection, rings, and pools out of the measured region.
			for i := 0; i < 64; i++ {
				if _, err := cli.DirectRead(addrs[0], buf); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := cli.DirectRead(addrs[0], buf); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 4 {
				t.Fatalf("client DirectRead costs %.1f allocs/op, budget 4", allocs)
			}
		})
	}
}

// TestBatchReadAllocBudget pins the batched path: at batch=128 the whole
// call amortizes to zero allocations per sub-read (strictly fewer than one
// alloc per sub-op, i.e. the per-call overhead never scales with width).
func TestBatchReadAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; budgets hold for production builds")
	}
	const batch = 128
	for _, v := range wireVariants {
		t.Run(v.name, func(t *testing.T) {
			cli, addrs := benchWireClientT(t, v.disableSHM, batch)
			bufs := make([][]byte, batch)
			for i := range bufs {
				bufs[i] = make([]byte, 64)
			}
			check := func() {
				results, err := cli.MultiRead(addrs, bufs)
				if err != nil {
					t.Fatal(err)
				}
				for k := range results {
					if results[k].Err != nil {
						t.Fatal(results[k].Err)
					}
				}
			}
			for i := 0; i < 32; i++ {
				check()
			}
			perCall := testing.AllocsPerRun(100, check)
			if perSub := perCall / batch; perSub >= 1 {
				t.Fatalf("MultiRead costs %.2f allocs/call = %.2f per sub-read, budget <1 (amortized 0)", perCall, perSub)
			}
		})
	}
}

// benchWireClientT is benchWireClient for plain tests.
func benchWireClientT(t *testing.T, disableSHM bool, count int) (*Client, []*core.Addr) {
	t.Helper()
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := client.CreateCtxOptions(addr, transport.Options{DisableSharedMemory: disableSHM})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	payload := make([]byte, 64)
	addrs := make([]*core.Addr, count)
	for i := range addrs {
		a, err := cli.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Write(&a, payload); err != nil {
			t.Fatal(err)
		}
		addrs[i] = &a
	}
	return cli, addrs
}
