// Command corm-server runs a CoRM node serving the RPC + emulated-RDMA
// protocol over TCP.
//
//	corm-server -listen 127.0.0.1:7170 -workers 8 -block 4096 \
//	    -strategy corm -idbits 16 -compact auto
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"corm"
	"corm/internal/core"
	"corm/internal/metrics"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7170", "TCP listen address")
	workers := flag.Int("workers", 8, "worker threads")
	block := flag.Int("block", 4096, "block size in bytes (power-of-two multiple of 4096)")
	strategy := flag.String("strategy", "corm", "compaction strategy: corm, corm-0, mesh, hybrid, none")
	idBits := flag.Int("idbits", 16, "object identifier bits")
	compactMode := flag.String("compact", "off", "background compaction: auto (adaptive AutoTuner policy), threshold (fragmentation watermarks), off")
	compactInterval := flag.Duration("compact-interval", 50*time.Millisecond, "base pace between background compaction cycles")
	compactBudget := flag.Int("compact-budget", 8, "max blocks freed per compaction cycle (0 = unlimited)")
	compactShed := flag.Float64("compact-shed", 0, "pause compaction above this op rate in ops/s (0 = never shed)")
	compactEvery := flag.Duration("compact-every", 0, "legacy: run the full compaction policy periodically (0 = only on demand); superseded by -compact")
	fragThreshold := flag.Float64("frag-threshold", 2.0, "fragmentation ratio that triggers compaction")
	metricsAddr := flag.String("metrics-addr", "", "observability HTTP address (e.g. :9100) serving /metrics, /debug/vars, /debug/pprof; empty = disabled")
	memBudget := flag.String("mem-budget", "", "resident-memory cap with K/M/G suffix (e.g. 256M); cold blocks spill to the tier; empty = uncapped")
	tierSpec := flag.String("tier", "", "spill tier for evicted blocks: compressed, disk, disk:<dir>, off (default compressed when -mem-budget is set)")
	flag.Parse()

	cfg := corm.DefaultConfig()
	cfg.Workers = *workers
	cfg.BlockBytes = *block
	cfg.IDBits = *idBits
	cfg.FragThreshold = *fragThreshold
	switch strings.ToLower(*strategy) {
	case "corm":
		cfg.Strategy = core.StrategyCoRM
	case "corm-0", "corm0":
		cfg.Strategy = core.StrategyCoRM0
	case "mesh":
		cfg.Strategy = core.StrategyMesh
	case "hybrid":
		cfg.Strategy = core.StrategyHybrid
	case "none", "farm":
		cfg.Strategy = core.StrategyNone
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	ccfg := corm.CompactorConfig{
		Interval:          *compactInterval,
		MaxBlocks:         *compactBudget,
		LoadShedOpsPerSec: *compactShed,
	}
	var opts []corm.ServerOption
	if *memBudget != "" {
		bytes, err := parseBytes(*memBudget)
		if err != nil {
			log.Fatalf("-mem-budget: %v", err)
		}
		opts = append(opts, corm.WithMemoryBudget(bytes))
	}
	if *tierSpec != "" {
		opts = append(opts, corm.WithTier(*tierSpec))
	}
	switch strings.ToLower(*compactMode) {
	case "auto":
		opts = append(opts, corm.WithAdaptiveCompaction(ccfg))
	case "threshold":
		opts = append(opts, corm.WithBackgroundCompaction(ccfg))
	case "off", "":
	default:
		log.Fatalf("unknown -compact mode %q (want auto, threshold, off)", *compactMode)
	}

	srv, err := corm.NewServer(cfg, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.ListenAndServe(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("corm-server listening on %s (workers=%d block=%d strategy=%v idbits=%d)",
		addr, cfg.Workers, cfg.BlockBytes, cfg.Strategy, cfg.IDBits)
	if srv.Store().Tiered() {
		log.Printf("elastic memory: budget=%s tier=%s", *memBudget, srv.Store().Config().TierSpec)
	}

	if *metricsAddr != "" {
		maddr, stopMetrics, err := metrics.Serve(*metricsAddr, metrics.Default())
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
		defer stopMetrics()
		log.Printf("metrics on http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof)", maddr)
	}

	if srv.Compactor() != nil {
		log.Printf("background compaction %s: interval=%v budget=%d blocks/cycle shed=%.0f ops/s (threshold %.1fx)",
			*compactMode, *compactInterval, *compactBudget, *compactShed, *fragThreshold)
	}
	var stopLoop func()
	if *compactEvery > 0 {
		stopLoop = corm.CompactionLoop(srv, *compactEvery)
		log.Printf("compaction policy every %v (threshold %.1fx)", *compactEvery, *fragThreshold)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			if stopLoop != nil {
				stopLoop()
			}
			st := srv.Stats()
			fmt.Printf("shutting down: allocs=%d frees=%d reads=%d writes=%d compactions=%d blocks-freed=%d\n",
				st.Allocs, st.Frees, st.Reads, st.Writes, st.Compactions, st.BlocksFreed)
			return
		case <-ticker.C:
			st := srv.Stats()
			log.Printf("active=%s allocs=%d frees=%d corrections=%d compactions=%d",
				human(srv.ActiveBytes()), st.Allocs, st.Frees, st.Corrections, st.Compactions)
		}
	}
}

// parseBytes parses a human byte size: a plain number or one with a
// K/M/G/T suffix (binary units), e.g. "256M", "2G", "4096".
func parseBytes(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "T"):
		mult, u = 1<<40, strings.TrimSuffix(u, "T")
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, strings.TrimSuffix(u, "G")
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, strings.TrimSuffix(u, "M")
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, strings.TrimSuffix(u, "K")
	}
	var n int64
	if _, err := fmt.Sscanf(u, "%d", &n); err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 256M, 2G)", s)
	}
	return n * mult, nil
}

func human(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/float64(1<<20))
	}
	return fmt.Sprintf("%dKiB", n>>10)
}
