// Command corm-client is an interactive CLI for a remote CoRM node.
//
//	corm-client -connect 127.0.0.1:7170 alloc 64
//	corm-client -connect 127.0.0.1:7170 put <addr-hex> "hello"
//	corm-client -connect 127.0.0.1:7170 get <addr-hex>
//	corm-client -connect 127.0.0.1:7170 getdirect <addr-hex>
//	corm-client -connect 127.0.0.1:7170 free <addr-hex>
//	corm-client -connect 127.0.0.1:7170 bench -n 10000 -size 64
//
// Pointers print as two 64-bit hex words "lo:hi" — CoRM's 128-bit Addr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"corm"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:7170", "server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: corm-client [-connect host:port] alloc|put|get|getdirect|free|release|bench ...")
		os.Exit(2)
	}
	cli, err := corm.Connect(*connect)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer cli.Close()

	switch args[0] {
	case "alloc":
		size := 64
		if len(args) > 1 {
			size, err = strconv.Atoi(args[1])
			if err != nil {
				log.Fatal(err)
			}
		}
		addr, err := cli.Alloc(size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fmtAddr(addr))

	case "put":
		addr := parseAddr(args[1])
		payload := []byte(strings.Join(args[2:], " "))
		if err := cli.Write(&addr, payload); err != nil {
			log.Fatal(err)
		}
		fmt.Println(fmtAddr(addr))

	case "get", "getdirect":
		addr := parseAddr(args[1])
		size, err := cli.ClassSize(addr)
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, size)
		if args[0] == "get" {
			_, err = cli.Read(&addr, buf)
		} else {
			_, err = cli.SmartRead(&addr, buf)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q\n", strings.TrimRight(string(buf), "\x00"))
		if addr.HasFlag(corm.FlagIndirect) {
			fmt.Printf("(pointer corrected: %s)\n", fmtAddr(addr))
		}

	case "free":
		addr := parseAddr(args[1])
		if err := cli.Free(&addr); err != nil {
			log.Fatal(err)
		}
		fmt.Println("freed")

	case "release":
		addr := parseAddr(args[1])
		if err := cli.ReleasePtr(&addr); err != nil {
			log.Fatal(err)
		}
		fmt.Println("released; new pointer:", fmtAddr(addr))

	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		n := fs.Int("n", 10000, "operations")
		size := fs.Int("size", 64, "object size")
		oneSided := fs.Bool("onesided", true, "read with emulated one-sided reads")
		fs.Parse(args[1:])
		benchLoop(cli, *n, *size, *oneSided)

	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func benchLoop(cli *corm.Client, n, size int, oneSided bool) {
	addrs := make([]corm.Addr, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		a, err := cli.Alloc(size)
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	allocDur := time.Since(start)

	buf := make([]byte, size)
	start = time.Now()
	for i := range addrs {
		var err error
		if oneSided {
			_, err = cli.SmartRead(&addrs[i], buf)
		} else {
			_, err = cli.Read(&addrs[i], buf)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	readDur := time.Since(start)

	start = time.Now()
	for i := range addrs {
		if err := cli.Free(&addrs[i]); err != nil {
			log.Fatal(err)
		}
	}
	freeDur := time.Since(start)

	rate := func(d time.Duration) float64 { return float64(n) / d.Seconds() / 1000 }
	fmt.Printf("alloc: %6.1f Kreq/s   read(%s): %6.1f Kreq/s   free: %6.1f Kreq/s\n",
		rate(allocDur), readKind(oneSided), rate(readDur), rate(freeDur))
}

func readKind(oneSided bool) string {
	if oneSided {
		return "one-sided"
	}
	return "rpc"
}

func fmtAddr(a corm.Addr) string { return fmt.Sprintf("%016x:%016x", a.Lo, a.Hi) }

func parseAddr(s string) corm.Addr {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		log.Fatalf("bad address %q (want lo:hi hex)", s)
	}
	lo, err := strconv.ParseUint(parts[0], 16, 64)
	if err != nil {
		log.Fatal(err)
	}
	hi, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil {
		log.Fatal(err)
	}
	return corm.Addr{Lo: lo, Hi: hi}
}
