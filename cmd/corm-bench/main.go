// Command corm-bench regenerates the tables and figures of the CoRM paper
// (SIGMOD 2021) as plain-text tables.
//
// Usage:
//
//	corm-bench list                 # show available experiments
//	corm-bench all [-full]          # run everything (light ones first)
//	corm-bench fig12 fig13 [-full]  # run selected experiments
//
// Without -full, experiments run at reduced scale (smaller populations,
// shorter measurement windows) so the whole suite finishes in tens of
// minutes; -full uses the paper's sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"corm/internal/experiments"
	"corm/internal/metrics"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's scale (slow)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	showMetrics := flag.Bool("metrics", false, "dump the internal metrics summary after each experiment")
	flag.Usage = usage
	flag.Parse()
	dumpMetrics = *showMetrics
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	opts := experiments.Options{Full: *full, Seed: *seed}
	switch args[0] {
	case "list":
		for _, e := range experiments.All {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Printf("  %-8s %s%s\n", e.Name, e.Desc, heavy)
		}
		return
	case "all":
		for _, e := range experiments.All {
			run(e, opts)
		}
		return
	case "failover":
		runFailover(args[1:])
		return
	case "wire":
		runWire(args[1:])
		return
	case "pushdown":
		runPushdown(args[1:])
		return
	case "soak":
		runSoak(args[1:])
		return
	case "tiering":
		runTiering(args[1:])
		return
	case "summarize":
		runSummarize(args[1:])
		return
	}
	for _, name := range args {
		e, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try: corm-bench list)\n", name)
			os.Exit(2)
		}
		run(e, opts)
	}
}

// dumpMetrics turns on the per-experiment metrics summary (-metrics).
var dumpMetrics bool

func run(e experiments.Experiment, opts experiments.Options) {
	fmt.Printf("--- %s: %s\n", e.Name, e.Desc)
	if dumpMetrics {
		// Zero the registry so the summary reflects only this experiment.
		metrics.Default().Reset()
	}
	start := time.Now()
	for _, t := range e.Run(opts) {
		fmt.Println(t.String())
	}
	fmt.Printf("(%s finished in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	if dumpMetrics {
		fmt.Printf("metrics for %s:\n", e.Name)
		metrics.Default().DumpText(os.Stdout)
		fmt.Println()
	}
	// Experiments build multi-hundred-MB populations; return the memory
	// to the OS before the next one so the whole suite fits small hosts.
	debug.FreeOSMemory()
}

func usage() {
	fmt.Fprintf(os.Stderr, `corm-bench regenerates the CoRM paper's tables and figures.

usage:
  corm-bench list
  corm-bench all [-full] [-seed N]
  corm-bench <experiment>... [-full] [-seed N]
  corm-bench failover [-nodes N] [-replicas K] [-write-concern W]
                      [-keys N] [-size B] [-out FILE]
  corm-bench wire [-out FILE]
  corm-bench pushdown [-out FILE]
  corm-bench soak [-scenario NAME] [-duration D] [-seed N] [-out FILE]
                  [-quiet] [-list]
  corm-bench tiering [-objects N] [-size B] [-ops N] [-budget-frac F]
                     [-tier T] [-bar R] [-out FILE]
  corm-bench summarize [-dir DIR] [-out FILE]
`)
	flag.PrintDefaults()
}
