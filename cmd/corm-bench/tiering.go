package main

// corm-bench tiering measures elastic memory under oversubscription: the
// same Zipf-skewed workload runs against a resident-only baseline store
// and a tiered store whose frame budget is a fraction of the working set,
// so the clock must keep spilling cold blocks while the hot set stays
// resident. The report (BENCH_tiering.json) records hot-set read
// latency for both stores, the fault-in latency histogram, and
// eviction/spill counters, and the run FAILS (non-zero exit) if any
// acked write is lost, any read returns corrupt data, or the tiered
// hot-set p99 exceeds the declared multiple of the baseline.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"corm/internal/core"
	"corm/internal/mem"
	"corm/internal/metrics"
	"corm/internal/timing"
	"corm/internal/workload"
)

// tieringReport is the machine-readable outcome (BENCH_tiering.json).
type tieringReport struct {
	Objects        int     `json:"objects"`
	ValueBytes     int     `json:"value_bytes"`
	Ops            int64   `json:"ops"`
	Clients        int     `json:"clients"`
	Theta          float64 `json:"theta"`
	BudgetBytes    int64   `json:"budget_bytes"`
	Oversubscribed float64 `json:"oversubscription"` // working set / budget
	Tier           string  `json:"tier"`

	// Hot set = top 20% of the Zipf popularity ranking.
	BaselineHotP50Us float64 `json:"baseline_hot_p50_us"`
	BaselineHotP99Us float64 `json:"baseline_hot_p99_us"`
	TieredHotP50Us   float64 `json:"tiered_hot_p50_us"`
	TieredHotP99Us   float64 `json:"tiered_hot_p99_us"`
	HotP99Ratio      float64 `json:"hot_p99_ratio"`
	HotP99Bar        float64 `json:"hot_p99_bar"`
	// The ratio criterion is waived below this absolute latency. The
	// baseline p99 is sub-2µs, so the ratio alone is hypersensitive: the
	// warm tail of a top-20% hot set genuinely trades residency with the
	// cold mass at 2x oversubscription, and a p99 within one
	// compressed-tier fault (tens of µs) is the intended service level —
	// what the bar really polices is hot reads stacking behind slow spill
	// I/O or allocation stalls, which show up as hundreds of µs.
	HotP99FloorUs float64 `json:"hot_p99_floor_us"`

	ColdP99Us float64 `json:"tiered_cold_p99_us"`

	FaultInP50Us float64 `json:"faultin_p50_us"`
	FaultInP99Us float64 `json:"faultin_p99_us"`
	Evictions    int64   `json:"evictions"`
	FaultIns     int64   `json:"faultins"`
	SpilledMiB   float64 `json:"spilled_mib"`

	LostAckedWrites int64 `json:"lost_acked_writes"`
	CorruptReads    int64 `json:"corrupt_reads"`
	CompactionRuns  int64 `json:"compaction_merges"`

	Pass bool `json:"pass"`
}

func runTiering(args []string) {
	fs := flag.NewFlagSet("tiering", flag.ExitOnError)
	objects := fs.Int("objects", 4096, "population size")
	size := fs.Int("size", 1024, "object payload bytes")
	ops := fs.Int64("ops", 40000, "measured operations (reads+writes)")
	clients := fs.Int("clients", 4, "concurrent driver goroutines")
	theta := fs.Float64("theta", 0.99, "Zipf skew")
	frac := fs.Float64("budget-frac", 0.5, "budget as a fraction of the working set (0.5 = 2x oversubscribed)")
	bar := fs.Float64("bar", 1.5, "max allowed tiered/baseline hot-set p99 ratio (0 = correctness only, e.g. under -race)")
	tierSpec := fs.String("tier", "compressed", "spill tier: compressed, disk, disk:<dir>")
	seed := fs.Int64("seed", 1, "deterministic seed")
	out := fs.String("out", "BENCH_tiering.json", "output JSON path")
	fs.Parse(args)

	rep := tieringReport{
		Objects: *objects, ValueBytes: *size, Ops: *ops, Clients: *clients,
		Theta: *theta, HotP99Bar: *bar, Tier: *tierSpec,
	}
	working := int64(*objects) * int64(*size)
	rep.BudgetBytes = int64(float64(working) * *frac)
	// Round the budget up to a whole frame so tiny runs stay meaningful.
	if rep.BudgetBytes < mem.PageSize {
		rep.BudgetBytes = mem.PageSize
	}
	rep.Oversubscribed = float64(working) / float64(rep.BudgetBytes)

	fmt.Fprintf(os.Stderr, "tiering: %d objects x %dB (%.1f MiB working set), budget %.1f MiB (%.1fx oversubscribed), tier=%s\n",
		*objects, *size, float64(working)/(1<<20), float64(rep.BudgetBytes)/(1<<20), rep.Oversubscribed, *tierSpec)

	// Pass 1: resident-only baseline.
	base := driveTiering(tieringConfig{
		objects: *objects, size: *size, ops: *ops, clients: *clients,
		theta: *theta, seed: *seed,
	})
	rep.BaselineHotP50Us = quantileUs(base.hotNs, 0.50)
	rep.BaselineHotP99Us = quantileUs(base.hotNs, 0.99)

	// Pass 2: same stream against the budgeted, tiered store.
	metrics.Default().Histogram("corm_tier_faultin_ns", "").Reset()
	tiered := driveTiering(tieringConfig{
		objects: *objects, size: *size, ops: *ops, clients: *clients,
		theta: *theta, seed: *seed,
		budget: rep.BudgetBytes, tier: *tierSpec,
	})
	rep.TieredHotP50Us = quantileUs(tiered.hotNs, 0.50)
	rep.TieredHotP99Us = quantileUs(tiered.hotNs, 0.99)
	rep.ColdP99Us = quantileUs(tiered.coldNs, 0.99)
	if rep.BaselineHotP99Us > 0 {
		rep.HotP99Ratio = rep.TieredHotP99Us / rep.BaselineHotP99Us
	}
	fi := metrics.Default().Histogram("corm_tier_faultin_ns", "").Snapshot()
	rep.FaultInP50Us = float64(fi.Quantile(0.50)) / 1e3
	rep.FaultInP99Us = float64(fi.Quantile(0.99)) / 1e3
	rep.Evictions = tiered.stats.SpillOuts
	rep.FaultIns = tiered.stats.FaultIns
	rep.SpilledMiB = float64(tiered.stats.BytesSpilled) / (1 << 20)
	rep.LostAckedWrites = base.lost + tiered.lost
	rep.CorruptReads = base.corrupt + tiered.corrupt
	rep.CompactionRuns = tiered.merges

	rep.HotP99FloorUs = 50
	rep.Pass = rep.LostAckedWrites == 0 && rep.CorruptReads == 0 &&
		rep.Evictions > 0 && rep.FaultIns > 0 &&
		(rep.HotP99Bar <= 0 || rep.HotP99Ratio <= rep.HotP99Bar ||
			rep.TieredHotP99Us < rep.HotP99FloorUs)

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("tiering: marshal: %v", err)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatalf("tiering: write %s: %v", *out, err)
	}
	os.Stdout.Write(doc)
	if !rep.Pass {
		fatalf("tiering: FAILED (lost=%d corrupt=%d evictions=%d faultins=%d hot p99 ratio %.2f > %.2f)",
			rep.LostAckedWrites, rep.CorruptReads, rep.Evictions, rep.FaultIns, rep.HotP99Ratio, rep.HotP99Bar)
	}
}

type tieringConfig struct {
	objects, size int
	ops           int64
	clients       int
	theta         float64
	seed          int64
	budget        int64 // 0 = resident-only baseline
	tier          string
}

type tieringResult struct {
	hotNs, coldNs []int64
	lost, corrupt int64
	stats         struct {
		SpillOuts, FaultIns, BytesSpilled int64
	}
	merges int64
}

// driveTiering populates one store and drives the Zipf stream over it.
// Keys are partitioned across clients (key k belongs to client k mod
// clients) so every read verifies against the exact acked payload with no
// cross-client write races — while eviction, fault-in, and compaction
// still race freely underneath, which is the property under test.
func driveTiering(cfg tieringConfig) tieringResult {
	store, err := core.NewStore(core.Config{
		Workers: cfg.clients, Strategy: core.StrategyCoRM, DataBacked: true,
		Remap: core.RemapODPPrefetch,
		Model: timing.Default().WithNIC(timing.ConnectX5()),
		Seed:  cfg.seed,
		// Eager watermark so the churn the drivers generate is enough to
		// keep the compactor merging concurrently with eviction.
		FragThreshold:  1.2,
		MemBudgetBytes: cfg.budget,
		TierSpec:       cfg.tier,
	})
	if err != nil {
		fatalf("tiering: %v", err)
	}
	defer store.Close()

	mergesBefore := metrics.Default().Counter("corm_compaction_merges_total", "").Value()
	comp := core.NewCompactor(store, core.CompactorConfig{
		Interval: 5 * time.Millisecond, MaxBlocks: 8,
	})
	comp.Start()
	defer comp.Stop()

	// Preload: object i carries pattern(i, version 0).
	addrs := make([]core.Addr, cfg.objects)
	vers := make([]uint32, cfg.objects)
	for i := 0; i < cfg.objects; i++ {
		r, err := store.AllocOn(i%cfg.clients, cfg.size)
		if err != nil {
			fatalf("tiering: alloc %d: %v", i, err)
		}
		addrs[i] = r.Addr
		if err := store.Write(&addrs[i], tieringPattern(i, 0, cfg.size)); err != nil {
			fatalf("tiering: preload write %d: %v", i, err)
		}
	}

	res := tieringResult{}
	hotCut := cfg.objects / 5 // top 20% of the Zipf ranking
	var mu sync.Mutex         // guards the latency slices
	var lost, corrupt atomic.Int64
	perClient := cfg.ops / int64(cfg.clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			// Unscrambled Zipf: rank r IS key r, so rank < hotCut
			// identifies the hot set directly.
			zipf := workload.NewZipf(rng, uint64(cfg.objects), cfg.theta, false)
			buf := make([]byte, cfg.size)
			// Warmup: fault this client's hot keys in (preload blew
			// straight past the budget, so the clock's final resident set
			// is whatever was allocated last, not what's hot). Unmeasured
			// — steady-state behavior is what the report judges.
			for pass := 0; pass < 2; pass++ {
				for key := c; key < hotCut; key += cfg.clients {
					if _, err := store.Read(&addrs[key], buf); err == nil && !tieringEqual(buf, key, vers[key]) {
						corrupt.Add(1)
					}
				}
			}
			var myHot, myCold []int64
			for op := int64(0); op < perClient; op++ {
				key := int(zipf.Next())
				if key%cfg.clients != c {
					// Keys are owned per client; remap into this
					// client's partition preserving the rank's heat.
					key = key - key%cfg.clients + c
					if key >= cfg.objects {
						key -= cfg.clients
					}
				}
				switch {
				case op%50 == 37:
					// Churn: retire the object and allocate a successor —
					// the free half feeds fragmentation so the background
					// compactor has real merges to do under eviction.
					if err := store.Free(&addrs[key]); err != nil {
						lost.Add(1)
						continue
					}
					r, err := store.AllocOn(c, cfg.size)
					if err != nil {
						lost.Add(1)
						continue
					}
					addrs[key] = r.Addr
					vers[key]++
					if err := store.Write(&addrs[key], tieringPattern(key, vers[key], cfg.size)); err != nil {
						lost.Add(1)
					}
				case op%20 == 19: // ~5% in-place writes
					vers[key]++
					if err := store.Write(&addrs[key], tieringPattern(key, vers[key], cfg.size)); err != nil {
						lost.Add(1)
					}
				default:
					fiBefore := int64(0)
					if debugTiering && store.Tiered() {
						fiBefore = store.Residency().Stats().FaultIns
					}
					start := time.Now()
					n, err := store.Read(&addrs[key], buf)
					ns := time.Since(start).Nanoseconds()
					_ = fiBefore
					if err != nil || n != cfg.size {
						corrupt.Add(1)
						continue
					}
					if !tieringEqual(buf, key, vers[key]) {
						corrupt.Add(1)
					}
					if key < hotCut {
						myHot = append(myHot, ns)
						if ns > 100_000 && debugTiering && store.Tiered() {
							fmt.Fprintf(os.Stderr, "slow hot read: key=%d op=%d ns=%d faultdelta=%d\n",
								key, op, ns, store.Residency().Stats().FaultIns-fiBefore)
						}
					} else {
						myCold = append(myCold, ns)
					}
				}
			}
			mu.Lock()
			res.hotNs = append(res.hotNs, myHot...)
			res.coldNs = append(res.coldNs, myCold...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	// Final audit: every acked write must read back intact.
	buf := make([]byte, cfg.size)
	for i := range addrs {
		n, err := store.Read(&addrs[i], buf)
		if err != nil || n != cfg.size || !tieringEqual(buf, i, vers[i]) {
			lost.Add(1)
		}
	}
	res.lost = lost.Load()
	res.corrupt = corrupt.Load()
	if r := store.Residency(); r != nil {
		st := r.Stats()
		res.stats.SpillOuts = st.SpillOuts
		res.stats.FaultIns = st.FaultIns
		res.stats.BytesSpilled = st.BytesSpilled
	}
	res.merges = metrics.Default().Counter("corm_compaction_merges_total", "").Value() - mergesBefore
	return res
}

// tieringPattern is object key's payload at version v: a seeded repeating
// 8-byte stamp, cheap to generate and to compare.
func tieringPattern(key int, v uint32, size int) []byte {
	b := make([]byte, size)
	stamp := uint64(key)*0x9e3779b97f4a7c15 + uint64(v)
	for i := range b {
		b[i] = byte(stamp >> (8 * (uint(i) % 8)))
	}
	return b
}

func tieringEqual(buf []byte, key int, v uint32) bool {
	stamp := uint64(key)*0x9e3779b97f4a7c15 + uint64(v)
	for i := range buf {
		if buf[i] != byte(stamp>>(8*(uint(i)%8))) {
			return false
		}
	}
	return true
}

// quantileUs computes the q-quantile of raw nanosecond samples in µs.
func quantileUs(ns []int64, q float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / 1e3
}

var debugTiering = os.Getenv("TIERING_DEBUG") != ""
