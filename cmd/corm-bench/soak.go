package main

// corm-bench soak runs one named soak scenario — the SLO-checked,
// multi-tenant chaos soak — and emits its machine-readable report as
// BENCH_soak.json. The exit status IS the verdict: non-zero on any SLO
// breach, lost acked write, or unexpected canary corruption, so CI can
// gate on the command directly.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"corm/internal/soak"
)

func runSoak(args []string) {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	scenario := fs.String("scenario", "smoke", "scenario name (see -list)")
	duration := fs.Duration("duration", 0, "override the scenario's soak window (0 = scenario default)")
	seed := fs.Int64("seed", 0, "override the scenario's seed (0 = scenario default)")
	out := fs.String("out", "BENCH_soak.json", "output JSON path")
	list := fs.Bool("list", false, "list scenarios and exit")
	quiet := fs.Bool("quiet", false, "suppress progress lines")
	fs.Parse(args)

	if *list {
		for _, name := range soak.Names() {
			fmt.Println(" ", name)
		}
		return
	}

	spec, err := soak.Lookup(*scenario, *duration)
	if err != nil {
		fatalf("soak: %v", err)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	start := time.Now()
	rep, err := soak.Run(spec, logf)
	if err != nil {
		fatalf("soak: %v", err)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("soak: marshal: %v", err)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatalf("soak: write %s: %v", *out, err)
	}
	os.Stdout.Write(doc)
	fmt.Fprintf(os.Stderr, "(soak %s finished in %v)\n", spec.Name, time.Since(start).Round(time.Millisecond))

	if !rep.Pass {
		for _, t := range rep.Tenants {
			for _, b := range t.SLO.Breaches {
				fmt.Fprintf(os.Stderr, "soak: tenant %s: SLO breach: %s\n", t.Name, b)
			}
		}
		if rep.LostAckedWrites > 0 {
			fmt.Fprintf(os.Stderr, "soak: %d acknowledged writes lost\n", rep.LostAckedWrites)
		}
		if !rep.CanaryExpected && rep.CanaryViolations > 0 {
			fmt.Fprintf(os.Stderr, "soak: %d canary violations (memory corruption)\n", rep.CanaryViolations)
		}
		if rep.CanaryExpected && rep.CanaryViolations == 0 {
			fmt.Fprintln(os.Stderr, "soak: injected corruption was not detected")
		}
		fatalf("soak: scenario %s FAILED", spec.Name)
	}
}
