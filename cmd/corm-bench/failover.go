// The failover benchmark: an end-to-end replication drill over the
// in-process cluster harness. It loads a replicated KV, kills a node
// mid-workload, measures the first failed-over read, keeps writing and
// reading through the outage, restarts the node, times the re-replicator
// back to full replication, and verifies that no acknowledged write was
// lost — then emits the numbers as machine-readable JSON for CI trending.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"corm/internal/cluster"
)

// failoverResult is the benchmark's JSON document (BENCH_failover.json).
type failoverResult struct {
	Nodes        int `json:"nodes"`
	Replicas     int `json:"replicas"`
	WriteConcern int `json:"write_concern"`
	Keys         int `json:"keys"`
	ValueBytes   int `json:"value_bytes"`

	LoadPutsPerSec    float64 `json:"load_puts_per_sec"`
	FailoverLatencyMs float64 `json:"failover_latency_ms"`

	OutageAckedWrites  int `json:"outage_acked_writes"`
	OutageFailedWrites int `json:"outage_failed_writes"`
	OutageReadsOK      int `json:"outage_reads_ok"`

	RereplicationMs float64 `json:"rereplication_ms"`
	LostAckedWrites int     `json:"lost_acked_writes"`
	SurvivorReadsOK int     `json:"survivor_reads_ok"`
}

// runFailover executes the drill and writes the JSON report.
func runFailover(args []string) {
	fs := flag.NewFlagSet("failover", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "cluster size")
	replicas := fs.Int("replicas", 3, "replication factor k")
	writeConcern := fs.Int("write-concern", 2, "acks required per put (W)")
	keys := fs.Int("keys", 200, "keys loaded before the kill")
	size := fs.Int("size", 128, "value size in bytes")
	out := fs.String("out", "BENCH_failover.json", "output JSON path")
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	res := failoverResult{
		Nodes: *nodes, Replicas: *replicas, WriteConcern: *writeConcern,
		Keys: *keys, ValueBytes: *size,
	}
	value := func(i int) []byte {
		v := make([]byte, *size)
		copy(v, fmt.Sprintf("failover-value-%d", i))
		return v
	}

	c, err := cluster.SpinLocal(*nodes, *seed)
	if err != nil {
		fatalf("failover: spin cluster: %v", err)
	}
	defer c.Close()
	pool := c.Pool()
	kv := cluster.NewReplicatedKV(pool, cluster.ReplicationConfig{
		Replicas: *replicas, WriteConcern: *writeConcern,
	})
	rep := cluster.NewReplicator(kv, cluster.ReplicatorConfig{Interval: 10 * time.Millisecond})
	rep.Start()
	defer rep.Stop()

	// Load phase: the steady-state replicated write rate.
	acked := map[string][]byte{}
	loadStart := time.Now()
	for i := 0; i < *keys; i++ {
		key := fmt.Sprintf("bench-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			fatalf("failover: load put %s: %v", key, err)
		}
		acked[key] = value(i)
	}
	res.LoadPutsPerSec = float64(*keys) / time.Since(loadStart).Seconds()

	// Kill the primary of the first key and measure the first failed-over
	// read end to end — the moment a client feels the outage.
	victim := kv.ReplicasFor("bench-0")[0]
	c.Node(victim).Kill()
	foStart := time.Now()
	if _, ok, err := kv.Get("bench-0"); err != nil || !ok {
		fatalf("failover: read after kill: %v (found=%v)", err, ok)
	}
	res.FailoverLatencyMs = float64(time.Since(foStart).Nanoseconds()) / 1e6

	// Outage phase: the workload continues against the degraded cluster.
	for i := *keys; i < 2*(*keys); i++ {
		key := fmt.Sprintf("bench-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			res.OutageFailedWrites++
			continue
		}
		res.OutageAckedWrites++
		acked[key] = value(i)
	}
	for key, want := range acked {
		if got, ok, err := kv.Get(key); err == nil && ok && string(got) == string(want) {
			res.OutageReadsOK++
		}
	}

	// Rejoin: the breaker-recovery hook kicks the replicator; time the
	// backlog draining to full replication.
	if err := c.Node(victim).Restart(); err != nil {
		fatalf("failover: restart: %v", err)
	}
	rrStart := time.Now()
	if err := pool.ProbeNode(victim); err != nil {
		fatalf("failover: probe: %v", err)
	}
	for kv.DegradedKeys() > 0 {
		if time.Since(rrStart) > 60*time.Second {
			fatalf("failover: %d keys still under-replicated after 60s", kv.DegradedKeys())
		}
		time.Sleep(time.Millisecond)
	}
	res.RereplicationMs = float64(time.Since(rrStart).Nanoseconds()) / 1e6

	// The acid test: kill a different node, then every acknowledged write
	// must still read back — including outage-era keys whose replica on
	// the rejoined node exists only because the re-replicator wrote it.
	c.Node((victim + 1) % *nodes).Kill()
	for key, want := range acked {
		got, ok, err := kv.Get(key)
		if err != nil || !ok || string(got) != string(want) {
			res.LostAckedWrites++
			continue
		}
		res.SurvivorReadsOK++
	}

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatalf("failover: marshal: %v", err)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatalf("failover: write %s: %v", *out, err)
	}
	os.Stdout.Write(doc)
	if res.LostAckedWrites > 0 {
		fatalf("failover: %d acknowledged writes lost", res.LostAckedWrites)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
