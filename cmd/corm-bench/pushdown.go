// The pushdown benchmark: server-side FetchAdd against the client-side
// Read+Write emulation it replaces, uncontended and with 8 goroutines
// contending on one key, emitted as machine-readable JSON
// (BENCH_pushdown.json). The emulation is the correctness-preserving
// form: a read-modify-write is only atomic if concurrent callers are
// mutually excluded, so it serializes behind a lock and cannot pipeline —
// exactly the cost profile near-data compute removes (one round trip per
// op, atomicity enforced at the data, arbitrary concurrency).
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"corm/internal/client"
	"corm/internal/core"
)

// pushdownResult is the benchmark's JSON document (BENCH_pushdown.json).
type pushdownResult struct {
	Note    string                 `json:"note"`
	Numbers map[string]wireNumbers `json:"numbers"`

	// SpeedupUncontended is pipelined pushdown ops/s over the 1-goroutine
	// emulation; SpeedupContended8 is 8-goroutine pushdown over the
	// 8-goroutine (lock-serialized) emulation.
	SpeedupUncontended float64         `json:"speedup_uncontended"`
	SpeedupContended8  float64         `json:"speedup_contended_8"`
	Bars               map[string]bool `json:"bars"`
}

// pushdownNode starts a TCP node with one zeroed 8-byte counter object.
func pushdownNode() (*client.Ctx, core.Addr, func()) {
	srv, addr, closeSrv := wireNode()
	_ = srv
	cli, err := client.CreateCtx(addr)
	if err != nil {
		fatalf("pushdown: client: %v", err)
	}
	ctr, err := cli.Alloc(8)
	if err != nil {
		fatalf("pushdown: alloc: %v", err)
	}
	if err := cli.Write(&ctr, make([]byte, 8)); err != nil {
		fatalf("pushdown: write: %v", err)
	}
	return cli, ctr, func() {
		cli.Close()
		closeSrv()
	}
}

// measurePushdownSync runs gor goroutines each issuing blocking pushdown
// FetchAdds against the same key. Each goroutine works on its own pointer
// copy so pointer corrections never race.
func measurePushdownSync(gor int) wireNumbers {
	cli, ctr, done := pushdownNode()
	defer done()
	return measure(1, func(b *testing.B) {
		b.ReportAllocs()
		var next int64
		var wg sync.WaitGroup
		for g := 0; g < gor; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				a := ctr
				for atomic.AddInt64(&next, 1) <= int64(b.N) {
					if _, err := cli.FetchAdd(&a, 0, 1); err != nil {
						fatalf("pushdown: fetchadd: %v", err)
					}
				}
			}()
		}
		wg.Wait()
	})
}

// measurePushdownAsync runs gor goroutines each keeping a window of
// FetchAddAsync futures in flight against the same key; the client
// coalesces them into OpMultiRMW frames. Dedup tokens make the pipelining
// safe — this is the throughput form a counter service would actually
// run, and the one the emulation has no answer to: its lock admits one
// un-pipelined Read+Write pair at a time no matter how many callers pile
// up.
func measurePushdownAsync(gor int) wireNumbers {
	const window = 64
	cli, ctr, done := pushdownNode()
	defer done()
	return measure(1, func(b *testing.B) {
		b.ReportAllocs()
		var next int64
		var wg sync.WaitGroup
		for g := 0; g < gor; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One pointer copy per window slot: a slot's pointer is
				// only touched again after its future resolved.
				addrs := make([]core.Addr, window)
				for i := range addrs {
					addrs[i] = ctr
				}
				futs := make([]*client.AtomicFuture, 0, window)
				for {
					futs = futs[:0]
					for i := 0; i < window; i++ {
						if atomic.AddInt64(&next, 1) > int64(b.N) {
							break
						}
						futs = append(futs, cli.FetchAddAsync(&addrs[i], 0, 1))
					}
					if len(futs) == 0 {
						return
					}
					cli.Flush()
					for _, f := range futs {
						if _, err := f.Wait(); err != nil {
							fatalf("pushdown: async fetchadd: %v", err)
						}
					}
				}
			}()
		}
		wg.Wait()
	})
}

// measureEmulatedFetchAdd is the client-side emulation: lock, Read the
// 8-byte counter, add, Write it back, unlock. The lock is what makes it
// correct — and what makes it serialize under contention.
func measureEmulatedFetchAdd(gor int) wireNumbers {
	cli, ctr, done := pushdownNode()
	defer done()
	return measure(1, func(b *testing.B) {
		b.ReportAllocs()
		var mu sync.Mutex
		var next int64
		var wg sync.WaitGroup
		for g := 0; g < gor; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, 8)
				for atomic.AddInt64(&next, 1) <= int64(b.N) {
					mu.Lock()
					if _, err := cli.Read(&ctr, buf); err != nil {
						fatalf("pushdown: emulated read: %v", err)
					}
					binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
					if err := cli.Write(&ctr, buf); err != nil {
						fatalf("pushdown: emulated write: %v", err)
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	})
}

// runPushdown executes the pushdown drill and writes the JSON report. The
// bars are recorded (and printed) but do not fail the run — wall-clock
// ratios belong to the machine that sets the baseline.
func runPushdown(args []string) {
	fs := flag.NewFlagSet("pushdown", flag.ExitOnError)
	out := fs.String("out", "BENCH_pushdown.json", "output JSON path")
	fs.Parse(args)

	res := pushdownResult{
		Note:    "one 8B counter over TCP+shm loopback; emulated = lock+Read+Write (the correct client-side form); fetchadd_async = 64 futures in flight coalescing into OpMultiRMW",
		Numbers: map[string]wireNumbers{},
		Bars:    map[string]bool{},
	}

	res.Numbers["fetchadd_sync_1g"] = measurePushdownSync(1)
	res.Numbers["fetchadd_sync_8g"] = measurePushdownSync(8)
	res.Numbers["fetchadd_async_1g"] = measurePushdownAsync(1)
	res.Numbers["fetchadd_async_8g"] = measurePushdownAsync(8)
	res.Numbers["emulated_1g"] = measureEmulatedFetchAdd(1)
	res.Numbers["emulated_8g"] = measureEmulatedFetchAdd(8)

	res.SpeedupUncontended = res.Numbers["fetchadd_async_1g"].OpsPerSec / res.Numbers["emulated_1g"].OpsPerSec
	res.SpeedupContended8 = res.Numbers["fetchadd_async_8g"].OpsPerSec / res.Numbers["emulated_8g"].OpsPerSec
	res.Bars["pushdown_ge_3x_uncontended"] = res.SpeedupUncontended >= 3
	res.Bars["pushdown_ge_5x_contended_8g"] = res.SpeedupContended8 >= 5

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatalf("pushdown: marshal: %v", err)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatalf("pushdown: write %s: %v", *out, err)
	}
	os.Stdout.Write(doc)
	for name, ok := range res.Bars {
		if !ok {
			fmt.Fprintf(os.Stderr, "pushdown: bar missed on this machine: %s\n", name)
		}
	}
}
