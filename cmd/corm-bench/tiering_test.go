package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTieringSmall drives the full tiering benchmark at toy scale:
// both passes (baseline + tiered), the verification audit, and the JSON
// report. -bar 0 keeps the latency criterion out of it (this is a
// correctness test on shared CI hardware, the same mode the -race CI leg
// uses); the correctness criteria — zero lost acked writes, zero corrupt
// reads, real evictions and fault-ins — still all apply.
func TestRunTieringSmall(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tiering.json")
	runTiering([]string{
		"-objects", "512", "-size", "256", "-ops", "4000", "-clients", "2",
		"-budget-frac", "0.5", "-bar", "0", "-seed", "7", "-out", out,
	})
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep tieringReport
	if err := json.Unmarshal(doc, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("report did not pass: %+v", rep)
	}
	if rep.LostAckedWrites != 0 || rep.CorruptReads != 0 {
		t.Fatalf("correctness violation: %+v", rep)
	}
	if rep.Evictions == 0 || rep.FaultIns == 0 {
		t.Fatalf("no tier traffic at 2x oversubscription: %+v", rep)
	}
	if rep.Oversubscribed < 1.9 || rep.Oversubscribed > 2.1 {
		t.Fatalf("oversubscription = %.2f, want ~2", rep.Oversubscribed)
	}
	if rep.FaultInP99Us <= 0 {
		t.Fatalf("fault-in histogram empty: %+v", rep)
	}
}

// TestRunTieringDiskTier exercises the disk spill backend end to end.
func TestRunTieringDiskTier(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tiering.json")
	runTiering([]string{
		"-objects", "256", "-size", "256", "-ops", "1500", "-clients", "2",
		"-bar", "0", "-tier", "disk:" + filepath.Join(dir, "spill"), "-out", out,
	})
	var rep tieringReport
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(doc, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Tier != "disk:"+filepath.Join(dir, "spill") {
		t.Fatalf("disk-tier run: %+v", rep)
	}
}

// TestRunSummarize pins the report flattening: every BENCH_*.json in the
// directory lands in the generated summary as sorted key lines.
func TestRunSummarize(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_tiering.json"),
		[]byte(`{"pass": true, "faultins": 42, "nested": {"p99_us": 1.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "summary.txt")
	runSummarize([]string{"-dir", dir, "-out", out})
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, want := range []string{"BENCH_tiering.json", "faultins: 42", "nested.p99_us: 1.5"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
}
