// The wire benchmark: single-op RPC, one-sided DirectRead, and batch=128
// MultiRead latency/allocation numbers over both the shared-memory fast
// path and forced TCP loopback, emitted as machine-readable JSON
// (BENCH_wire.json) with the pre-writev baseline embedded — so the perf
// trajectory of the zero-copy wire path is tracked across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	corm "corm"
	"corm/internal/client"
	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/transport"
)

// wireNumbers is one measured configuration. For the batched row the unit
// is one sub-read, so every row compares directly.
type wireNumbers struct {
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// wireResult is the benchmark's JSON document (BENCH_wire.json). `before`
// holds the last pre-zero-copy numbers from bench_results.txt (concat+Write
// framing, pooled staging copies, no shm path — TCP loopback, 1 goroutine);
// `after` holds this run, per wire.
type wireResult struct {
	BaselineNote string                 `json:"baseline_note"`
	Before       map[string]wireNumbers `json:"before"`
	After        map[string]wireNumbers `json:"after"`

	// SpeedupSHMOverTCP is single-op RPC tcp-ns / shm-ns for this run.
	SpeedupSHMOverTCP float64 `json:"speedup_shm_over_tcp"`
	// Bars: the acceptance thresholds, evaluated on this run's numbers.
	Bars map[string]bool `json:"bars"`
}

// wireBaseline: the PR 6 numbers recorded in bench_results.txt before the
// zero-copy wire path landed.
var wireBaseline = map[string]wireNumbers{
	"rpc_single":     {NsPerOp: 9604, OpsPerSec: 104200, AllocsPerOp: 10},
	"direct_read":    {NsPerOp: 8146, OpsPerSec: 122800, AllocsPerOp: 8},
	"multi_read_128": {NsPerOp: 480, OpsPerSec: 2_080_000, AllocsPerOp: 0},
}

// wireNode starts one TCP-listening node and tears it down via the
// returned func.
func wireNode() (*corm.Server, string, func()) {
	srv, err := corm.NewServer(corm.DefaultConfig())
	if err != nil {
		fatalf("wire: server: %v", err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		fatalf("wire: listen: %v", err)
	}
	return srv, addr, srv.Close
}

// measure runs fn as a Go benchmark and folds the result into wireNumbers,
// dividing by subOps when one iteration covers a whole batch.
func measure(subOps int, fn func(b *testing.B)) wireNumbers {
	r := testing.Benchmark(fn)
	ns := float64(r.NsPerOp()) / float64(subOps)
	if ns <= 0 {
		ns = 1
	}
	return wireNumbers{
		NsPerOp:     ns,
		OpsPerSec:   1e9 / ns,
		AllocsPerOp: float64(r.AllocsPerOp()) / float64(subOps),
	}
}

// measureRPC is the single-op RPC read.
func measureRPC(disableSHM bool) wireNumbers {
	_, addr, done := wireNode()
	defer done()
	conn, err := transport.DialOptions(addr, transport.Options{DisableSharedMemory: disableSHM})
	if err != nil {
		fatalf("wire: dial: %v", err)
	}
	defer conn.Close()
	resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
	if err != nil || resp.Status != rpc.StatusOK {
		fatalf("wire: alloc: %v %v", resp.Status, err)
	}
	oaddr := resp.Addr
	return measure(1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := conn.Call(rpc.Request{Op: rpc.OpRead, Addr: oaddr, Size: 64})
			if err != nil || resp.Status != rpc.StatusOK {
				fatalf("wire: read: %v %v", resp.Status, err)
			}
		}
	})
}

// measureDirectRead is the single-op emulated one-sided read.
func measureDirectRead(disableSHM bool) wireNumbers {
	_, addr, done := wireNode()
	defer done()
	conn, err := transport.DialOptions(addr, transport.Options{DisableSharedMemory: disableSHM})
	if err != nil {
		fatalf("wire: dial: %v", err)
	}
	defer conn.Close()
	resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
	if err != nil || resp.Status != rpc.StatusOK {
		fatalf("wire: alloc: %v %v", resp.Status, err)
	}
	oaddr := resp.Addr
	buf := make([]byte, core.DataStride(64))
	return measure(1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := conn.DirectRead(oaddr.RKey(), oaddr.VAddr(), buf); err != nil {
				fatalf("wire: direct read: %v", err)
			}
		}
	})
}

// measureMultiRead is the batch=128 read; numbers are per sub-read.
func measureMultiRead(disableSHM bool) wireNumbers {
	const batch = 128
	_, addr, done := wireNode()
	defer done()
	cli, err := client.CreateCtxOptions(addr, transport.Options{DisableSharedMemory: disableSHM})
	if err != nil {
		fatalf("wire: client: %v", err)
	}
	defer cli.Close()
	payload := make([]byte, 64)
	addrs := make([]*core.Addr, batch)
	bufs := make([][]byte, batch)
	for i := range addrs {
		a, err := cli.Alloc(64)
		if err != nil {
			fatalf("wire: alloc: %v", err)
		}
		if err := cli.Write(&a, payload); err != nil {
			fatalf("wire: write: %v", err)
		}
		addrs[i] = &a
		bufs[i] = make([]byte, 64)
	}
	return measure(batch, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			results, err := cli.MultiRead(addrs, bufs)
			if err != nil {
				fatalf("wire: multi read: %v", err)
			}
			for k := range results {
				if results[k].Err != nil {
					fatalf("wire: sub read: %v", results[k].Err)
				}
			}
		}
	})
}

// runWire executes the wire drill and writes the JSON report. The bars are
// recorded (and printed) but do not fail the run — wall-clock bars belong
// to the machine that sets the baseline; the deterministic alloc budgets
// are enforced by TestDirectReadAllocBudget / TestBatchReadAllocBudget.
func runWire(args []string) {
	fs := flag.NewFlagSet("wire", flag.ExitOnError)
	out := fs.String("out", "BENCH_wire.json", "output JSON path")
	fs.Parse(args)

	res := wireResult{
		BaselineNote: "before = pre-zero-copy wire (concat+Write framing, staging copies, no shm), TCP loopback, 1 goroutine, 64B objects; multi_read_128 rows are per sub-read",
		Before:       wireBaseline,
		After:        map[string]wireNumbers{},
		Bars:         map[string]bool{},
	}

	res.After["rpc_single_shm"] = measureRPC(false)
	res.After["rpc_single_tcp"] = measureRPC(true)
	res.After["direct_read_shm"] = measureDirectRead(false)
	res.After["direct_read_tcp"] = measureDirectRead(true)
	res.After["multi_read_128_shm"] = measureMultiRead(false)
	res.After["multi_read_128_tcp"] = measureMultiRead(true)

	res.SpeedupSHMOverTCP = res.After["rpc_single_tcp"].NsPerOp / res.After["rpc_single_shm"].NsPerOp
	res.Bars["rpc_single_latency_down_25pct"] =
		res.After["rpc_single_shm"].NsPerOp <= 0.75*res.Before["rpc_single"].NsPerOp
	res.Bars["direct_read_allocs_le_4"] =
		res.After["direct_read_shm"].AllocsPerOp <= 4 && res.After["direct_read_tcp"].AllocsPerOp <= 4
	res.Bars["multi_read_128_ge_3m_sub_reads"] =
		res.After["multi_read_128_shm"].OpsPerSec >= 3_000_000
	res.Bars["shm_2x_over_tcp_single_op"] = res.SpeedupSHMOverTCP >= 2

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatalf("wire: marshal: %v", err)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatalf("wire: write %s: %v", *out, err)
	}
	os.Stdout.Write(doc)
	for name, ok := range res.Bars {
		if !ok {
			fmt.Fprintf(os.Stderr, "wire: bar missed on this machine: %s\n", name)
		}
	}
}
