module corm

go 1.22
