// Elastic-memory benchmarks: the cost of serving reads from an
// oversubscribed store (resident hits mixed with tier fault-ins) and the
// raw fault-in path itself. Full oversubscription curves with hot-set
// latency bars come from `go run ./cmd/corm-bench tiering`.
package corm

import (
	"testing"

	"corm/internal/core"
)

// benchTieredStore preloads objs objects of the given size into a store
// whose frame budget is budgetFrac of the resulting working set, spilling
// the overflow into the compressed tier.
func benchTieredStore(b *testing.B, objs, size int, budgetFrac float64) (*core.Store, []core.Addr) {
	b.Helper()
	working := int64(objs * size)
	s := benchStore(b, func(c *Config) {
		c.MemBudgetBytes = int64(budgetFrac * float64(working))
		c.TierSpec = "compressed"
	})
	b.Cleanup(func() { s.Close() })
	addrs := make([]core.Addr, objs)
	payload := make([]byte, size)
	for i := range addrs {
		r, err := s.AllocOn(i%s.Workers(), size)
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = r.Addr
		if err := s.Write(&addrs[i], payload); err != nil {
			b.Fatal(err)
		}
	}
	return s, addrs
}

// BenchmarkTieredRead reads round-robin across a working set twice the
// frame budget: roughly half the accesses hit resident blocks, the rest
// take the spill-out/fault-in cycle. The number to watch against
// BenchmarkFig09RPCRead is the oversubscription tax on the average read.
func BenchmarkTieredRead(b *testing.B) {
	const objs, size = 2048, 512
	s, addrs := benchTieredStore(b, objs, size, 0.5)
	buf := make([]byte, s.ClassSize(int(addrs[0].Class())))
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(&addrs[i%objs], buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Residency().Stats()
	if st.FaultIns == 0 && b.N > objs {
		b.Fatal("no fault-ins: benchmark is not oversubscribed")
	}
	b.ReportMetric(float64(st.FaultIns)/float64(b.N), "faults/op")
}

// BenchmarkFaultIn isolates the fault-in path: every timed read lands on
// an evicted block (one object per block; the whole set is force-evicted
// outside the timed region each sweep), so each op pays frame allocation,
// tier decompression, and the refill copy.
func BenchmarkFaultIn(b *testing.B) {
	const objs, size = 64, 2048                    // one object per 4 KiB block
	s, addrs := benchTieredStore(b, objs, size, 4) // budget ample: only explicit eviction
	buf := make([]byte, s.ClassSize(int(addrs[0].Class())))
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%objs == 0 {
			b.StopTimer()
			for s.EvictBlocks(objs) > 0 {
			}
			b.StartTimer()
		}
		if _, err := s.Read(&addrs[i%objs], buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.Residency().Stats(); st.FaultIns < int64(b.N/2) {
		b.Fatalf("only %d fault-ins across %d reads: eviction sweep not sticking", st.FaultIns, b.N)
	}
}
