// Benchmarks mapping to every table and figure of the paper's evaluation.
//
// Each BenchmarkFigNN exercises the code path behind the corresponding
// figure; DES-driven figures run a short simulation per iteration and
// report the *simulated* metric (Kreq/s, conflicts/s, µs) via
// b.ReportMetric, while CPU-bound paths (allocator, local reads,
// compaction) are genuine Go benchmarks. Full paper-style tables come from
// `go run ./cmd/corm-bench all`.
package corm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"corm/internal/core"
	"corm/internal/experiments"
	"corm/internal/prob"
	"corm/internal/stats"
	"corm/internal/timing"
	"corm/internal/workload"
)

// benchStore builds a data-backed store outside the timed region.
func benchStore(b *testing.B, mutate func(*Config)) *core.Store {
	b.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.NewStore(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// --- Table 1 / Table 3: static content; benchmark their generation.

func BenchmarkTable1And3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1()
		experiments.Table3()
	}
}

// --- Figure 7: analytical compaction probability.

func BenchmarkFig07Probability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prob.Figure7()
	}
	pts := prob.Figure7()
	b.ReportMetric(pts[len(pts)-1].CoRM16, "p(corm16,256B,50%)")
}

// --- Figure 8: remapping strategies (one full compact+remap per iter).

func benchmarkRemap(b *testing.B, remap core.RemapStrategy) {
	var lastFirstRead time.Duration
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig8()
		_ = tables
		lastFirstRead = 0
	}
	_ = lastFirstRead
}

func BenchmarkFig08RemapStrategies(b *testing.B) {
	benchmarkRemap(b, core.RemapODPPrefetch)
}

// --- Figure 9: operation latencies with direct pointers (real store ops).

func BenchmarkFig09AllocFree(b *testing.B) {
	s := benchStore(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.AllocOn(i%s.Workers(), 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Free(&r.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09RPCRead(b *testing.B) {
	for _, size := range []int{8, 256, 2048} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			s := benchStore(b, nil)
			r, _ := s.AllocOn(0, size)
			buf := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := r.Addr
				if _, err := s.Read(&a, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig09RPCWrite(b *testing.B) {
	for _, size := range []int{8, 256, 2048} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			s := benchStore(b, nil)
			r, _ := s.AllocOn(0, size)
			buf := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := r.Addr
				if err := s.Write(&a, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig09DirectRead(b *testing.B) {
	for _, size := range []int{8, 256, 2048} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			s := benchStore(b, nil)
			r, _ := s.AllocOn(0, size)
			client := s.ConnectClient()
			buf := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			var modeled time.Duration
			for i := 0; i < b.N; i++ {
				cost, err := client.DirectRead(r.Addr, buf)
				if err != nil {
					b.Fatal(err)
				}
				modeled = cost.Latency
			}
			b.ReportMetric(float64(modeled.Nanoseconds())/1e3, "modeled-us")
		})
	}
}

// --- Figure 10: indirect pointers — ScanRead and server-side correction.

func BenchmarkFig10ScanRead(b *testing.B) {
	s := benchStore(b, nil)
	// Build one block with a moved object: fill two blocks at slot 0.
	per := s.Allocator().Config().SlotsPerBlock(64)
	var addrs []core.Addr
	for i := 0; i < 2*per; i++ {
		r, err := s.AllocOn(0, 64)
		if err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, r.Addr)
	}
	for i := range addrs {
		if i%per != 0 {
			s.Free(&addrs[i])
		}
	}
	class := s.Allocator().Config().ClassFor(64)
	if r := s.CompactClass(core.CompactOptions{Class: class, Leader: 0}); r.ObjectsMoved == 0 {
		b.Fatal("no object moved")
	}
	// Find the stale pointer.
	client := s.ConnectClient()
	buf := make([]byte, 64)
	var stale core.Addr
	for i := 0; i < 2*per; i += per {
		if _, err := client.DirectRead(addrs[i], buf); errors.Is(err, core.ErrWrongObject) {
			stale = addrs[i]
		}
	}
	if stale.IsZero() {
		b.Fatal("no stale pointer found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := stale // fresh indirect copy each time
		if _, err := client.ScanRead(&a, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10PointerCorrectionRPC(b *testing.B) {
	s := benchStore(b, nil)
	per := s.Allocator().Config().SlotsPerBlock(64)
	var addrs []core.Addr
	for i := 0; i < 2*per; i++ {
		r, _ := s.AllocOn(0, 64)
		addrs = append(addrs, r.Addr)
	}
	for i := range addrs {
		if i%per != 0 {
			s.Free(&addrs[i])
		}
	}
	class := s.Allocator().Config().ClassFor(64)
	s.CompactClass(core.CompactOptions{Class: class, Leader: 0})
	client := s.ConnectClient()
	buf := make([]byte, 64)
	var stale core.Addr
	for i := 0; i < 2*per; i += per {
		if _, err := client.DirectRead(addrs[i], buf); errors.Is(err, core.ErrWrongObject) {
			stale = addrs[i]
		}
	}
	if stale.IsZero() {
		b.Skip("no moved object this seed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := stale
		if _, err := s.Read(&a, buf); err != nil { // server-side correction
			b.Fatal(err)
		}
	}
}

// --- Figure 11: local read path vs memcpy (genuine wall clock).

func BenchmarkFig11LocalRead(b *testing.B) {
	for _, size := range []int{8, 256, 2048} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			s := benchStore(b, nil)
			r, _ := s.AllocOn(0, size)
			reader := core.NewLocalReader(s)
			obj, err := reader.Bind(r.Addr)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reader.Read(obj, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig11Memcpy(b *testing.B) {
	for _, size := range []int{8, 256, 2048} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			src := make([]byte, size)
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(dst, src)
			}
		})
	}
}

// --- Figures 12-14: YCSB simulation (short windows, simulated metrics).

func BenchmarkFig12YCSBSim(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		h, p := experiments.NewYCSBBench(50_000, 8, workload.DistZipf, 0.99, workload.Mix95, true, 1)
		rate, _ = h.Run(p)
	}
	b.ReportMetric(rate/1e3, "sim-Kreq/s")
}

func BenchmarkFig13ConflictSim(b *testing.B) {
	var conflicts float64
	for i := 0; i < b.N; i++ {
		h, p := experiments.NewYCSBBench(50_000, 16, workload.DistZipf, 0.99, workload.Mix50, true, 1)
		_, conflicts = h.Run(p)
	}
	b.ReportMetric(conflicts, "sim-conflicts/s")
}

func BenchmarkFig14FragmentationSim(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		h, p := experiments.NewYCSBBenchFrag(50_000, 8, workload.DistZipf, 0.8, workload.Mix100, true, 1)
		rate, _ = h.Run(p)
	}
	b.ReportMetric(rate/1e3, "sim-Kreq/s-fragmented")
}

// --- Figure 15: compaction stages (real compaction work, modeled time).

func BenchmarkFig15Compaction(b *testing.B) {
	for _, blocks := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("%dblocks", blocks), func(b *testing.B) {
			var modeled time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := benchStore(b, func(c *Config) { c.Workers = blocks })
				for th := 0; th < blocks; th++ {
					if _, err := s.AllocOn(th, 32); err != nil {
						b.Fatal(err)
					}
				}
				class := s.Allocator().Config().ClassFor(32)
				b.StartTimer()
				r := s.CompactClass(core.CompactOptions{Class: class, Leader: 0})
				modeled = r.Duration
				if r.BlocksFreed != blocks-1 {
					b.Fatalf("freed %d", r.BlocksFreed)
				}
			}
			b.ReportMetric(float64(modeled.Microseconds()), "modeled-us")
		})
	}
}

// --- Figure 16: throughput timeline (short sim window per iteration).

func BenchmarkFig16TimelineSim(b *testing.B) {
	var freed int
	for i := 0; i < b.N; i++ {
		freed = experiments.TimelineBench(40_000, 1)
	}
	b.ReportMetric(float64(freed), "blocks-freed")
}

// --- Figures 17-19: trace replay + compaction (accounting mode).

func BenchmarkFig17SpikeTrace(b *testing.B) {
	var active int64
	for i := 0; i < b.N; i++ {
		tr := workload.NewSpikeTrace(1, 2048, 100_000, 0.75)
		active = experiments.RunTraceBench(tr, core.StrategyCoRM, 16, 8, 1)
	}
	b.ReportMetric(float64(active)/float64(1<<20), "active-MiB")
}

func BenchmarkFig18RedisT3Vanilla(b *testing.B) {
	var active int64
	for i := 0; i < b.N; i++ {
		active = experiments.RunTraceBench(workload.RedisT3(1), core.StrategyCoRM, 16, 8, 1)
	}
	b.ReportMetric(float64(active)/float64(1<<20), "active-MiB")
}

func BenchmarkFig19RedisT3Hybrid(b *testing.B) {
	var active int64
	for i := 0; i < b.N; i++ {
		active = experiments.RunTraceBench(workload.RedisT3(1), core.StrategyHybrid, 16, 8, 1)
	}
	b.ReportMetric(float64(active)/float64(1<<20), "active-MiB")
}

// --- Core data-structure microbenchmarks (ablations).

func BenchmarkAllocatorThroughput(b *testing.B) {
	s := benchStore(b, func(c *Config) { c.DataBacked = false; c.Remap = RemapRereg; c.Model = timing.Default() })
	rng := rand.New(rand.NewSource(1))
	var live []core.Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) > 1000 && i%2 == 0 {
			j := rng.Intn(len(live))
			if err := s.Free(&live[j]); err != nil {
				b.Fatal(err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		r, err := s.AllocOn(i%s.Workers(), 64)
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, r.Addr)
	}
}

func BenchmarkCompactionProbabilityFormula(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prob.NoCollision(1<<16, 4096, 1000, 1200)
	}
}

func BenchmarkZipfGenerator(b *testing.B) {
	z := workload.NewZipf(rand.New(rand.NewSource(1)), 1<<20, 0.99, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkSeriesRecord(b *testing.B) {
	s := stats.NewSeries(100 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(time.Duration(i) * time.Microsecond)
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md).

func BenchmarkAblationConsistency(b *testing.B) {
	for _, mode := range []core.ConsistencyMode{core.ConsistencyVersions, core.ConsistencyChecksum} {
		for _, size := range []int{256, 2048, 8192} {
			b.Run(fmt.Sprintf("%v/%dB", mode, size), func(b *testing.B) {
				s := benchStore(b, func(c *Config) { c.Consistency = mode; c.BlockBytes = 1 << 20 })
				r, err := s.AllocOn(0, size)
				if err != nil {
					b.Fatal(err)
				}
				client := s.ConnectClient()
				buf := make([]byte, size)
				var modeled time.Duration
				b.SetBytes(int64(core.StrideOf(mode, size)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cost, err := client.DirectRead(r.Addr, buf)
					if err != nil {
						b.Fatal(err)
					}
					modeled = cost.Latency
				}
				b.ReportMetric(float64(modeled.Nanoseconds())/1e3, "modeled-us")
			})
		}
	}
}

func BenchmarkAblationHugePageRemap(b *testing.B) {
	nic := timing.ConnectX3()
	var small, huge time.Duration
	for i := 0; i < b.N; i++ {
		small = nic.MmapCost(256) + nic.Rereg(256) // 1 MiB in 4 KiB pages
		huge = nic.MmapCost(1) + nic.Rereg(1)      // 1 MiB in one huge page
	}
	b.ReportMetric(float64(small.Microseconds()), "4KiB-pages-us")
	b.ReportMetric(float64(huge.Microseconds()), "2MiB-page-us")
}

func BenchmarkAblationMergeBudget(b *testing.B) {
	for _, attempts := range []int{1, 8} {
		b.Run(fmt.Sprintf("attempts=%d", attempts), func(b *testing.B) {
			var freed int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := benchStore(b, func(c *Config) {
					c.DataBacked = false
					c.Remap = RemapRereg
					c.Model = timing.Default()
					c.BlockBytes = 1 << 20
				})
				rng := rand.New(rand.NewSource(1))
				tr := workload.NewSpikeTrace(1, 2048, 50_000, 0.6)
				var addrs []core.Addr
				for {
					ev, ok := tr.Next()
					if !ok {
						break
					}
					if ev.Op == workload.TAlloc {
						r, _ := s.AllocOn(rng.Intn(s.Workers()), ev.Size)
						addrs = append(addrs, r.Addr)
					} else {
						s.Free(&addrs[ev.Index])
					}
				}
				class := s.Allocator().Config().ClassFor(2048)
				b.StartTimer()
				r := s.CompactClass(core.CompactOptions{
					Class: class, Leader: 0, MaxOccupancy: Occ(0.95), MaxAttempts: attempts,
				})
				freed = r.BlocksFreed
			}
			b.ReportMetric(float64(freed), "blocks-freed")
		})
	}
}

// BenchmarkBackgroundCompaction measures the compaction service end to
// end: a fragmented heap, a mixed read/write/alloc/free workload through a
// local client, and the background compactor reclaiming behind it. The
// headline metric is reclaimed bytes/s; read errors fail the benchmark, so
// it doubles as the "no client-visible failures under -compact=auto" check.
func BenchmarkBackgroundCompaction(b *testing.B) {
	srv, err := NewServer(DefaultConfig(), WithBackgroundCompaction(CompactorConfig{
		Interval:  time.Millisecond,
		MaxBlocks: 8,
		Policy:    &ThresholdPolicy{MaxOccupancy: Occ(1.0)},
	}))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := srv.ConnectLocal()
	if err != nil {
		b.Fatal(err)
	}

	// Fragment the heap: fill 64B blocks, strand 1 slot in 16.
	const size = 64
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	all := make([]Addr, 4096)
	for i := range all {
		a, err := cli.Alloc(size)
		if err != nil {
			b.Fatal(err)
		}
		all[i] = a
	}
	var live []Addr
	for i := range all {
		if i%16 == 0 {
			if err := cli.Write(&all[i], payload); err != nil {
				b.Fatal(err)
			}
			live = append(live, all[i])
		} else if err := cli.Free(&all[i]); err != nil {
			b.Fatal(err)
		}
	}

	buf := make([]byte, size)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0, 1:
			if _, err := cli.Read(&live[i%len(live)], buf); err != nil {
				b.Fatalf("read under background compaction: %v", err)
			}
		case 2:
			if err := cli.Write(&live[i%len(live)], payload); err != nil {
				b.Fatalf("write under background compaction: %v", err)
			}
		default:
			a, err := cli.Alloc(size)
			if err != nil {
				b.Fatal(err)
			}
			if err := cli.Free(&a); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Give the service at least one pacing window so a -benchtime=1x smoke
	// run still observes reclaim.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().BlocksFreed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	st := srv.Stats()
	reclaimed := float64(st.BlocksFreed) * float64(srv.Store().Config().BlockBytes)
	b.ReportMetric(reclaimed/elapsed.Seconds()/1e6, "reclaimed-MB/s")
	b.ReportMetric(float64(st.BlocksFreed), "blocks-freed")
}

func BenchmarkAutoTunerSnapshot(b *testing.B) {
	s := benchStore(b, func(c *Config) { c.DataBacked = false; c.Remap = RemapRereg; c.Model = timing.Default() })
	tuner := core.NewAutoTuner(s)
	for i := 0; i < 1000; i++ {
		s.AllocOn(0, 64)
		tuner.ObserveAlloc(5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner.Snapshot()
	}
}
