// Near-data compute benchmarks and correctness hammers. The benchmarks
// put numbers on the pushdown claim tracked in BENCH_pushdown.json: a
// server-side FetchAdd is one round trip where the client-side emulation
// pays lock + Read + Write, and under contention the emulation's lock
// serializes everything while pushdown ops pipeline. The linearizability
// test is the acceptance bar for the atomics themselves: 16 goroutines of
// mixed CAS/FetchAdd against one counter, with compaction merging blocks
// underneath, must lose no increment.
package corm

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"corm/internal/client"
	"corm/internal/core"
)

// benchCounter starts a node over the selected wire with one zeroed
// 8-byte counter.
func benchCounter(b *testing.B, disableSHM bool) (*Client, core.Addr) {
	b.Helper()
	cli, addrs := benchWireClient(b, disableSHM, 0)
	_ = addrs
	ctr, err := cli.Alloc(8)
	if err != nil {
		b.Fatal(err)
	}
	if err := cli.Write(&ctr, make([]byte, 8)); err != nil {
		b.Fatal(err)
	}
	return cli, ctr
}

// BenchmarkPushdownFetchAdd is the blocking single-op pushdown add.
func BenchmarkPushdownFetchAdd(b *testing.B) {
	for _, v := range wireVariants {
		b.Run(v.name, func(b *testing.B) {
			cli, ctr := benchCounter(b, v.disableSHM)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.FetchAdd(&ctr, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkPushdownFetchAddAsync keeps a window of futures in flight; the
// client coalesces them into OpMultiRMW frames.
func BenchmarkPushdownFetchAddAsync(b *testing.B) {
	const window = 64
	for _, v := range wireVariants {
		b.Run(v.name, func(b *testing.B) {
			cli, ctr := benchCounter(b, v.disableSHM)
			addrs := make([]core.Addr, window)
			for i := range addrs {
				addrs[i] = ctr
			}
			futs := make([]*client.AtomicFuture, 0, window)
			b.ReportAllocs()
			b.ResetTimer()
			issued := 0
			for issued < b.N {
				futs = futs[:0]
				for i := 0; i < window && issued < b.N; i++ {
					futs = append(futs, cli.FetchAddAsync(&addrs[i], 0, 1))
					issued++
				}
				cli.Flush()
				for _, f := range futs {
					if _, err := f.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkEmulatedFetchAdd is what the caller had before pushdown: a
// lock (required for atomicity), a Read, an increment, a Write.
func BenchmarkEmulatedFetchAdd(b *testing.B) {
	for _, v := range wireVariants {
		b.Run(v.name, func(b *testing.B) {
			cli, ctr := benchCounter(b, v.disableSHM)
			var mu sync.Mutex
			buf := make([]byte, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mu.Lock()
				if _, err := cli.Read(&ctr, buf); err != nil {
					b.Fatal(err)
				}
				binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
				if err := cli.Write(&ctr, buf); err != nil {
					b.Fatal(err)
				}
				mu.Unlock()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// TestFetchAddAllocBudget pins the pushdown hot path: one blocking
// FetchAdd round trip costs at most 1 allocation on either wire.
func TestFetchAddAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; budgets hold for production builds")
	}
	for _, v := range wireVariants {
		t.Run(v.name, func(t *testing.T) {
			cli, _ := benchWireClientT(t, v.disableSHM, 0)
			ctr, err := cli.Alloc(8)
			if err != nil {
				t.Fatal(err)
			}
			if err := cli.Write(&ctr, make([]byte, 8)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				if _, err := cli.FetchAdd(&ctr, 0, 1); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := cli.FetchAdd(&ctr, 0, 1); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 1 {
				t.Fatalf("FetchAdd costs %.1f allocs/op, budget 1", allocs)
			}
		})
	}
}

// TestWriteAllocBudget pins the lease-converted Write path (the response
// is now decoded out of the receive lease, not a copied payload).
func TestWriteAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; budgets hold for production builds")
	}
	for _, v := range wireVariants {
		t.Run(v.name, func(t *testing.T) {
			cli, addrs := benchWireClientT(t, v.disableSHM, 1)
			payload := make([]byte, 64)
			for i := 0; i < 64; i++ {
				if err := cli.Write(addrs[0], payload); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := cli.Write(addrs[0], payload); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 1 {
				t.Fatalf("Write costs %.1f allocs/op, budget 1", allocs)
			}
		})
	}
}

// TestCASFetchAddLinearizable is the acceptance hammer: 16 goroutines of
// mixed FetchAdd and CAS increments against one 8-byte counter while the
// server compacts the counter's class continuously. Every increment must
// land exactly once — the final counter equals the oracle kept with
// process atomics. Run with -race this also proves the server-side
// mutation path is data-race free against compaction.
func TestCASFetchAddLinearizable(t *testing.T) {
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := srv.ConnectLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctr, err := cli.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(&ctr, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	class := int(ctr.Class())

	// Fragment the counter's class so every compaction pass has real
	// merges to perform around the counter.
	var churn []Addr
	for i := 0; i < 512; i++ {
		a, err := cli.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		churn = append(churn, a)
	}
	for i := range churn {
		if i%2 == 0 {
			if err := cli.Free(&churn[i]); err != nil {
				t.Fatal(err)
			}
		}
	}

	const (
		goroutines = 16
		perG       = 200
	)
	var oracle atomic.Uint64
	var stop atomic.Bool
	var compWG sync.WaitGroup
	compWG.Add(1)
	go func() {
		defer compWG.Done()
		for !stop.Load() {
			srv.Store().CompactClass(core.CompactOptions{Class: class, Leader: 0, MaxOccupancy: Occ(1.0)})
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := ctr
			buf := make([]byte, 8)
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					if _, err := cli.FetchAdd(&a, 0, 1); err != nil {
						t.Errorf("fetchadd: %v", err)
						return
					}
					oracle.Add(1)
					continue
				}
				// CAS increment loop: read, attempt old -> old+1.
				for {
					if _, err := cli.Read(&a, buf); err != nil {
						t.Errorf("read: %v", err)
						return
					}
					old := binary.LittleEndian.Uint64(buf)
					newb := make([]byte, 8)
					binary.LittleEndian.PutUint64(newb, old+1)
					err := cli.CAS(&a, 0, buf[:8], newb)
					if err == nil {
						oracle.Add(1)
						break
					}
					if !errors.Is(err, ErrConflict) {
						t.Errorf("cas: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	compWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	buf := make([]byte, 8)
	if _, err := cli.Read(&ctr, buf); err != nil {
		t.Fatal(err)
	}
	got := binary.LittleEndian.Uint64(buf)
	want := oracle.Load()
	if got != want {
		t.Fatalf("lost updates: counter=%d oracle=%d (%d increments lost)", got, want, want-got)
	}
	if want != goroutines*perG {
		t.Fatalf("oracle is %d, expected %d successful increments", want, goroutines*perG)
	}
}
