// Replication benchmarks: the cost of k-way fan-out writes and
// failed-over reads against the in-process cluster harness, comparable
// with the single-node TCP numbers in bench_results.txt. Replicated puts
// fan out in parallel through each node's async write batcher; the
// remaining overhead versus k=1 is the per-replica alloc round trip, the
// version-tagged record copy, and the alloc-swap-free of the overwritten
// generation.
package corm

import (
	"fmt"
	"testing"

	"corm/internal/cluster"
)

// benchReplicatedKV spins a 3-node loopback cluster and a replicated KV.
func benchReplicatedKV(b *testing.B, k, w int) (*cluster.LocalCluster, *KV) {
	b.Helper()
	c, err := cluster.SpinLocal(3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	kv := NewReplicatedKV(c.Pool(), ReplicationConfig{Replicas: k, WriteConcern: w})
	return c, kv
}

// BenchmarkReplicatedWrite measures KV puts at k=3 W=2 (the deployment
// the chaos suite drills), overwriting a rotating working set so version
// bumps and record frees stay on the hot path.
func BenchmarkReplicatedWrite(b *testing.B) {
	_, kv := benchReplicatedKV(b, 3, 2)
	value := make([]byte, 128)
	b.SetBytes(int64(len(value)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(fmt.Sprintf("bench-%d", i%512), value); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnreplicatedWrite is the k=1 baseline for the same workload.
func BenchmarkUnreplicatedWrite(b *testing.B) {
	_, kv := benchReplicatedKV(b, 1, 1)
	value := make([]byte, 128)
	b.SetBytes(int64(len(value)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(fmt.Sprintf("bench-%d", i%512), value); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailoverRead measures reads whose primary replica is dead:
// every Get walks past the downed node (breaker-gated after the first
// few) and serves from a backup.
func BenchmarkFailoverRead(b *testing.B) {
	c, kv := benchReplicatedKV(b, 3, 2)
	value := make([]byte, 128)
	for i := 0; i < 512; i++ {
		if err := kv.Put(fmt.Sprintf("bench-%d", i), value); err != nil {
			b.Fatal(err)
		}
	}
	c.Node(kv.ReplicasFor("bench-0")[0]).Kill()
	b.SetBytes(int64(len(value)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := kv.Get("bench-0"); err != nil || !ok {
			b.Fatalf("get: %v (found=%v)", err, ok)
		}
	}
}
