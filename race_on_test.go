//go:build race

package corm

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation adds allocations of its own — alloc-budget guards
// are meaningless under it.
const raceEnabled = true
