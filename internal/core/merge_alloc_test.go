package core

import (
	"runtime"
	"testing"
)

// mallocsDuring counts heap allocations performed by f on this goroutine.
func mallocsDuring(f func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// mergeAllocs builds a fragmented two-block Mesh store where one merge
// copies exactly `keep` objects, then returns the heap allocations of the
// CompactClass run alone.
func mergeAllocs(t *testing.T, keep int) uint64 {
	t.Helper()
	const size = 64
	// CoRM's 16-bit ID space keeps the §3.4 probability prune inert even
	// for dense pairs; disjoint slot ranges mean no relocations, so the
	// copy count is exactly `keep` regardless of strategy.
	s := testStore(t, func(c *Config) {
		c.Workers = 1
		c.BlockBytes = 16384
	})
	per := s.Allocator().Config().SlotsPerBlock(size)
	if 2*keep > per {
		t.Fatalf("keep %d does not fit a %d-slot block", keep, per)
	}
	var all []Addr
	for i := 0; i < 2*per; i++ {
		r, err := s.AllocOn(0, size)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, r.Addr)
	}
	// Block A keeps slots [0,keep), block B keeps [keep,2*keep): disjoint
	// offsets, one merge copying `keep` objects.
	for i := range all {
		block, slot := i/per, i%per
		if (block == 0 && slot < keep) || (block == 1 && slot >= keep && slot < 2*keep) {
			continue
		}
		if err := s.Free(&all[i]); err != nil {
			t.Fatal(err)
		}
	}
	class := s.Allocator().Config().ClassFor(size)
	var r CompactReport
	allocs := mallocsDuring(func() {
		r = s.CompactClass(CompactOptions{Class: class, Leader: 0})
	})
	if r.Merges != 1 || r.ObjectsCopied != keep {
		t.Fatalf("merge shape changed: %+v (want 1 merge, %d copies)", r, keep)
	}
	return allocs
}

// TestMergeBufferHoisted guards the staging-buffer hoist in Store.merge:
// the copy loop must reuse ONE buffer per merge, not allocate one per
// object. Metadata maps make some per-object allocation legitimate, so the
// guard bounds the SLOPE — extra allocations per extra copied object —
// which jumps by a full +1.0 if the per-object make([]byte, stride)
// regression ever returns.
func TestMergeBufferHoisted(t *testing.T) {
	small, large := 16, 56
	a := mergeAllocs(t, small)
	b := mergeAllocs(t, large)
	slope := (float64(b) - float64(a)) / float64(large-small)
	t.Logf("allocs: %d@%d objects, %d@%d objects, slope %.2f allocs/object", a, small, b, large, slope)
	// Measured slope with the hoisted buffer: 0.0 — the whole run is free
	// of per-object allocations. The buffer bug adds exactly +1.0.
	if slope > 0.9 {
		t.Fatalf("merge allocates %.2f times per copied object (want < 0.9) — staging buffer regressed to per-object?", slope)
	}
}
