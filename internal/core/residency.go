package core

import (
	"errors"
	"fmt"
	"time"

	"corm/internal/mem"
	"corm/internal/tier"
)

// The store half of elastic memory: glue between the tier package's
// residency manager and the store's block-state protocol. The design
// reuses the locks the store already has — every residency transition
// (spill-out, fault-in) happens under the block's rw write lock, the same
// lock the RPC mutation path and the compaction executor take — so "a
// fault-in racing an eviction" reduces to two writers contending for one
// mutex. The per-block state machine is:
//
//	Resident --SpillOut (tryEvict, holds rw)--> Evicted
//	Evicted  --FaultIn (faultInLocked, holds rw)--> Faulting --> Resident
//
// Eviction is driven from two places: the Phys frame allocator's budget
// hook (reclaimFrames, invoked when an allocation would overshoot the
// budget) and the explicit EvictBlocks helper for tests and benchmarks.
// Fault-in is driven from every path that touches block memory: the RPC
// read/write/free paths, pushdown ops, the compaction copy phase, and —
// via the RNIC's page-fault upcall — one-sided RDMA access to an evicted
// page (the ODP hardware path of §3.5, extended to major faults).

// heatRefreshInterval throttles AutoTuner snapshots on the reclaim path:
// labels move slowly, reclaim can run hot.
const heatRefreshInterval = 100 * time.Millisecond

// allocFaultRetries bounds how many evict-then-fault rounds one AllocOn
// rides out before giving up. Fault-in sets the clock's reference bit, so
// re-evicting the same block needs two full clock laps — more than one
// retry is already rare.
const allocFaultRetries = 8

// errNotResident routes an AllocAnd callback abort: the chosen block is
// evicted, fault it in outside the thread-local lock and retry.
var errNotResident = errors.New("core: allocation target block not resident")

// Tiered reports whether the store runs with a residency manager (a frame
// budget and/or an explicit tier spec).
func (s *Store) Tiered() bool { return s.res != nil }

// Residency exposes the residency manager (nil when tiering is off) for
// tests, benchmarks, and the metrics endpoints.
func (s *Store) Residency() *tier.Residency { return s.res }

// Close releases tiering resources (the disk tier's spill directory).
// Stores without a tier need no teardown; Close is then a no-op.
func (s *Store) Close() error {
	if s.tierImpl != nil {
		return s.tierImpl.Close()
	}
	return nil
}

// faultInLocked makes st's block resident. The caller holds st.rw
// exclusively and has passed the gone() check. No-op (plus a clock touch)
// when tiering is off or the block is already resident.
func (s *Store) faultInLocked(st *blockState) error {
	h := st.resH
	if h == nil {
		return nil
	}
	h.Touch()
	if h.State() == tier.Resident {
		return nil
	}
	start := time.Now()
	if err := s.res.FaultIn(h); err != nil {
		return fmt.Errorf("core: fault-in of block %#x: %w", st.VAddr, err)
	}
	cmFaultIns.Inc()
	cmFaultInNs.Observe(time.Since(start).Nanoseconds())
	cmEvictedBlocks.Dec()
	// Predicted-hot blocks get their MTT entries restored eagerly
	// (ibv_advise_mr); cold blocks repopulate lazily through ODP misses.
	if s.cfg.Remap == RemapODPPrefetch && s.cfg.DataBacked && h.Hot() {
		if _, err := s.nic.AdviseMR(st.VAddr, st.Pages*mem.PageSize); err == nil {
			cmTierPrefetches.Inc()
		}
	}
	return nil
}

// ensureResidentSlow faults st in under its write lock — the slow half of
// rlockResident and the body of the NIC page-fault upcall.
func (s *Store) ensureResidentSlow(st *blockState) error {
	h := st.resH
	if h == nil || h.State() == tier.Resident {
		if h != nil {
			h.Touch()
		}
		return nil
	}
	st.rw.Lock()
	defer st.rw.Unlock()
	if err := st.gone(); err != nil {
		if errors.Is(err, ErrCompacting) {
			// The block dissolved (or is mid-merge) since the caller
			// resolved it: its base now routes to the merge destination,
			// which the executor faulted in. The access can proceed.
			return nil
		}
		return err
	}
	return s.faultInLocked(st)
}

// rlockResident acquires st.rw in read mode with the block live and
// resident — the read-path entry gate. On success the caller holds the
// read lock; residency cannot regress while it does, because SpillOut
// needs the write lock.
func (s *Store) rlockResident(st *blockState) error {
	for {
		st.rw.RLock()
		if err := st.gone(); err != nil {
			st.rw.RUnlock()
			return err
		}
		h := st.resH
		if h == nil || h.State() == tier.Resident {
			if h != nil {
				h.Touch()
			}
			return nil
		}
		st.rw.RUnlock()
		if err := s.ensureResidentSlow(st); err != nil {
			return err
		}
	}
}

// lockResident acquires st.rw in write mode with the block live and
// resident — the mutation-path entry gate.
func (s *Store) lockResident(st *blockState) error {
	st.rw.Lock()
	if err := st.gone(); err != nil {
		st.rw.Unlock()
		return err
	}
	if err := s.faultInLocked(st); err != nil {
		st.rw.Unlock()
		return err
	}
	return nil
}

// handleNICFault is the RNIC's page-fault upcall: a one-sided access hit
// an unmapped page. If the page belongs to an evicted block, fault it in;
// the NIC retries the translation afterwards.
func (s *Store) handleNICFault(vaddr uint64) error {
	st, ok := s.resolveBase(s.blockBase(vaddr))
	if !ok {
		return fmt.Errorf("%w: %#x", ErrInvalidAddr, vaddr)
	}
	return s.ensureResidentSlow(st)
}

// reclaimFrames is the Phys budget hook: evict cold blocks until need
// pages are freed or candidates run out. It runs on whatever goroutine's
// allocation overshot the budget, with no store locks held (Phys drops
// its own mutex before invoking it).
func (s *Store) reclaimFrames(need int) int {
	if s.res == nil {
		return 0
	}
	cmTierReclaims.Inc()
	s.refreshHeat()
	freed := 0
	// Victims can fail validation (aliased, busy, raced away); bound the
	// scan so reclaim under hopeless conditions stays cheap and Alloc's
	// soft-budget overrun takes over.
	for attempts := 4*need + 16; freed < need && attempts > 0; attempts-- {
		h := s.res.NextVictim()
		if h == nil {
			break
		}
		if s.tryEvict(h) {
			freed += h.Pages()
		}
	}
	return freed
}

// refreshHeat re-labels every residency handle from the AutoTuner's
// current hot/cold class labels, at most once per heatRefreshInterval.
// Without a tuner attached every block stays cold-labeled and eviction is
// pure clock order.
func (s *Store) refreshHeat() {
	t := s.tuner.Load()
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	last := s.heatRefreshed.Load()
	if now-last < int64(heatRefreshInterval) || !s.heatRefreshed.CompareAndSwap(last, now) {
		return
	}
	hot := make(map[int]bool)
	for _, l := range t.Snapshot() {
		if l.Hot() {
			hot[l.Class] = true
		}
	}
	s.res.Relabel(func(class int) bool { return hot[class] })
}

// tryEvict validates a clock candidate under its block lock and spills it
// out. TryLock, not Lock: the caller may sit under a thread-local
// allocator's mutex (a refill that overshot the budget), and a Free
// blocked on that same allocator mutex already holds the victim's rw —
// waiting here would deadlock. A missed eviction just advances the clock.
func (s *Store) tryEvict(h *tier.Handle) bool {
	st, ok := s.resolveBase(h.Base())
	if !ok || st.resH != h {
		return false
	}
	if !st.rw.TryLock() {
		return false
	}
	defer st.rw.Unlock()
	// Aliased blocks are pinned: their frames are reachable through other
	// block-base addresses, so unmapping only the primary base would leave
	// stale alias routes to live frames and fault the primary back into
	// fresh ones — two diverging copies. They become evictable when their
	// aliases retire (releaseAlias).
	if st.gone() != nil || st.aliased() || st.Empty() || h.State() != tier.Resident {
		return false
	}
	if err := s.res.SpillOut(h); err != nil {
		return false
	}
	// Cached translations must not serve the recycled frames.
	s.nic.Invalidate(st.VAddr, st.Pages*mem.PageSize)
	cmEvictions.Inc()
	cmEvictedBlocks.Inc()
	return true
}

// EvictBlocks spills up to max cold blocks, returning how many were
// evicted — the explicit knob tests and benchmarks use to construct
// evicted states without waiting for budget pressure.
func (s *Store) EvictBlocks(max int) int {
	if s.res == nil {
		return 0
	}
	s.refreshHeat()
	n := 0
	for attempts := 4*max + 16; n < max && attempts > 0; attempts-- {
		h := s.res.NextVictim()
		if h == nil {
			break
		}
		if s.tryEvict(h) {
			n++
		}
	}
	return n
}
