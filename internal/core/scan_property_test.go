package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
)

// scanSetup builds a fragmented size class: count objects carrying unique
// u64 ids at offset 0, every other object freed so compaction always has
// merges available. Returns the class and the live id set.
func scanSetup(t *testing.T, s *Store, size, count int) (class int, live map[uint64]bool) {
	t.Helper()
	live = make(map[uint64]bool)
	var addrs []Addr
	for i := 0; i < count; i++ {
		r, err := s.AllocOn(0, size)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, r.Addr)
	}
	class = int(addrs[0].Class())
	for i := range addrs {
		if i%2 == 0 {
			id := uint64(i + 1)
			pay := make([]byte, size)
			binary.LittleEndian.PutUint64(pay, id)
			if err := s.Write(&addrs[i], pay); err != nil {
				t.Fatal(err)
			}
			live[id] = true
		} else if err := s.Free(&addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return class, live
}

// collectScan runs one full ScanClass and returns id -> occurrence count.
func collectScan(t *testing.T, s *Store, class int, pred func([]byte) bool) map[uint64]int {
	t.Helper()
	seen := make(map[uint64]int)
	err := s.ScanClass(class, pred, func(_ Addr, pay []byte) bool {
		seen[binary.LittleEndian.Uint64(pay)]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return seen
}

// TestScanExactlyOnceQuiescent: with no concurrent mutation, a scan is
// exactly the live set — every id once, nothing else.
func TestScanExactlyOnceQuiescent(t *testing.T) {
	s := testStore(t, nil)
	class, live := scanSetup(t, s, 64, 512)
	seen := collectScan(t, s, class, func([]byte) bool { return true })
	if len(seen) != len(live) {
		t.Fatalf("scan saw %d objects, live set is %d", len(seen), len(live))
	}
	for id, n := range seen {
		if !live[id] {
			t.Fatalf("scan returned freed/unknown id %d", id)
		}
		if n != 1 {
			t.Fatalf("id %d returned %d times", id, n)
		}
	}
}

// TestScanVsReadFallbackConsistency: a filtered scan must select exactly
// the objects the fallback path selects — reading every live object
// individually and applying the same predicate client-side.
func TestScanVsReadFallbackConsistency(t *testing.T) {
	s := testStore(t, nil)
	class, live := scanSetup(t, s, 64, 512)
	const cutoff = 300
	pred := func(pay []byte) bool { return binary.LittleEndian.Uint64(pay) > cutoff }

	want := make(map[uint64]bool)
	for id := range live {
		if id > cutoff {
			want[id] = true
		}
	}
	seen := collectScan(t, s, class, pred)
	if len(seen) != len(want) {
		t.Fatalf("filtered scan found %d matches, fallback predicate selects %d", len(seen), len(want))
	}
	for id := range seen {
		if !want[id] {
			t.Fatalf("scan matched id %d, which the fallback predicate rejects", id)
		}
	}
}

// TestScanExactlyOnceUnderCompaction is the §3.2-style consistency
// property for pushdown scans: while compaction continuously merges and
// dissolves blocks of the scanned class, every complete scan still
// returns each live record exactly once — never zero times (lost to a
// half-observed merge), never twice (seen at both its old and new homes).
func TestScanExactlyOnceUnderCompaction(t *testing.T) {
	s := testStore(t, nil)
	class, live := scanSetup(t, s, 64, 1024)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			s.CompactClass(CompactOptions{Class: class, Leader: 0, MaxOccupancy: Occ(1.0)})
		}
	}()

	for iter := 0; iter < 50; iter++ {
		seen := collectScan(t, s, class, func([]byte) bool { return true })
		if len(seen) != len(live) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("iter %d: scan saw %d objects, live set is %d", iter, len(seen), len(live))
		}
		for id, n := range seen {
			if !live[id] || n != 1 {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("iter %d: id %d live=%v count=%d", iter, id, live[id], n)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestScanEarlyStop: an emit callback returning false halts the scan
// without error.
func TestScanEarlyStop(t *testing.T) {
	s := testStore(t, nil)
	class, _ := scanSetup(t, s, 64, 128)
	n := 0
	err := s.ScanClass(class, func([]byte) bool { return true }, func(Addr, []byte) bool {
		n++
		return n < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("emit ran %d times after early stop at 5", n)
	}
}
