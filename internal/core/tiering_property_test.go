package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tieredStore builds a data-backed store whose frame budget is far below
// the working set, so every test below runs genuinely oversubscribed.
func tieredStore(t *testing.T, budget int64, mutate func(*Config)) *Store {
	t.Helper()
	return testStore(t, func(c *Config) {
		c.MemBudgetBytes = budget
		c.TierSpec = "compressed"
		c.FragThreshold = 1.2
		if mutate != nil {
			mutate(c)
		}
	})
}

// TestTieredEvictFaultRoundtrip is the deterministic half of the elastic-
// memory invariant: force every block out, then read everything back and
// demand byte-identical payloads through the fault-in path.
func TestTieredEvictFaultRoundtrip(t *testing.T) {
	s := tieredStore(t, 1<<20, nil)
	defer s.Close()
	const size, objs = 512, 64

	addrs := make([]Addr, objs)
	for i := range addrs {
		r, err := s.AllocOn(0, size)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = r.Addr
		if err := s.Write(&addrs[i], fill(size, byte(i))); err != nil {
			t.Fatal(err)
		}
	}

	evicted := 0
	for {
		n := s.EvictBlocks(16)
		if n == 0 {
			break
		}
		evicted += n
	}
	if evicted == 0 {
		t.Fatal("EvictBlocks evicted nothing")
	}
	if s.Residency().Stats().EvictedBlocks == 0 {
		t.Fatal("no blocks in evicted state after full sweep")
	}

	buf := make([]byte, s.ClassSize(int(addrs[0].Class())))
	for i := range addrs {
		if _, err := s.Read(&addrs[i], buf); err != nil {
			t.Fatalf("read %d after eviction: %v", i, err)
		}
		if !bytes.Equal(buf[:size], fill(size, byte(i))) {
			t.Fatalf("object %d corrupted across evict/fault cycle", i)
		}
	}
	st := s.Residency().Stats()
	if st.FaultIns == 0 {
		t.Fatal("reads did not fault anything in")
	}
	// Writes to evicted blocks must fault in too.
	for {
		if s.EvictBlocks(16) == 0 {
			break
		}
	}
	if err := s.Write(&addrs[0], fill(size, 0xEE)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(&addrs[0], buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:size], fill(size, 0xEE)) {
		t.Fatal("write to evicted block lost through fault-in")
	}
}

// TestTieredFreeEvictedObject pins that freeing an object in an evicted
// block works (the block faults in for the slot update) and does not leak
// frames or spill images.
func TestTieredFreeEvictedObject(t *testing.T) {
	s := tieredStore(t, 1<<20, nil)
	defer s.Close()
	r, err := s.AllocOn(0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(&r.Addr, fill(512, 7)); err != nil {
		t.Fatal(err)
	}
	for s.EvictBlocks(16) > 0 {
	}
	if err := s.Free(&r.Addr); err != nil {
		t.Fatalf("free of evicted object: %v", err)
	}
	if _, err := s.Read(&r.Addr, make([]byte, 512)); err == nil {
		t.Fatal("read after free succeeded")
	}
}

// TestTieredConcurrentProperty is the randomized -race half: workers churn
// their own partition of objects (write, verify-read, free/realloc) while
// one goroutine force-evicts cold blocks and another runs full compaction
// sweeps. Partitioned ownership makes every verification exact — any torn
// read, lost write, or zeroed fault-in shows up as a byte mismatch.
func TestTieredConcurrentProperty(t *testing.T) {
	const (
		workers = 4
		perW    = 48
		size    = 512
		rounds  = 300
	)
	// ~96 KiB of live data across ~24 blocks against a 48 KiB frame budget:
	// every allocation and fault-in has to evict something else first.
	s := tieredStore(t, 48<<10, func(c *Config) { c.Workers = workers })
	defer s.Close()

	type obj struct {
		addr Addr
		ver  byte
		live bool
	}

	var stop atomic.Bool
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // compaction racing both eviction and the data path
		defer aux.Done()
		for !stop.Load() {
			s.CompactAll(0, nil)
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(100 + w)))
			objs := make([]obj, perW)
			pay := func(i int, ver byte) []byte {
				return fill(size, byte(w)*31+byte(i)+ver)
			}
			for i := range objs {
				r, err := s.AllocOn(w, size)
				if err != nil {
					errs <- err
					return
				}
				objs[i] = obj{addr: r.Addr, ver: 1, live: true}
				if err := s.Write(&objs[i].addr, pay(i, 1)); err != nil {
					errs <- err
					return
				}
			}
			buf := make([]byte, s.ClassSize(int(objs[0].addr.Class())))
			for round := 0; round < rounds; round++ {
				if round%5 == w {
					// Each worker doubles as eviction pressure: the soft
					// budget alone rarely wins its TryLock race against
					// busy owner locks, and the whole point here is
					// fault-ins racing evictions from *other* goroutines.
					s.EvictBlocks(2)
				}
				i := rnd.Intn(perW)
				o := &objs[i]
				switch {
				case o.live && rnd.Float64() < 0.08:
					// Free without reallocating: the holes this leaves are
					// what gives the racing compactor merges to perform.
					if err := s.Free(&o.addr); err != nil {
						errs <- fmt.Errorf("w%d free %d: %w", w, i, err)
						return
					}
					o.live = false
				case !o.live || rnd.Float64() < 0.1:
					// Churn: free (if live) and reallocate at a new address.
					if o.live {
						if err := s.Free(&o.addr); err != nil {
							errs <- fmt.Errorf("w%d free %d: %w", w, i, err)
							return
						}
					}
					r, err := s.AllocOn(w, size)
					if err != nil {
						errs <- err
						return
					}
					o.addr, o.ver, o.live = r.Addr, o.ver+1, true
					if err := s.Write(&o.addr, pay(i, o.ver)); err != nil {
						errs <- fmt.Errorf("w%d rewrite %d: %w", w, i, err)
						return
					}
				case rnd.Float64() < 0.3:
					o.ver++
					if err := s.Write(&o.addr, pay(i, o.ver)); err != nil {
						errs <- fmt.Errorf("w%d write %d: %w", w, i, err)
						return
					}
				default:
					if _, err := s.Read(&o.addr, buf); err != nil {
						errs <- fmt.Errorf("w%d read %d: %w", w, i, err)
						return
					}
					if !bytes.Equal(buf[:size], pay(i, o.ver)) {
						errs <- fmt.Errorf("w%d object %d corrupt at ver %d", w, i, o.ver)
						return
					}
				}
			}
			// Final audit of the whole partition.
			for i := range objs {
				o := &objs[i]
				if !o.live {
					continue
				}
				if _, err := s.Read(&o.addr, buf); err != nil {
					errs <- fmt.Errorf("w%d audit %d: %w", w, i, err)
					return
				}
				if !bytes.Equal(buf[:size], pay(i, o.ver)) {
					errs <- fmt.Errorf("w%d audit %d corrupt", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	aux.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Residency().Stats()
	if st.SpillOuts < 20 || st.FaultIns < 20 {
		t.Fatalf("too little tier traffic under oversubscription: %+v", st)
	}
	t.Logf("spillouts=%d faultins=%d compactions=%d", st.SpillOuts, st.FaultIns, s.Stats().Compactions)
}
