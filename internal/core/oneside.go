package core

import (
	"errors"
	"time"

	"corm/internal/rnic"
	"corm/internal/timing"
)

// Client-side one-sided operations (§3.2.2). A ClientQP wraps a reliable
// QP connected to a store's NIC plus the class/stride table the client
// obtained at connection time. DirectRead and ScanRead never involve the
// store's CPU path: they read raw bytes through the NIC's MTT and perform
// all validity checking (ID match, lock bits, cacheline versions) locally.
var (
	// ErrWrongObject means the object at the hinted offset has a different
	// ID: the pointer is indirect and needs correction (RPC read or
	// ScanRead).
	ErrWrongObject = errors.New("core: hinted slot holds a different object")
	// ErrInconsistent means the read raced a write or compaction: the
	// caller should back off and retry (§3.2.3).
	ErrInconsistent = errors.New("core: inconsistent read (torn or locked), retry")
)

// DataStride returns the slot stride (bytes) a one-sided reader must fetch
// for a payload class under the default (versions) layout; remote clients
// with a configured mode use StrideOf.
func DataStride(classSize int) int { return dataStride(classSize) }

// StrideOf returns the slot stride for a class under a consistency mode.
func StrideOf(mode ConsistencyMode, classSize int) int {
	if mode == ConsistencyChecksum {
		return checksumStride(classSize)
	}
	return dataStride(classSize)
}

// ExtractObject performs the client-side validity protocol on a raw slot
// image read one-sidedly under the versions layout. See ExtractObjectMode.
func ExtractObject(raw []byte, id uint16, classSize int) ([]byte, error) {
	return ExtractObjectMode(ConsistencyVersions, raw, id, classSize)
}

// ExtractObjectMode checks ID match, lock bits, and consistency (cacheline
// versions or checksum, §3.2.2/§3.2.3/§4.2.1) and returns the payload.
func ExtractObjectMode(mode ConsistencyMode, raw []byte, id uint16, classSize int) ([]byte, error) {
	stride := StrideOf(mode, classSize)
	if len(raw) < stride {
		return nil, ErrShortBuffer
	}
	h := decodeHeader(raw)
	if !h.Alloc || h.ID != id {
		return nil, ErrWrongObject
	}
	if mode == ConsistencyChecksum {
		if !checksumConsistent(raw[:stride], classSize) {
			return nil, ErrInconsistent
		}
		return checksumPayload(raw, classSize), nil
	}
	if !versionsConsistent(raw[:stride]) {
		return nil, ErrInconsistent
	}
	return unpackPayload(raw, classSize), nil
}

// ScanBlock searches a raw block image for the object with the given ID
// under the versions layout. See ScanBlockMode.
func ScanBlock(raw []byte, id uint16, classSize int) (int, []byte, error) {
	return ScanBlockMode(ConsistencyVersions, raw, id, classSize)
}

// ScanBlockMode is the client side of ScanRead: it scans every slot of a
// block image for the object ID, returning its slot index and payload.
func ScanBlockMode(mode ConsistencyMode, raw []byte, id uint16, classSize int) (int, []byte, error) {
	stride := StrideOf(mode, classSize)
	for idx := 0; (idx+1)*stride <= len(raw); idx++ {
		slot := raw[idx*stride : (idx+1)*stride]
		h := decodeHeader(slot)
		if !h.Alloc || h.ID != id {
			continue
		}
		payload, err := ExtractObjectMode(mode, slot, id, classSize)
		if err != nil {
			return idx, nil, err
		}
		return idx, payload, nil
	}
	return 0, nil, ErrNotFound
}

// ClientQP is a client's handle for one-sided access to one store.
type ClientQP struct {
	qp      *rnic.QP
	classes []int
	mode    ConsistencyMode
	nicMod  timing.NIC
	cpuMod  timing.CPU
	block   int // block size, for ScanRead

	// Stats
	DirectReads, FailedReads, ScanReads int64
}

// ConnectClient opens a reliable QP to the store's NIC and snapshots the
// layout parameters a client needs.
func (s *Store) ConnectClient() *ClientQP {
	return &ClientQP{
		qp:      s.nic.Connect(),
		classes: append([]int(nil), s.cfg.Classes...),
		mode:    s.cfg.Consistency,
		nicMod:  s.cfg.Model.NIC,
		cpuMod:  s.cfg.Model.CPU,
		block:   s.cfg.BlockBytes,
	}
}

// QP exposes the underlying queue pair (reconnection after breaks).
func (c *ClientQP) QP() *rnic.QP { return c.qp }

// Close destroys the client's queue pair, releasing its NIC slot.
func (c *ClientQP) Close() { c.qp.Close() }

// DirectRead performs a lock-free one-sided RDMA read of the object (Table
// 2). On success the payload is copied into buf and the total modeled cost
// (wire + NIC engine + client-side version check) is returned.
//
// Error cases mirror the paper's protocol: ErrWrongObject means the
// pointer is indirect (fix with ScanRead or an RPC read); ErrInconsistent
// means a concurrent write or compaction was observed (retry after
// backoff); rnic errors surface QP breaks.
func (c *ClientQP) DirectRead(addr Addr, buf []byte) (rnic.Cost, error) {
	class := int(addr.Class())
	if class < 0 || class >= len(c.classes) {
		return rnic.Cost{}, ErrInvalidAddr
	}
	size := c.classes[class]
	if len(buf) < size {
		return rnic.Cost{}, ErrShortBuffer
	}
	raw := make([]byte, StrideOf(c.mode, size))
	cost, err := c.qp.Read(addr.RKey(), addr.VAddr(), raw)
	c.DirectReads++
	if err != nil {
		return cost, err
	}
	cost.Latency += c.checkCost(size)
	payload, err := ExtractObjectMode(c.mode, raw, addr.ID(), size)
	if err != nil {
		c.FailedReads++
		return cost, err
	}
	copy(buf, payload)
	return cost, nil
}

// ScanRead reads the whole block containing the object and scans it for
// the object's ID (§3.2.2, option 2) — the client-side pointer-correction
// path for failed DirectReads. On success it updates the pointer's offset
// hint in place, making it direct again.
func (c *ClientQP) ScanRead(addr *Addr, buf []byte) (rnic.Cost, error) {
	class := int(addr.Class())
	if class < 0 || class >= len(c.classes) {
		return rnic.Cost{}, ErrInvalidAddr
	}
	size := c.classes[class]
	if len(buf) < size {
		return rnic.Cost{}, ErrShortBuffer
	}
	stride := StrideOf(c.mode, size)
	base := addr.VAddr() &^ uint64(c.block-1)
	raw := make([]byte, c.block)
	cost, err := c.qp.Read(addr.RKey(), base, raw)
	c.ScanReads++
	if err != nil {
		return cost, err
	}
	slots := c.block / stride
	cost.Latency += time.Duration(slots) * c.cpuMod.ScanPerSlot
	idx, payload, err := ScanBlockMode(c.mode, raw, addr.ID(), size)
	if err != nil {
		return cost, err
	}
	copy(buf, payload)
	addr.SetVAddr(base + uint64(idx*stride))
	addr.SetFlag(FlagIndirectObserved)
	return cost, nil
}

// checkCost is the client-side validation cost: per-cacheline version
// checks, or hashing the payload in checksum mode.
func (c *ClientQP) checkCost(size int) time.Duration {
	if c.mode == ConsistencyChecksum {
		return time.Duration(size) * c.cpuMod.ChecksumPerByte
	}
	return c.cpuMod.VersionCheck(size)
}

// DirectReadRetry runs DirectRead with bounded retries on inconsistent
// reads, accumulating backoff cost — the client loop of §3.2.3. It does
// not handle ErrWrongObject (an indirect pointer needs correction, which
// the caller chooses: ScanRead or RPC).
func (c *ClientQP) DirectReadRetry(addr Addr, buf []byte, retries int, backoff time.Duration) (rnic.Cost, error) {
	var total rnic.Cost
	for i := 0; ; i++ {
		cost, err := c.DirectRead(addr, buf)
		total.Latency += cost.Latency
		total.Engine += cost.Engine
		total.CacheMiss = total.CacheMiss || cost.CacheMiss
		total.ODPFault = total.ODPFault || cost.ODPFault
		if !errors.Is(err, ErrInconsistent) || i >= retries {
			return total, err
		}
		total.Latency += backoff
	}
}
