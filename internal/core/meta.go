package core

import (
	"sync"

	"corm/internal/alloc"
	"corm/internal/tier"
)

// blockMeta is the per-block object metadata the paper keeps thread-local:
// the mapping between object IDs and slots used for fast pointer correction
// (§3.1.4), plus each object's home-block address for virtual address reuse
// (§3.3). In data mode the same information is also serialized into object
// headers so client-side ScanRead works from raw bytes alone.
type blockMeta struct {
	mu       sync.Mutex
	ids      []uint16 // per slot
	homes    []uint64 // per slot: block vaddr where the object was allocated
	idToSlot map[uint16]int
}

func newBlockMeta(slots int) *blockMeta {
	return &blockMeta{
		ids:      make([]uint16, slots),
		homes:    make([]uint64, slots),
		idToSlot: make(map[uint16]int, slots),
	}
}

// set records an object's metadata at slot.
func (m *blockMeta) set(slot int, id uint16, home uint64) {
	m.mu.Lock()
	m.ids[slot] = id
	m.homes[slot] = home
	m.idToSlot[id] = slot
	m.mu.Unlock()
}

// clear removes the object at slot, returning its id and home.
func (m *blockMeta) clear(slot int) (uint16, uint64) {
	m.mu.Lock()
	id, home := m.ids[slot], m.homes[slot]
	if cur, ok := m.idToSlot[id]; ok && cur == slot {
		delete(m.idToSlot, id)
	}
	m.homes[slot] = 0
	m.mu.Unlock()
	return id, home
}

// lookup finds the slot holding an object ID — the messaging-based pointer
// correction query answered by the owner thread (§3.2.1).
func (m *blockMeta) lookup(id uint16) (int, bool) {
	m.mu.Lock()
	slot, ok := m.idToSlot[id]
	m.mu.Unlock()
	return slot, ok
}

// at returns the metadata stored for slot.
func (m *blockMeta) at(slot int) (id uint16, home uint64) {
	m.mu.Lock()
	id, home = m.ids[slot], m.homes[slot]
	m.mu.Unlock()
	return
}

// setHome updates an object's home address (ReleasePtr rebasing).
func (m *blockMeta) setHome(slot int, home uint64) {
	m.mu.Lock()
	m.homes[slot] = home
	m.mu.Unlock()
}

// hasID reports whether an ID is present (uniqueness check at allocation).
func (m *blockMeta) hasID(id uint16) bool {
	m.mu.Lock()
	_, ok := m.idToSlot[id]
	m.mu.Unlock()
	return ok
}

// idSet snapshots the live IDs (conflict check during compaction).
func (m *blockMeta) idSet() map[uint16]bool {
	m.mu.Lock()
	out := make(map[uint16]bool, len(m.idToSlot))
	for id := range m.idToSlot {
		out[id] = true
	}
	m.mu.Unlock()
	return out
}

// blockState bundles a block with its store-level state.
type blockState struct {
	*alloc.Block
	meta *blockMeta

	// mu guards compacting and aliasList; rw serializes RPC-path object
	// access against writers (one-sided reads deliberately bypass it).
	mu sync.Mutex
	rw sync.RWMutex

	// compacting marks the block's objects as compaction-locked: RPC reads
	// fail (retry) and one-sided readers see the lock bits (§3.2.3).
	compacting bool

	// dissolved marks a block merged away by compaction: its objects now
	// live in the merge destination and the base resolves there. Set while
	// compacting is still true, so an RPC operation holding a stale
	// *blockState observes at least one of the two flags and retries.
	dissolved bool

	// dead marks a block released back to the process-wide allocator (its
	// vaddr may be unmapped). Operations holding a stale reference must not
	// touch its memory; every object it held was freed.
	dead bool

	// aliasList holds the dissolved block-base vaddrs attached to this live
	// block by compaction (excluding its primary base). Keeping the list on
	// the block — instead of a store-global aliasOf map — lets the striped
	// store index update each alias's own stripe independently.
	aliasList []uint64

	// region is the RNIC registration covering this block's vaddr.
	region regionRef

	// resH is the block's residency handle (nil when tiering is off). Set
	// once in onNewBlock before the block is published, immutable after.
	resH *tier.Handle
}

// aliased reports whether dissolved bases still route to this block —
// such blocks are pinned resident (see tryEvict).
func (st *blockState) aliased() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.aliasList) > 0
}

// addAliases attaches dissolved bases to this live block.
func (st *blockState) addAliases(list []uint64) {
	st.mu.Lock()
	st.aliasList = append(st.aliasList, list...)
	st.mu.Unlock()
}

// takeAliases drains and returns the attached alias bases.
func (st *blockState) takeAliases() []uint64 {
	st.mu.Lock()
	list := st.aliasList
	st.aliasList = nil
	st.mu.Unlock()
	return list
}

// removeAlias detaches one alias base (its last homed object is gone).
func (st *blockState) removeAlias(vaddr uint64) {
	st.mu.Lock()
	for i, a := range st.aliasList {
		if a == vaddr {
			st.aliasList[i] = st.aliasList[len(st.aliasList)-1]
			st.aliasList = st.aliasList[:len(st.aliasList)-1]
			break
		}
	}
	st.mu.Unlock()
}

// regionRef identifies the NIC region of a block (kept small: the rkey is
// embedded in object pointers).
type regionRef struct {
	rkey uint32
}

// vaddrTracker implements §3.3: per retired source-block address, how many
// live objects still name it as home. At zero the address is unmapped and
// returned to the reuse pool.
type vaddrTracker struct {
	mu    sync.Mutex
	count map[uint64]int // home vaddr -> live objects allocated there
	gone  map[uint64]int // dissolved block vaddr -> page count (await reuse)
}

func newVaddrTracker() *vaddrTracker {
	return &vaddrTracker{
		count: make(map[uint64]int),
		gone:  make(map[uint64]int),
	}
}

// incHome records a live object homed at vaddr.
func (v *vaddrTracker) incHome(vaddr uint64) {
	v.mu.Lock()
	v.count[vaddr]++
	v.mu.Unlock()
}

// decHome drops one live object homed at vaddr. If the block at vaddr was
// dissolved and this was the last reference, it returns (pages, true) to
// signal the address can be reused.
func (v *vaddrTracker) decHome(vaddr uint64) (int, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.count[vaddr]--
	if v.count[vaddr] < 0 {
		panic("core: home refcount underflow")
	}
	if v.count[vaddr] == 0 {
		delete(v.count, vaddr)
		if pages, ok := v.gone[vaddr]; ok {
			delete(v.gone, vaddr)
			return pages, true
		}
	}
	return 0, false
}

// dissolve marks a block address as dissolved by compaction. If no live
// object homes there anymore, it is immediately reusable.
func (v *vaddrTracker) dissolve(vaddr uint64, pages int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.count[vaddr] == 0 {
		delete(v.count, vaddr)
		return true
	}
	v.gone[vaddr] = pages
	return false
}

// pendingReuse reports how many dissolved addresses still await release.
func (v *vaddrTracker) pendingReuse() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.gone)
}
