package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// TestConcurrentStoreOpsUnderCompaction drives the striped store from many
// goroutines at once — allocs, writes, reads, frees on per-worker objects
// while a compactor merges the class in a loop — and then audits the atomic
// stat totals against per-goroutine counts. Run under -race this covers the
// shard stripes, the per-block locks, and the alias handoff in merge.
func TestConcurrentStoreOpsUnderCompaction(t *testing.T) {
	const workers = 8
	s := testStore(t, func(cfg *Config) { cfg.Workers = workers })

	const (
		size          = 64
		iters         = 60
		objsPerWorker = 12
	)
	class := s.Allocator().Config().ClassFor(size)

	stop := make(chan struct{})
	var compactWG sync.WaitGroup
	compactWG.Add(1)
	go func() {
		defer compactWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.CompactClass(CompactOptions{Class: class, Leader: 0, MaxOccupancy: Occ(1.0)})
		}
	}()

	// Stats auditor: snapshots taken mid-traffic must satisfy the
	// cross-counter invariants (frees never observed ahead of allocs,
	// misses never ahead of corrections) — snapshot() orders its loads
	// consumer-before-producer precisely so this holds under fire.
	auditErr := make(chan error, 1)
	var auditWG sync.WaitGroup
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := statsInvariants(s.Stats()); err != nil {
				select {
				case auditErr <- err:
				default:
				}
				return
			}
		}
	}()

	type tally struct{ allocs, frees, reads, writes int64 }
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			tl := &tallies[w]
			buf := make([]byte, s.ClassSize(class))
			for i := 0; i < iters; i++ {
				addrs := make([]Addr, 0, objsPerWorker)
				for k := 0; k < objsPerWorker; k++ {
					res, err := s.AllocOn(w, size)
					if err != nil {
						errs <- err
						return
					}
					tl.allocs++
					addrs = append(addrs, res.Addr)
				}
				for k := range addrs {
					payload := fill(size, byte(w<<4|k))
					// Compaction may lock the object mid-operation: retry the
					// op, exactly like a remote client would (§3.2.3).
					for {
						if err := s.Write(&addrs[k], payload); err == nil {
							tl.writes++
							break
						} else if !errors.Is(err, ErrCompacting) {
							errs <- err
							return
						}
					}
					for {
						if _, err := s.Read(&addrs[k], buf); err == nil {
							tl.reads++
							break
						} else if !errors.Is(err, ErrCompacting) {
							errs <- err
							return
						}
					}
					if !bytes.Equal(buf[:size], payload) {
						errs <- errors.New("read returned another object's payload")
						return
					}
				}
				for k := range addrs {
					for {
						if err := s.Free(&addrs[k]); err == nil {
							tl.frees++
							break
						} else if !errors.Is(err, ErrCompacting) {
							errs <- err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	compactWG.Wait()
	auditWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	select {
	case err := <-auditErr:
		t.Fatal(err)
	default:
	}

	var want tally
	for _, tl := range tallies {
		want.allocs += tl.allocs
		want.frees += tl.frees
		want.reads += tl.reads
		want.writes += tl.writes
	}
	st := s.Stats()
	if st.Allocs != want.allocs || st.Frees != want.frees {
		t.Fatalf("alloc/free totals drifted: stats %d/%d, counted %d/%d",
			st.Allocs, st.Frees, want.allocs, want.frees)
	}
	if st.Reads != want.reads || st.Writes != want.writes {
		t.Fatalf("read/write totals drifted: stats %d/%d, counted %d/%d",
			st.Reads, st.Writes, want.reads, want.writes)
	}
	if st.Allocs != st.Frees {
		t.Fatalf("leaked objects: %d allocs vs %d frees", st.Allocs, st.Frees)
	}
}

// TestStatsSnapshotDuringTraffic reads Stats concurrently with mutations —
// with atomic counters the snapshot must never tear (no counter can exceed
// the final settled value).
func TestStatsSnapshotDuringTraffic(t *testing.T) {
	s := testStore(t, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := s.AllocOn(0, 64)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Free(&res.Addr); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		st := s.Stats()
		if st.Frees > st.Allocs {
			t.Fatalf("snapshot tore: %d frees > %d allocs", st.Frees, st.Allocs)
		}
	}
	close(stop)
	wg.Wait()
}
