package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"corm/internal/timing"
)

// sparseBlocks allocates objects of size on the given threads, then frees
// all but `keep` per block, returning the surviving addresses with their
// payloads.
func sparseBlocks(t *testing.T, s *Store, size, blocks, keepPerBlock int) map[*Addr][]byte {
	t.Helper()
	per := s.Allocator().Config().SlotsPerBlock(size)
	var all []Addr
	for i := 0; i < blocks*per; i++ {
		r, err := s.AllocOn(0, size)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, r.Addr)
	}
	live := make(map[*Addr][]byte)
	for i := range all {
		if i%per < keepPerBlock {
			a := all[i]
			payload := fill(size, byte(i))
			if s.Config().DataBacked {
				if err := s.Write(&a, payload); err != nil {
					t.Fatal(err)
				}
			}
			p := new(Addr)
			*p = a
			live[p] = payload
		} else {
			if err := s.Free(&all[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return live
}

func TestCompactionMergesAndPreservesData(t *testing.T) {
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 6, 3) // 6 blocks at ~5% occupancy
	class := s.Allocator().Config().ClassFor(64)

	before := s.Allocator().Blocks()
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed == 0 {
		t.Fatalf("no blocks freed: %+v", r)
	}
	if got := s.Allocator().Blocks(); got != before-r.BlocksFreed {
		t.Fatalf("block count %d, want %d", got, before-r.BlocksFreed)
	}
	if r.Duration <= 0 {
		t.Fatal("no modeled duration")
	}

	// Every live object remains readable through its ORIGINAL pointer (the
	// RPC path corrects indirect pointers transparently).
	for addr, payload := range live {
		buf := make([]byte, 64)
		if _, err := s.Read(addr, buf); err != nil {
			t.Fatalf("read after compaction: %v", err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("payload corrupted by compaction")
		}
	}
}

func TestCompactionPhysicalMemoryDrops(t *testing.T) {
	s := testStore(t, nil)
	sparseBlocks(t, s, 64, 8, 2)
	class := s.Allocator().Config().ClassFor(64)
	before := s.ActiveBytes()
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	after := s.ActiveBytes()
	if after >= before {
		t.Fatalf("active memory %d -> %d despite freeing %d blocks", before, after, r.BlocksFreed)
	}
	if before-after != int64(r.FreedBytes) {
		t.Fatalf("freed bytes mismatch: delta=%d report=%d", before-after, r.FreedBytes)
	}
}

func TestCompactionOneSidedAccessSurvives(t *testing.T) {
	// After remapping, clients can still read relocated blocks through
	// their old virtual addresses with one-sided reads (ODP+prefetch keeps
	// the MTT coherent without breaking QPs) — the core claim of §3.5.
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 6, 2)
	class := s.Allocator().Config().ClassFor(64)
	client := s.ConnectClient()

	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed == 0 {
		t.Fatal("nothing compacted")
	}
	direct, viaScan := 0, 0
	for addr, payload := range live {
		buf := make([]byte, 64)
		_, err := client.DirectRead(*addr, buf)
		switch {
		case err == nil:
			direct++
		case errors.Is(err, ErrWrongObject):
			// Indirect pointer: ScanRead recovers and fixes the hint.
			if _, err := client.ScanRead(addr, buf); err != nil {
				t.Fatalf("ScanRead: %v", err)
			}
			if !addr.HasFlag(FlagIndirectObserved) {
				t.Fatal("ScanRead did not flag the corrected pointer")
			}
			viaScan++
			// The corrected pointer is direct again.
			if _, err := client.DirectRead(*addr, buf); err != nil {
				t.Fatalf("DirectRead after correction: %v", err)
			}
		default:
			t.Fatalf("DirectRead: %v", err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatal("one-sided read returned wrong payload after compaction")
		}
	}
	if direct+viaScan != len(live) {
		t.Fatalf("reads: %d direct + %d scan != %d", direct, viaScan, len(live))
	}
	if qp := client.QP(); qp.Broken() {
		t.Fatal("QP broke during ODP-based compaction")
	}
}

func TestCompactionMovedObjectsNeedCorrection(t *testing.T) {
	// Force offset conflicts: keep the same slot indices in every block so
	// CoRM must move objects (Mesh could not compact at all).
	s := testStore(t, nil)
	size := 64
	per := s.Allocator().Config().SlotsPerBlock(size)
	class := s.Allocator().Config().ClassFor(size)
	var all []Addr
	for i := 0; i < 4*per; i++ {
		r, err := s.AllocOn(0, size)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, r.Addr)
	}
	// Keep slot 0 and 1 of each block -> guaranteed offset conflicts.
	var live []Addr
	for i := range all {
		if i%per < 2 {
			live = append(live, all[i])
		} else if err := s.Free(&all[i]); err != nil {
			t.Fatal(err)
		}
	}
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed == 0 {
		t.Fatal("conflicting blocks did not merge under CoRM")
	}
	if r.ObjectsMoved == 0 {
		t.Fatal("offset conflicts must force object moves")
	}
	for i := range live {
		buf := make([]byte, size)
		if _, err := s.Read(&live[i], buf); err != nil {
			t.Fatalf("object %d unreachable: %v", i, err)
		}
	}
	if s.Stats().Corrections == 0 {
		t.Fatal("moved objects should have required pointer correction")
	}
}

func TestMeshRefusesOffsetConflicts(t *testing.T) {
	s := testStore(t, func(c *Config) { c.Strategy = StrategyMesh })
	size := 64
	per := s.Allocator().Config().SlotsPerBlock(size)
	class := s.Allocator().Config().ClassFor(size)
	var all []Addr
	for i := 0; i < 4*per; i++ {
		r, _ := s.AllocOn(0, size)
		all = append(all, r.Addr)
	}
	for i := range all {
		if i%per >= 1 { // keep only slot 0 of each block: all conflict
			s.Free(&all[i])
		}
	}
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed != 0 {
		t.Fatalf("Mesh merged conflicting blocks: %+v", r)
	}
}

func TestMeshCompactsDisjointOffsets(t *testing.T) {
	s := testStore(t, func(c *Config) { c.Strategy = StrategyMesh })
	size := 64
	per := s.Allocator().Config().SlotsPerBlock(size)
	class := s.Allocator().Config().ClassFor(size)
	var all []Addr
	for i := 0; i < 2*per; i++ {
		r, _ := s.AllocOn(0, size)
		all = append(all, r.Addr)
	}
	// Block A keeps slot 0, block B keeps slot 1: disjoint offsets.
	var live []Addr
	for i := range all {
		block, slot := i/per, i%per
		if (block == 0 && slot == 0) || (block == 1 && slot == 1) {
			live = append(live, all[i])
			continue
		}
		s.Free(&all[i])
	}
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed != 1 {
		t.Fatalf("Mesh should merge disjoint blocks: %+v", r)
	}
	if r.ObjectsMoved != 0 {
		t.Fatal("Mesh must never move objects to new offsets")
	}
	for i := range live {
		buf := make([]byte, size)
		if _, err := s.Read(&live[i], buf); err != nil {
			t.Fatalf("read after Mesh compaction: %v", err)
		}
		if live[i].HasFlag(FlagIndirectObserved) {
			t.Fatal("Mesh compaction should keep pointers direct")
		}
	}
}

func TestCompactionRespectsMaxBlocks(t *testing.T) {
	s := testStore(t, nil)
	sparseBlocks(t, s, 64, 8, 1)
	class := s.Allocator().Config().ClassFor(64)
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0, MaxBlocks: 2})
	if r.BlocksFreed > 2 {
		t.Fatalf("freed %d > MaxBlocks 2", r.BlocksFreed)
	}
}

func TestCompactionSkipsUncompactableClass(t *testing.T) {
	// Vanilla CoRM-8 cannot manage blocks with more than 256 slots: the 8B
	// class in a 4 KiB block has 64 slots -> fine, but with 1 MiB blocks
	// the 8 B class has 16384 slots -> skipped.
	s := testStore(t, func(c *Config) {
		c.IDBits = 8
		c.BlockBytes = 1 << 20
		c.DataBacked = false
		c.Remap = RemapRereg
		c.Model = timing.Default()
	})
	class := s.Allocator().Config().ClassFor(8)
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.Collected != 0 || r.BlocksFreed != 0 {
		t.Fatalf("uncompactable class was processed: %+v", r)
	}
}

func TestHybridFallsBackToOffsets(t *testing.T) {
	// Hybrid CoRM-8 on a class with too many slots uses CoRM-0 (offset
	// rule): disjoint-offset blocks merge, conflicting ones do not.
	s := testStore(t, func(c *Config) {
		c.Strategy = StrategyHybrid
		c.IDBits = 8
		c.BlockBytes = 32768
		c.DataBacked = false
		c.Remap = RemapRereg
		c.Model = timing.Default()
	})
	size := 8 // stride 8+5(hybrid overhead->corm0? header=overhead bytes)... slots > 256
	per := s.Allocator().Config().SlotsPerBlock(size)
	if per <= 256 {
		t.Skipf("class not oversized (%d slots)", per)
	}
	class := s.Allocator().Config().ClassFor(size)
	var all []Addr
	for i := 0; i < 2*per; i++ {
		r, _ := s.AllocOn(0, size)
		all = append(all, r.Addr)
	}
	var live []Addr
	for i := range all {
		block, slot := i/per, i%per
		if (block == 0 && slot == 0) || (block == 1 && slot == 1) {
			live = append(live, all[i])
			continue
		}
		s.Free(&all[i])
	}
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed != 1 {
		t.Fatalf("hybrid CoRM-0 should merge disjoint blocks: %+v", r)
	}
	for i := range live {
		if _, err := s.Read(&live[i], make([]byte, size)); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
}

func TestVaddrReuseAfterCompactionAndFree(t *testing.T) {
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 4, 1)
	class := s.Allocator().Config().ClassFor(64)
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed == 0 {
		t.Fatal("nothing compacted")
	}
	if s.PendingVaddrs() == 0 {
		t.Fatal("dissolved source vaddrs should be pending reuse")
	}
	// Free every survivor: all pending addresses drain.
	for addr := range live {
		if err := s.Free(addr); err != nil {
			t.Fatalf("free: %v", err)
		}
	}
	if got := s.PendingVaddrs(); got != 0 {
		t.Fatalf("%d vaddrs still pending after freeing everything", got)
	}
	if s.Stats().VaddrsReused == 0 {
		t.Fatal("no vaddr reuse recorded")
	}
}

func TestReleasePtrFreesVaddr(t *testing.T) {
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 4, 1)
	class := s.Allocator().Config().ClassFor(64)
	if r := s.CompactClass(CompactOptions{Class: class, Leader: 0}); r.BlocksFreed == 0 {
		t.Fatal("nothing compacted")
	}
	pending := s.PendingVaddrs()
	if pending == 0 {
		t.Fatal("no pending vaddrs")
	}
	// Release every pointer: the rebased pointers reference live blocks,
	// and all old addresses drain without freeing any object.
	for addr := range live {
		na, err := s.ReleasePtr(addr)
		if err != nil {
			t.Fatalf("release: %v", err)
		}
		buf := make([]byte, 64)
		if _, err := s.Read(&na, buf); err != nil {
			t.Fatalf("read via rebased pointer: %v", err)
		}
		if !bytes.Equal(buf, live[addr]) {
			t.Fatal("rebased pointer reads wrong data")
		}
	}
	if got := s.PendingVaddrs(); got != 0 {
		t.Fatalf("%d vaddrs still pending after ReleasePtr", got)
	}
}

func TestCompactionLocksBlockDuringPhases(t *testing.T) {
	// During the copy phase, RPC reads of objects under compaction fail
	// with ErrCompacting (§3.2.3).
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 4, 2)
	class := s.Allocator().Config().ClassFor(64)
	var sawLocked bool
	s.CompactClass(CompactOptions{
		Class: class, Leader: 0,
		OnPhase: func(p Phase, d time.Duration) {
			if p != PhaseCopy {
				return
			}
			for addr := range live {
				a := *addr
				if _, err := s.Read(&a, make([]byte, 64)); errors.Is(err, ErrCompacting) {
					sawLocked = true
				}
			}
		},
	})
	if !sawLocked {
		t.Fatal("no read observed the compaction lock")
	}
	// After compaction, everything reads fine.
	for addr := range live {
		if _, err := s.Read(addr, make([]byte, 64)); err != nil {
			t.Fatalf("read after compaction: %v", err)
		}
	}
}

func TestCompactionChainedGenerations(t *testing.T) {
	// Compact twice: survivors of the first compaction (living in a merge
	// destination with aliases attached) must survive a second merge, with
	// all alias addresses still resolving.
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 6, 1)
	class := s.Allocator().Config().ClassFor(64)
	if r := s.CompactClass(CompactOptions{Class: class, Leader: 0}); r.BlocksFreed == 0 {
		t.Fatal("first compaction freed nothing")
	}
	// Fragment again: allocate a few more and free them to create new
	// sparse blocks, then compact again.
	extra := sparseBlocks(t, s, 64, 4, 1)
	if r := s.CompactClass(CompactOptions{Class: class, Leader: 0}); r.BlocksFreed == 0 {
		t.Fatal("second compaction freed nothing")
	}
	for addr, payload := range live {
		buf := make([]byte, 64)
		if _, err := s.Read(addr, buf); err != nil {
			t.Fatalf("gen-1 object lost: %v", err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatal("gen-1 payload corrupted")
		}
	}
	for addr, payload := range extra {
		buf := make([]byte, 64)
		if _, err := s.Read(addr, buf); err != nil {
			t.Fatalf("gen-2 object lost: %v", err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatal("gen-2 payload corrupted")
		}
	}
}

func TestCompactAllUsesPolicy(t *testing.T) {
	s := testStore(t, func(c *Config) { c.FragThreshold = 1.5 })
	sparseBlocks(t, s, 64, 6, 1)
	sparseBlocks(t, s, 128, 6, 1)
	r := s.CompactAll(0, nil)
	if r.BlocksFreed == 0 {
		t.Fatalf("policy-driven compaction freed nothing: %+v", r)
	}
	if len(s.NeedsCompaction()) > 2 {
		t.Fatalf("classes still fragmented after CompactAll: %v", s.NeedsCompaction())
	}
}

// Property: random workload + compaction never loses or corrupts an object.
func TestQuickCompactionPreservesObjects(t *testing.T) {
	f := func(seed int64, frees []uint8) bool {
		s, err := NewStore(Config{
			Workers: 2, BlockBytes: 4096, Strategy: StrategyCoRM,
			DataBacked: true, Remap: RemapODPPrefetch,
			Model: timing.Default().WithNIC(timing.ConnectX5()),
			Seed:  seed,
		})
		if err != nil {
			return false
		}
		size := 64
		type obj struct {
			addr    Addr
			payload []byte
		}
		var live []obj
		for i := 0; i < 150; i++ {
			r, err := s.AllocOn(i%2, size)
			if err != nil {
				return false
			}
			p := fill(size, byte(i))
			if err := s.Write(&r.Addr, p); err != nil {
				return false
			}
			live = append(live, obj{r.Addr, p})
		}
		for _, f := range frees {
			if len(live) == 0 {
				break
			}
			i := int(f) % len(live)
			if err := s.Free(&live[i].addr); err != nil {
				return false
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		class := s.Allocator().Config().ClassFor(size)
		s.CompactClass(CompactOptions{Class: class, Leader: 0})
		for i := range live {
			buf := make([]byte, size)
			if _, err := s.Read(&live[i].addr, buf); err != nil {
				return false
			}
			if !bytes.Equal(buf, live[i].payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
