package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestCompactionDisjointProperty is the randomized half of the compaction
// safety invariant: for arbitrary populated block pairs, the pairing
// predicate the merge loop uses (mergeSet.disjoint) must agree exactly
// with an independent oracle — the live object-ID sets harvested from the
// client-visible pointers, not from the store's own metadata. A false
// positive here would let a merge overwrite an object whose ID collides
// (§3.1.2); a false negative would silently disable compaction.
func TestCompactionDisjointProperty(t *testing.T) {
	const size = 64
	for round := 0; round < 6; round++ {
		rnd := rand.New(rand.NewSource(int64(1000 + round*37)))
		s := testStore(t, func(c *Config) { c.Seed = int64(round + 7) })
		class := s.Allocator().Config().ClassFor(size)
		per := s.Allocator().Config().SlotsPerBlock(size)
		blocks := 3 + rnd.Intn(4)

		var all []Addr
		for i := 0; i < blocks*per; i++ {
			r, err := s.AllocOn(0, size)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, r.Addr)
		}
		// Random thinning: each object survives with p=0.2, leaving the
		// low-occupancy landscape compaction targets. Track the oracle ID
		// set per block base and every survivor's payload.
		idsOf := make(map[uint64]map[uint16]bool)
		var live []*Addr
		var want [][]byte
		for i := range all {
			a := &all[i]
			if rnd.Float64() < 0.2 {
				payload := fill(size, byte(i))
				if err := s.Write(a, payload); err != nil {
					t.Fatal(err)
				}
				base := s.blockBase(a.VAddr())
				if idsOf[base] == nil {
					idsOf[base] = make(map[uint16]bool)
				}
				idsOf[base][a.ID()] = true
				live = append(live, a)
				want = append(want, payload)
			} else if err := s.Free(a); err != nil {
				t.Fatal(err)
			}
		}

		// Pairwise: disjoint() iff the oracle sets do not intersect.
		cands := s.Allocator().BlocksOfClass(class)
		sets := make([]*mergeSet, len(cands))
		for i, b := range cands {
			sets[i] = s.snapshotSet(StrategyCoRM, b)
		}
		for i := range sets {
			for j := i + 1; j < len(sets); j++ {
				oracle := true
				for id := range idsOf[sets[i].block.VAddr] {
					if idsOf[sets[j].block.VAddr][id] {
						oracle = false
						break
					}
				}
				if got := sets[i].disjoint(sets[j]); got != oracle {
					t.Fatalf("round %d: disjoint(%#x, %#x) = %v, oracle says %v",
						round, sets[i].block.VAddr, sets[j].block.VAddr, got, oracle)
				}
			}
		}

		// End to end: compact, then every surviving object must read back
		// its pre-merge bytes through its original pointer.
		s.CompactClass(CompactOptions{Class: class, Leader: 0, MaxAttempts: 64})
		buf := make([]byte, s.ClassSize(class))
		for k, a := range live {
			if _, err := s.Read(a, buf); err != nil {
				t.Fatalf("round %d: read survivor %d after compaction: %v", round, k, err)
			}
			if !bytes.Equal(buf[:size], want[k]) {
				t.Fatalf("round %d: survivor %d bytes changed across compaction", round, k)
			}
		}
		auditStats(t, s)
	}
}

// TestCompactionMergePermittedIffDisjoint is the deterministic half: with
// the CoRM-0 strategy, conflict sets are slot offsets, so overlap is
// constructed exactly. Blocks that all keep slot 0 must never merge;
// blocks keeping pairwise-distinct slots must merge.
func TestCompactionMergePermittedIffDisjoint(t *testing.T) {
	const size = 64
	build := func(t *testing.T, keepSlot func(block int) int) (*Store, int, []*Addr) {
		s := testStore(t, func(c *Config) { c.Strategy = StrategyCoRM0 })
		class := s.Allocator().Config().ClassFor(size)
		per := s.Allocator().Config().SlotsPerBlock(size)
		const blocks = 4
		var all []Addr
		for i := 0; i < blocks*per; i++ {
			r, err := s.AllocOn(0, size)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, r.Addr)
		}
		var live []*Addr
		for i := range all {
			if i%per == keepSlot(i/per)%per {
				live = append(live, &all[i])
			} else if err := s.Free(&all[i]); err != nil {
				t.Fatal(err)
			}
		}
		return s, class, live
	}

	t.Run("overlapping slots never merge", func(t *testing.T) {
		s, class, _ := build(t, func(int) int { return 0 })
		r := s.CompactClass(CompactOptions{Class: class, Leader: 0, MaxAttempts: 64})
		if r.Merges != 0 || r.BlocksFreed != 0 {
			t.Fatalf("merged %d blocks despite every pair conflicting: %+v", r.BlocksFreed, r)
		}
	})

	t.Run("disjoint slots merge", func(t *testing.T) {
		s, class, live := build(t, func(b int) int { return b })
		r := s.CompactClass(CompactOptions{Class: class, Leader: 0, MaxAttempts: 64})
		if r.Merges == 0 {
			t.Fatalf("no merges despite all pairs disjoint: %+v", r)
		}
		buf := make([]byte, s.ClassSize(class))
		for _, a := range live {
			if _, err := s.Read(a, buf); err != nil {
				t.Fatalf("survivor unreadable after merge: %v", err)
			}
		}
		auditStats(t, s)
	})
}

// auditStats asserts the cross-counter invariants every Stats snapshot
// must satisfy, no matter when it is taken.
func auditStats(t *testing.T, s *Store) {
	t.Helper()
	if err := statsInvariants(s.Stats()); err != nil {
		t.Fatal(err)
	}
}

// statsInvariants checks one snapshot; shared with the concurrent stress
// test, where it runs against snapshots taken mid-traffic.
func statsInvariants(st Stats) error {
	if st.Frees > st.Allocs {
		return fmt.Errorf("stats audit: frees %d > allocs %d", st.Frees, st.Allocs)
	}
	if st.CorrectionMisses > st.Corrections {
		return fmt.Errorf("stats audit: correction misses %d > corrections %d", st.CorrectionMisses, st.Corrections)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"allocs", st.Allocs}, {"frees", st.Frees}, {"reads", st.Reads},
		{"writes", st.Writes}, {"corrections", st.Corrections},
		{"releases", st.Releases}, {"compactions", st.Compactions},
		{"blocksFreed", st.BlocksFreed}, {"objectsMoved", st.ObjectsMoved},
		{"vaddrsReused", st.VaddrsReused},
	} {
		if c.v < 0 {
			return fmt.Errorf("stats audit: %s negative (%d)", c.name, c.v)
		}
	}
	return nil
}
