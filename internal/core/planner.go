package core

import (
	"sort"

	"corm/internal/alloc"
	"corm/internal/prob"
	"corm/internal/tier"
)

// The compaction planner. This is the pure half of §3.1.4's merge stage:
// given immutable snapshots of candidate blocks' conflict sets, it decides
// which pairs to merge — least-utilized sources first, fullest fitting
// destination, §3.4 probability pruning — and returns an ordered
// CompactPlan. It takes no locks and mutates nothing, so it is
// unit-testable without a Store and can run while mutator traffic
// continues; the executor (executor.go) revalidates every pair against
// live state because these snapshots go stale between plan and execute.

// mergeSet caches a candidate block's conflict state so the greedy pairing
// loop does not re-snapshot metadata for every pair it considers. The
// planner treats it as immutable input; block may be nil in planner unit
// tests.
type mergeSet struct {
	block *alloc.Block
	used  int
	ids   map[uint16]bool // CoRM: live object IDs
	slots map[int]bool    // Mesh/CoRM-0: occupied offsets

	// evicted marks a block currently spilled to the tier. Merging such a
	// block costs a fault-in; the pairing pass avoids pairs where BOTH
	// sides are evicted unless no cheaper destination exists.
	evicted bool
}

func (s *Store) snapshotSet(strategy Strategy, b *alloc.Block) *mergeSet {
	m := &mergeSet{block: b, used: b.Used()}
	st := s.stateOf(b)
	if st != nil && st.resH != nil {
		m.evicted = st.resH.State() != tier.Resident
	}
	if strategy == StrategyCoRM {
		m.ids = st.meta.idSet()
	} else {
		m.slots = make(map[int]bool, m.used)
		for _, idx := range b.UsedSlots() {
			m.slots[idx] = true
		}
	}
	return m
}

// disjoint reports whether two cached sets have no conflicts.
func (a *mergeSet) disjoint(b *mergeSet) bool {
	if a.ids != nil {
		x, y := a.ids, b.ids
		if len(x) > len(y) {
			x, y = y, x
		}
		for id := range x {
			if y[id] {
				return false
			}
		}
		return true
	}
	x, y := a.slots, b.slots
	if len(x) > len(y) {
		x, y = y, x
	}
	for idx := range x {
		if y[idx] {
			return false
		}
	}
	return true
}

// union folds src's planned post-merge contents into dst's set. This is
// exact for both conflict families: object IDs survive relocation unchanged
// (CoRM), and offset-based strategies only merge when every offset is
// preserved (Mesh/CoRM-0) — so the planner can chain merges into the same
// destination without re-snapshotting live state.
func (a *mergeSet) union(src *mergeSet) {
	a.used += src.used
	// Executing the merge faults the destination in; planning a second
	// merge into it costs nothing extra.
	a.evicted = false
	for id := range src.ids {
		a.ids[id] = true
	}
	for idx := range src.slots {
		a.slots[idx] = true
	}
}

// clone deep-copies a set so planning never mutates the caller's snapshots.
func (a *mergeSet) clone() *mergeSet {
	c := &mergeSet{block: a.block, used: a.used, evicted: a.evicted}
	if a.ids != nil {
		c.ids = make(map[uint16]bool, len(a.ids))
		for id := range a.ids {
			c.ids[id] = true
		}
	}
	if a.slots != nil {
		c.slots = make(map[int]bool, len(a.slots))
		for idx := range a.slots {
			c.slots[idx] = true
		}
	}
	return c
}

// MergePair is one planned merge: Src's objects move into Dst, Src's
// address is remapped onto Dst's frames and the block dissolves.
type MergePair struct {
	Src, Dst *alloc.Block
}

// CompactPlan is the planner's output for one size class: an ordered list
// of merge pairs computed from block snapshots. Plans are advisory — the
// executor revalidates each pair against live state and skips pairs whose
// snapshots went stale (Planned - Merges in the report = skipped pairs plus
// budget cutoffs).
type CompactPlan struct {
	Class    int
	Strategy Strategy
	Slots    int // block capacity s of the class
	Pairs    []MergePair

	// Attempts counts pairings whose conflict sets were compared;
	// Conflicts counts those rejected on an ID/offset collision. Their
	// ratio is the §3.4 signal adaptive policies back off on.
	Attempts  int
	Conflicts int
}

// planConfig parameterizes the pure pairing pass.
type planConfig struct {
	slots       int     // block capacity s
	idSpace     int     // ID space n of §3.4 (= slots for offset strategies)
	maxBlocks   int     // pair budget (0 = unlimited)
	maxAttempts int     // candidate destinations tried per source
	minProb     float64 // §3.4 no-collision probability pruning threshold
}

// minNoCollision is the default §3.4 pruning threshold: pairings whose
// analytic no-collision probability is below it are not worth an attempt.
const minNoCollision = 0.02

// planMerges is the pure pairing pass: greedily merge least-utilized
// sources into the fullest fitting destination, pruning hopeless pairings
// by their analytic no-collision probability (§3.4). Input sets are not
// mutated. The returned pairs are indexes into the input slice, in
// execution order; the same snapshots always yield the same plan.
func planMerges(sets []*mergeSet, cfg planConfig) (pairs [][2]int, attempts, conflicts int) {
	if cfg.minProb == 0 {
		cfg.minProb = minNoCollision
	}
	// Least-utilized blocks first (§3.1.4: fewer objects, fewer
	// collisions). Ties break on input position so a fixed snapshot set
	// always produces the same plan.
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return sets[order[i]].used < sets[order[j]].used
	})
	// Working copies: planned merges accumulate into destination sets
	// without touching the caller's snapshots.
	live := make([]*mergeSet, len(sets))
	for i, idx := range order {
		live[i] = sets[idx].clone()
	}
	for i := 0; i < len(live); i++ {
		src := live[i]
		if src == nil {
			continue
		}
		if cfg.maxBlocks > 0 && len(pairs) >= cfg.maxBlocks {
			break
		}
		// Choose the fullest fitting destination (tightest packing) but
		// prune candidates whose analytic no-collision probability (§3.4)
		// is hopeless, so the bounded attempts are spent where merges can
		// actually succeed.
		best := -1
		fallback := -1
		tried := 0
		// scans bounds how many candidates are even examined, so classes
		// where no pairing can succeed stay cheap.
		scans := 64 * cfg.maxAttempts
		for j := len(live) - 1; j > i && tried < cfg.maxAttempts && scans > 0; j-- {
			dst := live[j]
			if dst == nil {
				continue
			}
			if src.used+dst.used > cfg.slots {
				continue // too full to ever fit; free skip
			}
			scans-- // probability evaluation below is the costly part
			if prob.NoCollision(cfg.idSpace, cfg.slots, src.used, dst.used) < cfg.minProb {
				continue // hopeless pairing; don't burn an attempt
			}
			tried++
			attempts++
			if src.disjoint(dst) {
				if src.evicted && dst.evicted {
					// Workable, but executing it would fault BOTH sides in
					// from the tier. Remember it and keep looking for a
					// destination that is already resident.
					if fallback < 0 {
						fallback = j
					}
					continue
				}
				best = j
				break
			}
			conflicts++
		}
		if best < 0 {
			best = fallback
		}
		if best < 0 {
			continue
		}
		live[best].union(src)
		live[i] = nil
		pairs = append(pairs, [2]int{order[i], order[best]})
	}
	return pairs, attempts, conflicts
}

// planClass builds a CompactPlan from snapshots of the given candidate
// blocks. Pure apart from taking each block's metadata snapshot.
func (s *Store) planClass(opts CompactOptions, strategy Strategy, slots int, candidates []*alloc.Block) CompactPlan {
	plan := CompactPlan{Class: opts.Class, Strategy: strategy, Slots: slots}
	if len(candidates) < 2 {
		return plan
	}
	idSpace := slots
	if strategy == StrategyCoRM {
		idSpace = 1 << s.cfg.IDBits
	}
	sets := make([]*mergeSet, len(candidates))
	for i, b := range candidates {
		sets[i] = s.snapshotSet(strategy, b)
	}
	pairs, attempts, conflicts := planMerges(sets, planConfig{
		slots:       slots,
		idSpace:     idSpace,
		maxBlocks:   opts.MaxBlocks,
		maxAttempts: opts.MaxAttempts,
	})
	plan.Attempts = attempts
	plan.Conflicts = conflicts
	for _, p := range pairs {
		plan.Pairs = append(plan.Pairs, MergePair{Src: candidates[p[0]], Dst: candidates[p[1]]})
	}
	return plan
}

// PlanClass computes a merge plan for one size class from a snapshot of
// the store's current blocks, without collecting blocks or mutating any
// state. The plan is advisory: executing it later (via CompactClass, which
// always plans freshly, or in tests via the executor directly) revalidates
// each pair because mutator traffic may have invalidated the snapshots.
func (s *Store) PlanClass(opts CompactOptions) CompactPlan {
	opts = opts.withDefaults()
	classSize := s.cfg.Classes[opts.Class]
	slots := s.proc.Config().SlotsPerBlock(classSize)
	strategy := s.cfg.classStrategy(slots)
	if strategy == StrategyNone {
		return CompactPlan{Class: opts.Class, Strategy: strategy, Slots: slots}
	}
	var candidates []*alloc.Block
	for _, t := range s.thread {
		for _, b := range t.Owned(opts.Class) {
			if b.Occupancy() <= *opts.MaxOccupancy && !b.Empty() {
				candidates = append(candidates, b)
			}
		}
	}
	return s.planClass(opts, strategy, slots, candidates)
}
