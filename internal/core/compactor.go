package core

import (
	"sync"
	"time"
)

// The background compaction service. CoRM's claim is that compaction
// coexists with live one-sided traffic (§3.1.3–§3.1.4); the Compactor is
// the piece that makes that continuous instead of test-orchestrated: a
// paced goroutine that asks a Policy what to compact, runs it with a
// per-cycle block budget, backs off exponentially when there is nothing to
// reclaim, and sheds entirely while the node is hot.

// Compactor state gauge values (cmCompactorState; sums across stores).
const (
	compactorStopped  = 0
	compactorActive   = 1
	compactorBackoff  = 2
	compactorShedding = 3
)

// CompactorConfig parameterizes the background service.
type CompactorConfig struct {
	// Interval is the base pace between cycles (default 50ms).
	Interval time.Duration
	// MaxInterval caps the idle exponential backoff (default 32x Interval).
	MaxInterval time.Duration
	// Policy decides what each cycle does (default ThresholdPolicy).
	Policy Policy
	// Leader is the worker thread acting as compaction leader.
	Leader int
	// MaxBlocks bounds blocks freed per cycle across all classes
	// (0 = unlimited). §4.3.2: bounding a burst shortens the windows in
	// which clients see compaction locks.
	MaxBlocks int
	// LoadShedOpsPerSec pauses compaction while the store's op rate
	// (allocs+frees+reads+writes per second) exceeds it (0 = never shed).
	// Reclamation is a background chore; under peak load the CPU belongs
	// to the mutators.
	LoadShedOpsPerSec float64
	// OnPhase is forwarded to every compaction run.
	OnPhase func(Phase, time.Duration)
}

func (c CompactorConfig) withDefaults() CompactorConfig {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 32 * c.Interval
	}
	if c.Policy == nil {
		c.Policy = &ThresholdPolicy{MaxBlocks: c.MaxBlocks}
	}
	return c
}

// Compactor runs compaction cycles on a background goroutine.
type Compactor struct {
	store *Store
	cfg   CompactorConfig

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    chan struct{}

	// op-rate bookkeeping for load shedding (loop goroutine only).
	lastOps int64
	lastAt  time.Time

	state int64 // current cmCompactorState contribution
}

// NewCompactor builds a background compactor over a store. It does not
// start it; call Start.
func NewCompactor(s *Store, cfg CompactorConfig) *Compactor {
	return &Compactor{store: s, cfg: cfg.withDefaults()}
}

// Start launches the pacing goroutine. Idempotent.
func (c *Compactor) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	c.running = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.loop(c.stop, c.done)
}

// Stop halts the service, draining any in-flight cycle before returning.
// Idempotent; the compactor can be started again afterwards.
func (c *Compactor) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	stop, done := c.stop, c.done
	c.mu.Unlock()
	close(stop)
	<-done
}

// Running reports whether the background goroutine is active.
func (c *Compactor) Running() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.running
}

func (c *Compactor) setState(v int64) {
	cmCompactorState.Add(v - c.state)
	c.state = v
}

func (c *Compactor) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	defer c.setState(compactorStopped)
	interval := c.cfg.Interval
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		if c.shouldShed() {
			cmCompactorShed.Inc()
			c.setState(compactorShedding)
			// Stay at the base pace: resume promptly once load drops.
			interval = c.cfg.Interval
			timer.Reset(interval)
			continue
		}
		c.setState(compactorActive)
		r := c.RunCycle()
		if r.Merges == 0 {
			// Nothing reclaimed: fragmentation is below the watermarks or
			// pairings are colliding. Back off toward the idle ceiling so a
			// quiet node is not re-planning every tick.
			if interval *= 2; interval > c.cfg.MaxInterval {
				interval = c.cfg.MaxInterval
			}
			c.setState(compactorBackoff)
		} else {
			interval = c.cfg.Interval
		}
		timer.Reset(interval)
	}
}

// shouldShed samples the store's op rate against LoadShedOpsPerSec. The
// first sample only establishes the baseline.
func (c *Compactor) shouldShed() bool {
	if c.cfg.LoadShedOpsPerSec <= 0 {
		return false
	}
	st := c.store.Stats()
	ops := st.Allocs + st.Frees + st.Reads + st.Writes
	now := time.Now()
	if c.lastAt.IsZero() {
		c.lastOps, c.lastAt = ops, now
		return false
	}
	elapsed := now.Sub(c.lastAt).Seconds()
	if elapsed <= 0 {
		return false
	}
	rate := float64(ops-c.lastOps) / elapsed
	c.lastOps, c.lastAt = ops, now
	return rate > c.cfg.LoadShedOpsPerSec
}

// RunCycle performs one policy-driven compaction pass synchronously and
// returns the aggregated report. Exposed so tests and tools can drive the
// service deterministically with the goroutine off.
func (c *Compactor) RunCycle() CompactReport {
	start := time.Now()
	var total CompactReport
	runs := c.cfg.Policy.Cycle(c.store)
	remaining := c.cfg.MaxBlocks
	reports := make([]CompactReport, 0, len(runs))
	for _, opts := range runs {
		if c.cfg.MaxBlocks > 0 {
			if remaining <= 0 {
				break
			}
			if opts.MaxBlocks == 0 || opts.MaxBlocks > remaining {
				opts.MaxBlocks = remaining
			}
		}
		opts.Leader = c.cfg.Leader
		if opts.OnPhase == nil {
			opts.OnPhase = c.cfg.OnPhase
		}
		r := c.store.CompactClass(opts)
		reports = append(reports, r)
		total.add(r)
		remaining -= r.BlocksFreed
	}
	c.cfg.Policy.Observe(reports)
	cmCompactorCycles.Inc()
	cmCompactorCycleNs.Observe(time.Since(start).Nanoseconds())
	return total
}
