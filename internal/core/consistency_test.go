package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// TestTornReadDetection runs a real concurrent writer against one-sided
// readers: the FaRM-style version check must ensure a reader either
// observes a fully consistent object or detects the inconsistency — never
// silently returns a mix of two versions (§3.2.3).
func TestTornReadDetection(t *testing.T) {
	s := testStore(t, nil)
	size := 2048 // many cachelines: torn reads are possible
	res, err := s.AllocOn(0, size)
	if err != nil {
		t.Fatal(err)
	}
	addr := res.Addr

	// Writer: repeatedly writes uniform payloads (all bytes = round).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a := addr
		for round := byte(1); ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			payload := bytes.Repeat([]byte{round}, size)
			if err := s.Write(&a, payload); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()

	// Readers: every successful DirectRead must return a uniform payload.
	var inconsistent, ok int
	client := s.ConnectClient()
	buf := make([]byte, size)
	for i := 0; i < 5000; i++ {
		_, err := client.DirectRead(addr, buf)
		switch {
		case err == nil:
			ok++
			first := buf[0]
			for _, b := range buf {
				if b != first {
					t.Fatalf("silent torn read: saw %d and %d", first, b)
				}
			}
		case errors.Is(err, ErrInconsistent):
			inconsistent++
		default:
			t.Fatalf("DirectRead: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if ok == 0 {
		t.Fatal("no read ever succeeded")
	}
	t.Logf("reads: %d consistent, %d detected-inconsistent", ok, inconsistent)
}

// TestConcurrentRPCReadersAndWriters exercises the locked RPC path from
// many goroutines; the race detector validates the synchronization.
func TestConcurrentRPCReadersAndWriters(t *testing.T) {
	s := testStore(t, nil)
	size := 256
	var addrs []Addr
	for i := 0; i < 32; i++ {
		r, err := s.AllocOn(i%s.Workers(), size)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, r.Addr)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < 500; i++ {
				a := addrs[(g*7+i)%len(addrs)]
				if g%2 == 0 {
					if err := s.Write(&a, fill(size, byte(i))); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				} else {
					if _, err := s.Read(&a, buf); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentAllocFree hammers allocation and freeing from all workers.
func TestConcurrentAllocFree(t *testing.T) {
	s := testStore(t, nil)
	var wg sync.WaitGroup
	for w := 0; w < s.Workers(); w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []Addr
			for i := 0; i < 300; i++ {
				r, err := s.AllocOn(w, 64)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				mine = append(mine, r.Addr)
				if len(mine) > 10 && i%3 == 0 {
					if err := s.Free(&mine[0]); err != nil {
						t.Errorf("free: %v", err)
						return
					}
					mine = mine[1:]
				}
			}
			for i := range mine {
				if err := s.Free(&mine[i]); err != nil {
					t.Errorf("drain: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	stats := s.Stats()
	if stats.Allocs != stats.Frees {
		t.Fatalf("allocs %d != frees %d", stats.Allocs, stats.Frees)
	}
}

// TestCompactionUnderConcurrentReads runs a compaction while RPC readers
// hammer the store from other goroutines: readers may see ErrCompacting
// (and retry) but must never see corrupt data or crash.
func TestCompactionUnderConcurrentReads(t *testing.T) {
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 8, 2)
	type entry struct {
		addr    *Addr
		payload []byte
	}
	var entries []entry
	for a, p := range live {
		entries = append(entries, entry{a, p})
	}
	class := s.Allocator().Config().ClassFor(64)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := entries[(g+i)%len(entries)]
				a := *e.addr // private copy: correction updates are local
				_, err := s.Read(&a, buf)
				if errors.Is(err, ErrCompacting) {
					continue // backoff + retry per §3.2.3
				}
				if err != nil {
					t.Errorf("read during compaction: %v", err)
					return
				}
				if !bytes.Equal(buf, e.payload) {
					t.Error("corrupt read during compaction")
					return
				}
			}
		}()
	}
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	close(stop)
	wg.Wait()
	if r.BlocksFreed == 0 {
		t.Fatalf("nothing compacted: %+v", r)
	}
}
