package core

import (
	"encoding/binary"
	"hash/crc32"
)

// Object layout in data-backed blocks (§3, §3.2.3).
//
// Slots are cacheline (64 B) aligned, as required by FaRM-style consistent
// one-sided reads. The first cacheline starts with a 16-byte header; every
// subsequent cacheline reserves its first byte for the low version byte, so
// a reader can verify that all cachelines of the object were captured at
// the same version:
//
//	line 0: [ver8][lock|alloc][id16][version32][home64] + 48 B payload
//	line k: [ver8] + 63 B payload
//
// Writes bump the version, tag every line, and are performed line by line,
// so a concurrent one-sided read genuinely observes mixed versions (a torn
// object), which the version check detects (§3.2.3).
const (
	headerBytes  = 16
	line0Payload = 64 - headerBytes
	lineKPayload = 63
	cacheline    = 64
)

// Object lock states, stored in 2 bits (§3.2.3).
const (
	lockFree       = 0
	lockWrite      = 1
	lockCompaction = 2
)

// header is the decoded object header.
type header struct {
	Version uint32
	Lock    uint8
	Alloc   bool
	ID      uint16
	Home    uint64
}

// linesFor returns the number of cachelines a payload class occupies.
func linesFor(classSize int) int {
	if classSize <= line0Payload {
		return 1
	}
	rest := classSize - line0Payload
	return 1 + (rest+lineKPayload-1)/lineKPayload
}

// dataStride is the slot stride (bytes) of a payload class in data mode.
func dataStride(classSize int) int { return cacheline * linesFor(classSize) }

// encodeHeader writes h into the first 16 bytes of a slot buffer.
func encodeHeader(buf []byte, h header) {
	buf[0] = byte(h.Version)
	b1 := h.Lock & 0x3
	if h.Alloc {
		b1 |= 1 << 2
	}
	buf[1] = b1
	binary.LittleEndian.PutUint16(buf[2:4], h.ID)
	binary.LittleEndian.PutUint32(buf[4:8], h.Version)
	binary.LittleEndian.PutUint64(buf[8:16], h.Home)
}

// decodeHeader parses the first 16 bytes of a slot buffer.
func decodeHeader(buf []byte) header {
	return header{
		Version: binary.LittleEndian.Uint32(buf[4:8]),
		Lock:    buf[1] & 0x3,
		Alloc:   buf[1]&(1<<2) != 0,
		ID:      binary.LittleEndian.Uint16(buf[2:4]),
		Home:    binary.LittleEndian.Uint64(buf[8:16]),
	}
}

// tagLines stamps the low version byte into every cacheline of the slot.
func tagLines(slot []byte, version uint32) {
	for off := 0; off < len(slot); off += cacheline {
		slot[off] = byte(version)
	}
}

// versionsConsistent checks that every cacheline carries the same version
// byte and the object is not locked — the client-side validity check of a
// one-sided read (§3.2.3).
func versionsConsistent(slot []byte) bool {
	h := decodeHeader(slot)
	if h.Lock != lockFree {
		return false
	}
	want := byte(h.Version)
	for off := 0; off < len(slot); off += cacheline {
		if slot[off] != want {
			return false
		}
	}
	return true
}

// packPayload scatters payload into the slot buffer around the per-line
// version bytes.
func packPayload(slot []byte, payload []byte) {
	n := copy(slot[headerBytes:cacheline], payload)
	for off := cacheline; off < len(slot) && n < len(payload); off += cacheline {
		n += copy(slot[off+1:off+cacheline], payload[n:])
	}
}

// unpackPayload gathers size payload bytes from a slot buffer.
func unpackPayload(slot []byte, size int) []byte {
	out := make([]byte, 0, size)
	end := headerBytes + size
	if end > cacheline {
		end = cacheline
	}
	out = append(out, slot[headerBytes:end]...)
	for off := cacheline; off < len(slot) && len(out) < size; off += cacheline {
		take := size - len(out)
		if take > lineKPayload {
			take = lineKPayload
		}
		out = append(out, slot[off+1:off+1+take]...)
	}
	return out
}

// unpackPayloadInto is unpackPayload without the allocation: it copies the
// payload straight into dst (which must hold size bytes) and reports the
// byte count.
func unpackPayloadInto(dst, slot []byte, size int) int {
	end := headerBytes + size
	if end > cacheline {
		end = cacheline
	}
	n := copy(dst, slot[headerBytes:end])
	for off := cacheline; off < len(slot) && n < size; off += cacheline {
		take := size - n
		if take > lineKPayload {
			take = lineKPayload
		}
		n += copy(dst[n:], slot[off+1:off+1+take])
	}
	return n
}

// payloadCapacity is the maximum payload a stride of n lines can hold.
func payloadCapacity(lines int) int {
	return line0Payload + (lines-1)*lineKPayload
}

// --- Checksum layout (§4.2.1's alternative consistency scheme) ---
//
// Instead of tagging every cacheline with a version byte, the object
// stores its payload contiguously followed by a CRC-32 of (payload,
// version). Readers detect torn or concurrent state by recomputing the
// checksum. The layout is denser (no per-line byte, 8-byte alignment
// instead of cacheline alignment) at the cost of hashing the payload on
// every one-sided read — the trade-off the paper suggests for large
// records.

const checksumBytes = 4

// checksumStride is the slot stride of a payload class in checksum mode.
func checksumStride(classSize int) int {
	n := headerBytes + classSize + checksumBytes
	return (n + 7) / 8 * 8
}

// checksumOf hashes the payload region together with the version, so a
// reader cannot match a stale checksum against fresher payload bytes.
func checksumOf(payload []byte, version uint32) uint32 {
	h := crc32.NewIEEE()
	h.Write(payload)
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], version)
	h.Write(v[:])
	return h.Sum32()
}

// sealChecksum writes payload and its checksum into a checksum-mode slot.
func sealChecksum(slot []byte, payload []byte, classSize int, version uint32) {
	copy(slot[headerBytes:headerBytes+classSize], payload)
	for i := headerBytes + len(payload); i < headerBytes+classSize; i++ {
		slot[i] = 0
	}
	sum := checksumOf(slot[headerBytes:headerBytes+classSize], version)
	binary.LittleEndian.PutUint32(slot[headerBytes+classSize:], sum)
}

// checksumConsistent verifies a checksum-mode slot capture.
func checksumConsistent(slot []byte, classSize int) bool {
	h := decodeHeader(slot)
	if h.Lock != lockFree {
		return false
	}
	stored := binary.LittleEndian.Uint32(slot[headerBytes+classSize:])
	return stored == checksumOf(slot[headerBytes:headerBytes+classSize], h.Version)
}

// checksumPayload extracts the payload from a checksum-mode slot.
func checksumPayload(slot []byte, size int) []byte {
	out := make([]byte, size)
	copy(out, slot[headerBytes:headerBytes+size])
	return out
}
