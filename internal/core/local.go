package core

import (
	"corm/internal/mem"
)

// LocalReader is the fast path for applications co-located with the store
// (§4.2.1, Fig 11 right). In the real system a local CoRM read is a plain
// load through the MMU plus the version check; the software layer adds no
// page-table walk. The reader therefore caches the object's physical
// location once (like holding a raw pointer) and per-read does only what
// the paper's client does: capture the slot, verify cacheline versions,
// and gather the payload.
//
// The cached translation is invalidated by compaction exactly as a stale
// MTT entry would be: reads that fail their ID check must re-Bind.
type LocalReader struct {
	store *Store
	buf   []byte
}

// NewLocalReader creates a reader with a reusable capture buffer.
func NewLocalReader(s *Store) *LocalReader {
	return &LocalReader{store: s}
}

// boundObj is a resolved local object reference.
type BoundObj struct {
	frame  *mem.Frame
	off    int
	stride int
	size   int
	id     uint16
	mode   ConsistencyMode
}

// Bind resolves an object pointer to its physical location. The returned
// handle stays valid until the object moves (compaction) or is freed.
func (l *LocalReader) Bind(addr Addr) (BoundObj, error) {
	if !l.store.cfg.DataBacked {
		return BoundObj{}, ErrNoData
	}
	size := l.store.ClassSize(int(addr.Class()))
	frame, off, ok := l.store.space.Translate(addr.VAddr())
	if !ok {
		return BoundObj{}, ErrInvalidAddr
	}
	mode := l.store.cfg.Consistency
	stride := StrideOf(mode, size)
	if off+stride > mem.PageSize {
		// Slots are cacheline aligned and blocks page aligned, so a slot
		// never straddles pages unless the stride exceeds a page; bind to
		// the first page and let Read fall back for the rest.
		return BoundObj{}, ErrShortBuffer
	}
	return BoundObj{frame: frame, off: off, stride: stride, size: size, id: addr.ID(), mode: mode}, nil
}

// Read verifies the object in place and gathers its payload into buf —
// one pass over the data, like the optimistic load-and-check of a real
// local FaRM/CoRM read. Versions are checked before and after the gather,
// mirroring how cache-coherent loads plus the version protocol detect
// concurrent writers without locks. It returns ErrWrongObject when the
// slot no longer holds the bound object (stale handle after compaction)
// and ErrInconsistent on a torn capture.
func (l *LocalReader) Read(obj BoundObj, buf []byte) (int, error) {
	if len(buf) < obj.size {
		return 0, ErrShortBuffer
	}
	slot := obj.frame.Data()[obj.off : obj.off+obj.stride]
	h := decodeHeader(slot)
	if !h.Alloc || h.ID != obj.id {
		return 0, ErrWrongObject
	}
	if obj.mode == ConsistencyChecksum {
		if !checksumConsistent(slot, obj.size) {
			return 0, ErrInconsistent
		}
		n := copy(buf, slot[headerBytes:headerBytes+obj.size])
		if !checksumConsistent(slot, obj.size) {
			return n, ErrInconsistent
		}
		return n, nil
	}
	if !versionsConsistent(slot) {
		return 0, ErrInconsistent
	}
	n := copy(buf, slot[headerBytes:cacheline])
	for off := cacheline; off < len(slot) && n < obj.size; off += cacheline {
		take := obj.size - n
		if take > lineKPayload {
			take = lineKPayload
		}
		n += copy(buf[n:], slot[off+1:off+1+take])
	}
	// Re-check: a writer may have raced the gather.
	if !versionsConsistent(slot) || decodeHeader(slot).Version != h.Version {
		return n, ErrInconsistent
	}
	return n, nil
}
