package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func atomicObj(t *testing.T, s *Store, size int) Addr {
	t.Helper()
	r, err := s.AllocOn(0, size)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(&r.Addr, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	return r.Addr
}

func readU64(t *testing.T, s *Store, a *Addr, off int) uint64 {
	t.Helper()
	size := s.ClassSize(int(a.Class()))
	buf := make([]byte, size)
	if _, err := s.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	return binary.LittleEndian.Uint64(buf[off:])
}

func TestStoreFetchAdd(t *testing.T) {
	s := testStore(t, nil)
	a := atomicObj(t, s, 64)

	prev, err := s.FetchAdd(&a, 0, 10)
	if err != nil || prev != 0 {
		t.Fatalf("first add: %d %v", prev, err)
	}
	prev, err = s.FetchAdd(&a, 0, -3)
	if err != nil || prev != 10 {
		t.Fatalf("second add: %d %v", prev, err)
	}
	if v := readU64(t, s, &a, 0); v != 7 {
		t.Fatalf("counter = %d, want 7", v)
	}

	// Adds at distinct offsets are independent words.
	if _, err := s.FetchAdd(&a, 8, 100); err != nil {
		t.Fatal(err)
	}
	if v := readU64(t, s, &a, 8); v != 100 {
		t.Fatalf("second word = %d", v)
	}
	if v := readU64(t, s, &a, 0); v != 7 {
		t.Fatalf("first word disturbed: %d", v)
	}

	// Offset overruns and negative offsets fail without writing.
	size := s.ClassSize(int(a.Class()))
	if _, err := s.FetchAdd(&a, size-4, 1); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("overrun: %v", err)
	}
	if _, err := s.FetchAdd(&a, -1, 1); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestStoreCAS(t *testing.T) {
	s := testStore(t, nil)
	a := atomicObj(t, s, 64)

	old := make([]byte, 8)
	next := make([]byte, 8)
	binary.LittleEndian.PutUint64(next, 42)
	if err := s.CAS(&a, 0, old, next); err != nil {
		t.Fatalf("cas: %v", err)
	}
	// The compare now fails: bytes changed underneath the stale expectation.
	if err := s.CAS(&a, 0, old, next); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale cas: %v", err)
	}
	if v := readU64(t, s, &a, 0); v != 42 {
		t.Fatalf("counter = %d, want 42", v)
	}

	// Unequal old/new lengths: the larger span bounds the range check, and
	// a successful swap writes exactly len(new) bytes.
	if err := s.CAS(&a, 8, make([]byte, 4), []byte("abcdefgh")); err != nil {
		t.Fatalf("short-old cas: %v", err)
	}
	buf := make([]byte, 64)
	if _, err := s.Read(&a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[8:16], []byte("abcdefgh")) {
		t.Fatalf("swapped bytes %q", buf[8:16])
	}

	size := s.ClassSize(int(a.Class()))
	if err := s.CAS(&a, size-4, old, next); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("overrun cas: %v", err)
	}
	// Empty new: the compare runs but nothing is published.
	if err := s.CAS(&a, 0, next[:0], nil); err != nil {
		t.Fatalf("empty cas: %v", err)
	}
}

func TestStoreCondWrite(t *testing.T) {
	s := testStore(t, nil)
	r, err := s.AllocOn(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Addr

	// if-absent on a never-written object wins; the second attempt loses
	// and reports the version the winner installed.
	ver, err := s.CondWrite(&a, 0, true, []byte("winner"))
	if err != nil || ver == 0 {
		t.Fatalf("if-absent: ver=%d err=%v", ver, err)
	}
	obs, err := s.CondWrite(&a, 0, true, []byte("loser"))
	if !errors.Is(err, ErrConflict) || obs != ver {
		t.Fatalf("second if-absent: obs=%d err=%v", obs, err)
	}

	// if-version chains: each success returns the version to use next.
	ver2, err := s.CondWrite(&a, ver, false, []byte("update"))
	if err != nil || ver2 != ver+1 {
		t.Fatalf("if-version: ver=%d err=%v", ver2, err)
	}
	if obs, err := s.CondWrite(&a, ver, false, []byte("stale")); !errors.Is(err, ErrConflict) || obs != ver2 {
		t.Fatalf("stale if-version: obs=%d err=%v", obs, err)
	}

	// The payload is replaced whole: bytes past the value are zeroed.
	buf := make([]byte, 64)
	if _, err := s.Read(&a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:6], []byte("update")) {
		t.Fatalf("payload %q", buf[:6])
	}
	for i := 6; i < 64; i++ {
		if buf[i] != 0 {
			t.Fatalf("byte %d not zero-filled: %d", i, buf[i])
		}
	}

	// Oversized values are rejected up front.
	size := s.ClassSize(int(a.Class()))
	if _, err := s.CondWrite(&a, ver2, false, make([]byte, size+1)); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestMutateSlotLiveness(t *testing.T) {
	s := testStore(t, nil)
	a := atomicObj(t, s, 64)

	// A freed object is unreachable by every mutation path.
	freed := a
	if err := s.Free(&freed); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchAdd(&freed, 0, 1); err == nil {
		t.Fatal("fetchadd on freed object succeeded")
	}
	if err := s.CAS(&freed, 0, make([]byte, 8), make([]byte, 8)); err == nil {
		t.Fatal("cas on freed object succeeded")
	}

	// Conflict paths report the version they observed without bumping it.
	b := atomicObj(t, s, 64)
	_, errA := s.CondWrite(&b, 999, false, []byte("x"))
	obs1, _ := s.CondWrite(&b, 999, false, []byte("x"))
	obs2, _ := s.CondWrite(&b, 999, false, []byte("x"))
	if errA == nil || obs1 != obs2 {
		t.Fatalf("rejected writes moved the version: %d -> %d (%v)", obs1, obs2, errA)
	}
}

func TestScanClassErrors(t *testing.T) {
	s := testStore(t, nil)
	emit := func(Addr, []byte) bool { return true }
	if err := s.ScanClass(-1, nil, emit); !errors.Is(err, ErrNoClass) {
		t.Fatalf("negative class: %v", err)
	}
	if err := s.ScanClass(1<<20, nil, emit); !errors.Is(err, ErrNoClass) {
		t.Fatalf("huge class: %v", err)
	}
	// An empty (never-allocated) class scans cleanly to zero records.
	n := 0
	if err := s.ScanClass(0, nil, func(Addr, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty class emitted %d records", n)
	}
}

func TestAtomicsRequireDataBacking(t *testing.T) {
	s := testStore(t, func(c *Config) { c.DataBacked = false })
	r, err := s.AllocOn(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchAdd(&r.Addr, 0, 1); !errors.Is(err, ErrNoData) {
		t.Fatalf("fetchadd: %v", err)
	}
	if err := s.ScanClass(int(r.Addr.Class()), nil, func(Addr, []byte) bool { return true }); !errors.Is(err, ErrNoData) {
		t.Fatalf("scan: %v", err)
	}
}

// TestReadStaged: the zero-staging read used by the RPC server lands the
// raw slot in the caller's buffer and unpacks in place.
func TestReadStaged(t *testing.T) {
	s := testStore(t, nil)
	a := atomicObj(t, s, 64)
	if err := s.Write(&a, fill(64, 7)); err != nil {
		t.Fatal(err)
	}
	stride := s.Stride(int(a.Class()))
	buf := make([]byte, stride)
	n, err := s.ReadStaged(&a, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != s.ClassSize(int(a.Class())) {
		t.Fatalf("read %d bytes", n)
	}
	if !bytes.Equal(buf[:64], fill(64, 7)) {
		t.Fatalf("staged read mismatch")
	}
	if _, err := s.ReadStaged(&a, make([]byte, 8)); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short staged read: %v", err)
	}
}

// TestStoreIntrospection exercises the read-only accessors the benches and
// the compaction policy consume.
func TestStoreIntrospection(t *testing.T) {
	s := testStore(t, nil)
	a := atomicObj(t, s, 64)
	class := int(a.Class())

	if s.Stride(class) < s.ClassSize(class) {
		t.Fatal("stride smaller than payload")
	}
	if s.Tuner() != nil {
		t.Fatal("tuner attached by default")
	}
	if s.NIC() == nil || s.Space() == nil || s.Allocator() == nil {
		t.Fatal("nil store component")
	}
	if s.Workers() < 1 {
		t.Fatal("no workers")
	}
	f := s.Fragmentation(class)
	if f.GrantedBytes <= 0 {
		t.Fatalf("no granted bytes after alloc: %+v", f)
	}
	cfg := s.Config()
	if cfg.Consistency.String() == "" || cfg.Correction.String() == "" || a.String() == "" {
		t.Fatal("empty debug strings")
	}
}
