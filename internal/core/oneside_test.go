package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"corm/internal/timing"
)

func TestExtractObjectErrors(t *testing.T) {
	size := 64
	slot := make([]byte, dataStride(size))
	encodeHeader(slot, header{Version: 1, Alloc: true, ID: 42})
	tagLines(slot, 1)

	if _, err := ExtractObject(slot[:10], 42, size); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short raw: %v", err)
	}
	if _, err := ExtractObject(slot, 43, size); !errors.Is(err, ErrWrongObject) {
		t.Errorf("wrong id: %v", err)
	}
	// Free slot.
	encodeHeader(slot, header{Version: 1, Alloc: false, ID: 42})
	if _, err := ExtractObject(slot, 42, size); !errors.Is(err, ErrWrongObject) {
		t.Errorf("free slot: %v", err)
	}
	// Locked slot.
	encodeHeader(slot, header{Version: 1, Alloc: true, ID: 42, Lock: lockCompaction})
	tagLines(slot, 1)
	if _, err := ExtractObject(slot, 42, size); !errors.Is(err, ErrInconsistent) {
		t.Errorf("locked slot: %v", err)
	}
}

func TestScanBlockFindsAmongMany(t *testing.T) {
	size := 64
	stride := dataStride(size)
	block := make([]byte, 8*stride)
	for i := 0; i < 8; i++ {
		slot := block[i*stride : (i+1)*stride]
		encodeHeader(slot, header{Version: 1, Alloc: i%2 == 0, ID: uint16(100 + i)})
		packPayload(slot, fill(size, byte(i)))
		tagLines(slot, 1)
	}
	idx, payload, err := ScanBlock(block, 104, size)
	if err != nil || idx != 4 {
		t.Fatalf("scan = %d %v", idx, err)
	}
	if !bytes.Equal(payload, fill(size, 4)) {
		t.Fatal("scan returned wrong payload")
	}
	// Unallocated slot's ID is not found even though bytes match.
	if _, _, err := ScanBlock(block, 105, size); !errors.Is(err, ErrNotFound) {
		t.Fatalf("free slot found: %v", err)
	}
	if _, _, err := ScanBlock(block, 999, size); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing id: %v", err)
	}
}

func TestDirectReadRetryGivesUp(t *testing.T) {
	s := testStore(t, nil)
	res, _ := s.AllocOn(0, 64)
	client := s.ConnectClient()
	// Lock the object permanently: every read is inconsistent.
	st, slot, _, err := s.resolve(&res.Addr)
	if err != nil {
		t.Fatal(err)
	}
	s.setLockState(st, slot, lockCompaction)

	buf := make([]byte, 64)
	start := time.Now()
	_, err = client.DirectReadRetry(res.Addr, buf, 3, time.Microsecond)
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v", err)
	}
	if client.FailedReads < 4 { // initial + 3 retries
		t.Fatalf("failed reads = %d", client.FailedReads)
	}
	_ = start
}

func TestClientQPStats(t *testing.T) {
	s := testStore(t, nil)
	res, _ := s.AllocOn(0, 64)
	client := s.ConnectClient()
	buf := make([]byte, 64)
	for i := 0; i < 5; i++ {
		if _, err := client.DirectRead(res.Addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	a := res.Addr
	if _, err := client.ScanRead(&a, buf); err != nil {
		t.Fatal(err)
	}
	if client.DirectReads != 5 || client.ScanReads != 1 || client.FailedReads != 0 {
		t.Fatalf("stats = %d/%d/%d", client.DirectReads, client.ScanReads, client.FailedReads)
	}
}

func TestDirectReadInvalidClass(t *testing.T) {
	s := testStore(t, nil)
	client := s.ConnectClient()
	bogus := MakeAddr(0x1000, 1, 1, 200) // class out of range
	if _, err := client.DirectRead(bogus, make([]byte, 8)); !errors.Is(err, ErrInvalidAddr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := client.ScanRead(&bogus, make([]byte, 8)); !errors.Is(err, ErrInvalidAddr) {
		t.Fatalf("scan err = %v", err)
	}
}

func TestLocalReaderStaleAfterCompaction(t *testing.T) {
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 4, 1)
	reader := NewLocalReader(s)
	type bound struct {
		obj     BoundObj
		payload []byte
	}
	var bounds []bound
	for addr, payload := range live {
		obj, err := reader.Bind(*addr)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, bound{obj, payload})
	}
	class := s.Allocator().Config().ClassFor(64)
	if r := s.CompactClass(CompactOptions{Class: class, Leader: 0}); r.BlocksFreed == 0 {
		t.Fatal("nothing compacted")
	}
	// Every stale handle either still reads its object (offset preserved,
	// frame shared) or reports ErrWrongObject — never wrong data.
	buf := make([]byte, 64)
	for _, b := range bounds {
		_, err := reader.Read(b.obj, buf)
		switch {
		case err == nil:
			if !bytes.Equal(buf, b.payload) {
				t.Fatal("stale local handle returned wrong data silently")
			}
		case errors.Is(err, ErrWrongObject), errors.Is(err, ErrInconsistent):
			// expected for moved objects: the recycled frame may hold a
			// different object, a free slot, or leftover lock bits; the
			// caller re-binds through a corrected pointer
		default:
			t.Fatalf("unexpected: %v", err)
		}
	}
}

func TestLocalReaderAccountingMode(t *testing.T) {
	s := testStore(t, func(c *Config) {
		c.DataBacked = false
		c.Remap = RemapRereg
		c.Model = timing.Default()
	})
	res, _ := s.AllocOn(0, 64)
	if _, err := NewLocalReader(s).Bind(res.Addr); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
}
