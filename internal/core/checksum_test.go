package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func checksumStoreT(t *testing.T) *Store {
	t.Helper()
	return testStore(t, func(c *Config) { c.Consistency = ConsistencyChecksum })
}

func TestChecksumStrideDenser(t *testing.T) {
	// §4.2.1: the checksum layout avoids per-cacheline version bytes and
	// cacheline alignment, so large classes pack tighter.
	for _, size := range []int{512, 1024, 2048, 8192} {
		v := StrideOf(ConsistencyVersions, size)
		c := StrideOf(ConsistencyChecksum, size)
		if c >= v {
			t.Errorf("checksum stride %d >= versions stride %d at %d B", c, v, size)
		}
	}
	// Both must hold payload + metadata.
	if StrideOf(ConsistencyChecksum, 64) < headerBytes+64+checksumBytes {
		t.Error("checksum stride too small")
	}
}

func TestChecksumLayoutRoundtrip(t *testing.T) {
	f := func(seed uint8, sizeRaw uint16, version uint32) bool {
		size := int(sizeRaw)%2048 + 8
		size = size / 8 * 8
		slot := make([]byte, checksumStride(size))
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(int(seed) + i)
		}
		encodeHeader(slot, header{Version: version, Alloc: true, ID: 7})
		sealChecksum(slot, payload, size, version)
		if !checksumConsistent(slot, size) {
			return false
		}
		if !bytes.Equal(checksumPayload(slot, size), payload) {
			return false
		}
		// Any payload corruption is detected.
		slot[headerBytes+size/2] ^= 0xFF
		return !checksumConsistent(slot, size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsVersionSkew(t *testing.T) {
	size := 128
	slot := make([]byte, checksumStride(size))
	encodeHeader(slot, header{Version: 5, Alloc: true})
	sealChecksum(slot, make([]byte, size), size, 5)
	if !checksumConsistent(slot, size) {
		t.Fatal("clean slot inconsistent")
	}
	// A checksum sealed under an older version must not validate against
	// a newer header version (stale checksum + fresh header).
	h := decodeHeader(slot)
	h.Version = 6
	encodeHeader(slot, h)
	if checksumConsistent(slot, size) {
		t.Fatal("version skew not detected")
	}
}

func TestChecksumStoreRoundtrip(t *testing.T) {
	s := checksumStoreT(t)
	for _, size := range []int{8, 64, 200, 2048} {
		res, err := s.AllocOn(0, size)
		if err != nil {
			t.Fatal(err)
		}
		addr := res.Addr
		payload := fill(size, byte(size))
		if err := s.Write(&addr, payload); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, s.ClassSize(int(addr.Class())))
		if _, err := s.Read(&addr, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:size], payload) {
			t.Fatalf("RPC read mismatch at %d B", size)
		}
		client := s.ConnectClient()
		clear(buf)
		if _, err := client.DirectRead(addr, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:size], payload) {
			t.Fatalf("one-sided read mismatch at %d B", size)
		}
		if err := s.Free(&addr); err != nil {
			t.Fatal(err)
		}
		if _, err := client.DirectRead(addr, buf); !errors.Is(err, ErrWrongObject) {
			t.Fatalf("read after free: %v", err)
		}
	}
}

func TestChecksumTornReadDetection(t *testing.T) {
	s := checksumStoreT(t)
	size := 2048
	res, err := s.AllocOn(0, size)
	if err != nil {
		t.Fatal(err)
	}
	addr := res.Addr

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a := addr
		for round := byte(1); ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Write(&a, bytes.Repeat([]byte{round}, size)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()

	client := s.ConnectClient()
	buf := make([]byte, size)
	ok, inconsistent := 0, 0
	for i := 0; i < 5000; i++ {
		_, err := client.DirectRead(addr, buf)
		switch {
		case err == nil:
			ok++
			first := buf[0]
			for _, b := range buf {
				if b != first {
					t.Fatalf("silent torn read under checksum mode: %d vs %d", first, b)
				}
			}
		case errors.Is(err, ErrInconsistent):
			inconsistent++
		default:
			t.Fatalf("DirectRead: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if ok == 0 {
		t.Fatal("no consistent read")
	}
	t.Logf("checksum mode: %d consistent, %d detected-inconsistent", ok, inconsistent)
}

func TestChecksumCompactionSurvives(t *testing.T) {
	s := checksumStoreT(t)
	live := sparseBlocks(t, s, 64, 6, 2)
	class := s.Allocator().Config().ClassFor(64)
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed == 0 {
		t.Fatal("nothing compacted")
	}
	client := s.ConnectClient()
	for addr, payload := range live {
		buf := make([]byte, 64)
		_, err := client.DirectRead(*addr, buf)
		if errors.Is(err, ErrWrongObject) {
			if _, err = client.ScanRead(addr, buf); err != nil {
				t.Fatalf("ScanRead: %v", err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatal("payload corrupted across checksum-mode compaction")
		}
	}
}

func TestChecksumLocalReader(t *testing.T) {
	s := checksumStoreT(t)
	res, _ := s.AllocOn(0, 256)
	addr := res.Addr
	payload := fill(256, 3)
	if err := s.Write(&addr, payload); err != nil {
		t.Fatal(err)
	}
	reader := NewLocalReader(s)
	obj, err := reader.Bind(addr)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := reader.Read(obj, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("local checksum read mismatch")
	}
}
