package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"corm/internal/alloc"
	"corm/internal/mem"
	"corm/internal/rnic"
	"corm/internal/tier"
)

// Store errors.
var (
	ErrNoClass     = errors.New("core: object size exceeds largest size class")
	ErrInvalidAddr = errors.New("core: address does not belong to any block")
	ErrNotFound    = errors.New("core: object not found (freed or released)")
	ErrCompacting  = errors.New("core: object locked by compaction, retry")
	ErrShortBuffer = errors.New("core: buffer smaller than object payload")
	ErrNoData      = errors.New("core: store is accounting-only (no data)")
)

// Stats aggregates store-level counters.
type Stats struct {
	Allocs, Frees    int64
	Reads, Writes    int64
	Corrections      int64 // pointer corrections performed (§3.2)
	CorrectionMisses int64 // corrections that found nothing (stale pointer)
	Releases         int64 // ReleasePtr calls
	Compactions      int64 // merge operations executed
	BlocksFreed      int64
	ObjectsMoved     int64 // objects whose offset changed (indirect pointers)
	VaddrsReused     int64
}

// counters is the store's live tally. Every field is atomic so hot-path
// operations (Read, Write, resolve) never rendezvous on a stats lock; Stats
// snapshots them into the exported plain-int64 Stats.
type counters struct {
	allocs, frees    atomic.Int64
	reads, writes    atomic.Int64
	corrections      atomic.Int64
	correctionMisses atomic.Int64
	releases         atomic.Int64
	compactions      atomic.Int64
	blocksFreed      atomic.Int64
	objectsMoved     atomic.Int64
	vaddrsReused     atomic.Int64
}

func (c *counters) snapshot() Stats {
	// Load order matters for cross-counter sanity under concurrent traffic:
	// a "consumer" counter (frees, correction misses) must be loaded before
	// the "producer" counter that bounds it (allocs, corrections). Loading
	// allocs first admits a snapshot where an alloc+free pair lands between
	// the two loads and Frees > Allocs — a drift that fails audits even
	// though every individual counter is exact. With this order each
	// consumer value is bounded by producer events that had already
	// completed, so Frees <= Allocs and CorrectionMisses <= Corrections
	// hold in every snapshot.
	frees := c.frees.Load()
	misses := c.correctionMisses.Load()
	blocksFreed := c.blocksFreed.Load()
	return Stats{
		Allocs: c.allocs.Load(), Frees: frees,
		Reads: c.reads.Load(), Writes: c.writes.Load(),
		Corrections:      c.corrections.Load(),
		CorrectionMisses: misses,
		Releases:         c.releases.Load(),
		Compactions:      c.compactions.Load(),
		BlocksFreed:      blocksFreed,
		ObjectsMoved:     c.objectsMoved.Load(),
		VaddrsReused:     c.vaddrsReused.Load(),
	}
}

// storeShards stripes the block-index maps. Each block-base vaddr hashes to
// one stripe, so operations on different blocks take different locks; the
// per-operation heavy lifting rides the per-block blockState locks anyway,
// leaving the stripes with only map lookups.
const storeShards = 64

// storeShard is one stripe of the block index. All three maps are keyed (or
// keyable) by block-base vaddr: states by the block's primary base, aliases
// and regions by any base (live or dissolved-and-aliased).
type storeShard struct {
	mu      sync.RWMutex
	states  map[*alloc.Block]*blockState
	aliases map[uint64]*blockState  // block-base vaddr (live or aliased) -> live block
	regions map[uint64]*rnic.Region // block-base vaddr -> NIC registration
}

// Store is one CoRM node.
//
// Lock hierarchy (documented order; all are leaves of each other — no code
// path holds two of them except shard.mu strictly before nothing):
//
//	shard.mu > { blockState.mu, blockState.rw, blockMeta.mu, vt.mu, rngMu }
//
// In practice shard critical sections only touch the maps; per-block work
// happens outside them under the blockState locks.
type Store struct {
	cfg    Config
	phys   *mem.Phys
	space  *mem.AddrSpace
	nic    *rnic.NIC
	proc   *alloc.ProcWide
	thread []*alloc.ThreadLocal

	shards [storeShards]storeShard

	rngMu sync.Mutex
	rng   *rand.Rand

	vt    *vaddrTracker
	stats counters

	// res manages block residency when a memory budget or tier is
	// configured (residency.go); nil otherwise. tierImpl is the spill
	// backend, kept for Close.
	res      *tier.Residency
	tierImpl tier.Tier

	// heatRefreshed throttles AutoTuner snapshots on the reclaim path
	// (unix nanos of the last Relabel).
	heatRefreshed atomic.Int64

	// canaryViolations counts guard-byte violations detected by this
	// store (canary.go). Per-store — the global registry counter sums
	// across every store in the process, which multi-node harnesses
	// cannot attribute.
	canaryViolations atomic.Int64

	// tuner, when attached, observes every alloc/free so the adaptive
	// compaction policy (§4.4 auto-labeling) sees real churn. An atomic
	// pointer: attachment may race with live traffic.
	tuner atomic.Pointer[AutoTuner]
}

// AttachTuner routes every subsequent AllocOn/Free through the tuner's
// Observe* counters. Pass nil to detach. Safe to call while serving.
func (s *Store) AttachTuner(t *AutoTuner) { s.tuner.Store(t) }

// Tuner returns the attached AutoTuner, or nil.
func (s *Store) Tuner() *AutoTuner { return s.tuner.Load() }

// shard returns the stripe owning a block-base vaddr.
func (s *Store) shard(base uint64) *storeShard {
	return &s.shards[(base/uint64(s.cfg.BlockBytes))%storeShards]
}

// NewStore builds a store from the configuration.
func NewStore(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	phys := mem.NewPhys(cfg.DataBacked)
	space := mem.NewAddrSpace(phys)
	proc, err := alloc.NewProcWide(space, cfg.allocConfig())
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:   cfg,
		phys:  phys,
		space: space,
		nic:   rnic.New(space, cfg.Model.NIC),
		proc:  proc,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		vt:    newVaddrTracker(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.states = make(map[*alloc.Block]*blockState)
		sh.aliases = make(map[uint64]*blockState)
		sh.regions = make(map[uint64]*rnic.Region)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.thread = append(s.thread, alloc.NewThreadLocal(i, proc))
	}
	if cfg.MemBudgetBytes > 0 || (cfg.TierSpec != "" && cfg.TierSpec != "off") {
		t, err := tier.Open(cfg.TierSpec)
		if err != nil {
			return nil, err
		}
		if t != nil {
			s.tierImpl = t
			s.res = tier.NewResidency(space, t)
			phys.SetBudget(int(cfg.MemBudgetBytes / mem.PageSize))
			phys.SetReclaimer(s.reclaimFrames)
			s.nic.SetPageFaultHandler(s.handleNICFault)
		}
	}
	proc.OnNewBlock = s.onNewBlock
	proc.OnReleaseBlock = s.onReleaseBlock
	return s, nil
}

// Config returns the store configuration (with defaults applied).
func (s *Store) Config() Config { return s.cfg }

// NIC returns the store's RNIC, which clients connect QPs to.
func (s *Store) NIC() *rnic.NIC { return s.nic }

// Space returns the store's address space.
func (s *Store) Space() *mem.AddrSpace { return s.space }

// Alloc reserves the process-wide allocator for tests and experiments.
func (s *Store) Allocator() *alloc.ProcWide { return s.proc }

// Workers returns the number of worker threads.
func (s *Store) Workers() int { return s.cfg.Workers }

// Stats snapshots the counters.
func (s *Store) Stats() Stats { return s.stats.snapshot() }

// ActiveBytes is the store's active physical memory (Figs 17-19).
func (s *Store) ActiveBytes() int64 { return s.phys.LiveBytes() }

// Stride returns the slot stride of a class index.
func (s *Store) Stride(class int) int {
	return s.proc.Config().Stride(s.cfg.Classes[class])
}

// ClassSize returns the payload size of a class index.
func (s *Store) ClassSize(class int) int { return s.cfg.Classes[class] }

// onNewBlock wires store-level state to a freshly mapped block.
func (s *Store) onNewBlock(b *alloc.Block) {
	st := &blockState{Block: b, meta: newBlockMeta(b.Slots)}
	var region *rnic.Region
	if s.cfg.DataBacked {
		var err error
		region, err = s.nic.Register(b.VAddr, s.cfg.BlockBytes, s.useODP())
		if err != nil {
			panic(fmt.Sprintf("core: block registration failed: %v", err))
		}
		st.region = regionRef{rkey: region.RKey}
	}
	if s.res != nil {
		st.resH = s.res.Register(b.VAddr, b.Pages, b.Class)
	}
	sh := s.shard(b.VAddr)
	sh.mu.Lock()
	if region != nil {
		sh.regions[b.VAddr] = region
	}
	sh.states[b] = st
	sh.aliases[b.VAddr] = st
	sh.mu.Unlock()
	cmBlocksLive.Inc()
	cmSlotsCapacity.Add(int64(b.Slots))
	cmBytesLive.Add(int64(s.cfg.BlockBytes))
}

// onReleaseBlock tears down store state before a block is unmapped.
func (s *Store) onReleaseBlock(b *alloc.Block) {
	sh := s.shard(b.VAddr)
	sh.mu.Lock()
	st := sh.states[b]
	delete(sh.states, b)
	delete(sh.aliases, b.VAddr)
	region := sh.regions[b.VAddr]
	delete(sh.regions, b.VAddr)
	sh.mu.Unlock()
	if st != nil {
		st.markDead() // stale references must not touch the unmapped vaddr
		st.takeAliases()
		if h := st.resH; h != nil {
			// The allocator unmaps the vaddr right after this callback, so
			// an evicted block must be re-mapped first. (In practice the
			// release path only runs on empty blocks, which went empty via
			// frees that faulted them in — this is belt-and-braces.)
			if h.State() != tier.Resident {
				if err := s.res.FaultIn(h); err == nil {
					cmEvictedBlocks.Dec()
				}
			}
			s.res.Unregister(h)
		}
	}
	if region != nil {
		s.nic.Deregister(region)
	}
	cmBlocksLive.Dec()
	cmSlotsCapacity.Add(-int64(b.Slots))
	cmBytesLive.Add(-int64(s.cfg.BlockBytes))
}

func (s *Store) useODP() bool { return s.cfg.Remap != RemapRereg }

// stateOf resolves the store state of a block.
func (s *Store) stateOf(b *alloc.Block) *blockState {
	sh := s.shard(b.VAddr)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.states[b]
}

// blockBase masks an address down to its block base.
func (s *Store) blockBase(vaddr uint64) uint64 {
	return vaddr &^ uint64(s.cfg.BlockBytes-1)
}

// resolveBase finds the live block serving a block-base vaddr (directly or
// through a compaction alias). This is the hottest store lookup — one
// shared-mode stripe lock, so concurrent resolves on different (and mostly
// even on the same) blocks proceed in parallel.
func (s *Store) resolveBase(base uint64) (*blockState, bool) {
	sh := s.shard(base)
	sh.mu.RLock()
	st, ok := sh.aliases[base]
	sh.mu.RUnlock()
	return st, ok
}

// drawID picks a fresh block-local random object ID (§3.1.2). IDs are
// drawn uniformly from the 2^IDBits space and redrawn on collision within
// the block, matching the no-replacement model of §3.4.
func (s *Store) drawID(st *blockState) uint16 {
	if !s.cfg.usesIDs() {
		return 0
	}
	if s.cfg.classStrategy(st.Slots) != StrategyCoRM {
		// Class not managed by ID-based compaction: IDs are unused.
		return 0
	}
	mask := uint16(1<<s.cfg.IDBits - 1)
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	for {
		id := uint16(s.rng.Intn(1<<s.cfg.IDBits)) & mask
		if !st.meta.hasID(id) {
			return id
		}
	}
}

// AllocResult reports an allocation plus the latency-relevant detail of
// whether the thread-local allocator had to refill (§4.1: +5 µs).
type AllocResult struct {
	Addr     Addr
	Refilled bool
}

// AllocOn allocates an object of the given payload size on a worker
// thread, returning its 128-bit pointer.
func (s *Store) AllocOn(thread int, size int) (AllocResult, error) {
	class := s.proc.Config().ClassFor(size)
	if class < 0 {
		return AllocResult{}, fmt.Errorf("%w: %d bytes", ErrNoClass, size)
	}
	// Slot claim and object initialization happen inside the thread-local
	// allocator's critical section (AllocAnd): a compaction leader collecting
	// this thread's blocks serializes on the same lock, so it can never merge
	// away a slot whose metadata and header are not yet written.
	//
	// pinned carries a residency pin across fault-then-retry rounds: the
	// fault-in below happens outside the allocator's critical section, so
	// without the pin an aggressive evictor could spill the target again
	// before the retry re-enters it — repeated forever, that starves the
	// allocation. The pin closes its own race lazily: an eviction already
	// past the pin check can spill the block once more, but the next round
	// faults it back in with the pin long since visible.
	var pinned *tier.Handle
	defer func() {
		if pinned != nil {
			pinned.Unpin()
		}
	}()
	for try := 0; ; try++ {
		var (
			addr    Addr
			postErr error
			faultSt *blockState
		)
		b, _, refilled := s.thread[thread].AllocAnd(class, func(b *alloc.Block, slot int, _ bool) error {
			st := s.stateOf(b)
			// Residency gate: the slot write below needs the block's frames
			// mapped, and eviction takes rw exclusively, so the check and
			// the write must sit under a shared rw hold — a bare state load
			// would race a spill between check and write. TryRLock, never a
			// blocking RLock: Free holds rw while re-acquiring this thread's
			// allocator mutex, so blocking here on the same block deadlocks.
			// Either failure aborts out of the critical section and retries
			// after an unlocked fault-in (faulting in here would invert the
			// lock order: reclaim takes block locks before waking the
			// allocator).
			if h := st.resH; h != nil {
				if !st.rw.TryRLock() {
					faultSt = st
					postErr = errNotResident
					return errNotResident
				}
				defer st.rw.RUnlock()
				if h.State() != tier.Resident {
					faultSt = st
					postErr = errNotResident
					return errNotResident
				}
				h.Touch()
			}
			id := s.drawID(st)
			st.meta.set(slot, id, b.VAddr)
			s.vt.incHome(b.VAddr)

			if s.cfg.DataBacked {
				raw := make([]byte, b.Stride)
				encodeHeader(raw, header{Version: 0, Lock: lockFree, Alloc: true, ID: id, Home: b.VAddr})
				if s.cfg.Consistency == ConsistencyChecksum {
					sealChecksum(raw, nil, s.cfg.Classes[class], 0)
				} else {
					tagLines(raw, 0)
				}
				if s.cfg.Canaries {
					paintCanary(raw, s.cfg.canaryStart(s.cfg.Classes[class], b.Stride))
				}
				if err := s.space.WriteAt(b.SlotAddr(slot), raw); err != nil {
					st.meta.clear(slot)
					s.vt.decHome(b.VAddr)
					postErr = err
					return err
				}
			}
			addr = MakeAddr(b.SlotAddr(slot), id, st.region.rkey, uint8(class))
			return nil
		})
		if b == nil {
			if errors.Is(postErr, errNotResident) && faultSt != nil && try < allocFaultRetries {
				if h := faultSt.resH; h != nil && h != pinned {
					// The allocator may have switched blocks since the
					// last round: move the pin to the current target.
					if pinned != nil {
						pinned.Unpin()
					}
					h.Pin()
					pinned = h
				}
				if err := s.ensureResidentSlow(faultSt); err != nil {
					return AllocResult{}, err
				}
				// If the abort was pure lock contention (block resident,
				// TryRLock lost), ensureResidentSlow was a no-op and the
				// tight retry loop would burn every round before the writer
				// is even scheduled. The writer may be a Free blocked on
				// this thread's allocator mutex — which the abort just
				// released — so a blocking rendezvous here is deadlock-free
				// and waits exactly as long as needed.
				faultSt.rw.RLock()
				faultSt.rw.RUnlock() //nolint:staticcheck // empty critical section is the wait
				continue
			}
			return AllocResult{}, postErr
		}

		s.stats.allocs.Add(1)
		cmAllocs.Inc()
		cmObjectsLive.Inc()
		if t := s.tuner.Load(); t != nil {
			t.ObserveAlloc(class)
		}
		return AllocResult{Addr: addr, Refilled: refilled}, nil
	}
}

// resolve locates the live block and slot for a pointer, performing
// pointer correction when the hinted slot does not hold the object
// (§3.2.1). It reports whether correction was needed.
func (s *Store) resolve(addr *Addr) (*blockState, int, bool, error) {
	for {
		st, slot, corrected, err := s.resolveOnce(addr)
		if err == errStaleResolve {
			continue
		}
		return st, slot, corrected, err
	}
}

// errStaleResolve signals that a lookup raced a completing merge and the
// base now resolves to a different live block: try again.
var errStaleResolve = errors.New("core: stale resolve")

func (s *Store) resolveOnce(addr *Addr) (*blockState, int, bool, error) {
	base := s.blockBase(addr.VAddr())
	st, ok := s.resolveBase(base)
	if !ok {
		return nil, 0, false, fmt.Errorf("%w: %#x", ErrInvalidAddr, addr.VAddr())
	}
	// The pointer may reference the block through a compaction alias, so
	// the slot is derived from the pointer's own block base, not the live
	// block's primary address (offsets are preserved across the alias).
	off := int(addr.VAddr() - base)
	if off%st.Stride != 0 || off >= st.Slots*st.Stride {
		return nil, 0, false, fmt.Errorf("%w: %#x not slot-aligned", ErrInvalidAddr, addr.VAddr())
	}
	slot := off / st.Stride
	// Optimistic hinted access: check the object at the hinted offset.
	if st.SlotUsed(slot) {
		id, _ := st.meta.at(slot)
		if id == addr.ID() {
			return st, slot, false, nil
		}
	}
	// Correction: find the object by ID. With messaging the owner answers
	// from its metadata; with scanning the serving thread walks the block.
	// Functionally both are a metadata search; their different costs and
	// availability are modeled by the RPC layer.
	found, ok := st.meta.lookup(addr.ID())
	if !ok || !st.SlotUsed(found) {
		if st.isCompacting() {
			// Mid-merge the object may already be detached from this
			// block while its alias still routes here: retryable, not
			// gone (§3.2.3).
			return nil, 0, false, ErrCompacting
		}
		// The lookup may have observed a merge's transient gap (object
		// detached from src, base not yet rerouted) that completed before
		// the compacting check above. If the base resolves elsewhere now,
		// the miss was stale — retry against the merge destination.
		if cur, ok2 := s.resolveBase(base); !ok2 || cur != st {
			return nil, 0, false, errStaleResolve
		}
		s.stats.corrections.Add(1)
		s.stats.correctionMisses.Add(1)
		cmCorrections.Inc()
		cmCorrectionMisses.Inc()
		return nil, 0, false, fmt.Errorf("%w: id %d in block %#x", ErrNotFound, addr.ID(), base)
	}
	addr.SetVAddr(base + uint64(found*st.Stride))
	addr.SetFlag(FlagIndirectObserved)
	s.stats.corrections.Add(1)
	cmCorrections.Inc()
	return st, found, true, nil
}

// Read copies an object's payload into buf via the RPC path, correcting
// the pointer if needed. It returns the payload length.
func (s *Store) Read(addr *Addr, buf []byte) (int, error) {
	st, slot, _, err := s.resolve(addr)
	if err != nil {
		return 0, err
	}
	size := s.ClassSize(st.Class)
	if len(buf) < size {
		return 0, ErrShortBuffer
	}
	if !s.cfg.DataBacked {
		if err := st.gone(); err != nil {
			return 0, err
		}
		s.stats.reads.Add(1)
		cmReads.Inc()
		return size, nil
	}
	// The liveness check lives under rw: merge flips the compacting flag
	// while holding rw exclusively, so an operation that passed the check
	// cannot still be in flight when the merge's copy phase begins — and a
	// stale reference to a dissolved or released block is caught here
	// before any memory access. The residency gate rides the same lock:
	// spill-out needs rw exclusively, so a block that was resident when the
	// read lock was granted stays resident until it is released.
	if err := s.rlockResident(st); err != nil {
		return 0, err
	}
	defer st.rw.RUnlock()
	s.stats.reads.Add(1)
	cmReads.Inc()
	sc := readScratchPool.Get().(*readScratch)
	defer readScratchPool.Put(sc)
	if cap(sc.b) < st.Stride {
		sc.b = make([]byte, st.Stride)
	}
	raw := sc.b[:st.Stride]
	if err := s.space.ReadAt(st.SlotAddr(slot), raw); err != nil {
		return 0, err
	}
	if !s.checkCanary(raw, size) {
		return 0, ErrCorruption
	}
	if s.cfg.Consistency == ConsistencyChecksum {
		copy(buf, raw[headerBytes:headerBytes+size])
	} else {
		unpackPayloadInto(buf, raw, size)
	}
	return size, nil
}

// ReadStaged is Read without the internal staging buffer: the caller
// supplies buf of at least Stride(class) bytes, the raw slot is landed
// directly in it, and the payload is unpacked in place to buf[:size] — so
// the RPC server can serve reads straight into the outgoing wire frame
// with zero staging copies. In-place unpacking is safe because every
// packed payload byte sits strictly ahead of its destination (the 16-byte
// slot header plus one version-tag byte per cacheline), and copy has
// memmove semantics.
func (s *Store) ReadStaged(addr *Addr, buf []byte) (int, error) {
	st, slot, _, err := s.resolve(addr)
	if err != nil {
		return 0, err
	}
	size := s.ClassSize(st.Class)
	if len(buf) < st.Stride {
		return 0, ErrShortBuffer
	}
	if !s.cfg.DataBacked {
		if err := st.gone(); err != nil {
			return 0, err
		}
		s.stats.reads.Add(1)
		cmReads.Inc()
		// Callers hand in uninitialized frame-buffer tails; keep the
		// payload deterministic like the staged path's zeroed scratch.
		clear(buf[:size])
		return size, nil
	}
	if err := s.rlockResident(st); err != nil {
		return 0, err
	}
	defer st.rw.RUnlock()
	s.stats.reads.Add(1)
	cmReads.Inc()
	raw := buf[:st.Stride]
	if err := s.space.ReadAt(st.SlotAddr(slot), raw); err != nil {
		return 0, err
	}
	if !s.checkCanary(raw, size) {
		return 0, ErrCorruption
	}
	if s.cfg.Consistency == ConsistencyChecksum {
		copy(buf, raw[headerBytes:headerBytes+size])
	} else {
		unpackPayloadInto(buf, raw, size)
	}
	return size, nil
}

// readScratch wraps Read's stride-sized staging buffer so the sync.Pool
// round trip is a pointer (a bare []byte boxed into interface{} costs a
// heap-allocated slice header on every Put — exactly the per-read
// allocation the pool exists to remove). The payload is copied out before
// release, so reads cost zero marginal heap allocations on the hot path.
type readScratch struct{ b []byte }

var readScratchPool = sync.Pool{New: func() any { return &readScratch{make([]byte, 0, 4096)} }}

// Write updates an object's payload via the RPC path. The write protocol
// bumps the version, tags every cacheline, and writes line by line so
// concurrent one-sided readers can detect torn state (§3.2.3).
func (s *Store) Write(addr *Addr, payload []byte) error {
	st, slot, _, err := s.resolve(addr)
	if err != nil {
		return err
	}
	size := s.ClassSize(st.Class)
	if len(payload) > size {
		return fmt.Errorf("%w: payload %d > class %d", ErrShortBuffer, len(payload), size)
	}
	if !s.cfg.DataBacked {
		if err := st.gone(); err != nil {
			return err
		}
		s.stats.writes.Add(1)
		cmWrites.Inc()
		return nil
	}

	if err := s.lockResident(st); err != nil {
		return err
	}
	defer st.rw.Unlock()
	s.stats.writes.Add(1)
	cmWrites.Inc()
	base := st.SlotAddr(slot)
	sc := slotScratchPool.Get().(*slotScratch)
	defer slotScratchPool.Put(sc)
	raw, _ := sc.buffers(st.Stride, 0)
	if err := s.space.ReadAt(base, raw); err != nil {
		return err
	}
	h := decodeHeader(raw)
	return s.publishSlot(st, base, raw, h, h.Version+1, payload)
}

// publishSlot rebuilds a slot image around the new payload and writes it
// back with the torn-read-safe protocol: lock the header line, write the
// tail cachelines with the new version tags one by one (concurrent
// one-sided readers may interleave and must be able to detect the tear),
// then publish the header with the new version, unlocked. In checksum mode
// the equivalent lock/stream/seal sequence applies. The caller holds st.rw
// exclusively and supplies the current slot image in raw.
func (s *Store) publishSlot(st *blockState, base uint64, raw []byte, h header, newVersion uint32, payload []byte) error {
	if s.cfg.Consistency == ConsistencyChecksum {
		return s.writeChecksum(st, base, raw, h, newVersion, payload)
	}
	// 1. Lock the object: rewrite the header line with the write lock.
	h.Lock = lockWrite
	encodeHeader(raw, h)
	if err := s.space.WriteAt(base, raw[:cacheline]); err != nil {
		return err
	}
	// 2. Rebuild the slot image with the new payload and version tags,
	// then write the tail lines one by one (readers may interleave).
	packPayload(raw, payload)
	tagLines(raw, newVersion)
	for off := cacheline; off < st.Stride; off += cacheline {
		if err := s.space.WriteAt(base+uint64(off), raw[off:off+cacheline]); err != nil {
			return err
		}
	}
	// 3. Publish: write the header line with the new version, unlocked.
	h.Version = newVersion
	h.Lock = lockFree
	encodeHeader(raw, h)
	if err := s.space.WriteAt(base, raw[:cacheline]); err != nil {
		return err
	}
	return nil
}

// writeChecksum is the checksum-mode write protocol: lock, stream the new
// payload in cacheline-sized chunks (so concurrent one-sided readers can
// genuinely observe torn state), seal with the new checksum, and publish
// the new version unlocked. A reader racing any step sees either the lock
// bits or a checksum mismatch.
func (s *Store) writeChecksum(st *blockState, base uint64, raw []byte, h header, newVersion uint32, payload []byte) error {
	size := s.ClassSize(st.Class)
	h.Lock = lockWrite
	encodeHeader(raw, h)
	if err := s.space.WriteAt(base, raw[:headerBytes]); err != nil {
		return err
	}
	sealChecksum(raw, payload, size, newVersion)
	for off := headerBytes; off < st.Stride; off += cacheline {
		end := off + cacheline
		if end > st.Stride {
			end = st.Stride
		}
		if err := s.space.WriteAt(base+uint64(off), raw[off:end]); err != nil {
			return err
		}
	}
	h.Version = newVersion
	h.Lock = lockFree
	encodeHeader(raw, h)
	return s.space.WriteAt(base, raw[:headerBytes])
}

// Free releases an object (§2, Table 2), correcting the pointer first. The
// freeing is routed to the owning thread to preserve the block-ownership
// invariant.
func (s *Store) Free(addr *Addr) error {
	st, slot, _, err := s.resolve(addr)
	if err != nil {
		return err
	}
	// Held across the whole mutation so a merge that starts concurrently
	// (its lock phase takes rw exclusively) either waits for this free or
	// is observed by the compacting check. The slot rewrite below needs
	// the block resident, hence the residency-gated acquire.
	if err := s.lockResident(st); err != nil {
		return err
	}
	// Last chance to catch an overflow into this slot's guard tail before
	// the slot is recycled and the evidence repainted. The free proceeds
	// either way — the slot must not leak — but the violation is recorded
	// and reported to the caller.
	corrupt := false
	if s.cfg.Canaries && s.cfg.DataBacked {
		raw := make([]byte, st.Stride)
		if s.space.ReadAt(st.SlotAddr(slot), raw) == nil {
			corrupt = !s.checkCanary(raw, s.ClassSize(st.Class))
		}
	}
	_, home := st.meta.clear(slot)
	if s.cfg.DataBacked {
		// Mark the stored slot free so one-sided readers reject it.
		s.clearAllocBit(st, slot)
	}
	// Route to the owner thread, re-reading ownership if a compaction
	// leader collected the block between the read and the free.
	for {
		owner := st.Owner()
		if owner < 0 || owner >= len(s.thread) {
			owner = 0
		}
		err := s.thread[owner].Free(st.Block, slot)
		if err == nil {
			break
		}
		if !errors.Is(err, alloc.ErrWrongOwner) {
			st.rw.Unlock()
			return err
		}
	}
	st.rw.Unlock()
	s.stats.frees.Add(1)
	cmFrees.Inc()
	cmObjectsLive.Dec()
	if t := s.tuner.Load(); t != nil {
		t.ObserveFree(st.Class)
	}
	if pages, reuse := s.vt.decHome(home); reuse {
		s.releaseAlias(home, pages)
	}
	if corrupt {
		return ErrCorruption
	}
	return nil
}

// ReleasePtr tells the store that every copy of an old pointer has been
// corrected: the object is rebased onto its current block address, and the
// old home address may become reusable (§3.3). It returns the rebased
// pointer the client should use from now on.
func (s *Store) ReleasePtr(addr *Addr) (Addr, error) {
	st, slot, _, err := s.resolve(addr)
	if err != nil {
		return Addr{}, err
	}
	if err := s.lockResident(st); err != nil {
		return Addr{}, err
	}
	s.stats.releases.Add(1)
	cmReleases.Inc()
	id, home := st.meta.at(slot)
	if home == st.VAddr {
		// Pointer already references the live block: nothing to release.
		st.rw.Unlock()
		return MakeAddr(st.SlotAddr(slot), id, st.region.rkey, uint8(st.Class)), nil
	}
	st.meta.setHome(slot, st.VAddr)
	s.vt.incHome(st.VAddr)
	if s.cfg.DataBacked {
		s.rewriteHome(st, slot, st.VAddr)
	}
	st.rw.Unlock()
	if pages, reuse := s.vt.decHome(home); reuse {
		s.releaseAlias(home, pages)
	}
	return MakeAddr(st.SlotAddr(slot), id, st.region.rkey, uint8(st.Class)), nil
}

// clearAllocBit rewrites a slot header with the allocated bit cleared. The
// caller holds st.rw exclusively.
func (s *Store) clearAllocBit(st *blockState, slot int) {
	base := st.SlotAddr(slot)
	line := make([]byte, headerBytes)
	if err := s.space.ReadAt(base, line); err != nil {
		return
	}
	h := decodeHeader(line)
	h.Alloc = false
	encodeHeader(line, h)
	s.space.WriteAt(base, line)
}

// rewriteHome updates the home field inside a stored object header. The
// caller holds st.rw exclusively.
func (s *Store) rewriteHome(st *blockState, slot int, home uint64) {
	base := st.SlotAddr(slot)
	line := make([]byte, headerBytes)
	if err := s.space.ReadAt(base, line); err != nil {
		return
	}
	h := decodeHeader(line)
	h.Home = home
	encodeHeader(line, h)
	s.space.WriteAt(base, line)
}

// releaseAlias retires a dissolved block address whose last homed object
// is gone: the alias mapping is unmapped, its NIC region deregistered, and
// the address returned to the reuse pool.
func (s *Store) releaseAlias(vaddr uint64, pages int) {
	sh := s.shard(vaddr)
	sh.mu.Lock()
	st := sh.aliases[vaddr]
	delete(sh.aliases, vaddr)
	region := sh.regions[vaddr]
	delete(sh.regions, vaddr)
	sh.mu.Unlock()
	if st != nil {
		st.removeAlias(vaddr)
	}
	s.stats.vaddrsReused.Add(1)
	cmVaddrsReused.Inc()
	if region != nil {
		s.nic.Deregister(region)
	}
	s.proc.RetireVaddr(vaddr, pages)
}

// PendingVaddrs reports dissolved block addresses still awaiting release.
func (s *Store) PendingVaddrs() int { return s.vt.pendingReuse() }

// Fragmentation exposes the per-class policy input (§3.1.3).
func (s *Store) Fragmentation(class int) alloc.FragStats {
	return s.proc.Fragmentation(class)
}

// NeedsCompaction lists classes whose fragmentation ratio exceeds the
// configured threshold (§3.1.3).
func (s *Store) NeedsCompaction() []int {
	var out []int
	for c := range s.cfg.Classes {
		f := s.proc.Fragmentation(c)
		if f.GrantedBytes > 0 && f.Ratio > s.cfg.FragThreshold {
			out = append(out, c)
		}
	}
	return out
}

// blockState carries a sync.RWMutex for the RPC read/write path; defined
// here to keep meta.go focused on metadata.
func (st *blockState) isCompacting() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.compacting
}

func (st *blockState) setCompacting(v bool) {
	st.mu.Lock()
	st.compacting = v
	st.mu.Unlock()
}

// markDissolved flags a merged-away block. Called while compacting is still
// set, so concurrent operations cannot observe neither flag.
func (st *blockState) markDissolved() {
	st.mu.Lock()
	st.dissolved = true
	st.mu.Unlock()
}

// markDead flags a block released back to the process-wide allocator.
func (st *blockState) markDead() {
	st.mu.Lock()
	st.dead = true
	st.mu.Unlock()
}

// gone classifies a stale blockState reference: err is ErrCompacting when
// the block is compaction-locked or was dissolved since resolve (the caller
// retries and re-resolves to the merge destination), ErrNotFound when the
// block was released entirely (every object it held was freed). The caller
// holds st.rw in either mode, which orders this check against the merge
// lock phase and against Free's release path.
func (st *blockState) gone() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case st.dead:
		return ErrNotFound
	case st.compacting, st.dissolved:
		return ErrCompacting
	}
	return nil
}
