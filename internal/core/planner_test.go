package core

import (
	"reflect"
	"testing"
)

// Pure planner tests: planMerges is exercised on hand-built snapshots with
// no Store, allocator, or locks behind them.

func idMergeSet(ids ...uint16) *mergeSet {
	m := &mergeSet{used: len(ids), ids: make(map[uint16]bool, len(ids))}
	for _, id := range ids {
		m.ids[id] = true
	}
	return m
}

func slotMergeSet(slots ...int) *mergeSet {
	m := &mergeSet{used: len(slots), slots: make(map[int]bool, len(slots))}
	for _, idx := range slots {
		m.slots[idx] = true
	}
	return m
}

// bigIDSpace makes §3.4 pruning a no-op so tests isolate other behavior.
const bigIDSpace = 1 << 16

func TestPlanMergesDeterministic(t *testing.T) {
	// Mixed used counts including ties, so both the utilization sort and
	// its input-position tie-break are exercised.
	sets := []*mergeSet{
		idMergeSet(1, 2, 3),
		idMergeSet(10),
		idMergeSet(20, 21),
		idMergeSet(30),
		idMergeSet(40, 41),
		idMergeSet(50, 51, 52),
	}
	cfg := planConfig{slots: 8, idSpace: bigIDSpace, maxAttempts: 8}
	first, att, conf := planMerges(sets, cfg)
	if len(first) == 0 {
		t.Fatal("nothing planned from mergeable snapshots")
	}
	for i := 0; i < 10; i++ {
		pairs, a, c := planMerges(sets, cfg)
		if !reflect.DeepEqual(pairs, first) || a != att || c != conf {
			t.Fatalf("plan diverged on rerun %d: %v vs %v", i, pairs, first)
		}
	}
}

func TestPlanMergesDoesNotMutateInput(t *testing.T) {
	a, b := idMergeSet(1), idMergeSet(2)
	planMerges([]*mergeSet{a, b}, planConfig{slots: 4, idSpace: bigIDSpace, maxAttempts: 8})
	if a.used != 1 || b.used != 1 || len(a.ids) != 1 || len(b.ids) != 1 {
		t.Fatalf("planner mutated its input snapshots: %+v %+v", a, b)
	}
}

func TestPlanMergesLeastUtilizedSourceFullestDestination(t *testing.T) {
	// used: 3, 1, 2; capacity 4 admits exactly one merge. The emptiest set
	// must be the source and the fullest fitting set the destination.
	sets := []*mergeSet{idMergeSet(1, 2, 3), idMergeSet(10), idMergeSet(20, 21)}
	pairs, _, _ := planMerges(sets, planConfig{slots: 4, idSpace: bigIDSpace, maxAttempts: 8})
	if len(pairs) != 1 || pairs[0] != [2]int{1, 0} {
		t.Fatalf("pairs = %v, want [[1 0]] (least-utilized src, fullest dst)", pairs)
	}
}

func TestPlanMergesCapacityPrecheck(t *testing.T) {
	// 3 + 2 > 4: overfull pairings are skipped before any attempt is spent.
	sets := []*mergeSet{idMergeSet(1, 2, 3), idMergeSet(10, 11)}
	pairs, attempts, conflicts := planMerges(sets, planConfig{slots: 4, idSpace: bigIDSpace, maxAttempts: 8})
	if len(pairs) != 0 {
		t.Fatalf("planned an overfull merge: %v", pairs)
	}
	if attempts != 0 || conflicts != 0 {
		t.Fatalf("capacity skip burned attempts: attempts=%d conflicts=%d", attempts, conflicts)
	}
	// Exactly at capacity is allowed.
	pairs, _, _ = planMerges(sets, planConfig{slots: 5, idSpace: bigIDSpace, maxAttempts: 8})
	if len(pairs) != 1 {
		t.Fatalf("exact-capacity merge not planned: %v", pairs)
	}
}

func TestPlanMergesProbabilityPruning(t *testing.T) {
	// 10+10 objects into a 16-wide ID space: §3.4 no-collision probability
	// is zero (pigeonhole), so the pairing must be pruned without an
	// attempt — even though these particular sets happen to be disjoint.
	a := idMergeSet(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	b := idMergeSet(100, 101, 102, 103, 104, 105, 106, 107, 108, 109)
	sets := []*mergeSet{a, b}
	pairs, attempts, _ := planMerges(sets, planConfig{slots: 32, idSpace: 16, maxAttempts: 8})
	if len(pairs) != 0 || attempts != 0 {
		t.Fatalf("hopeless pairing not pruned: pairs=%v attempts=%d", pairs, attempts)
	}
	// Same snapshots with a real ID space merge fine: pruning is the only
	// thing that stopped them.
	pairs, attempts, _ = planMerges(sets, planConfig{slots: 32, idSpace: bigIDSpace, maxAttempts: 8})
	if len(pairs) != 1 || attempts != 1 {
		t.Fatalf("control merge failed: pairs=%v attempts=%d", pairs, attempts)
	}
}

func TestPlanMergesCountsConflicts(t *testing.T) {
	// A and C are disjoint; B collides with everything via id 2.
	sets := []*mergeSet{idMergeSet(1, 2), idMergeSet(2, 3), idMergeSet(5, 6)}
	pairs, attempts, conflicts := planMerges(sets, planConfig{slots: 8, idSpace: bigIDSpace, maxAttempts: 8})
	if !reflect.DeepEqual(pairs, [][2]int{{0, 2}}) {
		t.Fatalf("pairs = %v, want [[0 2]]", pairs)
	}
	if attempts != 2 || conflicts != 1 {
		t.Fatalf("attempts=%d conflicts=%d, want 2/1", attempts, conflicts)
	}
}

func TestPlanMergesRespectsMaxBlocks(t *testing.T) {
	sets := []*mergeSet{idMergeSet(1), idMergeSet(2), idMergeSet(3), idMergeSet(4)}
	pairs, _, _ := planMerges(sets, planConfig{slots: 16, idSpace: bigIDSpace, maxBlocks: 1, maxAttempts: 8})
	if len(pairs) != 1 {
		t.Fatalf("budget 1 produced %d pairs", len(pairs))
	}
}

func TestPlanMergesChainsIntoDestination(t *testing.T) {
	// Capacity 3 lets two singleton sources chain into the same
	// destination; the second pairing must see the union of the first.
	sets := []*mergeSet{idMergeSet(1), idMergeSet(2), idMergeSet(3)}
	pairs, _, _ := planMerges(sets, planConfig{slots: 3, idSpace: bigIDSpace, maxAttempts: 8})
	if !reflect.DeepEqual(pairs, [][2]int{{0, 2}, {1, 2}}) {
		t.Fatalf("pairs = %v, want chained [[0 2] [1 2]]", pairs)
	}
	// A colliding chained source must be rejected against the union: D
	// carries the id A already moved into C.
	sets = []*mergeSet{idMergeSet(1), idMergeSet(1), idMergeSet(3)}
	pairs, _, conflicts := planMerges(sets, planConfig{slots: 3, idSpace: bigIDSpace, maxAttempts: 8})
	if !reflect.DeepEqual(pairs, [][2]int{{0, 2}}) || conflicts != 1 {
		t.Fatalf("union not respected: pairs=%v conflicts=%d", pairs, conflicts)
	}
}

func TestPlanMergesOffsetFamily(t *testing.T) {
	// Offset strategies (Mesh/CoRM-0): disjoint offsets merge, overlapping
	// ones conflict. The ID space equals the slot count.
	disjoint := []*mergeSet{slotMergeSet(0), slotMergeSet(1)}
	pairs, _, _ := planMerges(disjoint, planConfig{slots: 64, idSpace: 64, maxAttempts: 8})
	if len(pairs) != 1 {
		t.Fatalf("disjoint offsets not planned: %v", pairs)
	}
	overlap := []*mergeSet{slotMergeSet(0), slotMergeSet(0)}
	pairs, _, conflicts := planMerges(overlap, planConfig{slots: 64, idSpace: 64, maxAttempts: 8})
	if len(pairs) != 0 || conflicts != 1 {
		t.Fatalf("overlapping offsets planned: pairs=%v conflicts=%d", pairs, conflicts)
	}
}

func TestPlanClassIsReadOnly(t *testing.T) {
	s := testStore(t, nil)
	sparseBlocks(t, s, 64, 6, 1)
	class := s.Allocator().Config().ClassFor(64)

	blocksBefore := s.Allocator().Blocks()
	plan := s.PlanClass(CompactOptions{Class: class})
	if len(plan.Pairs) == 0 {
		t.Fatalf("no pairs planned over sparse blocks: %+v", plan)
	}
	plan2 := s.PlanClass(CompactOptions{Class: class})
	if !reflect.DeepEqual(plan, plan2) {
		t.Fatal("PlanClass is not deterministic over unchanged state")
	}
	if got := s.Allocator().Blocks(); got != blocksBefore {
		t.Fatalf("planning changed block count %d -> %d", blocksBefore, got)
	}
	// The store still compacts normally afterwards: planning detached
	// nothing from the worker threads.
	r := s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.BlocksFreed == 0 {
		t.Fatalf("compaction after planning freed nothing: %+v", r)
	}
}

// TestExecutorRejectsStalePlan is the plan/execute race: an object is
// allocated between planning and execution, invalidating the pair's
// snapshots. The executor must skip the pair — not corrupt either block.
func TestExecutorRejectsStalePlan(t *testing.T) {
	s := testStore(t, func(c *Config) { c.Strategy = StrategyMesh })
	size := 64
	per := s.Allocator().Config().SlotsPerBlock(size)
	class := s.Allocator().Config().ClassFor(size)

	// Block A keeps slot 0, block B keeps slot 1: disjoint, mergeable.
	var all []Addr
	for i := 0; i < 2*per; i++ {
		r, err := s.AllocOn(0, size)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, r.Addr)
	}
	live := map[*Addr][]byte{}
	for i := range all {
		block, slot := i/per, i%per
		if (block == 0 && slot == 0) || (block == 1 && slot == 1) {
			payload := fill(size, byte(i))
			if err := s.Write(&all[i], payload); err != nil {
				t.Fatal(err)
			}
			live[&all[i]] = payload
			continue
		}
		if err := s.Free(&all[i]); err != nil {
			t.Fatal(err)
		}
	}

	plan := s.PlanClass(CompactOptions{Class: class, MaxOccupancy: Occ(1.0)})
	if len(plan.Pairs) != 1 {
		t.Fatalf("planned %d pairs, want 1", len(plan.Pairs))
	}
	a, b := plan.Pairs[0].Src, plan.Pairs[0].Dst

	// The race: a fresh allocation lands in one of the planned blocks.
	// First-free-slot allocation means it takes A's slot 1 or B's slot 0 —
	// either way the blocks now collide on an offset and the plan is stale.
	res, err := s.AllocOn(0, size)
	if err != nil {
		t.Fatal(err)
	}
	stale := res.Addr
	payload := fill(size, 0xEE)
	if err := s.Write(&stale, payload); err != nil {
		t.Fatal(err)
	}
	live[&stale] = payload
	if s.Compatible(a, b) {
		t.Fatal("new allocation did not land in a planned block — race not reproduced")
	}

	// Execute the stale plan the way CompactClass would: blocks collected
	// onto the leader first.
	collected := s.thread[0].CollectBelow(class, 1.0, 0)
	opts := CompactOptions{Class: class, Leader: 0}.withDefaults()
	var r CompactReport
	merged := s.executePlan(plan, &opts, &r)
	s.returnBlocks(0, collected)

	if len(merged) != 0 || r.Merges != 0 || r.BlocksFreed != 0 {
		t.Fatalf("stale pair executed anyway: %+v", r)
	}
	if r.RevalRejects != 1 {
		t.Fatalf("RevalRejects = %d, want 1", r.RevalRejects)
	}
	// Nothing corrupted: every object, including the racing allocation,
	// reads back byte-identical, and the store still works.
	for addr, want := range live {
		buf := make([]byte, size)
		if _, err := s.Read(addr, buf); err != nil {
			t.Fatalf("read after rejected execution: %v", err)
		}
		if !reflect.DeepEqual(buf, want) {
			t.Fatal("payload corrupted by rejected execution")
		}
	}
}

// TestCompactOptionsExplicitZeroOccupancy: Occ(0) means "only occupancy-zero
// blocks" and must not be rewritten to the 0.9 default. Collection skips
// empty blocks, so an Occ(0) run collects nothing — while a defaulted run
// over the same store collects and merges.
func TestCompactOptionsExplicitZeroOccupancy(t *testing.T) {
	s := testStore(t, nil)
	sparseBlocks(t, s, 64, 6, 1)
	class := s.Allocator().Config().ClassFor(64)

	r := s.CompactClass(CompactOptions{Class: class, Leader: 0, MaxOccupancy: Occ(0)})
	if r.Collected != 0 || r.BlocksFreed != 0 {
		t.Fatalf("Occ(0) still collected blocks: %+v", r)
	}
	r = s.CompactClass(CompactOptions{Class: class, Leader: 0})
	if r.Collected == 0 || r.BlocksFreed == 0 {
		t.Fatalf("defaulted occupancy collected nothing: %+v", r)
	}
}
