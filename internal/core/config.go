package core

import (
	"fmt"

	"corm/internal/alloc"
	"corm/internal/timing"
)

// Strategy selects the compaction algorithm (§3.1.2, §4.4).
type Strategy int

const (
	// StrategyNone disables compaction (the FaRM baseline).
	StrategyNone Strategy = iota
	// StrategyCoRM uses random block-local object IDs: blocks merge when
	// their ID sets are disjoint; offset conflicts are resolved by moving
	// objects (the paper's contribution).
	StrategyCoRM
	// StrategyCoRM0 is CoRM with IDs disabled: the merge condition is
	// offset disjointness (as Mesh), but home-block tracking still enables
	// virtual address reuse. Per-object overhead is the 28-bit home.
	StrategyCoRM0
	// StrategyMesh is the Mesh baseline: offset-conflict condition, no
	// object metadata, no virtual address reuse.
	StrategyMesh
	// StrategyHybrid uses CoRM for classes whose block capacity fits the
	// ID space and CoRM-0 for the rest (§4.4.1).
	StrategyHybrid
)

func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "none"
	case StrategyCoRM:
		return "corm"
	case StrategyCoRM0:
		return "corm-0"
	case StrategyMesh:
		return "mesh"
	case StrategyHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// RemapStrategy selects how RDMA access is restored after page remapping
// (§3.5 / Fig 8).
type RemapStrategy int

const (
	// RemapRereg re-registers the region (ibv_rereg_mr): works on any NIC
	// but breaks QPs that access the region during the window.
	RemapRereg RemapStrategy = iota
	// RemapODP relies on on-demand paging: the first access after remap
	// pays the ODP fault.
	RemapODP
	// RemapODPPrefetch additionally prefetches translations with
	// ibv_advise_mr — CoRM's default.
	RemapODPPrefetch
)

func (r RemapStrategy) String() string {
	switch r {
	case RemapRereg:
		return "rereg"
	case RemapODP:
		return "odp"
	case RemapODPPrefetch:
		return "odp+prefetch"
	}
	return fmt.Sprintf("remap(%d)", int(r))
}

// ConsistencyMode selects how one-sided readers validate objects
// (§3.2.3, §4.2.1).
type ConsistencyMode int

const (
	// ConsistencyVersions is FaRM's scheme (CoRM's default): a version
	// byte in the first byte of every cacheline; readers check that all
	// lines carry the same version. Requires cacheline-aligned slots.
	ConsistencyVersions ConsistencyMode = iota
	// ConsistencyChecksum stores a CRC-32 of (payload, version) after the
	// record — the alternative the paper suggests for large records:
	// denser layout, but readers hash the payload.
	ConsistencyChecksum
)

func (c ConsistencyMode) String() string {
	if c == ConsistencyChecksum {
		return "checksum"
	}
	return "versions"
}

// CorrectionMode selects the server-side pointer-correction approach for
// RPC calls (§3.2.1 / Fig 6).
type CorrectionMode int

const (
	// CorrectMessaging forwards the request to the thread owning the
	// block, which answers from its ID→offset metadata.
	CorrectMessaging CorrectionMode = iota
	// CorrectScan lets the serving thread scan the block itself.
	CorrectScan
)

func (c CorrectionMode) String() string {
	if c == CorrectScan {
		return "scan"
	}
	return "messaging"
}

// Config parameterizes a Store.
type Config struct {
	// Workers is the number of worker threads (8 in the paper's setup).
	Workers int
	// BlockBytes is the block size (4 KiB default; 1 MiB in §4.4).
	BlockBytes int
	// Classes is the size-class list; defaults to alloc.DefaultClasses.
	Classes []int
	// IDBits is the object identifier width (16 by default; 0 only with
	// non-ID strategies).
	IDBits int
	// Strategy is the compaction strategy.
	Strategy Strategy
	// Correction is the RPC pointer-correction mode.
	Correction CorrectionMode
	// Remap is the RDMA remapping strategy.
	Remap RemapStrategy
	// DataBacked stores real object bytes (required for reads/writes);
	// accounting-only mode runs the large §4.4 traces cheaply.
	DataBacked bool
	// Consistency selects the one-sided read validation scheme.
	Consistency ConsistencyMode
	// FragThreshold is the granted/used ratio above which the policy
	// triggers compaction for a class (§3.1.3).
	FragThreshold float64
	// Canaries paints guard bytes into each slot's slack tail at alloc
	// and verifies them on read, free, and compaction copy (canary.go).
	// Off by default: the verify loop touches every slack byte on the
	// read path, which benchmarks should not pay unless asked to.
	Canaries bool
	// Model supplies the latency constants for cost accounting.
	Model timing.Model
	// Seed feeds the store's deterministic RNG (object IDs).
	Seed int64
	// MemBudgetBytes caps resident frames (0 = unlimited). When set, cold
	// blocks are spilled to the tier selected by TierSpec and faulted back
	// in on access, letting the store oversubscribe physical memory.
	MemBudgetBytes int64
	// TierSpec selects where evicted blocks go: "compressed" (in-memory,
	// deflate), "disk" or "disk:<dir>", or "off" to disable tiering even
	// with a budget set. Empty with a budget defaults to "compressed".
	TierSpec string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 4096
	}
	if len(c.Classes) == 0 {
		c.Classes = alloc.DefaultClasses
	}
	if c.IDBits == 0 && c.usesIDs() {
		c.IDBits = 16
	}
	if c.FragThreshold == 0 {
		c.FragThreshold = 2.0
	}
	if c.Model.NIC.Name == "" {
		c.Model = timing.Default()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MemBudgetBytes > 0 && c.TierSpec == "" {
		c.TierSpec = "compressed"
	}
	return c
}

func (c Config) usesIDs() bool {
	return c.Strategy == StrategyCoRM || c.Strategy == StrategyHybrid
}

func (c Config) validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("core: need at least one worker")
	}
	if c.IDBits < 0 || c.IDBits > 16 {
		return fmt.Errorf("core: IDBits %d out of range [0,16]", c.IDBits)
	}
	if c.usesIDs() && c.IDBits == 0 {
		return fmt.Errorf("core: strategy %v requires IDBits > 0", c.Strategy)
	}
	if c.Remap != RemapRereg && !c.Model.NIC.HasODP {
		return fmt.Errorf("core: remap strategy %v requires an ODP-capable NIC (%s has none)",
			c.Remap, c.Model.NIC.Name)
	}
	if c.MemBudgetBytes > 0 && c.TierSpec != "off" && c.Remap == RemapRereg {
		// Evicted pages are recovered through the NIC's ODP fault path;
		// rereg has no fault hook, so a one-sided access to an evicted
		// block would break the QP instead of faulting the block in.
		return fmt.Errorf("core: memory budget requires an ODP remap strategy, not %v", c.Remap)
	}
	if c.MemBudgetBytes < 0 {
		return fmt.Errorf("core: negative memory budget %d", c.MemBudgetBytes)
	}
	return nil
}

// modelOverheadBytes is the per-object metadata overhead the paper accounts
// for (Table 3): a 28-bit home-block address for any strategy that reuses
// virtual addresses, plus the object ID bits.
func (c Config) modelOverheadBytes() int {
	switch c.Strategy {
	case StrategyMesh, StrategyNone:
		return 0
	case StrategyCoRM0:
		return (28 + 7) / 8
	default:
		return (28 + c.IDBits + 7) / 8
	}
}

// allocConfig derives the allocator configuration. In data mode the stride
// comes from the versioned cacheline layout; in accounting mode it is the
// payload plus the paper's model overhead, 8-byte aligned.
func (c Config) allocConfig() alloc.Config {
	ac := alloc.Config{
		BlockBytes: c.BlockBytes,
		Classes:    c.Classes,
	}
	if c.DataBacked {
		if c.Consistency == ConsistencyChecksum {
			ac.StrideFunc = checksumStride
		} else {
			ac.CachelineAlign = true
			ac.StrideFunc = dataStride
		}
		return ac
	}
	round8 := func(n int) int { return (n + 7) / 8 * 8 }
	base := c.modelOverheadBytes()
	ac.StrideFunc = func(classSize int) int {
		ov := base
		if c.Strategy == StrategyHybrid {
			// Classes that fall back to CoRM-0 pay only the 28-bit home
			// address, not the object ID (§4.4.1).
			slots := c.BlockBytes / round8(classSize+ov)
			if slots > 1<<c.IDBits {
				ov = (28 + 7) / 8
			}
		}
		return round8(classSize + ov)
	}
	return ac
}

// classCompactable reports whether a class can be compacted under the
// configured strategy, and with which effective strategy (hybrid resolves
// per class, §4.4.1).
func (c Config) classStrategy(slotsPerBlock int) Strategy {
	switch c.Strategy {
	case StrategyCoRM:
		if slotsPerBlock > 1<<c.IDBits {
			return StrategyNone // vanilla CoRM skips oversized classes
		}
		return StrategyCoRM
	case StrategyHybrid:
		if slotsPerBlock > 1<<c.IDBits {
			return StrategyCoRM0
		}
		return StrategyCoRM
	default:
		return c.Strategy
	}
}
