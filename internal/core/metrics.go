package core

import "corm/internal/metrics"

// Core-layer metrics. These mirror the store's internal atomic counters
// into the process-global registry (each site pays one extra atomic add)
// and add the lifecycle gauges the counters cannot express: live objects,
// live blocks, and slot capacity, whose ratio is the cluster-visible
// occupancy the compaction policy (§3.1.3) acts on. Gauges use deltas
// (Add/Dec), so multiple stores in one process — the test and bench
// topology — sum correctly.
var (
	cmAllocs = metrics.Default().Counter("corm_core_allocs_total",
		"objects allocated")
	cmFrees = metrics.Default().Counter("corm_core_frees_total",
		"objects freed")
	cmReads = metrics.Default().Counter("corm_core_reads_total",
		"RPC-path object reads")
	cmWrites = metrics.Default().Counter("corm_core_writes_total",
		"RPC-path object writes")
	cmCorrections = metrics.Default().Counter("corm_core_ptr_corrections_total",
		"pointer corrections performed (§3.2)")
	cmCorrectionMisses = metrics.Default().Counter("corm_core_ptr_correction_misses_total",
		"pointer corrections that found nothing (stale pointer)")
	cmReleases = metrics.Default().Counter("corm_core_ptr_releases_total",
		"ReleasePtr calls (§3.3)")
	cmVaddrsReused = metrics.Default().Counter("corm_core_vaddrs_reused_total",
		"dissolved block addresses returned to the reuse pool")

	cmCASOps = metrics.Default().Counter("corm_core_cas_total",
		"pushdown compare-and-swap operations")
	cmFetchAdds = metrics.Default().Counter("corm_core_fetchadd_total",
		"pushdown fetch-and-add operations")
	cmCondWrites = metrics.Default().Counter("corm_core_condwrite_total",
		"pushdown conditional writes")
	cmPushdownConflicts = metrics.Default().Counter("corm_core_pushdown_conflicts_total",
		"pushdown conditions that did not hold (CAS/CondWrite)")
	cmScans = metrics.Default().Counter("corm_core_scans_total",
		"pushdown filtered scans started")
	cmScanRecords = metrics.Default().Counter("corm_core_scan_records_total",
		"live records evaluated by filtered scans")
	cmScanMatches = metrics.Default().Counter("corm_core_scan_matches_total",
		"records matched by filtered scan predicates")

	cmCompactRuns = metrics.Default().Counter("corm_compaction_runs_total",
		"CompactClass invocations")
	cmCompactAttempts = metrics.Default().Counter("corm_compaction_pair_attempts_total",
		"merge pairings whose ID sets were compared")
	cmCompactIDConflicts = metrics.Default().Counter("corm_compaction_id_conflicts_total",
		"merge pairings aborted on an object-ID collision (§3.1.2)")
	cmCompactMerges = metrics.Default().Counter("corm_compaction_merges_total",
		"block merges executed")
	cmCompactBlocksFreed = metrics.Default().Counter("corm_compaction_blocks_freed_total",
		"blocks freed by compaction")
	cmCompactObjectsMoved = metrics.Default().Counter("corm_compaction_objects_moved_total",
		"objects relocated by merges (indirect pointers created)")
	cmCandidateOccupancy = metrics.Default().Histogram("corm_compaction_candidate_occupancy_pct",
		"percent occupancy of blocks collected for compaction")
	cmCompactPlannedPairs = metrics.Default().Counter("corm_compaction_planned_pairs_total",
		"merge pairs emitted by the planner (compare with merges for plan decay)")
	cmCompactRevalRejects = metrics.Default().Counter("corm_compaction_reval_rejects_total",
		"planned pairs skipped by executor revalidation (snapshot went stale)")

	cmCompactorCycles = metrics.Default().Counter("corm_compactor_cycles_total",
		"background compactor cycles that ran a policy pass")
	cmCompactorShed = metrics.Default().Counter("corm_compactor_shed_total",
		"compactor cycles skipped by load shedding (op rate above threshold)")
	cmCompactorCycleNs = metrics.Default().Histogram("corm_compactor_cycle_ns",
		"wall-clock nanoseconds per background compaction cycle")
	cmCompactorState = metrics.Default().Gauge("corm_compactor_state",
		"background compactor state: 0 stopped, 1 active, 2 idle backoff, 3 shedding (sums across stores)")

	cmCanaryViolations = metrics.Default().Counter("corm_core_canary_violations_total",
		"slot guard-byte violations detected (memory-safety canaries)")

	cmEvictions = metrics.Default().Counter("corm_tier_evictions_total",
		"blocks spilled out to the tier")
	cmFaultIns = metrics.Default().Counter("corm_tier_faultins_total",
		"blocks faulted back in from the tier")
	cmFaultInNs = metrics.Default().Histogram("corm_tier_faultin_ns",
		"wall-clock nanoseconds per block fault-in")
	cmTierReclaims = metrics.Default().Counter("corm_tier_reclaim_runs_total",
		"budget-pressure reclaim passes (Phys allocations over budget)")
	cmTierPrefetches = metrics.Default().Counter("corm_tier_prefetches_total",
		"MTT prefetches issued after hot-block fault-ins (ibv_advise_mr)")
	cmEvictedBlocks = metrics.Default().Gauge("corm_tier_evicted_blocks",
		"blocks currently spilled to the tier")

	cmObjectsLive = metrics.Default().Gauge("corm_core_objects_live",
		"currently allocated objects")
	cmBlocksLive = metrics.Default().Gauge("corm_core_blocks_live",
		"currently mapped blocks")
	cmSlotsCapacity = metrics.Default().Gauge("corm_core_slots_capacity",
		"total object slots across mapped blocks (objects_live / this = occupancy)")
	cmBytesLive = metrics.Default().Gauge("corm_core_block_bytes_live",
		"bytes of mapped block memory")
)
