package core

import (
	"testing"
	"testing/quick"
)

func TestAddrPackUnpack(t *testing.T) {
	a := MakeAddr(0x1234_5678_9abc, 0xBEEF, 0x8000_0042, 7)
	if a.VAddr() != 0x1234_5678_9abc {
		t.Errorf("vaddr = %#x", a.VAddr())
	}
	if a.ID() != 0xBEEF {
		t.Errorf("id = %#x", a.ID())
	}
	if a.RKey() != 0x8000_0042 {
		t.Errorf("rkey = %#x", a.RKey())
	}
	if a.Class() != 7 {
		t.Errorf("class = %d", a.Class())
	}
	if a.Flags() != 0 {
		t.Errorf("flags = %#x", a.Flags())
	}
}

func TestAddrQuickRoundtrip(t *testing.T) {
	f := func(vaddr uint64, id uint16, rkey uint32, class uint8) bool {
		vaddr &= vaddrMask
		a := MakeAddr(vaddr, id, rkey, class)
		return a.VAddr() == vaddr && a.ID() == id && a.RKey() == rkey && a.Class() == class
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrSetVAddrPreservesRest(t *testing.T) {
	f := func(vaddr, v2 uint64, id uint16, rkey uint32, class uint8) bool {
		vaddr &= vaddrMask
		v2 &= vaddrMask
		a := MakeAddr(vaddr, id, rkey, class)
		a.SetVAddr(v2)
		return a.VAddr() == v2 && a.ID() == id && a.RKey() == rkey && a.Class() == class
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrFlags(t *testing.T) {
	a := MakeAddr(0x1000, 1, 2, 3)
	if a.HasFlag(FlagIndirectObserved) {
		t.Fatal("fresh addr has flag set")
	}
	a.SetFlag(FlagIndirectObserved)
	if !a.HasFlag(FlagIndirectObserved) {
		t.Fatal("flag not set")
	}
	if a.VAddr() != 0x1000 || a.ID() != 1 || a.RKey() != 2 || a.Class() != 3 {
		t.Fatal("flag corrupted other fields")
	}
	a.ClearFlag(FlagIndirectObserved)
	if a.HasFlag(FlagIndirectObserved) {
		t.Fatal("flag not cleared")
	}
}

func TestAddrOversizedVaddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("49-bit vaddr accepted")
		}
	}()
	MakeAddr(1<<48, 0, 0, 0)
}

func TestAddrZero(t *testing.T) {
	var a Addr
	if !a.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	if MakeAddr(0x1000, 0, 0, 0).IsZero() {
		t.Fatal("valid addr reported zero")
	}
}
