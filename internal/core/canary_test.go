package core

import (
	"errors"
	"testing"
)

func canaryStore(t *testing.T, consistency ConsistencyMode) *Store {
	t.Helper()
	s, err := NewStore(Config{
		Workers:     2,
		Strategy:    StrategyCoRM,
		DataBacked:  true,
		Canaries:    true,
		Consistency: consistency,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

// TestCanaryStartLayout pins the guard-region math against the slot layout:
// the guard tail must start after the final payload byte and never overlap a
// version-tag byte or the checksum.
func TestCanaryStartLayout(t *testing.T) {
	cases := []struct {
		mode      ConsistencyMode
		classSize int
		wantStart int
	}{
		// versions: line0 holds 48 payload bytes after the 16B header.
		{ConsistencyVersions, 16, 32},   // stride 64
		{ConsistencyVersions, 48, 64},   // exactly fills line 0: stride 64, no guard
		{ConsistencyVersions, 64, 81},   // 2 lines: 48 + 16; guard from 64+1+16
		{ConsistencyVersions, 111, 128}, // exactly fills 2 lines: no guard
		{ConsistencyVersions, 256, 243}, // 4 lines: 48+63+63+82? no: 48+63*3=237 >= 256? 48+63+63+63=237 < 256 -> 5 lines
		// checksum: header + payload + CRC, then 8-byte padding.
		{ConsistencyChecksum, 16, 36}, // stride 40, guard = 4 pad bytes
		{ConsistencyChecksum, 20, 40}, // stride 40, no guard
	}
	for _, c := range cases {
		cfg := Config{Consistency: c.mode}
		var stride int
		if c.mode == ConsistencyChecksum {
			stride = checksumStride(c.classSize)
		} else {
			stride = dataStride(c.classSize)
		}
		got := cfg.canaryStart(c.classSize, stride)
		if got > stride {
			t.Fatalf("class %d (%v): canaryStart %d beyond stride %d", c.classSize, c.mode, got, stride)
		}
		if c.classSize == 256 {
			// 256 = 48 + 63*3 + 19: five lines, guard starts at 4*64+1+19.
			if want := 4*cacheline + 1 + 19; got != want {
				t.Fatalf("class 256: canaryStart %d, want %d", got, want)
			}
			continue
		}
		if got != c.wantStart {
			t.Fatalf("class %d (%v): canaryStart %d, want %d", c.classSize, c.mode, got, c.wantStart)
		}
	}
}

// TestCanaryDetectsInjectedOverflow is the satellite's core claim: a write
// past an object's payload into the slot's guard tail is detected on the
// next read, counted, and surfaced as ErrCorruption.
func TestCanaryDetectsInjectedOverflow(t *testing.T) {
	for _, mode := range []ConsistencyMode{ConsistencyVersions, ConsistencyChecksum} {
		t.Run(mode.String(), func(t *testing.T) {
			s := canaryStore(t, mode)
			res, err := s.AllocOn(0, 64)
			if err != nil {
				t.Fatalf("AllocOn: %v", err)
			}
			addr := res.Addr
			if s.CanaryBytes(int(addr.Class())) == 0 {
				t.Fatalf("class %d has no guard bytes; pick a size with slack", addr.Class())
			}
			payload := make([]byte, 64)
			for i := range payload {
				payload[i] = byte(i)
			}
			if err := s.Write(&addr, payload); err != nil {
				t.Fatalf("Write: %v", err)
			}
			buf := make([]byte, 256)
			if _, err := s.Read(&addr, buf); err != nil {
				t.Fatalf("clean Read: %v", err)
			}

			if err := s.CorruptSlotTail(&addr); err != nil {
				t.Fatalf("CorruptSlotTail: %v", err)
			}
			if _, err := s.Read(&addr, buf); !errors.Is(err, ErrCorruption) {
				t.Fatalf("Read after overflow: got %v, want ErrCorruption", err)
			}
			if _, err := s.ReadStaged(&addr, make([]byte, s.Stride(int(addr.Class())))); !errors.Is(err, ErrCorruption) {
				t.Fatalf("ReadStaged after overflow: want ErrCorruption")
			}
			if err := s.Free(&addr); !errors.Is(err, ErrCorruption) {
				t.Fatalf("Free after overflow: got %v, want ErrCorruption", err)
			}
			// The free still released the slot despite reporting corruption.
			if err := s.Free(&addr); !errors.Is(err, ErrNotFound) {
				t.Fatalf("second Free: got %v, want ErrNotFound (slot must be released)", err)
			}
			if got := s.CanaryViolations(); got < 3 {
				t.Fatalf("CanaryViolations = %d, want >= 3 (two reads + free)", got)
			}
		})
	}
}

// TestCanarySurvivesWriteAndRead proves the guard tail is invisible to the
// normal object lifecycle: alloc, many writes of varying lengths, reads, and
// frees never trip a violation.
func TestCanarySurvivesWriteAndRead(t *testing.T) {
	s := canaryStore(t, ConsistencyVersions)
	var addrs []Addr
	for i := 0; i < 64; i++ {
		res, err := s.AllocOn(i%2, 100)
		if err != nil {
			t.Fatalf("AllocOn: %v", err)
		}
		addrs = append(addrs, res.Addr)
	}
	buf := make([]byte, 256)
	for round := 0; round < 3; round++ {
		for i := range addrs {
			payload := make([]byte, 1+(i+round*17)%100)
			for j := range payload {
				payload[j] = byte(i + j + round)
			}
			if err := s.Write(&addrs[i], payload); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if _, err := s.Read(&addrs[i], buf); err != nil {
				t.Fatalf("Read: %v", err)
			}
		}
	}
	for i := range addrs {
		if err := s.Free(&addrs[i]); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	if got := s.CanaryViolations(); got != 0 {
		t.Fatalf("CanaryViolations = %d after clean lifecycle, want 0", got)
	}
}

// TestCanarySurvivesCompaction allocates across blocks, frees alternating
// objects to create fragmentation, compacts, and verifies both that the
// copies preserved guard tails and that survivors still read cleanly.
func TestCanarySurvivesCompaction(t *testing.T) {
	s := canaryStore(t, ConsistencyVersions)
	const n = 256
	var addrs []Addr
	payload := make([]byte, 32)
	for i := 0; i < n; i++ {
		res, err := s.AllocOn(0, 32)
		if err != nil {
			t.Fatalf("AllocOn: %v", err)
		}
		for j := range payload {
			payload[j] = byte(i)
		}
		if err := s.Write(&res.Addr, payload); err != nil {
			t.Fatalf("Write: %v", err)
		}
		addrs = append(addrs, res.Addr)
	}
	for i := 0; i < n; i += 2 {
		if err := s.Free(&addrs[i]); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	class := int(addrs[1].Class())
	rep := s.CompactClass(CompactOptions{Class: class})
	if rep.ObjectsCopied == 0 {
		t.Fatal("compaction copied no objects; fragmentation setup broken")
	}
	buf := make([]byte, 64)
	for i := 1; i < n; i += 2 {
		if _, err := s.Read(&addrs[i], buf); err != nil {
			t.Fatalf("Read survivor %d after compaction: %v", i, err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("survivor %d payload corrupted: got %d", i, buf[0])
		}
	}
	if got := s.CanaryViolations(); got != 0 {
		t.Fatalf("CanaryViolations = %d after compaction, want 0", got)
	}
}

// TestCanaryDisabledByDefault: stores without Config.Canaries neither pay
// for nor report guard checks, and CorruptSlotTail refuses to run.
func TestCanaryDisabledByDefault(t *testing.T) {
	s, err := NewStore(Config{Workers: 1, Strategy: StrategyCoRM, DataBacked: true, Seed: 1})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	res, err := s.AllocOn(0, 64)
	if err != nil {
		t.Fatalf("AllocOn: %v", err)
	}
	if err := s.CorruptSlotTail(&res.Addr); err == nil {
		t.Fatal("CorruptSlotTail should refuse when canaries are disabled")
	}
	if got := s.CanaryViolations(); got != 0 {
		t.Fatalf("CanaryViolations = %d, want 0", got)
	}
}
