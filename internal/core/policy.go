package core

// Compaction policies: the decision layer between the background Compactor
// (compactor.go) and the plan/execute machinery (planner.go, executor.go).
// A policy answers "which classes, with what budget, right now"; it never
// touches blocks itself.

// Policy decides what a compaction cycle should do.
type Policy interface {
	// Cycle returns the compaction runs to perform now, one CompactOptions
	// per class. An empty slice means "nothing to do" — the compactor
	// backs off toward its idle interval.
	Cycle(s *Store) []CompactOptions
	// Observe feeds back the reports of the runs Cycle requested, in the
	// same order, so adaptive policies can learn (e.g. back off classes
	// whose pairings keep colliding).
	Observe(reports []CompactReport)
}

// ThresholdPolicy compacts every class whose fragmentation ratio exceeds
// the store's configured threshold (§3.1.3) — the same watermark
// NeedsCompaction applies, made continuous by the background service.
type ThresholdPolicy struct {
	// MaxBlocks bounds blocks freed per class per cycle (0 = unlimited).
	MaxBlocks int
	// MaxOccupancy overrides the collection filter (nil = 0.9 default).
	MaxOccupancy *float64
}

// Cycle implements Policy.
func (p *ThresholdPolicy) Cycle(s *Store) []CompactOptions {
	var runs []CompactOptions
	for _, class := range s.NeedsCompaction() {
		runs = append(runs, CompactOptions{
			Class:        class,
			MaxBlocks:    p.MaxBlocks,
			MaxOccupancy: p.MaxOccupancy,
		})
	}
	return runs
}

// Observe implements Policy; the threshold policy is stateless.
func (p *ThresholdPolicy) Observe([]CompactReport) {}

// Adaptive-policy tuning knobs.
const (
	// adaptiveBackoffCycles is how many of a class's turns are skipped
	// after a cycle where every pairing attempt collided and nothing
	// merged — §3.4's signal that the ID space is saturated and retrying
	// immediately would burn CPU for zero reclaim.
	adaptiveBackoffCycles = 8
	// adaptiveConflictRate is the conflicts/attempts ratio treated as
	// "pairings are hopeless" when no merges landed.
	adaptiveConflictRate = 0.75
	// coldChurn is the frees-per-alloc ratio below which a class is
	// considered cold enough to compact aggressively (uncapped budget):
	// its blocks strand, they will not refill on their own.
	coldChurn = 0.25
)

// AdaptivePolicy consumes AutoTuner labels (§4.4 auto-labeling): classes
// the tuner marks hot (self-recycling) are skipped, cold classes are
// compacted aggressively with an uncapped budget, and classes whose
// pairing attempts keep colliding back off for a few cycles before being
// retried.
type AdaptivePolicy struct {
	tuner *AutoTuner
	// MaxBlocks is the default per-class budget per cycle (0 = unlimited);
	// cold classes override it to unlimited.
	MaxBlocks int

	backoff map[int]int // class -> cycles left to skip
	pending []int       // classes of the runs awaiting Observe
}

// NewAdaptivePolicy builds a policy over a tuner. The tuner should be
// attached to the store (Store.AttachTuner) so its churn numbers track
// live traffic.
func NewAdaptivePolicy(tuner *AutoTuner, maxBlocks int) *AdaptivePolicy {
	return &AdaptivePolicy{tuner: tuner, MaxBlocks: maxBlocks, backoff: make(map[int]int)}
}

// Cycle implements Policy.
func (p *AdaptivePolicy) Cycle(s *Store) []CompactOptions {
	need := make(map[int]bool)
	for _, class := range s.NeedsCompaction() {
		need[class] = true
	}
	var runs []CompactOptions
	p.pending = p.pending[:0]
	for _, label := range p.tuner.Snapshot() {
		if !need[label.Class] {
			continue
		}
		if p.backoff[label.Class] > 0 {
			p.backoff[label.Class]--
			continue
		}
		// Hot classes self-recycle; the tuner labels them not worth
		// compacting and the policy honors that.
		if !label.Compact {
			continue
		}
		opts := CompactOptions{Class: label.Class, MaxBlocks: p.MaxBlocks}
		if label.Churn <= coldChurn {
			// Cold class: blocks strand permanently, reclaim them all.
			opts.MaxBlocks = 0
		}
		runs = append(runs, opts)
		p.pending = append(p.pending, label.Class)
	}
	return runs
}

// Observe implements Policy: a run whose attempts overwhelmingly collided
// without a single merge puts its class on backoff.
func (p *AdaptivePolicy) Observe(reports []CompactReport) {
	for i, r := range reports {
		if i >= len(p.pending) {
			break
		}
		if r.Merges == 0 && r.Attempts > 0 &&
			float64(r.Conflicts) >= adaptiveConflictRate*float64(r.Attempts) {
			p.backoff[p.pending[i]] = adaptiveBackoffCycles
		}
	}
}
