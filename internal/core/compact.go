package core

import (
	"time"

	"corm/internal/alloc"
)

// Compaction is layered (see DESIGN.md §11):
//
//	planner  (planner.go)   pure pairing over block snapshots -> CompactPlan
//	executor (executor.go)  lock/copy/remap/unlock, per-pair revalidation
//	policy   (policy.go)    when to run, which classes, what budget
//	service  (compactor.go) paced background goroutine driving the policy
//
// CompactClass below is the synchronous composition the tests, experiments
// and the simulator call directly: collect, plan, execute, return
// leftovers. The background Compactor calls it too, through its Policy.

// Phase identifies a stage of the compaction process for time accounting.
// The OnPhase hook receives the modeled duration of each stage; the
// discrete-event simulation advances its clock there, so concurrent
// simulated clients observe locks and unavailability windows with
// realistic timing.
type Phase string

const (
	PhaseCollect Phase = "collect" // block-collection broadcast (§3.1.4)
	PhaseLock    Phase = "lock"    // locking objects under compaction
	PhaseCopy    Phase = "copy"    // object copy + metadata merge
	PhaseMmap    Phase = "mmap"    // virtual remapping of the source block
	PhaseRereg   Phase = "rereg"   // ibv_rereg_mr window (QP-breaking)
	PhaseAdvise  Phase = "advise"  // ibv_advise_mr prefetch
	PhaseUnlock  Phase = "unlock"  // releasing compaction locks
)

// Occ wraps an occupancy fraction for CompactOptions.MaxOccupancy, which
// is a pointer so an explicit 0 ("collect nothing that still holds an
// object") is distinguishable from the unset default.
func Occ(v float64) *float64 { return &v }

// CompactOptions controls one compaction run.
type CompactOptions struct {
	// Class is the size-class index to compact.
	Class int
	// Leader is the worker thread acting as compaction leader.
	Leader int
	// MaxOccupancy bounds which blocks are collected, as a used fraction
	// in [0, 1]. nil applies the 0.9 default (non-full low-occupancy
	// blocks). Use Occ to set an explicit value — including Occ(0), which
	// admits only occupancy-zero blocks (and since collection always skips
	// empty blocks, collects nothing: the "don't touch occupied blocks"
	// request is representable, not silently rewritten to 0.9).
	MaxOccupancy *float64
	// MaxBlocks bounds how many source blocks may be freed (0 = unlimited);
	// §4.3.2 notes an upper bound shortens unavailability windows.
	MaxBlocks int
	// MaxAttempts bounds how many candidate destinations are tried per
	// source block before giving up (default 8). High-collision classes
	// would otherwise degenerate into a quadratic scan that merges nothing.
	MaxAttempts int
	// OnPhase, if set, is invoked with the modeled duration of each stage.
	OnPhase func(Phase, time.Duration)
}

// CompactReport summarizes a compaction run.
type CompactReport struct {
	Class         int // size class the run targeted
	Collected     int // blocks gathered from the worker threads
	Planned       int // merge pairs the planner produced
	Attempts      int // pairings whose conflict sets were compared
	Conflicts     int // pairings rejected on an ID/offset collision (§3.1.2)
	RevalRejects  int // planned pairs skipped by executor revalidation
	Merges        int // merge operations performed
	BlocksFreed   int // physical blocks released
	ObjectsCopied int // objects copied between blocks
	ObjectsMoved  int // objects whose offset changed (pointers went indirect)
	PagesRemapped int
	FreedBytes    int64
	Duration      time.Duration // total modeled time
}

// add accumulates another report (CompactAll, compactor cycles).
func (r *CompactReport) add(o CompactReport) {
	r.Collected += o.Collected
	r.Planned += o.Planned
	r.Attempts += o.Attempts
	r.Conflicts += o.Conflicts
	r.RevalRejects += o.RevalRejects
	r.Merges += o.Merges
	r.BlocksFreed += o.BlocksFreed
	r.ObjectsCopied += o.ObjectsCopied
	r.ObjectsMoved += o.ObjectsMoved
	r.PagesRemapped += o.PagesRemapped
	r.FreedBytes += o.FreedBytes
	r.Duration += o.Duration
}

func (o CompactOptions) withDefaults() CompactOptions {
	if o.MaxOccupancy == nil {
		o.MaxOccupancy = Occ(0.9)
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	return o
}

// phase charges a stage's modeled duration.
func (s *Store) phase(opts *CompactOptions, r *CompactReport, p Phase, d time.Duration) {
	r.Duration += d
	if opts.OnPhase != nil {
		opts.OnPhase(p, d)
	}
}

// CompactClass runs the two-stage compaction of §3.1.4 for one size class:
// the leader collects low-occupancy blocks from all threads, the planner
// pairs conflict-free blocks over their snapshots, and the executor merges
// each revalidated pair, remapping freed source blocks onto their
// destinations so existing pointers (and RDMA access) survive.
func (s *Store) CompactClass(opts CompactOptions) CompactReport {
	opts = opts.withDefaults()
	r := CompactReport{Class: opts.Class}

	classSize := s.cfg.Classes[opts.Class]
	slots := s.proc.Config().SlotsPerBlock(classSize)
	strategy := s.cfg.classStrategy(slots)
	if strategy == StrategyNone {
		return r
	}
	cmCompactRuns.Inc()

	// Stage 1: block collection. Every thread hands over its candidate
	// blocks; the broadcast costs Collection(threads) on the leader.
	var candidates []*alloc.Block
	for _, t := range s.thread {
		candidates = append(candidates, t.CollectBelow(opts.Class, *opts.MaxOccupancy, opts.Leader)...)
	}
	s.phase(&opts, &r, PhaseCollect, s.cfg.Model.CPU.Collection(len(s.thread)))
	r.Collected = len(candidates)
	for _, b := range candidates {
		cmCandidateOccupancy.Observe(int64(b.Used()) * 100 / int64(slots))
	}
	if len(candidates) < 2 {
		s.returnBlocks(opts.Leader, candidates)
		return r
	}

	// Stage 2: plan (pure, over snapshots), then execute with per-pair
	// revalidation. Collected blocks cannot gain objects (no thread owns
	// them) but concurrent frees may still drain them, so the split costs
	// one extra snapshot per planned pair and buys a plan that is
	// inspectable, testable, and safely executable against live traffic.
	plan := s.planClass(opts, strategy, slots, candidates)
	r.Planned = len(plan.Pairs)
	r.Attempts += plan.Attempts
	r.Conflicts += plan.Conflicts
	cmCompactPlannedPairs.Add(int64(len(plan.Pairs)))
	cmCompactAttempts.Add(int64(plan.Attempts))
	cmCompactIDConflicts.Add(int64(plan.Conflicts))

	merged := s.executePlan(plan, &opts, &r)

	// Hand surviving blocks (including merge destinations) to the leader.
	var leftovers []*alloc.Block
	for _, b := range candidates {
		if !merged[b] {
			leftovers = append(leftovers, b)
		}
	}
	s.returnBlocks(opts.Leader, leftovers)

	s.stats.compactions.Add(int64(r.Merges))
	s.stats.blocksFreed.Add(int64(r.BlocksFreed))
	s.stats.objectsMoved.Add(int64(r.ObjectsMoved))
	cmCompactMerges.Add(int64(r.Merges))
	cmCompactBlocksFreed.Add(int64(r.BlocksFreed))
	cmCompactObjectsMoved.Add(int64(r.ObjectsMoved))
	return r
}

// CompactAll runs CompactClass over every class whose fragmentation ratio
// exceeds the threshold (§3.1.3), returning the merged report.
func (s *Store) CompactAll(leader int, onPhase func(Phase, time.Duration)) CompactReport {
	var total CompactReport
	for _, class := range s.NeedsCompaction() {
		r := s.CompactClass(CompactOptions{Class: class, Leader: leader, OnPhase: onPhase})
		total.add(r)
	}
	return total
}

func (s *Store) returnBlocks(leader int, blocks []*alloc.Block) {
	for _, b := range blocks {
		s.thread[leader].AdoptBlock(b)
	}
}

// Compatible implements the strategy-specific conflict check (§3.1.2): ID
// disjointness for CoRM, offset disjointness for Mesh/CoRM-0, plus the
// capacity condition b1+b2 <= s. Exposed for tests and experiments.
func (s *Store) Compatible(a, b *alloc.Block) bool {
	classSize := s.cfg.Classes[a.Class]
	slots := s.proc.Config().SlotsPerBlock(classSize)
	strategy := s.cfg.classStrategy(slots)
	if strategy == StrategyNone || a.Class != b.Class {
		return false
	}
	if a.Used()+b.Used() > slots {
		return false
	}
	return s.snapshotSet(strategy, a).disjoint(s.snapshotSet(strategy, b))
}
