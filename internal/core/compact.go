package core

import (
	"sort"
	"time"

	"corm/internal/alloc"
	"corm/internal/mem"
	"corm/internal/prob"
)

// Phase identifies a stage of the compaction process for time accounting.
// The OnPhase hook receives the modeled duration of each stage; the
// discrete-event simulation advances its clock there, so concurrent
// simulated clients observe locks and unavailability windows with
// realistic timing.
type Phase string

const (
	PhaseCollect Phase = "collect" // block-collection broadcast (§3.1.4)
	PhaseLock    Phase = "lock"    // locking objects under compaction
	PhaseCopy    Phase = "copy"    // object copy + metadata merge
	PhaseMmap    Phase = "mmap"    // virtual remapping of the source block
	PhaseRereg   Phase = "rereg"   // ibv_rereg_mr window (QP-breaking)
	PhaseAdvise  Phase = "advise"  // ibv_advise_mr prefetch
	PhaseUnlock  Phase = "unlock"  // releasing compaction locks
)

// CompactOptions controls one compaction run.
type CompactOptions struct {
	// Class is the size-class index to compact.
	Class int
	// Leader is the worker thread acting as compaction leader.
	Leader int
	// MaxOccupancy bounds which blocks are collected (default 0.9: non-full
	// low-occupancy blocks).
	MaxOccupancy float64
	// MaxBlocks bounds how many source blocks may be freed (0 = unlimited);
	// §4.3.2 notes an upper bound shortens unavailability windows.
	MaxBlocks int
	// MaxAttempts bounds how many candidate destinations are tried per
	// source block before giving up (default 8). High-collision classes
	// would otherwise degenerate into a quadratic scan that merges nothing.
	MaxAttempts int
	// OnPhase, if set, is invoked with the modeled duration of each stage.
	OnPhase func(Phase, time.Duration)
}

// CompactReport summarizes a compaction run.
type CompactReport struct {
	Collected     int // blocks gathered from the worker threads
	Merges        int // merge operations performed
	BlocksFreed   int // physical blocks released
	ObjectsCopied int // objects copied between blocks
	ObjectsMoved  int // objects whose offset changed (pointers went indirect)
	PagesRemapped int
	FreedBytes    int64
	Duration      time.Duration // total modeled time
}

func (o CompactOptions) withDefaults() CompactOptions {
	if o.MaxOccupancy == 0 {
		o.MaxOccupancy = 0.9
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	return o
}

// mergeSet caches a candidate block's conflict state so the greedy pairing
// loop does not re-snapshot metadata for every pair it considers.
type mergeSet struct {
	block *alloc.Block
	used  int
	ids   map[uint16]bool // CoRM: live object IDs
	slots map[int]bool    // Mesh/CoRM-0: occupied offsets
}

func (s *Store) snapshotSet(strategy Strategy, b *alloc.Block) *mergeSet {
	m := &mergeSet{block: b, used: b.Used()}
	if strategy == StrategyCoRM {
		m.ids = s.stateOf(b).meta.idSet()
	} else {
		m.slots = make(map[int]bool, m.used)
		for _, idx := range b.UsedSlots() {
			m.slots[idx] = true
		}
	}
	return m
}

// disjoint reports whether two cached sets have no conflicts.
func (a *mergeSet) disjoint(b *mergeSet) bool {
	if a.ids != nil {
		x, y := a.ids, b.ids
		if len(x) > len(y) {
			x, y = y, x
		}
		for id := range x {
			if y[id] {
				return false
			}
		}
		return true
	}
	x, y := a.slots, b.slots
	if len(x) > len(y) {
		x, y = y, x
	}
	for idx := range x {
		if y[idx] {
			return false
		}
	}
	return true
}

// absorb folds src's post-merge state into the destination's cached set.
// Moved objects may occupy new offsets, so the destination's sets are
// rebuilt from the live block.
func (s *Store) absorb(strategy Strategy, dst *mergeSet) {
	fresh := s.snapshotSet(strategy, dst.block)
	dst.used = fresh.used
	dst.ids = fresh.ids
	dst.slots = fresh.slots
}

// phase charges a stage's modeled duration.
func (s *Store) phase(opts *CompactOptions, r *CompactReport, p Phase, d time.Duration) {
	r.Duration += d
	if opts.OnPhase != nil {
		opts.OnPhase(p, d)
	}
}

// CompactClass runs the two-stage compaction of §3.1.4 for one size class:
// the leader collects low-occupancy blocks from all threads, then greedily
// merges conflict-free pairs, remapping freed source blocks onto their
// destinations so existing pointers (and RDMA access) survive.
func (s *Store) CompactClass(opts CompactOptions) CompactReport {
	opts = opts.withDefaults()
	var r CompactReport

	classSize := s.cfg.Classes[opts.Class]
	slots := s.proc.Config().SlotsPerBlock(classSize)
	strategy := s.cfg.classStrategy(slots)
	if strategy == StrategyNone {
		return r
	}
	cmCompactRuns.Inc()

	// Stage 1: block collection. Every thread hands over its candidate
	// blocks; the broadcast costs Collection(threads) on the leader.
	var candidates []*alloc.Block
	for _, t := range s.thread {
		candidates = append(candidates, t.CollectBelow(opts.Class, opts.MaxOccupancy, opts.Leader)...)
	}
	s.phase(&opts, &r, PhaseCollect, s.cfg.Model.CPU.Collection(len(s.thread)))
	r.Collected = len(candidates)
	for _, b := range candidates {
		cmCandidateOccupancy.Observe(int64(b.Used()) * 100 / int64(slots))
	}
	if len(candidates) < 2 {
		s.returnBlocks(opts.Leader, candidates)
		return r
	}

	// Stage 2: merge least-utilized blocks first (§3.1.4: fewer objects,
	// fewer collisions).
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].Used() < candidates[j].Used()
	})
	live := make([]*mergeSet, len(candidates))
	for i, b := range candidates {
		live[i] = s.snapshotSet(strategy, b)
	}
	for i := 0; i < len(live); i++ {
		src := live[i]
		if src == nil {
			continue
		}
		if opts.MaxBlocks > 0 && r.BlocksFreed >= opts.MaxBlocks {
			break
		}
		// Choose the fullest fitting destination (tightest packing) but
		// prune candidates whose analytic no-collision probability (§3.4)
		// is hopeless, so the bounded attempts are spent where merges can
		// actually succeed — the least-utilized-first spirit of §3.1.4.
		idSpace := slots
		if strategy == StrategyCoRM {
			idSpace = 1 << s.cfg.IDBits
		}
		best := -1
		attempts := 0
		// scans bounds how many candidates are even examined, so classes
		// where no pairing can succeed stay cheap.
		scans := 64 * opts.MaxAttempts
		for j := len(live) - 1; j > i && attempts < opts.MaxAttempts && scans > 0; j-- {
			dst := live[j]
			if dst == nil || dst == src {
				continue
			}
			if src.used+dst.used > slots {
				continue // too full to ever fit; free skip
			}
			scans-- // probability evaluation below is the costly part
			if prob.NoCollision(idSpace, slots, src.used, dst.used) < 0.02 {
				continue // hopeless pairing; don't burn an attempt
			}
			attempts++
			cmCompactAttempts.Inc()
			if src.disjoint(dst) {
				best = j
				break
			}
			cmCompactIDConflicts.Inc()
		}
		if best < 0 {
			continue
		}
		dst := live[best]
		s.merge(strategy, src.block, dst.block, &opts, &r)
		s.absorb(strategy, dst)
		live[i] = nil
		r.Merges++
		r.BlocksFreed++
		r.FreedBytes += int64(s.cfg.BlockBytes)
	}

	// Hand surviving blocks (including merge destinations) to the leader.
	var leftovers []*alloc.Block
	for _, m := range live {
		if m != nil {
			leftovers = append(leftovers, m.block)
		}
	}
	s.returnBlocks(opts.Leader, leftovers)

	s.stats.compactions.Add(int64(r.Merges))
	s.stats.blocksFreed.Add(int64(r.BlocksFreed))
	s.stats.objectsMoved.Add(int64(r.ObjectsMoved))
	cmCompactMerges.Add(int64(r.Merges))
	cmCompactBlocksFreed.Add(int64(r.BlocksFreed))
	cmCompactObjectsMoved.Add(int64(r.ObjectsMoved))
	return r
}

// CompactAll runs CompactClass over every class whose fragmentation ratio
// exceeds the threshold (§3.1.3), returning the merged report.
func (s *Store) CompactAll(leader int, onPhase func(Phase, time.Duration)) CompactReport {
	var total CompactReport
	for _, class := range s.NeedsCompaction() {
		r := s.CompactClass(CompactOptions{Class: class, Leader: leader, OnPhase: onPhase})
		total.Collected += r.Collected
		total.Merges += r.Merges
		total.BlocksFreed += r.BlocksFreed
		total.ObjectsCopied += r.ObjectsCopied
		total.ObjectsMoved += r.ObjectsMoved
		total.PagesRemapped += r.PagesRemapped
		total.FreedBytes += r.FreedBytes
		total.Duration += r.Duration
	}
	return total
}

func (s *Store) returnBlocks(leader int, blocks []*alloc.Block) {
	for _, b := range blocks {
		s.thread[leader].AdoptBlock(b)
	}
}

// Compatible implements the strategy-specific conflict check (§3.1.2): ID
// disjointness for CoRM, offset disjointness for Mesh/CoRM-0, plus the
// capacity condition b1+b2 <= s. Exposed for tests and experiments.
func (s *Store) Compatible(a, b *alloc.Block) bool {
	classSize := s.cfg.Classes[a.Class]
	slots := s.proc.Config().SlotsPerBlock(classSize)
	strategy := s.cfg.classStrategy(slots)
	if strategy == StrategyNone || a.Class != b.Class {
		return false
	}
	if a.Used()+b.Used() > slots {
		return false
	}
	return s.snapshotSet(strategy, a).disjoint(s.snapshotSet(strategy, b))
}

// merge copies src's live objects into dst, preserving offsets when
// possible and relocating on conflict (CoRM only), then remaps src's
// virtual address — and every alias already attached to it — onto dst's
// physical frames, preserving RDMA access per the configured strategy.
func (s *Store) merge(strategy Strategy, src, dst *alloc.Block, opts *CompactOptions, r *CompactReport) {
	stSrc, stDst := s.stateOf(src), s.stateOf(dst)
	cpu := s.cfg.Model.CPU

	// Lock the objects under compaction (§3.2.3): RPC calls back off and
	// one-sided readers observe the lock bits. Flipping the flag while
	// holding each block's rw exclusively is the barrier that makes the
	// RPC-path check sound: any Free/Write/ReleasePtr that passed the check
	// has drained by the time the lock is acquired, and later ones observe
	// the flag. The slot set is therefore stable once read below.
	stSrc.rw.Lock()
	stSrc.setCompacting(true)
	srcSlots := src.UsedSlots()
	stSrc.rw.Unlock()
	stDst.rw.Lock()
	stDst.setCompacting(true)
	stDst.rw.Unlock()
	if s.cfg.DataBacked {
		for _, idx := range srcSlots {
			s.setLockState(stSrc, idx, lockCompaction)
		}
	}
	s.phase(opts, r, PhaseLock, time.Duration(len(srcSlots))*cpu.LockPerObject)

	// Copy objects and merge metadata.
	var copyCost time.Duration
	for _, idx := range srcSlots {
		newSlot := idx
		if !dst.AllocSlotAt(idx) {
			if strategy != StrategyCoRM {
				panic("core: offset conflict in offset-based merge (pre-check broken)")
			}
			var ok bool
			newSlot, ok = dst.AllocSlot()
			if !ok {
				panic("core: no free slot in merge destination (capacity pre-check broken)")
			}
			r.ObjectsMoved++
		}
		id, home := stSrc.meta.at(idx)
		stDst.meta.set(newSlot, id, home)
		if s.cfg.DataBacked {
			raw := make([]byte, src.Stride)
			if err := s.space.ReadAt(src.SlotAddr(idx), raw); err != nil {
				panic(err)
			}
			if err := s.space.WriteAt(dst.SlotAddr(newSlot), raw); err != nil {
				panic(err)
			}
		}
		stSrc.meta.clear(idx)
		if err := src.FreeSlot(idx); err != nil {
			panic(err)
		}
		r.ObjectsCopied++
		copyCost += cpu.Copy(src.Stride) + cpu.MergePerObject
	}
	s.phase(opts, r, PhaseCopy, copyCost)

	// Remap src's vaddr (and attached aliases) onto dst's frames. This is
	// the RDMA-critical step: the NIC's MTT must be refreshed without
	// invalidating the r_keys clients hold (§3.5).
	dstFrames := dst.FrameList(s.space)
	pages := src.Pages

	aliasList := append([]uint64{src.VAddr}, stSrc.takeAliases()...)

	for _, vaddr := range aliasList {
		s.remapOne(vaddr, pages, dstFrames, opts, r)
		r.PagesRemapped += pages
	}

	// Bookkeeping: src is dissolved; its vaddr (and aliases) now resolve
	// to dst. The physical frames of src were released by the remap. Each
	// base's stripe is updated independently — safe because both blocks are
	// still compaction-locked, so a resolve racing these updates lands on a
	// retryable block whichever side of the swing it observes.
	sh := s.shard(src.VAddr)
	sh.mu.Lock()
	delete(sh.states, src)
	sh.mu.Unlock()
	for _, vaddr := range aliasList {
		ash := s.shard(vaddr)
		ash.mu.Lock()
		ash.aliases[vaddr] = stDst
		ash.mu.Unlock()
	}
	stDst.addAliases(aliasList)
	s.proc.DropBlockKeepMapping(src)
	// DropBlockKeepMapping bypasses onReleaseBlock (the vaddr stays mapped
	// as an alias), but src's physical frames are gone — account for them
	// here or the live-block gauges only ever climb under compaction.
	cmBlocksLive.Dec()
	cmSlotsCapacity.Add(-int64(src.Slots))
	cmBytesLive.Add(-int64(s.cfg.BlockBytes))

	// Addresses with no live homed objects become reusable immediately.
	for _, vaddr := range aliasList {
		if vaddr == src.VAddr {
			if s.vt.dissolve(vaddr, pages) {
				s.releaseAlias(vaddr, pages)
			}
		}
		// Aliases other than src.VAddr were dissolved in earlier merges
		// and remain tracked until their homed objects disappear.
	}

	// Unlock. src is flagged dissolved before its compacting flag drops, so
	// an operation holding a stale stSrc reference always observes one of
	// the two and retries against the destination.
	if s.cfg.DataBacked {
		for _, idx := range dst.UsedSlots() {
			s.setLockState(stDst, idx, lockFree)
		}
	}
	stSrc.markDissolved()
	stSrc.setCompacting(false)
	stDst.setCompacting(false)
	s.phase(opts, r, PhaseUnlock, time.Duration(len(srcSlots))*cpu.LockPerObject)
}

// remapOne performs the virtual remapping of one block-base address onto
// new frames and restores NIC access per the configured strategy (§3.5).
func (s *Store) remapOne(vaddr uint64, pages int, frames []*mem.Frame, opts *CompactOptions, r *CompactReport) {
	nic := s.cfg.Model.NIC
	sh := s.shard(vaddr)
	sh.mu.RLock()
	region := sh.regions[vaddr]
	sh.mu.RUnlock()

	switch s.cfg.Remap {
	case RemapRereg:
		// Open the QP-breaking window, remap, refresh the MTT. The OnPhase
		// hook runs while the window is open so simulated concurrent
		// accesses genuinely break their QPs.
		if region != nil {
			s.nic.BeginRereg(region)
		}
		s.space.Remap(vaddr, frames)
		s.phase(opts, r, PhaseMmap, nic.MmapCost(pages))
		s.phase(opts, r, PhaseRereg, nic.Rereg(pages))
		if region != nil {
			if err := s.nic.EndRereg(region); err != nil {
				panic(err)
			}
		}
	case RemapODP:
		s.space.Remap(vaddr, frames)
		s.nic.Invalidate(vaddr, pages*mem.PageSize)
		s.phase(opts, r, PhaseMmap, nic.MmapCost(pages))
	case RemapODPPrefetch:
		s.space.Remap(vaddr, frames)
		s.nic.Invalidate(vaddr, pages*mem.PageSize)
		s.phase(opts, r, PhaseMmap, nic.MmapCost(pages))
		if region != nil {
			if _, err := s.nic.AdviseMR(vaddr, pages*mem.PageSize); err != nil {
				panic(err)
			}
		}
		s.phase(opts, r, PhaseAdvise, nic.AdviseMR)
	}
}

// setLockState rewrites the lock bits of a stored object header.
func (s *Store) setLockState(st *blockState, slot int, lock uint8) {
	base := st.SlotAddr(slot)
	line := make([]byte, headerBytes)
	if err := s.space.ReadAt(base, line); err != nil {
		return
	}
	h := decodeHeader(line)
	h.Lock = lock
	encodeHeader(line, h)
	s.space.WriteAt(base, line)
}
