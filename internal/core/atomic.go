// Near-data compute primitives (ROADMAP item 3, after Active Access): the
// store-side halves of the pushdown opcodes. Each one runs its whole
// read-modify-write under the block's exclusive rw lock — the same lock a
// merge takes for its copy phase — so a pushdown op either completes
// against the live block or observes the compacting/dissolved flags and
// reports ErrCompacting for the caller to retry with a corrected pointer.
// There is no window where compaction can move the record between the read
// and the write, which is precisely what a client-side emulation cannot
// guarantee without pinning the block.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
)

// ErrConflict reports a pushdown condition that did not hold (CAS compare
// mismatch, CondWrite version mismatch). Nothing was written.
var ErrConflict = errors.New("core: pushdown condition failed, not applied")

// slotScratch carries the pooled staging buffers of the mutation paths: raw
// holds a full slot image, pay an unpacked payload. Boxed for the same
// reason as readScratch — a bare []byte through sync.Pool heap-allocates
// the slice header on every Put.
type slotScratch struct{ raw, pay []byte }

// buffers returns the scratch slices sized to (stride, size), growing the
// backing arrays only when a larger class shows up.
func (sc *slotScratch) buffers(stride, size int) (raw, pay []byte) {
	if cap(sc.raw) < stride {
		sc.raw = make([]byte, stride)
	}
	if cap(sc.pay) < size {
		sc.pay = make([]byte, size)
	}
	return sc.raw[:stride], sc.pay[:size]
}

var slotScratchPool = sync.Pool{New: func() any { return &slotScratch{} }}

// mutateSlot is the shared read-modify-write engine: resolve the pointer,
// take the block write lock, revalidate liveness, unpack the current
// payload into scratch, and hand it to fn together with the current object
// version. If fn mutates the payload and returns apply=true, the slot is
// republished at version+1 under the same lock hold. On any error — or
// apply=false — nothing is written and the observed version is returned
// with the error, so conflict paths can report what they saw.
func (s *Store) mutateSlot(addr *Addr, fn func(pay []byte, ver uint32) (bool, error)) (uint32, error) {
	if !s.cfg.DataBacked {
		return 0, ErrNoData
	}
	st, slot, _, err := s.resolve(addr)
	if err != nil {
		return 0, err
	}
	size := s.ClassSize(st.Class)
	if err := s.lockResident(st); err != nil {
		return 0, err
	}
	defer st.rw.Unlock()
	sc := slotScratchPool.Get().(*slotScratch)
	defer slotScratchPool.Put(sc)
	raw, pay := sc.buffers(st.Stride, size)
	base := st.SlotAddr(slot)
	if err := s.space.ReadAt(base, raw); err != nil {
		return 0, err
	}
	h := decodeHeader(raw)
	if s.cfg.Consistency == ConsistencyChecksum {
		copy(pay, raw[headerBytes:headerBytes+size])
	} else {
		unpackPayloadInto(pay, raw, size)
	}
	apply, err := fn(pay, h.Version)
	if err != nil || !apply {
		return h.Version, err
	}
	newVersion := h.Version + 1
	if err := s.publishSlot(st, base, raw, h, newVersion, pay); err != nil {
		return 0, err
	}
	return newVersion, nil
}

// CAS compares len(old) payload bytes at off with old and, only on a
// match, overwrites with new — all under one block-lock hold. A mismatch
// returns ErrConflict with nothing written; a range overrunning the class
// payload returns ErrShortBuffer.
func (s *Store) CAS(addr *Addr, off int, old, new []byte) error {
	span := len(old)
	if len(new) > span {
		span = len(new)
	}
	_, err := s.mutateSlot(addr, func(pay []byte, _ uint32) (bool, error) {
		if off < 0 || off+span > len(pay) {
			return false, ErrShortBuffer
		}
		if !bytes.Equal(pay[off:off+len(old)], old) {
			return false, ErrConflict
		}
		copy(pay[off:], new)
		return len(new) > 0, nil
	})
	cmCASOps.Inc()
	if errors.Is(err, ErrConflict) {
		cmPushdownConflicts.Inc()
	}
	return err
}

// FetchAdd atomically adds delta to the little-endian u64 at off, returning
// the pre-add value.
func (s *Store) FetchAdd(addr *Addr, off int, delta int64) (uint64, error) {
	var prev uint64
	_, err := s.mutateSlot(addr, func(pay []byte, _ uint32) (bool, error) {
		if off < 0 || off+8 > len(pay) {
			return false, ErrShortBuffer
		}
		prev = binary.LittleEndian.Uint64(pay[off:])
		binary.LittleEndian.PutUint64(pay[off:], prev+uint64(delta))
		return true, nil
	})
	cmFetchAdds.Inc()
	return prev, err
}

// CondWrite replaces the whole object payload (zero-filling past
// len(value)) only when the version condition holds: with ifAbsent the
// object must never have been written (version 0), otherwise the version
// must equal expect. It returns the resulting version — the new one on
// success, the observed one alongside ErrConflict.
func (s *Store) CondWrite(addr *Addr, expect uint32, ifAbsent bool, value []byte) (uint32, error) {
	ver, err := s.mutateSlot(addr, func(pay []byte, cur uint32) (bool, error) {
		if len(value) > len(pay) {
			return false, ErrShortBuffer
		}
		if ifAbsent {
			if cur != 0 {
				return false, ErrConflict
			}
		} else if cur != expect {
			return false, ErrConflict
		}
		n := copy(pay, value)
		clear(pay[n:])
		return true, nil
	})
	cmCondWrites.Inc()
	if errors.Is(err, ErrConflict) {
		cmPushdownConflicts.Inc()
	}
	return ver, err
}

// scanKey is the global object identity used to deduplicate scans: the
// allocation-time home block plus the block-local random ID. Merges
// preserve both (the executor re-records (id, home) at the destination
// slot), so an object relocated mid-scan keeps one identity no matter how
// many blocks the scan observes it in.
type scanKey struct {
	home uint64
	id   uint16
}

// ScanClass streams every live object of one size class through pred and
// emit. pred sees the unpacked payload (scratch — valid only during the
// call); emit receives the object's current pointer and the same payload
// view and returns false to stop early (limit reached). Each live object is
// evaluated exactly once even while compaction merges blocks mid-scan: the
// block list is a snapshot, dissolved blocks are followed through their
// alias to the merge destination, and the (home, id) identity deduplicates
// objects seen both before and after a move.
func (s *Store) ScanClass(class int, pred func(pay []byte) bool, emit func(addr Addr, pay []byte) bool) error {
	if !s.cfg.DataBacked {
		return ErrNoData
	}
	if class < 0 || class >= len(s.cfg.Classes) {
		return ErrNoClass
	}
	cmScans.Inc()
	size := s.cfg.Classes[class]
	seen := make(map[scanKey]struct{})
	sc := slotScratchPool.Get().(*slotScratch)
	defer slotScratchPool.Put(sc)
	for _, b := range s.proc.BlocksOfClass(class) {
		st := s.stateOf(b)
		if st == nil {
			// Already released or dissolved: chase the alias — the merge
			// destination (rescanned below) now holds any surviving objects.
			st, _ = s.resolveBase(b.VAddr)
		}
		for st != nil {
			stop, err := s.scanBlock(st, class, size, sc, seen, pred, emit)
			if err == nil {
				if stop {
					return nil
				}
				break
			}
			switch {
			case errors.Is(err, ErrNotFound):
				// Block released entirely: every object it held was freed.
				st = nil
			case errors.Is(err, ErrCompacting):
				// Mid-merge. Yield, then re-resolve: once the merge
				// completes the base routes to the destination block, which
				// is scanned in full (dedup drops the objects already seen).
				runtime.Gosched()
				cur, ok := s.resolveBase(st.VAddr)
				if !ok {
					st = nil
					break
				}
				st = cur
			default:
				return err
			}
		}
	}
	return nil
}

// scanBlock walks one block under its read lock, feeding unseen live
// objects through pred/emit. It reports stop=true when emit terminated the
// scan. An ErrCompacting/ErrNotFound return is the block-level liveness
// verdict for the caller's retry loop.
func (s *Store) scanBlock(st *blockState, class, size int, sc *slotScratch, seen map[scanKey]struct{}, pred func(pay []byte) bool, emit func(addr Addr, pay []byte) bool) (bool, error) {
	if err := s.rlockResident(st); err != nil {
		return false, err
	}
	defer st.rw.RUnlock()
	raw, pay := sc.buffers(st.Stride, size)
	for slot := 0; slot < st.Slots; slot++ {
		if !st.SlotUsed(slot) {
			continue
		}
		if err := s.space.ReadAt(st.SlotAddr(slot), raw); err != nil {
			return false, err
		}
		h := decodeHeader(raw)
		if !h.Alloc {
			// Slot claimed by an allocation whose header write has not
			// landed yet — the object does not exist until it has.
			continue
		}
		id, home := st.meta.at(slot)
		key := scanKey{home: home, id: id}
		if _, dup := seen[key]; dup {
			continue
		}
		// Record before evaluating: exactly-once means one evaluation per
		// live object, not one per block it appears in.
		seen[key] = struct{}{}
		cmScanRecords.Inc()
		if s.cfg.Consistency == ConsistencyChecksum {
			copy(pay, raw[headerBytes:headerBytes+size])
		} else {
			unpackPayloadInto(pay, raw, size)
		}
		if pred != nil && !pred(pay) {
			continue
		}
		cmScanMatches.Inc()
		addr := MakeAddr(st.SlotAddr(slot), id, st.region.rkey, uint8(class))
		if !emit(addr, pay) {
			return true, nil
		}
	}
	return false, nil
}
