package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLinesFor(t *testing.T) {
	cases := map[int]int{
		8: 1, 32: 1, 48: 1, // fit beside the header in line 0
		49: 2, 64: 2, 111: 2,
		112: 3, 128: 3,
		2048: 33, // 48 + 32*63 = 2064 >= 2048
	}
	for size, want := range cases {
		if got := linesFor(size); got != want {
			t.Errorf("linesFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestStrideCapacityInvariant(t *testing.T) {
	// Every class must fit its payload in the computed stride, and the
	// stride must not be a whole line larger than needed.
	for size := 8; size <= 16384; size += 8 {
		lines := linesFor(size)
		if payloadCapacity(lines) < size {
			t.Fatalf("stride too small for %d B payload", size)
		}
		if lines > 1 && payloadCapacity(lines-1) >= size {
			t.Fatalf("stride wastes a line at %d B payload", size)
		}
		if dataStride(size) != lines*cacheline {
			t.Fatalf("dataStride(%d) inconsistent", size)
		}
	}
}

func TestHeaderRoundtrip(t *testing.T) {
	f := func(version uint32, lock uint8, alloc bool, id uint16, home uint64) bool {
		h := header{Version: version, Lock: lock & 0x3, Alloc: alloc, ID: id, Home: home}
		buf := make([]byte, headerBytes)
		encodeHeader(buf, h)
		return decodeHeader(buf) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderVersionByteIsLineTag(t *testing.T) {
	buf := make([]byte, headerBytes)
	encodeHeader(buf, header{Version: 0x0403_0201})
	if buf[0] != 0x01 {
		t.Fatalf("header byte 0 = %#x, want low version byte", buf[0])
	}
}

func TestPayloadRoundtrip(t *testing.T) {
	f := func(seed uint8, sizeRaw uint16) bool {
		size := int(sizeRaw)%2048 + 1
		size = (size + 7) / 8 * 8
		slot := make([]byte, dataStride(size))
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(int(seed) + i)
		}
		encodeHeader(slot, header{Version: 5, Alloc: true, ID: 9})
		packPayload(slot, payload)
		tagLines(slot, 5)
		if !versionsConsistent(slot) {
			return false
		}
		// Header must survive payload packing.
		h := decodeHeader(slot)
		if h.Version != 5 || !h.Alloc || h.ID != 9 {
			return false
		}
		return bytes.Equal(unpackPayload(slot, size), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionConsistencyDetectsTornRead(t *testing.T) {
	size := 256 // multi-line object
	slot := make([]byte, dataStride(size))
	encodeHeader(slot, header{Version: 7, Alloc: true})
	tagLines(slot, 7)
	if !versionsConsistent(slot) {
		t.Fatal("clean slot reported inconsistent")
	}
	// A torn read: one cacheline still carries the previous version.
	slot[2*cacheline] = 6
	if versionsConsistent(slot) {
		t.Fatal("torn slot reported consistent")
	}
}

func TestVersionConsistencyDetectsLock(t *testing.T) {
	slot := make([]byte, dataStride(64))
	for _, lock := range []uint8{lockWrite, lockCompaction} {
		encodeHeader(slot, header{Version: 1, Lock: lock, Alloc: true})
		tagLines(slot, 1)
		if versionsConsistent(slot) {
			t.Fatalf("locked slot (lock=%d) reported consistent", lock)
		}
	}
}

func TestPayloadDoesNotClobberLineTags(t *testing.T) {
	size := 512
	slot := make([]byte, dataStride(size))
	payload := bytes.Repeat([]byte{0xFF}, size)
	encodeHeader(slot, header{Version: 3, Alloc: true})
	packPayload(slot, payload)
	tagLines(slot, 3)
	for off := 0; off < len(slot); off += cacheline {
		if slot[off] != 3 {
			t.Fatalf("payload overwrote version byte at line %d", off/cacheline)
		}
	}
	if !bytes.Equal(unpackPayload(slot, size), payload) {
		t.Fatal("payload corrupted by tagging")
	}
}
