// Package core implements the CoRM store: the paper's primary contribution.
//
// A Store is one CoRM node. It owns the simulated physical memory, the
// address space, the RNIC, the two-level concurrent allocator, and the
// compaction machinery. Server-side operations (Alloc, Free, Read, Write,
// ReleasePtr) are what the RPC workers execute; client-side one-sided
// operations (DirectRead, ScanRead) run against the NIC without touching
// the store's CPU path, exactly as in the paper.
package core

import "fmt"

// Addr is CoRM's 128-bit object pointer (§3, Table 2). It packs the 64-bit
// object virtual address (block base + offset hint) together with the
// RDMA metadata a client needs for one-sided access:
//
//	Lo[ 0:48]  object virtual address (48-bit, slot-aligned offset hint)
//	Lo[48:64]  object ID (random, block-local; §3.1.2)
//	Hi[ 0:32]  r_key of the block's memory region
//	Hi[32:40]  size-class index
//	Hi[40:48]  flags
//	Hi[48:64]  reserved
//
// API calls take *Addr: pointer correction updates the offset hint in
// place, turning an indirect pointer back into a direct one (§3.2).
type Addr struct {
	Lo, Hi uint64
}

// Addr flag bits.
const (
	// FlagIndirectObserved is set by the library when it had to correct
	// the pointer, implementing "CoRM always notifies the user if it uses
	// an old pointer" (§3.3).
	FlagIndirectObserved = 1 << 0
)

const vaddrMask = (1 << 48) - 1

// MakeAddr assembles a pointer from its parts.
func MakeAddr(vaddr uint64, id uint16, rkey uint32, class uint8) Addr {
	if vaddr&^uint64(vaddrMask) != 0 {
		panic(fmt.Sprintf("core: vaddr %#x exceeds 48 bits", vaddr))
	}
	return Addr{
		Lo: vaddr | uint64(id)<<48,
		Hi: uint64(rkey) | uint64(class)<<32,
	}
}

// VAddr returns the object's virtual address (block base + offset hint).
func (a Addr) VAddr() uint64 { return a.Lo & vaddrMask }

// ID returns the block-local object identifier.
func (a Addr) ID() uint16 { return uint16(a.Lo >> 48) }

// RKey returns the remote access key of the object's memory region.
func (a Addr) RKey() uint32 { return uint32(a.Hi) }

// Class returns the size-class index.
func (a Addr) Class() uint8 { return uint8(a.Hi >> 32) }

// Flags returns the flag byte.
func (a Addr) Flags() uint8 { return uint8(a.Hi >> 40) }

// SetVAddr updates the address/offset hint in place (pointer correction).
func (a *Addr) SetVAddr(v uint64) {
	if v&^uint64(vaddrMask) != 0 {
		panic(fmt.Sprintf("core: vaddr %#x exceeds 48 bits", v))
	}
	a.Lo = a.Lo&^uint64(vaddrMask) | v
}

// SetFlag sets a flag bit.
func (a *Addr) SetFlag(bit uint8) { a.Hi |= uint64(bit) << 40 }

// ClearFlag clears a flag bit.
func (a *Addr) ClearFlag(bit uint8) { a.Hi &^= uint64(bit) << 40 }

// HasFlag reports whether a flag bit is set.
func (a Addr) HasFlag(bit uint8) bool { return a.Flags()&bit != 0 }

// IsZero reports whether the pointer is the zero value (invalid).
func (a Addr) IsZero() bool { return a.Lo == 0 && a.Hi == 0 }

func (a Addr) String() string {
	return fmt.Sprintf("addr{v=%#x id=%d rkey=%#x class=%d flags=%#x}",
		a.VAddr(), a.ID(), a.RKey(), a.Class(), a.Flags())
}
