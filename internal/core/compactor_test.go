package core

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestCompactorReclaimsUnderChurn: the background service, left alone over
// a fragmented store, reclaims blocks without being asked — and every live
// object stays byte-identical through its original pointer.
func TestCompactorReclaimsUnderChurn(t *testing.T) {
	s := testStore(t, nil)
	live := sparseBlocks(t, s, 64, 8, 1)

	c := NewCompactor(s, CompactorConfig{
		Interval: time.Millisecond,
		Policy:   &ThresholdPolicy{MaxOccupancy: Occ(1.0)},
	})
	c.Start()
	defer c.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().BlocksFreed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compactor reclaimed nothing")
		}
		time.Sleep(time.Millisecond)
	}
	for addr, want := range live {
		buf := make([]byte, 64)
		if _, err := s.Read(addr, buf); err != nil {
			t.Fatalf("read under background compaction: %v", err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatal("payload corrupted by background compaction")
		}
	}
}

func TestCompactorStartStopIdempotent(t *testing.T) {
	s := testStore(t, nil)
	c := NewCompactor(s, CompactorConfig{Interval: time.Millisecond})
	if c.Running() {
		t.Fatal("running before Start")
	}
	c.Start()
	c.Start() // no second goroutine
	if !c.Running() {
		t.Fatal("not running after Start")
	}
	c.Stop()
	c.Stop() // no panic, no deadlock
	if c.Running() {
		t.Fatal("running after Stop")
	}
	// Restartable after a full stop.
	c.Start()
	if !c.Running() {
		t.Fatal("not running after restart")
	}
	c.Stop()
}

// TestCompactorCycleBudget: MaxBlocks caps blocks freed per cycle across
// every class the policy selects, not per class.
func TestCompactorCycleBudget(t *testing.T) {
	s := testStore(t, nil)
	sparseBlocks(t, s, 64, 8, 1)
	sparseBlocks(t, s, 128, 8, 1)

	c := NewCompactor(s, CompactorConfig{
		MaxBlocks: 2,
		Policy:    &ThresholdPolicy{MaxOccupancy: Occ(1.0)},
	})
	r := c.RunCycle()
	if r.BlocksFreed == 0 {
		t.Fatalf("budgeted cycle freed nothing: %+v", r)
	}
	if r.BlocksFreed > 2 {
		t.Fatalf("cycle freed %d blocks, budget 2", r.BlocksFreed)
	}
}

// TestCompactorLoadShedding: the op-rate sampler establishes a baseline on
// its first call, then sheds while the observed rate exceeds the limit and
// resumes when traffic quiets down.
func TestCompactorLoadShedding(t *testing.T) {
	s := testStore(t, nil)
	c := NewCompactor(s, CompactorConfig{LoadShedOpsPerSec: 1000})

	if c.shouldShed() {
		t.Fatal("shed on the baseline sample")
	}
	// A burst far above 1000 ops/s between samples.
	for i := 0; i < 5000; i++ {
		r, err := s.AllocOn(0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Free(&r.Addr); err != nil {
			t.Fatal(err)
		}
	}
	if !c.shouldShed() {
		t.Fatal("did not shed under a hot op rate")
	}
	// Quiet period: the next sample sees (almost) no new ops.
	time.Sleep(10 * time.Millisecond)
	if c.shouldShed() {
		t.Fatal("still shedding after traffic stopped")
	}
}

// TestAdaptivePolicySkipsHotCompactsCold: the §4.4 labels drive the runs —
// a hot self-recycling class is skipped, a cold fragmenting class gets an
// uncapped budget.
func TestAdaptivePolicySkipsHotCompactsCold(t *testing.T) {
	s := testStore(t, func(c *Config) { c.FragThreshold = 0.2 })
	// Cold class: 64B blocks strand sparse, no churn observed.
	sparseBlocks(t, s, 64, 6, 1)
	cold := s.Allocator().Config().ClassFor(64)

	tuner := NewAutoTuner(s)
	pol := NewAdaptivePolicy(tuner, 4)

	runs := pol.Cycle(s)
	var coldRun *CompactOptions
	for i := range runs {
		if runs[i].Class == cold {
			coldRun = &runs[i]
		}
	}
	if coldRun == nil {
		t.Fatalf("cold fragmented class %d not selected: %+v", cold, runs)
	}
	if coldRun.MaxBlocks != 0 {
		t.Fatalf("cold class budget = %d, want 0 (uncapped)", coldRun.MaxBlocks)
	}

	// Make the same class hot: churn ≈ 1 with ~half-full blocks.
	s2 := testStore(t, func(c *Config) { c.FragThreshold = 0.2 })
	per := s2.Allocator().Config().SlotsPerBlock(64)
	sparseBlocks(t, s2, 64, 6, per/2)
	hot := s2.Allocator().Config().ClassFor(64)
	tuner2 := NewAutoTuner(s2)
	for i := 0; i < 1000; i++ {
		tuner2.ObserveAlloc(hot)
		tuner2.ObserveFree(hot)
	}
	pol2 := NewAdaptivePolicy(tuner2, 4)
	for _, run := range pol2.Cycle(s2) {
		if run.Class == hot {
			t.Fatalf("hot self-recycling class %d selected for compaction", hot)
		}
	}
}

// TestAdaptivePolicyBacksOffOnConflicts: a cycle where every pairing
// collided and nothing merged puts the class on backoff; it is retried
// only after adaptiveBackoffCycles turns.
func TestAdaptivePolicyBacksOffOnConflicts(t *testing.T) {
	s := testStore(t, func(c *Config) { c.FragThreshold = 0.2 })
	sparseBlocks(t, s, 64, 6, 1)
	class := s.Allocator().Config().ClassFor(64)

	tuner := NewAutoTuner(s)
	pol := NewAdaptivePolicy(tuner, 4)

	runs := pol.Cycle(s)
	if len(runs) == 0 || runs[0].Class != class {
		t.Fatalf("class %d not selected: %+v", class, runs)
	}
	// Feed back a hopeless cycle: all attempts collided, zero merges.
	pol.Observe([]CompactReport{{Class: class, Attempts: 10, Conflicts: 10}})

	for i := 0; i < adaptiveBackoffCycles; i++ {
		for _, run := range pol.Cycle(s) {
			if run.Class == class {
				t.Fatalf("class retried during backoff cycle %d", i)
			}
		}
	}
	// Backoff served: the class is eligible again.
	found := false
	for _, run := range pol.Cycle(s) {
		if run.Class == class {
			found = true
		}
	}
	if !found {
		t.Fatal("class never came back after backoff")
	}
}

// TestAutoTunerConcurrentObservations is the satellite -race test: the
// tuner is attached to the store's alloc/free path and hammered from many
// goroutines while Snapshot and a background compactor run concurrently.
func TestAutoTunerConcurrentObservations(t *testing.T) {
	s := testStore(t, nil)
	tuner := NewAutoTuner(s)
	s.AttachTuner(tuner)

	c := NewCompactor(s, CompactorConfig{
		Interval: time.Millisecond,
		Policy:   NewAdaptivePolicy(tuner, 4),
	})
	c.Start()
	defer c.Stop()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(thread int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r, err := s.AllocOn(thread%s.Workers(), 64)
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := s.Free(&r.Addr); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent snapshots race the observations by design.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tuner.Snapshot()
		}
	}()
	wg.Wait()

	labels := tuner.Snapshot()
	class := s.Allocator().Config().ClassFor(64)
	got := labels[class]
	if got.Class != class {
		t.Fatalf("snapshot not indexed by class: %+v", got)
	}
	// 8 workers x 500 allocs, half freed: churn must land near 0.5.
	if got.Churn < 0.4 || got.Churn > 0.6 {
		t.Fatalf("churn = %.2f, want ~0.5 (lost updates?)", got.Churn)
	}
}
