package core

import (
	"errors"
	"fmt"
)

// Memory-safety canaries (memguard-style guard bytes on slot boundaries).
//
// Every slot stride is cacheline-rounded, so most size classes leave a
// tail of bytes between the end of the payload and the end of the slot
// that no legitimate write ever touches. With Config.Canaries enabled the
// store paints that tail with a guard pattern at allocation time and
// re-verifies it on every RPC read, on free, and on each compaction copy.
// A heap overflow — a write running past its object into the next slot's
// territory — lands in the guard region first, so corruption is detected
// at the slot boundary instead of silently propagating into a neighbour
// object and surfacing as an inexplicable data error much later.
//
// The guard region is a contiguous tail: payload bytes fill cachelines
// greedily (layout.go), so only the last line of a slot can be partially
// used, and everything after the final payload byte through the end of
// the stride is slack. Classes that fill their stride exactly have an
// empty guard region and verify trivially.

// ErrCorruption reports that a slot's guard bytes were overwritten — a
// memory-safety violation (overflow from a neighbouring object or a wild
// write), not a torn read. The operation that detected it still completed
// its bookkeeping where safe (Free releases the slot), but the object's
// contents cannot be trusted.
var ErrCorruption = errors.New("core: canary corruption detected (slot guard bytes overwritten)")

// canaryByte is the guard fill pattern. 0xC5 is asymmetric and non-zero,
// so zero-fills, one-fills, and shifted copies of it all fail the check.
const canaryByte = 0xC5

// canaryStart returns the offset of the guard region within a slot's raw
// stride. Bytes [start, stride) are guard; start == stride means the class
// has no slack to guard.
func (c Config) canaryStart(classSize, stride int) int {
	if c.Consistency == ConsistencyChecksum {
		// header + payload + CRC, padded to 8 bytes: guard the padding.
		return headerBytes + classSize + checksumBytes
	}
	if classSize <= line0Payload {
		return headerBytes + classSize
	}
	rest := classSize - line0Payload
	lines := 1 + (rest+lineKPayload-1)/lineKPayload
	usedLast := rest - (lines-2)*lineKPayload // payload bytes in the final line
	return (lines-1)*cacheline + 1 + usedLast
}

// paintCanary fills a slot's guard tail with the canary pattern.
func paintCanary(raw []byte, start int) {
	for i := start; i < len(raw); i++ {
		raw[i] = canaryByte
	}
}

// verifyCanary checks a slot's guard tail; true means intact.
func verifyCanary(raw []byte, start int) bool {
	for i := start; i < len(raw); i++ {
		if raw[i] != canaryByte {
			return false
		}
	}
	return true
}

// checkCanary verifies the guard tail of a raw slot image and records any
// violation. It reports whether the slot is intact; callers decide whether
// to fail the operation (reads) or proceed with bookkeeping (free,
// compaction copy).
func (s *Store) checkCanary(raw []byte, classSize int) bool {
	if !s.cfg.Canaries {
		return true
	}
	if verifyCanary(raw, s.cfg.canaryStart(classSize, len(raw))) {
		return true
	}
	s.canaryViolations.Add(1)
	cmCanaryViolations.Inc()
	return false
}

// CanaryViolations reports how many guard-byte violations this store has
// detected since creation (reads, frees, and compaction copies all check).
func (s *Store) CanaryViolations() int64 { return s.canaryViolations.Load() }

// CanaryBytes reports the guard-region width of a size class — how many
// slack bytes each slot of the class guards. 0 means the class fills its
// stride exactly and overflow detection relies on the next slot's header.
func (s *Store) CanaryBytes(class int) int {
	stride := s.Stride(class)
	return stride - s.cfg.canaryStart(s.cfg.Classes[class], stride)
}

// CorruptSlotTail deliberately overwrites the last guard byte of an
// object's slot — the fault-injection hook the soak harness and tests use
// to prove an overflow is detected. It fails if canaries are disabled or
// the object's class has no guard region.
func (s *Store) CorruptSlotTail(addr *Addr) error {
	if !s.cfg.Canaries {
		return errors.New("core: canaries disabled")
	}
	if !s.cfg.DataBacked {
		return ErrNoData
	}
	st, slot, _, err := s.resolve(addr)
	if err != nil {
		return err
	}
	if err := s.lockResident(st); err != nil {
		return err
	}
	defer st.rw.Unlock()
	if s.cfg.canaryStart(s.cfg.Classes[st.Class], st.Stride) >= st.Stride {
		return fmt.Errorf("core: class %d has no guard region to corrupt", st.Class)
	}
	// One flipped byte at the very end of the slot: the smallest overflow
	// a neighbouring object's overrun would produce.
	return s.space.WriteAt(st.SlotAddr(slot)+uint64(st.Stride-1), []byte{^byte(canaryByte)})
}
