package core

import (
	"time"

	"corm/internal/alloc"
	"corm/internal/mem"
)

// The compaction executor. This is the effectful half of §3.1.4's merge
// stage: it consumes a CompactPlan one pair at a time and performs the
// existing lock/copy/remap/unlock mechanics. Because plans are computed
// from snapshots, every pair is revalidated against live state first —
// concurrent frees (or, for plans built without collecting the blocks,
// concurrent allocations) may have invalidated the pairing, in which case
// the pair is skipped rather than risking an ID/offset collision.

// executePlan runs a plan's pairs in order, revalidating each against live
// state. It returns the set of dissolved source blocks so the caller can
// compute leftovers. The plan's blocks must be collected (owned by the
// leader, detached from worker threads) before execution.
func (s *Store) executePlan(plan CompactPlan, opts *CompactOptions, r *CompactReport) map[*alloc.Block]bool {
	merged := make(map[*alloc.Block]bool, len(plan.Pairs))
	for _, p := range plan.Pairs {
		if opts.MaxBlocks > 0 && r.BlocksFreed >= opts.MaxBlocks {
			break
		}
		if merged[p.Src] || merged[p.Dst] {
			// Defensive: the planner never emits a dissolved block twice,
			// but a hand-built plan might.
			continue
		}
		// Revalidate: the snapshot the pair was planned from is stale by
		// now. Frees only shrink conflict sets (still safe), but objects
		// allocated since planning can introduce collisions or overflow
		// the destination — exactly the §3.1.2 conditions, re-checked.
		src := s.snapshotSet(plan.Strategy, p.Src)
		dst := s.snapshotSet(plan.Strategy, p.Dst)
		if src.used+dst.used > plan.Slots || !src.disjoint(dst) {
			r.RevalRejects++
			cmCompactRevalRejects.Inc()
			continue
		}
		if !s.merge(plan.Strategy, p.Src, p.Dst, opts, r) {
			continue
		}
		merged[p.Src] = true
		r.Merges++
		r.BlocksFreed++
		r.FreedBytes += int64(s.cfg.BlockBytes)
	}
	return merged
}

// merge copies src's live objects into dst, preserving offsets when
// possible and relocating on conflict (CoRM only), then remaps src's
// virtual address — and every alias already attached to it — onto dst's
// physical frames, preserving RDMA access per the configured strategy.
// It reports false when a side could not be faulted in (tier failure) —
// the pair is skipped, nothing was mutated.
func (s *Store) merge(strategy Strategy, src, dst *alloc.Block, opts *CompactOptions, r *CompactReport) bool {
	stSrc, stDst := s.stateOf(src), s.stateOf(dst)
	cpu := s.cfg.Model.CPU

	// Lock the objects under compaction (§3.2.3): RPC calls back off and
	// one-sided readers observe the lock bits. Flipping the flag while
	// holding each block's rw exclusively is the barrier that makes the
	// RPC-path check sound: any Free/Write/ReleasePtr that passed the check
	// has drained by the time the lock is acquired, and later ones observe
	// the flag. The slot set is therefore stable once read below.
	//
	// Both sides must be resident for the copy/remap phases; faulting them
	// in under the same rw hold that raises the compacting flag means the
	// clock cannot re-evict either until the merge completes (tryEvict
	// observes the flag via gone()).
	stSrc.rw.Lock()
	if err := s.faultInLocked(stSrc); err != nil {
		stSrc.rw.Unlock()
		r.RevalRejects++
		cmCompactRevalRejects.Inc()
		return false
	}
	stSrc.setCompacting(true)
	srcSlots := src.UsedSlots()
	stSrc.rw.Unlock()
	stDst.rw.Lock()
	if err := s.faultInLocked(stDst); err != nil {
		stDst.rw.Unlock()
		stSrc.setCompacting(false)
		r.RevalRejects++
		cmCompactRevalRejects.Inc()
		return false
	}
	stDst.setCompacting(true)
	stDst.rw.Unlock()
	if s.cfg.DataBacked {
		for _, idx := range srcSlots {
			s.setLockState(stSrc, idx, lockCompaction)
		}
	}
	s.phase(opts, r, PhaseLock, time.Duration(len(srcSlots))*cpu.LockPerObject)

	// Copy objects and merge metadata. One staging buffer serves the whole
	// merge: slots share the class stride, so allocating per object would
	// only feed the GC on large merges.
	var copyCost time.Duration
	var raw []byte
	if s.cfg.DataBacked {
		raw = make([]byte, src.Stride)
	}
	for _, idx := range srcSlots {
		newSlot := idx
		if !dst.AllocSlotAt(idx) {
			if strategy != StrategyCoRM {
				panic("core: offset conflict in offset-based merge (pre-check broken)")
			}
			var ok bool
			newSlot, ok = dst.AllocSlot()
			if !ok {
				panic("core: no free slot in merge destination (capacity pre-check broken)")
			}
			r.ObjectsMoved++
		}
		id, home := stSrc.meta.at(idx)
		stDst.meta.set(newSlot, id, home)
		if s.cfg.DataBacked {
			if err := s.space.ReadAt(src.SlotAddr(idx), raw); err != nil {
				panic(err)
			}
			// The copy is corruption's best chance to spread: verify the
			// source slot's guard tail before the bytes land in dst. The
			// merge proceeds (aborting mid-merge would strand the block);
			// the violation is recorded for the store's counters.
			s.checkCanary(raw, s.cfg.Classes[src.Class])
			if err := s.space.WriteAt(dst.SlotAddr(newSlot), raw); err != nil {
				panic(err)
			}
		}
		stSrc.meta.clear(idx)
		if err := src.FreeSlot(idx); err != nil {
			panic(err)
		}
		r.ObjectsCopied++
		copyCost += cpu.Copy(src.Stride) + cpu.MergePerObject
	}
	s.phase(opts, r, PhaseCopy, copyCost)

	// Remap src's vaddr (and attached aliases) onto dst's frames. This is
	// the RDMA-critical step: the NIC's MTT must be refreshed without
	// invalidating the r_keys clients hold (§3.5).
	dstFrames := dst.FrameList(s.space)
	pages := src.Pages

	aliasList := append([]uint64{src.VAddr}, stSrc.takeAliases()...)

	for _, vaddr := range aliasList {
		s.remapOne(vaddr, pages, dstFrames, opts, r)
		r.PagesRemapped += pages
	}

	// Bookkeeping: src is dissolved; its vaddr (and aliases) now resolve
	// to dst. The physical frames of src were released by the remap. Each
	// base's stripe is updated independently — safe because both blocks are
	// still compaction-locked, so a resolve racing these updates lands on a
	// retryable block whichever side of the swing it observes.
	sh := s.shard(src.VAddr)
	sh.mu.Lock()
	delete(sh.states, src)
	sh.mu.Unlock()
	for _, vaddr := range aliasList {
		ash := s.shard(vaddr)
		ash.mu.Lock()
		ash.aliases[vaddr] = stDst
		ash.mu.Unlock()
	}
	stDst.addAliases(aliasList)
	if h := stSrc.resH; h != nil {
		// src dissolves into an alias of dst: drop it from the eviction
		// clock before the dissolved flag lands, or a victim sweep could
		// unmap the alias mapping out from under dst's frames.
		s.res.Unregister(h)
	}
	s.proc.DropBlockKeepMapping(src)
	// DropBlockKeepMapping bypasses onReleaseBlock (the vaddr stays mapped
	// as an alias), but src's physical frames are gone — account for them
	// here or the live-block gauges only ever climb under compaction.
	cmBlocksLive.Dec()
	cmSlotsCapacity.Add(-int64(src.Slots))
	cmBytesLive.Add(-int64(s.cfg.BlockBytes))

	// Addresses with no live homed objects become reusable immediately.
	for _, vaddr := range aliasList {
		if vaddr == src.VAddr {
			if s.vt.dissolve(vaddr, pages) {
				s.releaseAlias(vaddr, pages)
			}
		}
		// Aliases other than src.VAddr were dissolved in earlier merges
		// and remain tracked until their homed objects disappear.
	}

	// Unlock. src is flagged dissolved before its compacting flag drops, so
	// an operation holding a stale stSrc reference always observes one of
	// the two and retries against the destination.
	if s.cfg.DataBacked {
		for _, idx := range dst.UsedSlots() {
			s.setLockState(stDst, idx, lockFree)
		}
	}
	stSrc.markDissolved()
	stSrc.setCompacting(false)
	stDst.setCompacting(false)
	s.phase(opts, r, PhaseUnlock, time.Duration(len(srcSlots))*cpu.LockPerObject)
	return true
}

// remapOne performs the virtual remapping of one block-base address onto
// new frames and restores NIC access per the configured strategy (§3.5).
func (s *Store) remapOne(vaddr uint64, pages int, frames []*mem.Frame, opts *CompactOptions, r *CompactReport) {
	nic := s.cfg.Model.NIC
	sh := s.shard(vaddr)
	sh.mu.RLock()
	region := sh.regions[vaddr]
	sh.mu.RUnlock()

	switch s.cfg.Remap {
	case RemapRereg:
		// Open the QP-breaking window, remap, refresh the MTT. The OnPhase
		// hook runs while the window is open so simulated concurrent
		// accesses genuinely break their QPs.
		if region != nil {
			s.nic.BeginRereg(region)
		}
		s.space.Remap(vaddr, frames)
		s.phase(opts, r, PhaseMmap, nic.MmapCost(pages))
		s.phase(opts, r, PhaseRereg, nic.Rereg(pages))
		if region != nil {
			if err := s.nic.EndRereg(region); err != nil {
				panic(err)
			}
		}
	case RemapODP:
		s.space.Remap(vaddr, frames)
		s.nic.Invalidate(vaddr, pages*mem.PageSize)
		s.phase(opts, r, PhaseMmap, nic.MmapCost(pages))
	case RemapODPPrefetch:
		s.space.Remap(vaddr, frames)
		s.nic.Invalidate(vaddr, pages*mem.PageSize)
		s.phase(opts, r, PhaseMmap, nic.MmapCost(pages))
		if region != nil {
			if _, err := s.nic.AdviseMR(vaddr, pages*mem.PageSize); err != nil {
				panic(err)
			}
		}
		s.phase(opts, r, PhaseAdvise, nic.AdviseMR)
	}
}

// setLockState rewrites the lock bits of a stored object header.
func (s *Store) setLockState(st *blockState, slot int, lock uint8) {
	base := st.SlotAddr(slot)
	line := make([]byte, headerBytes)
	if err := s.space.ReadAt(base, line); err != nil {
		return
	}
	h := decodeHeader(line)
	h.Lock = lock
	encodeHeader(line, h)
	s.space.WriteAt(base, line)
}
