package core

import (
	"math"
	"sort"
	"sync/atomic"

	"corm/internal/prob"
)

// Auto-labeling of size classes — the future-work direction sketched in
// §4.4's discussion: "users can tune object ID sizes for different
// size-classes, according to the specific workloads... We consider an
// auto-labeling strategy of class sizes as future work."
//
// The tuner watches per-class allocation behaviour and recommends, for
// each class, whether compaction is worth its metadata overhead and how
// many ID bits buy a useful compaction probability:
//
//   - hot classes (high allocation/free churn) keep their blocks densely
//     recycled and gain little from compaction — label them NoCompaction
//     and save the header bytes;
//   - cold, sparsely used classes fragment; pick the smallest ID width
//     whose analytic no-collision probability (§3.4) at the observed
//     occupancy clears a usefulness threshold.

// ClassLabel is the tuner's recommendation for one size class.
type ClassLabel struct {
	Class       int     // class index
	Size        int     // payload bytes
	Occupancy   float64 // mean live-object occupancy of the class's blocks
	Churn       float64 // frees per alloc (1.0 = perfectly recycled)
	IDBits      int     // recommended identifier width (0 = offsets suffice)
	Compact     bool    // whether compaction should manage this class
	Probability float64 // no-collision probability at the recommendation
}

// Hot reports whether the class is self-recycling — high churn at healthy
// occupancy. The same signal that makes adaptive compaction skip a class
// also marks its blocks as poor eviction victims for the tiering clock.
func (l ClassLabel) Hot() bool { return l.Churn >= hotChurn && l.Occupancy >= 0.5 }

// AutoTuner accumulates per-class allocation statistics. Counters are
// atomics: observations arrive concurrently from every worker thread once
// the tuner is attached to the store's alloc/free path (Store.AttachTuner),
// and snapshots race with them by design.
type AutoTuner struct {
	store  *Store
	allocs []atomic.Int64
	frees  []atomic.Int64
}

// NewAutoTuner builds a tuner over a store. Feed it with Observe* calls,
// or hand it to Store.AttachTuner to have every AllocOn/Free observed
// automatically (what the adaptive compaction policy expects).
func NewAutoTuner(s *Store) *AutoTuner {
	n := len(s.cfg.Classes)
	return &AutoTuner{store: s, allocs: make([]atomic.Int64, n), frees: make([]atomic.Int64, n)}
}

// ObserveAlloc records an allocation in a class. Safe for concurrent use.
func (a *AutoTuner) ObserveAlloc(class int) { a.allocs[class].Add(1) }

// ObserveFree records a free in a class. Safe for concurrent use.
func (a *AutoTuner) ObserveFree(class int) { a.frees[class].Add(1) }

// usefulProbability is the compaction probability below which managing a
// class is not worth the header bytes.
const usefulProbability = 0.10

// hotChurn is the frees-per-alloc ratio above which a class is considered
// self-recycling (allocation slots are reused before blocks strand).
const hotChurn = 0.9

// Snapshot computes recommendations from the observed counters and the
// allocator's current block population.
func (a *AutoTuner) Snapshot() []ClassLabel {
	cfg := a.store.cfg
	out := make([]ClassLabel, 0, len(cfg.Classes))
	for class, size := range cfg.Classes {
		slots := a.store.proc.Config().SlotsPerBlock(size)
		label := ClassLabel{Class: class, Size: size}
		if allocs := a.allocs[class].Load(); allocs > 0 {
			label.Churn = float64(a.frees[class].Load()) / float64(allocs)
		}
		blocks := a.store.proc.BlocksOfClass(class)
		if len(blocks) == 0 {
			out = append(out, label)
			continue
		}
		var occ float64
		for _, b := range blocks {
			occ += b.Occupancy()
		}
		occ /= float64(len(blocks))
		label.Occupancy = occ

		// Hot classes self-recycle: skip compaction, save the bytes.
		if label.Hot() {
			out = append(out, label)
			continue
		}

		b := int(occ*float64(slots) + 0.5)
		// Offsets (CoRM-0) might already be enough.
		if p := prob.NoCollision(slots, slots, b, b); p >= usefulProbability {
			label.Compact = true
			label.IDBits = 0
			label.Probability = p
			out = append(out, label)
			continue
		}
		// Otherwise the smallest ID width that clears the bar; 16 is the
		// widest the pointer format carries.
		for bits := 8; bits <= 16; bits++ {
			if slots > 1<<bits {
				continue
			}
			if p := prob.CoRM(bits, slots, b, b); p >= usefulProbability {
				label.Compact = true
				label.IDBits = bits
				label.Probability = p
				break
			}
		}
		out = append(out, label)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// OverheadSavings estimates the bytes/object saved versus labelling every
// class with fixed ID bits, weighted by live objects.
func (a *AutoTuner) OverheadSavings(fixedBits int) int64 {
	labels := a.Snapshot()
	var saved int64
	for _, l := range labels {
		frag := a.store.proc.Fragmentation(l.Class)
		liveObjs := int64(0)
		if stride := a.store.proc.Config().Stride(l.Size); stride > 0 {
			liveObjs = frag.UsedBytes / int64(stride)
		}
		fixed := int64(math.Ceil(float64(28+fixedBits) / 8))
		var chosen int64
		switch {
		case !l.Compact:
			chosen = 0
		case l.IDBits == 0:
			chosen = (28 + 7) / 8
		default:
			chosen = int64(math.Ceil(float64(28+l.IDBits) / 8))
		}
		if fixed > chosen {
			saved += liveObjs * (fixed - chosen)
		}
	}
	return saved
}
