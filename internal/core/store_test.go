package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"corm/internal/timing"
)

// testStore builds a data-backed CoRM store with small blocks.
func testStore(t *testing.T, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{
		Workers:    4,
		BlockBytes: 4096,
		Strategy:   StrategyCoRM,
		DataBacked: true,
		Remap:      RemapODPPrefetch,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
		Seed:       42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestAllocReadWriteFreeRoundtrip(t *testing.T) {
	s := testStore(t, nil)
	for _, size := range []int{8, 32, 64, 200, 1024, 2048} {
		res, err := s.AllocOn(0, size)
		if err != nil {
			t.Fatalf("alloc %d: %v", size, err)
		}
		addr := res.Addr
		payload := fill(size, byte(size))
		if err := s.Write(&addr, payload); err != nil {
			t.Fatalf("write %d: %v", size, err)
		}
		buf := make([]byte, s.ClassSize(int(addr.Class())))
		n, err := s.Read(&addr, buf)
		if err != nil {
			t.Fatalf("read %d: %v", size, err)
		}
		if !bytes.Equal(buf[:len(payload)], payload) {
			t.Fatalf("payload mismatch for size %d", size)
		}
		_ = n
		if err := s.Free(&addr); err != nil {
			t.Fatalf("free %d: %v", size, err)
		}
		if _, err := s.Read(&addr, buf); !errors.Is(err, ErrNotFound) {
			t.Fatalf("read after free: %v", err)
		}
	}
	st := s.Stats()
	if st.Allocs != 6 || st.Frees != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllocSizeClassRouting(t *testing.T) {
	s := testStore(t, nil)
	res, err := s.AllocOn(0, 33) // rounds up to the 48-byte class
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ClassSize(int(res.Addr.Class())); got != 48 {
		t.Fatalf("33B object in class %d, want 48", got)
	}
	if _, err := s.AllocOn(0, 1<<20); !errors.Is(err, ErrNoClass) {
		t.Fatalf("oversized alloc: %v", err)
	}
}

func TestRefillSignal(t *testing.T) {
	s := testStore(t, nil)
	res, _ := s.AllocOn(0, 64)
	if !res.Refilled {
		t.Fatal("first allocation must refill")
	}
	res, _ = s.AllocOn(0, 64)
	if res.Refilled {
		t.Fatal("second allocation must reuse the block")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	s := testStore(t, nil)
	res, _ := s.AllocOn(0, 64)
	a1, a2 := res.Addr, res.Addr
	if err := s.Free(&a1); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(&a2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double free: %v", err)
	}
}

func TestWriteBumpsVersion(t *testing.T) {
	s := testStore(t, nil)
	res, _ := s.AllocOn(0, 64)
	addr := res.Addr
	raw := make([]byte, dataStride(64))
	if err := s.Space().ReadAt(addr.VAddr(), raw); err != nil {
		t.Fatal(err)
	}
	v0 := decodeHeader(raw).Version
	for i := 0; i < 3; i++ {
		if err := s.Write(&addr, fill(64, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Space().ReadAt(addr.VAddr(), raw); err != nil {
		t.Fatal(err)
	}
	h := decodeHeader(raw)
	if h.Version != v0+3 {
		t.Fatalf("version = %d, want %d", h.Version, v0+3)
	}
	if h.Lock != lockFree {
		t.Fatal("object left locked after write")
	}
	if !versionsConsistent(raw) {
		t.Fatal("slot inconsistent after write")
	}
}

func TestStatsIndependentPerThread(t *testing.T) {
	s := testStore(t, nil)
	a, _ := s.AllocOn(0, 32)
	b, _ := s.AllocOn(1, 32)
	// Different threads allocate from different blocks.
	if s.blockBase(a.Addr.VAddr()) == s.blockBase(b.Addr.VAddr()) {
		t.Fatal("two threads share one block")
	}
}

func TestFragmentationPolicy(t *testing.T) {
	s := testStore(t, func(c *Config) { c.FragThreshold = 2.0 })
	class := 5 // 64 B
	if got := s.NeedsCompaction(); len(got) != 0 {
		t.Fatalf("fresh store needs compaction: %v", got)
	}
	var addrs []Addr
	for i := 0; i < 128; i++ {
		r, err := s.AllocOn(0, 64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, r.Addr)
	}
	// Free 80%: ratio rises above 2.
	for i := range addrs {
		if i%5 != 0 {
			if err := s.Free(&addrs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	found := false
	for _, c := range s.NeedsCompaction() {
		if s.ClassSize(c) == 64 {
			found = true
		}
	}
	if !found {
		t.Fatalf("class %d (64B) should need compaction: frag=%+v", class, s.Fragmentation(class))
	}
}

func TestDirectReadHappyPath(t *testing.T) {
	s := testStore(t, nil)
	res, _ := s.AllocOn(0, 128)
	addr := res.Addr
	payload := fill(128, 0x40)
	if err := s.Write(&addr, payload); err != nil {
		t.Fatal(err)
	}
	client := s.ConnectClient()
	buf := make([]byte, 128)
	cost, err := client.DirectRead(addr, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("one-sided read mismatch")
	}
	if cost.Latency <= 0 {
		t.Fatal("zero cost")
	}
	// Freed object fails the ID/alloc check.
	if err := s.Free(&addr); err != nil {
		t.Fatal(err)
	}
	if _, err := client.DirectRead(addr, buf); !errors.Is(err, ErrWrongObject) {
		t.Fatalf("read of freed object: %v", err)
	}
}

func TestDirectReadSeesRPCWrite(t *testing.T) {
	s := testStore(t, nil)
	res, _ := s.AllocOn(0, 2048)
	addr := res.Addr
	client := s.ConnectClient()
	buf := make([]byte, 2048)
	for round := 0; round < 3; round++ {
		payload := fill(2048, byte(round*7))
		if err := s.Write(&addr, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := client.DirectRead(addr, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("round %d: stale data", round)
		}
	}
}

func TestVaddrReuseAfterBlockDrain(t *testing.T) {
	s := testStore(t, nil)
	var addrs []Addr
	// Fill two blocks of the 64B class on one thread.
	per := s.Allocator().Config().SlotsPerBlock(64)
	for i := 0; i < per*2; i++ {
		r, _ := s.AllocOn(0, 64)
		addrs = append(addrs, r.Addr)
	}
	base0 := s.blockBase(addrs[0].VAddr())
	for i := 0; i < per; i++ {
		if err := s.Free(&addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The drained block's address must be reusable: allocate enough to
	// need a fresh block and observe the same base again.
	r, _ := s.AllocOn(0, 64)
	_ = r
	var got uint64
	for i := 0; i < per+1; i++ {
		rr, _ := s.AllocOn(0, 64)
		if s.blockBase(rr.Addr.VAddr()) == base0 {
			got = base0
		}
	}
	if got != base0 {
		t.Fatal("drained block vaddr was not reused")
	}
}

func TestReadIntoShortBuffer(t *testing.T) {
	s := testStore(t, nil)
	res, _ := s.AllocOn(0, 256)
	addr := res.Addr
	if _, err := s.Read(&addr, make([]byte, 10)); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short buffer: %v", err)
	}
	if err := s.Write(&addr, make([]byte, 500)); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("oversized write: %v", err)
	}
}

func TestInvalidAddressRejected(t *testing.T) {
	s := testStore(t, nil)
	bogus := MakeAddr(0xdead000, 1, 1, 1)
	if _, err := s.Read(&bogus, make([]byte, 16)); !errors.Is(err, ErrInvalidAddr) {
		t.Fatalf("bogus address: %v", err)
	}
}

func TestUniqueIDsWithinBlock(t *testing.T) {
	s := testStore(t, nil)
	per := s.Allocator().Config().SlotsPerBlock(8)
	seen := make(map[uint16]uint64)
	for i := 0; i < per; i++ {
		r, err := s.AllocOn(0, 8)
		if err != nil {
			t.Fatal(err)
		}
		base := s.blockBase(r.Addr.VAddr())
		key := r.Addr.ID()
		if prev, ok := seen[key]; ok && prev == base {
			t.Fatalf("duplicate ID %d within block %#x", key, base)
		}
		seen[key] = base
	}
}

func TestAccountingModeRejectsDataOps(t *testing.T) {
	s := testStore(t, func(c *Config) {
		c.DataBacked = false
		c.Remap = RemapRereg
		c.Model = timing.Default()
	})
	res, err := s.AllocOn(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	addr := res.Addr
	// Reads/writes succeed logically (size accounting) but carry no data.
	if _, err := s.Read(&addr, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if s.ActiveBytes() == 0 {
		t.Fatal("no active memory accounted")
	}
	if err := s.Free(&addr); err != nil {
		t.Fatal(err)
	}
}

func TestActiveBytesTracksBlocks(t *testing.T) {
	s := testStore(t, func(c *Config) {
		c.DataBacked = false
		c.Remap = RemapRereg
		c.Model = timing.Default()
		c.BlockBytes = 8192
	})
	if s.ActiveBytes() != 0 {
		t.Fatal("fresh store has active memory")
	}
	var addrs []Addr
	for i := 0; i < 100; i++ {
		r, _ := s.AllocOn(0, 1024)
		addrs = append(addrs, r.Addr)
	}
	before := s.ActiveBytes()
	if before == 0 {
		t.Fatal("no memory accounted")
	}
	for i := range addrs {
		s.Free(&addrs[i])
	}
	if after := s.ActiveBytes(); after >= before {
		t.Fatalf("active bytes did not drop: %d -> %d", before, after)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := NewStore(Config{Strategy: StrategyCoRM, IDBits: 17}); err == nil {
		t.Error("17 ID bits accepted")
	}
	// ODP remap on a CX-3 (no ODP) must be rejected.
	cfg := Config{Remap: RemapODP, Model: timing.Default()}
	if _, err := NewStore(cfg); err == nil {
		t.Error("ODP remap accepted on non-ODP NIC")
	}
}

func TestModelOverheadTable3(t *testing.T) {
	// Table 3: Mesh 0 bits, CoRM-0 28, CoRM-8 36, CoRM-12 40, CoRM-16 44.
	cases := []struct {
		cfg  Config
		want int // bytes
	}{
		{Config{Strategy: StrategyMesh}, 0},
		{Config{Strategy: StrategyNone}, 0},
		{Config{Strategy: StrategyCoRM0}, 4},            // ceil(28/8)
		{Config{Strategy: StrategyCoRM, IDBits: 8}, 5},  // ceil(36/8)
		{Config{Strategy: StrategyCoRM, IDBits: 12}, 5}, // ceil(40/8)
		{Config{Strategy: StrategyCoRM, IDBits: 16}, 6}, // ceil(44/8)
	}
	for i, c := range cases {
		cfg := c.cfg.withDefaults()
		if got := cfg.modelOverheadBytes(); got != c.want {
			t.Errorf("case %d (%v): overhead = %d, want %d", i, cfg.Strategy, got, c.want)
		}
	}
}

func TestClassStrategyHybrid(t *testing.T) {
	cfg := Config{Strategy: StrategyHybrid, IDBits: 8}.withDefaults()
	if got := cfg.classStrategy(256); got != StrategyCoRM {
		t.Errorf("256 slots with 8-bit IDs -> %v, want corm", got)
	}
	if got := cfg.classStrategy(257); got != StrategyCoRM0 {
		t.Errorf("257 slots with 8-bit IDs -> %v, want corm-0", got)
	}
	vanilla := Config{Strategy: StrategyCoRM, IDBits: 8}.withDefaults()
	if got := vanilla.classStrategy(257); got != StrategyNone {
		t.Errorf("vanilla CoRM oversized class -> %v, want none", got)
	}
}

func TestStoreStringers(t *testing.T) {
	for _, s := range []Strategy{StrategyNone, StrategyCoRM, StrategyCoRM0, StrategyMesh, StrategyHybrid} {
		if s.String() == "" || s.String() == fmt.Sprintf("strategy(%d)", int(s)) {
			t.Errorf("missing name for strategy %d", int(s))
		}
	}
	for _, r := range []RemapStrategy{RemapRereg, RemapODP, RemapODPPrefetch} {
		if r.String() == "" {
			t.Errorf("missing name for remap %d", int(r))
		}
	}
}
