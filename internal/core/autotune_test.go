package core

import (
	"testing"

	"corm/internal/timing"
)

func tunerStore(t *testing.T) (*Store, *AutoTuner) {
	t.Helper()
	s := testStore(t, func(c *Config) {
		c.DataBacked = false
		c.Remap = RemapRereg
		c.Model = timing.Default()
		c.BlockBytes = 1 << 20
	})
	return s, NewAutoTuner(s)
}

func TestAutoTunerHotClassSkipsCompaction(t *testing.T) {
	s, tuner := tunerStore(t)
	class := s.Allocator().Config().ClassFor(64)
	// Hot churn: every alloc is freed and the slots recycle.
	var last Addr
	for i := 0; i < 5000; i++ {
		r, err := s.AllocOn(0, 64)
		if err != nil {
			t.Fatal(err)
		}
		tuner.ObserveAlloc(class)
		if !last.IsZero() {
			if err := s.Free(&last); err != nil {
				t.Fatal(err)
			}
			tuner.ObserveFree(class)
		}
		last = r.Addr
	}
	labels := tuner.Snapshot()
	l := labels[class]
	if l.Churn < hotChurn {
		t.Fatalf("churn = %v, want near 1", l.Churn)
	}
	// One live object in one block -> occupancy is tiny; the hot rule only
	// fires with decent occupancy, so for this degenerate case compaction
	// may still be suggested. Load the block up and re-check.
	for i := 0; i < 10000; i++ {
		if _, err := s.AllocOn(0, 64); err != nil {
			t.Fatal(err)
		}
		tuner.ObserveAlloc(class)
	}
	l = tuner.Snapshot()[class]
	if l.Compact {
		t.Fatalf("hot, dense class labelled for compaction: %+v", l)
	}
}

func TestAutoTunerColdSparseClassGetsIDs(t *testing.T) {
	s, tuner := tunerStore(t)
	class := s.Allocator().Config().ClassFor(2048)
	// Allocation spike with few frees: blocks end up sparse.
	var addrs []Addr
	for i := 0; i < 2000; i++ {
		r, err := s.AllocOn(0, 2048)
		if err != nil {
			t.Fatal(err)
		}
		tuner.ObserveAlloc(class)
		addrs = append(addrs, r.Addr)
	}
	for i := range addrs {
		if i%10 != 0 { // leave 10% alive: high fragmentation, low churn? no: high frees
			if err := s.Free(&addrs[i]); err != nil {
				t.Fatal(err)
			}
			tuner.ObserveFree(class)
		}
	}
	// Churn is high here, but occupancy is low, so the hot rule must not
	// fire and an ID width should be recommended.
	l := tuner.Snapshot()[class]
	if !l.Compact {
		t.Fatalf("sparse class not labelled for compaction: %+v", l)
	}
	if l.Probability < usefulProbability {
		t.Fatalf("recommendation below usefulness bar: %+v", l)
	}
	// 1 MiB blocks of 2 KiB objects hold ~509 slots at ~10% occupancy:
	// offsets collide but modest ID widths succeed.
	if l.IDBits != 0 && (l.IDBits < 8 || l.IDBits > 16) {
		t.Fatalf("odd ID width: %+v", l)
	}
}

func TestAutoTunerUnusedClassNeutral(t *testing.T) {
	_, tuner := tunerStore(t)
	for _, l := range tuner.Snapshot() {
		if l.Compact || l.Occupancy != 0 {
			t.Fatalf("unused class got a recommendation: %+v", l)
		}
	}
}

func TestOverheadSavings(t *testing.T) {
	s, tuner := tunerStore(t)
	class := s.Allocator().Config().ClassFor(64)
	// A dense, hot class: the tuner skips compaction, saving the fixed
	// 6-byte CoRM-16 overhead per live object.
	for i := 0; i < 20000; i++ {
		if _, err := s.AllocOn(0, 64); err != nil {
			t.Fatal(err)
		}
		tuner.ObserveAlloc(class)
		tuner.ObserveFree(class) // pretend churn without freeing
	}
	if saved := tuner.OverheadSavings(16); saved <= 0 {
		t.Fatalf("expected positive savings, got %d", saved)
	}
}
