// Package stats provides the small measurement toolkit used by the
// experiment harnesses: latency samples with percentiles, time-bucketed
// throughput series (Fig 16), and plain-text table rendering for the
// figure/table regenerators.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Sample accumulates duration observations.
type Sample struct {
	vals []time.Duration
}

// Add appends an observation.
func (s *Sample) Add(d time.Duration) { s.vals = append(s.vals, d) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Median returns the 50th percentile, the paper's reported statistic.
func (s *Sample) Median() time.Duration { return s.Percentile(50) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.vals {
		sum += v
	}
	return sum / time.Duration(len(s.vals))
}

// Min and Max return the extremes.
func (s *Sample) Min() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func (s *Sample) Max() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Series is a time-bucketed event counter: the throughput-over-time plot
// of Fig 16.
type Series struct {
	bucket time.Duration
	counts []int64
}

// NewSeries creates a series with the given bucket width.
func NewSeries(bucket time.Duration) *Series {
	if bucket <= 0 {
		panic("stats: non-positive bucket")
	}
	return &Series{bucket: bucket}
}

// Record counts one event at time t (from series start).
func (s *Series) Record(t time.Duration) {
	idx := int(t / s.bucket)
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
	}
	s.counts[idx]++
}

// Buckets returns per-bucket rates in events/second.
func (s *Series) Buckets() []float64 {
	out := make([]float64, len(s.counts))
	for i, c := range s.counts {
		out[i] = float64(c) / s.bucket.Seconds()
	}
	return out
}

// BucketWidth returns the bucket duration.
func (s *Series) BucketWidth() time.Duration { return s.bucket }

// Table renders aligned plain-text tables for the figure regenerators.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2fus", float64(v)/float64(time.Microsecond))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100 || v == float64(int64(v)):
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// HumanBytes renders byte counts as GiB/MiB/KiB like the paper's figures.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// KReqPerSec renders a rate the way the paper's axes do (Kreq/sec).
func KReqPerSec(rate float64) string {
	return fmt.Sprintf("%.0f Kreq/s", rate/1000)
}
