package stats

import (
	"strings"
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	if m := s.Median(); m < 50*time.Microsecond || m > 51*time.Microsecond {
		t.Errorf("median = %v", m)
	}
	if p99 := s.Percentile(99); p99 != 100*time.Microsecond {
		t.Errorf("p99 = %v", p99)
	}
	if s.Min() != time.Microsecond || s.Max() != 100*time.Microsecond {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if mean := s.Mean(); mean != 50500*time.Nanosecond {
		t.Errorf("mean = %v", mean)
	}
	if s.N() != 100 {
		t.Errorf("n = %d", s.N())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Median() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should return zeros")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	var s Sample
	s.Add(3 * time.Microsecond)
	s.Add(1 * time.Microsecond)
	s.Add(2 * time.Microsecond)
	s.Median()
	if s.vals[0] != 3*time.Microsecond {
		t.Error("Percentile sorted the underlying sample")
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := NewSeries(100 * time.Millisecond)
	for i := 0; i < 50; i++ {
		s.Record(time.Duration(i) * 10 * time.Millisecond) // 0..490ms
	}
	b := s.Buckets()
	if len(b) != 5 {
		t.Fatalf("buckets = %d, want 5", len(b))
	}
	for i, rate := range b {
		if rate != 100 { // 10 events per 100ms bucket = 100/s
			t.Errorf("bucket %d rate = %v, want 100", i, rate)
		}
	}
}

func TestSeriesSparse(t *testing.T) {
	s := NewSeries(time.Second)
	s.Record(0)
	s.Record(3 * time.Second)
	b := s.Buckets()
	if len(b) != 4 || b[0] != 1 || b[1] != 0 || b[3] != 1 {
		t.Fatalf("buckets = %v", b)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "Fig X", Headers: []string{"size", "latency", "ratio"}}
	tb.AddRow(64, 1700*time.Nanosecond, 0.5)
	tb.AddRow(2048, 3800*time.Nanosecond, 1.0)
	out := tb.String()
	for _, want := range []string{"Fig X", "size", "1.70us", "3.80us", "0.5000", "2048"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2 << 10: "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestKReqPerSec(t *testing.T) {
	if got := KReqPerSec(380000); got != "380 Kreq/s" {
		t.Errorf("got %q", got)
	}
}
