package rnic

import "corm/internal/metrics"

// Registry mirrors of the per-NIC Stats counters, so fault behaviour shows
// up in /metrics and soak reports without plumbing NIC handles around.
// With several NICs in one process (the cluster harness) these aggregate
// across all of them; per-NIC numbers remain available via NIC.Stats.
var (
	rmReads        = metrics.Default().Counter("corm_rnic_reads_total", "one-sided RDMA reads")
	rmWrites       = metrics.Default().Counter("corm_rnic_writes_total", "one-sided RDMA writes")
	rmCacheHits    = metrics.Default().Counter("corm_rnic_cache_hits_total", "NIC translation cache hits")
	rmCacheMisses  = metrics.Default().Counter("corm_rnic_cache_misses_total", "NIC translation cache misses")
	rmODPFaults    = metrics.Default().Counter("corm_rnic_odp_faults_total", "ODP faults taken refreshing MTT entries")
	rmHostFaults   = metrics.Default().Counter("corm_rnic_host_faults_total", "host page-fault upcalls for evicted pages")
	rmQPBreaks     = metrics.Default().Counter("corm_rnic_qp_breaks_total", "queue pairs broken by access violations")
	rmStaleReads   = metrics.Default().Counter("corm_rnic_stale_reads_total", "accesses served from stale non-ODP translations")
	rmBytesRead    = metrics.Default().Counter("corm_rnic_bytes_read_total", "bytes moved by one-sided reads")
	rmBytesWritten = metrics.Default().Counter("corm_rnic_bytes_written_total", "bytes moved by one-sided writes")
)
