package rnic

import "testing"

func TestLRUBasics(t *testing.T) {
	c := newLRU(2)
	if c.touch(1) {
		t.Fatal("empty cache hit")
	}
	c.insert(1)
	c.insert(2)
	if !c.touch(1) || !c.touch(2) {
		t.Fatal("miss on resident entries")
	}
	// Insert 3: evicts the LRU, which is 1 (2 touched last)... touch order
	// above: 1 then 2, so 1 is LRU.
	c.insert(3)
	if c.touch(1) {
		t.Fatal("LRU entry not evicted")
	}
	if !c.touch(2) || !c.touch(3) {
		t.Fatal("resident entries evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestLRUTouchRefreshesRecency(t *testing.T) {
	c := newLRU(2)
	c.insert(1)
	c.insert(2)
	c.touch(1)  // 2 becomes LRU
	c.insert(3) // evicts 2
	if c.touch(2) {
		t.Fatal("recently-touched order ignored")
	}
	if !c.touch(1) {
		t.Fatal("refreshed entry evicted")
	}
}

func TestLRURemove(t *testing.T) {
	c := newLRU(4)
	c.insert(1)
	c.insert(2)
	c.remove(1)
	c.remove(99) // no-op
	if c.touch(1) {
		t.Fatal("removed entry still present")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0)
	if !c.touch(42) {
		t.Fatal("disabled cache must always hit")
	}
	c.insert(42)
	if c.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestLRUDoubleInsert(t *testing.T) {
	c := newLRU(2)
	c.insert(1)
	c.insert(1)
	if c.len() != 1 {
		t.Fatalf("duplicate insert grew the cache: %d", c.len())
	}
}
