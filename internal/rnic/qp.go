package rnic

import (
	"fmt"
	"time"

	"corm/internal/mem"
)

// QP is a reliable queue pair connected to a NIC. The paper uses reliable
// QPs exclusively, since they are the only type supporting one-sided reads.
// A QP enters the error state when it accesses an invalid key or touches a
// region during re-registration; it must be reconnected before further use,
// which costs milliseconds (§3.5).
type QP struct {
	nic    *NIC
	id     uint64
	broken bool
	closed bool

	// recvQ models two-sided Send/Recv delivery into this QP.
	recvQ [][]byte
}

// ReconnectLatency is the recovery cost after a QP break (§3.5: "can take
// few milliseconds").
const ReconnectLatency = 3 * time.Millisecond

// Connect creates a reliable QP attached to the NIC. The QP occupies a
// slot in the NIC's QP table until Close is called.
func (n *NIC) Connect() *QP {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextQP++
	qp := &QP{nic: n, id: n.nextQP}
	n.qps[qp.id] = qp
	return qp
}

// Close destroys the QP, releasing its slot in the NIC's QP table
// (ibv_destroy_qp). A closed QP is permanently in the error state.
func (qp *QP) Close() {
	qp.nic.mu.Lock()
	defer qp.nic.mu.Unlock()
	qp.broken = true
	qp.closed = true
	delete(qp.nic.qps, qp.id)
}

// Broken reports whether the QP is in the error state.
func (qp *QP) Broken() bool {
	qp.nic.mu.Lock()
	defer qp.nic.mu.Unlock()
	return qp.broken
}

// Reconnect restores a broken QP. The returned cost reflects connection
// re-establishment. A closed QP cannot be reconnected.
func (qp *QP) Reconnect() Cost {
	qp.nic.mu.Lock()
	defer qp.nic.mu.Unlock()
	if !qp.closed {
		qp.broken = false
	}
	return Cost{Latency: ReconnectLatency}
}

func (qp *QP) breakLocked() {
	qp.broken = true
	qp.nic.stats.QPBreaks++
	rmQPBreaks.Add(1)
}

// checkAccessLocked validates the key and region state, breaking the QP on
// violation per the InfiniBand error semantics.
func (qp *QP) checkAccessLocked(rkey uint32, vaddr uint64, length int) (*Region, error) {
	if qp.broken {
		return nil, ErrQPBroken
	}
	r, ok := qp.nic.regions[rkey]
	if !ok || !r.valid {
		qp.breakLocked()
		return nil, ErrInvalidKey
	}
	if !r.Contains(vaddr, length) {
		qp.breakLocked()
		return nil, ErrOutOfBounds
	}
	if r.reregging {
		// Access during ibv_rereg_mr: connection breaks (§3.5).
		qp.breakLocked()
		return nil, fmt.Errorf("%w: region under re-registration", ErrQPBroken)
	}
	return r, nil
}

// Read performs a one-sided RDMA read of len(buf) bytes at vaddr through
// the NIC's MTT, bypassing the host CPU and OS page tables entirely. The
// returned cost includes wire, engine, cache and ODP components.
func (qp *QP) Read(rkey uint32, vaddr uint64, buf []byte) (Cost, error) {
	return qp.access(rkey, vaddr, buf, false)
}

// Write performs a one-sided RDMA write of buf at vaddr.
func (qp *QP) Write(rkey uint32, vaddr uint64, buf []byte) (Cost, error) {
	return qp.access(rkey, vaddr, buf, true)
}

func (qp *QP) access(rkey uint32, vaddr uint64, buf []byte, write bool) (Cost, error) {
	n := qp.nic
	n.mu.Lock()
	r, err := qp.checkAccessLocked(rkey, vaddr, len(buf))
	if err != nil {
		n.mu.Unlock()
		return Cost{}, err
	}
	cost := Cost{
		Latency: n.Model.ReadRTT(len(buf)),
		Engine:  n.Model.EngineTime(len(buf)),
	}
	if write {
		cost.Latency += n.Model.WritePerOp
		n.stats.Writes++
		n.stats.BytesWritten += int64(len(buf))
		rmWrites.Add(1)
		rmBytesWritten.Add(int64(len(buf)))
	} else {
		n.stats.Reads++
		n.stats.BytesRead += int64(len(buf))
		rmReads.Add(1)
		rmBytesRead.Add(int64(len(buf)))
	}

	// Resolve frames page by page while holding the NIC lock, then do the
	// DMA copies outside it (frame access has its own page locks).
	type chunk struct {
		frame *mem.Frame
		off   int
		lo    int
		n     int
	}
	// Object-stride reads span one page, block reads a handful; the inline
	// backing keeps the common cases off the heap (a 1 MiB scan still
	// spills, which is fine — it pays for itself).
	var inline [8]chunk
	chunks := inline[:0]
	done := 0
	// A long access can cross several evicted blocks; each host fault makes
	// progress, but a block can in principle be re-evicted under extreme
	// pressure before the retry, so the budget has headroom beyond one
	// fault per page.
	faultBudget := len(buf)/mem.PageSize + 8
	for done < len(buf) {
		addr := vaddr + uint64(done)
		vp := addr >> mem.PageShift
		off := int(addr & (mem.PageSize - 1))
		f, c, terr := n.translateLocked(vp, r)
		cost = cost.add(c)
		if terr != nil {
			if terr == errNeedHostFault && faultBudget > 0 {
				// The page's block is evicted: release the NIC lock, let the
				// host fault it in (which may call back into AdviseMR or
				// Invalidate), then revalidate and retry this page.
				faultBudget--
				handler := n.faultHandler
				n.stats.HostFaults++
				rmHostFaults.Add(1)
				n.mu.Unlock()
				herr := handler(addr)
				n.mu.Lock()
				if herr != nil {
					n.mu.Unlock()
					return cost, fmt.Errorf("%w: page %#x: host fault: %v", ErrUnmapped, addr, herr)
				}
				if r, err = qp.checkAccessLocked(rkey, vaddr, len(buf)); err != nil {
					n.mu.Unlock()
					return cost, err
				}
				continue
			}
			if terr == errNeedHostFault {
				terr = fmt.Errorf("%w: page %#x: host fault budget exhausted", ErrUnmapped, addr)
			}
			n.mu.Unlock()
			return cost, terr
		}
		sz := mem.PageSize - off
		if sz > len(buf)-done {
			sz = len(buf) - done
		}
		chunks = append(chunks, chunk{frame: f, off: off, lo: done, n: sz})
		done += sz
	}
	n.mu.Unlock()

	for _, c := range chunks {
		if write {
			c.frame.WriteBytes(c.off, buf[c.lo:c.lo+c.n])
		} else {
			c.frame.ReadBytes(c.off, buf[c.lo:c.lo+c.n])
		}
	}
	return cost, nil
}

// Send delivers a message to the peer QP's receive queue (two-sided verb).
// The RPC layer of the simulation uses this to model Send/Recv transport.
func (qp *QP) Send(peer *QP, msg []byte) (Cost, error) {
	n := qp.nic
	n.mu.Lock()
	defer n.mu.Unlock()
	if qp.broken {
		return Cost{}, ErrQPBroken
	}
	m := make([]byte, len(msg))
	copy(m, msg)
	peer.recvQ = append(peer.recvQ, m)
	return Cost{Latency: n.Model.SendRecvBase / 2}, nil
}

// Recv pops the oldest delivered message, if any.
func (qp *QP) Recv() ([]byte, bool) {
	n := qp.nic
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(qp.recvQ) == 0 {
		return nil, false
	}
	m := qp.recvQ[0]
	qp.recvQ = qp.recvQ[1:]
	return m, true
}
