package rnic

import "container/list"

// lruCache models the NIC's bounded on-chip cache of MTT entries. Real
// RNICs keep the full MTT in host memory and cache recently used
// translations; a miss costs an extra PCIe round trip. Capacity 0 disables
// the model (every access hits).
type lruCache struct {
	cap   int
	order *list.List
	items map[uint64]*list.Element
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[uint64]*list.Element),
	}
}

// touch reports whether vp is cached, refreshing its recency.
func (c *lruCache) touch(vp uint64) bool {
	if c.cap <= 0 {
		return true
	}
	e, ok := c.items[vp]
	if !ok {
		return false
	}
	c.order.MoveToFront(e)
	return true
}

// insert adds vp, evicting the least recently used entry when full.
func (c *lruCache) insert(vp uint64) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.items[vp]; ok {
		c.order.MoveToFront(e)
		return
	}
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(uint64))
	}
	c.items[vp] = c.order.PushFront(vp)
}

// remove drops vp from the cache (entry invalidated).
func (c *lruCache) remove(vp uint64) {
	if e, ok := c.items[vp]; ok {
		c.order.Remove(e)
		delete(c.items, vp)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
