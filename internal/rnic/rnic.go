// Package rnic simulates an RDMA-capable network interface card.
//
// The NIC keeps its own Memory Translation Table (MTT): a snapshot of
// virtual-to-physical page translations taken at memory-registration time,
// exactly as described in §2.2.1 of the paper. One-sided reads and writes
// go through the MTT, *not* through the OS page table — so if the host
// remaps a page (compaction) without refreshing the NIC, the NIC keeps
// accessing the old physical frame. CoRM's three remap strategies (§3.5)
// are reproduced:
//
//   - Rereg: ibv_rereg_mr refreshes the MTT but opens a window during
//     which any access through the region breaks the QP (InfiniBand spec
//     behaviour the authors observed);
//   - ODP: MTT entries are invalidated on remap; the next access takes an
//     ODP fault, refreshing the entry from the OS at a ~63 µs cost;
//   - ODP+prefetch: ibv_advise_mr installs fresh entries ahead of time.
//
// The NIC also models the bounded translation cache real RNICs have: an
// LRU over page translations whose misses add latency and inbound-engine
// occupancy. This is what makes Zipf workloads faster than uniform ones
// (Fig 12) and fragmented memory slower than compacted memory (Fig 14).
//
// The package is time-free: operations return a Cost breakdown that the
// discrete-event simulation charges to its virtual clock; the TCP mode
// simply ignores costs.
package rnic

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"corm/internal/mem"
	"corm/internal/timing"
)

// Errors returned by verb operations.
var (
	ErrInvalidKey  = errors.New("rnic: invalid rkey")
	ErrOutOfBounds = errors.New("rnic: access outside registered region")
	ErrQPBroken    = errors.New("rnic: queue pair in error state")
	ErrUnmapped    = errors.New("rnic: MTT entry missing (page never registered)")
	ErrNoODP       = errors.New("rnic: device has no ODP support")
)

// Cost is the timing breakdown of one NIC operation. Latency is the
// critical-path contribution; Engine is inbound-engine occupancy, which
// bounds aggregate throughput.
type Cost struct {
	Latency   time.Duration
	Engine    time.Duration
	CacheMiss bool
	ODPFault  bool
}

func (c Cost) add(o Cost) Cost {
	return Cost{
		Latency:   c.Latency + o.Latency,
		Engine:    c.Engine + o.Engine,
		CacheMiss: c.CacheMiss || o.CacheMiss,
		ODPFault:  c.ODPFault || o.ODPFault,
	}
}

// mttEntry is the NIC's snapshot of one page translation.
type mttEntry struct {
	frame *mem.Frame
	gen   uint64
}

// Region is a registered memory region with its access keys.
type Region struct {
	LKey, RKey uint32
	Base       uint64
	Len        int
	ODP        bool

	// reregging marks an ibv_rereg_mr in progress: accesses break the QP.
	reregging bool
	valid     bool
}

// Contains reports whether [vaddr, vaddr+n) lies inside the region.
func (r *Region) Contains(vaddr uint64, n int) bool {
	return vaddr >= r.Base && vaddr+uint64(n) <= r.Base+uint64(r.Len)
}

// Stats aggregates NIC counters.
type Stats struct {
	Reads, Writes int64
	CacheHits     int64
	CacheMisses   int64
	ODPFaults     int64
	QPBreaks      int64
	StaleReads    int64 // reads served from a stale (non-ODP) translation
	HostFaults    int64 // accesses that invoked the host page-fault handler
	BytesRead     int64
	BytesWritten  int64
}

// NIC is a simulated RDMA card attached to one host address space.
type NIC struct {
	Model timing.NIC

	mu      sync.Mutex
	space   *mem.AddrSpace
	regions map[uint32]*Region
	mtt     map[uint64]mttEntry
	cache   *lruCache
	nextKey uint32
	nextQP  uint64
	qps     map[uint64]*QP // live (connected, unclosed) queue pairs
	stats   Stats

	// faultHandler, when set, is the host's page-fault upcall: a one-sided
	// access to a page that is not live in the OS page table (an evicted
	// block, under elastic memory) invokes it — with n.mu released — to
	// fault the backing block in, then retries the translation. This is
	// the simulated counterpart of ODP's kernel fault handler resolving a
	// non-present page before the NIC retries the DMA.
	faultHandler func(vaddr uint64) error
}

// New creates a NIC over the given address space with the given model.
func New(space *mem.AddrSpace, model timing.NIC) *NIC {
	return &NIC{
		Model:   model,
		space:   space,
		regions: make(map[uint32]*Region),
		mtt:     make(map[uint64]mttEntry),
		cache:   newLRU(model.MTTCacheEntries),
		qps:     make(map[uint64]*QP),
	}
}

// LiveQPs reports how many connected queue pairs have not been closed —
// a real RNIC has a bounded QP table, so leaked QPs are a resource bug.
func (n *NIC) LiveQPs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.qps)
}

// BreakAllQPs forces every live QP into the error state, modeling a fabric
// event (link flap, switch reset) that kills all connections at once. Fault
// injection uses this to exercise reconnect paths deterministically.
func (n *NIC) BreakAllQPs() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, qp := range n.qps {
		if !qp.broken {
			qp.breakLocked()
		}
	}
}

// Space returns the host address space the NIC is attached to.
func (n *NIC) Space() *mem.AddrSpace { return n.space }

// SetPageFaultHandler installs the host upcall used when an ODP access
// touches a page with no live OS translation (see NIC.faultHandler). The
// handler runs without NIC locks held and may call back into the NIC
// (AdviseMR, Invalidate).
func (n *NIC) SetPageFaultHandler(h func(vaddr uint64) error) {
	n.mu.Lock()
	n.faultHandler = h
	n.mu.Unlock()
}

// errNeedHostFault is an internal sentinel from translateLocked: the page
// is not live in the OS page table and a fault handler is installed, so
// the caller must release n.mu, invoke the handler, and retry.
var errNeedHostFault = errors.New("rnic: host page fault required")

// Stats returns a snapshot of the NIC counters.
func (n *NIC) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the counters (between experiment phases).
func (n *NIC) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

// Register registers [base, base+length) for remote access, snapshotting
// the page translations into the MTT (pinning, in the real system). odp
// selects on-demand paging for the region.
func (n *NIC) Register(base uint64, length int, odp bool) (*Region, error) {
	if odp && !n.Model.HasODP {
		return nil, ErrNoODP
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextKey++
	r := &Region{
		LKey:  n.nextKey,
		RKey:  n.nextKey | 0x8000_0000,
		Base:  base,
		Len:   length,
		ODP:   odp,
		valid: true,
	}
	if err := n.snapshotLocked(base, length); err != nil {
		return nil, err
	}
	n.regions[r.RKey] = r
	return r, nil
}

// snapshotLocked copies OS translations for a range into the MTT.
func (n *NIC) snapshotLocked(base uint64, length int) error {
	first := base >> mem.PageShift
	last := (base + uint64(length) - 1) >> mem.PageShift
	for vp := first; vp <= last; vp++ {
		f, gen, ok := n.space.TranslateEntry(vp << mem.PageShift)
		if !ok {
			return fmt.Errorf("%w: page %#x", ErrUnmapped, vp<<mem.PageShift)
		}
		n.mtt[vp] = mttEntry{frame: f, gen: gen}
	}
	return nil
}

// Deregister removes a region and its MTT entries.
func (n *NIC) Deregister(r *Region) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r.valid = false
	delete(n.regions, r.RKey)
	first := r.Base >> mem.PageShift
	last := (r.Base + uint64(r.Len) - 1) >> mem.PageShift
	for vp := first; vp <= last; vp++ {
		delete(n.mtt, vp)
		n.cache.remove(vp)
	}
}

// BeginRereg starts an ibv_rereg_mr on the region: until EndRereg, any
// access through it breaks the issuing QP (observed ConnectX behaviour,
// §3.5 strategy 1). The DES holds the window open for Model.Rereg(pages).
func (n *NIC) BeginRereg(r *Region) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r.reregging = true
}

// EndRereg completes the re-registration: the MTT is refreshed from the OS
// page table and the keys are preserved.
func (n *NIC) EndRereg(r *Region) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	r.reregging = false
	return n.snapshotLocked(r.Base, r.Len)
}

// Invalidate marks the MTT entries for a page range invalid, as the OS MMU
// notifier does for ODP regions when their mapping changes. The next access
// takes an ODP fault. For non-ODP regions this models nothing happening:
// the stale snapshot stays (the dangerous case).
func (n *NIC) Invalidate(base uint64, length int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	first := base >> mem.PageShift
	last := (base + uint64(length) - 1) >> mem.PageShift
	for vp := first; vp <= last; vp++ {
		if r := n.regionForLocked(vp << mem.PageShift); r != nil && r.ODP {
			delete(n.mtt, vp)
			n.cache.remove(vp)
		}
	}
}

// AdviseMR prefetches fresh translations for a range of an ODP region
// (ibv_advise_mr), avoiding the fault on the next access.
func (n *NIC) AdviseMR(base uint64, length int) (Cost, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.regionForLocked(base)
	if r == nil {
		return Cost{}, ErrOutOfBounds
	}
	if !r.ODP {
		return Cost{}, ErrNoODP
	}
	if err := n.snapshotLocked(base, length); err != nil {
		return Cost{}, err
	}
	return Cost{Latency: n.Model.AdviseMR}, nil
}

func (n *NIC) regionForLocked(vaddr uint64) *Region {
	for _, r := range n.regions {
		if r.Contains(vaddr, 1) {
			return r
		}
	}
	return nil
}

// translate resolves one page through the MTT, applying cache, ODP and
// staleness semantics. Callers hold n.mu.
func (n *NIC) translateLocked(vp uint64, r *Region) (*mem.Frame, Cost, error) {
	var cost Cost
	if n.cache.touch(vp) {
		n.stats.CacheHits++
		rmCacheHits.Add(1)
	} else {
		n.stats.CacheMisses++
		rmCacheMisses.Add(1)
		cost.CacheMiss = true
		cost.Latency += n.Model.MTTMissLatency
		cost.Engine += n.Model.MTTMissEngine
		n.cache.insert(vp)
	}
	e, ok := n.mtt[vp]
	if ok && r.ODP {
		// ODP regions stay coherent with the OS: a generation change is
		// detected as an invalidation even if the MMU notifier callback
		// (Invalidate) was not explicitly delivered.
		if _, gen, live := n.space.TranslateEntry(vp << mem.PageShift); !live || gen != e.gen {
			ok = false
		}
	}
	if !ok {
		if !r.ODP {
			return nil, cost, fmt.Errorf("%w: page %#x", ErrUnmapped, vp<<mem.PageShift)
		}
		// ODP fault: fetch the current translation from the OS.
		f, gen, live := n.space.TranslateEntry(vp << mem.PageShift)
		if !live {
			if n.faultHandler != nil {
				// Evicted block: the host must fault it in first.
				return nil, cost, errNeedHostFault
			}
			return nil, cost, fmt.Errorf("%w: page %#x", ErrUnmapped, vp<<mem.PageShift)
		}
		n.mtt[vp] = mttEntry{frame: f, gen: gen}
		n.stats.ODPFaults++
		rmODPFaults.Add(1)
		cost.ODPFault = true
		cost.Latency += n.Model.ODPMiss
		return f, cost, nil
	}
	if !r.ODP {
		// Staleness accounting: the NIC can't know, but tests can.
		if _, gen, live := n.space.TranslateEntry(vp << mem.PageShift); live && gen != e.gen {
			n.stats.StaleReads++
			rmStaleReads.Add(1)
		}
	}
	return e.frame, cost, nil
}
