package rnic

import (
	"bytes"
	"errors"
	"testing"

	"corm/internal/mem"
	"corm/internal/timing"
)

func newHost(t *testing.T, model timing.NIC) (*mem.Phys, *mem.AddrSpace, *NIC) {
	t.Helper()
	p := mem.NewPhys(true)
	s := mem.NewAddrSpace(p)
	return p, s, New(s, model)
}

// mapBlock reserves, maps, and fills a block; returns its vaddr.
func mapBlock(p *mem.Phys, s *mem.AddrSpace, pages int, fill byte) uint64 {
	v := s.ReserveBlock(pages)
	frames := p.Alloc(pages)
	s.Map(v, frames)
	buf := make([]byte, pages*mem.PageSize)
	for i := range buf {
		buf[i] = fill
	}
	if err := s.WriteAt(v, buf); err != nil {
		panic(err)
	}
	return v
}

func TestRegisterAndRead(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 1, 0x5A)
	r, err := n.Register(v, mem.PageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.LKey == 0 || r.RKey == 0 || r.LKey == r.RKey {
		t.Fatalf("bad keys: l=%d r=%d", r.LKey, r.RKey)
	}
	qp := n.Connect()
	buf := make([]byte, 64)
	cost, err := qp.Read(r.RKey, v+128, buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0x5A {
			t.Fatal("read wrong data")
		}
	}
	if cost.Latency < n.Model.ReadBase {
		t.Fatalf("cost.Latency = %v below base", cost.Latency)
	}
	st := n.Stats()
	if st.Reads != 1 || st.BytesRead != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReadCrossPage(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 2, 0)
	want := make([]byte, 256)
	for i := range want {
		want[i] = byte(i)
	}
	if err := s.WriteAt(v+mem.PageSize-100, want); err != nil {
		t.Fatal(err)
	}
	r, _ := n.Register(v, 2*mem.PageSize, false)
	qp := n.Connect()
	got := make([]byte, 256)
	if _, err := qp.Read(r.RKey, v+mem.PageSize-100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cross-page one-sided read mismatch")
	}
}

func TestOneSidedWrite(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 1, 0)
	r, _ := n.Register(v, mem.PageSize, false)
	qp := n.Connect()
	if _, err := qp.Write(r.RKey, v+8, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := s.ReadAt(v+8, got); err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("host does not see one-sided write: %v %v", got, err)
	}
}

func TestInvalidKeyBreaksQP(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 1, 0)
	n.Register(v, mem.PageSize, false)
	qp := n.Connect()
	if _, err := qp.Read(0xDEAD, v, make([]byte, 8)); !errors.Is(err, ErrInvalidKey) {
		t.Fatalf("err = %v, want ErrInvalidKey", err)
	}
	if !qp.Broken() {
		t.Fatal("QP must break on invalid key")
	}
	// Further access fails until reconnect.
	r2, _ := n.Register(v, mem.PageSize, false)
	if _, err := qp.Read(r2.RKey, v, make([]byte, 8)); !errors.Is(err, ErrQPBroken) {
		t.Fatalf("broken QP accepted work: %v", err)
	}
	c := qp.Reconnect()
	if c.Latency < ReconnectLatency {
		t.Fatal("reconnect should cost milliseconds")
	}
	if _, err := qp.Read(r2.RKey, v, make([]byte, 8)); err != nil {
		t.Fatalf("read after reconnect: %v", err)
	}
	if n.Stats().QPBreaks != 1 {
		t.Fatalf("QPBreaks = %d", n.Stats().QPBreaks)
	}
}

func TestOutOfBoundsBreaksQP(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 1, 0)
	r, _ := n.Register(v, mem.PageSize, false)
	qp := n.Connect()
	if _, err := qp.Read(r.RKey, v+mem.PageSize-4, make([]byte, 8)); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("err = %v, want ErrOutOfBounds", err)
	}
	if !qp.Broken() {
		t.Fatal("QP must break on out-of-bounds access")
	}
}

// The core hazard of §2.2.1: remapping a page without telling the NIC makes
// one-sided reads return data from the *old* physical frame.
func TestStaleMTTReadsOldFrame(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	vSrc := mapBlock(p, s, 1, 0xAA)
	vDst := mapBlock(p, s, 1, 0xBB)
	rSrc, _ := n.Register(vSrc, mem.PageSize, false)
	n.Register(vDst, mem.PageSize, false)

	// Compaction: source vaddr now aliases the destination frame.
	dstFrame, _, _ := s.Translate(vDst)
	s.Remap(vSrc, []*mem.Frame{dstFrame})

	qp := n.Connect()
	buf := make([]byte, 8)
	if _, err := qp.Read(rSrc.RKey, vSrc, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAA {
		t.Fatalf("expected stale data 0xAA from old frame, got %#x", buf[0])
	}
	if n.Stats().StaleReads == 0 {
		t.Fatal("stale read not accounted")
	}

	// After an explicit rereg, reads see the new frame.
	n.BeginRereg(rSrc)
	if err := n.EndRereg(rSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := qp.Read(rSrc.RKey, vSrc, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xBB {
		t.Fatalf("expected fresh data 0xBB after rereg, got %#x", buf[0])
	}
}

func TestAccessDuringReregBreaksQP(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 1, 1)
	r, _ := n.Register(v, mem.PageSize, false)
	qp := n.Connect()
	n.BeginRereg(r)
	if _, err := qp.Read(r.RKey, v, make([]byte, 8)); !errors.Is(err, ErrQPBroken) {
		t.Fatalf("err = %v, want QP break during rereg", err)
	}
	if !qp.Broken() {
		t.Fatal("QP should be broken")
	}
	n.EndRereg(r)
	qp.Reconnect()
	if _, err := qp.Read(r.RKey, v, make([]byte, 8)); err != nil {
		t.Fatalf("read after rereg window: %v", err)
	}
}

func TestODPFaultAfterRemap(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX5())
	vSrc := mapBlock(p, s, 1, 0xAA)
	vDst := mapBlock(p, s, 1, 0xBB)
	r, err := n.Register(vSrc, mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	qp := n.Connect()
	buf := make([]byte, 8)

	// Warm access: no fault.
	c, err := qp.Read(r.RKey, vSrc, buf)
	if err != nil || c.ODPFault {
		t.Fatalf("unexpected fault on first read: %+v %v", c, err)
	}

	dstFrame, _, _ := s.Translate(vDst)
	s.Remap(vSrc, []*mem.Frame{dstFrame})

	// ODP keeps the NIC coherent: the read faults, then returns new data.
	c, err = qp.Read(r.RKey, vSrc, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.ODPFault {
		t.Fatal("expected ODP fault after remap")
	}
	if c.Latency < n.Model.ODPMiss {
		t.Fatalf("fault cost %v < ODPMiss %v", c.Latency, n.Model.ODPMiss)
	}
	if buf[0] != 0xBB {
		t.Fatalf("ODP read returned stale data %#x", buf[0])
	}
	// Subsequent reads are cheap again.
	c, err = qp.Read(r.RKey, vSrc, buf)
	if err != nil || c.ODPFault {
		t.Fatalf("second read should not fault: %+v %v", c, err)
	}
	if n.Stats().ODPFaults != 1 {
		t.Fatalf("ODPFaults = %d", n.Stats().ODPFaults)
	}
}

func TestAdvisePrefetchAvoidsFault(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX5())
	vSrc := mapBlock(p, s, 1, 0xAA)
	vDst := mapBlock(p, s, 1, 0xBB)
	r, _ := n.Register(vSrc, mem.PageSize, true)
	qp := n.Connect()

	dstFrame, _, _ := s.Translate(vDst)
	s.Remap(vSrc, []*mem.Frame{dstFrame})
	n.Invalidate(vSrc, mem.PageSize)

	c, err := n.AdviseMR(vSrc, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if c.Latency != n.Model.AdviseMR {
		t.Fatalf("advise cost = %v", c.Latency)
	}
	buf := make([]byte, 8)
	c, err = qp.Read(r.RKey, vSrc, buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.ODPFault {
		t.Fatal("prefetched access must not fault")
	}
	if buf[0] != 0xBB {
		t.Fatalf("prefetched read stale: %#x", buf[0])
	}
}

func TestODPRequiresCapability(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 1, 0)
	if _, err := n.Register(v, mem.PageSize, true); !errors.Is(err, ErrNoODP) {
		t.Fatalf("CX-3 accepted ODP registration: %v", err)
	}
	r, _ := n.Register(v, mem.PageSize, false)
	if _, err := n.AdviseMR(v, mem.PageSize); !errors.Is(err, ErrNoODP) {
		t.Fatalf("advise on non-ODP region: %v", err)
	}
	_ = r
}

func TestTranslationCacheMisses(t *testing.T) {
	model := timing.ConnectX3()
	model.MTTCacheEntries = 2
	p, s, n := newHost(t, model)
	v := mapBlock(p, s, 4, 0)
	r, _ := n.Register(v, 4*mem.PageSize, false)
	qp := n.Connect()
	buf := make([]byte, 8)

	// Touch 3 distinct pages round-robin: with capacity 2 every access
	// misses after the first round.
	for round := 0; round < 3; round++ {
		for pg := 0; pg < 3; pg++ {
			if _, err := qp.Read(r.RKey, v+uint64(pg)*mem.PageSize, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := n.Stats()
	if st.CacheHits != 0 {
		t.Fatalf("LRU thrash should have 0 hits, got %d", st.CacheHits)
	}
	if st.CacheMisses != 9 {
		t.Fatalf("misses = %d, want 9", st.CacheMisses)
	}

	// Repeated access to one page hits.
	n.ResetStats()
	for i := 0; i < 5; i++ {
		qp.Read(r.RKey, v, buf)
	}
	st = n.Stats()
	if st.CacheHits < 4 {
		t.Fatalf("hits = %d, want >=4", st.CacheHits)
	}
}

func TestDeregisterInvalidatesKey(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 1, 0)
	r, _ := n.Register(v, mem.PageSize, false)
	n.Deregister(r)
	qp := n.Connect()
	if _, err := qp.Read(r.RKey, v, make([]byte, 8)); !errors.Is(err, ErrInvalidKey) {
		t.Fatalf("read through deregistered key: %v", err)
	}
}

func TestRegisterUnmappedFails(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	_ = p
	v := s.ReserveBlock(1) // reserved but never mapped
	if _, err := n.Register(v, mem.PageSize, false); err == nil {
		t.Fatal("registering unmapped memory should fail")
	}
}

func TestSendRecv(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	_, _ = p, s
	a, b := n.Connect(), n.Connect()
	if _, err := a.Send(b, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, ok := b.Recv()
	if !ok || string(msg) != "ping" {
		t.Fatalf("recv = %q %v", msg, ok)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestEngineCostGrowsWithSize(t *testing.T) {
	p, s, n := newHost(t, timing.ConnectX3())
	v := mapBlock(p, s, 2, 0)
	r, _ := n.Register(v, 2*mem.PageSize, false)
	qp := n.Connect()
	small, _ := qp.Read(r.RKey, v, make([]byte, 8))
	large, _ := qp.Read(r.RKey, v, make([]byte, 4096))
	if large.Engine <= small.Engine || large.Latency <= small.Latency {
		t.Fatalf("costs must grow with size: %+v vs %+v", small, large)
	}
}
