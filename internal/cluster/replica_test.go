// Tests for the pool-level ReplicaSet API (raw k-copy objects without
// the KV index) and for the replicated batch put path.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// tripBreaker hammers a killed node with reads until its breaker opens.
func tripBreaker(t *testing.T, pool *Pool, victim int) {
	t.Helper()
	g := GlobalAddr{Node: victim}
	buf := make([]byte, 8)
	for i := 0; i < pool.FailThreshold*4 && !pool.NodeDown(victim); i++ {
		pool.Read(&g, buf)
	}
	if !pool.NodeDown(victim) {
		t.Fatal("breaker did not open")
	}
}

// TestReplicaSetLifecycle: alloc k copies, write with W=2, read, fail
// over past a killed primary, free.
func TestReplicaSetLifecycle(t *testing.T) {
	c := spinLocal(t, 3)
	pool := c.Pool()

	rs, err := pool.AllocReplicated(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Reps) != 3 {
		t.Fatalf("got %d replicas, want 3", len(rs.Reps))
	}
	seen := map[int]bool{}
	for _, g := range rs.Reps {
		if seen[g.Node] {
			t.Fatalf("replica nodes not distinct: %v", rs.Reps)
		}
		seen[g.Node] = true
	}

	payload := []byte("replicated-payload")
	if err := pool.WriteReplicated(rs, payload, 2); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 64)
	n, rep, err := pool.ReadReplicated(rs, buf)
	if err != nil || rep != 0 {
		t.Fatalf("read: n=%d rep=%d err=%v", n, rep, err)
	}
	if !bytes.Equal(buf[:len(payload)], payload) {
		t.Fatalf("read back %q, want %q", buf[:len(payload)], payload)
	}

	// Kill the primary: the read must serve from a later replica.
	c.Node(rs.Reps[0].Node).Kill()
	before := cuFailovers.Value()
	n, rep, err = pool.ReadReplicated(rs, buf)
	if err != nil || rep == 0 {
		t.Fatalf("failover read: n=%d rep=%d err=%v", n, rep, err)
	}
	if !bytes.Equal(buf[:len(payload)], payload) {
		t.Fatalf("failover read back %q, want %q", buf[:len(payload)], payload)
	}
	if cuFailovers.Value() <= before {
		t.Fatal("failover counter did not move")
	}

	// Free tolerates the dead node once its breaker has opened.
	pool.ProbeCooldown = time.Hour
	tripBreaker(t, pool, rs.Reps[0].Node)
	if err := pool.FreeReplicated(rs); err != nil {
		t.Fatalf("free: %v", err)
	}
}

// TestAllocReplicatedNeedsHealthyNodes: with a breaker open, k equal to
// the pool size is unsatisfiable and the partial alloc must not leak.
func TestAllocReplicatedNeedsHealthyNodes(t *testing.T) {
	c := spinLocal(t, 3)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour

	const victim = 2
	c.Node(victim).Kill()
	// Trip the breaker so pickReplicaNodes sees the node as down.
	tripBreaker(t, pool, victim)

	if _, err := pool.AllocReplicated(64, 3); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("alloc with 2/3 healthy nodes: err=%v, want ErrNodeDown", err)
	}
	rs, err := pool.AllocReplicated(64, 2)
	if err != nil {
		t.Fatalf("alloc k=2 on the healthy pair: %v", err)
	}
	for _, rep := range rs.Reps {
		if rep.Node == victim {
			t.Fatalf("allocated on the down node: %v", rs.Reps)
		}
	}
	if err := pool.FreeReplicated(rs); err != nil {
		t.Fatal(err)
	}
}

// TestWriteReplicatedConcern: W beyond the reachable replicas fails with
// ErrWriteConcern; W within them succeeds.
func TestWriteReplicatedConcern(t *testing.T) {
	c := spinLocal(t, 3)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour

	rs, err := pool.AllocReplicated(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Node(rs.Reps[1].Node).Kill()

	if err := pool.WriteReplicated(rs, []byte("x"), 3); !errors.Is(err, ErrWriteConcern) {
		t.Fatalf("W=3 with a dead replica: err=%v, want ErrWriteConcern", err)
	}
	if err := pool.WriteReplicated(rs, []byte("x"), 2); err != nil {
		t.Fatalf("W=2 with a dead replica: %v", err)
	}
}

// TestMultiPutReplicated: the batched put path at k>1 — fan-out per
// winning key, duplicate keys resolved last-wins, byte-exact MultiGet,
// overwrite bumps versions, Delete releases every copy.
func TestMultiPutReplicated(t *testing.T) {
	c := spinLocal(t, 3)
	kv := NewReplicatedKV(c.Pool(), ReplicationConfig{Replicas: 3, WriteConcern: 2})

	n := 40
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("mput-%d", i%(n-1)) // one duplicate: first and last collide
		vals[i] = []byte(fmt.Sprintf("mval-%d", i))
	}
	errs, err := kv.MultiPut(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("put %s: %v", keys[i], e)
		}
	}
	if got, want := kv.Len(), n-1; got != want {
		t.Fatalf("Len=%d, want %d (duplicate collapsed)", got, want)
	}

	got, found, err := kv.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		want := vals[i]
		if keys[i] == keys[n-1] {
			want = vals[n-1] // last write wins for the duplicated key
		}
		if !found[i] || !bytes.Equal(got[i], want) {
			t.Fatalf("key %s: got %q found=%v, want %q", keys[i], got[i], found[i], want)
		}
	}

	// Overwrite everything through the batched path and re-verify.
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("mval2-%d", i))
	}
	if _, err := kv.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, kv, 5*time.Second)
	for i := range keys {
		want := vals[i]
		if keys[i] == keys[n-1] {
			want = vals[n-1]
		}
		v, ok, err := kv.Get(keys[i])
		if err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("overwritten key %s: %q (found=%v err=%v), want %q", keys[i], v, ok, err, want)
		}
	}

	// Delete all and check nothing leaked on any store.
	for _, k := range keys {
		if err := kv.Delete(k); err != nil {
			t.Fatalf("delete %s: %v", k, err)
		}
	}
	for i := 0; i < c.Nodes(); i++ {
		if s := c.Node(i).Store().Stats(); s.Allocs-s.Frees != 0 {
			t.Fatalf("node %d leaked %d objects", i, s.Allocs-s.Frees)
		}
	}
}

// TestStartProberHealsDownNode: the background prober closes an open
// breaker once the node is back, without any foreground traffic.
func TestStartProberHealsDownNode(t *testing.T) {
	c := spinLocal(t, 2)
	pool := c.Pool()
	pool.ProbeCooldown = time.Millisecond

	const victim = 1
	c.Node(victim).Kill()
	tripBreaker(t, pool, victim)

	stop := pool.StartProber(2 * time.Millisecond)
	defer stop()
	if err := c.Node(victim).Restart(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pool.NodeDown(victim) {
		if time.Now().After(deadline) {
			t.Fatal("prober never closed the breaker after restart")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicatorRunning covers the service state flags.
func TestReplicatorRunning(t *testing.T) {
	c := spinLocal(t, 2)
	kv := NewReplicatedKV(c.Pool(), ReplicationConfig{Replicas: 2})
	rep := NewReplicator(kv, ReplicatorConfig{Interval: time.Hour})
	if rep.Running() {
		t.Fatal("running before Start")
	}
	rep.Start()
	rep.Start() // idempotent
	if !rep.Running() {
		t.Fatal("not running after Start")
	}
	rep.Stop()
	rep.Stop() // idempotent
	if rep.Running() {
		t.Fatal("still running after Stop")
	}
}
