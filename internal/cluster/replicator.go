// Background re-replication: the cluster-side analogue of the node-side
// background compactor. A Replicator watches a replicated KV's degraded
// index (keys below full replication — a replica write failed, a node
// died, or a read found divergence) and re-populates stale replicas from
// live ones on a paced cycle, using the same service pattern as
// core.Compactor: fixed interval, exponential idle backoff, bounded work
// per cycle. A breaker-recovery hook wakes it immediately when a node
// rejoins, so restoring the replication factor does not wait out the idle
// backoff.
package cluster

import (
	"sync"
	"time"
)

// ReplicatorConfig tunes the background re-replicator. Zero values take
// defaults.
type ReplicatorConfig struct {
	// Interval paces repair cycles while there is work (default 100ms).
	Interval time.Duration
	// MaxInterval caps the exponential idle backoff: cycles that find
	// nothing to repair double the wait up to this bound (default
	// 32×Interval), so an idle replicator costs near nothing.
	MaxInterval time.Duration
	// MaxKeysPerCycle bounds repair work per cycle (default 64), keeping
	// one cycle's network load predictable; remaining keys wait for the
	// next cycle.
	MaxKeysPerCycle int
}

func (c ReplicatorConfig) withDefaults() ReplicatorConfig {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 32 * c.Interval
	}
	if c.MaxKeysPerCycle <= 0 {
		c.MaxKeysPerCycle = 64
	}
	return c
}

// RepairReport summarizes one replicator cycle.
type RepairReport struct {
	// Scanned is how many degraded keys the cycle attempted.
	Scanned int
	// Repaired is how many replicas were re-populated.
	Repaired int
	// Failed is how many keys still have unrepaired replicas (node still
	// down, or the repair write failed).
	Failed int
	// Remaining is the degraded-key backlog after the cycle.
	Remaining int
}

// Replicator restores the replication factor of a KV's degraded keys in
// the background.
type Replicator struct {
	kv  *KV
	cfg ReplicatorConfig

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    chan struct{}
	kick    chan struct{}
}

// NewReplicator builds a replicator for the KV and registers a breaker
// recovery hook on its pool: when a down node's breaker closes, the next
// cycle runs immediately.
func NewReplicator(kv *KV, cfg ReplicatorConfig) *Replicator {
	r := &Replicator{
		kv:   kv,
		cfg:  cfg.withDefaults(),
		kick: make(chan struct{}, 1),
	}
	kv.pool.setRecoverHook(func(int) { r.Kick() })
	return r
}

// Kick requests an immediate cycle (collapsing concurrent requests); safe
// to call whether or not the replicator is running.
func (r *Replicator) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Start launches the background loop. Idempotent.
func (r *Replicator) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return
	}
	r.running = true
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop(r.stop, r.done)
}

// Stop halts the loop, waiting for an in-flight cycle to finish.
// Idempotent.
func (r *Replicator) Stop() {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return
	}
	r.running = false
	stop, done := r.stop, r.done
	r.mu.Unlock()
	close(stop)
	<-done
}

// Running reports whether the background loop is active.
func (r *Replicator) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

func (r *Replicator) loop(stop, done chan struct{}) {
	defer close(done)
	wait := r.cfg.Interval
	for {
		timer := time.NewTimer(wait)
		select {
		case <-stop:
			timer.Stop()
			return
		case <-r.kick:
			timer.Stop()
		case <-timer.C:
		}
		rep := r.RunCycle()
		switch {
		case rep.Repaired == 0 && rep.Remaining == 0:
			// Idle: back off exponentially so a healthy cluster pays
			// almost nothing for the standing service.
			wait *= 2
			if wait > r.cfg.MaxInterval {
				wait = r.cfg.MaxInterval
			}
		case rep.Repaired > 0 && rep.Remaining > 0:
			// Work-conserving drain: the cycle made progress and left a
			// backlog (the per-cycle bound, or repairs that failed on a
			// half-warm rejoining node), so run again immediately instead
			// of letting the backlog wait out a full interval. A cycle
			// that makes NO progress does not take this path — a node
			// that is genuinely still down paces at Interval, not a spin.
			r.Kick()
			wait = r.cfg.Interval
		default:
			wait = r.cfg.Interval
		}
	}
}

// RunCycle synchronously repairs up to MaxKeysPerCycle degraded keys and
// reports what it did. Exported for tests and for callers that pace
// repair themselves.
func (r *Replicator) RunCycle() RepairReport {
	cuReplicatorCycles.Inc()
	keys := r.kv.degradedSnapshot(r.cfg.MaxKeysPerCycle)
	rep := RepairReport{Scanned: len(keys)}
	for _, key := range keys {
		n, err := r.kv.RepairKey(key)
		rep.Repaired += n
		if err != nil {
			rep.Failed++
		}
	}
	rep.Remaining = r.kv.DegradedKeys()
	return rep
}
