// Near-data compute at the cluster layer. Pool forwards the pushdown
// atomics (CAS, fetch-add, conditional write) to the owning node with the
// same breaker gating and pointer correction as Read/Write. KV adds a
// keyed counter on top: FetchAdd routes to the key's rendezvous replica
// set — unreplicated it is one pushdown round trip to the owner node;
// replicated it funnels through the primary (first live replica, so the
// returned pre-add value is a single linearization point per key) and
// propagates the delta to the remaining live replicas, acking after the
// configured write concern exactly like Put. Addition commutes, so
// replicas converge under concurrent counters regardless of delivery
// order; a replica that misses its delta is marked stale and healed by
// the same repair machinery that serves divergent reads.
package cluster

import (
	"errors"
	"fmt"

	"corm/internal/core"
)

// FetchAdd atomically adds delta to the little-endian u64 at off inside
// the object, server-side on the owning node, returning the pre-add
// value. The pointer is corrected in place.
func (p *Pool) FetchAdd(g *GlobalAddr, off int, delta int64) (uint64, error) {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return 0, err
	}
	v, err := ctx.FetchAdd(&g.Addr, off, delta)
	p.observe(g.Node, err)
	return v, p.nodeErr(g.Node, err)
}

// CAS atomically compares len(old) payload bytes at off with old and, on
// a match, overwrites them with new — on the owning node, under the
// object's block lock. A mismatch returns core.ErrConflict.
func (p *Pool) CAS(g *GlobalAddr, off int, old, new []byte) error {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return err
	}
	err = ctx.CAS(&g.Addr, off, old, new)
	p.observe(g.Node, err)
	return p.nodeErr(g.Node, err)
}

// PutIf writes the object payload only if its version still equals
// version, returning the resulting version (the observed one alongside
// core.ErrConflict).
func (p *Pool) PutIf(g *GlobalAddr, version uint32, value []byte) (uint32, error) {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return 0, err
	}
	v, err := ctx.PutIf(&g.Addr, version, value)
	p.observe(g.Node, err)
	return v, p.nodeErr(g.Node, err)
}

// PutIfAbsent writes the object payload only if the object has never been
// written — first-writer-wins initialization across the cluster.
func (p *Pool) PutIfAbsent(g *GlobalAddr, value []byte) (uint32, error) {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return 0, err
	}
	v, err := ctx.PutIfAbsent(&g.Addr, value)
	p.observe(g.Node, err)
	return v, p.nodeErr(g.Node, err)
}

// FetchAdd atomically adds delta to the little-endian u64 at byte off of
// the key's value, returning the pre-add value as observed on the key's
// primary replica. The bool reports whether the key exists (a counter
// must be Put before it can be added to).
//
// Replicated entries funnel every FetchAdd through the primary — the
// first live replica in rendezvous rank order — so concurrent counters on
// one key serialize at a single replica and each caller's pre-add value
// is exact. The delta then fans out to the remaining live replicas in
// parallel, and the call acks once WriteConcern replicas (primary
// included) applied it. Replicas that fail are marked stale and queued
// for repair, which recopies the whole record — counter value included —
// from a live replica, so missed deltas heal the same way missed writes
// do. Like Put, fewer than W acks returns ErrWriteConcern; the deltas
// already applied are not undone (the acked replicas are authoritative
// and repair converges the rest).
func (kv *KV) FetchAdd(key string, off int, delta int64) (uint64, bool, error) {
	kv.mu.Lock()
	e := kv.entries[key]
	if e == nil {
		kv.mu.Unlock()
		return 0, false, nil
	}
	version := e.version
	reps := make([]kvReplica, len(e.reps))
	copy(reps, e.reps)
	kv.mu.Unlock()

	// The stored record prefixes replicated values with the version tag;
	// the caller's offset is relative to the value.
	wireOff := off + kv.tagBytes()

	// Primary apply: the first live replica that answers. Store-level
	// conflicts (bad offset) surface immediately; node faults mark the
	// replica stale and fail over down the rank order, exactly like Get.
	primary := -1
	var old uint64
	var lastErr error
	for i := range reps {
		r := reps[i]
		if r.state != repLive || r.addr.Addr.IsZero() {
			continue
		}
		g := r.addr
		v, err := kv.pool.FetchAdd(&g, wireOff, delta)
		if err != nil {
			if kv.k == 1 {
				return 0, true, err
			}
			if errors.Is(err, core.ErrShortBuffer) {
				return 0, true, err // bad offset fails identically everywhere
			}
			kv.markStale(key, e, i, version)
			if isDivergent(err) {
				kv.suspectNode(r.addr.Node)
			}
			lastErr = err
			continue
		}
		kv.foldAddr(key, e, i, g, r.classSize, version)
		primary = i
		old = v
		break
	}
	if primary == -1 {
		if kv.k > 1 {
			kv.scheduleRepair(key)
		}
		if lastErr == nil {
			return 0, true, fmt.Errorf("%w: key %q: no live replica", ErrNoReplica, key)
		}
		return 0, true, fmt.Errorf("%w: key %q: %w", ErrNoReplica, key, lastErr)
	}
	if kv.k == 1 {
		return old, true, nil
	}

	// Propagate the delta to the other live replicas in parallel and ack
	// at the write concern, counting the primary as the first ack.
	cuCounterPropagations.Inc()
	type propOutcome struct {
		i   int
		err error
	}
	res := make(chan propOutcome, len(reps))
	fanned := 0
	for i := range reps {
		r := reps[i]
		if i == primary || r.state != repLive || r.addr.Addr.IsZero() {
			continue
		}
		fanned++
		go func(i int, g GlobalAddr) {
			_, err := kv.pool.FetchAdd(&g, wireOff, delta)
			if err == nil {
				kv.foldAddr(key, e, i, g, reps[i].classSize, version)
			}
			res <- propOutcome{i: i, err: err}
		}(i, r.addr)
	}

	succ, pending := 1, fanned
	var firstErr error
	for pending > 0 && succ < kv.w && succ+pending >= kv.w {
		o := <-res
		pending--
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			kv.markStale(key, e, o.i, version)
			kv.scheduleRepair(key)
			continue
		}
		succ++
	}
	// Stragglers past the ack point finish in the background; a late
	// failure still marks its replica stale so repair converges it.
	if pending > 0 {
		go func(pending int) {
			for ; pending > 0; pending-- {
				if o := <-res; o.err != nil {
					kv.markStale(key, e, o.i, version)
					kv.scheduleRepair(key)
				}
			}
		}(pending)
	}
	if succ < kv.w {
		cuWriteConcernMisses.Inc()
		return old, true, fmt.Errorf("%w: %d/%d acks (replicas=%d): %v",
			ErrWriteConcern, succ, kv.w, kv.k, firstErr)
	}
	return old, true, nil
}
