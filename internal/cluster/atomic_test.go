package cluster

import (
	"encoding/binary"
	"errors"
	"testing"

	"corm/internal/core"
)

func le64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// TestPoolAtomics: the pushdown wrappers route to the owning node with
// the same pointer correction and error folding as Read/Write.
func TestPoolAtomics(t *testing.T) {
	c := spinLocal(t, 2)
	pool := c.Pool()

	g, err := pool.AllocOn(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Write(&g, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}

	old, err := pool.FetchAdd(&g, 0, 7)
	if err != nil || old != 0 {
		t.Fatalf("fetchadd: %d %v", old, err)
	}
	if err := pool.CAS(&g, 0, le64(7), le64(40)); err != nil {
		t.Fatalf("cas: %v", err)
	}
	if err := pool.CAS(&g, 0, le64(7), le64(1)); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("stale cas: %v", err)
	}

	fresh, err := pool.AllocOn(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	ver, err := pool.PutIfAbsent(&fresh, []byte("init"))
	if err != nil {
		t.Fatalf("if-absent: %v", err)
	}
	if _, err := pool.PutIfAbsent(&fresh, []byte("again")); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("second if-absent: %v", err)
	}
	if _, err := pool.PutIf(&fresh, ver, []byte("next")); err != nil {
		t.Fatalf("putif: %v", err)
	}
	if obs, err := pool.PutIf(&fresh, ver, []byte("stale")); !errors.Is(err, core.ErrConflict) || obs != ver+1 {
		t.Fatalf("stale putif: obs=%d err=%v", obs, err)
	}

	if size, err := pool.ClassSize(g); err != nil || size < 16 {
		t.Fatalf("class size: %d %v", size, err)
	}
	if s := g.String(); s == "" {
		t.Fatal("empty GlobalAddr string")
	}
	if err := pool.ReleasePtr(&g); err != nil {
		t.Fatalf("release ptr: %v", err)
	}
}

// TestKVFetchAddUnreplicated: one copy per key — a FetchAdd is one
// pushdown round trip to the rendezvous owner.
func TestKVFetchAddUnreplicated(t *testing.T) {
	c := spinLocal(t, 3)
	kv := NewKV(c.Pool())

	if _, found, err := kv.FetchAdd("absent", 0, 1); found || err != nil {
		t.Fatalf("missing key: found=%v err=%v", found, err)
	}

	if err := kv.Put("ctr", le64(100)); err != nil {
		t.Fatal(err)
	}
	old, found, err := kv.FetchAdd("ctr", 0, 5)
	if err != nil || !found || old != 100 {
		t.Fatalf("fetchadd: old=%d found=%v err=%v", old, found, err)
	}
	val, _, err := kv.Get("ctr")
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(val); v != 105 {
		t.Fatalf("counter = %d, want 105", v)
	}
}

// TestKVFetchAddReplicated: the delta funnels through the primary and
// propagates to every replica — so the counter survives losing the
// primary outright.
func TestKVFetchAddReplicated(t *testing.T) {
	c := spinLocal(t, 3)
	kv := NewReplicatedKV(c.Pool(), ReplicationConfig{Replicas: 3, WriteConcern: 3})

	// 16-byte value: the counter lives at value offset 8, which the KV
	// layer must shift past the stored version tag.
	key := keyWithPrimary(kv, 1, "rep-ctr")
	val := make([]byte, 16)
	binary.LittleEndian.PutUint64(val[8:], 1000)
	if err := kv.Put(key, val); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		old, found, err := kv.FetchAdd(key, 8, 3)
		if err != nil || !found {
			t.Fatalf("add %d: found=%v err=%v", i, found, err)
		}
		if want := uint64(1000 + i*3); old != want {
			t.Fatalf("add %d: pre-add %d, want %d", i, old, want)
		}
	}

	// W=3 means every replica applied every delta before each call acked;
	// killing the primary must lose nothing.
	c.Node(1).Kill()
	got, found, err := kv.Get(key)
	if err != nil || !found {
		t.Fatalf("get after primary loss: found=%v err=%v", found, err)
	}
	if v := binary.LittleEndian.Uint64(got[8:]); v != 1030 {
		t.Fatalf("counter after failover = %d, want 1030", v)
	}

	// The surviving replicas keep serving adds: the next live replica in
	// rank order becomes the linearization point.
	old, found, err := kv.FetchAdd(key, 8, 1)
	if err != nil && !errors.Is(err, ErrWriteConcern) {
		t.Fatalf("post-failover add: %v", err)
	}
	if !found || old != 1030 {
		t.Fatalf("post-failover add: old=%d found=%v", old, found)
	}
}

// TestKVFetchAddWriteConcernMiss: with W equal to the replica count, a
// dead secondary fails the ack bar — but the primary's delta stands and
// the error still carries the exact pre-add value.
func TestKVFetchAddWriteConcernMiss(t *testing.T) {
	c := spinLocal(t, 3)
	kv := NewReplicatedKV(c.Pool(), ReplicationConfig{Replicas: 3, WriteConcern: 3})

	key := keyWithPrimary(kv, 0, "wc-ctr")
	if err := kv.Put(key, le64(50)); err != nil {
		t.Fatal(err)
	}

	// Kill a non-primary replica so the primary apply succeeds but the
	// fan-out cannot reach W.
	victim := kv.ReplicasFor(key)[2]
	c.Node(victim).Kill()

	old, found, err := kv.FetchAdd(key, 0, 5)
	if !errors.Is(err, ErrWriteConcern) {
		t.Fatalf("want ErrWriteConcern, got %v", err)
	}
	if !found || old != 50 {
		t.Fatalf("old=%d found=%v", old, found)
	}

	// The applied delta is authoritative: reads observe it.
	val, _, err := kv.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(val); v != 55 {
		t.Fatalf("counter = %d, want 55", v)
	}
}
