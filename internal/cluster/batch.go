// Batched cluster operations: scatter-gather over the pool. A Multi* call
// groups its operations by owning node (explicit for Pool, rendezvous-
// hashed for KV), fans out one OpBatch frame per node in parallel, and
// reassembles the results in input order — N operations cost one round
// trip per *node touched*, not one per operation. Per-node circuit
// breakers apply per group: a node whose breaker is open fails only its
// own operations (reported as a *NodeError naming that node), and the
// rest of the batch proceeds.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"corm/internal/client"
	"corm/internal/core"
	"corm/internal/transport"
)

// OpResult re-exports the client's per-sub-operation outcome.
type OpResult = client.OpResult

// errNodeRange builds the out-of-range error every routed call uses.
func (p *Pool) errNodeRange(node int) error {
	return fmt.Errorf("cluster: node %d out of range", node)
}

// groupByNode buckets operation indices by owning node, preserving input
// order inside each bucket.
func groupByNode(n int, nodeOf func(i int) int) map[int][]int {
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		node := nodeOf(i)
		groups[node] = append(groups[node], i)
	}
	return groups
}

// fanOut runs one function per node group, in parallel when more than one
// node is involved (the single-node case stays on the caller's goroutine —
// no handoff for the common locality-friendly batch).
func fanOut(groups map[int][]int, run func(node int, idxs []int)) {
	cuFanOutWidth.Observe(int64(len(groups)))
	if len(groups) == 1 {
		for node, idxs := range groups {
			run(node, idxs)
		}
		return
	}
	var wg sync.WaitGroup
	for node, idxs := range groups {
		wg.Add(1)
		go func(node int, idxs []int) {
			defer wg.Done()
			run(node, idxs)
		}(node, idxs)
	}
	wg.Wait()
}

// MultiRead reads len(gs) objects in one batched round trip per owning
// node; bufs[i] receives object i and corrections are folded into gs[i]
// in place. Results are in input order; node-level failures (open breaker,
// transport fault) surface in each affected OpResult.Err as a *NodeError
// identifying the failing node.
func (p *Pool) MultiRead(gs []*GlobalAddr, bufs [][]byte) ([]OpResult, error) {
	if len(gs) != len(bufs) {
		return nil, fmt.Errorf("cluster: MultiRead: %d addrs, %d bufs", len(gs), len(bufs))
	}
	results := make([]OpResult, len(gs))
	groups := groupByNode(len(gs), func(i int) int { return gs[i].Node })
	fanOut(groups, func(node int, idxs []int) {
		if node < 0 || node >= len(p.nodes) {
			fillErr(results, idxs, p.errNodeRange(node))
			return
		}
		if err := p.gate(node); err != nil {
			fillErr(results, idxs, err)
			return
		}
		addrs := make([]*core.Addr, len(idxs))
		nb := make([][]byte, len(idxs))
		for k, i := range idxs {
			addrs[k] = &gs[i].Addr
			nb[k] = bufs[i]
		}
		rs, err := p.nodes[node].MultiRead(addrs, nb)
		p.observe(node, err)
		if err != nil {
			fillErr(results, idxs, p.nodeErr(node, err))
			return
		}
		for k, i := range idxs {
			results[i] = rs[k]
		}
	})
	return results, nil
}

// MultiAllocOn allocates len(sizes) objects on one node in one round trip.
// Successful sub-allocations are counted toward the node's load; their
// pointers are in the results' Addr fields.
func (p *Pool) MultiAllocOn(node int, sizes []int) ([]OpResult, error) {
	if node < 0 || node >= len(p.nodes) {
		return nil, p.errNodeRange(node)
	}
	if err := p.gate(node); err != nil {
		return nil, err
	}
	rs, err := p.nodes[node].MultiAlloc(sizes)
	p.observe(node, err)
	if err != nil {
		return nil, p.nodeErr(node, err)
	}
	live := 0
	for i := range rs {
		if rs[i].Err == nil {
			live++
		}
	}
	if live > 0 {
		p.mu.Lock()
		p.allocs[node] += int64(live)
		p.mu.Unlock()
	}
	return rs, nil
}

// MultiFree releases len(gs) objects in one batched round trip per owning
// node, folding pointer corrections into each gs[i] first and decrementing
// the owning node's load per successful free.
func (p *Pool) MultiFree(gs []*GlobalAddr) ([]OpResult, error) {
	results := make([]OpResult, len(gs))
	groups := groupByNode(len(gs), func(i int) int { return gs[i].Node })
	fanOut(groups, func(node int, idxs []int) {
		if node < 0 || node >= len(p.nodes) {
			fillErr(results, idxs, p.errNodeRange(node))
			return
		}
		if err := p.gate(node); err != nil {
			fillErr(results, idxs, err)
			return
		}
		addrs := make([]*core.Addr, len(idxs))
		for k, i := range idxs {
			addrs[k] = &gs[i].Addr
		}
		rs, err := p.nodes[node].MultiFree(addrs)
		p.observe(node, err)
		if err != nil {
			fillErr(results, idxs, p.nodeErr(node, err))
			return
		}
		freed := 0
		for k, i := range idxs {
			results[i] = rs[k]
			if rs[k].Err == nil {
				freed++
			}
		}
		if freed > 0 {
			p.mu.Lock()
			p.allocs[node] -= int64(freed)
			p.mu.Unlock()
		}
	})
	return results, nil
}

// fillErr marks every index in idxs with err.
func fillErr(results []OpResult, idxs []int, err error) {
	for _, i := range idxs {
		results[i] = OpResult{Err: err}
	}
}

// --- Keyed scatter-gather ---

// MultiGet fetches len(keys) values with one batched RPC round trip per
// owning node, reassembled in input order. Missing keys (never put, or
// freed meanwhile) report found[i]=false; pointers corrected by compaction
// are repaired back into the index. On a replicated KV, each key is read
// from its first live replica in the batch, and keys whose batched read
// failed (node down, record missing, stale version tag) fall back to the
// failover path of Get — so one dead node degrades those keys to a
// per-key failover read instead of failing them. The error is the first
// per-key or node-level failure (a *NodeError when attributable to one
// node); other keys still complete.
func (kv *KV) MultiGet(keys []string) (vals [][]byte, found []bool, err error) {
	n := len(keys)
	vals = make([][]byte, n)
	found = make([]bool, n)
	if n == 0 {
		return vals, found, nil
	}
	// Snapshot the entries under the lock: reads operate on private copies
	// of each pointer (entries are shared across concurrent operations) and
	// corrections are folded back only if the entry is still current.
	type ref struct {
		e         *kvEntry
		version   uint64
		size      int
		repIdx    int // which replica the batched read targets
		g         GlobalAddr
		classSize int
	}
	refs := make([]ref, n)
	var fallback []int // keys that must go through the failover read path
	live := 0
	kv.mu.Lock()
	for i, k := range keys {
		e := kv.entries[k]
		if e == nil {
			continue
		}
		rep := -1
		for j := range e.reps {
			if e.reps[j].state == repLive && !e.reps[j].addr.Addr.IsZero() {
				rep = j
				break
			}
		}
		if rep == -1 {
			// No live replica on record; Get will retry/repair.
			fallback = append(fallback, i)
			refs[i].e = e
			continue
		}
		refs[i] = ref{
			e: e, version: e.version, size: e.size,
			repIdx: rep, g: e.reps[rep].addr, classSize: e.reps[rep].classSize,
		}
		live++
	}
	kv.mu.Unlock()
	tag := kv.tagBytes()
	if live > 0 {
		gaddrs := make([]*GlobalAddr, 0, live)
		bufs := make([][]byte, 0, live)
		idx := make([]int, 0, live)
		for i := range refs {
			if refs[i].e == nil || refs[i].repIdx < 0 || contains(fallback, i) {
				continue
			}
			if refs[i].classSize == 0 {
				cs, cerr := kv.pool.ClassSize(refs[i].g)
				if cerr != nil {
					if err == nil {
						err = cerr
					}
					continue
				}
				refs[i].classSize = cs
			}
			gaddrs = append(gaddrs, &refs[i].g)
			bufs = append(bufs, make([]byte, refs[i].classSize))
			idx = append(idx, i)
		}
		results, rerr := kv.pool.MultiRead(gaddrs, bufs)
		if rerr != nil {
			return vals, found, rerr
		}
		for k, i := range idx {
			switch {
			case results[k].Err == nil:
				if tag > 0 && binary.LittleEndian.Uint64(bufs[k]) != kv.recordTag(keys[i], refs[i].version) {
					// Divergent replica: reject, mark for repair (the key
					// and the rebuilt node's whole population), fail over.
					cuStaleReads.Inc()
					kv.markStale(keys[i], refs[i].e, refs[i].repIdx, refs[i].version)
					kv.suspectNode(refs[i].g.Node)
					fallback = append(fallback, i)
					continue
				}
				vals[i] = bufs[k][tag : tag+refs[i].size]
				found[i] = true
				kv.foldAddr(keys[i], refs[i].e, refs[i].repIdx, refs[i].g, refs[i].classSize, refs[i].version)
			case kv.k > 1 && isDivergent(results[k].Err):
				// The replica lost the record (wiped node): repairable
				// divergence, not a miss — another replica may serve, and
				// the rebuilt node's whole population needs repair.
				kv.markStale(keys[i], refs[i].e, refs[i].repIdx, refs[i].version)
				kv.suspectNode(refs[i].g.Node)
				fallback = append(fallback, i)
			case kv.k == 1 && isMissing(results[k].Err):
				// Unreplicated: the object vanished under us (freed or
				// released elsewhere) — an honest miss, not a failure.
			default:
				if kv.k > 1 {
					fallback = append(fallback, i)
					continue
				}
				if err == nil {
					err = fmt.Errorf("cluster: MultiGet %q: %w", keys[i], results[k].Err)
				}
			}
		}
	}
	// Failover pass: every key the batch could not serve takes the ordered
	// replica walk (backup reads, read repair) individually.
	for _, i := range fallback {
		v, ok, gerr := kv.Get(keys[i])
		vals[i], found[i] = v, ok
		if gerr != nil && err == nil {
			err = fmt.Errorf("cluster: MultiGet %q: %w", keys[i], gerr)
		}
	}
	return vals, found, err
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// isMissing classifies per-key failures that mean "no such object".
func isMissing(err error) bool {
	return errors.Is(err, core.ErrNotFound) || errors.Is(err, core.ErrInvalidAddr)
}

// isDivergent classifies per-replica read failures that mean the node is
// reachable but no longer holds the record its pointer names: the record
// was freed, or the node's store was rebuilt from scratch (a wiped node
// rejects the old pointer's rkey or bounds). Repair — not retry — is the
// cure, so these mark the replica stale; transport-level faults do not
// (the node may come back with its memory intact).
func isDivergent(err error) bool {
	return isMissing(err) ||
		errors.Is(err, transport.ErrDMABadKey) ||
		errors.Is(err, transport.ErrDMABounds)
}

// MultiPut stores len(keys) values. Unreplicated, operations are grouped
// by rendezvous node: per node, one batched alloc round trip and one
// batched write round trip, with existing entries freed first (batched as
// well). Replicated, each key runs the full fan-out Put (its writes
// already coalesce per node through the async write batcher), bounded to
// a few keys in flight. Results are per key, in input order; err reports
// malformed input only. When a key appears more than once, the last
// occurrence wins and earlier ones share its outcome.
func (kv *KV) MultiPut(keys []string, values [][]byte) (errs []error, err error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("cluster: MultiPut: %d keys, %d values", len(keys), len(values))
	}
	n := len(keys)
	errs = make([]error, n)
	if n == 0 {
		return errs, nil
	}
	// Last occurrence of each key wins; earlier duplicates alias its slot.
	last := make(map[string]int, n)
	for i, k := range keys {
		last[k] = i
	}
	if kv.k > 1 {
		kv.multiPutReplicated(keys, values, last, errs)
	} else {
		if ferr := kv.multiPutSingle(keys, values, last, errs); ferr != nil {
			return nil, ferr
		}
	}
	// Earlier duplicates share the winning occurrence's outcome.
	for i, k := range keys {
		if last[k] != i {
			errs[i] = errs[last[k]]
		}
	}
	return errs, nil
}

// multiPutReplicated runs the replica fan-out Put per winning key with
// bounded concurrency. Cross-key batching still happens underneath: all
// concurrent replica writes to one node coalesce in its async write
// batcher into shared OpBatch frames.
func (kv *KV) multiPutReplicated(keys []string, values [][]byte, last map[string]int, errs []error) {
	const inflight = 8
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	for i := range keys {
		if last[keys[i]] != i {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			errs[i] = kv.putReplicated(keys[i], values[i])
		}(i)
	}
	wg.Wait()
}

// multiPutSingle is the unreplicated batched path.
func (kv *KV) multiPutSingle(keys []string, values [][]byte, last map[string]int, errs []error) error {
	// Free the entries being replaced, batched by owning node. A key whose
	// old object cannot be freed fails (Put parity: never leak the old
	// object silently) and drops out of the alloc/write phases.
	var oldGs []*GlobalAddr
	var oldIdx []int
	kv.mu.Lock()
	for k, i := range last {
		if e := kv.entries[k]; e != nil {
			g := e.reps[0].addr
			oldGs = append(oldGs, &g)
			oldIdx = append(oldIdx, i)
		}
	}
	kv.mu.Unlock()
	failed := make(map[int]bool)
	if len(oldGs) > 0 {
		rs, ferr := kv.pool.MultiFree(oldGs)
		if ferr != nil {
			return ferr
		}
		for k, i := range oldIdx {
			if rs[k].Err != nil && !isMissing(rs[k].Err) {
				errs[i] = rs[k].Err
				failed[i] = true
			}
		}
	}
	// Alloc + write per rendezvous node.
	groups := groupByNode(len(keys), func(i int) int { return kv.NodeFor(keys[i]) })
	fanOut(groups, func(node int, idxs []int) {
		// Only the surviving last occurrences execute.
		act := idxs[:0:0]
		for _, i := range idxs {
			if last[keys[i]] == i && !failed[i] {
				act = append(act, i)
			}
		}
		if len(act) == 0 {
			return
		}
		sizes := make([]int, len(act))
		for k, i := range act {
			sizes[k] = len(values[i])
		}
		allocs, aerr := kv.pool.MultiAllocOn(node, sizes)
		if aerr != nil {
			for _, i := range act {
				errs[i] = aerr
			}
			return
		}
		addrs := make([]*core.Addr, 0, len(act))
		payloads := make([][]byte, 0, len(act))
		wIdx := make([]int, 0, len(act))
		for k, i := range act {
			if allocs[k].Err != nil {
				errs[i] = allocs[k].Err
				continue
			}
			addrs = append(addrs, &allocs[k].Addr)
			payloads = append(payloads, values[i])
			wIdx = append(wIdx, k)
		}
		if len(addrs) == 0 {
			return
		}
		ws, werr := kv.pool.Node(node).MultiWrite(addrs, payloads)
		kv.pool.observe(node, werr)
		if werr != nil {
			werr = kv.pool.nodeErr(node, werr)
		}
		var undo []*GlobalAddr
		for w, k := range wIdx {
			i := act[k] // original position of this write's key
			g := GlobalAddr{Node: node, Addr: allocs[k].Addr}
			subErr := werr
			if subErr == nil {
				subErr = ws[w].Err
			}
			if subErr != nil {
				errs[i] = subErr
				undo = append(undo, &g)
				continue
			}
			classSize, _ := kv.pool.ClassSize(g)
			kv.mu.Lock()
			kv.entries[keys[i]] = &kvEntry{
				size:    len(values[i]),
				version: 1,
				reps:    []kvReplica{{addr: g, classSize: classSize, state: repLive}},
			}
			kv.mu.Unlock()
		}
		if len(undo) > 0 {
			// Best-effort: don't leak allocations whose writes failed.
			kv.pool.MultiFree(undo)
		}
	})
	return nil
}
