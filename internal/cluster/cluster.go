// Package cluster aggregates multiple CoRM nodes into one logical shared
// memory space — the DSM deployment the paper's introduction motivates
// ("the memory space may consist of hundreds of physical nodes"). Each
// node runs the full CoRM stack (allocator, compaction, RDMA emulation);
// the pool adds placement and a thin keyed facade:
//
//   - Pool: explicit placement. Alloc picks a node (least-allocated),
//     returning a GlobalAddr = (node, 128-bit CoRM pointer). All Table 2
//     operations route to the owning node, so compaction on any node
//     stays invisible to pool users exactly as for a single node.
//   - KV: optional convenience mapping string keys to objects with
//     rendezvous (highest-random-weight) hashing, so adding nodes moves
//     only ~1/n of the keys.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"corm/internal/client"
	"corm/internal/core"
)

// GlobalAddr locates an object in the cluster: the owning node index plus
// CoRM's 128-bit pointer on that node.
type GlobalAddr struct {
	Node int
	Addr core.Addr
}

func (g GlobalAddr) String() string { return fmt.Sprintf("node%d/%v", g.Node, g.Addr) }

// Pool is a client-side view over several CoRM nodes. Each node carries a
// consecutive-failure circuit breaker (health.go): transport-level faults
// open it, open breakers fail fast with ErrNodeDown and are skipped by
// Alloc, and a half-open probe (after ProbeCooldown, or an explicit
// ProbeNode) restores nodes that recover.
type Pool struct {
	// FailThreshold and ProbeCooldown tune the per-node breaker; set them
	// before issuing traffic.
	FailThreshold int
	ProbeCooldown time.Duration

	mu     sync.Mutex
	nodes  []*client.Ctx
	labels []string
	allocs []int64 // live allocations per node, for least-loaded placement
	health []nodeHealth
}

// Dial connects to every node address.
func Dial(addrs []string) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	p := newPool()
	for _, a := range addrs {
		ctx, err := client.CreateCtx(a)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", a, err)
		}
		p.nodes = append(p.nodes, ctx)
		p.labels = append(p.labels, a)
	}
	p.allocs = make([]int64, len(p.nodes))
	p.health = make([]nodeHealth, len(p.nodes))
	return p, nil
}

// NewFromClients builds a pool over existing contexts (in-process tests).
func NewFromClients(ctxs []*client.Ctx) *Pool {
	p := newPool()
	p.nodes = ctxs
	p.labels = make([]string, len(ctxs))
	for i := range p.labels {
		p.labels[i] = fmt.Sprintf("node%d", i)
	}
	p.allocs = make([]int64, len(ctxs))
	p.health = make([]nodeHealth, len(ctxs))
	return p
}

func newPool() *Pool {
	return &Pool{
		FailThreshold: DefaultFailThreshold,
		ProbeCooldown: DefaultProbeCooldown,
	}
}

// Close tears down every connection.
func (p *Pool) Close() {
	for _, n := range p.nodes {
		if n != nil {
			n.Close()
		}
	}
}

// Nodes reports the pool size.
func (p *Pool) Nodes() int { return len(p.nodes) }

// Node exposes one node's client context.
func (p *Pool) Node(i int) *client.Ctx { return p.nodes[i] }

// Alloc places an object on the least-allocated healthy node. Nodes whose
// breaker is open are skipped until their cooldown elapses (then one Alloc
// may probe them); if every node is down, Alloc fails fast.
func (p *Pool) Alloc(size int) (GlobalAddr, error) {
	p.mu.Lock()
	best := -1
	for i := range p.nodes {
		h := &p.health[i]
		if h.open && (h.probing || time.Since(h.openedAt) < p.ProbeCooldown) {
			continue
		}
		if best == -1 || p.allocs[i] < p.allocs[best] {
			best = i
		}
	}
	if best == -1 {
		p.mu.Unlock()
		return GlobalAddr{}, fmt.Errorf("%w: all %d nodes", ErrNodeDown, len(p.nodes))
	}
	if h := &p.health[best]; h.open {
		h.probing = true // half-open: this Alloc doubles as the probe
	}
	p.allocs[best]++
	p.mu.Unlock()
	addr, err := p.nodes[best].Alloc(size)
	p.observe(best, err)
	if err != nil {
		p.mu.Lock()
		p.allocs[best]--
		p.mu.Unlock()
		return GlobalAddr{}, err
	}
	return GlobalAddr{Node: best, Addr: addr}, nil
}

// AllocOn places an object on a specific node.
func (p *Pool) AllocOn(node, size int) (GlobalAddr, error) {
	if node < 0 || node >= len(p.nodes) {
		return GlobalAddr{}, fmt.Errorf("cluster: node %d out of range", node)
	}
	if err := p.gate(node); err != nil {
		return GlobalAddr{}, err
	}
	addr, err := p.nodes[node].Alloc(size)
	p.observe(node, err)
	if err != nil {
		return GlobalAddr{}, err
	}
	p.mu.Lock()
	p.allocs[node]++
	p.mu.Unlock()
	return GlobalAddr{Node: node, Addr: addr}, nil
}

// ctxOf resolves the owning node and passes its circuit breaker: an open
// breaker fails the operation fast with ErrNodeDown.
func (p *Pool) ctxOf(g GlobalAddr) (*client.Ctx, error) {
	if g.Node < 0 || g.Node >= len(p.nodes) {
		return nil, fmt.Errorf("cluster: node %d out of range", g.Node)
	}
	if err := p.gate(g.Node); err != nil {
		return nil, err
	}
	return p.nodes[g.Node], nil
}

// Write updates an object; the pointer is corrected in place.
func (p *Pool) Write(g *GlobalAddr, payload []byte) error {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return err
	}
	err = ctx.Write(&g.Addr, payload)
	p.observe(g.Node, err)
	return err
}

// Read reads via RPC with transparent correction.
func (p *Pool) Read(g *GlobalAddr, buf []byte) (int, error) {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return 0, err
	}
	n, err := ctx.Read(&g.Addr, buf)
	p.observe(g.Node, err)
	return n, err
}

// SmartRead reads one-sidedly, repairing indirect pointers with ScanRead.
func (p *Pool) SmartRead(g *GlobalAddr, buf []byte) (int, error) {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return 0, err
	}
	n, err := ctx.SmartRead(&g.Addr, buf)
	p.observe(g.Node, err)
	return n, err
}

// Free releases the object.
func (p *Pool) Free(g *GlobalAddr) error {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return err
	}
	err = ctx.Free(&g.Addr)
	p.observe(g.Node, err)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.allocs[g.Node]--
	p.mu.Unlock()
	return nil
}

// ReleasePtr releases the old virtual address of a corrected pointer.
func (p *Pool) ReleasePtr(g *GlobalAddr) error {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return err
	}
	err = ctx.ReleasePtr(&g.Addr)
	p.observe(g.Node, err)
	return err
}

// ClassSize reports the payload capacity behind a global pointer. It is a
// local lookup (classes are cached at connect time), so it bypasses the
// breaker gate: it must not consume a half-open probe slot.
func (p *Pool) ClassSize(g GlobalAddr) (int, error) {
	if g.Node < 0 || g.Node >= len(p.nodes) {
		return 0, fmt.Errorf("cluster: node %d out of range", g.Node)
	}
	return p.nodes[g.Node].ClassSize(g.Addr)
}

// --- Keyed facade ---

// KV maps string keys onto pool objects with rendezvous hashing.
type KV struct {
	pool *Pool

	mu      sync.Mutex
	entries map[string]*kvEntry
}

type kvEntry struct {
	addr GlobalAddr
	size int
	// classSize caches the size-class capacity at Put time so Get never
	// pays a per-read class lookup; 0 means unknown (fall back to the
	// pool's lookup once, then cache).
	classSize int
}

// NewKV builds a keyed store over the pool.
func NewKV(pool *Pool) *KV {
	return &KV{pool: pool, entries: make(map[string]*kvEntry)}
}

// NodeFor returns the rendezvous-hash owner node for a key: the node
// whose hash(key, node) is highest. Adding or removing a node relocates
// only the keys it wins or loses.
func (kv *KV) NodeFor(key string) int {
	best, bestScore := 0, uint64(0)
	for i := 0; i < kv.pool.Nodes(); i++ {
		h := fnv.New64a()
		// Node id first, so its bytes diffuse through the whole key; a
		// final avalanche step removes FNV's weak tail mixing.
		fmt.Fprintf(h, "%d/%s", i, key)
		score := mix64(h.Sum64())
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// mix64 is a finalizing avalanche (splitmix64's) for rendezvous scores.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Put stores value under key on its rendezvous node.
func (kv *KV) Put(key string, value []byte) error {
	kv.mu.Lock()
	old := kv.entries[key]
	kv.mu.Unlock()
	if old != nil {
		if err := kv.pool.Free(&old.addr); err != nil {
			return err
		}
	}
	g, err := kv.pool.AllocOn(kv.NodeFor(key), len(value))
	if err != nil {
		return err
	}
	if err := kv.pool.Write(&g, value); err != nil {
		// Don't leak the fresh allocation when the write fails; the free
		// is best-effort — if the node just died it will fail too, and
		// the node's store is gone with it.
		kv.pool.Free(&g)
		return err
	}
	// Cache the size class now so every Get skips the class lookup; a
	// lookup failure is impossible here (the pointer was just minted), but
	// a 0 cache falls back gracefully in Get anyway.
	classSize, _ := kv.pool.ClassSize(g)
	kv.mu.Lock()
	kv.entries[key] = &kvEntry{addr: g, size: len(value), classSize: classSize}
	kv.mu.Unlock()
	return nil
}

// Get fetches a value with a one-sided read; pointers corrected by
// compaction are repaired back into the index. The read operates on a
// private copy of the entry's pointer — entries are shared across
// concurrent Gets, so SmartRead must never mutate them in place — and the
// correction is folded back under the lock only if the entry still maps
// this key.
func (kv *KV) Get(key string) ([]byte, bool, error) {
	kv.mu.Lock()
	e := kv.entries[key]
	if e == nil {
		kv.mu.Unlock()
		return nil, false, nil
	}
	g := e.addr
	size := e.size
	classSize := e.classSize
	kv.mu.Unlock()
	if classSize == 0 {
		var err error
		if classSize, err = kv.pool.ClassSize(g); err != nil {
			return nil, false, err
		}
	}
	buf := make([]byte, classSize)
	if _, err := kv.pool.SmartRead(&g, buf); err != nil {
		return nil, false, err
	}
	kv.repair(key, e, g, classSize)
	return buf[:size], true, nil
}

// repair folds a corrected pointer (and a freshly learned class size) back
// into the index, unless the entry was concurrently replaced or deleted.
func (kv *KV) repair(key string, e *kvEntry, g GlobalAddr, classSize int) {
	kv.mu.Lock()
	if kv.entries[key] == e {
		e.addr = g
		e.classSize = classSize
	}
	kv.mu.Unlock()
}

// Delete frees a key's object.
func (kv *KV) Delete(key string) error {
	kv.mu.Lock()
	e := kv.entries[key]
	delete(kv.entries, key)
	kv.mu.Unlock()
	if e == nil {
		return nil
	}
	return kv.pool.Free(&e.addr)
}

// Len reports the number of keys.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.entries)
}
