// Package cluster aggregates multiple CoRM nodes into one logical shared
// memory space — the DSM deployment the paper's introduction motivates
// ("the memory space may consist of hundreds of physical nodes"). Each
// node runs the full CoRM stack (allocator, compaction, RDMA emulation);
// the pool adds placement and a thin keyed facade:
//
//   - Pool: explicit placement. Alloc picks a node (least-allocated),
//     returning a GlobalAddr = (node, 128-bit CoRM pointer). All Table 2
//     operations route to the owning node, so compaction on any node
//     stays invisible to pool users exactly as for a single node.
//   - KV: optional convenience mapping string keys to objects with
//     rendezvous (highest-random-weight) hashing, so adding nodes moves
//     only ~1/n of the keys. With ReplicationConfig{Replicas: k}, every
//     key is stored on its top-k rendezvous nodes: writes fan out in
//     parallel and ack after WriteConcern successes, reads fail over down
//     the ordered replica set, and stale or missing replicas are healed
//     by read repair and the background Replicator.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"corm/internal/client"
	"corm/internal/core"
)

// GlobalAddr locates an object in the cluster: the owning node index plus
// CoRM's 128-bit pointer on that node.
type GlobalAddr struct {
	Node int
	Addr core.Addr
}

func (g GlobalAddr) String() string { return fmt.Sprintf("node%d/%v", g.Node, g.Addr) }

// Pool is a client-side view over several CoRM nodes. Each node carries a
// consecutive-failure circuit breaker (health.go): transport-level faults
// open it, open breakers fail fast with ErrNodeDown and are skipped by
// Alloc, and a half-open probe (after a jittered ProbeCooldown, or an
// explicit ProbeNode) restores nodes that recover.
type Pool struct {
	// FailThreshold and ProbeCooldown tune the per-node breaker; set them
	// before issuing traffic.
	FailThreshold int
	ProbeCooldown time.Duration
	// ProbeJitter spreads each breaker cooldown (and StartProber's
	// cadence) by ±this fraction, so probes across many clients never
	// synchronize into a storm against a recovering node.
	ProbeJitter float64
	// ProbeTimeout bounds how long one ProbeNode call may block on an
	// unresponsive node before counting it as a failure.
	ProbeTimeout time.Duration

	mu        sync.Mutex
	nodes     []*client.Ctx
	labels    []string
	allocs    []int64 // live allocations per node, for least-loaded placement
	health    []nodeHealth
	onRecover func(node int) // invoked (outside mu) when a breaker closes
}

// Dial connects to every node address.
func Dial(addrs []string) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	p := newPool()
	for _, a := range addrs {
		ctx, err := client.CreateCtx(a)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", a, err)
		}
		p.nodes = append(p.nodes, ctx)
		p.labels = append(p.labels, a)
	}
	p.allocs = make([]int64, len(p.nodes))
	p.health = make([]nodeHealth, len(p.nodes))
	return p, nil
}

// NewFromClients builds a pool over existing contexts (in-process tests).
func NewFromClients(ctxs []*client.Ctx) *Pool {
	p := newPool()
	p.nodes = ctxs
	p.labels = make([]string, len(ctxs))
	for i := range p.labels {
		p.labels[i] = fmt.Sprintf("node%d", i)
	}
	p.allocs = make([]int64, len(ctxs))
	p.health = make([]nodeHealth, len(ctxs))
	return p
}

func newPool() *Pool {
	return &Pool{
		FailThreshold: DefaultFailThreshold,
		ProbeCooldown: DefaultProbeCooldown,
		ProbeJitter:   DefaultProbeJitter,
		ProbeTimeout:  DefaultProbeTimeout,
	}
}

// setRecoverHook registers a callback fired whenever a node's breaker
// closes after being open — the Replicator uses it to re-replicate onto a
// rejoined node immediately instead of waiting out its pacing interval.
func (p *Pool) setRecoverHook(f func(node int)) {
	p.mu.Lock()
	p.onRecover = f
	p.mu.Unlock()
}

// Close tears down every connection.
func (p *Pool) Close() {
	for _, n := range p.nodes {
		if n != nil {
			n.Close()
		}
	}
}

// Nodes reports the pool size.
func (p *Pool) Nodes() int { return len(p.nodes) }

// Node exposes one node's client context.
func (p *Pool) Node(i int) *client.Ctx { return p.nodes[i] }

// Alloc places an object on the least-allocated healthy node. Nodes whose
// breaker is open are skipped until their cooldown elapses (then one Alloc
// may probe them); if every node is down, Alloc fails fast.
func (p *Pool) Alloc(size int) (GlobalAddr, error) {
	p.mu.Lock()
	best := -1
	for i := range p.nodes {
		h := &p.health[i]
		if h.open && (h.probing || time.Since(h.openedAt) < p.cooldownOf(h)) {
			continue
		}
		if best == -1 || p.allocs[i] < p.allocs[best] {
			best = i
		}
	}
	if best == -1 {
		p.mu.Unlock()
		return GlobalAddr{}, fmt.Errorf("%w: all %d nodes", ErrNodeDown, len(p.nodes))
	}
	if h := &p.health[best]; h.open {
		h.probing = true // half-open: this Alloc doubles as the probe
	}
	p.allocs[best]++
	p.mu.Unlock()
	addr, err := p.nodes[best].Alloc(size)
	p.observe(best, err)
	if err != nil {
		p.mu.Lock()
		p.allocs[best]--
		p.mu.Unlock()
		return GlobalAddr{}, p.nodeErr(best, err)
	}
	return GlobalAddr{Node: best, Addr: addr}, nil
}

// AllocOn places an object on a specific node.
func (p *Pool) AllocOn(node, size int) (GlobalAddr, error) {
	if node < 0 || node >= len(p.nodes) {
		return GlobalAddr{}, p.errNodeRange(node)
	}
	if err := p.gate(node); err != nil {
		return GlobalAddr{}, err
	}
	addr, err := p.nodes[node].Alloc(size)
	p.observe(node, err)
	if err != nil {
		return GlobalAddr{}, p.nodeErr(node, err)
	}
	p.mu.Lock()
	p.allocs[node]++
	p.mu.Unlock()
	return GlobalAddr{Node: node, Addr: addr}, nil
}

// ctxOf resolves the owning node and passes its circuit breaker: an open
// breaker fails the operation fast with ErrNodeDown.
func (p *Pool) ctxOf(g GlobalAddr) (*client.Ctx, error) {
	if g.Node < 0 || g.Node >= len(p.nodes) {
		return nil, p.errNodeRange(g.Node)
	}
	if err := p.gate(g.Node); err != nil {
		return nil, err
	}
	return p.nodes[g.Node], nil
}

// Write updates an object; the pointer is corrected in place.
func (p *Pool) Write(g *GlobalAddr, payload []byte) error {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return err
	}
	err = ctx.Write(&g.Addr, payload)
	p.observe(g.Node, err)
	return p.nodeErr(g.Node, err)
}

// Read reads via RPC with transparent correction.
func (p *Pool) Read(g *GlobalAddr, buf []byte) (int, error) {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return 0, err
	}
	n, err := ctx.Read(&g.Addr, buf)
	p.observe(g.Node, err)
	return n, p.nodeErr(g.Node, err)
}

// SmartRead reads one-sidedly, repairing indirect pointers with ScanRead.
func (p *Pool) SmartRead(g *GlobalAddr, buf []byte) (int, error) {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return 0, err
	}
	n, err := ctx.SmartRead(&g.Addr, buf)
	p.observe(g.Node, err)
	return n, p.nodeErr(g.Node, err)
}

// Free releases the object.
func (p *Pool) Free(g *GlobalAddr) error {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return err
	}
	err = ctx.Free(&g.Addr)
	p.observe(g.Node, err)
	if err != nil {
		return p.nodeErr(g.Node, err)
	}
	p.mu.Lock()
	p.allocs[g.Node]--
	p.mu.Unlock()
	return nil
}

// ReleasePtr releases the old virtual address of a corrected pointer.
func (p *Pool) ReleasePtr(g *GlobalAddr) error {
	ctx, err := p.ctxOf(*g)
	if err != nil {
		return err
	}
	err = ctx.ReleasePtr(&g.Addr)
	p.observe(g.Node, err)
	return p.nodeErr(g.Node, err)
}

// ClassSize reports the payload capacity behind a global pointer. It is a
// local lookup (classes are cached at connect time), so it bypasses the
// breaker gate: it must not consume a half-open probe slot.
func (p *Pool) ClassSize(g GlobalAddr) (int, error) {
	if g.Node < 0 || g.Node >= len(p.nodes) {
		return 0, p.errNodeRange(g.Node)
	}
	return p.nodes[g.Node].ClassSize(g.Addr)
}

// --- Keyed facade ---

// Replica states. A replica is live (readable, at the entry's version),
// pending (its write is still in flight after the W-ack returned), or
// stale (known missing or divergent — the node restarted empty, missed
// the write, or served an old version; the repair path re-populates it).
const (
	repLive uint8 = iota
	repPending
	repStale
)

// versionTagBytes prefixes every replicated record: a little-endian
// 64-bit per-entry version carried inside the stored payload, so replica
// divergence is detectable from the record itself — a replica that
// rejoined with old data answers reads with the wrong tag and is repaired
// instead of trusted. Unreplicated KVs (Replicas=1) keep the bare
// encoding.
const versionTagBytes = 8

// kvReplica is one key's placement on one node of its replica set.
type kvReplica struct {
	addr GlobalAddr // addr.Node is the replica's node; Addr may be zero while stale
	// classSize caches the record's size-class capacity so reads never
	// pay a per-read class lookup; 0 means unknown (look up once).
	classSize int
	state     uint8
}

// kvEntry is the client-side index record for one key: the ordered
// replica set (rendezvous rank order — reps[0] is the primary) plus the
// entry's current version.
type kvEntry struct {
	size    int
	version uint64
	reps    []kvReplica

	// degraded marks an entry below full replication; degradedAt feeds
	// the replication-lag histogram when it is healed.
	degraded   bool
	degradedAt time.Time
	// repairing serializes repair work per entry so one slow node cannot
	// fan a repair storm out of every failed read.
	repairing bool
}

// ReplicationConfig parameterizes a replicated KV.
type ReplicationConfig struct {
	// Replicas is k: every key lives on its top-k rendezvous nodes
	// (clamped to the pool size; minimum 1).
	Replicas int
	// WriteConcern is W: Put acks after W replica writes succeed
	// (default and maximum Replicas, minimum 1). The remaining writes
	// complete in the background; replicas they miss are marked stale
	// and healed by read repair or the Replicator.
	WriteConcern int
}

// KV maps string keys onto pool objects with rendezvous hashing,
// optionally replicated across each key's top-k rendezvous nodes.
type KV struct {
	pool *Pool
	k, w int

	mu      sync.Mutex
	entries map[string]*kvEntry
	// versions issues one monotonic version per key across its whole
	// lifetime (survives Delete), so records from any two Puts — even
	// overlapping ones — never share a tag.
	versions map[string]uint64
	// degraded indexes entries below full replication, so the Replicator
	// scans only what needs work.
	degraded map[string]*kvEntry
}

// NewKV builds an unreplicated keyed store over the pool (one copy per
// key, on its rendezvous node — the pre-replication behavior).
func NewKV(pool *Pool) *KV {
	return NewReplicatedKV(pool, ReplicationConfig{Replicas: 1})
}

// NewReplicatedKV builds a keyed store that replicates every key across
// its top-k rendezvous nodes with the given write concern.
func NewReplicatedKV(pool *Pool, cfg ReplicationConfig) *KV {
	k := cfg.Replicas
	if k < 1 {
		k = 1
	}
	if n := pool.Nodes(); k > n {
		k = n
	}
	w := cfg.WriteConcern
	if w < 1 || w > k {
		w = k
	}
	return &KV{
		pool:     pool,
		k:        k,
		w:        w,
		entries:  make(map[string]*kvEntry),
		versions: make(map[string]uint64),
		degraded: make(map[string]*kvEntry),
	}
}

// Replicas reports k, the configured replication factor (after clamping).
func (kv *KV) Replicas() int { return kv.k }

// WriteConcern reports W, the number of replica acks a Put waits for.
func (kv *KV) WriteConcern() int { return kv.w }

// score is the rendezvous (highest-random-weight) hash of (node, key).
func (kv *KV) score(key string, node int) uint64 {
	h := fnv.New64a()
	// Node id first, so its bytes diffuse through the whole key; a
	// final avalanche step removes FNV's weak tail mixing.
	fmt.Fprintf(h, "%d/%s", node, key)
	return mix64(h.Sum64())
}

// NodeFor returns the rendezvous-hash owner node for a key: the node
// whose hash(key, node) is highest. Adding or removing a node relocates
// only the keys it wins or loses.
func (kv *KV) NodeFor(key string) int {
	best, bestScore := 0, uint64(0)
	for i := 0; i < kv.pool.Nodes(); i++ {
		if s := kv.score(key, i); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// ReplicasFor returns the key's ordered replica set: its top-k rendezvous
// nodes, highest score first. ReplicasFor(key)[0] == NodeFor(key); the
// ordering is stable under membership change the same way rendezvous
// hashing is — a node leaving promotes the next-ranked node per key.
func (kv *KV) ReplicasFor(key string) []int {
	n := kv.pool.Nodes()
	k := kv.k
	if k > n {
		k = n
	}
	type ranked struct {
		node  int
		score uint64
	}
	top := make([]ranked, 0, k) // insertion-sorted, highest first
	for i := 0; i < n; i++ {
		s := kv.score(key, i)
		pos := len(top)
		for pos > 0 && s > top[pos-1].score {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(top) < k {
			top = append(top, ranked{})
		}
		copy(top[pos+1:], top[pos:len(top)-1])
		top[pos] = ranked{node: i, score: s}
	}
	nodes := make([]int, len(top))
	for i, r := range top {
		nodes[i] = r.node
	}
	return nodes
}

// mix64 is a finalizing avalanche (splitmix64's) for rendezvous scores.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// tagBytes is the per-record version-tag overhead (0 when unreplicated).
func (kv *KV) tagBytes() int {
	if kv.k > 1 {
		return versionTagBytes
	}
	return 0
}

// recordTag is the 64-bit tag stored ahead of a replicated record: the
// entry's version namespaced by a hash of its key. Namespacing matters
// because a wiped node's fresh allocator hands out the same virtual
// addresses again, so a stale pointer can resolve to a record of a
// *different* key whose version number happens to match; mixing the key
// into the tag makes that cross-key ABA detectable too.
func (kv *KV) recordTag(key string, version uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64() + version)
}

// encodeRecord builds the stored record for a value at a tag.
func (kv *KV) encodeRecord(tag uint64, value []byte) []byte {
	if kv.k == 1 {
		return value
	}
	rec := make([]byte, versionTagBytes+len(value))
	binary.LittleEndian.PutUint64(rec, tag)
	copy(rec[versionTagBytes:], value)
	return rec
}

// nextVersion reserves the next version for a key, under kv.mu.
func (kv *KV) nextVersion(key string) uint64 {
	kv.mu.Lock()
	kv.versions[key]++
	v := kv.versions[key]
	kv.mu.Unlock()
	return v
}

// --- degraded-entry accounting (all under kv.mu) ---

// noteState re-derives an entry's degraded flag after a replica state
// change, moving the under-replicated gauge and the degraded index, and
// recording the replication lag when an entry heals back to full
// replication.
func (kv *KV) noteState(key string, e *kvEntry) {
	deg := false
	for i := range e.reps {
		if e.reps[i].state != repLive {
			deg = true
			break
		}
	}
	switch {
	case deg && !e.degraded:
		e.degraded = true
		e.degradedAt = time.Now()
		kv.degraded[key] = e
		cuUnderReplicated.Inc()
	case !deg && e.degraded:
		e.degraded = false
		delete(kv.degraded, key)
		cuUnderReplicated.Dec()
		cuReplicationLagNs.Observe(time.Since(e.degradedAt).Nanoseconds())
	}
}

// noteRemoved drops an entry's degraded-index membership when it leaves
// the map (Delete, or replacement by a newer Put).
func (kv *KV) noteRemoved(key string, e *kvEntry) {
	if e != nil && e.degraded {
		delete(kv.degraded, key)
		cuUnderReplicated.Dec()
	}
}

// DegradedKeys reports how many entries are currently below full
// replication (the Replicator's work queue depth).
func (kv *KV) DegradedKeys() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.degraded)
}

// degradedSnapshot returns up to limit keys needing repair.
func (kv *KV) degradedSnapshot(limit int) []string {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	keys := make([]string, 0, min(limit, len(kv.degraded)))
	for k := range kv.degraded {
		if len(keys) >= limit {
			break
		}
		keys = append(keys, k)
	}
	return keys
}

// Put stores value under key — on its rendezvous node when unreplicated,
// or fanned out to its top-k rendezvous nodes acking after WriteConcern
// successes when replicated.
func (kv *KV) Put(key string, value []byte) error {
	if kv.k == 1 {
		return kv.putSingle(key, value)
	}
	return kv.putReplicated(key, value)
}

// putSingle is the unreplicated Put: free the old object, allocate and
// write the new one on the key's rendezvous node.
func (kv *KV) putSingle(key string, value []byte) error {
	kv.mu.Lock()
	old := kv.entries[key]
	kv.mu.Unlock()
	if old != nil {
		g := old.reps[0].addr
		if err := kv.pool.Free(&g); err != nil {
			return err
		}
	}
	g, err := kv.pool.AllocOn(kv.NodeFor(key), len(value))
	if err != nil {
		return err
	}
	if err := kv.pool.Write(&g, value); err != nil {
		// Don't leak the fresh allocation when the write fails; the free
		// is best-effort — if the node just died it will fail too, and
		// the node's store is gone with it.
		kv.pool.Free(&g)
		return err
	}
	// Cache the size class now so every Get skips the class lookup; a
	// lookup failure is impossible here (the pointer was just minted), but
	// a 0 cache falls back gracefully in Get anyway.
	classSize, _ := kv.pool.ClassSize(g)
	e := &kvEntry{
		size:    len(value),
		version: 1,
		reps:    []kvReplica{{addr: g, classSize: classSize, state: repLive}},
	}
	kv.mu.Lock()
	kv.entries[key] = e
	kv.mu.Unlock()
	return nil
}

// repOutcome is one replica write's result during a Put fan-out.
type repOutcome struct {
	i         int
	addr      GlobalAddr
	classSize int
	err       error
}

// putReplicated writes the record to every replica node in parallel
// (fresh allocation per replica — the old record survives until the new
// entry is installed) and acks after W successes. Writes still in flight
// at ack time finish in the background and fold their outcome into the
// entry; replicas that failed are marked stale for the repair paths. If
// fewer than W writes succeed, the Put fails, its allocations are
// released, and the previous entry stays fully intact.
func (kv *KV) putReplicated(key string, value []byte) error {
	nodes := kv.ReplicasFor(key)
	version := kv.nextVersion(key)
	rec := kv.encodeRecord(kv.recordTag(key, version), value)
	cuReplicatedWrites.Inc()

	// Fan out: one goroutine per replica allocates and writes. The write
	// itself is asynchronous on the node's OpBatch channel (WriteAsync),
	// so concurrent Puts touching the same node coalesce into one frame.
	res := make(chan repOutcome, len(nodes))
	for i, node := range nodes {
		go func(i, node int) {
			g, err := kv.pool.AllocOn(node, len(rec))
			if err != nil {
				res <- repOutcome{i: i, err: err}
				return
			}
			classSize, _ := kv.pool.ClassSize(g)
			if err := kv.pool.writeAck(&g, rec); err != nil {
				kv.pool.Free(&g) // best-effort; the node may be gone
				res <- repOutcome{i: i, err: err}
				return
			}
			res <- repOutcome{i: i, addr: g, classSize: classSize, err: nil}
		}(i, node)
	}

	e := &kvEntry{size: len(value), version: version, reps: make([]kvReplica, len(nodes))}
	for i, node := range nodes {
		e.reps[i] = kvReplica{addr: GlobalAddr{Node: node}, state: repPending}
	}

	// Collect outcomes until W acks, every write resolves, or W becomes
	// unreachable.
	succ, pending := 0, len(nodes)
	var firstErr error
	for pending > 0 && succ < kv.w && succ+pending >= kv.w {
		o := <-res
		pending--
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			e.reps[o.i].state = repStale
			continue
		}
		e.reps[o.i] = kvReplica{addr: o.addr, classSize: o.classSize, state: repLive}
		succ++
	}

	if succ < kv.w {
		// Unreachable write concern: drain the stragglers, release every
		// allocation this Put made, and leave the previous entry intact.
		cuWriteConcernMisses.Inc()
		go func(e *kvEntry, pending int) {
			for ; pending > 0; pending-- {
				if o := <-res; o.err == nil {
					g := o.addr
					kv.pool.Free(&g)
				}
			}
			for i := range e.reps {
				if e.reps[i].state == repLive {
					g := e.reps[i].addr
					kv.pool.Free(&g)
				}
			}
		}(e, pending)
		return fmt.Errorf("%w: %d/%d acks (replicas=%d): %v",
			ErrWriteConcern, succ, kv.w, kv.k, firstErr)
	}

	// W replicas hold the record: install the entry. A concurrent Put may
	// have installed a higher version already — then this write lost the
	// overlap race and releases its own allocations instead.
	kv.mu.Lock()
	prev := kv.entries[key]
	if prev != nil && prev.version > version {
		kv.mu.Unlock()
		kv.freeEntrySnapshot(kv.snapshotLive(e))
		kv.drainStragglers(key, nil, version, res, pending)
		return nil
	}
	kv.noteRemoved(key, prev)
	kv.entries[key] = e
	kv.noteState(key, e)
	degraded := e.degraded
	var prevReps []GlobalAddr
	if prev != nil {
		prevReps = kv.snapshotLive(prev)
	}
	kv.mu.Unlock()

	// The replaced entry's records are garbage now.
	kv.freeEntrySnapshot(prevReps)
	if degraded {
		// A replica write already failed before the ack: queue its repair
		// now rather than waiting for a read to trip over it or for the
		// replicator's next paced cycle. If the node is still down, the
		// repair no-ops and the key stays on the degraded index.
		kv.scheduleRepair(key)
	}
	// Stragglers keep running; their outcomes fold into the entry (or are
	// released if the entry moved on).
	kv.drainStragglers(key, e, version, res, pending)
	return nil
}

// snapshotLive collects every non-zero replica address of an entry, under
// kv.mu (callers hold it or own the entry exclusively).
func (kv *KV) snapshotLive(e *kvEntry) []GlobalAddr {
	var gs []GlobalAddr
	for i := range e.reps {
		if !e.reps[i].addr.Addr.IsZero() {
			gs = append(gs, e.reps[i].addr)
		}
	}
	return gs
}

// freeEntrySnapshot best-effort releases a set of replica records.
func (kv *KV) freeEntrySnapshot(gs []GlobalAddr) {
	for i := range gs {
		g := gs[i]
		kv.pool.Free(&g)
	}
}

// drainStragglers folds post-ack write outcomes into the entry: a late
// success makes its replica live; a late failure marks it stale and
// schedules its repair — the ack already happened, so nothing else will
// notice the miss until a read trips over it or the replicator's paced
// cycle finds it, and a node that rejoined between the ack and the
// straggler's failure would otherwise wait out the full interval. If the
// entry was replaced meanwhile, late allocations are released instead.
// Runs in the background when pending > 0.
func (kv *KV) drainStragglers(key string, e *kvEntry, version uint64, res <-chan repOutcome, pending int) {
	if pending == 0 {
		return
	}
	go func() {
		for ; pending > 0; pending-- {
			o := <-res
			kv.mu.Lock()
			current := e != nil && kv.entries[key] == e && e.version == version
			if current {
				if o.err != nil {
					e.reps[o.i].state = repStale
				} else {
					e.reps[o.i] = kvReplica{addr: o.addr, classSize: o.classSize, state: repLive}
				}
				kv.noteState(key, e)
			}
			kv.mu.Unlock()
			if current && o.err != nil {
				kv.scheduleRepair(key)
			}
			if !current && o.err == nil {
				g := o.addr
				kv.pool.Free(&g)
			}
		}
	}()
}

// Get fetches a value. Unreplicated, it reads the key's single copy with
// a one-sided read. Replicated, it walks the ordered replica set: the
// primary serves; if the primary's breaker is open, its node faults, or
// its record is missing or carries a stale version tag, the read fails
// over to the next replica — and the replicas that failed are marked for
// read repair.
func (kv *KV) Get(key string) ([]byte, bool, error) {
	return kv.get(key, true)
}

func (kv *KV) get(key string, allowRetry bool) ([]byte, bool, error) {
	kv.mu.Lock()
	e := kv.entries[key]
	if e == nil {
		kv.mu.Unlock()
		return nil, false, nil
	}
	version := e.version
	size := e.size
	reps := make([]kvReplica, len(e.reps))
	copy(reps, e.reps)
	kv.mu.Unlock()

	tag := kv.tagBytes()
	var start time.Time
	var wantTag uint64
	if kv.k > 1 {
		start = time.Now()
		wantTag = kv.recordTag(key, version)
	}
	failures := 0
	var lastErr error
	for i := range reps {
		r := reps[i]
		if r.state != repLive || r.addr.Addr.IsZero() {
			continue
		}
		classSize := r.classSize
		if classSize == 0 {
			var err error
			if classSize, err = kv.pool.ClassSize(r.addr); err != nil {
				failures++
				lastErr = err
				continue
			}
		}
		buf := make([]byte, classSize)
		g := r.addr
		if _, err := kv.pool.SmartRead(&g, buf); err != nil {
			failures++
			if kv.k == 1 {
				return nil, false, err
			}
			if isDivergent(err) {
				// The node restarted without this record (wiped, or it
				// missed the write): divergence, not an outage. Mark for
				// repair — this key and, since a rebuilt store lost every
				// record it held, the node's whole population — and fail
				// over.
				kv.markStale(key, e, i, version)
				kv.suspectNode(r.addr.Node)
			}
			lastErr = err
			continue
		}
		if tag > 0 {
			if v := binary.LittleEndian.Uint64(buf); v != wantTag {
				// The replica answered with some other record — an older
				// version of this key, or another key entirely through a
				// recycled address. Repairable divergence, and recycled
				// addresses mean the store was rebuilt: suspect the node.
				cuStaleReads.Inc()
				kv.markStale(key, e, i, version)
				kv.suspectNode(r.addr.Node)
				failures++
				lastErr = fmt.Errorf("%w: key %q replica on node %d has tag %#x, want %#x",
					ErrStaleReplica, key, r.addr.Node, v, wantTag)
				continue
			}
		}
		kv.foldAddr(key, e, i, g, classSize, version)
		if failures > 0 {
			// Served by a backup after the primary path failed: that is
			// one failover, measured end to end from the Get's start.
			cuFailovers.Inc()
			cuFailoverNs.Observe(time.Since(start).Nanoseconds())
			kv.scheduleRepair(key)
		}
		return buf[tag : tag+size], true, nil
	}

	// No replica served. The entry may have been replaced mid-read (its
	// old records freed under us): retry once against the fresh entry.
	if kv.k > 1 && allowRetry {
		kv.mu.Lock()
		changed := kv.entries[key] != e
		kv.mu.Unlock()
		if changed {
			return kv.get(key, false)
		}
	}
	if lastErr == nil {
		return nil, false, nil
	}
	if kv.k > 1 {
		kv.scheduleRepair(key)
		return nil, false, fmt.Errorf("%w: key %q (%d replicas): %w", ErrNoReplica, key, len(reps), lastErr)
	}
	return nil, false, lastErr
}

// markStale flags one replica as divergent, if the entry is still current.
func (kv *KV) markStale(key string, e *kvEntry, i int, version uint64) {
	kv.mu.Lock()
	if kv.entries[key] == e && e.version == version && e.reps[i].state == repLive {
		e.reps[i].state = repStale
		kv.noteState(key, e)
	}
	kv.mu.Unlock()
}

// suspectNode marks every entry's live replica on one node stale. One
// detected divergence is evidence the node's whole store was rebuilt (a
// wiped node misses old records and rejects old rkeys on every key it
// held), so rather than waiting for each key to be read — keys whose
// reads are served by an earlier-ranked replica would never probe the
// wiped copy — one detection queues the node's full population for the
// replicator. A false suspicion (a benign missing-record race) costs one
// verified re-copy per key, never correctness: repair reads from a
// tag-verified live replica before touching the suspect.
func (kv *KV) suspectNode(node int) {
	cuNodeSuspicions.Inc()
	kv.mu.Lock()
	for key, e := range kv.entries {
		for i := range e.reps {
			if e.reps[i].state == repLive && e.reps[i].addr.Node == node {
				e.reps[i].state = repStale
				kv.noteState(key, e)
			}
		}
	}
	kv.mu.Unlock()
}

// foldAddr folds a corrected pointer (and a freshly learned class size)
// back into one replica of the index, unless the entry moved on.
func (kv *KV) foldAddr(key string, e *kvEntry, i int, g GlobalAddr, classSize int, version uint64) {
	kv.mu.Lock()
	if kv.entries[key] == e && e.version == version && e.reps[i].state == repLive {
		e.reps[i].addr = g
		e.reps[i].classSize = classSize
	}
	kv.mu.Unlock()
}

// scheduleRepair kicks an asynchronous repair of a key's stale replicas;
// the per-entry repairing latch collapses concurrent triggers.
func (kv *KV) scheduleRepair(key string) {
	cuReadRepairTriggers.Inc()
	go kv.RepairKey(key)
}

// RepairKey re-populates every repairable stale replica of a key from a
// live one: it fetches the authoritative record (verifying the version
// tag), writes a fresh copy onto each stale replica's node, folds the new
// placement into the index, and releases the divergent record. Replicas
// whose node is still down are left for a later pass. It returns how many
// replicas were restored.
func (kv *KV) RepairKey(key string) (int, error) {
	kv.mu.Lock()
	e := kv.entries[key]
	if e == nil || e.repairing {
		kv.mu.Unlock()
		return 0, nil
	}
	version := e.version
	size := e.size
	type staleRep struct {
		i    int
		node int
	}
	var stale []staleRep
	var live []kvReplica
	for i := range e.reps {
		r := e.reps[i]
		switch r.state {
		case repStale:
			if !kv.pool.NodeDown(r.addr.Node) {
				stale = append(stale, staleRep{i: i, node: r.addr.Node})
			}
		case repLive:
			live = append(live, r)
		}
	}
	if len(stale) == 0 || len(live) == 0 {
		kv.mu.Unlock()
		return 0, nil
	}
	e.repairing = true
	kv.mu.Unlock()
	defer func() {
		kv.mu.Lock()
		e.repairing = false
		kv.mu.Unlock()
	}()

	rec, ok := kv.fetchRecord(live, kv.recordTag(key, version), size)
	if !ok {
		cuRepairFails.Inc()
		return 0, fmt.Errorf("cluster: repair %q: no live replica served version %d", key, version)
	}

	repaired := 0
	var firstErr error
	for _, s := range stale {
		g, err := kv.pool.AllocOn(s.node, len(rec))
		if err != nil {
			cuRepairFails.Inc()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		classSize, _ := kv.pool.ClassSize(g)
		if err := kv.pool.writeAck(&g, rec); err != nil {
			kv.pool.Free(&g)
			cuRepairFails.Inc()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		kv.mu.Lock()
		if kv.entries[key] == e && e.version == version && e.reps[s.i].state == repStale {
			old := e.reps[s.i].addr
			e.reps[s.i] = kvReplica{addr: g, classSize: classSize, state: repLive}
			kv.noteState(key, e)
			kv.mu.Unlock()
			repaired++
			cuReplicasRepaired.Inc()
			if !old.Addr.IsZero() {
				kv.freeIfOurs(key, version, old)
			}
		} else {
			kv.mu.Unlock()
			kv.pool.Free(&g) // the entry moved on; this copy is orphaned
		}
	}
	return repaired, firstErr
}

// freeIfOurs releases a replaced replica record only when its address
// provably still holds this key's current record (version tag verified
// by a read-before-free). A rebuilt store recycles virtual addresses, so
// an unconditional free of the "old divergent record" could land on
// another key's freshly repaired replica living at the reused address
// and destroy it. Anything that doesn't prove to be ours is left alone:
// on a wiped node the record is already gone (the rebuild reclaimed it
// wholesale), and a genuinely divergent old-version record was already
// best-effort freed when its Put was superseded.
func (kv *KV) freeIfOurs(key string, version uint64, old GlobalAddr) {
	tag := kv.tagBytes()
	if tag == 0 {
		// Untagged records (k==1) never reach the repair path; if they
		// did, there is no way to verify ownership — free as before.
		kv.pool.Free(&old)
		return
	}
	buf := make([]byte, tag)
	g := old
	if _, err := kv.pool.SmartRead(&g, buf); err != nil {
		return
	}
	if binary.LittleEndian.Uint64(buf) != kv.recordTag(key, version) {
		return
	}
	kv.pool.Free(&g)
}

// fetchRecord reads the full stored record (version tag included) from
// the first live replica that serves the expected tag.
func (kv *KV) fetchRecord(live []kvReplica, wantTag uint64, size int) ([]byte, bool) {
	tag := kv.tagBytes()
	for _, r := range live {
		classSize := r.classSize
		if classSize == 0 {
			var err error
			if classSize, err = kv.pool.ClassSize(r.addr); err != nil {
				continue
			}
		}
		buf := make([]byte, classSize)
		g := r.addr
		if _, err := kv.pool.SmartRead(&g, buf); err != nil {
			continue
		}
		if tag > 0 && binary.LittleEndian.Uint64(buf) != wantTag {
			continue
		}
		return buf[:tag+size], true
	}
	return nil, false
}

// Delete frees a key's object on every replica. Replicas whose node is
// down (or whose record is already gone) are skipped best-effort: a wiped
// node has nothing to free, and a dead one cannot be reached.
func (kv *KV) Delete(key string) error {
	kv.mu.Lock()
	e := kv.entries[key]
	delete(kv.entries, key)
	kv.noteRemoved(key, e)
	kv.mu.Unlock()
	if e == nil {
		return nil
	}
	if kv.k == 1 {
		g := e.reps[0].addr
		return kv.pool.Free(&g)
	}
	var firstErr error
	for i := range e.reps {
		if e.reps[i].addr.Addr.IsZero() {
			continue
		}
		g := e.reps[i].addr
		if err := kv.pool.Free(&g); err != nil && firstErr == nil &&
			!isMissing(err) && !errors.Is(err, ErrNodeDown) {
			firstErr = err
		}
	}
	return firstErr
}

// Len reports the number of keys.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.entries)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
