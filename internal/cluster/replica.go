// Pool-level replication primitives: raw k-copy objects without the KV's
// keyed index. A ReplicaSet is an ordered list of placements for one
// logical object; writes fan out in parallel through each node's async
// write batcher (so concurrent fan-outs to one node coalesce into shared
// OpBatch frames) and ack after W successes, reads walk the set in order
// failing over past dead replicas. The KV builds its replicated Put on
// writeAck; these exported entry points give the same machinery to users
// placing objects explicitly.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"corm/internal/transport"
)

// ErrWriteConcern marks a replicated write that could not reach its write
// concern: fewer than W replicas acknowledged. The underlying first
// failure is wrapped.
var ErrWriteConcern = errors.New("cluster: write concern not met")

// ErrNoReplica marks a replicated read that exhausted the whole replica
// set without one replica serving the expected record.
var ErrNoReplica = errors.New("cluster: no live replica")

// ErrStaleReplica marks a replica whose record carries the wrong version
// tag: the node rejoined with old data (divergence), distinct from a node
// being down.
var ErrStaleReplica = errors.New("cluster: stale replica")

// ReplicaSet is one logical object's ordered placements. Reps[0] is the
// primary; reads try replicas in order.
type ReplicaSet struct {
	Reps []GlobalAddr
}

// writeAckRetries bounds re-issues of a replica write across transport
// reconnects. Plain writes are never auto-retried (a lost frame cannot
// tell whether the server applied it), but every writeAck caller targets
// a freshly allocated address nothing else references yet — re-issuing
// the same bytes to a private slot is idempotent by construction. This
// matters right after a node rejoins: the first write on each pooled
// channel finds the old connection dead, and without the retry it would
// spuriously fail the replica (or the repair) instead of redialing.
const writeAckRetries = 2

// writeAck issues one replica write through the node's asynchronous write
// batcher and waits for its acknowledgement. Because the write rides the
// shared OpBatch channel, concurrent replica writes from other Puts
// against the same node coalesce into one frame; the immediate Flush
// bounds the added latency to at most one coalescing window. Pointer
// corrections fold into g; every attempt's outcome feeds the node's
// breaker.
func (p *Pool) writeAck(g *GlobalAddr, payload []byte) error {
	if g.Node < 0 || g.Node >= len(p.nodes) {
		return p.errNodeRange(g.Node)
	}
	if err := p.gate(g.Node); err != nil {
		return err
	}
	ctx := p.nodes[g.Node]
	var err error
	for attempt := 0; attempt <= writeAckRetries; attempt++ {
		fut := ctx.WriteAsync(&g.Addr, payload)
		ctx.Flush()
		_, err = fut.Wait()
		p.observe(g.Node, err)
		if err == nil || !transport.IsRetryable(err) {
			break
		}
	}
	return p.nodeErr(g.Node, err)
}

// AllocReplicated allocates k copies of a size on k distinct healthy
// nodes, least-loaded first (so the primary lands where Alloc would have
// placed a single copy). It fails — releasing any partial allocations —
// when fewer than k nodes are reachable.
func (p *Pool) AllocReplicated(size, k int) (*ReplicaSet, error) {
	if k < 1 {
		k = 1
	}
	nodes, err := p.pickReplicaNodes(k)
	if err != nil {
		return nil, err
	}
	rs := &ReplicaSet{Reps: make([]GlobalAddr, len(nodes))}
	type out struct {
		i   int
		g   GlobalAddr
		err error
	}
	ch := make(chan out, len(nodes))
	for i, node := range nodes {
		go func(i, node int) {
			g, err := p.AllocOn(node, size)
			ch <- out{i: i, g: g, err: err}
		}(i, node)
	}
	var firstErr error
	for range nodes {
		o := <-ch
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		rs.Reps[o.i] = o.g
	}
	if firstErr != nil {
		for i := range rs.Reps {
			if !rs.Reps[i].Addr.IsZero() {
				g := rs.Reps[i]
				p.Free(&g)
			}
		}
		return nil, fmt.Errorf("cluster: replicated alloc (k=%d): %w", k, firstErr)
	}
	return rs, nil
}

// pickReplicaNodes chooses k distinct nodes, skipping open breakers,
// least-loaded first.
func (p *Pool) pickReplicaNodes(k int) ([]int, error) {
	type cand struct {
		node int
		load int64
	}
	p.mu.Lock()
	cands := make([]cand, 0, len(p.nodes))
	for i := range p.nodes {
		h := &p.health[i]
		if h.open && (h.probing || time.Since(h.openedAt) < p.cooldownOf(h)) {
			continue
		}
		cands = append(cands, cand{node: i, load: p.allocs[i]})
	}
	p.mu.Unlock()
	if len(cands) < k {
		return nil, fmt.Errorf("%w: %d of %d nodes healthy, need %d",
			ErrNodeDown, len(cands), len(p.nodes), k)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].load < cands[b].load })
	nodes := make([]int, k)
	for i := 0; i < k; i++ {
		nodes[i] = cands[i].node
	}
	return nodes, nil
}

// WriteReplicated writes the payload to every replica in parallel and
// returns once w replicas acknowledged (w<=0 or w>k means all). Writes
// still in flight complete in the background (their breaker outcomes are
// still observed; their pointer corrections are dropped — the stale
// virtual address remains resolvable one-sidedly via ScanRead). If w acks
// are unreachable, the first failure is returned wrapped in
// ErrWriteConcern.
func (p *Pool) WriteReplicated(rs *ReplicaSet, payload []byte, w int) error {
	k := len(rs.Reps)
	if k == 0 {
		return errors.New("cluster: empty replica set")
	}
	if w <= 0 || w > k {
		w = k
	}
	type out struct {
		i   int
		g   GlobalAddr
		err error
	}
	ch := make(chan out, k)
	for i := range rs.Reps {
		// Private copy per goroutine: stragglers must not mutate the
		// caller's set after WriteReplicated returns.
		g := rs.Reps[i]
		go func(i int, g GlobalAddr) {
			err := p.writeAck(&g, payload)
			ch <- out{i: i, g: g, err: err}
		}(i, g)
	}
	succ, pending := 0, k
	var firstErr error
	for pending > 0 && succ < w && succ+pending >= w {
		o := <-ch
		pending--
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		rs.Reps[o.i] = o.g // fold the corrected pointer
		succ++
	}
	if pending > 0 {
		go func(pending int) {
			for ; pending > 0; pending-- {
				<-ch
			}
		}(pending)
	}
	if succ < w {
		cuWriteConcernMisses.Inc()
		return fmt.Errorf("%w: %d/%d acks (k=%d): %v", ErrWriteConcern, succ, w, k, firstErr)
	}
	return nil
}

// ReadReplicated reads the object from the first replica that serves it,
// walking the set in order past dead or missing replicas. It returns the
// bytes read and the index of the replica that served (0 = primary). A
// successful read past index 0 counts as a failover.
func (p *Pool) ReadReplicated(rs *ReplicaSet, buf []byte) (n, replica int, err error) {
	if len(rs.Reps) == 0 {
		return 0, -1, errors.New("cluster: empty replica set")
	}
	start := time.Now()
	var lastErr error
	for i := range rs.Reps {
		g := rs.Reps[i]
		if g.Addr.IsZero() {
			continue
		}
		n, err := p.SmartRead(&g, buf)
		if err == nil {
			rs.Reps[i] = g
			if i > 0 {
				cuFailovers.Inc()
				cuFailoverNs.Observe(time.Since(start).Nanoseconds())
			}
			return n, i, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: all replicas unplaced")
	}
	return 0, -1, fmt.Errorf("%w: %d replicas: %w", ErrNoReplica, len(rs.Reps), lastErr)
}

// FreeReplicated releases every replica, best-effort: replicas already
// gone (missing) or behind a down node don't fail the free — their
// records died with the node's store.
func (p *Pool) FreeReplicated(rs *ReplicaSet) error {
	var firstErr error
	for i := range rs.Reps {
		if rs.Reps[i].Addr.IsZero() {
			continue
		}
		g := rs.Reps[i]
		if err := p.Free(&g); err != nil && firstErr == nil &&
			!isMissing(err) && !errors.Is(err, ErrNodeDown) {
			firstErr = err
		}
	}
	return firstErr
}
