package cluster

import (
	"fmt"
	"sync"

	"corm/internal/client"
	"corm/internal/rpc"
)

// ErrThrottled is the typed throttle sentinel surfaced by both halves of
// overload control: the client-side Admission controller returns it (wrapped
// in a ThrottleError naming the tenant) before an operation leaves the
// process, and the server-side queue-depth shed (rpc.Server) surfaces the
// same sentinel through the wire status. errors.Is(err, ErrThrottled)
// therefore catches "shed somewhere" uniformly. A throttle is load pressure
// on a healthy node — it is never a transport error, so it cannot trip a
// circuit breaker or count against a node's health.
var ErrThrottled = rpc.ErrThrottled

// ThrottleError is an admission rejection attributed to a tenant. It
// unwraps to ErrThrottled.
type ThrottleError struct {
	// Tenant is the admission bucket that rejected the operation.
	Tenant string
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("cluster: tenant %q throttled by admission control", e.Tenant)
}

func (e *ThrottleError) Unwrap() error { return ErrThrottled }

// Admission is the per-tenant admission controller: each tenant gets a
// token bucket, and operations are admitted or rejected before they spend
// any cluster resources. Tenants without a configured bucket are unlimited
// — admission is opt-in per tenant, so a deployment can cap its batch
// tenants while leaving interactive ones unthrottled.
type Admission struct {
	mu      sync.RWMutex
	tenants map[string]*client.TokenBucket
}

// NewAdmission builds an empty controller (every tenant unlimited).
func NewAdmission() *Admission {
	return &Admission{tenants: make(map[string]*client.TokenBucket)}
}

// SetTenant installs (or replaces) a tenant's admission bucket:
// ratePerSec steady-state operations with bursts up to burst.
// ratePerSec <= 0 removes the cap.
func (a *Admission) SetTenant(name string, ratePerSec float64, burst int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ratePerSec <= 0 {
		delete(a.tenants, name)
		return
	}
	a.tenants[name] = client.NewTokenBucket(ratePerSec, burst)
}

// Admit charges one operation against the tenant's bucket. nil admits;
// a *ThrottleError (unwrapping to ErrThrottled) rejects. A nil controller
// admits everything, so callers can thread an optional *Admission without
// guarding every call site.
func (a *Admission) Admit(tenant string) error {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	b := a.tenants[tenant]
	a.mu.RUnlock()
	if b == nil || b.Allow() {
		cuAdmitted.Inc()
		return nil
	}
	cuAdmissionThrottled.Inc()
	return &ThrottleError{Tenant: tenant}
}
