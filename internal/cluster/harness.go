// In-process cluster harness: spins n full CoRM nodes (store + RPC server
// + transport listener) on loopback and a Pool dialed to all of them, with
// per-node kill / restart / wipe controls. The failover bench
// (cmd/corm-bench failover), the root replication benchmarks, and the
// chaos tests share it, so "kill a node" means exactly the same thing in
// CI assertions and in reported numbers:
//
//   - Kill: the transport listener dies; the store (node memory) survives.
//   - Restart: a new listener on the same address over the same store —
//     a network/process blip with durable memory.
//   - Wipe: a new listener over a brand-new empty store — the node lost
//     its memory (machine replacement), the case read repair and the
//     re-replicator exist for.
package cluster

import (
	"fmt"
	"net"
	"time"

	"corm/internal/client"
	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/timing"
	"corm/internal/transport"
)

// HarnessOptions tune the nodes a local cluster spins up. The zero value
// reproduces the classic SpinLocal topology.
type HarnessOptions struct {
	// Canaries enables slot guard bytes on every node's store (core
	// memory-safety canaries), so soak runs detect boundary corruption.
	Canaries bool
	// Workers overrides the per-node worker count (default 2).
	Workers int
	// QueueLimit bounds each node's rpc.Server waiting line; past it,
	// requests shed with ErrThrottled. 0 = unbounded (no shedding).
	QueueLimit int
	// Dialer, when set, opens the pool's client connections — the
	// fault-injection hook (internal/fault Injector.Dial). Setting it
	// forces the wire path (no shared-memory fast path).
	Dialer func(network, addr string) (net.Conn, error)
	// MemBudgetBytes caps each node's resident frames; cold blocks spill
	// to TierSpec and fault back in on access (elastic memory). 0 = off.
	MemBudgetBytes int64
	// TierSpec selects the spill backend ("compressed", "disk",
	// "disk:<dir>", "off"); empty with a budget defaults to compressed.
	TierSpec string
}

// LocalNode is one harness-managed CoRM node.
type LocalNode struct {
	store *core.Store
	rpc   *rpc.Server
	ts    *transport.Server
	addr  string
	seed  int64
	opts  HarnessOptions
}

// Addr is the node's loopback listen address.
func (n *LocalNode) Addr() string { return n.addr }

// Store exposes the node's store (assertions on server-side state).
func (n *LocalNode) Store() *core.Store { return n.store }

// Kill closes the node's transport listener; its store survives.
func (n *LocalNode) Kill() { n.ts.Close() }

// Restart brings the node back on its recorded address over the surviving
// store: durable memory, new network presence.
func (n *LocalNode) Restart() error {
	ts, err := transport.Listen(n.addr, n.rpc)
	if err != nil {
		return fmt.Errorf("cluster: restart %s: %w", n.addr, err)
	}
	n.ts = ts
	return nil
}

// Wipe brings the node back on its recorded address with a brand-new
// empty store: every record it held is gone, as after a machine
// replacement. Rejoining wiped is the divergence case version tags
// detect and read repair heals.
func (n *LocalNode) Wipe() error {
	store, err := newLocalStore(n.seed, n.opts)
	if err != nil {
		return err
	}
	oldRPC := n.rpc
	oldStore := n.store
	n.store = store
	n.rpc = rpc.NewServer(store)
	n.rpc.SetQueueLimit(n.opts.QueueLimit)
	oldRPC.Close()
	oldStore.Close()
	ts, err := transport.Listen(n.addr, n.rpc)
	if err != nil {
		return fmt.Errorf("cluster: wipe %s: %w", n.addr, err)
	}
	n.ts = ts
	return nil
}

// Close tears the node down, releasing tiering resources with it.
func (n *LocalNode) Close() {
	n.ts.Close()
	n.rpc.Close()
	n.store.Close()
}

// LocalCluster is an in-process cluster: n nodes plus a pool over them.
type LocalCluster struct {
	nodes []*LocalNode
	pool  *Pool
}

func newLocalStore(seed int64, opts HarnessOptions) (*core.Store, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = 2
	}
	return core.NewStore(core.Config{
		Workers: workers, Strategy: core.StrategyCoRM, DataBacked: true,
		Remap:          core.RemapODPPrefetch,
		Model:          timing.Default().WithNIC(timing.ConnectX5()),
		Seed:           seed,
		Canaries:       opts.Canaries,
		MemBudgetBytes: opts.MemBudgetBytes,
		TierSpec:       opts.TierSpec,
	})
}

// SpinLocal starts n nodes on loopback and dials a pool to all of them
// (client timeouts tuned for fault testing: bounded call timeout, quick
// redial backoff).
func SpinLocal(n int, seed int64) (*LocalCluster, error) {
	return SpinLocalOptions(n, seed, HarnessOptions{})
}

// SpinLocalOptions is SpinLocal with per-node tuning — the soak harness
// uses it to enable canaries and bounded server queues.
func SpinLocalOptions(n int, seed int64, opts HarnessOptions) (*LocalCluster, error) {
	c := &LocalCluster{}
	for i := 0; i < n; i++ {
		store, err := newLocalStore(seed+int64(i), opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		srv := rpc.NewServer(store)
		srv.SetQueueLimit(opts.QueueLimit)
		ts, err := transport.Listen("127.0.0.1:0", srv)
		if err != nil {
			srv.Close()
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, &LocalNode{
			store: store, rpc: srv, ts: ts, addr: ts.Addr(), seed: seed + int64(i), opts: opts,
		})
	}
	var ctxs []*client.Ctx
	for _, node := range c.nodes {
		ctx, err := client.CreateCtxOptions(node.addr, transport.Options{
			CallTimeout:    2 * time.Second,
			RedialAttempts: 3,
			RedialBase:     time.Millisecond,
			RedialMax:      10 * time.Millisecond,
			Seed:           1,
			Dialer:         opts.Dialer,
		})
		if err != nil {
			for _, cx := range ctxs {
				cx.Close()
			}
			c.Close()
			return nil, err
		}
		ctxs = append(ctxs, ctx)
	}
	c.pool = NewFromClients(ctxs)
	return c, nil
}

// Pool is the cluster's client-side pool.
func (c *LocalCluster) Pool() *Pool { return c.pool }

// Nodes reports the cluster size.
func (c *LocalCluster) Nodes() int { return len(c.nodes) }

// Node returns one harness node.
func (c *LocalCluster) Node(i int) *LocalNode { return c.nodes[i] }

// Close tears everything down.
func (c *LocalCluster) Close() {
	if c.pool != nil {
		c.pool.Close()
	}
	for _, n := range c.nodes {
		n.Close()
	}
}
