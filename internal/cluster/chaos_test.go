package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"corm/internal/client"
	"corm/internal/core"
	"corm/internal/fault"
	"corm/internal/rpc"
	"corm/internal/timing"
	"corm/internal/transport"
)

// chaosNode is one CoRM node whose transport can be killed and restarted
// while the store (and thus its memory) survives — modeling a network/
// process-level failure with durable node state. Every node runs its own
// background compactor, like a production deployment: the chaos suite
// therefore always exercises failures landing on actively-compacting nodes.
type chaosNode struct {
	store     *core.Store
	rpc       *rpc.Server
	ts        *transport.Server
	addr      string
	compactor *core.Compactor
}

func (n *chaosNode) kill() { n.ts.Close() }

func (n *chaosNode) restart(t *testing.T) {
	t.Helper()
	ts, err := transport.Listen(n.addr, n.rpc)
	if err != nil {
		t.Fatalf("restart on %s: %v", n.addr, err)
	}
	n.ts = ts
}

func spinChaosCluster(t *testing.T, n int) ([]*chaosNode, *Pool) {
	t.Helper()
	nodes := make([]*chaosNode, n)
	var ctxs []*client.Ctx
	for i := 0; i < n; i++ {
		store, err := core.NewStore(core.Config{
			Workers: 2, Strategy: core.StrategyCoRM, DataBacked: true,
			Remap: core.RemapODPPrefetch,
			Model: timing.Default().WithNIC(timing.ConnectX5()),
			Seed:  int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(store)
		t.Cleanup(srv.Close)
		ts, err := transport.Listen("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		// An aggressive pace + collect-anything filter so compaction cycles
		// overlap the chaos events with high probability.
		comp := core.NewCompactor(store, core.CompactorConfig{
			Interval: time.Millisecond,
			Policy:   &core.ThresholdPolicy{MaxOccupancy: core.Occ(1.0)},
		})
		comp.Start()
		t.Cleanup(comp.Stop)
		node := &chaosNode{store: store, rpc: srv, ts: ts, addr: ts.Addr(), compactor: comp}
		t.Cleanup(func() { node.ts.Close() })
		nodes[i] = node
	}
	for _, node := range nodes {
		ctx, err := client.CreateCtxOptions(node.addr, transport.Options{
			CallTimeout:    2 * time.Second,
			RedialAttempts: 3,
			RedialBase:     time.Millisecond,
			RedialMax:      10 * time.Millisecond,
			Seed:           1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctxs = append(ctxs, ctx)
	}
	pool := NewFromClients(ctxs)
	t.Cleanup(pool.Close)
	return nodes, pool
}

// TestChaosKillRestartNode is the end-to-end convergence test: a node's
// transport dies mid-workload and comes back. The invariants, with a fixed
// fault seed:
//
//  1. zero acknowledged writes are lost — every Put that returned nil is
//     readable with its exact value, before and after recovery;
//  2. while the victim's breaker is open, Alloc places nothing on it and
//     operations against it fail fast with ErrNodeDown;
//  3. idempotent reads heal transparently: the same pool reads the
//     victim's keys after restart with no manual reconnection.
func TestChaosKillRestartNode(t *testing.T) {
	nodes, pool := spinChaosCluster(t, 3)
	// Keep the breaker open until we explicitly probe, so the downtime
	// assertions are deterministic.
	pool.ProbeCooldown = time.Hour
	kv := NewKV(pool)

	const victim = 1
	acked := map[string][]byte{} // writes the KV facade acknowledged
	value := func(i int) []byte { return []byte(fmt.Sprintf("value-%d-%d", i, i*i)) }

	// Phase 1: healthy workload.
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			t.Fatalf("healthy put %s: %v", key, err)
		}
		acked[key] = value(i)
	}

	// Phase 2: the victim's transport dies mid-workload.
	nodes[victim].kill()
	var failed, succeeded int
	for i := 40; i < 90; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			failed++ // not acknowledged: allowed to be lost
			continue
		}
		acked[key] = value(i)
		succeeded++
	}
	if failed == 0 {
		t.Fatal("no put ever routed to the dead node — chaos phase exercised nothing")
	}
	if succeeded == 0 {
		t.Fatal("every put failed — surviving nodes were not isolated from the dead one")
	}
	if !pool.NodeDown(victim) {
		t.Fatal("breaker never opened on the dead node")
	}

	// Operations routed to the victim fail fast with the typed error.
	if _, err := pool.AllocOn(victim, 64); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("alloc on dead node = %v, want ErrNodeDown", err)
	}

	// Alloc places nothing on the victim while its breaker is open.
	for i := 0; i < 24; i++ {
		g, err := pool.Alloc(64)
		if err != nil {
			t.Fatalf("alloc during downtime: %v", err)
		}
		if g.Node == victim {
			t.Fatal("Alloc placed an object on a node with an open breaker")
		}
		if err := pool.Free(&g); err != nil {
			t.Fatalf("free during downtime: %v", err)
		}
	}

	// Every write acknowledged so far is still readable (the victim's keys
	// were all acked before the kill or failed-fast after it; reads of
	// down-node keys are not attempted until it recovers).
	for key, want := range acked {
		if kv.NodeFor(key) == victim {
			continue
		}
		got, ok, err := kv.Get(key)
		if err != nil || !ok {
			t.Fatalf("acked key %s lost during downtime: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %s corrupted during downtime", key)
		}
	}

	// Phase 3: the node comes back; an explicit probe closes the breaker
	// (probe-on-use would do the same after ProbeCooldown).
	nodes[victim].restart(t)
	if err := pool.ProbeNode(victim); err != nil {
		t.Fatalf("probe after restart: %v", err)
	}
	if pool.NodeDown(victim) {
		t.Fatal("breaker still open after successful probe")
	}

	// Zero lost acknowledged writes: every acked key — including the
	// victim's pre-kill keys, read through transparently re-dialed
	// channels — has its exact value.
	for key, want := range acked {
		got, ok, err := kv.Get(key)
		if err != nil || !ok {
			t.Fatalf("acked key %s lost after recovery: %v (found=%v)", key, err, ok)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %s corrupted after recovery", key)
		}
	}

	// The recovered node serves new writes again.
	recovered := 0
	for i := 90; i < 130; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			t.Fatalf("put after recovery: %v", err)
		}
		if kv.NodeFor(key) == victim {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no key routed to the recovered node — rendezvous routing broken")
	}
}

// TestChaosKillMidBackgroundCompaction kills a node while its background
// compactor is actively reclaiming blocks under churn, then restarts it.
// Invariants: the store survives the transport death with its compactor
// still running (memory is durable, reclamation never stops), compaction
// keeps making progress on every phase of the test, and zero acknowledged
// writes are lost or corrupted — byte-exact reads after recovery.
func TestChaosKillMidBackgroundCompaction(t *testing.T) {
	nodes, pool := spinChaosCluster(t, 3)
	pool.ProbeCooldown = time.Hour
	kv := NewKV(pool)
	const victim = 1

	acked := map[string][]byte{}
	value := func(i int) []byte { return []byte(fmt.Sprintf("churn-%d-%d", i, i*7)) }

	// Churn phase: fill, then delete two thirds so blocks strand sparse and
	// the per-node compactors have real work.
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("churn-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			t.Fatalf("churn put %s: %v", key, err)
		}
		acked[key] = value(i)
	}
	for i := 0; i < 300; i++ {
		if i%3 == 0 {
			continue
		}
		key := fmt.Sprintf("churn-%d", i)
		if err := kv.Delete(key); err != nil {
			t.Fatalf("churn delete %s: %v", key, err)
		}
		delete(acked, key)
	}

	// Wait until the victim's background compactor has demonstrably merged
	// blocks, so the kill genuinely lands on an actively-compacting node.
	deadline := time.Now().Add(5 * time.Second)
	for nodes[victim].store.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim's background compactor never merged a block under churn")
		}
		time.Sleep(time.Millisecond)
	}
	before := nodes[victim].store.Stats()

	// Kill the victim's transport mid-compaction. The store — and its
	// compactor goroutine — survive; only the network presence dies.
	nodes[victim].kill()
	if !nodes[victim].compactor.Running() {
		t.Fatal("compactor stopped when the transport died")
	}

	// Keep the survivors churning through the outage.
	var failed int
	for i := 300; i < 400; i++ {
		key := fmt.Sprintf("churn-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			failed++
			continue
		}
		acked[key] = value(i)
	}
	if failed == 0 {
		t.Fatal("no put ever routed to the dead node — outage exercised nothing")
	}

	// The dead node's compactor keeps reclaiming its stranded blocks.
	deadline = time.Now().Add(5 * time.Second)
	for nodes[victim].store.Stats().Compactions <= before.Compactions {
		if time.Now().After(deadline) {
			// Not fatal by itself — the victim may simply have nothing left
			// to merge — but then its pre-kill reclaim must have been real.
			if before.BlocksFreed == 0 {
				t.Fatal("no compaction progress on the victim at any point")
			}
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Recovery: zero lost acked writes, byte-exact, through blocks that were
	// compacted before, during, and after the outage.
	nodes[victim].restart(t)
	if err := pool.ProbeNode(victim); err != nil {
		t.Fatalf("probe after restart: %v", err)
	}
	for key, want := range acked {
		got, ok, err := kv.Get(key)
		if err != nil || !ok {
			t.Fatalf("acked key %s lost across mid-compaction kill: %v (found=%v)", key, err, ok)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %s corrupted across mid-compaction kill", key)
		}
	}
	if nodes[victim].store.Stats().Compactions == 0 {
		t.Fatal("test never exercised background compaction on the victim")
	}
}

// TestBreakerProbeOnUse exercises the half-open path: after the cooldown,
// one operation is let through as the probe; its success closes the
// breaker without any explicit ProbeNode call.
func TestBreakerProbeOnUse(t *testing.T) {
	nodes, pool := spinChaosCluster(t, 2)
	pool.ProbeCooldown = 30 * time.Millisecond
	const victim = 0

	nodes[victim].kill()
	for i := 0; i < pool.FailThreshold; i++ {
		if _, err := pool.AllocOn(victim, 64); err == nil {
			t.Fatal("alloc on dead node succeeded")
		}
	}
	if !pool.NodeDown(victim) {
		t.Fatal("breaker did not open")
	}
	// Within the cooldown: fail fast, breaker stays open.
	if _, err := pool.AllocOn(victim, 64); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("during cooldown = %v, want ErrNodeDown", err)
	}

	nodes[victim].restart(t)
	time.Sleep(pool.ProbeCooldown + 10*time.Millisecond)
	// First use after cooldown is the probe; it succeeds and heals.
	g, err := pool.AllocOn(victim, 64)
	if err != nil {
		t.Fatalf("half-open probe alloc failed: %v", err)
	}
	if pool.NodeDown(victim) {
		t.Fatal("breaker still open after successful probe-on-use")
	}
	if err := pool.Free(&g); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSeededFaultsOnSurvivor layers seeded random connection resets on
// a *surviving* node's traffic during the outage: idempotent reads must
// stay correct through transparent reconnects, and with a fixed seed the
// injected-fault trace replays exactly.
func TestChaosSeededFaultsOnSurvivor(t *testing.T) {
	run := func() (fault.Stats, int) {
		store, err := core.NewStore(core.Config{
			Workers: 2, Strategy: core.StrategyCoRM, DataBacked: true,
			Remap: core.RemapODPPrefetch,
			Model: timing.Default().WithNIC(timing.ConnectX5()),
			Seed:  7,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(store)
		defer srv.Close()
		ts, err := transport.Listen("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		defer ts.Close()

		inj := fault.NewInjector(4242, fault.Plan{WriteResetRate: 0.02})
		ctx, err := client.CreateCtxOptions(ts.Addr(), transport.Options{
			CallTimeout:    2 * time.Second,
			RedialAttempts: 4,
			RedialBase:     time.Millisecond,
			RedialMax:      5 * time.Millisecond,
			Seed:           9,
			Dialer:         inj.Dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ctx.Close()
		ctx.ConnRetries = 8

		addr, err := ctx.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{0x42}, 64)
		for err := ctx.Write(&addr, want); err != nil; err = ctx.Write(&addr, want) {
			// Writes are not auto-retried; re-issue manually until acked.
		}
		ok := 0
		buf := make([]byte, 64)
		for i := 0; i < 200; i++ {
			n, err := ctx.Read(&addr, buf)
			if err != nil {
				t.Fatalf("idempotent read %d failed despite retry budget: %v", i, err)
			}
			if n != 64 || !bytes.Equal(buf, want) {
				t.Fatalf("read %d returned wrong data", i)
			}
			ok++
		}
		return inj.Stats(), ok
	}
	stats, ok := run()
	if stats.Resets == 0 {
		t.Fatal("seeded plan injected no resets — test exercised nothing")
	}
	if ok != 200 {
		t.Fatalf("only %d/200 reads succeeded", ok)
	}
	stats2, _ := run()
	if stats != stats2 {
		t.Fatalf("fault trace diverged across runs with the same seed: %+v vs %+v", stats, stats2)
	}
}
