package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestPoolMultiReadAcrossNodes: one MultiRead over objects scattered on
// every node returns all payloads in input order, one round trip per node.
func TestPoolMultiReadAcrossNodes(t *testing.T) {
	pool, _ := spinCluster(t, 3)
	const n = 18
	gs := make([]*GlobalAddr, n)
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		g, err := pool.AllocOn(i%3, 64)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = bytes.Repeat([]byte{byte(i + 1)}, 64)
		if err := pool.Write(&g, want[i]); err != nil {
			t.Fatal(err)
		}
		gg := g
		gs[i] = &gg
	}
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	results, err := pool.MultiRead(gs, bufs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("sub %d: %v", i, r.Err)
		}
		if !bytes.Equal(bufs[i], want[i]) {
			t.Fatalf("sub %d: payload mismatch", i)
		}
	}
	// A bogus node among valid ones fails only its own sub-ops.
	gs[4] = &GlobalAddr{Node: 9}
	results, err = pool.MultiRead(gs, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if results[4].Err == nil {
		t.Fatal("read from bogus node succeeded")
	}
	if results[3].Err != nil || results[5].Err != nil {
		t.Fatalf("siblings poisoned: %v %v", results[3].Err, results[5].Err)
	}
}

// TestPoolMultiAllocFree: batched alloc/free keeps the pool's per-node
// load accounting consistent with single-op Alloc/Free.
func TestPoolMultiAllocFree(t *testing.T) {
	pool, stores := spinCluster(t, 2)
	sizes := make([]int, 10)
	for i := range sizes {
		sizes[i] = 64
	}
	rs, err := pool.MultiAllocOn(1, sizes)
	if err != nil {
		t.Fatal(err)
	}
	gs := make([]*GlobalAddr, len(rs))
	for i := range rs {
		if rs[i].Err != nil {
			t.Fatalf("alloc %d: %v", i, rs[i].Err)
		}
		gs[i] = &GlobalAddr{Node: 1, Addr: rs[i].Addr}
	}
	if got := stores[1].Stats().Allocs; got != 10 {
		t.Fatalf("node 1 allocs = %d, want 10", got)
	}
	frees, err := pool.MultiFree(gs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range frees {
		if r.Err != nil {
			t.Fatalf("free %d: %v", i, r.Err)
		}
	}
	// Least-loaded placement sees node 1 back at zero: the next single
	// alloc may land anywhere, proving the ledger went down with the frees.
	pool.mu.Lock()
	load := pool.allocs[1]
	pool.mu.Unlock()
	if load != 0 {
		t.Fatalf("node 1 load after MultiFree = %d, want 0", load)
	}
}

// TestKVMultiPutGet: scatter-gather put/get across rendezvous nodes with
// missing keys, overwrites, and duplicate keys in one batch.
func TestKVMultiPutGet(t *testing.T) {
	pool, _ := spinCluster(t, 3)
	kv := NewKV(pool)
	const n = 30
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("user:%d", i)
		vals[i] = []byte(fmt.Sprintf("value-%d", i))
	}
	errs, err := kv.MultiPut(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("put %d: %v", i, e)
		}
	}
	if kv.Len() != n {
		t.Fatalf("len = %d, want %d", kv.Len(), n)
	}

	// Get a mix of present and absent keys, out of put order.
	ask := []string{"user:7", "nope", "user:0", "user:29", "also-nope", "user:7"}
	got, found, err := kv.MultiGet(ask)
	if err != nil {
		t.Fatal(err)
	}
	wantFound := []bool{true, false, true, true, false, true}
	for i := range ask {
		if found[i] != wantFound[i] {
			t.Fatalf("key %q: found=%v, want %v", ask[i], found[i], wantFound[i])
		}
	}
	for _, i := range []int{0, 5} {
		if string(got[i]) != "value-7" {
			t.Fatalf("key %q = %q", ask[i], got[i])
		}
	}
	if string(got[2]) != "value-0" || string(got[3]) != "value-29" {
		t.Fatalf("out-of-order reassembly: %q %q", got[2], got[3])
	}

	// Batched overwrite with a duplicate key: last occurrence wins and both
	// occurrences share its outcome.
	errs, err = kv.MultiPut(
		[]string{"user:7", "user:8", "user:7"},
		[][]byte{[]byte("stale"), []byte("fresh-8"), []byte("fresh-7")},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("overwrite %d: %v", i, e)
		}
	}
	v, ok, _ := kv.Get("user:7")
	if !ok || string(v) != "fresh-7" {
		t.Fatalf("after duplicate put: %q", v)
	}
	if v, ok, _ := kv.Get("user:8"); !ok || string(v) != "fresh-8" {
		t.Fatalf("sibling overwrite: %q", v)
	}
	// Overwrites freed the old objects rather than leaking them: total live
	// allocations still equal the number of distinct keys.
	var live int64
	pool.mu.Lock()
	for _, a := range pool.allocs {
		live += a
	}
	pool.mu.Unlock()
	if live != n {
		t.Fatalf("live allocations = %d, want %d (overwrite leaked)", live, n)
	}
}

// TestKVMultiGetAfterCompaction: compaction moves objects between Put and
// MultiGet; every key still resolves and the corrected pointers are
// repaired into the index (a second MultiGet reads clean).
func TestKVMultiGetAfterCompaction(t *testing.T) {
	pool, stores := spinCluster(t, 2)
	kv := NewKV(pool)
	const n = 1024
	keys := make([]string, 0, n)
	valFor := func(i int) []byte { return bytes.Repeat([]byte{byte(i%250 + 1)}, 64) }
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := kv.Put(key, valFor(i)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	// Fragment: delete 15 of every 16 keys, then compact both nodes.
	var kept []string
	var keptIdx []int
	for i, key := range keys {
		if i%16 == 0 {
			kept = append(kept, key)
			keptIdx = append(keptIdx, i)
			continue
		}
		if err := kv.Delete(key); err != nil {
			t.Fatal(err)
		}
	}
	moved := 0
	for _, s := range stores {
		moved += s.CompactAll(0, nil).ObjectsMoved
	}
	if moved == 0 {
		t.Fatal("compaction moved nothing — test exercised nothing")
	}
	for pass := 0; pass < 2; pass++ {
		vals, found, err := kv.MultiGet(kept)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for i, key := range kept {
			if !found[i] {
				t.Fatalf("pass %d: key %q lost after compaction", pass, key)
			}
			if !bytes.Equal(vals[i], valFor(keptIdx[i])) {
				t.Fatalf("pass %d: key %q payload mismatch", pass, key)
			}
		}
	}
}

// TestKVGetRaceWithCompaction: many goroutines Get the same keys while
// compaction relocates their objects. Under -race this proves Get never
// mutates a shared kvEntry outside kv.mu (corrections go through repair).
func TestKVGetRaceWithCompaction(t *testing.T) {
	pool, stores := spinCluster(t, 2)
	kv := NewKV(pool)
	const hot = 8
	keys := make([]string, hot)
	for i := range keys {
		keys[i] = fmt.Sprintf("hot%d", i)
		if err := kv.Put(keys[i], []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Churn allocations so every compaction round has something to move.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("churn%d", i%64)
			kv.Put(key, bytes.Repeat([]byte{byte(i)}, 64))
			if i%2 == 1 {
				kv.Delete(key)
			}
			i++
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % hot
				v, ok, err := kv.Get(keys[k])
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				if !ok || string(v) != fmt.Sprintf("val%d", k) {
					t.Errorf("g%d i%d: got %q ok=%v", g, i, v, ok)
					return
				}
				if i%5 == 0 {
					// Batched reads race the same entries.
					if _, _, err := kv.MultiGet(keys); err != nil {
						t.Errorf("g%d i%d multiget: %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	compactDone := make(chan struct{})
	go func() {
		defer close(compactDone)
		for i := 0; i < 40; i++ {
			for _, s := range stores {
				s.CompactAll(0, nil)
			}
		}
	}()
	wg.Wait()
	close(stop)
	churn.Wait()
	<-compactDone
}
