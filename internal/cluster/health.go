package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"corm/internal/transport"
)

// ErrNodeDown is returned (wrapped in a *NodeError carrying the node
// index) for operations routed to a node whose circuit breaker is open:
// the pool fails fast instead of paying a dial timeout per call.
var ErrNodeDown = errors.New("cluster: node down")

// ErrProbeTimeout marks a health probe that did not answer within
// ProbeTimeout. It counts as a node failure for the breaker: a hung node
// is as dead as a refusing one, but must not hang the prober with it.
var ErrProbeTimeout = errors.New("cluster: probe timeout")

// Breaker defaults.
const (
	// DefaultFailThreshold is how many consecutive transport-level
	// failures open a node's breaker.
	DefaultFailThreshold = 3
	// DefaultProbeCooldown is how long an open breaker rejects traffic
	// before letting one probe operation through (half-open). The actual
	// cooldown is jittered per trip by ProbeJitter.
	DefaultProbeCooldown = 500 * time.Millisecond
	// DefaultProbeJitter spreads each cooldown ±20% so many clients (or
	// many breakers in one pool) do not synchronize their probes into a
	// thundering herd against a node that just came back.
	DefaultProbeJitter = 0.2
	// DefaultProbeTimeout bounds how long one active probe may block.
	DefaultProbeTimeout = time.Second
)

// nodeHealth is one node's consecutive-failure circuit breaker.
//
// States: closed (healthy, all traffic) → open (down, fail fast) →
// half-open (cooldown elapsed: one operation probes the node; success
// closes the breaker, failure re-opens it and restarts the cooldown).
type nodeHealth struct {
	consecFails int
	open        bool
	openedAt    time.Time
	cooldown    time.Duration // jittered per trip; 0 = use p.ProbeCooldown
	probing     bool
}

// jitteredCooldown scales the configured cooldown by 1 ± ProbeJitter·U so
// probe storms decorrelate. Called under p.mu.
func (p *Pool) jitteredCooldown() time.Duration {
	d := p.ProbeCooldown
	if p.ProbeJitter <= 0 || d <= 0 {
		return d
	}
	f := 1 + p.ProbeJitter*(2*rand.Float64()-1)
	return time.Duration(float64(d) * f)
}

// cooldownOf returns the health's jittered cooldown, falling back to the
// un-jittered configured value for breakers opened before the jitter was
// introduced (zero value). Called under p.mu.
func (p *Pool) cooldownOf(h *nodeHealth) time.Duration {
	if h.cooldown > 0 {
		return h.cooldown
	}
	return p.ProbeCooldown
}

// gate decides, under p.mu, whether an operation may proceed against the
// node. It returns nil (proceed — possibly as the half-open probe) or a
// fail-fast *NodeError wrapping ErrNodeDown.
func (p *Pool) gate(node int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := &p.health[node]
	if !h.open {
		return nil
	}
	if !h.probing && time.Since(h.openedAt) >= p.cooldownOf(h) {
		// Half-open: let exactly one operation through as the probe.
		h.probing = true
		return nil
	}
	cuFailFasts.Inc()
	return &NodeError{Node: node, Label: p.labels[node], Err: ErrNodeDown}
}

// observe records an operation's outcome against the node's breaker. Only
// transport-level faults (and probe timeouts) count as node failures;
// store-level results (not found, compacting, …) prove the node is alive.
func (p *Pool) observe(node int, err error) {
	fail := transport.IsTransportError(err) || errors.Is(err, ErrProbeTimeout)
	p.mu.Lock()
	h := &p.health[node]
	h.probing = false
	if !fail {
		var recovered bool
		if h.open {
			cuBreakerRecoveries.Inc()
			cuOpenBreakers.Dec()
			recovered = true
		}
		h.consecFails = 0
		h.open = false
		hook := p.onRecover
		p.mu.Unlock()
		if recovered && hook != nil {
			hook(node)
		}
		return
	}
	h.consecFails++
	if h.consecFails >= p.FailThreshold && !h.open {
		h.open = true
		cuBreakerTrips.Inc()
		cuOpenBreakers.Inc()
	}
	if h.open {
		// Re-arm the cooldown on every failure, including failed probes,
		// re-jittering each time so repeated failures stay decorrelated.
		h.openedAt = time.Now()
		h.cooldown = p.jitteredCooldown()
	}
	p.mu.Unlock()
}

// NodeDown reports whether the node's breaker is currently open.
func (p *Pool) NodeDown(node int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.health[node].open
}

// ProbeNode actively probes a node with an idempotent Info call and feeds
// the result to its breaker, restoring a recovered node immediately
// instead of waiting for the probe-on-use cooldown. The probe is bounded
// by ProbeTimeout: a hung node counts as a failure instead of hanging the
// caller (the abandoned Info call finishes — or times out at the
// transport layer — on its own goroutine).
func (p *Pool) ProbeNode(node int) error {
	if node < 0 || node >= len(p.nodes) {
		return p.errNodeRange(node)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.nodes[node].Info()
		done <- err
	}()
	var err error
	timer := time.NewTimer(p.probeTimeout())
	defer timer.Stop()
	select {
	case err = <-done:
	case <-timer.C:
		cuProbeTimeouts.Inc()
		err = fmt.Errorf("%w: node %d (%s) after %v", ErrProbeTimeout, node, p.labels[node], p.probeTimeout())
	}
	p.observe(node, err)
	return err
}

func (p *Pool) probeTimeout() time.Duration {
	if p.ProbeTimeout > 0 {
		return p.ProbeTimeout
	}
	return DefaultProbeTimeout
}

// StartProber launches a background prober that re-checks every node whose
// breaker is open, on a jittered cadence (interval ± ProbeJitter), so
// recovered nodes rejoin without waiting for probe-on-use traffic and
// probers across many pool instances never synchronize. The returned stop
// function halts it.
func (p *Pool) StartProber(interval time.Duration) (stop func()) {
	doneCh := make(chan struct{})
	go func() {
		for {
			d := interval
			if p.ProbeJitter > 0 {
				d = time.Duration(float64(interval) * (1 + p.ProbeJitter*(2*rand.Float64()-1)))
			}
			timer := time.NewTimer(d)
			select {
			case <-doneCh:
				timer.Stop()
				return
			case <-timer.C:
			}
			for i := 0; i < p.Nodes(); i++ {
				if p.NodeDown(i) {
					p.ProbeNode(i)
				}
			}
		}
	}()
	return func() { close(doneCh) }
}
