package cluster

import (
	"errors"
	"fmt"
	"time"

	"corm/internal/transport"
)

// ErrNodeDown is returned (wrapped, with the node index) for operations
// routed to a node whose circuit breaker is open: the pool fails fast
// instead of paying a dial timeout per call.
var ErrNodeDown = errors.New("cluster: node down")

// Breaker defaults.
const (
	// DefaultFailThreshold is how many consecutive transport-level
	// failures open a node's breaker.
	DefaultFailThreshold = 3
	// DefaultProbeCooldown is how long an open breaker rejects traffic
	// before letting one probe operation through (half-open).
	DefaultProbeCooldown = 500 * time.Millisecond
)

// nodeHealth is one node's consecutive-failure circuit breaker.
//
// States: closed (healthy, all traffic) → open (down, fail fast) →
// half-open (cooldown elapsed: one operation probes the node; success
// closes the breaker, failure re-opens it and restarts the cooldown).
type nodeHealth struct {
	consecFails int
	open        bool
	openedAt    time.Time
	probing     bool
}

// gate decides, under p.mu, whether an operation may proceed against the
// node. It returns nil (proceed — possibly as the half-open probe) or a
// fail-fast ErrNodeDown.
func (p *Pool) gate(node int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := &p.health[node]
	if !h.open {
		return nil
	}
	if !h.probing && time.Since(h.openedAt) >= p.ProbeCooldown {
		// Half-open: let exactly one operation through as the probe.
		h.probing = true
		return nil
	}
	cuFailFasts.Inc()
	return fmt.Errorf("%w: node %d (%s)", ErrNodeDown, node, p.labels[node])
}

// observe records an operation's outcome against the node's breaker. Only
// transport-level faults count as node failures; store-level results (not
// found, compacting, …) prove the node is alive.
func (p *Pool) observe(node int, err error) {
	fail := transport.IsTransportError(err)
	p.mu.Lock()
	defer p.mu.Unlock()
	h := &p.health[node]
	h.probing = false
	if !fail {
		if h.open {
			cuBreakerRecoveries.Inc()
			cuOpenBreakers.Dec()
		}
		h.consecFails = 0
		h.open = false
		return
	}
	h.consecFails++
	if h.consecFails >= p.FailThreshold && !h.open {
		h.open = true
		cuBreakerTrips.Inc()
		cuOpenBreakers.Inc()
	}
	if h.open {
		// Re-arm the cooldown on every failure, including failed probes.
		h.openedAt = time.Now()
	}
}

// NodeDown reports whether the node's breaker is currently open.
func (p *Pool) NodeDown(node int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.health[node].open
}

// ProbeNode actively probes a node with an idempotent Info call and feeds
// the result to its breaker, restoring a recovered node immediately
// instead of waiting for the probe-on-use cooldown. A background prober is
// just this in a loop:
//
//	go func() {
//		for range time.Tick(interval) {
//			for i := 0; i < pool.Nodes(); i++ {
//				pool.ProbeNode(i)
//			}
//		}
//	}()
func (p *Pool) ProbeNode(node int) error {
	if node < 0 || node >= len(p.nodes) {
		return fmt.Errorf("cluster: node %d out of range", node)
	}
	_, err := p.nodes[node].Info()
	p.observe(node, err)
	return err
}
