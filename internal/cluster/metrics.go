package cluster

import "corm/internal/metrics"

// Cluster-layer metrics: breaker lifecycle and multi-node fan-out shape.
// The open-breakers gauge moves by deltas at each state transition, so
// multiple pools in one process sum correctly.
var (
	cuBreakerTrips = metrics.Default().Counter("corm_cluster_breaker_trips_total",
		"circuit breakers tripped closed->open")
	cuBreakerRecoveries = metrics.Default().Counter("corm_cluster_breaker_recoveries_total",
		"open circuit breakers closed by a successful operation")
	cuOpenBreakers = metrics.Default().Gauge("corm_cluster_open_breakers",
		"nodes currently failing fast behind an open breaker")
	cuFailFasts = metrics.Default().Counter("corm_cluster_fail_fasts_total",
		"operations rejected by an open breaker without touching the wire")
	cuFanOutWidth = metrics.Default().Histogram("corm_cluster_fanout_width",
		"nodes touched by one multi-key operation")
)
