package cluster

import "corm/internal/metrics"

// Cluster-layer metrics: breaker lifecycle, multi-node fan-out shape, and
// the replication/failover machinery. The gauges move by deltas at each
// state transition, so multiple pools/KVs in one process sum correctly.
var (
	cuBreakerTrips = metrics.Default().Counter("corm_cluster_breaker_trips_total",
		"circuit breakers tripped closed->open")
	cuBreakerRecoveries = metrics.Default().Counter("corm_cluster_breaker_recoveries_total",
		"open circuit breakers closed by a successful operation")
	cuOpenBreakers = metrics.Default().Gauge("corm_cluster_open_breakers",
		"nodes currently failing fast behind an open breaker")
	cuFailFasts = metrics.Default().Counter("corm_cluster_fail_fasts_total",
		"operations rejected by an open breaker without touching the wire")
	cuFanOutWidth = metrics.Default().Histogram("corm_cluster_fanout_width",
		"nodes touched by one multi-key operation")
	cuProbeTimeouts = metrics.Default().Counter("corm_cluster_probe_timeouts_total",
		"health probes abandoned after ProbeTimeout")

	// Replication and failover.
	cuReplicatedWrites = metrics.Default().Counter("corm_cluster_replicated_writes_total",
		"replicated KV puts fanned out to a replica set")
	cuWriteConcernMisses = metrics.Default().Counter("corm_cluster_write_concern_misses_total",
		"replicated puts failed because fewer than W replica writes succeeded")
	cuFailovers = metrics.Default().Counter("corm_cluster_failovers_total",
		"reads served by a backup replica after the primary path failed")
	cuFailoverNs = metrics.Default().Histogram("corm_cluster_failover_latency_ns",
		"end-to-end latency of reads that failed over to a backup replica")
	cuStaleReads = metrics.Default().Counter("corm_cluster_stale_replica_reads_total",
		"replica reads rejected by a version-tag mismatch (divergent replica)")
	cuNodeSuspicions = metrics.Default().Counter("corm_cluster_node_suspicions_total",
		"node-wide stale sweeps triggered by one detected divergence")
	cuUnderReplicated = metrics.Default().Gauge("corm_cluster_under_replicated_keys",
		"keys currently below their configured replication factor")
	cuReadRepairTriggers = metrics.Default().Counter("corm_cluster_read_repair_triggers_total",
		"repairs scheduled inline by the read failover and write straggler paths")
	cuReplicasRepaired = metrics.Default().Counter("corm_cluster_replicas_repaired_total",
		"stale replicas re-populated from a live replica")
	cuRepairFails = metrics.Default().Counter("corm_cluster_replica_repair_failures_total",
		"replica repair attempts that failed (node still down, alloc/write error)")
	cuReplicationLagNs = metrics.Default().Histogram("corm_cluster_replication_lag_ns",
		"time a key spent below full replication before being healed")
	cuReplicatorCycles = metrics.Default().Counter("corm_cluster_replicator_cycles_total",
		"background re-replicator cycles executed")
	cuCounterPropagations = metrics.Default().Counter("corm_cluster_counter_propagations_total",
		"replicated KV fetch-adds fanned out past the primary replica")

	// Overload control.
	cuAdmitted = metrics.Default().Counter("corm_cluster_admission_admitted_total",
		"operations admitted by the per-tenant admission controller")
	cuAdmissionThrottled = metrics.Default().Counter("corm_cluster_admission_throttled_total",
		"operations rejected by a tenant's token bucket")
)
