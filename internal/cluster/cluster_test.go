package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"corm/internal/client"
	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/timing"
	"corm/internal/transport"
)

// spinCluster starts n TCP-backed CoRM nodes and a pool over them.
func spinCluster(t *testing.T, n int) (*Pool, []*core.Store) {
	t.Helper()
	var addrs []string
	var stores []*core.Store
	for i := 0; i < n; i++ {
		store, err := core.NewStore(core.Config{
			Workers: 2, Strategy: core.StrategyCoRM, DataBacked: true,
			Remap: core.RemapODPPrefetch,
			Model: timing.Default().WithNIC(timing.ConnectX5()),
			Seed:  int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(store)
		t.Cleanup(srv.Close)
		ts, err := transport.Listen("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ts.Close)
		addrs = append(addrs, ts.Addr())
		stores = append(stores, store)
	}
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool, stores
}

func TestPoolSpreadsAllocations(t *testing.T) {
	pool, stores := spinCluster(t, 3)
	for i := 0; i < 30; i++ {
		g, err := pool.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{byte(i)}, 64)
		if err := pool.Write(&g, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Least-loaded placement balances exactly.
	for i, s := range stores {
		if got := s.Stats().Allocs; got != 10 {
			t.Errorf("node %d allocs = %d, want 10", i, got)
		}
	}
}

func TestPoolReadWriteFreeAcrossNodes(t *testing.T) {
	pool, _ := spinCluster(t, 3)
	type obj struct {
		g       GlobalAddr
		payload []byte
	}
	var objs []obj
	for i := 0; i < 12; i++ {
		g, err := pool.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{byte(i + 1)}, 128)
		if err := pool.Write(&g, payload); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj{g, payload})
	}
	for i := range objs {
		buf := make([]byte, 128)
		if _, err := pool.SmartRead(&objs[i].g, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, objs[i].payload) {
			t.Fatalf("cross-node read mismatch at %d", i)
		}
	}
	for i := range objs {
		if err := pool.Free(&objs[i].g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolSurvivesPerNodeCompaction(t *testing.T) {
	pool, stores := spinCluster(t, 2)
	// Fragment node 0 heavily through the pool.
	var keep []GlobalAddr
	var drop []GlobalAddr
	for i := 0; i < 512; i++ {
		g, err := pool.AllocOn(0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			payload := bytes.Repeat([]byte{0x77}, 64)
			if err := pool.Write(&g, payload); err != nil {
				t.Fatal(err)
			}
			keep = append(keep, g)
		} else {
			drop = append(drop, g)
		}
	}
	for i := range drop {
		if err := pool.Free(&drop[i]); err != nil {
			t.Fatal(err)
		}
	}
	r := stores[0].CompactAll(0, nil)
	if r.BlocksFreed == 0 {
		t.Fatal("node 0 compacted nothing")
	}
	for i := range keep {
		buf := make([]byte, 64)
		if _, err := pool.SmartRead(&keep[i], buf); err != nil {
			t.Fatalf("object lost after node compaction: %v", err)
		}
		if buf[0] != 0x77 {
			t.Fatal("corrupt data after node compaction")
		}
	}
}

func TestPoolInvalidNode(t *testing.T) {
	pool, _ := spinCluster(t, 2)
	bad := GlobalAddr{Node: 9}
	if _, err := pool.Read(&bad, make([]byte, 8)); err == nil {
		t.Fatal("read from bogus node succeeded")
	}
	if _, err := pool.AllocOn(-1, 64); err == nil {
		t.Fatal("alloc on bogus node succeeded")
	}
}

func TestKVRendezvousStability(t *testing.T) {
	pool, _ := spinCluster(t, 3)
	kv := NewKV(pool)
	// Deterministic mapping.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		if kv.NodeFor(key) != kv.NodeFor(key) {
			t.Fatal("rendezvous hash unstable")
		}
	}
	// All nodes get some keys.
	counts := make(map[int]int)
	for i := 0; i < 300; i++ {
		counts[kv.NodeFor(fmt.Sprintf("key-%d", i))]++
	}
	for n := 0; n < 3; n++ {
		if counts[n] < 50 {
			t.Fatalf("node %d underloaded: %v", n, counts)
		}
	}
}

func TestKVPutGetDelete(t *testing.T) {
	pool, _ := spinCluster(t, 3)
	kv := NewKV(pool)
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("user:%d", i)
		if err := kv.Put(key, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if kv.Len() != 60 {
		t.Fatalf("len = %d", kv.Len())
	}
	v, ok, err := kv.Get("user:7")
	if err != nil || !ok || string(v) != "value-7" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	// Overwrite replaces the object.
	if err := kv.Put("user:7", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = kv.Get("user:7")
	if !ok || string(v) != "fresh" {
		t.Fatalf("after overwrite: %q", v)
	}
	if err := kv.Delete("user:7"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := kv.Get("user:7"); ok {
		t.Fatal("deleted key still present")
	}
	if err := kv.Delete("user:7"); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestNewFromClients(t *testing.T) {
	store, err := core.NewStore(core.Config{
		Workers: 2, Strategy: core.StrategyCoRM, DataBacked: true,
		Remap: core.RemapODPPrefetch,
		Model: timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ctx, err := client.NewLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewFromClients([]*client.Ctx{ctx})
	t.Cleanup(pool.Close)
	g, err := pool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Free(&g); err != nil {
		t.Fatal(err)
	}
}
