package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// spinLocal wraps the harness for tests.
func spinLocal(t *testing.T, n int) *LocalCluster {
	t.Helper()
	c, err := SpinLocal(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// keyWithPrimary finds a key whose rendezvous primary is the given node.
func keyWithPrimary(kv *KV, node int, salt string) string {
	for i := 0; ; i++ {
		key := fmt.Sprintf("%s-%d", salt, i)
		if kv.ReplicasFor(key)[0] == node {
			return key
		}
	}
}

// waitConverged polls until no key is below full replication.
func waitConverged(t *testing.T, kv *KV, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for kv.DegradedKeys() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("still %d under-replicated keys after %v", kv.DegradedKeys(), d)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicasForOrderedDistinct: the replica set is k distinct nodes,
// deterministic, led by the rendezvous primary, and every node is primary
// for a fair share of keys.
func TestReplicasForOrderedDistinct(t *testing.T) {
	c := spinLocal(t, 5)
	kv := NewReplicatedKV(c.Pool(), ReplicationConfig{Replicas: 3})
	primaries := make([]int, 5)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := kv.ReplicasFor(key)
		if len(reps) != 3 {
			t.Fatalf("ReplicasFor(%s) = %v, want 3 nodes", key, reps)
		}
		seen := map[int]bool{}
		for _, n := range reps {
			if n < 0 || n >= 5 || seen[n] {
				t.Fatalf("ReplicasFor(%s) = %v: invalid or duplicate node", key, reps)
			}
			seen[n] = true
		}
		if reps[0] != kv.NodeFor(key) {
			t.Fatalf("ReplicasFor(%s)[0] = %d, NodeFor = %d", key, reps[0], kv.NodeFor(key))
		}
		again := kv.ReplicasFor(key)
		for j := range reps {
			if reps[j] != again[j] {
				t.Fatalf("ReplicasFor(%s) not deterministic: %v vs %v", key, reps, again)
			}
		}
		primaries[reps[0]]++
	}
	for n, count := range primaries {
		if count == 0 {
			t.Fatalf("node %d is primary for no key out of 200 — skewed rendezvous ranking", n)
		}
	}
}

// TestReplicatedPutGetDelete: the replicated KV round-trips values, bumps
// versions across overwrites, settles to full replication, and Delete
// releases every copy.
func TestReplicatedPutGetDelete(t *testing.T) {
	c := spinLocal(t, 3)
	kv := NewReplicatedKV(c.Pool(), ReplicationConfig{Replicas: 3, WriteConcern: 2})
	if kv.Replicas() != 3 || kv.WriteConcern() != 2 {
		t.Fatalf("config clamped wrong: k=%d w=%d", kv.Replicas(), kv.WriteConcern())
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := kv.Put(key, []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	// Overwrite a few (version bump + old-copy frees on every replica).
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := kv.Put(key, []byte(fmt.Sprintf("v2-%d", i))); err != nil {
			t.Fatalf("overwrite %s: %v", key, err)
		}
	}
	waitConverged(t, kv, 5*time.Second) // W acks returned; stragglers settle
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := fmt.Sprintf("v-%d", i)
		if i < 10 {
			want = fmt.Sprintf("v2-%d", i)
		}
		got, ok, err := kv.Get(key)
		if err != nil || !ok {
			t.Fatalf("get %s: %v (found=%v)", key, err, ok)
		}
		if string(got) != want {
			t.Fatalf("get %s = %q, want %q", key, got, want)
		}
	}
	if kv.Len() != 50 {
		t.Fatalf("Len = %d, want 50", kv.Len())
	}
	for i := 0; i < 50; i++ {
		if err := kv.Delete(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatalf("delete key-%d: %v", i, err)
		}
	}
	// Every replica copy must be gone from every store.
	total := int64(0)
	for i := 0; i < c.Nodes(); i++ {
		s := c.Node(i).Store().Stats()
		total += s.Allocs - s.Frees
	}
	if total != 0 {
		t.Fatalf("%d objects leaked across stores after deleting all keys", total)
	}
}

// TestWriteConcernUnreachable: with W = k and one node dead, Put fails
// with ErrWriteConcern, releases its partial allocations, and leaves the
// previous value fully intact.
func TestWriteConcernUnreachable(t *testing.T) {
	c := spinLocal(t, 3)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour
	kv := NewReplicatedKV(pool, ReplicationConfig{Replicas: 3, WriteConcern: 3})
	if err := kv.Put("stable", []byte("before")); err != nil {
		t.Fatal(err)
	}
	c.Node(1).Kill()
	var lastErr error
	for i := 0; i < pool.FailThreshold+1; i++ {
		lastErr = kv.Put("stable", []byte("after"))
	}
	if !errors.Is(lastErr, ErrWriteConcern) {
		t.Fatalf("put with dead replica = %v, want ErrWriteConcern", lastErr)
	}
	got, ok, err := kv.Get("stable")
	if err != nil || !ok || string(got) != "before" {
		t.Fatalf("previous value not intact after failed put: %q %v %v", got, ok, err)
	}
}

// TestChaosFailoverKillPrimaryMidWorkload is the headline failover test:
// k=3, W=2 over three nodes, the primary dies mid-workload.
//
//  1. zero acked writes are lost — every Put that returned nil before or
//     during the outage reads back byte-exact;
//  2. reads keep succeeding during the outage, served by backup replicas,
//     with sub-second measured failover latency;
//  3. writes keep acking during the outage (W=2 still reachable);
//  4. after the node rejoins, the re-replicator restores full replication,
//     verified by killing a *different* node and reading everything from
//     what remains.
func TestChaosFailoverKillPrimaryMidWorkload(t *testing.T) {
	c := spinLocal(t, 3)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour // deterministic downtime window
	kv := NewReplicatedKV(pool, ReplicationConfig{Replicas: 3, WriteConcern: 2})

	acked := map[string][]byte{}
	value := func(i int) []byte { return []byte(fmt.Sprintf("value-%d-%d", i, i*i)) }

	// Healthy workload.
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			t.Fatalf("healthy put %s: %v", key, err)
		}
		acked[key] = value(i)
	}
	waitConverged(t, kv, 5*time.Second)

	// Kill the primary of a known key mid-workload.
	probe := "key-0"
	victim := kv.ReplicasFor(probe)[0]
	failoversBefore := cuFailovers.Value()
	c.Node(victim).Kill()

	// The first post-kill read of a victim-primary key must fail over to a
	// backup — measure it end to end (includes tripping over the dead
	// primary's redial attempts).
	start := time.Now()
	got, ok, err := kv.Get(probe)
	failoverLatency := time.Since(start)
	if err != nil || !ok || !bytes.Equal(got, acked[probe]) {
		t.Fatalf("read during outage: %q %v %v", got, ok, err)
	}
	if failoverLatency >= time.Second {
		t.Fatalf("failover latency %v, want sub-second", failoverLatency)
	}
	if cuFailovers.Value() == failoversBefore {
		t.Fatal("failover read not counted — served by the dead primary?")
	}

	// Writes keep acking at W=2 through the outage.
	ackedDuringOutage := 0
	for i := 40; i < 90; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := kv.Put(key, value(i)); err != nil {
			continue // unacked: allowed to be lost
		}
		acked[key] = value(i)
		ackedDuringOutage++
	}
	if ackedDuringOutage != 50 {
		t.Fatalf("only %d/50 puts acked during single-node outage with W=2", ackedDuringOutage)
	}
	// The W=2 ack returns before the victim's replica write has finished
	// failing (redial backoff); wait for the straggling outcomes to settle
	// before asserting breaker and degradation state.
	deadline := time.Now().Add(5 * time.Second)
	for !pool.NodeDown(victim) || kv.DegradedKeys() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outage state never settled: down=%v degraded=%d",
				pool.NodeDown(victim), kv.DegradedKeys())
		}
		time.Sleep(time.Millisecond)
	}

	// Every acked write reads back byte-exact during the outage.
	for key, want := range acked {
		got, ok, err := kv.Get(key)
		if err != nil || !ok {
			t.Fatalf("acked key %s unreadable during outage: %v (found=%v)", key, err, ok)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %s corrupted during outage", key)
		}
	}

	// Rejoin (memory intact) and let the re-replicator restore k=3.
	if err := c.Node(victim).Restart(); err != nil {
		t.Fatal(err)
	}
	rep := NewReplicator(kv, ReplicatorConfig{Interval: 5 * time.Millisecond})
	rep.Start()
	defer rep.Stop()
	if err := pool.ProbeNode(victim); err != nil {
		t.Fatalf("probe after restart: %v", err)
	}
	waitConverged(t, kv, 10*time.Second)

	// Full replication restored: kill a *different* node and every key must
	// still read back — including outage keys whose replica on the victim
	// exists only because the re-replicator wrote it.
	other := (victim + 1) % 3
	c.Node(other).Kill()
	for key, want := range acked {
		got, ok, err := kv.Get(key)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %s lost after re-replication (second node down): %v (found=%v)", key, err, ok)
		}
	}
}

// TestChaosReadRepairAfterWipe: a node rejoins EMPTY (wiped store — the
// machine-replacement case). Version-tagged reads detect the loss, Get
// fails over, and read repair plus the replicator re-populate the wiped
// node until it can serve everything alone.
func TestChaosReadRepairAfterWipe(t *testing.T) {
	c := spinLocal(t, 3)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour
	kv := NewReplicatedKV(pool, ReplicationConfig{Replicas: 3, WriteConcern: 2})

	acked := map[string][]byte{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("wipe-%d", i)
		val := []byte(fmt.Sprintf("wv-%d", i))
		if err := kv.Put(key, val); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		acked[key] = val
	}
	waitConverged(t, kv, 5*time.Second)

	const victim = 0
	c.Node(victim).Kill()
	if err := c.Node(victim).Wipe(); err != nil {
		t.Fatal(err)
	}
	// Re-establish the client's channels to the reborn node (the probe is
	// idempotent, so it transparently redials).
	if err := pool.ProbeNode(victim); err != nil {
		t.Fatalf("probe after wipe: %v", err)
	}
	// The index still believes the victim's replicas are live; reads that
	// hit them find the records gone, mark them stale, and fail over.
	for key, want := range acked {
		got, ok, err := kv.Get(key)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %s unreadable after wipe: %v (found=%v)", key, err, ok)
		}
	}

	// Converge: the replicator re-populates the wiped node.
	rep := NewReplicator(kv, ReplicatorConfig{Interval: 5 * time.Millisecond})
	rep.Start()
	defer rep.Stop()
	waitConverged(t, kv, 10*time.Second)

	// The wiped node now holds everything: kill the other two and read all
	// keys from it alone.
	c.Node(1).Kill()
	c.Node(2).Kill()
	for key, want := range acked {
		got, ok, err := kv.Get(key)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %s not served by the repaired node alone: %v (found=%v)", key, err, ok)
		}
	}
	if s := c.Node(victim).Store().Stats(); s.Allocs-s.Frees == 0 {
		t.Fatal("wiped node's store is empty — repair never wrote it")
	}
}

// TestVersionTagCatchesAddressReuse: after a wipe, the empty allocator
// hands out the same virtual addresses again, so another key's record can
// land exactly where a wiped-out key's replica used to live. The version
// tag is what stops a read of the old key from trusting those bytes.
func TestVersionTagCatchesAddressReuse(t *testing.T) {
	c := spinLocal(t, 2)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour
	kv := NewReplicatedKV(pool, ReplicationConfig{Replicas: 2, WriteConcern: 2})

	const victim = 0
	keyA := keyWithPrimary(kv, victim, "reuse-a")
	if err := kv.Put(keyA, []byte("value-A")); err != nil {
		t.Fatal(err)
	}
	kv.mu.Lock()
	oldAddr := kv.entries[keyA].reps[0].addr
	kv.mu.Unlock()

	c.Node(victim).Kill()
	if err := c.Node(victim).Wipe(); err != nil {
		t.Fatal(err)
	}
	if err := pool.ProbeNode(victim); err != nil {
		t.Fatalf("probe after wipe: %v", err)
	}
	// keyB's replica on the wiped node takes the first allocation — the
	// same virtual address keyA's replica had (same size class, same seed).
	keyB := keyWithPrimary(kv, victim, "reuse-b")
	if err := kv.Put(keyB, []byte("value-B")); err != nil {
		t.Fatal(err)
	}
	kv.mu.Lock()
	newAddr := kv.entries[keyB].reps[0].addr
	kv.mu.Unlock()

	staleBefore := cuStaleReads.Value()
	got, ok, err := kv.Get(keyA)
	if err != nil || !ok {
		t.Fatalf("get %s: %v (found=%v)", keyA, err, ok)
	}
	if string(got) != "value-A" {
		t.Fatalf("get %s = %q — read another key's bytes through a recycled address", keyA, got)
	}
	if newAddr == oldAddr && cuStaleReads.Value() == staleBefore {
		t.Fatal("address was recycled but no stale read was detected — version tag not checked")
	}
}

// TestProbeTimeoutBoundsHungNode: a node that accepts connections but
// never answers (hung, not dead) must not hang ProbeNode — the per-probe
// timeout fires, counts as a failure, and the caller returns.
func TestProbeTimeoutBoundsHungNode(t *testing.T) {
	c := spinLocal(t, 2)
	pool := c.Pool()
	pool.FailThreshold = 1
	pool.ProbeTimeout = 50 * time.Millisecond

	const victim = 0
	c.Node(victim).Kill()
	// A black hole on the victim's address: accepts and swallows, so the
	// client's redial succeeds but every call hangs.
	ln, err := net.Listen("tcp", c.Node(victim).Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	start := time.Now()
	err = pool.ProbeNode(victim)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrProbeTimeout) {
		t.Fatalf("probe of hung node = %v, want ErrProbeTimeout", err)
	}
	if elapsed > time.Second {
		t.Fatalf("probe took %v — the per-probe timeout did not bound it", elapsed)
	}
	if !pool.NodeDown(victim) {
		t.Fatal("probe timeout did not count as a breaker failure")
	}
}

// TestBreakerCooldownJitter: trip cooldowns spread within ±ProbeJitter and
// are not all identical — no synchronized probe storms.
func TestBreakerCooldownJitter(t *testing.T) {
	p := newPool()
	p.ProbeCooldown = 100 * time.Millisecond
	lo := 80 * time.Millisecond
	hi := 120 * time.Millisecond
	distinct := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := p.jitteredCooldown()
		if d < lo || d > hi {
			t.Fatalf("jittered cooldown %v outside [%v, %v]", d, lo, hi)
		}
		distinct[d] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct cooldowns in 200 draws — jitter not applied", len(distinct))
	}
}

// TestMultiGetFailsOverPerKey: with one node dead, a MultiGet spanning all
// nodes still returns every key (dead-node keys fall back to failover
// reads), and node-attributable errors carry the failing node's index.
func TestMultiGetFailsOverPerKey(t *testing.T) {
	c := spinLocal(t, 3)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour
	kv := NewReplicatedKV(pool, ReplicationConfig{Replicas: 3, WriteConcern: 2})

	keys := make([]string, 60)
	want := make([][]byte, 60)
	for i := range keys {
		keys[i] = fmt.Sprintf("mg-%d", i)
		want[i] = []byte(fmt.Sprintf("mgv-%d", i))
		if err := kv.Put(keys[i], want[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, kv, 5*time.Second)

	const victim = 2
	c.Node(victim).Kill()
	vals, found, err := kv.MultiGet(keys)
	if err != nil {
		t.Fatalf("MultiGet with one dead node: %v", err)
	}
	for i := range keys {
		if !found[i] || !bytes.Equal(vals[i], want[i]) {
			t.Fatalf("key %s not served through failover MultiGet", keys[i])
		}
	}
}

// TestMultiReadWrapsNodeErrors: a Pool.MultiRead spanning a dead node
// reports that group's failures as *NodeError carrying the node index.
func TestMultiReadWrapsNodeErrors(t *testing.T) {
	c := spinLocal(t, 2)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour

	var gs []*GlobalAddr
	var bufs [][]byte
	for node := 0; node < 2; node++ {
		g, err := pool.AllocOn(node, 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Write(&g, []byte("abcd")); err != nil {
			t.Fatal(err)
		}
		gp := g
		gs = append(gs, &gp)
		bufs = append(bufs, make([]byte, 32))
	}
	const victim = 1
	c.Node(victim).Kill()
	// Trip the breaker so the batch path sees the gate's typed error too.
	for i := 0; i < pool.FailThreshold; i++ {
		pool.Read(gs[victim], bufs[victim])
	}
	results, err := pool.MultiRead(gs, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("healthy node's read failed: %v", results[0].Err)
	}
	ne, ok := AsNodeError(results[victim].Err)
	if !ok {
		t.Fatalf("dead node's error %v is not a NodeError", results[victim].Err)
	}
	if ne.Node != victim {
		t.Fatalf("NodeError.Node = %d, want %d", ne.Node, victim)
	}
	if !errors.Is(results[victim].Err, ErrNodeDown) {
		t.Fatalf("wrapped error lost ErrNodeDown: %v", results[victim].Err)
	}
}

// TestReplicatorKickOnRecovery: the breaker-recovery hook wakes the
// replicator immediately — convergence after a rejoin does not wait out
// the idle backoff.
func TestReplicatorKickOnRecovery(t *testing.T) {
	c := spinLocal(t, 3)
	pool := c.Pool()
	pool.ProbeCooldown = time.Hour
	kv := NewReplicatedKV(pool, ReplicationConfig{Replicas: 3, WriteConcern: 2})
	// Long interval: only the kick can explain a fast repair.
	rep := NewReplicator(kv, ReplicatorConfig{Interval: time.Hour})
	rep.Start()
	defer rep.Stop()

	const victim = 1
	c.Node(victim).Kill()
	acked := 0
	for i := 0; i < 30; i++ {
		if err := kv.Put(fmt.Sprintf("kick-%d", i), []byte("x")); err == nil {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("no outage put acked")
	}
	// Every acked put fanned out to the dead victim (k = all 3 nodes); wait
	// until each straggling replica write has failed and marked its key
	// degraded, so the single kick-triggered cycle sees all the work.
	deadline := time.Now().Add(5 * time.Second)
	for kv.DegradedKeys() < acked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d outage keys marked degraded", kv.DegradedKeys(), acked)
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Node(victim).Restart(); err != nil {
		t.Fatal(err)
	}
	if err := pool.ProbeNode(victim); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, kv, 10*time.Second)
}
