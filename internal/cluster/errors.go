package cluster

import (
	"errors"
	"fmt"
)

// NodeError attributes a failure to one pool node, so callers of the
// scatter-gather paths (MultiRead, MultiGet, replicated writes) and the
// failover machinery can act per node instead of parsing error text. It
// wraps the underlying cause, so errors.Is(err, ErrNodeDown) and
// transport-level classification keep working through it.
type NodeError struct {
	// Node is the pool index of the failing node.
	Node int
	// Label is the node's dial address (or synthetic test label).
	Label string
	// Err is the underlying failure.
	Err error
}

func (e *NodeError) Error() string {
	if e.Label != "" {
		return fmt.Sprintf("node %d (%s): %v", e.Node, e.Label, e.Err)
	}
	return fmt.Sprintf("node %d: %v", e.Node, e.Err)
}

func (e *NodeError) Unwrap() error { return e.Err }

// AsNodeError extracts the failing node from an error chain.
func AsNodeError(err error) (*NodeError, bool) {
	var ne *NodeError
	if errors.As(err, &ne) {
		return ne, true
	}
	return nil, false
}

// nodeErr wraps err with the node's index and label unless it already
// carries one (the gate path wraps before the fan-out path observes).
func (p *Pool) nodeErr(node int, err error) error {
	if err == nil {
		return nil
	}
	var ne *NodeError
	if errors.As(err, &ne) {
		return err
	}
	label := ""
	if node >= 0 && node < len(p.labels) {
		label = p.labels[node]
	}
	return &NodeError{Node: node, Label: label, Err: err}
}
