package cluster

import (
	"errors"
	"testing"

	"corm/internal/rpc"
	"corm/internal/transport"
)

// TestAdmissionPerTenant: capped tenants reject past their burst with a
// typed, tenant-attributed error; unconfigured tenants are unlimited; a nil
// controller admits everything.
func TestAdmissionPerTenant(t *testing.T) {
	a := NewAdmission()
	a.SetTenant("batch", 1, 3) // 1/s, burst 3: ops 4+ reject in a tight loop

	for i := 0; i < 3; i++ {
		if err := a.Admit("batch"); err != nil {
			t.Fatalf("burst op %d rejected: %v", i, err)
		}
	}
	err := a.Admit("batch")
	if err == nil {
		t.Fatal("op beyond burst admitted")
	}
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("throttle error %v does not unwrap to ErrThrottled", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) || te.Tenant != "batch" {
		t.Fatalf("throttle error %v not attributed to tenant batch", err)
	}

	for i := 0; i < 100; i++ {
		if err := a.Admit("gold"); err != nil {
			t.Fatalf("unconfigured tenant throttled: %v", err)
		}
	}
	var nilAdm *Admission
	if err := nilAdm.Admit("anyone"); err != nil {
		t.Fatalf("nil controller rejected: %v", err)
	}

	// Removing the cap restores unlimited admission.
	a.SetTenant("batch", 0, 0)
	for i := 0; i < 100; i++ {
		if err := a.Admit("batch"); err != nil {
			t.Fatalf("uncapped tenant throttled: %v", err)
		}
	}
}

// TestThrottleIsNotNodeFailure pins the breaker-safety property: neither an
// admission rejection nor a server-side shed classifies as a transport
// error, so the health machinery (whose failure predicate is
// transport.IsTransportError) never counts a throttle against a node.
func TestThrottleIsNotNodeFailure(t *testing.T) {
	if transport.IsTransportError(rpc.ErrThrottled) {
		t.Fatal("rpc.ErrThrottled classifies as a transport error; it would trip breakers")
	}
	te := &ThrottleError{Tenant: "batch"}
	if transport.IsTransportError(te) {
		t.Fatal("ThrottleError classifies as a transport error")
	}
	// Wrapped per-node, as the pool surfaces errors, it still must not.
	wrapped := &NodeError{Node: 1, Err: rpc.ErrThrottled}
	if transport.IsTransportError(wrapped) {
		t.Fatal("node-wrapped throttle classifies as a transport error")
	}
	if !errors.Is(wrapped, ErrThrottled) {
		t.Fatal("node-wrapped throttle lost the ErrThrottled sentinel")
	}
}
