package transport

import (
	"bytes"
	"net"
	"testing"

	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/timing"
)

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello framing")
	if err := writeFrame(&buf, 42, payload); err != nil {
		t.Fatal(err)
	}
	seq, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq = %d, want 42", seq)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip mismatch: %q", got)
	}
}

func TestFrameEmpty(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, 7, nil)
	seq, got, err := readFrame(&buf)
	if err != nil || seq != 7 || len(got) != 0 {
		t.Fatalf("empty frame: seq=%d %q %v", seq, got, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB length
	buf.Write(make([]byte, frameSeqBytes))    // seq portion of the header
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameMissingSeq(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{2, 0, 0, 0}) // length too short to hold a sequence ID
	buf.Write(make([]byte, frameSeqBytes))
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("frame without sequence ID accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, 1, []byte("full payload"))
	raw := buf.Bytes()[:buf.Len()-4]
	if _, _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func newServer(t *testing.T) *Server {
	t.Helper()
	store, err := core.NewStore(core.Config{
		Workers: 2, Strategy: core.StrategyCoRM, DataBacked: true,
		Remap: core.RemapODPPrefetch,
		Model: timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	return ts
}

func TestServerRejectsGarbageHandshake(t *testing.T) {
	ts := newServer(t)
	conn, err := net.Dial("tcp", ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{'X'}) // unknown channel type: server closes
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Fatal("server kept an unknown channel open")
	}
}

func TestServerSurvivesMalformedRPCFrame(t *testing.T) {
	ts := newServer(t)
	conn, err := net.Dial("tcp", ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{chanRPC})
	writeFrame(conn, 1, []byte{1, 2}) // too short to be a request
	one := make([]byte, 1)
	conn.Read(one) // connection is dropped
	conn.Close()

	// The server still accepts fresh, valid connections.
	c2, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err := c2.Call(rpc.Request{Op: rpc.OpInfo})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("info after bad peer: %v %v", resp.Status, err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	ts := newServer(t)
	ts.Close()
	ts.Close()
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestDMALengthLimit(t *testing.T) {
	ts := newServer(t)
	conn, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A read of absurd length is rejected (connection closed).
	err = conn.DirectRead(1, 0x1000, make([]byte, maxFrame))
	if err == nil {
		t.Fatal("oversized DMA accepted")
	}
}
