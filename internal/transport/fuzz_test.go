package transport

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives readFrame with arbitrary byte streams. Two
// properties must hold: the decoder never panics on garbage (it returns an
// error), and a successful decode round-trips — re-encoding the (seq,
// body) it produced yields exactly the bytes it consumed, because the
// frame encoding is canonical.
func FuzzDecodeFrame(f *testing.F) {
	// A well-formed frame, an empty body, a truncated header, a length
	// below the seq minimum, and an oversized length claim.
	f.Add(appendFrame(nil, 7, []byte("hello corm")))
	f.Add(appendFrame(nil, 0, nil))
	f.Add([]byte{9, 0, 0})
	f.Add([]byte{3, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0})
	// Two frames back to back: the decoder must consume exactly one.
	f.Add(appendFrame(appendFrame(nil, 1, []byte("a")), 2, []byte("b")))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		seq, body, err := readFrame(r)
		if err != nil {
			return
		}
		defer putFrameBuf(body)
		consumed := len(data) - r.Len()
		re := appendFrame(nil, seq, body)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("frame round trip mismatch:\n in: %x\nout: %x", data[:consumed], re)
		}
		// The scatter-gather writer must emit the identical canonical bytes
		// — its vectored output is indistinguishable on the wire from the
		// flat encoder, whether the body rides inline in the arena or as
		// its own iovec.
		cc := &captureConn{}
		fw := newFrameWriter(cc, 0, nil)
		if werr := fw.send(seq, body, false); werr != nil {
			t.Fatalf("vector writer rejected decoded frame: %v", werr)
		}
		if wire := cc.bytes(); !bytes.Equal(wire, data[:consumed]) {
			t.Fatalf("vector writer wire mismatch:\n in: %x\nout: %x", data[:consumed], wire)
		}
		// And the ring-lease decode path must agree with the pooled path.
		lr := bufio.NewReader(bytes.NewReader(data))
		ring := newBufRing()
		rseq, lease, rbody, rerr := readFrameRing(lr, ring)
		if rerr != nil {
			t.Fatalf("readFrameRing failed where readFrame succeeded: %v", rerr)
		}
		if rseq != seq || !bytes.Equal(rbody, body) {
			t.Fatalf("ring decode mismatch: seq %d vs %d", rseq, seq)
		}
		lease.Release()
	})
}
