package transport

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives readFrame with arbitrary byte streams. Two
// properties must hold: the decoder never panics on garbage (it returns an
// error), and a successful decode round-trips — re-encoding the (seq,
// body) it produced yields exactly the bytes it consumed, because the
// frame encoding is canonical.
func FuzzDecodeFrame(f *testing.F) {
	// A well-formed frame, an empty body, a truncated header, a length
	// below the seq minimum, and an oversized length claim.
	f.Add(appendFrame(nil, 7, []byte("hello corm")))
	f.Add(appendFrame(nil, 0, nil))
	f.Add([]byte{9, 0, 0})
	f.Add([]byte{3, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0})
	// Two frames back to back: the decoder must consume exactly one.
	f.Add(appendFrame(appendFrame(nil, 1, []byte("a")), 2, []byte("b")))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		seq, body, err := readFrame(r)
		if err != nil {
			return
		}
		defer putFrameBuf(body)
		consumed := len(data) - r.Len()
		re := appendFrame(nil, seq, body)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("frame round trip mismatch:\n in: %x\nout: %x", data[:consumed], re)
		}
	})
}
