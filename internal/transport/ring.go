// Registered receive-buffer rings. A real RDMA QP never reads into
// freshly allocated memory: the application pre-posts registered receive
// buffers and the NIC DMA-writes incoming messages into them; ownership of
// a filled buffer passes to the application and returns to the ring when
// the completion is consumed. NP-RDMA (PAPERS.md) argues for exactly this
// disciplined ring management instead of ad-hoc per-message allocation.
//
// BufRing is that discipline for the emulated wire: a fixed population of
// recycled, size-classed buffers. The demux reader fills a leased buffer
// in place (one read syscall lands the frame directly in "registered"
// memory) and hands the payload view to the waiting caller; the caller
// releases the lease once it has decoded or copied what it needs, which
// re-posts the buffer. The population per class is bounded — when a burst
// outruns the ring (the software analogue of receiver-not-ready), the
// overflow is served by transient unpooled buffers and counted, never
// blocked on.
package transport

import (
	"sync"
	"sync/atomic"
)

// ringClassSpec fixes the size classes of every BufRing: a small class for
// RPC responses and object-stride DMA reads, a middle class for batch
// responses, and a block class for one-sided ScanRead block fetches.
// Frames beyond the block class (up to maxFrame) are transient.
var ringClassSpec = []struct {
	size  int
	depth int
}{
	{4 << 10, 128},
	{64 << 10, 32},
	{(1 << 20) + 4096, 4},
}

// Lease is one registered receive buffer checked out of a BufRing. The
// demux reader fills it in place and hands views of it to callers; Release
// re-posts the buffer to its ring. Retain/Release form a refcount so a
// view can outlive the frame that delivered it (batch decodes, staged
// copies); the buffer re-posts when the last holder releases.
type Lease struct {
	ring   *BufRing
	cls    int  // class index; -1 = transient (never re-posted)
	pooled bool // frame-pool buffer: recycled via putFrameBuf on release
	refs   atomic.Int32
	b      []byte
}

// leasePool recycles the Lease objects wrapped around pooled frame
// buffers, which otherwise cost one allocation per shared-memory frame.
// Ring leases (cls >= 0) are long-lived and never enter this pool.
var leasePool = sync.Pool{New: func() any { return new(Lease) }}

// newPooledLease wraps a frame-pool buffer in a lease; the final Release
// returns the buffer with putFrameBuf and recycles the lease itself. The
// shared-memory reader uses this so slot buffers travel to callers without
// a landing copy.
func newPooledLease(b []byte) *Lease {
	l := leasePool.Get().(*Lease)
	l.ring = nil
	l.cls = -1
	l.pooled = true
	l.b = b
	l.refs.Store(1)
	return l
}

// TransientLease wraps an ordinary buffer in a lease, for code that feeds
// lease-based consumers from non-ring sources (local backends, test
// doubles). The final Release simply drops the buffer.
func TransientLease(b []byte) *Lease {
	l := &Lease{cls: -1, b: b}
	l.refs.Store(1)
	return l
}

// Bytes exposes the full backing buffer (class-size capacity).
func (l *Lease) Bytes() []byte { return l.b }

// Retain adds a holder; every Retain needs a matching Release.
func (l *Lease) Retain() {
	if l != nil {
		l.refs.Add(1)
	}
}

// Release drops one holder; the last release re-posts the buffer to its
// ring. Nil leases are tolerated so error paths need no guards.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	n := l.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("transport: buffer lease over-released")
	}
	if l.cls >= 0 {
		// Never blocks: at most `depth` leases of a class exist and the
		// channel holds exactly that many.
		l.ring.classes[l.cls].ch <- l
	} else if l.pooled {
		putFrameBuf(l.b)
		l.b = nil
		l.pooled = false
		leasePool.Put(l)
	}
}

type ringClass struct {
	size   int
	ch     chan *Lease
	posted atomic.Int32 // buffers created so far, capped at depth
	depth  int32
}

// BufRing is a per-connection set of size-classed receive rings. Buffers
// are posted lazily up to each class's depth, so an idle connection costs
// almost nothing and a busy one converges on a fixed registered footprint.
type BufRing struct {
	classes []ringClass
}

// newBufRing builds the standard three-class ring.
func newBufRing() *BufRing {
	r := &BufRing{classes: make([]ringClass, len(ringClassSpec))}
	for i, spec := range ringClassSpec {
		r.classes[i].size = spec.size
		r.classes[i].depth = int32(spec.depth)
		r.classes[i].ch = make(chan *Lease, spec.depth)
	}
	return r
}

// Get leases a buffer of capacity ≥ n from the smallest fitting class,
// posting a fresh buffer if the class has headroom, or falling back to a
// transient buffer when the ring is exhausted (or n exceeds every class).
func (r *BufRing) Get(n int) *Lease {
	for i := range r.classes {
		c := &r.classes[i]
		if n > c.size {
			continue
		}
		select {
		case l := <-c.ch:
			l.refs.Store(1)
			mRingLeases.Inc()
			return l
		default:
		}
		if p := c.posted.Add(1); p <= c.depth {
			l := &Lease{ring: r, cls: i, b: make([]byte, c.size)}
			l.refs.Store(1)
			mRingLeases.Inc()
			return l
		}
		c.posted.Add(-1)
		break // class exhausted: transient overflow, not a larger class
	}
	mRingOverflows.Inc()
	l := &Lease{cls: -1, b: make([]byte, n)}
	l.refs.Store(1)
	return l
}
