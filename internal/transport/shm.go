// Shared-memory fast path. When a client dials an address that a Server
// in the same process is listening on, the socket is pointless: both ends
// share an address space, so frames can travel over an in-memory ring —
// the intra-host analogue of RDMA loopback, where the NIC is bypassed and
// transfers become memcpys between registered regions.
//
// Selection is automatic and conservative: only addresses registered by
// transport.Listen participate (a Server given a pre-made — possibly
// fault-wrapped — listener via Serve keeps its wire exactly as supplied),
// and a Conn dialed with a custom Dialer or DisableSharedMemory always
// uses TCP, so fault-injection harnesses observe every byte they expect.
//
// Each channel (RPC or DMA) gets its own endpoint: a pair of fixed-depth
// single-producer single-consumer rings, one per direction. Producers and
// consumers synchronize on atomic head/tail counters (acquire/release
// pairs, race-detector clean) and park on capacity-1 notify channels when
// the ring is full or empty. Failure semantics match TCP: closing either
// side poisons the endpoint, the serve loop and demux reader unblock with
// an error, pending calls fail with ErrConnBroken, and redial — which
// re-resolves the registry — reconnects if the server re-listens.
package transport

import (
	"errors"
	"sync"
	"sync/atomic"
)

// shmRegistry maps listen addresses to live in-process servers. Listen
// registers, Close unregisters; Dial consults it unless opted out.
var shmRegistry = struct {
	mu sync.Mutex
	m  map[string]*Server
}{m: make(map[string]*Server)}

func registerSHM(addr string, s *Server) {
	shmRegistry.mu.Lock()
	shmRegistry.m[addr] = s
	shmRegistry.mu.Unlock()
}

// unregisterSHM removes the mapping only if it still points at s — a
// restarted server on the same address must not be torn out by the old
// incarnation's Close.
func unregisterSHM(addr string, s *Server) {
	shmRegistry.mu.Lock()
	if shmRegistry.m[addr] == s {
		delete(shmRegistry.m, addr)
	}
	shmRegistry.mu.Unlock()
}

func lookupSHM(addr string) *Server {
	shmRegistry.mu.Lock()
	s := shmRegistry.m[addr]
	shmRegistry.mu.Unlock()
	return s
}

// errSHMClosed reports a push/pop on a poisoned endpoint; callers wrap it
// in ErrConnBroken (client) or treat it as EOF (server loop).
var errSHMClosed = errors.New("transport: shared-memory ring closed")

// shmRingDepth is the slot count per direction — the emulated queue-pair
// depth. Deeper than maxInflight so the pipeline never parks on the ring.
const shmRingDepth = 128

type shmSlot struct {
	seq  uint64
	body []byte // frame-pool buffer, ownership travels with the slot
}

// shmRing is a single-producer single-consumer frame ring. The producer
// writes a slot then releases it with tail.Add; the consumer acquires via
// tail.Load and hands the slot back with head.Add. Both park on notify
// channels when out of work or space, and a closed done channel (shared
// with the sibling ring of the endpoint) unblocks everyone.
type shmRing struct {
	slots [shmRingDepth]shmSlot
	head  atomic.Uint64 // next slot to consume
	tail  atomic.Uint64 // next slot to fill

	pmu   sync.Mutex // serializes producers (many senders, one consumer)
	data  chan struct{}
	space chan struct{}
	done  chan struct{}
}

func newSHMRing(done chan struct{}) *shmRing {
	return &shmRing{
		data:  make(chan struct{}, 1),
		space: make(chan struct{}, 1),
		done:  done,
	}
}

// push enqueues one frame, taking ownership of body (a frame-pool buffer).
// Blocks while the ring is full; fails once the endpoint is poisoned.
func (r *shmRing) push(seq uint64, body []byte) error {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	for {
		t := r.tail.Load()
		if t-r.head.Load() < shmRingDepth {
			s := &r.slots[t%shmRingDepth]
			s.seq = seq
			s.body = body
			r.tail.Store(t + 1)
			select {
			case r.data <- struct{}{}:
			default:
			}
			mSHMFrames.Inc()
			return nil
		}
		select {
		case <-r.space:
		case <-r.done:
			putFrameBuf(body)
			return errSHMClosed
		}
	}
}

// pop dequeues one frame, transferring body ownership to the caller.
// Blocks while the ring is empty; fails once the endpoint is poisoned and
// drained (in-flight frames are still delivered, like bytes already in a
// socket buffer).
func (r *shmRing) pop() (uint64, []byte, error) {
	for {
		h := r.head.Load()
		if h < r.tail.Load() {
			s := &r.slots[h%shmRingDepth]
			seq, body := s.seq, s.body
			s.body = nil
			r.head.Store(h + 1)
			select {
			case r.space <- struct{}{}:
			default:
			}
			return seq, body, nil
		}
		select {
		case <-r.data:
		case <-r.done:
			// Drain residue posted before the close.
			if r.head.Load() < r.tail.Load() {
				continue
			}
			return 0, nil, errSHMClosed
		}
	}
}

// shmEndpoint is one channel's bidirectional shared-memory link: a ring
// per direction plus the shared poison switch.
type shmEndpoint struct {
	c2s, s2c *shmRing
	done     chan struct{}
	once     sync.Once
}

func newSHMEndpoint() *shmEndpoint {
	done := make(chan struct{})
	return &shmEndpoint{c2s: newSHMRing(done), s2c: newSHMRing(done), done: done}
}

// close poisons both directions; idempotent.
func (ep *shmEndpoint) close() {
	ep.once.Do(func() { close(ep.done) })
}

// shmSource / shmSink adapt one ring direction to the serve-loop
// interfaces. The source copies each frame into a registered ring lease —
// the same landing discipline as the TCP reader — and recycles the slot
// buffer.
type shmSource struct {
	ring *shmRing
	bufs *BufRing
}

func (s *shmSource) next() (uint64, *Lease, []byte, error) {
	seq, body, err := s.ring.pop()
	if err != nil {
		return 0, nil, nil, err
	}
	lease := s.bufs.Get(len(body))
	view := lease.Bytes()[:len(body)]
	copy(view, body)
	putFrameBuf(body)
	mFramesIn.Inc()
	return seq, lease, view, nil
}

type shmSink struct{ ring *shmRing }

func (s *shmSink) send(seq uint64, body []byte, owned bool) error {
	if !owned {
		body = append(getFrameBuf(0), body...)
	}
	mFramesOut.Inc()
	return s.ring.push(seq, body)
}

// dialSHM attaches a new in-process channel of the given kind to the
// server, spawning its serve loop. Returns nil if the server is closed —
// the dialer then falls back to TCP, which fails with the same connection
// refused a dead remote would give.
func (s *Server) dialSHM(kind byte) *shmEndpoint {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	ep := newSHMEndpoint()
	s.shm[ep] = true
	s.wg.Add(1)
	s.mu.Unlock()
	mSHMConns.Inc()
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.shm, ep)
			s.mu.Unlock()
			ep.close()
		}()
		src := &shmSource{ring: ep.c2s, bufs: newBufRing()}
		sink := &shmSink{ring: ep.s2c}
		switch kind {
		case chanRPC:
			s.serveRPCLoop(src, sink)
		case chanDMA:
			s.serveDMALoop(src, sink)
		}
	}()
	return ep
}
