package transport

import "corm/internal/metrics"

// Transport-layer metrics, registered in the process-global registry.
// The frame counters live in the frameWriter/readFrame hot paths, so each
// is a single atomic add.
var (
	mFramesOut = metrics.Default().Counter("corm_transport_frames_out_total",
		"frames handed to the coalescing frame writer")
	mBytesOut = metrics.Default().Counter("corm_transport_bytes_out_total",
		"frame bytes written to the wire (headers included)")
	mFlushes = metrics.Default().Counter("corm_transport_flushes_total",
		"batched writes issued by the frame writer")
	mFramesPerFlush = metrics.Default().Histogram("corm_transport_frames_per_flush",
		"frames coalesced into one write syscall")
	mFramesIn = metrics.Default().Counter("corm_transport_frames_in_total",
		"frames decoded off the wire")
	mRedialAttempts = metrics.Default().Counter("corm_transport_redial_attempts_total",
		"dials attempted while repairing a broken channel")
	mRedialSuccess = metrics.Default().Counter("corm_transport_redials_total",
		"broken channels successfully re-dialed")
	mBrokenChannels = metrics.Default().Counter("corm_transport_broken_channels_total",
		"channels poisoned by a transport fault")
	mCallTimeouts = metrics.Default().Counter("corm_transport_call_timeouts_total",
		"round trips that outlived CallTimeout")
	mDMAReads = metrics.Default().Counter("corm_transport_dma_reads_total",
		"one-sided read requests served over DMA channels")
	mVecsPerFlush = metrics.Default().Histogram("corm_transport_vecs_per_flush",
		"iovec entries handed to one writev batch")
	mFrameDrops = metrics.Default().Counter("corm_transport_frame_pool_drops_total",
		"oversized frame buffers dropped instead of pooled")
	mRingLeases = metrics.Default().Counter("corm_transport_ring_leases_total",
		"receive buffers leased from registered rings")
	mRingOverflows = metrics.Default().Counter("corm_transport_ring_overflows_total",
		"receives served by transient buffers because the ring was exhausted")
	mSHMConns = metrics.Default().Counter("corm_transport_shm_conns_total",
		"channels attached over the shared-memory fast path")
	mSHMFrames = metrics.Default().Counter("corm_transport_shm_frames_total",
		"frames carried over shared-memory rings (both directions)")
)
