package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"corm/internal/core"
	"corm/internal/fault"
	"corm/internal/rpc"
	"corm/internal/timing"
)

// newNode builds a store + RPC server without a listener (failure tests
// choose how to serve it).
func newNode(t *testing.T) *rpc.Server {
	t.Helper()
	store, err := core.NewStore(core.Config{
		Workers: 2, Strategy: core.StrategyCoRM, DataBacked: true,
		Remap: core.RemapODPPrefetch,
		Model: timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	return srv
}

// fastOpts are client options tuned so tests fail fast instead of pacing
// real-world backoff.
func fastOpts() Options {
	return Options{
		CallTimeout:    2 * time.Second,
		RedialAttempts: 3,
		RedialBase:     time.Millisecond,
		RedialMax:      10 * time.Millisecond,
		Seed:           1,
	}
}

func TestOversizedDMAFailsWithoutPoisoningConn(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	conn, err := DialOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.DirectRead(1, 0x1000, make([]byte, maxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized DMA: %v, want ErrFrameTooLarge", err)
	}
	// The request never hit the wire, so the channel is still healthy.
	if resp, err := conn.Call(rpc.Request{Op: rpc.OpInfo}); err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("conn poisoned by rejected oversized read: %v %v", resp.Status, err)
	}
}

func TestCallHealsAfterInjectedReset(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)

	// Reset the RPC channel mid-frame: the handshake byte is folded into
	// the first flushed batch, so write 1 is the first Call's frame — the
	// kill lands inside it.
	inj := fault.NewInjector(11, fault.Plan{ResetAfterWrites: 1})
	conn, err := DialOptions(ts.Addr(), Options{Dialer: inj.Dial, RedialBase: time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	_, err = conn.Call(rpc.Request{Op: rpc.OpInfo})
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("reset call error = %v, want ErrConnBroken", err)
	}
	if !IsRetryable(err) {
		t.Fatal("ErrConnBroken not classified retryable")
	}
	// The broken channel must not be reused in a desynchronized state: the
	// next Call transparently re-dials (the injector resets each fresh
	// connection after 2 writes, so disable it first).
	inj.Disable()
	resp, err := conn.Call(rpc.Request{Op: rpc.OpInfo})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("call after reconnect: %v %v", resp.Status, err)
	}
}

func TestTruncatedResponsePoisonsAndHeals(t *testing.T) {
	srv := newNode(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the server's first response frame mid-write (each coalesced
	// response batch is one write; the first one carries frame 1).
	inj := fault.NewInjector(13, fault.Plan{TruncateWrite: 1})
	ts := Serve(inj.WrapListener(ln), srv)
	t.Cleanup(ts.Close)

	conn, err := DialOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Call(rpc.Request{Op: rpc.OpInfo}); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("truncated response error = %v, want ErrConnBroken", err)
	}
	inj.Disable()
	resp, err := conn.Call(rpc.Request{Op: rpc.OpInfo})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("call after truncation recovery: %v %v", resp.Status, err)
	}
}

func TestServerCloseMidCallSurfacesBrokenConn(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := DialOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Call(rpc.Request{Op: rpc.OpInfo}); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	// With the server gone, calls fail with the retryable typed error (the
	// redial inside also fails — nothing is listening).
	_, err = conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("call against closed server = %v, want ErrConnBroken", err)
	}
}

func TestQPBreakTeardownAndReconnect(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	nic := srv.Store().NIC()

	conn, err := DialOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("alloc: %v %v", resp.Status, err)
	}
	addr := resp.Addr

	// Each DMA channel owns one QP.
	if got := nic.LiveQPs(); got != 1 {
		t.Fatalf("live QPs = %d, want 1", got)
	}

	// A fabric event breaks the QP; reads report it until reconnect.
	nic.BreakAllQPs()
	buf := make([]byte, core.DataStride(64))
	if err := conn.DirectRead(addr.RKey(), addr.VAddr(), buf); !errors.Is(err, ErrDMABroken) {
		t.Fatalf("read on broken QP = %v, want ErrDMABroken", err)
	}
	if err := conn.ReconnectDMA(); err != nil {
		t.Fatal(err)
	}
	if err := conn.DirectRead(addr.RKey(), addr.VAddr(), buf); err != nil {
		t.Fatalf("read after reconnect: %v", err)
	}

	// The replaced channel's QP was torn down: still exactly one live QP.
	deadline := time.Now().Add(2 * time.Second)
	for nic.LiveQPs() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := nic.LiveQPs(); got != 1 {
		t.Fatalf("live QPs after reconnect = %d, want 1 (old QP leaked)", got)
	}

	// Closing the client releases the last QP.
	conn.Close()
	deadline = time.Now().Add(2 * time.Second)
	for nic.LiveQPs() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := nic.LiveQPs(); got != 0 {
		t.Fatalf("live QPs after close = %d, want 0 (DMA QP leaked)", got)
	}
}

// TestPipelinedStormSurvivesMidFrameFaults hammers one Conn from 16
// goroutines of mixed Call and DirectRead traffic while the injector
// repeatedly resets connections mid-storm. Every in-flight call on a broken
// channel must fail with the typed retryable error — never hang, never
// return a mismatched response — and once the chaos window closes the same
// Conn must heal and serve both channels again.
func TestPipelinedStormSurvivesMidFrameFaults(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)

	// Reset roughly one write in fifty on every connection, client side, so
	// faults land mid-pipeline with many calls outstanding.
	inj := fault.NewInjector(17, fault.Plan{WriteResetRate: 0.02})
	conn, err := DialOptions(ts.Addr(), Options{
		Dialer:         inj.Dial,
		CallTimeout:    2 * time.Second,
		RedialAttempts: 10,
		RedialBase:     time.Millisecond,
		RedialMax:      5 * time.Millisecond,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One object for the DirectRead half of the storm. Allocation itself may
	// need a few attempts under injection.
	var addr core.Addr
	for i := 0; ; i++ {
		resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
		if err == nil && resp.Status == rpc.StatusOK {
			addr = resp.Addr
			break
		}
		if err != nil && !errors.Is(err, ErrConnBroken) {
			t.Fatalf("alloc error not typed: %v", err)
		}
		if i > 100 {
			t.Fatalf("alloc never succeeded under injection: %v %v", resp.Status, err)
		}
	}

	const goroutines = 16
	const opsPerG = 150
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, core.DataStride(64))
			for i := 0; i < opsPerG; i++ {
				if g%2 == 0 {
					_, err := conn.Call(rpc.Request{Op: rpc.OpInfo})
					// Only transport faults are possible, and they must be
					// typed retryable; anything else is a demux bug.
					if err != nil && !errors.Is(err, ErrConnBroken) {
						errs <- fmt.Errorf("goroutine %d call %d: untyped error %v", g, i, err)
						return
					}
				} else {
					err := conn.DirectRead(addr.RKey(), addr.VAddr(), buf)
					if err != nil && !errors.Is(err, ErrConnBroken) && !errors.Is(err, ErrDMABroken) {
						errs <- fmt.Errorf("goroutine %d read %d: untyped error %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("storm finished without a single injected fault — test proves nothing")
	}

	// Chaos over: the Conn heals on both channels.
	inj.Disable()
	if resp, err := conn.Call(rpc.Request{Op: rpc.OpInfo}); err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("RPC after storm: %v %v", resp.Status, err)
	}
	if err := conn.ReconnectDMA(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, core.DataStride(64))
	if err := conn.DirectRead(addr.RKey(), addr.VAddr(), buf); err != nil {
		t.Fatalf("DMA after storm: %v", err)
	}
}

func TestConcurrentCallAndDirectReadDuringReconnect(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	conn, err := DialOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("alloc: %v %v", resp.Status, err)
	}
	addr := resp.Addr

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	stop := make(chan struct{})
	wg.Add(3)
	go func() { // RPC traffic
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := conn.Call(rpc.Request{Op: rpc.OpInfo}); err != nil {
				errs <- fmt.Errorf("call %d: %w", i, err)
				return
			}
		}
	}()
	go func() { // one-sided traffic, tolerating in-flight QP breaks
		defer wg.Done()
		buf := make([]byte, core.DataStride(64))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := conn.DirectRead(addr.RKey(), addr.VAddr(), buf)
			if err != nil && !errors.Is(err, ErrDMABroken) && !errors.Is(err, ErrConnBroken) {
				errs <- fmt.Errorf("direct read %d: %w", i, err)
				return
			}
		}
	}()
	go func() { // concurrent reconnect storm
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := conn.ReconnectDMA(); err != nil {
				errs <- fmt.Errorf("reconnect %d: %w", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
