package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"corm/internal/rpc"
)

// Options tunes a client connection's failure behaviour. The zero value
// gets sane defaults (see withDefaults).
type Options struct {
	// CallTimeout bounds one round trip on either channel via SetDeadline;
	// an expired deadline breaks the channel (framing state is unknown).
	// <0 disables deadlines.
	CallTimeout time.Duration
	// RedialAttempts bounds how many dials one repair of a broken channel
	// performs before giving up (the operation then fails with
	// ErrConnBroken and the next use tries again).
	RedialAttempts int
	// RedialBase / RedialMax shape the exponential backoff between redial
	// attempts; actual sleeps are jittered uniformly in [base/2, base).
	RedialBase time.Duration
	RedialMax  time.Duration
	// Seed drives the backoff jitter RNG, for reproducible schedules.
	Seed int64
	// Dialer opens the raw TCP connection; fault injection hooks in here.
	Dialer func(network, addr string) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.CallTimeout == 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.RedialAttempts <= 0 {
		o.RedialAttempts = 3
	}
	if o.RedialBase <= 0 {
		o.RedialBase = 2 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Dialer == nil {
		o.Dialer = net.Dial
	}
	return o
}

// channel is one framed stream to the server. A channel whose write or read
// failed mid-frame is marked broken — its framing state is undefined, so it
// must never be reused — and is re-dialed on next use.
type channel struct {
	kind byte

	mu     sync.Mutex
	nc     net.Conn
	broken bool
	closed bool
}

// Conn is a client's connection bundle to one CoRM node: one RPC channel
// and one DMA (emulated one-sided) channel. Both channels self-heal:
// transport faults mark them broken, and the next operation transparently
// re-dials with exponential backoff. Conn does not re-issue operations —
// that is the client layer's job, and only for idempotent ones.
type Conn struct {
	addr string
	opts Options

	rngMu sync.Mutex
	rng   *rand.Rand

	rpc channel
	dma channel
}

// Dial connects both channels to a CoRM server with default options.
func Dial(addr string) (*Conn, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects with explicit failure-handling options.
func DialOptions(addr string, opts Options) (*Conn, error) {
	opts = opts.withDefaults()
	c := &Conn{
		addr: addr,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	c.rpc.kind = chanRPC
	c.dma.kind = chanDMA
	rpcConn, err := c.dialChannel(chanRPC)
	if err != nil {
		return nil, err
	}
	dmaConn, err := c.dialChannel(chanDMA)
	if err != nil {
		rpcConn.Close()
		return nil, err
	}
	c.rpc.nc = rpcConn
	c.dma.nc = dmaConn
	return c, nil
}

func (c *Conn) dialChannel(kind byte) (net.Conn, error) {
	nc, err := c.opts.Dialer("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	if _, err := nc.Write([]byte{kind}); err != nil {
		nc.Close()
		return nil, err
	}
	return nc, nil
}

// Close tears down both channels.
func (c *Conn) Close() error {
	c.rpc.mu.Lock()
	c.rpc.closed = true
	if c.rpc.nc != nil {
		c.rpc.nc.Close()
	}
	c.rpc.mu.Unlock()
	c.dma.mu.Lock()
	c.dma.closed = true
	var err error
	if c.dma.nc != nil {
		err = c.dma.nc.Close()
	}
	c.dma.mu.Unlock()
	return err
}

// jitterSleep sleeps a uniformly jittered [d/2, d).
func (c *Conn) jitterSleep(d time.Duration) {
	c.rngMu.Lock()
	j := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	time.Sleep(j)
}

// ensureLocked repairs a broken or missing channel, re-dialing with
// exponential backoff + jitter. Caller holds ch.mu.
func (c *Conn) ensureLocked(ch *channel) error {
	if ch.closed {
		return ErrConnClosed
	}
	if ch.nc != nil && !ch.broken {
		return nil
	}
	if ch.nc != nil {
		ch.nc.Close()
		ch.nc = nil
	}
	backoff := c.opts.RedialBase
	var last error
	for i := 0; i < c.opts.RedialAttempts; i++ {
		if i > 0 {
			c.jitterSleep(backoff)
			if backoff *= 2; backoff > c.opts.RedialMax {
				backoff = c.opts.RedialMax
			}
		}
		nc, err := c.dialChannel(ch.kind)
		if err != nil {
			last = err
			continue
		}
		ch.nc = nc
		ch.broken = false
		return nil
	}
	return fmt.Errorf("%w: redial %s failed: %v", ErrConnBroken, c.addr, last)
}

// breakLocked poisons the channel after a mid-frame fault: the stream's
// framing state is undefined, so the connection is closed and the next use
// re-dials instead of desynchronizing. Caller holds ch.mu.
func (c *Conn) breakLocked(ch *channel, stage string, err error) error {
	ch.broken = true
	if ch.nc != nil {
		ch.nc.Close()
	}
	return fmt.Errorf("%w: %s: %v", ErrConnBroken, stage, err)
}

// exchangeLocked performs one framed round trip under the per-call
// deadline. Any failure poisons the channel. Caller holds ch.mu.
func (c *Conn) exchangeLocked(ch *channel, payload []byte) ([]byte, error) {
	if err := c.ensureLocked(ch); err != nil {
		return nil, err
	}
	if c.opts.CallTimeout > 0 {
		ch.nc.SetDeadline(time.Now().Add(c.opts.CallTimeout))
	}
	if err := writeFrame(ch.nc, payload); err != nil {
		return nil, c.breakLocked(ch, "write", err)
	}
	frame, err := readFrame(ch.nc)
	if err != nil {
		return nil, c.breakLocked(ch, "read", err)
	}
	if c.opts.CallTimeout > 0 {
		ch.nc.SetDeadline(time.Time{})
	}
	return frame, nil
}

// Call performs one RPC round trip. On transport faults the RPC channel is
// marked broken and the error wraps ErrConnBroken; the next Call re-dials.
func (c *Conn) Call(req rpc.Request) (rpc.Response, error) {
	c.rpc.mu.Lock()
	defer c.rpc.mu.Unlock()
	frame, err := c.exchangeLocked(&c.rpc, req.Marshal())
	if err != nil {
		return rpc.Response{}, err
	}
	resp, err := rpc.UnmarshalResponse(frame)
	if err != nil {
		// A frame that does not decode means the stream is corrupt or
		// desynchronized; the channel cannot be trusted any further.
		return rpc.Response{}, c.breakLocked(&c.rpc, "decode", err)
	}
	return resp, nil
}

// DirectRead performs an emulated one-sided read of len(buf) bytes at the
// remote virtual address. All validity checking is up to the caller, as
// with a real RDMA read. A broken QP (ErrDMABroken) persists server-side
// until ReconnectDMA re-dials the channel — the reconnect the paper prices
// at milliseconds; transport faults heal automatically like Call's.
func (c *Conn) DirectRead(rkey uint32, vaddr uint64, buf []byte) error {
	if len(buf)+1 > maxFrame {
		return fmt.Errorf("%w: DMA read of %d bytes", ErrFrameTooLarge, len(buf))
	}
	c.dma.mu.Lock()
	defer c.dma.mu.Unlock()
	var req [16]byte
	binary.LittleEndian.PutUint32(req[0:], rkey)
	binary.LittleEndian.PutUint64(req[4:], vaddr)
	binary.LittleEndian.PutUint32(req[12:], uint32(len(buf)))
	frame, err := c.exchangeLocked(&c.dma, req[:])
	if err != nil {
		return err
	}
	if len(frame) < 1 {
		return c.breakLocked(&c.dma, "decode", fmt.Errorf("empty DMA response"))
	}
	switch frame[0] {
	case dmaOK:
		if len(frame)-1 != len(buf) {
			// A short payload means we are reading someone else's frame.
			return c.breakLocked(&c.dma, "decode",
				fmt.Errorf("DMA short read (%d of %d)", len(frame)-1, len(buf)))
		}
		copy(buf, frame[1:])
		return nil
	case dmaBadKey:
		return ErrDMABadKey
	case dmaBroken:
		return ErrDMABroken
	case dmaBounds:
		return ErrDMABounds
	}
	return c.breakLocked(&c.dma, "decode", fmt.Errorf("DMA error %d", frame[0]))
}

// ReconnectDMA re-establishes the one-sided channel after a QP break,
// using the same backoff policy as automatic repair.
func (c *Conn) ReconnectDMA() error {
	c.dma.mu.Lock()
	defer c.dma.mu.Unlock()
	if c.dma.nc != nil {
		c.dma.nc.Close()
	}
	c.dma.broken = true
	return c.ensureLocked(&c.dma)
}
