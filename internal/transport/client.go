package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"corm/internal/rpc"
)

// Transport errors.
var (
	ErrDMABadKey = errors.New("transport: invalid rkey")
	ErrDMABroken = errors.New("transport: queue pair broken")
	ErrDMABounds = errors.New("transport: access out of bounds")
)

// Conn is a client's connection bundle to one CoRM node: one RPC channel
// and one DMA (emulated one-sided) channel.
type Conn struct {
	mu  sync.Mutex // serializes request/response on the RPC channel
	rpc net.Conn

	dmaMu sync.Mutex
	dma   net.Conn
	addr  string
}

// Dial connects both channels to a CoRM server.
func Dial(addr string) (*Conn, error) {
	rpcConn, err := dialChannel(addr, chanRPC)
	if err != nil {
		return nil, err
	}
	dmaConn, err := dialChannel(addr, chanDMA)
	if err != nil {
		rpcConn.Close()
		return nil, err
	}
	return &Conn{rpc: rpcConn, dma: dmaConn, addr: addr}, nil
}

func dialChannel(addr string, kind byte) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := c.Write([]byte{kind}); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close tears down both channels.
func (c *Conn) Close() error {
	c.rpc.Close()
	return c.dma.Close()
}

// Call performs one RPC round trip.
func (c *Conn) Call(req rpc.Request) (rpc.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.rpc, req.Marshal()); err != nil {
		return rpc.Response{}, err
	}
	frame, err := readFrame(c.rpc)
	if err != nil {
		return rpc.Response{}, err
	}
	return rpc.UnmarshalResponse(frame)
}

// DirectRead performs an emulated one-sided read of len(buf) bytes at the
// remote virtual address. All validity checking is up to the caller, as
// with a real RDMA read. A broken QP is repaired by redialing the DMA
// channel (the "reconnect" the paper prices at milliseconds).
func (c *Conn) DirectRead(rkey uint32, vaddr uint64, buf []byte) error {
	c.dmaMu.Lock()
	defer c.dmaMu.Unlock()
	var req [16]byte
	binary.LittleEndian.PutUint32(req[0:], rkey)
	binary.LittleEndian.PutUint64(req[4:], vaddr)
	binary.LittleEndian.PutUint32(req[12:], uint32(len(buf)))
	if err := writeFrame(c.dma, req[:]); err != nil {
		return err
	}
	frame, err := readFrame(c.dma)
	if err != nil {
		return err
	}
	if len(frame) < 1 {
		return fmt.Errorf("transport: empty DMA response")
	}
	switch frame[0] {
	case dmaOK:
		if len(frame)-1 != len(buf) {
			return fmt.Errorf("transport: DMA short read (%d of %d)", len(frame)-1, len(buf))
		}
		copy(buf, frame[1:])
		return nil
	case dmaBadKey:
		return ErrDMABadKey
	case dmaBroken:
		return ErrDMABroken
	case dmaBounds:
		return ErrDMABounds
	}
	return fmt.Errorf("transport: DMA error %d", frame[0])
}

// ReconnectDMA re-establishes the one-sided channel after a QP break.
func (c *Conn) ReconnectDMA() error {
	c.dmaMu.Lock()
	defer c.dmaMu.Unlock()
	c.dma.Close()
	nc, err := dialChannel(c.addr, chanDMA)
	if err != nil {
		return err
	}
	c.dma = nc
	return nil
}
