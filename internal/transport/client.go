package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"corm/internal/rpc"
)

// Options tunes a client connection's failure behaviour. The zero value
// gets sane defaults (see withDefaults).
type Options struct {
	// CallTimeout bounds one round trip on either channel; a call that
	// expires breaks the channel (responses can no longer be matched to
	// waiters reliably) and fails every pending call on it. <0 disables
	// timeouts.
	CallTimeout time.Duration
	// RedialAttempts bounds how many dials one repair of a broken channel
	// performs before giving up (the operation then fails with
	// ErrConnBroken and the next use tries again).
	RedialAttempts int
	// RedialBase / RedialMax shape the exponential backoff between redial
	// attempts; actual sleeps are jittered uniformly in [base/2, base).
	RedialBase time.Duration
	RedialMax  time.Duration
	// Seed drives the backoff jitter RNG, for reproducible schedules.
	Seed int64
	// Dialer opens the raw TCP connection; fault injection hooks in here.
	Dialer func(network, addr string) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.CallTimeout == 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.RedialAttempts <= 0 {
		o.RedialAttempts = 3
	}
	if o.RedialBase <= 0 {
		o.RedialBase = 2 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Dialer == nil {
		o.Dialer = net.Dial
	}
	return o
}

// callResult is what the demux reader (or the failure path) delivers to a
// waiting caller. The body is a pooled frame buffer; the waiter returns it
// with putFrameBuf after decoding.
type callResult struct {
	body []byte
	err  error
}

// channel is one multiplexed framed stream to the server. Many calls may be
// in flight at once: each registers a sequence ID in pending, writes its
// frame under wmu, and waits for the demux reader goroutine (one per dialed
// connection) to deliver the matching response. A channel whose read or
// write failed mid-frame is marked broken — its framing state is undefined,
// so it must never be reused — every pending call fails with ErrConnBroken,
// and the next use re-dials.
type channel struct {
	kind byte

	mu      sync.Mutex // guards nc, fw, broken, closed, seq, pending
	nc      net.Conn
	fw      *frameWriter // coalescing writer for the current nc
	broken  bool
	closed  bool
	seq     uint64
	pending map[uint64]chan callResult
}

// failPendingLocked delivers err to every pending call. Caller holds ch.mu.
func (ch *channel) failPendingLocked(err error) {
	for seq, done := range ch.pending {
		delete(ch.pending, seq)
		done <- callResult{err: err}
	}
}

// Conn is a client's connection bundle to one CoRM node: one RPC channel
// and one DMA (emulated one-sided) channel. Both channels are multiplexed
// (concurrent calls pipeline on the wire) and self-heal: transport faults
// mark them broken, fail all in-flight calls with ErrConnBroken, and the
// next operation transparently re-dials with exponential backoff. Conn does
// not re-issue operations — that is the client layer's job, and only for
// idempotent ones.
type Conn struct {
	addr string
	opts Options

	rngMu sync.Mutex
	rng   *rand.Rand

	rpc channel
	dma channel
}

// Dial connects both channels to a CoRM server with default options.
func Dial(addr string) (*Conn, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects with explicit failure-handling options.
func DialOptions(addr string, opts Options) (*Conn, error) {
	opts = opts.withDefaults()
	c := &Conn{
		addr: addr,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	c.rpc.kind = chanRPC
	c.dma.kind = chanDMA
	rpcConn, err := c.dialChannel(chanRPC)
	if err != nil {
		return nil, err
	}
	dmaConn, err := c.dialChannel(chanDMA)
	if err != nil {
		rpcConn.Close()
		return nil, err
	}
	c.attach(&c.rpc, rpcConn)
	c.attach(&c.dma, dmaConn)
	return c, nil
}

// attach installs a freshly dialed connection on a channel and starts its
// demux reader.
func (c *Conn) attach(ch *channel, nc net.Conn) {
	ch.mu.Lock()
	c.attachLocked(ch, nc)
	ch.mu.Unlock()
}

// attachLocked is attach with ch.mu already held.
func (c *Conn) attachLocked(ch *channel, nc net.Conn) {
	ch.nc = nc
	ch.fw = newFrameWriter(nc, func(err error) {
		c.failChannel(ch, nc, "write", err)
	})
	ch.broken = false
	ch.pending = make(map[uint64]chan callResult)
	go c.readLoop(ch, nc)
}

func (c *Conn) dialChannel(kind byte) (net.Conn, error) {
	nc, err := c.opts.Dialer("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	if _, err := nc.Write([]byte{kind}); err != nil {
		nc.Close()
		return nil, err
	}
	return nc, nil
}

// Close tears down both channels, failing any in-flight calls.
func (c *Conn) Close() error {
	var err error
	for _, ch := range []*channel{&c.rpc, &c.dma} {
		ch.mu.Lock()
		ch.closed = true
		ch.failPendingLocked(ErrConnClosed)
		if ch.nc != nil {
			if e := ch.nc.Close(); e != nil {
				err = e
			}
		}
		ch.mu.Unlock()
	}
	return err
}

// jitterSleep sleeps a uniformly jittered [d/2, d).
func (c *Conn) jitterSleep(d time.Duration) {
	c.rngMu.Lock()
	j := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	time.Sleep(j)
}

// ensureLocked repairs a broken or missing channel, re-dialing with
// exponential backoff + jitter and restarting the demux reader. Caller
// holds ch.mu.
func (c *Conn) ensureLocked(ch *channel) error {
	if ch.closed {
		return ErrConnClosed
	}
	if ch.nc != nil && !ch.broken {
		return nil
	}
	if ch.nc != nil {
		ch.nc.Close()
		ch.nc = nil
	}
	backoff := c.opts.RedialBase
	var last error
	for i := 0; i < c.opts.RedialAttempts; i++ {
		if i > 0 {
			c.jitterSleep(backoff)
			if backoff *= 2; backoff > c.opts.RedialMax {
				backoff = c.opts.RedialMax
			}
		}
		mRedialAttempts.Inc()
		nc, err := c.dialChannel(ch.kind)
		if err != nil {
			last = err
			continue
		}
		c.attachLocked(ch, nc)
		mRedialSuccess.Inc()
		return nil
	}
	return fmt.Errorf("%w: redial %s failed: %v", ErrConnBroken, c.addr, last)
}

// failChannel poisons the channel after a fault on the given connection
// incarnation: the stream's framing state is undefined, so the connection
// is closed, every pending call fails with ErrConnBroken, and the next use
// re-dials instead of desynchronizing. If the channel has already moved on
// to a newer connection (or is closed), this is a no-op — the fault belongs
// to a previous incarnation whose pending calls were already failed.
func (c *Conn) failChannel(ch *channel, nc net.Conn, stage string, cause error) error {
	err := fmt.Errorf("%w: %s: %v", ErrConnBroken, stage, cause)
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.nc != nc || ch.closed {
		return err
	}
	ch.broken = true
	mBrokenChannels.Inc()
	nc.Close()
	ch.failPendingLocked(err)
	return err
}

// readLoop is the demux reader: it pulls response frames off one connection
// incarnation and delivers each to the pending call whose sequence ID it
// echoes. Any read fault — including an unsolicited sequence ID, which
// means the stream is desynchronized — poisons the channel and fails all
// pending calls.
func (c *Conn) readLoop(ch *channel, nc net.Conn) {
	br := bufio.NewReaderSize(nc, readBufBytes)
	for {
		seq, body, err := readFrame(br)
		if err != nil {
			c.failChannel(ch, nc, "read", err)
			return
		}
		ch.mu.Lock()
		if ch.nc != nc {
			ch.mu.Unlock()
			putFrameBuf(body)
			return
		}
		done, ok := ch.pending[seq]
		if ok {
			delete(ch.pending, seq)
		}
		ch.mu.Unlock()
		if !ok {
			putFrameBuf(body)
			c.failChannel(ch, nc, "decode", fmt.Errorf("unsolicited response seq %d", seq))
			return
		}
		done <- callResult{body: body}
	}
}

// errCallTimeout marks a round trip that outlived CallTimeout; it surfaces
// wrapped in ErrConnBroken and satisfies net.Error's Timeout.
type errCallTimeout struct{ d time.Duration }

func (e errCallTimeout) Error() string { return fmt.Sprintf("call exceeded %v", e.d) }
func (e errCallTimeout) Timeout() bool { return true }

// timerPool recycles call-timeout timers; a fresh time.NewTimer costs three
// allocations per round trip, which shows up at pipelined call rates.
var timerPool = sync.Pool{}

func getTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops and drains a timer obtained from getTimer. The caller must
// no longer be selecting on t.C.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// donePool recycles the one-shot result channels of roundTrip. A pending
// entry receives exactly one send (from the demux reader or the failure
// path — both remove it from the map first) and roundTrip always performs
// the matching receive, so a channel leaving roundTrip is provably empty
// and safe to reuse.
var donePool = sync.Pool{New: func() any { return make(chan callResult, 1) }}

// roundTrip performs one multiplexed exchange: register a pending call,
// write the request frame, wait for the demux reader to deliver the
// response. The returned body is a pooled frame buffer — decode it and hand
// it back with putFrameBuf. Transport faults (including timeout) poison the
// channel and fail all its pending calls.
func (c *Conn) roundTrip(ch *channel, body []byte) ([]byte, error) {
	done := donePool.Get().(chan callResult)
	defer donePool.Put(done)
	ch.mu.Lock()
	if err := c.ensureLocked(ch); err != nil {
		ch.mu.Unlock()
		return nil, err
	}
	nc := ch.nc
	fw := ch.fw
	ch.seq++
	seq := ch.seq
	ch.pending[seq] = done
	ch.mu.Unlock()

	if werr := fw.send(seq, body); werr != nil {
		// Fails every pending call on this incarnation — including ours,
		// unless a concurrent fault already did; either way done fires.
		// (An asynchronous flush fault reaches the same path through the
		// frameWriter's onErr hook.)
		c.failChannel(ch, nc, "write", werr)
	}

	if c.opts.CallTimeout <= 0 {
		r := <-done
		return r.body, r.err
	}
	t := getTimer(c.opts.CallTimeout)
	select {
	case r := <-done:
		putTimer(t)
		return r.body, r.err
	case <-t.C:
		timerPool.Put(t) // already fired and drained
		mCallTimeouts.Inc()
		c.failChannel(ch, nc, "timeout", errCallTimeout{c.opts.CallTimeout})
		r := <-done // failChannel (ours or a concurrent one) delivered
		return r.body, r.err
	}
}

// Call performs one RPC round trip. Concurrent Calls on one Conn pipeline
// on the wire. On transport faults the RPC channel is marked broken and the
// error wraps ErrConnBroken; the next Call re-dials. A request too large
// for one frame (an oversized batch, a giant write) fails cleanly with
// ErrFrameTooLarge before touching the wire — the channel stays healthy.
func (c *Conn) Call(req rpc.Request) (rpc.Response, error) {
	body := req.MarshalAppend(getFrameBuf(0))
	if len(body)+frameSeqBytes > maxFrame {
		n := len(body)
		putFrameBuf(body)
		return rpc.Response{}, fmt.Errorf("%w: %d-byte request", ErrFrameTooLarge, n)
	}
	frame, err := c.roundTrip(&c.rpc, body)
	putFrameBuf(body)
	if err != nil {
		return rpc.Response{}, err
	}
	resp, err := rpc.UnmarshalResponse(frame)
	putFrameBuf(frame)
	if err != nil {
		// A frame that does not decode means the stream is corrupt; the
		// channel cannot be trusted any further.
		c.rpc.mu.Lock()
		nc := c.rpc.nc
		c.rpc.mu.Unlock()
		return rpc.Response{}, c.failChannel(&c.rpc, nc, "decode", err)
	}
	return resp, nil
}

// DirectRead performs an emulated one-sided read of len(buf) bytes at the
// remote virtual address; concurrent reads pipeline on the DMA channel. All
// validity checking is up to the caller, as with a real RDMA read. A broken
// QP (ErrDMABroken) persists server-side until ReconnectDMA re-dials the
// channel — the reconnect the paper prices at milliseconds; transport
// faults heal automatically like Call's.
func (c *Conn) DirectRead(rkey uint32, vaddr uint64, buf []byte) error {
	if len(buf)+1 > maxFrame {
		return fmt.Errorf("%w: DMA read of %d bytes", ErrFrameTooLarge, len(buf))
	}
	var req [16]byte
	binary.LittleEndian.PutUint32(req[0:], rkey)
	binary.LittleEndian.PutUint64(req[4:], vaddr)
	binary.LittleEndian.PutUint32(req[12:], uint32(len(buf)))
	frame, err := c.roundTrip(&c.dma, req[:])
	if err != nil {
		return err
	}
	defer putFrameBuf(frame)
	if len(frame) < 1 {
		return c.failDMADecode(fmt.Errorf("empty DMA response"))
	}
	switch frame[0] {
	case dmaOK:
		if len(frame)-1 != len(buf) {
			// A short payload means we are reading someone else's frame.
			return c.failDMADecode(fmt.Errorf("DMA short read (%d of %d)", len(frame)-1, len(buf)))
		}
		copy(buf, frame[1:])
		return nil
	case dmaBadKey:
		return ErrDMABadKey
	case dmaBroken:
		return ErrDMABroken
	case dmaBounds:
		return ErrDMABounds
	}
	return c.failDMADecode(fmt.Errorf("DMA error %d", frame[0]))
}

// failDMADecode poisons the DMA channel after an undecodable response.
func (c *Conn) failDMADecode(cause error) error {
	c.dma.mu.Lock()
	nc := c.dma.nc
	c.dma.mu.Unlock()
	return c.failChannel(&c.dma, nc, "decode", cause)
}

// ReconnectDMA re-establishes the one-sided channel after a QP break,
// failing any in-flight reads and using the same backoff policy as
// automatic repair.
func (c *Conn) ReconnectDMA() error {
	c.dma.mu.Lock()
	defer c.dma.mu.Unlock()
	if c.dma.nc != nil {
		c.dma.nc.Close()
	}
	c.dma.broken = true
	c.dma.failPendingLocked(fmt.Errorf("%w: reconnect", ErrConnBroken))
	return c.ensureLocked(&c.dma)
}
