package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"corm/internal/rpc"
)

// Options tunes a client connection's failure behaviour. The zero value
// gets sane defaults (see withDefaults).
type Options struct {
	// CallTimeout bounds one round trip on either channel; a call that
	// expires breaks the channel (responses can no longer be matched to
	// waiters reliably) and fails every pending call on it. <0 disables
	// timeouts.
	CallTimeout time.Duration
	// RedialAttempts bounds how many dials one repair of a broken channel
	// performs before giving up (the operation then fails with
	// ErrConnBroken and the next use tries again).
	RedialAttempts int
	// RedialBase / RedialMax shape the exponential backoff between redial
	// attempts; actual sleeps are jittered uniformly in [base/2, base).
	RedialBase time.Duration
	RedialMax  time.Duration
	// Seed drives the backoff jitter RNG, for reproducible schedules.
	Seed int64
	// Dialer opens the raw TCP connection; fault injection hooks in here.
	// Setting it also disables the shared-memory fast path: a harness that
	// wraps the wire gets the wire.
	Dialer func(network, addr string) (net.Conn, error)
	// DisableSharedMemory forces TCP even for same-process endpoints
	// (loopback benchmarks comparing the two paths).
	DisableSharedMemory bool
}

func (o Options) withDefaults() Options {
	if o.CallTimeout == 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.RedialAttempts <= 0 {
		o.RedialAttempts = 3
	}
	if o.RedialBase <= 0 {
		o.RedialBase = 2 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Dialer != nil {
		o.DisableSharedMemory = true
	} else {
		o.Dialer = net.Dial
	}
	return o
}

// wire is one live incarnation of a channel's transport: the TCP frame
// stream or a shared-memory endpoint. A wire that faulted is closed and
// replaced wholesale — its identity doubles as the incarnation token the
// failure path compares, so a stale fault can never poison a successor.
type wire interface {
	// send enqueues one frame; with owned the wire takes the frame-pool
	// buffer and recycles it once delivered.
	send(seq uint64, body []byte, owned bool) error
	close() error
}

// tcpWire frames onto a socket through the scatter-gather writer.
type tcpWire struct {
	nc net.Conn
	fw *frameWriter
}

func (w *tcpWire) send(seq uint64, body []byte, owned bool) error {
	return w.fw.send(seq, body, owned)
}
func (w *tcpWire) close() error { return w.nc.Close() }

// shmWire frames onto an in-process endpoint (shm.go).
type shmWire struct {
	ep   *shmEndpoint
	sink shmSink
}

func (w *shmWire) send(seq uint64, body []byte, owned bool) error {
	if err := w.sink.send(seq, body, owned); err != nil {
		return fmt.Errorf("%w: %v", ErrConnBroken, err)
	}
	return nil
}
func (w *shmWire) close() error { w.ep.close(); return nil }

// callResult is what the demux reader (or the failure path) delivers to a
// waiting caller: a view of the response body backed by a receive-buffer
// lease. The waiter releases the lease once decoded (or hands it up to
// callers that want zero-copy views).
type callResult struct {
	lease *Lease
	body  []byte
	err   error
}

// channel is one multiplexed framed stream to the server. Many calls may be
// in flight at once: each registers a sequence ID in pending, enqueues its
// frame on the wire, and waits for the demux reader goroutine (one per wire
// incarnation) to deliver the matching response. A channel whose read or
// write failed mid-frame is marked broken — its framing state is undefined,
// so it must never be reused — every pending call fails with ErrConnBroken,
// and the next use re-dials.
type channel struct {
	kind byte

	mu      sync.Mutex // guards w, broken, closed, seq, pending
	w       wire
	broken  bool
	closed  bool
	seq     uint64
	pending map[uint64]chan callResult
}

// failPendingLocked delivers err to every pending call. Caller holds ch.mu.
func (ch *channel) failPendingLocked(err error) {
	for seq, done := range ch.pending {
		delete(ch.pending, seq)
		done <- callResult{err: err}
	}
}

// Conn is a client's connection bundle to one CoRM node: one RPC channel
// and one DMA (emulated one-sided) channel. Both channels are multiplexed
// (concurrent calls pipeline on the wire) and self-heal: transport faults
// mark them broken, fail all in-flight calls with ErrConnBroken, and the
// next operation transparently re-dials with exponential backoff. Conn does
// not re-issue operations — that is the client layer's job, and only for
// idempotent ones.
//
// When the address belongs to a Server listening in this same process (and
// no custom Dialer is installed), both channels ride the shared-memory
// fast path instead of the socket; everything above the wire behaves
// identically.
type Conn struct {
	addr string
	opts Options

	rngMu sync.Mutex
	rng   *rand.Rand

	rpc channel
	dma channel
}

// Dial connects both channels to a CoRM server with default options.
func Dial(addr string) (*Conn, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects with explicit failure-handling options.
func DialOptions(addr string, opts Options) (*Conn, error) {
	opts = opts.withDefaults()
	c := &Conn{
		addr: addr,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	c.rpc.kind = chanRPC
	c.dma.kind = chanDMA
	rpcWire, err := c.dialWire(chanRPC)
	if err != nil {
		return nil, err
	}
	dmaWire, err := c.dialWire(chanDMA)
	if err != nil {
		rpcWire.close()
		return nil, err
	}
	c.attach(&c.rpc, rpcWire)
	c.attach(&c.dma, dmaWire)
	return c, nil
}

// attach installs a freshly dialed wire on a channel and starts its demux
// reader.
func (c *Conn) attach(ch *channel, w wire) {
	ch.mu.Lock()
	c.attachLocked(ch, w)
	ch.mu.Unlock()
}

// attachLocked is attach with ch.mu already held.
func (c *Conn) attachLocked(ch *channel, w wire) {
	ch.w = w
	ch.broken = false
	ch.pending = make(map[uint64]chan callResult)
	switch tw := w.(type) {
	case *tcpWire:
		go c.readLoopTCP(ch, tw)
	case *shmWire:
		go c.readLoopSHM(ch, tw)
	}
}

// dialWire opens one channel's transport. Same-process endpoints attach
// over shared memory (unless opted out); otherwise a TCP connection is
// dialed and the channel-kind handshake byte is folded into the wire's
// first flushed batch — connection setup costs a single syscall.
func (c *Conn) dialWire(kind byte) (wire, error) {
	if !c.opts.DisableSharedMemory {
		if srv := lookupSHM(c.addr); srv != nil {
			if ep := srv.dialSHM(kind); ep != nil {
				return &shmWire{ep: ep, sink: shmSink{ring: ep.c2s}}, nil
			}
		}
	}
	nc, err := c.opts.Dialer("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	w := &tcpWire{nc: nc}
	w.fw = newFrameWriter(nc, kind, func(err error) {
		c.failChannel(ch(c, kind), w, "write", err)
	})
	return w, nil
}

// ch maps a channel kind back to the Conn's channel.
func ch(c *Conn, kind byte) *channel {
	if kind == chanDMA {
		return &c.dma
	}
	return &c.rpc
}

// Close tears down both channels, failing any in-flight calls.
func (c *Conn) Close() error {
	var err error
	for _, ch := range []*channel{&c.rpc, &c.dma} {
		ch.mu.Lock()
		ch.closed = true
		ch.failPendingLocked(ErrConnClosed)
		if ch.w != nil {
			if e := ch.w.close(); e != nil {
				err = e
			}
		}
		ch.mu.Unlock()
	}
	return err
}

// jitterSleep sleeps a uniformly jittered [d/2, d).
func (c *Conn) jitterSleep(d time.Duration) {
	c.rngMu.Lock()
	j := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	time.Sleep(j)
}

// ensureLocked repairs a broken or missing channel, re-dialing with
// exponential backoff + jitter and restarting the demux reader. Caller
// holds ch.mu.
func (c *Conn) ensureLocked(ch *channel) error {
	if ch.closed {
		return ErrConnClosed
	}
	if ch.w != nil && !ch.broken {
		return nil
	}
	if ch.w != nil {
		ch.w.close()
		ch.w = nil
	}
	backoff := c.opts.RedialBase
	var last error
	for i := 0; i < c.opts.RedialAttempts; i++ {
		if i > 0 {
			c.jitterSleep(backoff)
			if backoff *= 2; backoff > c.opts.RedialMax {
				backoff = c.opts.RedialMax
			}
		}
		mRedialAttempts.Inc()
		w, err := c.dialWire(ch.kind)
		if err != nil {
			last = err
			continue
		}
		c.attachLocked(ch, w)
		mRedialSuccess.Inc()
		return nil
	}
	return fmt.Errorf("%w: redial %s failed: %v", ErrConnBroken, c.addr, last)
}

// failChannel poisons the channel after a fault on the given wire
// incarnation: the stream's framing state is undefined, so the wire is
// closed, every pending call fails with ErrConnBroken, and the next use
// re-dials instead of desynchronizing. If the channel has already moved on
// to a newer wire (or is closed), this is a no-op — the fault belongs to a
// previous incarnation whose pending calls were already failed.
func (c *Conn) failChannel(ch *channel, w wire, stage string, cause error) error {
	err := fmt.Errorf("%w: %s: %v", ErrConnBroken, stage, cause)
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.w != w || ch.closed {
		return err
	}
	ch.broken = true
	mBrokenChannels.Inc()
	w.close()
	ch.failPendingLocked(err)
	return err
}

// deliver routes one decoded frame to its pending call; a false return
// means the wire moved on or the sequence ID was unsolicited (the caller
// poisons the channel for the latter).
func (c *Conn) deliver(ch *channel, w wire, seq uint64, lease *Lease, body []byte) (stale, ok bool) {
	ch.mu.Lock()
	if ch.w != w {
		ch.mu.Unlock()
		lease.Release()
		return true, false
	}
	done, ok := ch.pending[seq]
	if ok {
		delete(ch.pending, seq)
	}
	ch.mu.Unlock()
	if !ok {
		lease.Release()
		return false, false
	}
	done <- callResult{lease: lease, body: body}
	return false, true
}

// readLoopTCP is the demux reader for a socket wire: response frames land
// in registered ring buffers and each lease is delivered to the pending
// call whose sequence ID the frame echoes. Any read fault — including an
// unsolicited sequence ID, which means the stream is desynchronized —
// poisons the channel and fails all pending calls.
func (c *Conn) readLoopTCP(ch *channel, w *tcpWire) {
	br := bufio.NewReaderSize(w.nc, readBufBytes)
	ring := newBufRing()
	for {
		seq, lease, body, err := readFrameRing(br, ring)
		if err != nil {
			c.failChannel(ch, w, "read", err)
			return
		}
		stale, ok := c.deliver(ch, w, seq, lease, body)
		if stale {
			return
		}
		if !ok {
			c.failChannel(ch, w, "decode", fmt.Errorf("unsolicited response seq %d", seq))
			return
		}
	}
}

// readLoopSHM is the demux reader for a shared-memory wire: slot buffers
// are handed to callers directly (wrapped in pooled leases) — no landing
// copy exists on this path at all.
func (c *Conn) readLoopSHM(ch *channel, w *shmWire) {
	for {
		seq, body, err := w.ep.s2c.pop()
		if err != nil {
			c.failChannel(ch, w, "read", err)
			return
		}
		mFramesIn.Inc()
		stale, ok := c.deliver(ch, w, seq, newPooledLease(body), body)
		if stale {
			return
		}
		if !ok {
			c.failChannel(ch, w, "decode", fmt.Errorf("unsolicited response seq %d", seq))
			return
		}
	}
}

// errCallTimeout marks a round trip that outlived CallTimeout; it surfaces
// wrapped in ErrConnBroken and satisfies net.Error's Timeout.
type errCallTimeout struct{ d time.Duration }

func (e errCallTimeout) Error() string { return fmt.Sprintf("call exceeded %v", e.d) }
func (e errCallTimeout) Timeout() bool { return true }

// timerPool recycles call-timeout timers; a fresh time.NewTimer costs three
// allocations per round trip, which shows up at pipelined call rates.
var timerPool = sync.Pool{}

func getTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops and drains a timer obtained from getTimer. The caller must
// no longer be selecting on t.C.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// donePool recycles the one-shot result channels of roundTrip. A pending
// entry receives exactly one send (from the demux reader or the failure
// path — both remove it from the map first) and roundTrip always performs
// the matching receive, so a channel leaving roundTrip is provably empty
// and safe to reuse.
var donePool = sync.Pool{New: func() any { return make(chan callResult, 1) }}

// roundTrip performs one multiplexed exchange: register a pending call,
// enqueue the request frame (ownership of an owned frame-pool body passes
// to the wire), wait for the demux reader to deliver the response. The
// returned body aliases the returned lease — decode or copy, then Release.
// Transport faults (including timeout) poison the channel and fail all its
// pending calls.
func (c *Conn) roundTrip(ch *channel, body []byte, owned bool) (*Lease, []byte, error) {
	done := donePool.Get().(chan callResult)
	defer donePool.Put(done)
	ch.mu.Lock()
	if err := c.ensureLocked(ch); err != nil {
		ch.mu.Unlock()
		return nil, nil, err
	}
	w := ch.w
	ch.seq++
	seq := ch.seq
	ch.pending[seq] = done
	ch.mu.Unlock()

	if werr := w.send(seq, body, owned); werr != nil {
		// Fails every pending call on this incarnation — including ours,
		// unless a concurrent fault already did; either way done fires.
		// (An asynchronous flush fault reaches the same path through the
		// frameWriter's onErr hook.)
		c.failChannel(ch, w, "write", werr)
	}

	if c.opts.CallTimeout <= 0 {
		r := <-done
		return r.lease, r.body, r.err
	}
	t := getTimer(c.opts.CallTimeout)
	select {
	case r := <-done:
		putTimer(t)
		return r.lease, r.body, r.err
	case <-t.C:
		timerPool.Put(t) // already fired and drained
		mCallTimeouts.Inc()
		c.failChannel(ch, w, "timeout", errCallTimeout{c.opts.CallTimeout})
		r := <-done // failChannel (ours or a concurrent one) delivered
		return r.lease, r.body, r.err
	}
}

// marshalCall encodes a request into a frame-pool buffer, enforcing the
// frame bound before the wire is touched.
func marshalCall(req rpc.Request) ([]byte, error) {
	body := req.MarshalAppend(getFrameBuf(0))
	if len(body)+frameSeqBytes > maxFrame {
		n := len(body)
		putFrameBuf(body)
		return nil, fmt.Errorf("%w: %d-byte request", ErrFrameTooLarge, n)
	}
	return body, nil
}

// Call performs one RPC round trip. Concurrent Calls on one Conn pipeline
// on the wire. On transport faults the RPC channel is marked broken and the
// error wraps ErrConnBroken; the next Call re-dials. A request too large
// for one frame (an oversized batch, a giant write) fails cleanly with
// ErrFrameTooLarge before touching the wire — the channel stays healthy.
// The response payload is a private copy; CallLease is the zero-copy
// variant.
func (c *Conn) Call(req rpc.Request) (rpc.Response, error) {
	resp, lease, err := c.CallLease(req)
	if err != nil {
		return rpc.Response{}, err
	}
	if len(resp.Payload) > 0 {
		resp.Payload = append([]byte(nil), resp.Payload...)
	}
	lease.Release()
	return resp, nil
}

// CallLease performs one RPC round trip without copying the response
// payload: Response.Payload aliases the returned lease's receive buffer.
// The caller must Release the lease when done with the payload (a nil
// lease on error needs no release, but Release tolerates it).
func (c *Conn) CallLease(req rpc.Request) (rpc.Response, *Lease, error) {
	body, err := marshalCall(req)
	if err != nil {
		return rpc.Response{}, nil, err
	}
	lease, frame, err := c.roundTrip(&c.rpc, body, true)
	if err != nil {
		return rpc.Response{}, nil, err
	}
	resp, err := rpc.UnmarshalResponseView(frame)
	if err != nil {
		lease.Release()
		// A frame that does not decode means the stream is corrupt; the
		// channel cannot be trusted any further.
		c.rpc.mu.Lock()
		w := c.rpc.w
		c.rpc.mu.Unlock()
		return rpc.Response{}, nil, c.failChannel(&c.rpc, w, "decode", err)
	}
	return resp, lease, nil
}

// DirectRead performs an emulated one-sided read of len(buf) bytes at the
// remote virtual address; concurrent reads pipeline on the DMA channel. All
// validity checking is up to the caller, as with a real RDMA read. A broken
// QP (ErrDMABroken) persists server-side until ReconnectDMA re-dials the
// channel — the reconnect the paper prices at milliseconds; transport
// faults heal automatically like Call's.
func (c *Conn) DirectRead(rkey uint32, vaddr uint64, buf []byte) error {
	lease, data, err := c.DirectReadLease(rkey, vaddr, len(buf))
	if err != nil {
		return err
	}
	copy(buf, data)
	lease.Release()
	return nil
}

// DirectReadLease is the zero-copy one-sided read: the returned view of
// the read data aliases the returned lease's receive buffer (the emulated
// NIC wrote into registered memory; this is that memory). Release when
// done.
func (c *Conn) DirectReadLease(rkey uint32, vaddr uint64, n int) (*Lease, []byte, error) {
	if n+1 > maxFrame {
		return nil, nil, fmt.Errorf("%w: DMA read of %d bytes", ErrFrameTooLarge, n)
	}
	// The request rides an owned pool buffer: a stack array would escape
	// through the wire interface and cost an allocation per read.
	req := getFrameBuf(16)
	binary.LittleEndian.PutUint32(req[0:], rkey)
	binary.LittleEndian.PutUint64(req[4:], vaddr)
	binary.LittleEndian.PutUint32(req[12:], uint32(n))
	lease, frame, err := c.roundTrip(&c.dma, req, true)
	if err != nil {
		return nil, nil, err
	}
	if len(frame) < 1 {
		lease.Release()
		return nil, nil, c.failDMADecode(fmt.Errorf("empty DMA response"))
	}
	status := frame[0]
	switch status {
	case dmaOK:
		if len(frame)-1 != n {
			// A short payload means we are reading someone else's frame.
			lease.Release()
			return nil, nil, c.failDMADecode(fmt.Errorf("DMA short read (%d of %d)", len(frame)-1, n))
		}
		return lease, frame[1:], nil
	case dmaBadKey:
		lease.Release()
		return nil, nil, ErrDMABadKey
	case dmaBroken:
		lease.Release()
		return nil, nil, ErrDMABroken
	case dmaBounds:
		lease.Release()
		return nil, nil, ErrDMABounds
	}
	lease.Release()
	return nil, nil, c.failDMADecode(fmt.Errorf("DMA error %d", status))
}

// failDMADecode poisons the DMA channel after an undecodable response.
func (c *Conn) failDMADecode(cause error) error {
	c.dma.mu.Lock()
	w := c.dma.w
	c.dma.mu.Unlock()
	return c.failChannel(&c.dma, w, "decode", cause)
}

// ReconnectDMA re-establishes the one-sided channel after a QP break,
// failing any in-flight reads and using the same backoff policy as
// automatic repair.
func (c *Conn) ReconnectDMA() error {
	c.dma.mu.Lock()
	defer c.dma.mu.Unlock()
	if c.dma.w != nil {
		c.dma.w.close()
	}
	c.dma.broken = true
	c.dma.failPendingLocked(fmt.Errorf("%w: reconnect", ErrConnBroken))
	return c.ensureLocked(&c.dma)
}
