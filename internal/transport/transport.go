// Package transport carries the CoRM protocol over TCP, so the system runs
// as genuinely distributed processes. Two channel types exist, mirroring
// the hardware split the paper relies on:
//
//   - RPC channels feed the store's shared RPC queue; worker threads serve
//     them (§2.2.2).
//   - DMA channels emulate one-sided RDMA: block memory is read directly
//     through a simulated QP, never touching the worker pool or taking
//     object locks. Consistency checking stays on the client, exactly as
//     with real one-sided reads.
//
// Both channel types are multiplexed, like verbs on a real QP: every frame
// carries a sequence ID, the client keeps a pending-call map and a demux
// reader goroutine per channel, and the server dispatches frames to bounded
// concurrent handlers. N client goroutines sharing one Conn therefore get N
// overlapping requests in flight instead of lock-stepping on one.
//
// Framing is length-prefixed: a 12-byte header (4-byte little-endian length
// covering the rest of the frame, then an 8-byte sequence ID) followed by
// the body. Responses echo the request's sequence ID; bodies on one channel
// may be answered out of order.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"corm/internal/rnic"
	"corm/internal/rpc"
)

// Channel handshake bytes.
const (
	chanRPC = 'R'
	chanDMA = 'D'
)

// maxFrame bounds a frame body (blocks are at most 1 MiB; allow headroom).
const maxFrame = 8 << 20

// frameSeqBytes is the sequence-ID portion of the frame header.
const frameSeqBytes = 8

// maxInflight bounds concurrent request dispatch per server connection —
// the emulated queue depth of one QP. Frames beyond it wait in the reader.
const maxInflight = 64

// framePool recycles frame bodies and DMA response buffers; per-request
// allocation of block-sized buffers otherwise dominates the hot path.
var framePool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// getFrameBuf returns a pooled buffer of length n.
func getFrameBuf(n int) []byte {
	b := framePool.Get().([]byte)
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// putFrameBuf recycles a buffer obtained from getFrameBuf.
func putFrameBuf(b []byte) {
	framePool.Put(b[:0]) //nolint:staticcheck // slices are pointer-shaped here
}

// appendFrame appends one encoded frame (header + body) to dst.
func appendFrame(dst []byte, seq uint64, body []byte) []byte {
	var hdr [4 + frameSeqBytes]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)+frameSeqBytes))
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// writeFrame sends one frame — 12-byte header (length+seq) and body — in a
// single write. Production paths go through frameWriter (which coalesces
// concurrent frames); this helper serves tests and hand-crafted streams.
func writeFrame(w io.Writer, seq uint64, body []byte) error {
	frame := appendFrame(getFrameBuf(0), seq, body)
	_, err := w.Write(frame)
	putFrameBuf(frame)
	return err
}

// frameWriter coalesces frames from concurrent senders into batched writes
// — the group-commit trick that makes a deep pipeline pay off: under load,
// one syscall carries many frames. The first sender whose append finds no
// flusher running becomes the flusher and drains the buffer (including
// frames appended meanwhile) until it is empty. Senders do not wait for
// their bytes to hit the wire: a write fault is delivered through onErr
// (once), which the owner uses to poison the channel and fail every
// pending call.
type frameWriter struct {
	conn  net.Conn
	onErr func(error)

	mu       sync.Mutex
	buf      []byte
	spare    []byte
	frames   int // frames appended to buf since the last batch was taken
	flushing bool
	err      error
}

func newFrameWriter(conn net.Conn, onErr func(error)) *frameWriter {
	return &frameWriter{conn: conn, onErr: onErr}
}

// send enqueues one frame and flushes if no other sender is already doing
// so. It returns an error only if the writer has already failed.
func (fw *frameWriter) send(seq uint64, body []byte) error {
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	fw.buf = appendFrame(fw.buf, seq, body)
	fw.frames++
	mFramesOut.Inc()
	if fw.flushing {
		fw.mu.Unlock()
		return nil
	}
	fw.flushing = true
	fw.mu.Unlock()
	fw.flush()
	return nil
}

// flush drains the buffer until empty, batching whatever concurrent senders
// appended since the last write.
func (fw *frameWriter) flush() {
	for {
		// Let runnable senders append before the batch is taken: one
		// scheduler pass here routinely turns N single-frame writes into one
		// N-frame write, and when nothing else is runnable it costs almost
		// nothing. Syscalls dominate the pipelined hot path, so batch size —
		// not latency — is what this path optimizes for.
		runtime.Gosched()
		fw.mu.Lock()
		if fw.err != nil || len(fw.buf) == 0 {
			fw.flushing = false
			fw.mu.Unlock()
			return
		}
		data := fw.buf
		frames := fw.frames
		fw.buf = fw.spare
		fw.spare = nil
		fw.frames = 0
		fw.mu.Unlock()

		_, err := fw.conn.Write(data)
		if err == nil {
			mFlushes.Inc()
			mFramesPerFlush.Observe(int64(frames))
			mBytesOut.Add(int64(len(data)))
		}

		fw.mu.Lock()
		fw.spare = data[:0]
		if err != nil && fw.err == nil {
			fw.err = err
			fw.flushing = false
			fw.mu.Unlock()
			fw.conn.Close()
			if fw.onErr != nil {
				fw.onErr(err)
			}
			return
		}
		fw.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// readFrame receives one frame, returning its sequence ID and body. The
// body is drawn from the frame pool; hand it back with putFrameBuf once
// decoded.
func readFrame(r io.Reader) (uint64, []byte, error) {
	var hdr [4 + frameSeqBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < frameSeqBytes {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes lacks a sequence ID", n)
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	seq := binary.LittleEndian.Uint64(hdr[4:])
	body := getFrameBuf(int(n) - frameSeqBytes)
	if _, err := io.ReadFull(r, body); err != nil {
		putFrameBuf(body)
		return 0, nil, err
	}
	mFramesIn.Inc()
	return seq, body, nil
}

// Server exposes an rpc.Server over a TCP listener.
type Server struct {
	rpc *rpc.Server
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Listen starts serving on addr (e.g. "127.0.0.1:0").
func Listen(addr string, srv *rpc.Server) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, srv), nil
}

// Serve starts serving on an existing listener — the hook the fault
// injector uses to wrap accepted connections.
func Serve(ln net.Listener, srv *rpc.Server) *Server {
	s := &Server{rpc: srv, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = true
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	var kind [1]byte
	if _, err := io.ReadFull(conn, kind[:]); err != nil {
		return
	}
	switch kind[0] {
	case chanRPC:
		s.serveRPC(conn)
	case chanDMA:
		s.serveDMA(conn)
	}
}

// readBufBytes sizes the server- and client-side buffered readers: big
// enough that a batch of pipelined frames drains in one syscall.
const readBufBytes = 64 << 10

// serveRPC pipelines request frames into bounded concurrent handlers:
// the buffered reader keeps pulling frames while up to maxInflight
// requests are being executed by the worker pool, and responses go out
// (tagged with the request's sequence ID, coalesced by the frameWriter) as
// they complete. A write fault closes the connection, which unblocks the
// reader.
func (s *Server) serveRPC(conn net.Conn) {
	w := newFrameWriter(conn, nil)
	br := bufio.NewReaderSize(conn, readBufBytes)
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		seq, body, err := readFrame(br)
		if err != nil {
			return
		}
		req, err := rpc.UnmarshalRequest(body)
		putFrameBuf(body)
		if err != nil {
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(seq uint64, req rpc.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			resp := s.rpc.Submit(req)
			body := resp.MarshalAppend(getFrameBuf(0))
			w.send(seq, body)
			putFrameBuf(body)
		}(seq, req)
	}
}

// DMA request body: rkey(4) vaddr(8) length(4). Response: status(1) + data.
const (
	dmaOK      = 0
	dmaBadKey  = 1
	dmaBroken  = 2
	dmaBounds  = 3
	dmaUnknown = 4
)

// serveDMA pipelines one-sided reads the same way serveRPC pipelines RPCs.
// The channel's QP is shared by the concurrent handlers — the NIC's own
// locking serializes MTT access, like hardware issuing verbs from one QP's
// send queue — and a QP break persists until the client reconnects the
// channel. The QP slot is released when the channel closes (ibv_destroy_qp).
func (s *Server) serveDMA(conn net.Conn) {
	qp := s.rpc.Store().NIC().Connect()
	defer qp.Close()
	w := newFrameWriter(conn, nil)
	br := bufio.NewReaderSize(conn, readBufBytes)
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		seq, body, err := readFrame(br)
		if err != nil {
			return
		}
		if len(body) != 16 {
			putFrameBuf(body)
			return
		}
		rkey := binary.LittleEndian.Uint32(body[0:])
		vaddr := binary.LittleEndian.Uint64(body[4:])
		length := binary.LittleEndian.Uint32(body[12:])
		putFrameBuf(body)
		if length > maxFrame-1 {
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		mDMAReads.Inc()
		go func(seq uint64, rkey uint32, vaddr uint64, length uint32) {
			defer wg.Done()
			defer func() { <-sem }()
			buf := getFrameBuf(int(length) + 1)
			_, rerr := qp.Read(rkey, vaddr, buf[1:])
			switch {
			case rerr == nil:
				buf[0] = dmaOK
			case errors.Is(rerr, rnic.ErrInvalidKey):
				buf = buf[:1]
				buf[0] = dmaBadKey
			case errors.Is(rerr, rnic.ErrQPBroken):
				buf = buf[:1]
				buf[0] = dmaBroken
			case errors.Is(rerr, rnic.ErrOutOfBounds):
				buf = buf[:1]
				buf[0] = dmaBounds
			default:
				buf = buf[:1]
				buf[0] = dmaUnknown
			}
			w.send(seq, buf)
			putFrameBuf(buf)
		}(seq, rkey, vaddr, length)
	}
}
