// Package transport carries the CoRM protocol over TCP, so the system runs
// as genuinely distributed processes. Two channel types exist, mirroring
// the hardware split the paper relies on:
//
//   - RPC channels feed the store's shared RPC queue; worker threads serve
//     them (§2.2.2).
//   - DMA channels emulate one-sided RDMA: a dedicated per-connection
//     goroutine reads block memory directly through a simulated QP, never
//     touching the worker pool or taking object locks. Consistency
//     checking stays on the client, exactly as with real one-sided reads.
//
// Framing is length-prefixed: 4-byte little-endian length, then payload.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"corm/internal/rnic"
	"corm/internal/rpc"
)

// Channel handshake bytes.
const (
	chanRPC = 'R'
	chanDMA = 'D'
)

// maxFrame bounds a frame (blocks are at most 1 MiB; allow headroom).
const maxFrame = 8 << 20

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Server exposes an rpc.Server over a TCP listener.
type Server struct {
	rpc *rpc.Server
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Listen starts serving on addr (e.g. "127.0.0.1:0").
func Listen(addr string, srv *rpc.Server) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, srv), nil
}

// Serve starts serving on an existing listener — the hook the fault
// injector uses to wrap accepted connections.
func Serve(ln net.Listener, srv *rpc.Server) *Server {
	s := &Server{rpc: srv, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = true
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	var kind [1]byte
	if _, err := io.ReadFull(conn, kind[:]); err != nil {
		return
	}
	switch kind[0] {
	case chanRPC:
		s.serveRPC(conn)
	case chanDMA:
		s.serveDMA(conn)
	}
}

func (s *Server) serveRPC(conn net.Conn) {
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := rpc.UnmarshalRequest(frame)
		if err != nil {
			return
		}
		resp := s.rpc.Submit(req)
		if err := writeFrame(conn, resp.Marshal()); err != nil {
			return
		}
	}
}

// DMA request: rkey(4) vaddr(8) length(4). Response: status(1) + data.
const (
	dmaOK      = 0
	dmaBadKey  = 1
	dmaBroken  = 2
	dmaBounds  = 3
	dmaUnknown = 4
)

func (s *Server) serveDMA(conn net.Conn) {
	// Each DMA channel gets its own QP, like a real RDMA connection; a QP
	// break persists until the client reconnects the channel. The QP slot
	// is released when the channel closes (ibv_destroy_qp).
	qp := s.rpc.Store().NIC().Connect()
	defer qp.Close()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		if len(frame) != 16 {
			return
		}
		rkey := binary.LittleEndian.Uint32(frame[0:])
		vaddr := binary.LittleEndian.Uint64(frame[4:])
		length := binary.LittleEndian.Uint32(frame[12:])
		if length > maxFrame-1 {
			return
		}
		buf := make([]byte, int(length)+1)
		_, rerr := qp.Read(rkey, vaddr, buf[1:])
		switch {
		case rerr == nil:
			buf[0] = dmaOK
		case errors.Is(rerr, rnic.ErrInvalidKey):
			buf = buf[:1]
			buf[0] = dmaBadKey
		case errors.Is(rerr, rnic.ErrQPBroken):
			buf = buf[:1]
			buf[0] = dmaBroken
		case errors.Is(rerr, rnic.ErrOutOfBounds):
			buf = buf[:1]
			buf[0] = dmaBounds
		default:
			buf = buf[:1]
			buf[0] = dmaUnknown
		}
		if err := writeFrame(conn, buf); err != nil {
			return
		}
	}
}
