// Package transport carries the CoRM protocol over TCP, so the system runs
// as genuinely distributed processes. Two channel types exist, mirroring
// the hardware split the paper relies on:
//
//   - RPC channels feed the store's shared RPC queue; worker threads serve
//     them (§2.2.2).
//   - DMA channels emulate one-sided RDMA: block memory is read directly
//     through a simulated QP, never touching the worker pool or taking
//     object locks. Consistency checking stays on the client, exactly as
//     with real one-sided reads.
//
// Both channel types are multiplexed, like verbs on a real QP: every frame
// carries a sequence ID, the client keeps a pending-call map and a demux
// reader goroutine per channel, and the server dispatches frames to bounded
// concurrent handlers. N client goroutines sharing one Conn therefore get N
// overlapping requests in flight instead of lock-stepping on one.
//
// Framing is length-prefixed: a 12-byte header (4-byte little-endian length
// covering the rest of the frame, then an 8-byte sequence ID) followed by
// the body. Responses echo the request's sequence ID; bodies on one channel
// may be answered out of order.
//
// The wire path is zero-copy end to end (DESIGN.md §13): senders enqueue
// header+body vectors on a scatter-gather frame writer that hands whole
// batches to writev without a concatenating memcpy, readers land frames in
// registered buffer-ring leases (ring.go) whose payload views travel up to
// the caller, and co-located client/server pairs skip the socket entirely
// over a shared-memory ring (shm.go).
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"corm/internal/rnic"
	"corm/internal/rpc"
)

// Channel handshake bytes.
const (
	chanRPC = 'R'
	chanDMA = 'D'
)

// maxFrame bounds a frame body (blocks are at most 1 MiB; allow headroom).
const maxFrame = 8 << 20

// frameSeqBytes is the sequence-ID portion of the frame header.
const frameSeqBytes = 8

// frameHdrBytes is the full frame header: length prefix + sequence ID.
const frameHdrBytes = 4 + frameSeqBytes

// maxInflight bounds concurrent request dispatch per server connection —
// the emulated queue depth of one QP. Frames beyond it wait in the reader.
const maxInflight = 64

// Frame-buffer pools, size-classed. A single pool with a 4 KiB seed had a
// footgun: a buffer that grew past its seed (a block-sized DMA response, a
// giant batch) was returned at its grown size and pinned there forever, so
// a burst of large frames permanently inflated the pool. Buffers now
// recycle within the largest class their capacity fills, and anything
// beyond maxPooledFrame is dropped on put — oversized frames are transient
// by design.
var frameClasses = [...]int{4 << 10, 64 << 10, (1 << 20) + 4096}

// maxPooledFrame caps the capacity putFrameBuf will recycle.
const maxPooledFrame = (1 << 20) + 4096

var framePools = [len(frameClasses)]sync.Pool{}

// frameBoxPool recycles the *[]byte boxes that carry slices in and out of
// framePools: storing a raw []byte in a sync.Pool re-boxes the slice
// header on every Put — one hidden allocation per recycled frame, which
// dominates the per-op alloc budget at wire rates — while a pointer
// converts to interface{} without allocating.
var frameBoxPool = sync.Pool{New: func() any { return new([]byte) }}

// framePutClass routes a buffer capacity to the pool that should receive
// it on put: the largest class the capacity covers, or -1 to drop.
func framePutClass(c int) int {
	if c > maxPooledFrame {
		return -1
	}
	for i := len(frameClasses) - 1; i > 0; i-- {
		if c >= frameClasses[i] {
			return i
		}
	}
	return 0
}

// getFrameBuf returns a pooled buffer of length n.
func getFrameBuf(n int) []byte {
	cls := -1
	for i := range frameClasses {
		if n <= frameClasses[i] {
			cls = i
			break
		}
	}
	if cls < 0 {
		return make([]byte, n)
	}
	if p, _ := framePools[cls].Get().(*[]byte); p != nil {
		b := *p
		*p = nil
		frameBoxPool.Put(p)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n, frameClasses[cls])
}

// putFrameBuf recycles a buffer obtained from getFrameBuf. Buffers that
// grew beyond the largest class are dropped, keeping pool memory bounded
// after a large-frame burst.
func putFrameBuf(b []byte) {
	cls := framePutClass(cap(b))
	if cls < 0 {
		mFrameDrops.Inc()
		return
	}
	p := frameBoxPool.Get().(*[]byte)
	*p = b[:0]
	framePools[cls].Put(p)
}

// appendFrame appends one encoded frame (header + body) to dst.
func appendFrame(dst []byte, seq uint64, body []byte) []byte {
	var hdr [frameHdrBytes]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)+frameSeqBytes))
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// writeFrame sends one frame — 12-byte header (length+seq) and body — in a
// single write. Production paths go through frameWriter (which coalesces
// concurrent frames); this helper serves tests and hand-crafted streams.
func writeFrame(w io.Writer, seq uint64, body []byte) error {
	frame := appendFrame(getFrameBuf(0), seq, body)
	_, err := w.Write(frame)
	putFrameBuf(frame)
	return err
}

// inlineFrame is the body size at or below which a frame is copied into
// the header arena instead of referenced as its own vector. Small copies
// are cheaper than extra iovec entries, and inlined frames that land back
// to back in the arena coalesce into a single contiguous vector — so a
// batch of small frames still costs one write. Large bodies ride their own
// vector untouched: that is the zero-copy path.
const inlineFrame = 256

// arenaChunk sizes the header arena. A full chunk is simply replaced; the
// old one stays alive through the vectors that reference it until the
// batch is written and reset.
const arenaChunk = 32 << 10

// wbatch is one writev batch under construction: the iovec list, the
// header/inline arena its small vectors point into, and the pooled bodies
// the writer owns and must release once the batch is on the wire.
type wbatch struct {
	vecs   net.Buffers
	arena  []byte
	owned  [][]byte // pooled large bodies, released after the write
	frames int
	bytes  int64

	tailArena bool // vecs tail points into arena and can be extended
	tailStart int  // arena offset where that tail vector begins
}

// grow makes room for n contiguous arena bytes, starting a fresh chunk if
// the current one is full (previous vectors keep the old chunk alive).
func (b *wbatch) grow(n int) {
	if cap(b.arena)-len(b.arena) < n {
		c := arenaChunk
		if n > c {
			c = n
		}
		b.arena = make([]byte, 0, c)
		b.tailArena = false
	}
}

// appendArena copies raw bytes into the arena, extending the tail vector
// when the bytes land contiguously after it.
func (b *wbatch) appendArena(p []byte) {
	b.grow(len(p))
	start := len(b.arena)
	b.arena = append(b.arena, p...)
	if b.tailArena {
		b.vecs[len(b.vecs)-1] = b.arena[b.tailStart:len(b.arena)]
	} else {
		b.vecs = append(b.vecs, b.arena[start:len(b.arena)])
		b.tailStart = start
		b.tailArena = true
	}
	b.bytes += int64(len(p))
}

// appendFrame enqueues one frame. Bodies at or below inlineFrame are
// copied into the arena behind their header (and released immediately if
// owned); larger bodies become their own zero-copy vector, retained until
// the batch is written.
func (b *wbatch) appendFrame(seq uint64, body []byte, owned bool) {
	var hdr [frameHdrBytes]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)+frameSeqBytes))
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	if len(body) <= inlineFrame {
		b.grow(frameHdrBytes + len(body))
		b.appendArena(hdr[:])
		b.appendArena(body)
		if owned {
			putFrameBuf(body)
		}
	} else {
		b.appendArena(hdr[:])
		b.vecs = append(b.vecs, body)
		b.tailArena = false
		b.bytes += int64(len(body))
		if owned {
			b.owned = append(b.owned, body)
		}
	}
	b.frames++
}

// reset releases owned bodies and clears the batch for reuse.
func (b *wbatch) reset() {
	for i, o := range b.owned {
		putFrameBuf(o)
		b.owned[i] = nil
	}
	b.owned = b.owned[:0]
	b.vecs = b.vecs[:0]
	b.arena = b.arena[:0]
	b.frames = 0
	b.bytes = 0
	b.tailArena = false
}

// frameWriter coalesces frames from concurrent senders into batched
// scatter-gather writes — the group-commit trick that makes a deep
// pipeline pay off: under load, one writev carries many frames. Senders
// enqueue header+body vectors (no concatenating memcpy; small bodies are
// inlined into a fixed header arena, large ones ride as their own iovec)
// and the first sender whose enqueue finds no flusher running becomes the
// flusher, handing whole batches to net.Buffers.WriteTo until the queue is
// empty. Senders do not wait for their bytes to hit the wire: a write
// fault is delivered through onErr (once), which the owner uses to poison
// the channel and fail every pending call.
type frameWriter struct {
	conn  net.Conn
	onErr func(error)

	mu       sync.Mutex
	cur      *wbatch
	spare    *wbatch
	kind     byte // pending channel-kind handshake byte; folded into the first flush
	flushing bool
	err      error
}

// newFrameWriter builds a writer; a nonzero kind is the dial-time channel
// handshake byte, prepended to the first flushed batch so connection setup
// costs zero extra syscalls.
func newFrameWriter(conn net.Conn, kind byte, onErr func(error)) *frameWriter {
	return &frameWriter{conn: conn, kind: kind, onErr: onErr}
}

// send enqueues one frame and flushes if no other sender is already doing
// so. It returns an error only if the writer has already failed. If owned,
// the writer takes ownership of body (a getFrameBuf buffer) and returns it
// to the pool once the batch is written — the caller must not touch it
// after send. Unowned bodies above inlineFrame are cloned, so stack
// buffers are always safe to pass.
func (fw *frameWriter) send(seq uint64, body []byte, owned bool) error {
	if !owned && len(body) > inlineFrame {
		body = append(getFrameBuf(0), body...)
		owned = true
	}
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		if owned {
			putFrameBuf(body)
		}
		return err
	}
	if fw.cur == nil {
		fw.cur = &wbatch{}
	}
	if fw.kind != 0 {
		fw.cur.appendArena([]byte{fw.kind})
		fw.kind = 0
	}
	fw.cur.appendFrame(seq, body, owned)
	mFramesOut.Inc()
	if fw.flushing {
		fw.mu.Unlock()
		return nil
	}
	fw.flushing = true
	fw.mu.Unlock()
	fw.flush()
	return nil
}

// flush drains the queue until empty, batching whatever concurrent senders
// appended since the last write.
func (fw *frameWriter) flush() {
	for {
		// Let runnable senders append before the batch is taken: one
		// scheduler pass here routinely turns N single-frame writes into one
		// N-frame writev, and when nothing else is runnable it costs almost
		// nothing. Syscalls dominate the pipelined hot path, so batch size —
		// not latency — is what this path optimizes for.
		runtime.Gosched()
		fw.mu.Lock()
		if fw.err != nil || fw.cur == nil || fw.cur.frames == 0 {
			fw.flushing = false
			fw.mu.Unlock()
			return
		}
		b := fw.cur
		fw.cur = fw.spare
		fw.spare = nil
		fw.mu.Unlock()

		frames, bytes, nvecs := b.frames, b.bytes, len(b.vecs)
		// WriteTo consumes the vector list with writev when the conn
		// supports it (one syscall for the whole batch) and per-vector
		// writes otherwise — which is exactly where the fault injector can
		// cut a batch mid-vector. It advances the slice as it goes, so the
		// full-capacity header is saved and restored — handing it a local
		// copy instead would heap-allocate a fresh slice every flush.
		back := b.vecs
		_, err := (&b.vecs).WriteTo(fw.conn)
		b.vecs = back
		b.reset()
		if err == nil {
			mFlushes.Inc()
			mFramesPerFlush.Observe(int64(frames))
			mVecsPerFlush.Observe(int64(nvecs))
			mBytesOut.Add(bytes)
		}

		fw.mu.Lock()
		if fw.spare == nil {
			fw.spare = b
		}
		if err != nil && fw.err == nil {
			fw.err = err
			fw.flushing = false
			fw.mu.Unlock()
			fw.conn.Close()
			if fw.onErr != nil {
				fw.onErr(err)
			}
			return
		}
		fw.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// decodeFrameHeader validates a frame header, returning the body length.
func decodeFrameHeader(hdr []byte) (seq uint64, n int, err error) {
	ln := binary.LittleEndian.Uint32(hdr)
	if ln < frameSeqBytes {
		return 0, 0, fmt.Errorf("transport: frame of %d bytes lacks a sequence ID", ln)
	}
	if ln > maxFrame {
		return 0, 0, fmt.Errorf("transport: frame of %d bytes exceeds limit", ln)
	}
	return binary.LittleEndian.Uint64(hdr[4:]), int(ln) - frameSeqBytes, nil
}

// readFrame receives one frame, returning its sequence ID and body. The
// body is drawn from the frame pool; hand it back with putFrameBuf once
// decoded. Production readers use readFrameRing (registered buffers); this
// helper serves tests and the fuzz round-trip oracle.
func readFrame(r io.Reader) (uint64, []byte, error) {
	var hdr [frameHdrBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	seq, n, err := decodeFrameHeader(hdr[:])
	if err != nil {
		return 0, nil, err
	}
	body := getFrameBuf(n)
	if _, err := io.ReadFull(r, body); err != nil {
		putFrameBuf(body)
		return 0, nil, err
	}
	mFramesIn.Inc()
	return seq, body, nil
}

// readFrameRing receives one frame into a registered buffer leased from
// ring — the emulated posted receive: the body lands in recycled ring
// memory, filled in place, and the returned view aliases the lease. The
// caller releases the lease once the body is decoded or handed off. The
// header is decoded straight out of the buffered reader's window (a stack
// header array would escape through io.ReadFull and cost an allocation
// per frame).
func readFrameRing(r *bufio.Reader, ring *BufRing) (uint64, *Lease, []byte, error) {
	hdr, err := r.Peek(frameHdrBytes)
	if err != nil {
		if err == bufio.ErrBufferFull {
			err = io.ErrUnexpectedEOF
		} else if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, nil, err
	}
	seq, n, err := decodeFrameHeader(hdr)
	if err != nil {
		return 0, nil, nil, err
	}
	r.Discard(frameHdrBytes)
	lease := ring.Get(n)
	body := lease.Bytes()[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		lease.Release()
		return 0, nil, nil, err
	}
	mFramesIn.Inc()
	return seq, lease, body, nil
}

// frameSource yields inbound frames; frameSink carries outbound ones. The
// TCP stream and the shared-memory ring both implement the pair, so the
// serve loops below are transport-agnostic.
type frameSource interface {
	next() (seq uint64, lease *Lease, body []byte, err error)
}

type frameSink interface {
	send(seq uint64, body []byte, owned bool) error
}

// streamSource reads frames off a buffered TCP stream into ring leases.
type streamSource struct {
	br   *bufio.Reader
	ring *BufRing
}

func (s *streamSource) next() (uint64, *Lease, []byte, error) {
	return readFrameRing(s.br, s.ring)
}

// Server exposes an rpc.Server over a TCP listener, plus shared-memory
// rings for co-located clients (shm.go).
type Server struct {
	rpc  *rpc.Server
	ln   net.Listener
	addr string

	mu     sync.Mutex
	conns  map[net.Conn]bool
	shm    map[*shmEndpoint]bool
	closed bool
	wg     sync.WaitGroup
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and registers the
// bound address for same-process shared-memory dialing: a Conn dialed to
// it from this process skips the socket entirely.
func Listen(addr string, srv *rpc.Server) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := Serve(ln, srv)
	s.addr = ln.Addr().String()
	registerSHM(s.addr, s)
	return s, nil
}

// Serve starts serving on an existing listener — the hook the fault
// injector uses to wrap accepted connections. Unlike Listen it does not
// register the address for shared-memory dialing: a caller who supplies
// the listener owns the wire, injected faults included.
func Serve(ln net.Listener, srv *rpc.Server) *Server {
	s := &Server{rpc: srv, ln: ln, conns: make(map[net.Conn]bool), shm: make(map[*shmEndpoint]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, all connections, and all shared-memory rings.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	for ep := range s.shm {
		ep.close()
	}
	s.mu.Unlock()
	if s.addr != "" {
		unregisterSHM(s.addr, s)
	}
	s.wg.Wait()
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = true
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	var kind [1]byte
	if _, err := io.ReadFull(conn, kind[:]); err != nil {
		return
	}
	src := &streamSource{br: bufio.NewReaderSize(conn, readBufBytes), ring: newBufRing()}
	w := newFrameWriter(conn, 0, nil)
	switch kind[0] {
	case chanRPC:
		s.serveRPCLoop(src, w)
	case chanDMA:
		s.serveDMALoop(src, w)
	}
}

// readBufBytes sizes the server- and client-side buffered readers: big
// enough that a batch of pipelined frames drains in one syscall.
const readBufBytes = 64 << 10

// workerRamp spawns handler goroutines for a job channel lazily: one
// worker as soon as traffic exists, more only while a backlog is queued,
// never beyond maxInflight. A single-op workload runs on one long-lived
// worker (no per-request goroutine, no per-request closure allocation); a
// pipelined burst ramps the pool up to the inflight bound.
type workerRamp struct {
	workers atomic.Int32
	wg      sync.WaitGroup
}

// admit decides whether a new worker is needed given the current backlog,
// and reserves the slot. run must be a pre-bound worker body so spawning
// allocates nothing per request on the steady path.
func (r *workerRamp) admit(backlog int, run func()) {
	n := r.workers.Load()
	if n >= maxInflight || (n > 0 && backlog == 0) {
		return
	}
	if !r.workers.CompareAndSwap(n, n+1) {
		return // racing admit spawned one; next iteration re-checks
	}
	r.wg.Add(1)
	go run()
}

// serveRPCLoop pipelines request frames into bounded concurrent handlers:
// the source keeps yielding frames while up to maxInflight requests are
// being executed by the worker pool, and responses go out (tagged with the
// request's sequence ID, coalesced by the sink) as they complete. Request
// payloads alias the receive lease — no decode copy — which each handler
// holds until its response is marshalled. A write fault closes the wire,
// which unblocks the source.
func (s *Server) serveRPCLoop(src frameSource, w frameSink) {
	type rpcJob struct {
		seq   uint64
		lease *Lease
		req   rpc.Request
	}
	jobs := make(chan rpcJob, maxInflight)
	var ramp workerRamp
	worker := func() {
		defer ramp.wg.Done()
		for j := range jobs {
			// The response is marshalled straight into the outgoing frame
			// buffer — read payloads are staged and unpacked in place, so
			// the old build-Response-then-copy hop is gone.
			body := s.rpc.SubmitAppend(j.req, getFrameBuf(0))
			j.lease.Release()
			w.send(j.seq, body, true)
		}
	}
	defer func() {
		close(jobs)
		ramp.wg.Wait()
	}()
	for {
		seq, lease, body, err := src.next()
		if err != nil {
			return
		}
		req, err := rpc.UnmarshalRequestView(body)
		if err != nil {
			lease.Release()
			return
		}
		ramp.admit(len(jobs), worker)
		jobs <- rpcJob{seq: seq, lease: lease, req: req}
	}
}

// DMA request body: rkey(4) vaddr(8) length(4). Response: status(1) + data.
const (
	dmaOK      = 0
	dmaBadKey  = 1
	dmaBroken  = 2
	dmaBounds  = 3
	dmaUnknown = 4
)

// serveDMALoop pipelines one-sided reads the same way serveRPCLoop
// pipelines RPCs. The channel's QP is shared by the concurrent handlers —
// the NIC's own locking serializes MTT access, like hardware issuing verbs
// from one QP's send queue — and a QP break persists until the client
// reconnects the channel. The QP slot is released when the channel closes
// (ibv_destroy_qp). Read data lands directly in the response frame buffer:
// the emulated DMA engine writes into wire memory, never a staging copy.
func (s *Server) serveDMALoop(src frameSource, w frameSink) {
	qp := s.rpc.Store().NIC().Connect()
	defer qp.Close()
	type dmaJob struct {
		seq    uint64
		rkey   uint32
		vaddr  uint64
		length uint32
	}
	jobs := make(chan dmaJob, maxInflight)
	var ramp workerRamp
	worker := func() {
		defer ramp.wg.Done()
		for j := range jobs {
			buf := getFrameBuf(int(j.length) + 1)
			_, rerr := qp.Read(j.rkey, j.vaddr, buf[1:])
			switch {
			case rerr == nil:
				buf[0] = dmaOK
			case errors.Is(rerr, rnic.ErrInvalidKey):
				buf = buf[:1]
				buf[0] = dmaBadKey
			case errors.Is(rerr, rnic.ErrQPBroken):
				buf = buf[:1]
				buf[0] = dmaBroken
			case errors.Is(rerr, rnic.ErrOutOfBounds):
				buf = buf[:1]
				buf[0] = dmaBounds
			default:
				buf = buf[:1]
				buf[0] = dmaUnknown
			}
			w.send(j.seq, buf, true)
		}
	}
	defer func() {
		close(jobs)
		ramp.wg.Wait()
	}()
	for {
		seq, lease, body, err := src.next()
		if err != nil {
			return
		}
		if len(body) != 16 {
			lease.Release()
			return
		}
		rkey := binary.LittleEndian.Uint32(body[0:])
		vaddr := binary.LittleEndian.Uint64(body[4:])
		length := binary.LittleEndian.Uint32(body[12:])
		lease.Release()
		if length > maxFrame-1 {
			return
		}
		mDMAReads.Inc()
		ramp.admit(len(jobs), worker)
		jobs <- dmaJob{seq: seq, rkey: rkey, vaddr: vaddr, length: length}
	}
}
