package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"corm/internal/fault"
	"corm/internal/rpc"
)

// captureConn is a net.Conn stub that records writes. net.Buffers.WriteTo
// falls back to one Write per vector on it (it is not a *net.TCPConn), so
// the write count equals the iovec count — the same view the fault
// injector gets.
type captureConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
}

func (c *captureConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	return c.buf.Write(p)
}
func (c *captureConn) Read(p []byte) (int, error)         { return 0, io.EOF }
func (c *captureConn) Close() error                       { return nil }
func (c *captureConn) LocalAddr() net.Addr                { return nil }
func (c *captureConn) RemoteAddr() net.Addr               { return nil }
func (c *captureConn) SetDeadline(t time.Time) error      { return nil }
func (c *captureConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *captureConn) SetWriteDeadline(t time.Time) error { return nil }

func (c *captureConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// TestVectorWriterRoundTrip pushes frames of every interesting shape —
// empty, small (arena-inlined), boundary, large (own zero-copy vector),
// owned and unowned — through the scatter-gather writer and decodes the
// wire bytes back, asserting canonical framing and sequence order.
func TestVectorWriterRoundTrip(t *testing.T) {
	cc := &captureConn{}
	fw := newFrameWriter(cc, 0, nil)

	sizes := []int{0, 1, 10, inlineFrame - 1, inlineFrame, inlineFrame + 1, 4096, 70000}
	var want [][]byte
	for i, n := range sizes {
		body := make([]byte, n)
		for j := range body {
			body[j] = byte(i + j)
		}
		want = append(want, body)
		if i%2 == 0 {
			owned := append(getFrameBuf(0), body...)
			if err := fw.send(uint64(i+1), owned, true); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := fw.send(uint64(i+1), body, false); err != nil {
				t.Fatal(err)
			}
		}
	}

	r := bytes.NewReader(cc.bytes())
	for i := range want {
		seq, body, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("frame %d: seq %d", i, seq)
		}
		if !bytes.Equal(body, want[i]) {
			t.Fatalf("frame %d: body mismatch (%d vs %d bytes)", i, len(body), len(want[i]))
		}
		putFrameBuf(body)
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes on the wire", r.Len())
	}
}

// TestVectorWriterFoldsKindByte: the dial-time channel handshake byte
// travels inside the first flushed batch — one write call covers both the
// kind byte and the first frame, so connection setup costs one syscall.
func TestVectorWriterFoldsKindByte(t *testing.T) {
	cc := &captureConn{}
	fw := newFrameWriter(cc, chanRPC, nil)
	if err := fw.send(1, []byte("payload"), false); err != nil {
		t.Fatal(err)
	}
	if cc.writes != 1 {
		t.Fatalf("first flush took %d writes, want 1 (kind byte not folded)", cc.writes)
	}
	wire := cc.bytes()
	if wire[0] != chanRPC {
		t.Fatalf("first wire byte = %q, want %q", wire[0], chanRPC)
	}
	seq, body, err := readFrame(bytes.NewReader(wire[1:]))
	if err != nil || seq != 1 || string(body) != "payload" {
		t.Fatalf("frame after kind byte: seq=%d body=%q err=%v", seq, body, err)
	}
	putFrameBuf(body)
}

// TestVectorWriterCoalescesSmallFrames: consecutive small frames inline
// contiguously into the header arena, so a single-sender burst costs one
// vector (one write on a wrapped conn) per flush, not one per frame.
func TestVectorWriterCoalescesSmallFrames(t *testing.T) {
	cc := &captureConn{}
	fw := newFrameWriter(cc, 0, nil)
	if err := fw.send(1, []byte("aa"), false); err != nil {
		t.Fatal(err)
	}
	if cc.writes != 1 {
		t.Fatalf("small frame took %d writes, want 1", cc.writes)
	}
	// A large body rides as its own zero-copy vector: header vec + body vec.
	big := make([]byte, inlineFrame*4)
	if err := fw.send(2, big, false); err != nil {
		t.Fatal(err)
	}
	if cc.writes != 3 {
		t.Fatalf("large frame flush brought writes to %d, want 3 (header vec + body vec)", cc.writes)
	}
}

// TestFramePoolDropsOversized: buffers grown past the largest size class
// are dropped on put instead of pinned in the pool, so a large-frame burst
// cannot permanently inflate pool memory.
func TestFramePoolDropsOversized(t *testing.T) {
	if cls := framePutClass(maxPooledFrame); cls != len(frameClasses)-1 {
		t.Fatalf("cap==maxPooledFrame routed to class %d", cls)
	}
	if cls := framePutClass(maxPooledFrame + 1); cls != -1 {
		t.Fatalf("oversized cap routed to class %d, want drop", cls)
	}
	// Burst of oversized frames through the pool...
	for i := 0; i < 64; i++ {
		putFrameBuf(make([]byte, maxPooledFrame+4096))
	}
	// ...must never come back: every pooled buffer stays within the cap.
	for i := 0; i < 256; i++ {
		b := getFrameBuf(64)
		if cap(b) > maxPooledFrame {
			t.Fatalf("pool returned %d-byte buffer after oversize burst", cap(b))
		}
		putFrameBuf(b)
	}
}

// TestMidVectorFaultPoisonsChannel cuts the connection between a frame's
// header vector and its large zero-copy body vector — the mid-writev cut.
// The affected channel must poison and fail with ErrConnBroken, the DMA
// channel must stay healthy, and the RPC channel must heal on the next use.
func TestMidVectorFaultPoisonsChannel(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)

	// Write 1 is the arena vector (kind byte + frame header + request
	// header); write 2 is the large payload's own vector. The reset lands
	// exactly between them — a frame cut mid-vector.
	inj := fault.NewInjector(29, fault.Plan{ResetAfterWrites: 2})
	conn, err := DialOptions(ts.Addr(), Options{Dialer: inj.Dial, RedialBase: time.Millisecond, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := bytes.Repeat([]byte{0xAB}, 4096) // far above inlineFrame
	_, err = conn.Call(rpc.Request{Op: rpc.OpWrite, Payload: payload})
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("mid-vector cut error = %v, want ErrConnBroken", err)
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("no reset fired — the cut never happened")
	}

	inj.Disable()
	// Only the RPC channel was poisoned: the DMA channel still answers
	// (typed DMA error for a garbage key, not a broken connection).
	if err := conn.DirectRead(0xdead, 0x1000, make([]byte, 64)); !errors.Is(err, ErrDMABadKey) {
		t.Fatalf("DMA after RPC-channel cut = %v, want ErrDMABadKey", err)
	}
	// And the RPC channel heals by re-dialing.
	resp, err := conn.Call(rpc.Request{Op: rpc.OpInfo})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("call after mid-vector cut: %v %v", resp.Status, err)
	}
}

// TestBufRingLeaseStress exercises the lease/release lifecycle from 16
// goroutines with leases deliberately outliving their fill (handed to a
// draining goroutine), under -race in CI. Buffers must never be recycled
// while a holder remains, and the ring population must stay bounded.
func TestBufRingLeaseStress(t *testing.T) {
	ring := newBufRing()
	const goroutines = 16
	const iters = 400

	hold := make(chan *Lease, 128)
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for l := range hold {
			b := l.Bytes()
			if b[0] != b[7] {
				panic("lease mutated while held")
			}
			l.Release()
		}
	}()

	sizes := []int{64, 4 << 10, 9 << 10, 64 << 10, 128 << 10, 2 << 20}
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l := ring.Get(sizes[(g+i)%len(sizes)])
				b := l.Bytes()
				b[0] = byte(g)
				b[7] = byte(g)
				l.Retain()
				hold <- l
				l.Release()
			}
		}(g)
	}
	wg.Wait()
	close(hold)
	drain.Wait()

	for i := range ring.classes {
		c := &ring.classes[i]
		if got := c.posted.Load(); got > c.depth {
			t.Fatalf("class %d posted %d buffers, depth %d", i, got, c.depth)
		}
		if got := len(c.ch); int32(got) > c.depth {
			t.Fatalf("class %d holds %d free leases, depth %d", i, got, c.depth)
		}
	}
}

// TestLeaseOverReleasePanics: the refcount is a real invariant, not a
// suggestion.
func TestLeaseOverReleasePanics(t *testing.T) {
	l := TransientLease(make([]byte, 8))
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	l.Release()
}

// TestSHMFastPathSelected: dialing an address served by a Listen in this
// process attaches over shared memory, and the full op surface (RPC
// alloc/write/read, one-sided DirectRead) behaves identically.
func TestSHMFastPathSelected(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	conn, err := DialOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.rpc.w.(*shmWire); !ok {
		t.Fatalf("RPC wire is %T, want *shmWire", conn.rpc.w)
	}
	if _, ok := conn.dma.w.(*shmWire); !ok {
		t.Fatalf("DMA wire is %T, want *shmWire", conn.dma.w)
	}

	resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("alloc over shm: %v %v", resp.Status, err)
	}
	addr := resp.Addr
	want := bytes.Repeat([]byte{0x7E}, 64)
	wresp, err := conn.Call(rpc.Request{Op: rpc.OpWrite, Addr: addr, Payload: want})
	if err != nil || wresp.Status != rpc.StatusOK {
		t.Fatalf("write over shm: %v %v", wresp.Status, err)
	}
	rresp, err := conn.Call(rpc.Request{Op: rpc.OpRead, Addr: addr, Size: 64})
	if err != nil || rresp.Status != rpc.StatusOK || !bytes.Equal(rresp.Payload[:64], want) {
		t.Fatalf("read over shm: %v %v", rresp.Status, err)
	}
	// One-sided read straight out of the ring.
	lease, raw, err := conn.DirectReadLease(addr.RKey(), addr.VAddr(), 256)
	if err != nil {
		t.Fatalf("DirectReadLease over shm: %v", err)
	}
	if len(raw) != 256 {
		t.Fatalf("lease view %d bytes, want 256", len(raw))
	}
	lease.Release()
}

// TestSHMOptOuts: a custom Dialer or DisableSharedMemory keeps the wire on
// TCP, so fault-injection harnesses and loopback benchmarks see a socket.
func TestSHMOptOuts(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)

	opts := fastOpts()
	opts.DisableSharedMemory = true
	conn, err := DialOptions(ts.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := conn.rpc.w.(*tcpWire); !ok {
		t.Fatalf("DisableSharedMemory wire is %T, want *tcpWire", conn.rpc.w)
	}
	conn.Close()

	opts = fastOpts()
	opts.Dialer = net.Dial
	conn, err = DialOptions(ts.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := conn.rpc.w.(*tcpWire); !ok {
		t.Fatalf("custom-Dialer wire is %T, want *tcpWire", conn.rpc.w)
	}
	conn.Close()
}

// TestSHMServerRestartHeals: closing the server poisons shm channels with
// the same typed error TCP gives, and a re-Listen on the same address lets
// the existing Conn re-attach — over shared memory again.
func TestSHMServerRestartHeals(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	addr := ts.Addr()
	conn, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Call(rpc.Request{Op: rpc.OpInfo}); err != nil {
		t.Fatal(err)
	}

	ts.Close()
	if _, err := conn.Call(rpc.Request{Op: rpc.OpInfo}); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("call against closed shm server = %v, want ErrConnBroken", err)
	}

	ts2, err := Listen(addr, srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts2.Close)
	resp, err := conn.Call(rpc.Request{Op: rpc.OpInfo})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("call after shm restart: %v %v", resp.Status, err)
	}
	if _, ok := conn.rpc.w.(*shmWire); !ok {
		t.Fatalf("healed wire is %T, want *shmWire", conn.rpc.w)
	}
}

// TestSHMConcurrentStorm hammers one shm Conn from 16 goroutines — the
// multiplexing, ring backpressure, and lease lifecycle must hold up under
// -race exactly like the TCP path.
func TestSHMConcurrentStorm(t *testing.T) {
	srv := newNode(t)
	ts, err := Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	conn, err := DialOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: 64})
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("alloc: %v %v", resp.Status, err)
	}
	addr := resp.Addr

	const goroutines = 16
	const ops = 200
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 256)
			for i := 0; i < ops; i++ {
				if g%2 == 0 {
					if _, err := conn.Call(rpc.Request{Op: rpc.OpRead, Addr: addr, Size: 64}); err != nil {
						errs <- fmt.Errorf("goroutine %d call %d: %v", g, i, err)
						return
					}
				} else {
					if err := conn.DirectRead(addr.RKey(), addr.VAddr(), buf); err != nil {
						errs <- fmt.Errorf("goroutine %d read %d: %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
