package transport

import (
	"errors"
	"net"
)

// Transport errors, classified for the layers above:
//
//   - ErrConnBroken is retryable: the channel failed mid-frame (or could
//     not be re-established yet). The Conn has already marked the channel
//     broken and will re-dial it with backoff on the next use, so an
//     idempotent operation may simply be re-issued.
//   - ErrDMABroken is retryable after ReconnectDMA: the server-side QP is
//     in the error state and stays there until the DMA channel is re-dialed
//     (the reconnect the paper prices at milliseconds, §3.5).
//   - ErrDMABadKey / ErrDMABounds / ErrFrameTooLarge are fatal: retrying
//     the same operation can only fail the same way.
var (
	ErrDMABadKey     = errors.New("transport: invalid rkey")
	ErrDMABroken     = errors.New("transport: queue pair broken")
	ErrDMABounds     = errors.New("transport: access out of bounds")
	ErrConnBroken    = errors.New("transport: connection broken")
	ErrFrameTooLarge = errors.New("transport: frame exceeds limit")
	ErrConnClosed    = errors.New("transport: connection closed")
)

// IsRetryable reports whether re-issuing the operation on the same Conn can
// succeed without any other repair action. Callers must only re-issue
// idempotent operations: a broken channel cannot tell whether the server
// executed the lost request.
func IsRetryable(err error) bool {
	if errors.Is(err, ErrConnBroken) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr) && nerr.Timeout()
}

// IsTransportError reports whether the error indicates a transport- or
// fabric-level fault (as opposed to a store-level result like "not found").
// The cluster layer counts these against a node's health.
func IsTransportError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrConnBroken) || errors.Is(err, ErrDMABroken) || errors.Is(err, ErrConnClosed) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}
