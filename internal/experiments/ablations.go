package experiments

import (
	"fmt"
	"math/rand"

	"corm/internal/core"
	"corm/internal/mem"
	"corm/internal/stats"
	"corm/internal/timing"
	"corm/internal/workload"
)

// Ablations quantifies the design choices DESIGN.md calls out:
//
//  1. consistency scheme — FaRM-style cacheline versions (CoRM's choice)
//     vs a trailing checksum (§4.2.1's alternative): wire bytes fetched
//     per one-sided read and client-side check cost;
//  2. huge pages — §4.3.1: "the remapping time can be significantly
//     reduced by using huge pages: a 2 MiB page has the same remapping
//     and re-registration latency as a 4 KiB page";
//  3. pairing-attempt budget — the bounded greedy merge search: how much
//     compaction quality a larger budget buys on a spike workload.
func Ablations(opts Options) []stats.Table {
	opts = opts.withDefaults()
	return []stats.Table{
		ablConsistency(opts),
		ablHugePages(),
		ablMaxAttempts(opts),
	}
}

// ablConsistency measures a DirectRead under both validation schemes.
func ablConsistency(opts Options) stats.Table {
	t := stats.Table{
		Title: "Ablation: consistency scheme for one-sided reads",
		Headers: []string{"size", "stride (ver)", "stride (sum)", "read us (ver)",
			"read us (sum)", "check us (ver)", "check us (sum)"},
	}
	for _, size := range []int{64, 256, 2048, 8192} {
		var lat [2]float64
		for i, mode := range []core.ConsistencyMode{core.ConsistencyVersions, core.ConsistencyChecksum} {
			s, err := core.NewStore(core.Config{
				Workers: 1, BlockBytes: 1 << 20, Strategy: core.StrategyCoRM,
				DataBacked: true, Consistency: mode,
				Remap: core.RemapODPPrefetch,
				Model: timing.Default().WithNIC(timing.ConnectX5()),
				Seed:  opts.Seed,
			})
			if err != nil {
				panic(err)
			}
			r, err := s.AllocOn(0, size)
			if err != nil {
				panic(err)
			}
			client := s.ConnectClient()
			buf := make([]byte, size)
			// Warm the translation cache, then measure.
			if _, err := client.DirectRead(r.Addr, buf); err != nil {
				panic(err)
			}
			cost, err := client.DirectRead(r.Addr, buf)
			if err != nil {
				panic(err)
			}
			lat[i] = cost.Latency.Seconds() * 1e6
		}
		cpu := timing.IntelXeon()
		t.AddRow(size,
			core.StrideOf(core.ConsistencyVersions, size),
			core.StrideOf(core.ConsistencyChecksum, size),
			fmt.Sprintf("%.2f", lat[0]), fmt.Sprintf("%.2f", lat[1]),
			fmt.Sprintf("%.3f", cpu.VersionCheck(size).Seconds()*1e6),
			fmt.Sprintf("%.3f", (float64(size)*float64(cpu.ChecksumPerByte))/1e3),
		)
	}
	return t
}

// ablHugePages compares block remap+rereg cost with 4 KiB vs 2 MiB pages.
func ablHugePages() stats.Table {
	t := stats.Table{
		Title:   "Ablation: page size for block remapping (ConnectX-3, rereg)",
		Headers: []string{"block", "4KiB pages", "cost", "2MiB pages", "cost", "speedup"},
	}
	nic := timing.ConnectX3()
	for _, blockBytes := range []int{1 << 20, 4 << 20, 16 << 20} {
		small := blockBytes / mem.PageSize
		huge := (blockBytes + (2 << 20) - 1) / (2 << 20)
		cSmall := nic.MmapCost(small) + nic.Rereg(small)
		cHuge := nic.MmapCost(huge) + nic.Rereg(huge)
		t.AddRow(stats.HumanBytes(int64(blockBytes)), small, cSmall, huge, cHuge,
			fmt.Sprintf("%.0fx", float64(cSmall)/float64(cHuge)))
	}
	return t
}

// ablMaxAttempts sweeps the merge search budget on a spike workload.
func ablMaxAttempts(opts Options) stats.Table {
	t := stats.Table{
		Title:   "Ablation: merge-candidate attempt budget (spike 2 KiB, 60% freed)",
		Headers: []string{"max attempts", "active MiB", "blocks freed"},
	}
	for _, attempts := range []int{1, 2, 4, 8, 16, 32} {
		s, err := core.NewStore(core.Config{
			Workers: 8, BlockBytes: 1 << 20, Strategy: core.StrategyCoRM, IDBits: 16,
			DataBacked: false, Remap: core.RemapRereg, Model: timing.Default(),
			Seed: opts.Seed,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(opts.Seed))
		tr := workload.NewSpikeTrace(opts.Seed, 2048, int64(opts.pick(100_000, 1_000_000)), 0.6)
		var addrs []core.Addr
		for {
			ev, ok := tr.Next()
			if !ok {
				break
			}
			if ev.Op == workload.TAlloc {
				r, err := s.AllocOn(rng.Intn(8), ev.Size)
				if err != nil {
					panic(err)
				}
				addrs = append(addrs, r.Addr)
			} else if err := s.Free(&addrs[ev.Index]); err != nil {
				panic(err)
			}
		}
		freed := 0
		class := s.Allocator().Config().ClassFor(2048)
		for round := 0; round < 16; round++ {
			r := s.CompactClass(core.CompactOptions{
				Class: class, Leader: 0, MaxOccupancy: core.Occ(0.95), MaxAttempts: attempts,
			})
			freed += r.BlocksFreed
			if r.BlocksFreed == 0 {
				break
			}
		}
		t.AddRow(attempts, fmt.Sprintf("%.1f", float64(s.ActiveBytes())/float64(1<<20)), freed)
	}
	return t
}
