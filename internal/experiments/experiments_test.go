package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"corm/internal/core"
	"corm/internal/timing"
	"corm/internal/workload"
)

func TestTable1Content(t *testing.T) {
	out := Table1()[0].String()
	for _, want := range []string{"Mesh", "FaRM", "CoRM", "vaddr reuse"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	out := Table3()[0].String()
	// Mesh 0 bits, CoRM-0 28, CoRM-8 36, CoRM-12 40, CoRM-16 44.
	for _, want := range []string{"Mesh", "28", "36", "40", "44"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestFig7ProbabilityOrdering(t *testing.T) {
	tables := Fig7()
	if len(tables) != 1 || len(tables[0].Rows) != 20 {
		t.Fatalf("fig7 shape: %d tables", len(tables))
	}
	// Columns: occupancy, objsize, Mesh, CoRM-8, CoRM-12, CoRM-16.
	for _, row := range tables[0].Rows {
		mesh, _ := strconv.ParseFloat(row[2], 64)
		c16, _ := strconv.ParseFloat(row[5], 64)
		if c16 < mesh-1e-9 {
			t.Errorf("CoRM-16 below Mesh in row %v", row)
		}
	}
}

func TestFig8StrategyProperties(t *testing.T) {
	for _, remap := range []core.RemapStrategy{core.RemapRereg, core.RemapODP, core.RemapODPPrefetch} {
		mmapT, fixT, breakW, first, second := remapCosts(remap)
		if mmapT <= 0 {
			t.Errorf("%v: no mmap cost", remap)
		}
		if second >= first && remap == core.RemapODP {
			t.Errorf("%v: first read should pay the ODP fault (%v vs %v)", remap, first, second)
		}
		switch remap {
		case core.RemapRereg:
			if !breakW {
				t.Error("rereg must open a QP-break window")
			}
			if fixT < 8*time.Microsecond {
				t.Errorf("rereg fix cost %v too low", fixT)
			}
		case core.RemapODP:
			if breakW || fixT != 0 {
				t.Errorf("ODP should have no explicit fix cost (%v, %v)", fixT, breakW)
			}
			if first < 60*time.Microsecond {
				t.Errorf("ODP first read %v should include the ~63us fault", first)
			}
		case core.RemapODPPrefetch:
			if breakW {
				t.Error("prefetch must not break QPs")
			}
			if first > 10*time.Microsecond {
				t.Errorf("prefetched first read %v should not fault", first)
			}
		}
	}
}

func TestYCSBBenchRuns(t *testing.T) {
	h, p := NewYCSBBench(5000, 2, workload.DistZipf, 0.99, workload.Mix95, true, 1)
	rate, conflicts := h.Run(p)
	if rate <= 0 {
		t.Fatal("zero throughput")
	}
	if conflicts < 0 {
		t.Fatal("negative conflicts")
	}
	// RPC reads are slower than one-sided reads (the paper's core claim).
	h2, p2 := NewYCSBBench(5000, 2, workload.DistZipf, 0.99, workload.Mix95, false, 1)
	rpcRate, _ := h2.Run(p2)
	if rpcRate >= rate {
		t.Fatalf("RPC rate %.0f >= one-sided rate %.0f", rpcRate, rate)
	}
}

func TestFragmentedPopulationSlower(t *testing.T) {
	h, p := NewYCSBBench(30_000, 4, workload.DistZipf, 0.8, workload.Mix100, true, 1)
	normal, _ := h.Run(p)
	h2, p2 := NewYCSBBenchFrag(30_000, 4, workload.DistZipf, 0.8, workload.Mix100, true, 1)
	frag, _ := h2.Run(p2)
	if frag > normal*1.02 {
		t.Fatalf("fragmented population faster: %.0f vs %.0f", frag, normal)
	}
}

func TestRunTraceBenchStrategies(t *testing.T) {
	mk := func() workload.Trace { return workload.NewSpikeTrace(1, 2048, 30_000, 0.8) }
	none := RunTraceBench(mk(), core.StrategyNone, 0, 4, 1)
	corm16 := RunTraceBench(mk(), core.StrategyCoRM, 16, 4, 1)
	mesh := RunTraceBench(mk(), core.StrategyMesh, 0, 4, 1)
	if corm16 >= none {
		t.Fatalf("CoRM-16 (%d) did not beat no-compaction (%d)", corm16, none)
	}
	if corm16 > mesh {
		t.Fatalf("CoRM-16 (%d) worse than Mesh (%d) at 2 KiB objects", corm16, mesh)
	}
}

func TestTimelineBench(t *testing.T) {
	freed := TimelineBench(20_000, 1)
	if freed <= 0 {
		t.Fatal("timeline compaction freed nothing")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "table3", "fig17", "fig18", "fig19", "ablations"}
	if len(All) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(All), len(want))
	}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("registry missing %s", name)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("lookup of unknown name succeeded")
	}
}

func TestFig15ShapesMatchPaper(t *testing.T) {
	opts := Options{Seed: 1}
	// Collection: Intel slower than AMD at 2 threads, both growing.
	intel2 := collectTime(opts, 2, intelCPU())
	amd2 := collectTime(opts, 2, amdCPU())
	if intel2 < 3*amd2 {
		t.Errorf("Intel@2 = %v should be several times AMD@2 = %v", intel2, amd2)
	}
	intel16 := collectTime(opts, 16, intelCPU())
	if intel16 <= intel2 {
		t.Error("collection time must grow with threads")
	}
	// Compaction: CX-3 rereg dominates (~100us/block); ODP cheapest.
	cx3 := compactTime(opts, 2, 4096, cx3NIC(), core.RemapRereg)
	cx5 := compactTime(opts, 2, 4096, cx5NIC(), core.RemapRereg)
	odp := compactTime(opts, 2, 4096, cx5NIC(), core.RemapODPPrefetch)
	if !(odp < cx5 && cx5 < cx3) {
		t.Errorf("ordering violated: odp=%v cx5=%v cx3=%v", odp, cx5, cx3)
	}
	if cx3 < 80*time.Microsecond || cx3 > 150*time.Microsecond {
		t.Errorf("CX-3 one-block compaction = %v, want ~100us", cx3)
	}
}

// tiny aliases to keep the test above readable.
func intelCPU() timing.CPU { return timing.IntelXeon() }
func amdCPU() timing.CPU   { return timing.AMDEpyc() }
func cx3NIC() timing.NIC   { return timing.ConnectX3() }
func cx5NIC() timing.NIC   { return timing.ConnectX5() }
