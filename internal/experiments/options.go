package experiments

// Options scales the experiments. The default (Full=false) runs reduced
// object counts so the whole suite finishes in minutes on a laptop; Full
// uses the paper's sizes (8 M / 16 M objects, one-minute measurement
// windows) where feasible.
type Options struct {
	Full bool
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// pick selects between the reduced and paper-scale parameter.
func (o Options) pick(reduced, full int) int {
	if o.Full {
		return full
	}
	return reduced
}
