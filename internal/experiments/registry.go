package experiments

import "corm/internal/stats"

// Experiment is one regenerable table or figure from the paper.
type Experiment struct {
	Name  string
	Desc  string
	Run   func(Options) []stats.Table
	Heavy bool // minutes-long at reduced scale
}

// All lists every experiment in paper order.
var All = []Experiment{
	{"table1", "system comparison matrix (Mesh/FaRM/CoRM)", func(Options) []stats.Table { return Table1() }, false},
	{"fig7", "analytical compaction probability", func(Options) []stats.Table { return Fig7() }, false},
	{"fig8", "RDMA remapping strategy latencies", func(Options) []stats.Table { return Fig8() }, false},
	{"fig9", "operation latency, direct pointers", Fig9, false},
	{"fig10", "operation latency, indirect pointers + ReleasePtr", Fig10, false},
	{"fig11", "read throughput: remote (simulated) and local (wall clock)", Fig11, false},
	{"fig12", "YCSB aggregate throughput vs clients", Fig12, true},
	{"fig13", "DirectRead failure rate vs skew", Fig13, true},
	{"fig14", "DirectRead throughput vs fragmentation", Fig14, true},
	{"fig15", "compaction stage latencies", Fig15, false},
	{"fig16", "throughput timeline around compaction", Fig16, true},
	{"table3", "per-object metadata overhead", func(Options) []stats.Table { return Table3() }, false},
	{"fig17", "active memory, synthetic spike traces", Fig17, true},
	{"fig18", "active memory, Redis traces, vanilla CoRM", Fig18, true},
	{"fig19", "active memory, Redis traces, hybrid CoRM", Fig19, true},
	{"ablations", "design-choice sweeps (consistency scheme, huge pages, merge budget)", Ablations, false},
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
