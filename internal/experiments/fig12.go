package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"corm/internal/core"
	"corm/internal/sim"
	"corm/internal/stats"
	"corm/internal/timing"
	"corm/internal/workload"
)

// ycsbHarness drives the YCSB experiments (Figs 12-14): a CoRM node under
// closed-loop clients issuing reads (RPC or one-sided) and RPC writes over
// a keyed object population.
type ycsbHarness struct {
	store *core.Store
	addrs []core.Addr
	node  *DESNode
	eng   *sim.Engine

	// writeLocked marks keys whose RPC write is in flight: a one-sided
	// read overlapping the window observes a version conflict (§4.2.3).
	writeLocked []bool

	ops       int64
	conflicts int64
}

// ycsbParams configures one run.
type ycsbParams struct {
	objects  int
	clients  int
	dist     workload.Dist
	theta    float64
	mix      workload.Mix
	oneSided bool // reads via DirectRead (vs RPC)
	fragment bool // build the high-fragmentation population (Fig 14)
	seed     int64
	measure  time.Duration
	warmup   time.Duration
}

// newYCSBHarness loads the population: objects of 32 bytes (§4.2.2). With
// fragment, twice as many are loaded and half freed at random, doubling
// the page spread of the survivors (§4.2.4).
func newYCSBHarness(p ycsbParams) *ycsbHarness {
	nic := timing.ConnectX5()
	// Reduced-scale runs shrink the population; shrink the NIC's MTT
	// cache proportionally so the hit-rate behaviour of the paper-scale
	// experiment (8 M objects vs 4096 cached translations) is preserved.
	if p.objects < 8_000_000 {
		nic.MTTCacheEntries = nic.MTTCacheEntries * p.objects / 8_000_000
		if nic.MTTCacheEntries < 64 {
			nic.MTTCacheEntries = 64
		}
	}
	s, err := core.NewStore(core.Config{
		Workers:    8,
		BlockBytes: 4096,
		Strategy:   core.StrategyCoRM,
		DataBacked: true,
		Remap:      core.RemapODPPrefetch,
		Model:      timing.Default().WithNIC(nic),
		Seed:       p.seed,
	})
	if err != nil {
		panic(err)
	}
	load := p.objects
	if p.fragment {
		load *= 2
	}
	all := make([]core.Addr, 0, load)
	for i := 0; i < load; i++ {
		r, err := s.AllocOn(i%s.Workers(), 32)
		if err != nil {
			panic(err)
		}
		all = append(all, r.Addr)
	}
	addrs := all
	if p.fragment {
		// Free a random half, but keep the survivors in allocation order:
		// the key-rank -> memory-order correlation must match the no-frag
		// population so only page *density* differs.
		rng := rand.New(rand.NewSource(p.seed + 7))
		perm := rng.Perm(load)
		freed := make([]bool, load)
		for _, idx := range perm[:load-p.objects] {
			freed[idx] = true
		}
		addrs = make([]core.Addr, 0, p.objects)
		for i := range all {
			if freed[i] {
				if err := s.Free(&all[i]); err != nil {
					panic(err)
				}
				continue
			}
			addrs = append(addrs, all[i])
		}
	}
	eng := sim.NewEngine()
	return &ycsbHarness{
		store:       s,
		addrs:       addrs,
		node:        NewDESNode(eng, s),
		eng:         eng,
		writeLocked: make([]bool, len(addrs)),
	}
}

// run executes the workload and returns (throughput req/s, conflicts/s).
func (h *ycsbHarness) run(p ycsbParams) (float64, float64) {
	start := sim.Time(p.warmup)
	end := sim.Time(p.warmup + p.measure)
	for c := 0; c < p.clients; c++ {
		gen := workload.NewYCSBUnscrambled(p.seed+int64(c)*101, uint64(len(h.addrs)), p.dist, p.theta, p.mix)
		h.eng.Go(func(proc *sim.Proc) {
			client := h.store.ConnectClient()
			buf := make([]byte, 32)
			for {
				if proc.Now() >= end {
					return
				}
				op, key := gen.Next()
				switch {
				case op == workload.OpWrite:
					h.write(proc, int(key), buf)
				case p.oneSided:
					h.directRead(proc, int(key), client, buf, start)
				default:
					h.rpcRead(proc, int(key), buf)
				}
				proc.Wait(h.node.Model.CPU.ClientLoop)
				if proc.Now() >= start && proc.Now() <= end {
					h.ops++
				}
			}
		})
	}
	h.eng.Run(end)
	// Resume parked clients so their goroutines exit; otherwise each run's
	// whole population stays pinned (§sim.Drain).
	h.eng.Drain()
	secs := p.measure.Seconds()
	return float64(h.ops) / secs, float64(h.conflicts) / secs
}

// writeWindow is how long an object stays write-locked while the worker
// updates its cachelines (§3.2.3): the span a concurrent one-sided read
// can observe a conflict.
const writeWindow = 300 * time.Nanosecond

// write performs an RPC write; the object is locked only for the actual
// cacheline-update window inside the worker's service time, so
// overlapping one-sided reads genuinely conflict at a realistic rate.
func (h *ycsbHarness) write(proc *sim.Proc, key int, buf []byte) {
	addr := h.addrs[key]
	n := h.node
	rtt := n.Model.NIC.RPCRTT(32)
	proc.Wait(rtt / 2)
	n.Engine.Use(proc, n.Model.NIC.EngineTime(32))
	n.Workers.Acquire(proc)
	proc.Wait(n.Model.CPU.WorkerHandle - writeWindow)
	h.writeLocked[key] = true
	proc.Wait(writeWindow)
	if err := h.store.Write(&addr, buf[:32]); err != nil {
		panic(err)
	}
	h.writeLocked[key] = false
	n.Eng.Schedule(n.Model.CPU.WorkerPost, n.Workers.Release)
	proc.Wait(rtt / 2)
}

// rpcRead is the RPC read path.
func (h *ycsbHarness) rpcRead(proc *sim.Proc, key int, buf []byte) {
	addr := h.addrs[key]
	if _, err := h.node.RPCReadObj(proc, &addr, buf); err != nil {
		panic(err)
	}
}

// directRead is the one-sided path with conflict detection and backoff
// retry (§3.2.3). Conflicts during the measurement window are counted.
func (h *ycsbHarness) directRead(proc *sim.Proc, key int, client *core.ClientQP, buf []byte, measureFrom sim.Time) {
	for {
		_, err := h.node.DirectRead(proc, client, h.addrs[key], buf)
		conflict := errors.Is(err, core.ErrInconsistent) || h.writeLocked[key]
		if err != nil && !errors.Is(err, core.ErrInconsistent) {
			panic(err)
		}
		if !conflict {
			return
		}
		if proc.Now() >= measureFrom {
			h.conflicts++
		}
		proc.Wait(2 * time.Microsecond) // backoff, then retry
	}
}

// Fig12 regenerates Figure 12: aggregate YCSB throughput for uniform and
// Zipf(0.99) key distributions, read:write mixes 100:0 / 95:5 / 50:50,
// RPC vs one-sided reads, as the client count grows.
func Fig12(opts Options) []stats.Table {
	opts = opts.withDefaults()
	objects := opts.pick(400_000, 8_000_000)
	measure := time.Duration(opts.pick(int(100*time.Millisecond), int(time.Second)))
	var tables []stats.Table
	for _, dist := range []workload.Dist{workload.DistUniform, workload.DistZipf} {
		t := stats.Table{
			Title: fmt.Sprintf("Figure 12 (%s): YCSB aggregate throughput (Kreq/s), %d objects x 32 B",
				dist, objects),
			Headers: []string{"clients", "100:0 RPC", "95:5 RPC", "50:50 RPC",
				"100:0 RDMA", "95:5 RDMA", "50:50 RDMA"},
		}
		for _, clients := range []int{1, 2, 4, 8, 16, 32} {
			row := []interface{}{clients}
			for _, oneSided := range []bool{false, true} {
				for _, mix := range []workload.Mix{workload.Mix100, workload.Mix95, workload.Mix50} {
					p := ycsbParams{
						objects: objects, clients: clients, dist: dist, theta: 0.99,
						mix: mix, oneSided: oneSided, seed: opts.Seed,
						measure: measure, warmup: measure / 4,
					}
					rate, _ := newYCSBHarness(p).run(p)
					row = append(row, rate/1e3)
				}
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig13 regenerates Figure 13: the DirectRead failure (conflict) rate for
// the 50:50 mix while sweeping Zipf skewness and client count.
func Fig13(opts Options) []stats.Table {
	opts = opts.withDefaults()
	objects := opts.pick(400_000, 8_000_000)
	measure := time.Duration(opts.pick(int(100*time.Millisecond), int(time.Second)))
	t := stats.Table{
		Title:   "Figure 13: DirectRead failure rate (conflicts/s), YCSB 50:50",
		Headers: []string{"zipf theta", "8 clients", "16 clients", "32 clients"},
	}
	for _, theta := range []float64{0.6, 0.7, 0.8, 0.9, 0.99} {
		row := []interface{}{theta}
		for _, clients := range []int{8, 16, 32} {
			p := ycsbParams{
				objects: objects, clients: clients, dist: workload.DistZipf, theta: theta,
				mix: workload.Mix50, oneSided: true, seed: opts.Seed,
				measure: measure, warmup: measure / 4,
			}
			_, conflicts := newYCSBHarness(p).run(p)
			row = append(row, conflicts)
		}
		t.AddRow(row...)
	}
	return []stats.Table{t}
}

// Fig14 regenerates Figure 14: DirectRead throughput (100:0) with 8
// clients over compact vs fragmented populations, sweeping Zipf skewness.
func Fig14(opts Options) []stats.Table {
	opts = opts.withDefaults()
	objects := opts.pick(400_000, 8_000_000)
	measure := time.Duration(opts.pick(int(100*time.Millisecond), int(time.Second)))
	t := stats.Table{
		Title:   "Figure 14: DirectRead throughput (Kreq/s), 8 clients, 100:0",
		Headers: []string{"zipf theta", "no fragmentation", "high fragmentation", "ratio"},
	}
	for _, theta := range []float64{0.6, 0.7, 0.8, 0.9, 0.99} {
		var rates [2]float64
		for i, frag := range []bool{false, true} {
			p := ycsbParams{
				objects: objects, clients: 8, dist: workload.DistZipf, theta: theta,
				mix: workload.Mix100, oneSided: true, fragment: frag, seed: opts.Seed,
				measure: measure, warmup: measure / 4,
			}
			rate, _ := newYCSBHarness(p).run(p)
			rates[i] = rate
		}
		t.AddRow(theta, rates[0]/1e3, rates[1]/1e3, rates[0]/rates[1])
	}
	return []stats.Table{t}
}
