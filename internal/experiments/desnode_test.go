package experiments

import (
	"testing"
	"time"

	"corm/internal/core"
	"corm/internal/sim"
	"corm/internal/timing"
)

func desStore(t *testing.T) *core.Store {
	t.Helper()
	s, err := core.NewStore(core.Config{
		Workers: 8, BlockBytes: 4096, Strategy: core.StrategyCoRM,
		DataBacked: true, Remap: core.RemapODPPrefetch,
		Model: timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRPCPlateauMatchesWorkerCapacity validates the queueing behaviour the
// Fig 12 calibration rests on: many closed-loop clients saturate the RPC
// path at workers / (handle+post) requests per second.
func TestRPCPlateauMatchesWorkerCapacity(t *testing.T) {
	s := desStore(t)
	eng := sim.NewEngine()
	node := NewDESNode(eng, s)
	horizon := sim.Time(50 * time.Millisecond)
	var ops int64
	for c := 0; c < 16; c++ {
		eng.Go(func(p *sim.Proc) {
			for {
				if p.Now() >= horizon {
					return
				}
				if _, err := node.RPC(p, 32, nil); err != nil {
					t.Error(err)
					return
				}
				if p.Now() <= horizon {
					ops++
				}
			}
		})
	}
	eng.Run(horizon)
	eng.Drain()

	cpu := node.Model.CPU
	capacity := float64(s.Workers()) / (cpu.WorkerHandle + cpu.WorkerPost).Seconds()
	rate := float64(ops) / sim.Time(horizon).Seconds()
	if rate < capacity*0.9 || rate > capacity*1.1 {
		t.Fatalf("plateau %.0f, want ~%.0f (worker capacity)", rate, capacity)
	}
}

// TestSingleClientRPCLatencyUnqueued checks the other end of the split:
// one client sees base RTT + handle, not the post-processing share.
func TestSingleClientRPCLatencyUnqueued(t *testing.T) {
	s := desStore(t)
	eng := sim.NewEngine()
	node := NewDESNode(eng, s)
	var lat time.Duration
	eng.Go(func(p *sim.Proc) {
		lat, _ = node.RPC(p, 32, nil)
	})
	eng.RunAll()
	want := node.Model.NIC.RPCRTT(32) + node.Model.NIC.EngineTime(32) + node.Model.CPU.WorkerHandle
	if lat != want {
		t.Fatalf("latency %v, want %v", lat, want)
	}
}

// TestOneSidedEngineBottleneck: aggregate one-sided throughput is bounded
// by the NIC inbound engine, not by client count.
func TestOneSidedEngineBottleneck(t *testing.T) {
	s := desStore(t)
	r, err := s.AllocOn(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	node := NewDESNode(eng, s)
	horizon := sim.Time(20 * time.Millisecond)
	var ops int64
	for c := 0; c < 16; c++ {
		eng.Go(func(p *sim.Proc) {
			client := s.ConnectClient()
			buf := make([]byte, 32)
			for {
				if p.Now() >= horizon {
					return
				}
				if _, err := node.DirectRead(p, client, r.Addr, buf); err != nil {
					t.Error(err)
					return
				}
				if p.Now() <= horizon {
					ops++
				}
			}
		})
	}
	eng.Run(horizon)
	eng.Drain()
	rate := float64(ops) / sim.Time(horizon).Seconds()
	stride := core.DataStride(32)
	svc := node.Model.NIC.EngineTime(stride) // hot page: no MTT misses
	capacity := 1 / svc.Seconds()
	if rate < capacity*0.9 || rate > capacity*1.1 {
		t.Fatalf("one-sided plateau %.0f, want ~%.0f (engine capacity)", rate, capacity)
	}
	if node.Engine.Utilization() < 0.9 {
		t.Fatalf("engine utilization %.2f, want ~1", node.Engine.Utilization())
	}
}

// TestCorrectionBlocksOnBusyLeader: messaging-mode corrections queue on
// the leader's availability — the Fig 16 unavailability mechanism.
func TestCorrectionBlocksOnBusyLeader(t *testing.T) {
	s := desStore(t)
	eng := sim.NewEngine()
	node := NewDESNode(eng, s)

	// Occupy the leader for 1ms of virtual time.
	eng.Go(func(p *sim.Proc) {
		node.Leader.Acquire(p)
		p.Wait(time.Millisecond)
		node.Leader.Release()
	})
	var waited time.Duration
	eng.Go(func(p *sim.Proc) {
		p.Wait(10 * time.Microsecond) // arrive while the leader is busy
		start := p.Now()
		node.correctionExtra(p, 32)
		waited = time.Duration(p.Now() - start)
	})
	eng.RunAll()
	if waited < 900*time.Microsecond {
		t.Fatalf("correction waited only %v for the busy leader", waited)
	}
}

// TestCorrectionScanModeDoesNotBlock: scan-mode corrections cost CPU but
// never wait for the leader.
func TestCorrectionScanModeDoesNotBlock(t *testing.T) {
	s, err := core.NewStore(core.Config{
		Workers: 8, BlockBytes: 4096, Strategy: core.StrategyCoRM,
		Correction: core.CorrectScan,
		DataBacked: true, Remap: core.RemapODPPrefetch,
		Model: timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	node := NewDESNode(eng, s)
	eng.Go(func(p *sim.Proc) {
		node.Leader.Acquire(p)
		p.Wait(time.Millisecond)
		node.Leader.Release()
	})
	var extra time.Duration
	eng.Go(func(p *sim.Proc) {
		p.Wait(10 * time.Microsecond)
		start := p.Now()
		extra = node.correctionExtra(p, 32)
		if waited := time.Duration(p.Now() - start); waited > time.Microsecond {
			t.Errorf("scan correction waited %v on the leader", waited)
		}
	})
	eng.RunAll()
	if extra <= 0 {
		t.Fatal("scan correction should cost scan time")
	}
}
