package experiments

import (
	"fmt"
	"time"

	"corm/internal/core"
	"corm/internal/stats"
	"corm/internal/timing"
)

// Fig15 regenerates Figure 15: the latency of the two compaction stages.
//
//   - left: block-collection time vs thread count, Intel vs AMD;
//   - center: compaction time vs number of 4 KiB blocks, for ConnectX-3,
//     ConnectX-5 (both ibv_rereg_mr) and ConnectX-5 + ODP;
//   - right: compaction time of a single merge vs block size (pages).
//
// As in the paper, each run allocates one 32-byte object per thread and
// triggers compaction, so the number of candidate blocks equals the
// thread count.
func Fig15(opts Options) []stats.Table {
	opts = opts.withDefaults()

	left := stats.Table{
		Title:   "Figure 15 (left): block collection time (us)",
		Headers: []string{"threads", "Intel Xeon", "AMD EPYC"},
	}
	for _, threads := range []int{2, 4, 8, 16} {
		intel := collectTime(opts, threads, timing.IntelXeon())
		amd := collectTime(opts, threads, timing.AMDEpyc())
		left.AddRow(threads, intel, amd)
	}

	center := stats.Table{
		Title:   "Figure 15 (center): compaction time of 4 KiB blocks (us)",
		Headers: []string{"blocks", "ConnectX-3", "ConnectX-5", "ConnectX-5 + ODP"},
	}
	for _, blocks := range []int{2, 4, 8, 16} {
		cx3 := compactTime(opts, blocks, 4096, timing.ConnectX3(), core.RemapRereg)
		cx5 := compactTime(opts, blocks, 4096, timing.ConnectX5(), core.RemapRereg)
		odp := compactTime(opts, blocks, 4096, timing.ConnectX5(), core.RemapODPPrefetch)
		center.AddRow(blocks, cx3, cx5, odp)
	}

	right := stats.Table{
		Title:   "Figure 15 (right): compaction time of one block vs size (us)",
		Headers: []string{"pages", "ConnectX-3", "ConnectX-5", "ConnectX-5 + ODP"},
	}
	for _, pages := range []int{1, 4, 16, 64, 256} {
		blockBytes := pages * 4096
		cx3 := compactTime(opts, 2, blockBytes, timing.ConnectX3(), core.RemapRereg)
		cx5 := compactTime(opts, 2, blockBytes, timing.ConnectX5(), core.RemapRereg)
		odp := compactTime(opts, 2, blockBytes, timing.ConnectX5(), core.RemapODPPrefetch)
		right.AddRow(pages, cx3, cx5, odp)
	}
	return []stats.Table{left, center, right}
}

// collectTime measures the PhaseCollect duration with the given CPU.
func collectTime(opts Options, threads int, cpu timing.CPU) time.Duration {
	s := fig15Store(opts, threads, 4096, timing.ConnectX5(), core.RemapODPPrefetch, cpu)
	for th := 0; th < threads; th++ {
		if _, err := s.AllocOn(th, 32); err != nil {
			panic(err)
		}
	}
	var collect time.Duration
	s.CompactClass(core.CompactOptions{
		Class:  s.Allocator().Config().ClassFor(32),
		Leader: 0,
		OnPhase: func(p core.Phase, d time.Duration) {
			if p == core.PhaseCollect {
				collect += d
			}
		},
	})
	return collect
}

// compactTime measures the block-compaction stage (everything after
// collection) when merging `blocks` candidate blocks of the given size.
func compactTime(opts Options, blocks, blockBytes int, nic timing.NIC, remap core.RemapStrategy) time.Duration {
	s := fig15Store(opts, blocks, blockBytes, nic, remap, timing.IntelXeon())
	for th := 0; th < blocks; th++ {
		if _, err := s.AllocOn(th, 32); err != nil {
			panic(err)
		}
	}
	var total time.Duration
	r := s.CompactClass(core.CompactOptions{
		Class:  s.Allocator().Config().ClassFor(32),
		Leader: 0,
		OnPhase: func(p core.Phase, d time.Duration) {
			if p != core.PhaseCollect {
				total += d
			}
		},
	})
	if r.BlocksFreed != blocks-1 {
		panic(fmt.Sprintf("fig15: freed %d of %d blocks", r.BlocksFreed, blocks-1))
	}
	return total
}

func fig15Store(opts Options, threads, blockBytes int, nic timing.NIC, remap core.RemapStrategy, cpu timing.CPU) *core.Store {
	s, err := core.NewStore(core.Config{
		Workers:    threads,
		BlockBytes: blockBytes,
		Strategy:   core.StrategyCoRM,
		DataBacked: true,
		Remap:      remap,
		Model:      timing.Model{NIC: nic, CPU: cpu},
		Seed:       opts.Seed,
	})
	if err != nil {
		panic(err)
	}
	return s
}
