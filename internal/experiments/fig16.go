package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"corm/internal/core"
	"corm/internal/sim"
	"corm/internal/stats"
	"corm/internal/timing"
)

// Fig16 regenerates Figure 16: the read throughput observed by an RPC
// client and an RDMA (one-sided) client before, during, and after a large
// compaction, under the two pointer-correction configurations:
//
//   - thread messaging: RPC-side corrections must be answered by the
//     owning thread — the compaction leader — so RPC reads of moved
//     objects stall until compaction ends (the paper's 700 ms
//     unavailability); the RDMA client self-corrects with ScanRead and
//     never stalls;
//   - block scan: the serving worker scans the block itself, so the RPC
//     client only sees a dip; the RDMA client corrects through RPC reads,
//     which is slower than ScanRead.
func Fig16(opts Options) []stats.Table {
	opts = opts.withDefaults()
	var tables []stats.Table
	for _, mode := range []core.CorrectionMode{core.CorrectMessaging, core.CorrectScan} {
		tables = append(tables, fig16Run(opts, mode))
	}
	return tables
}

func fig16Run(opts Options, mode core.CorrectionMode) stats.Table {
	objects := opts.pick(400_000, 8_000_000)
	total := time.Duration(opts.pick(int(1500*time.Millisecond), int(12*time.Second)))
	table, _ := fig16Sim(opts, mode, objects, total)
	return table
}

// fig16RunScaled is the benchmark entry: tiny population, short window.
func fig16RunScaled(opts Options, mode core.CorrectionMode, objects int, total time.Duration) int {
	_, freed := fig16Sim(opts, mode, objects, total)
	return freed
}

func fig16Sim(opts Options, mode core.CorrectionMode, objects int, total time.Duration) (stats.Table, int) {
	s, err := core.NewStore(core.Config{
		Workers:    8,
		BlockBytes: 4096,
		Strategy:   core.StrategyCoRM,
		Correction: mode,
		DataBacked: true,
		Remap:      core.RemapODPPrefetch,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
		Seed:       opts.Seed,
	})
	if err != nil {
		panic(err)
	}
	// Populate and randomly deallocate 75% (§4.3.2).
	all := make([]core.Addr, 0, objects)
	for i := 0; i < objects; i++ {
		r, err := s.AllocOn(i%s.Workers(), 32)
		if err != nil {
			panic(err)
		}
		all = append(all, r.Addr)
	}
	rng := rand.New(rand.NewSource(opts.Seed + 3))
	var live []core.Addr
	for i, idx := range rng.Perm(objects) {
		if i < objects*3/4 {
			if err := s.Free(&all[idx]); err != nil {
				panic(err)
			}
		} else {
			live = append(live, all[idx])
		}
	}

	eng := sim.NewEngine()
	node := NewDESNode(eng, s)

	// Timeline: compaction fires at 1/3 of the run.
	compactAt := total / 3
	bucket := total / 30
	end := sim.Time(total)

	rpcSeries := stats.NewSeries(bucket)
	rdmaSeries := stats.NewSeries(bucket)
	var compactDur time.Duration
	var report core.CompactReport

	// RPC client: sequential reads over all live objects, repeatedly.
	rpcAddrs := append([]core.Addr(nil), live...)
	eng.Go(func(p *sim.Proc) {
		buf := make([]byte, 32)
		for i := 0; ; i++ {
			if p.Now() >= end {
				return
			}
			addr := &rpcAddrs[i%len(rpcAddrs)]
			_, err := node.RPCReadObj(p, addr, buf)
			if errors.Is(err, core.ErrCompacting) {
				p.Wait(5 * time.Microsecond)
				continue
			}
			if err != nil {
				panic(err)
			}
			if p.Now() < end {
				rpcSeries.Record(time.Duration(p.Now()))
			}
		}
	})

	// RDMA client: DirectReads; correction per the experiment variant.
	rdmaAddrs := append([]core.Addr(nil), live...)
	eng.Go(func(p *sim.Proc) {
		client := s.ConnectClient()
		buf := make([]byte, 32)
		for i := 0; ; i++ {
			if p.Now() >= end {
				return
			}
			addr := &rdmaAddrs[i%len(rdmaAddrs)]
			_, err := node.DirectRead(p, client, *addr, buf)
			switch {
			case err == nil:
				if p.Now() < end {
					rdmaSeries.Record(time.Duration(p.Now()))
				}
			case errors.Is(err, core.ErrInconsistent):
				p.Wait(5 * time.Microsecond) // locked by compaction: retry
			case errors.Is(err, core.ErrWrongObject):
				if mode == core.CorrectMessaging {
					// Variant 1: the client self-corrects with ScanRead.
					if _, serr := node.ScanRead(p, client, addr, buf); serr != nil {
						if errors.Is(serr, core.ErrInconsistent) {
							p.Wait(5 * time.Microsecond)
							continue
						}
						panic(serr)
					}
				} else {
					// Variant 2: correction through an RPC read.
					if _, rerr := node.RPCReadObj(p, addr, buf); rerr != nil {
						if errors.Is(rerr, core.ErrCompacting) {
							p.Wait(5 * time.Microsecond)
							continue
						}
						panic(rerr)
					}
				}
				if p.Now() < end {
					rdmaSeries.Record(time.Duration(p.Now()))
				}
			default:
				panic(err)
			}
		}
	})

	// Compaction leader: occupies one worker and the leader's mailbox for
	// the whole run, as the paper deliberately configures ("long
	// compaction without breaks").
	eng.Go(func(p *sim.Proc) {
		p.Wait(compactAt)
		node.Workers.Acquire(p)
		node.Leader.Acquire(p)
		start := p.Now()
		report = s.CompactClass(core.CompactOptions{
			Class:  s.Allocator().Config().ClassFor(32),
			Leader: 0,
			OnPhase: func(_ core.Phase, d time.Duration) {
				p.Wait(d)
			},
		})
		compactDur = time.Duration(p.Now() - start)
		node.Leader.Release()
		node.Workers.Release()
	})

	eng.Run(end)
	eng.Drain()

	t := stats.Table{
		Title: fmt.Sprintf("Figure 16 (%v correction): read throughput timeline; compaction at %v freed %d blocks (%d objects moved) in %v",
			mode, compactAt, report.BlocksFreed, report.ObjectsMoved, compactDur.Round(time.Millisecond)),
		Headers: []string{"t (s)", "RPC Kreq/s", "RDMA Kreq/s"},
	}
	rpcB, rdmaB := rpcSeries.Buckets(), rdmaSeries.Buckets()
	for i := 0; i < len(rpcB) || i < len(rdmaB); i++ {
		var r1, r2 float64
		if i < len(rpcB) {
			r1 = rpcB[i]
		}
		if i < len(rdmaB) {
			r2 = rdmaB[i]
		}
		t.AddRow(fmt.Sprintf("%.2f", (time.Duration(i)*bucket).Seconds()), r1/1e3, r2/1e3)
	}
	return t, report.BlocksFreed
}
