package experiments

import (
	"fmt"

	"corm/internal/prob"
	"corm/internal/stats"
)

// Fig7 regenerates Figure 7: the analytical probability that two random
// 4 KiB blocks are compactable, by object size (16–256 B) and occupancy
// (12.5–50 %), for Mesh (offset conflicts) and CoRM with 8/12/16-bit IDs.
func Fig7() []stats.Table {
	t := stats.Table{
		Title:   "Figure 7: compaction probability of two random 4 KiB blocks",
		Headers: []string{"occupancy", "objsize", "Mesh", "CoRM-8", "CoRM-12", "CoRM-16"},
	}
	for _, occ := range []float64{0.125, 0.25, 0.375, 0.5} {
		for size := 16; size <= 256; size *= 2 {
			s := 4096 / size
			b := prob.BlocksAtOccupancy(s, occ)
			t.AddRow(
				fmt.Sprintf("%.1f%%", occ*100),
				size,
				prob.Mesh(s, b, b),
				prob.CoRM(8, s, b, b),
				prob.CoRM(12, s, b, b),
				prob.CoRM(16, s, b, b),
			)
		}
	}
	return []stats.Table{t}
}
