package experiments

import (
	"errors"
	"fmt"

	"corm/internal/core"
	"corm/internal/sim"
	"corm/internal/stats"
	"corm/internal/timing"
)

// latSizes are the object sizes of Figs 9 and 10.
var latSizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// latencyStore builds the §4.1 setup: ConnectX-3, 4 KiB blocks, 8 workers,
// preloaded with objects of every size class.
func latencyStore(opts Options, correction core.CorrectionMode) (*core.Store, map[int][]core.Addr) {
	s, err := core.NewStore(core.Config{
		Workers:    8,
		BlockBytes: 4096,
		Strategy:   core.StrategyCoRM,
		Correction: correction,
		DataBacked: true,
		Remap:      core.RemapODPPrefetch,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
		Seed:       opts.Seed,
	})
	if err != nil {
		panic(err)
	}
	// Paper: 10,000 objects of each size class (~40 MiB). Reduced: 1,000.
	perClass := opts.pick(1000, 10000)
	loaded := make(map[int][]core.Addr)
	for _, size := range latSizes {
		for i := 0; i < perClass; i++ {
			r, err := s.AllocOn(i%s.Workers(), size)
			if err != nil {
				panic(err)
			}
			loaded[size] = append(loaded[size], r.Addr)
		}
	}
	return s, loaded
}

// Fig9 regenerates Figure 9: median latency of CoRM operations with
// direct pointers, per object size, against the raw RPC and RDMA
// baselines.
func Fig9(opts Options) []stats.Table {
	opts = opts.withDefaults()
	s, loaded := latencyStore(opts, core.CorrectMessaging)
	eng := sim.NewEngine()
	node := NewDESNode(eng, s)
	client := s.ConnectClient()
	iters := opts.pick(200, 2000)

	t := stats.Table{
		Title: "Figure 9: median latency with direct pointers (us)",
		Headers: []string{"size", "Alloc", "Free", "RPC-baseline", "Read", "Write",
			"DirectRead", "RDMA-baseline"},
	}
	eng.Go(func(p *sim.Proc) {
		for _, size := range latSizes {
			var alloc, free, rpcBase, read, write, direct, rdmaBase stats.Sample
			addrs := loaded[size]
			if len(addrs) > 100 {
				addrs = addrs[:100]
			}
			buf := make([]byte, size)
			// Warm the NIC's translation cache over the working set, as a
			// long-running benchmark would (the paper measures steady
			// state).
			for _, a := range addrs {
				if _, err := node.DirectRead(p, client, a, buf); err != nil {
					panic(err)
				}
			}
			for i := 0; i < iters; i++ {
				// Alloc + Free pair (keeps the store size stable).
				a, lat, err := node.RPCAllocObj(p, i%s.Workers(), size)
				if err != nil {
					panic(err)
				}
				alloc.Add(lat)
				lat, err = node.RPCFreeObj(p, &a)
				if err != nil {
					panic(err)
				}
				free.Add(lat)

				// Raw RPC round trip (Send/Recv only).
				lat, _ = node.RPC(p, size, nil)
				rpcBase.Add(lat)

				addr := addrs[i%len(addrs)]
				lat, err = node.RPCReadObj(p, &addr, buf)
				if err != nil {
					panic(err)
				}
				read.Add(lat)
				lat, err = node.RPCWriteObj(p, &addr, buf)
				if err != nil {
					panic(err)
				}
				write.Add(lat)

				lat, err = node.DirectRead(p, client, addr, buf)
				if err != nil {
					panic(err)
				}
				direct.Add(lat)

				// Raw one-sided read of exactly size bytes, no checks.
				raw := node.Model.NIC.ReadRTT(size)
				rdmaBase.Add(node.OneSided(p, raw, node.Model.NIC.EngineTime(size)))
			}
			t.AddRow(size, alloc.Median(), free.Median(), rpcBase.Median(),
				read.Median(), write.Median(), direct.Median(), rdmaBase.Median())
		}
	})
	eng.RunAll()
	return []stats.Table{t}
}

// Fig10 regenerates Figure 10: latency of operations on *indirect*
// pointers — objects relocated to new offsets by compaction — plus the
// ReleasePtr call. The two client-side recovery paths for a failed
// DirectRead are compared: backing RPC read vs ScanRead.
func Fig10(opts Options) []stats.Table {
	opts = opts.withDefaults()
	left := stats.Table{
		Title: "Figure 10 (left): read/write latency to moved objects (us)",
		Headers: []string{"size", "Read", "Write", "DirectRead+RPC", "DirectRead+ScanRead",
			"RPC-baseline"},
	}
	right := stats.Table{
		Title:   "Figure 10 (right): pointer release (us)",
		Headers: []string{"size", "ReleasePtr", "RPC-baseline"},
	}

	for _, size := range latSizes {
		s, moved := movedObjects(opts, size)
		eng := sim.NewEngine()
		node := NewDESNode(eng, s)
		client := s.ConnectClient()
		iters := opts.pick(100, 1000)
		if iters > len(moved) {
			iters = len(moved)
		}

		var read, write, viaRPC, viaScan, rpcBase, release stats.Sample
		eng.Go(func(p *sim.Proc) {
			buf := make([]byte, size)
			for i := 0; i < iters; i++ {
				stale := moved[i]

				// RPC Read/Write: the first access corrects the pointer's
				// hint in place, so steady-state latency matches direct
				// pointers — the paper's "no significant difference"
				// observation. Warm once, then measure.
				a := stale
				if _, err := node.RPCReadObj(p, &a, buf); err != nil {
					panic(err)
				}
				lat, err := node.RPCReadObj(p, &a, buf)
				if err != nil {
					panic(err)
				}
				read.Add(lat)
				lat, err = node.RPCWriteObj(p, &a, buf)
				if err != nil {
					panic(err)
				}
				write.Add(lat)

				// Failed DirectRead + RPC read backup.
				a = stale
				lat1, err := node.DirectRead(p, client, a, buf)
				if !errors.Is(err, core.ErrWrongObject) {
					panic(fmt.Sprintf("expected indirect pointer, got %v", err))
				}
				lat2, err := node.RPCReadObj(p, &a, buf)
				if err != nil {
					panic(err)
				}
				viaRPC.Add(lat1 + lat2)

				// Failed DirectRead + ScanRead.
				a = stale
				lat1, err = node.DirectRead(p, client, a, buf)
				if !errors.Is(err, core.ErrWrongObject) {
					panic(fmt.Sprintf("expected indirect pointer, got %v", err))
				}
				lat3, err := node.ScanRead(p, client, &a, buf)
				if err != nil {
					panic(err)
				}
				viaScan.Add(lat1 + lat3)

				lat, _ = node.RPC(p, size, nil)
				rpcBase.Add(lat)

				// ReleasePtr on a corrected-but-old pointer.
				a = stale
				if _, err := node.RPCReadObj(p, &a, buf); err != nil {
					panic(err)
				}
				_, lat, err = node.RPCReleaseObj(p, &a)
				if err != nil {
					panic(err)
				}
				release.Add(lat)
				// Undo the release so later iterations still see an old
				// pointer? Release is one-way; use distinct objects.
			}
		})
		eng.RunAll()
		left.AddRow(size, read.Median(), write.Median(), viaRPC.Median(),
			viaScan.Median(), rpcBase.Median())
		right.AddRow(size, release.Median(), rpcBase.Median())
	}
	return []stats.Table{left, right}
}

// movedObjects builds a store where many objects have been relocated to
// different offsets by compaction, returning their stale (indirect)
// pointers.
func movedObjects(opts Options, size int) (*core.Store, []core.Addr) {
	// Blocks must hold at least 3 slots for conflicting merges to exist;
	// large classes get a proportionally larger block.
	blockBytes := 4096
	for blockBytes/core.DataStride(size) < 3 {
		blockBytes *= 2
	}
	s, err := core.NewStore(core.Config{
		Workers:    8,
		BlockBytes: blockBytes,
		Strategy:   core.StrategyCoRM,
		Correction: core.CorrectMessaging,
		DataBacked: true,
		Remap:      core.RemapODPPrefetch,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
		Seed:       opts.Seed,
	})
	if err != nil {
		panic(err)
	}
	per := s.Allocator().Config().SlotsPerBlock(size)
	if per < 2 {
		per = 2
	}
	want := opts.pick(100, 1000)
	// Blocks all keep slot 0 occupied: every merge has an offset conflict,
	// so every surviving source object moves to a new offset.
	var stale []core.Addr
	for len(stale) < want {
		var blockAddrs [][]core.Addr
		for b := 0; b < 32; b++ {
			var as []core.Addr
			for i := 0; i < per; i++ {
				r, err := s.AllocOn(0, size)
				if err != nil {
					panic(err)
				}
				as = append(as, r.Addr)
			}
			blockAddrs = append(blockAddrs, as)
		}
		var kept []core.Addr
		for _, as := range blockAddrs {
			for i := 1; i < len(as); i++ {
				if err := s.Free(&as[i]); err != nil {
					panic(err)
				}
			}
			kept = append(kept, as[0])
		}
		class := s.Allocator().Config().ClassFor(size)
		before := s.Stats().ObjectsMoved
		s.CompactClass(core.CompactOptions{Class: class, Leader: 0, MaxAttempts: 64})
		if s.Stats().ObjectsMoved == before {
			panic("movedObjects: compaction moved nothing")
		}
		// Keep the pointers that are now indirect: probe without fixing.
		client := s.ConnectClient()
		buf := make([]byte, size)
		for _, a := range kept {
			if _, err := client.DirectRead(a, buf); errors.Is(err, core.ErrWrongObject) {
				stale = append(stale, a)
			}
		}
	}
	return s, stale[:want]
}
