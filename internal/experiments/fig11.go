package experiments

import (
	"time"

	"corm/internal/core"
	"corm/internal/sim"
	"corm/internal/stats"
	"corm/internal/timing"
)

// Fig11 regenerates Figure 11: read throughput of CoRM and FaRM against
// the raw baselines — one-sided RDMA for remote reads and memcpy for local
// reads. Remote throughput is simulated (closed-loop client, one
// outstanding request); local throughput is measured on the host for real,
// since it only involves CPU and memory.
func Fig11(opts Options) []stats.Table {
	opts = opts.withDefaults()
	remote := stats.Table{
		Title:   "Figure 11 (left): remote read throughput, 1 client (Kreq/s)",
		Headers: []string{"size", "CoRM", "FaRM", "raw RDMA", "CoRM/RDMA"},
	}
	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	for _, size := range sizes {
		corm := remoteReadRate(opts, size, true)
		farm := remoteReadRate(opts, size, false)
		raw := rawReadRate(opts, size)
		remote.AddRow(size, corm/1e3, farm/1e3, raw/1e3, corm/raw)
	}

	local := stats.Table{
		Title:   "Figure 11 (right): local read throughput (Mreq/s, wall clock)",
		Headers: []string{"size", "CoRM", "FaRM", "memcpy", "memcpy/CoRM"},
	}
	for _, size := range sizes {
		corm := localReadRate(size, core.StrategyCoRM)
		farm := localReadRate(size, core.StrategyNone)
		raw := memcpyRate(size)
		local.AddRow(size, corm/1e6, farm/1e6, raw/1e6, raw/corm)
	}
	return []stats.Table{remote, local}
}

// remoteReadRate measures the closed-loop DirectRead rate of one client.
// CoRM and FaRM share the read path (both check cacheline versions), so
// withIDs only selects the strategy label.
func remoteReadRate(opts Options, size int, withIDs bool) float64 {
	strategy := core.StrategyCoRM
	if !withIDs {
		strategy = core.StrategyNone
	}
	s, err := core.NewStore(core.Config{
		Workers:    8,
		BlockBytes: 4096,
		Strategy:   strategy,
		DataBacked: true,
		Remap:      core.RemapODPPrefetch,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
		Seed:       opts.Seed,
	})
	if err != nil {
		panic(err)
	}
	// The paper loads 8 GiB per class; what matters for a single
	// closed-loop client is a working set larger than trivial.
	n := opts.pick(2000, 20000)
	addrs := make([]core.Addr, 0, n)
	for i := 0; i < n; i++ {
		r, err := s.AllocOn(i%s.Workers(), size)
		if err != nil {
			panic(err)
		}
		addrs = append(addrs, r.Addr)
	}
	eng := sim.NewEngine()
	node := NewDESNode(eng, s)
	client := s.ConnectClient()
	loop := node.Model.CPU.ClientLoop

	var ops int64
	horizon := sim.Time(200 * time.Millisecond)
	eng.Go(func(p *sim.Proc) {
		buf := make([]byte, size)
		for i := 0; ; i++ {
			if p.Now() >= horizon {
				return
			}
			if _, err := node.DirectRead(p, client, addrs[i%len(addrs)], buf); err != nil {
				panic(err)
			}
			p.Wait(loop)
			ops++
		}
	})
	eng.Run(horizon)
	eng.Drain()
	return float64(ops) / sim.Time(horizon).Seconds()
}

// rawReadRate is the one-sided baseline: exactly size bytes, no checks.
func rawReadRate(opts Options, size int) float64 {
	eng := sim.NewEngine()
	model := timing.Default()
	engine := sim.NewResource(eng, 1)
	loop := model.CPU.ClientLoop
	var ops int64
	horizon := sim.Time(200 * time.Millisecond)
	eng.Go(func(p *sim.Proc) {
		for {
			if p.Now() >= horizon {
				return
			}
			rtt := model.NIC.ReadRTT(size)
			svc := model.NIC.EngineTime(size)
			pre := (rtt - svc) / 2
			p.Wait(pre)
			engine.Use(p, svc)
			p.Wait(rtt - svc - pre)
			p.Wait(loop)
			ops++
		}
	})
	eng.Run(horizon)
	eng.Drain()
	return float64(ops) / sim.Time(horizon).Seconds()
}

// localReadRate measures, in real wall-clock time, how fast a local
// application can read objects through the CoRM API (resolve, lock,
// translate, gather payload). This is the software-layer overhead the
// paper compares against a plain memcpy.
func localReadRate(size int, strategy core.Strategy) float64 {
	s, err := core.NewStore(core.Config{
		Workers:    1,
		BlockBytes: 4096,
		Strategy:   strategy,
		DataBacked: true,
		Remap:      core.RemapRereg,
		Model:      timing.Default(),
	})
	if err != nil {
		panic(err)
	}
	const n = 512
	reader := core.NewLocalReader(s)
	objs := make([]core.BoundObj, 0, n)
	for i := 0; i < n; i++ {
		r, err := s.AllocOn(0, size)
		if err != nil {
			panic(err)
		}
		obj, err := reader.Bind(r.Addr)
		if err != nil {
			panic(err)
		}
		objs = append(objs, obj)
	}
	buf := make([]byte, size)
	// Calibrate the iteration count to ~30ms of work.
	iters := calibrate(func() {
		if _, err := reader.Read(objs[0], buf); err != nil {
			panic(err)
		}
	})
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := reader.Read(objs[i%n], buf); err != nil {
			panic(err)
		}
	}
	return float64(iters) / time.Since(start).Seconds()
}

// memcpyRate measures plain copy throughput for the same object size.
func memcpyRate(size int) float64 {
	src := make([]byte, size*512)
	buf := make([]byte, size)
	iters := calibrate(func() {
		copy(buf, src[:size])
	})
	start := time.Now()
	for i := 0; i < iters; i++ {
		off := (i % 512) * size
		copy(buf, src[off:off+size])
	}
	elapsed := time.Since(start).Seconds()
	if buf[0] == 1 && buf[len(buf)-1] == 2 {
		panic("unreachable") // defeat dead-code elimination
	}
	return float64(iters) / elapsed
}

// calibrate returns an iteration count giving roughly 30ms of work.
func calibrate(f func()) int {
	const probe = 2000
	start := time.Now()
	for i := 0; i < probe; i++ {
		f()
	}
	per := time.Since(start) / probe
	if per <= 0 {
		per = time.Nanosecond
	}
	iters := int(30 * time.Millisecond / per)
	if iters < probe {
		iters = probe
	}
	if iters > 20_000_000 {
		iters = 20_000_000
	}
	return iters
}
