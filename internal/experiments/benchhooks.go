package experiments

import (
	"time"

	"corm/internal/core"
	"corm/internal/workload"
)

// Exported wrappers used by the repository's top-level benchmarks, which
// run scaled-down instances of the experiment harnesses per iteration.

// YCSBBench is an opaque handle over the internal harness.
type YCSBBench struct {
	h *ycsbHarness
	p ycsbParams
}

// NewYCSBBench builds a small YCSB simulation.
func NewYCSBBench(objects, clients int, dist workload.Dist, theta float64, mix workload.Mix, oneSided bool, seed int64) (*YCSBBench, ycsbParams) {
	p := ycsbParams{
		objects: objects, clients: clients, dist: dist, theta: theta,
		mix: mix, oneSided: oneSided, seed: seed,
		measure: 20 * time.Millisecond, warmup: 5 * time.Millisecond,
	}
	return &YCSBBench{h: newYCSBHarness(p), p: p}, p
}

// NewYCSBBenchFrag is NewYCSBBench over a fragmented population (Fig 14).
func NewYCSBBenchFrag(objects, clients int, dist workload.Dist, theta float64, mix workload.Mix, oneSided bool, seed int64) (*YCSBBench, ycsbParams) {
	p := ycsbParams{
		objects: objects, clients: clients, dist: dist, theta: theta,
		mix: mix, oneSided: oneSided, fragment: true, seed: seed,
		measure: 20 * time.Millisecond, warmup: 5 * time.Millisecond,
	}
	return &YCSBBench{h: newYCSBHarness(p), p: p}, p
}

// Run executes the simulation, returning (req/s, conflicts/s).
func (y *YCSBBench) Run(p ycsbParams) (float64, float64) { return y.h.run(p) }

// RunTraceBench replays a trace with the given strategy and returns the
// post-compaction active memory.
func RunTraceBench(tr workload.Trace, strategy core.Strategy, idBits, threads int, seed int64) int64 {
	return runTrace(tr, strategyVariant{"bench", strategy, idBits}, threads, seed)
}

// TimelineBench runs a miniature Fig 16 and returns the blocks freed.
func TimelineBench(objects int, seed int64) int {
	opts := Options{Seed: seed}
	_ = opts
	// Reuse fig16Run at a very small scale by temporarily building the
	// pieces directly: a short run with the messaging mode.
	t := fig16RunScaled(Options{Seed: seed}, core.CorrectMessaging, objects, 300*time.Millisecond)
	return t
}
