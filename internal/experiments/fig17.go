package experiments

import (
	"fmt"
	"math/rand"

	"corm/internal/alloc"
	"corm/internal/core"
	"corm/internal/stats"
	"corm/internal/timing"
	"corm/internal/workload"
)

// strategyVariant names one compaction configuration of §4.4.
type strategyVariant struct {
	Name     string
	Strategy core.Strategy
	IDBits   int
}

var fig17Variants = []strategyVariant{
	{"No", core.StrategyNone, 0},
	{"Mesh", core.StrategyMesh, 0},
	{"CoRM-8", core.StrategyCoRM, 8},
	{"CoRM-12", core.StrategyCoRM, 12},
	{"CoRM-16", core.StrategyCoRM, 16},
}

// traceStore builds an accounting-mode store for the §4.4 experiments:
// 1 MiB blocks (as FaRM uses), extended class list covering the Redis
// traces' 160 KiB values.
func traceStore(v strategyVariant, threads int, seed int64) *core.Store {
	classes := append([]int(nil), alloc.DefaultClasses...)
	classes = append(classes, 24576, 32768, 49152, 65536, 98304, 131072, 163840, 262144)
	s, err := core.NewStore(core.Config{
		Workers:    threads,
		BlockBytes: 1 << 20,
		Classes:    classes,
		Strategy:   v.Strategy,
		IDBits:     v.IDBits,
		DataBacked: false,
		Remap:      core.RemapRereg,
		Model:      timing.Default(),
		Seed:       seed,
	})
	if err != nil {
		panic(err)
	}
	return s
}

// runTrace replays an allocation trace, assigning each allocation to a
// random thread (§4.4.3), then compacts every class to quiescence and
// returns the resulting active memory.
func runTrace(tr workload.Trace, v strategyVariant, threads int, seed int64) int64 {
	s := traceStore(v, threads, seed)
	rng := rand.New(rand.NewSource(seed + 11))
	var addrs []core.Addr
	for {
		ev, ok := tr.Next()
		if !ok {
			break
		}
		switch ev.Op {
		case workload.TAlloc:
			r, err := s.AllocOn(rng.Intn(threads), ev.Size)
			if err != nil {
				panic(err)
			}
			addrs = append(addrs, r.Addr)
		case workload.TFree:
			if err := s.Free(&addrs[ev.Index]); err != nil {
				panic(err)
			}
		}
	}
	compactToQuiescence(s)
	return s.ActiveBytes()
}

// compactToQuiescence repeatedly compacts every class until no further
// blocks are freed.
func compactToQuiescence(s *core.Store) {
	for round := 0; round < 16; round++ {
		freed := 0
		for class := range s.Config().Classes {
			r := s.CompactClass(core.CompactOptions{
				Class: class, Leader: 0, MaxOccupancy: core.Occ(0.95), MaxAttempts: 16,
			})
			freed += r.BlocksFreed
		}
		if freed == 0 {
			return
		}
	}
}

// idealActive computes the perfect compactor's footprint: every class's
// live payload packed into the minimum number of blocks, no metadata.
func idealActive(liveBySize map[int]int64, blockBytes int, classes []int) int64 {
	cfg := alloc.Config{BlockBytes: blockBytes, Classes: classes}
	var total int64
	perClass := make(map[int]int64)
	for size, count := range liveBySize {
		idx := cfg.ClassFor(size)
		if idx < 0 {
			panic(fmt.Sprintf("no class for %d", size))
		}
		perClass[idx] += count
	}
	for idx, count := range perClass {
		per := int64(blockBytes / classes[idx])
		blocks := (count + per - 1) / per
		total += blocks * int64(blockBytes)
	}
	return total
}

// traceLiveBySize replays a trace logically and returns live object counts
// per size (for the ideal compactor).
func traceLiveBySize(tr workload.Trace) map[int]int64 {
	var sizes []int
	live := make(map[int]int64)
	for {
		ev, ok := tr.Next()
		if !ok {
			break
		}
		switch ev.Op {
		case workload.TAlloc:
			sizes = append(sizes, ev.Size)
			live[ev.Size]++
		case workload.TFree:
			live[sizes[ev.Index]]--
		}
	}
	return live
}

var traceClasses = func() []int {
	classes := append([]int(nil), alloc.DefaultClasses...)
	return append(classes, 24576, 32768, 49152, 65536, 98304, 131072, 163840, 262144)
}()

// Fig17 regenerates Figure 17: active memory after an allocation spike of
// count objects of each size followed by random deallocation at rates
// 0.4-0.9, for No/Ideal/Mesh/CoRM-{8,12,16}, with 1 MiB blocks.
func Fig17(opts Options) []stats.Table {
	opts = opts.withDefaults()
	count := int64(opts.pick(1_000_000, 8_000_000))
	var tables []stats.Table
	for _, size := range []int{256, 2048, 8192, 12288} {
		t := stats.Table{
			Title: fmt.Sprintf("Figure 17: active memory (GiB), %d B objects, %dM allocated, 1 MiB blocks",
				size, count/1_000_000),
			Headers: []string{"dealloc rate", "No", "Ideal", "Mesh", "CoRM-8", "CoRM-12", "CoRM-16"},
		}
		for _, rate := range []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
			row := []interface{}{rate}
			live := traceLiveBySize(workload.NewSpikeTrace(opts.Seed, size, count, rate))
			for _, v := range fig17Variants {
				if v.Name == "Mesh" { // insert Ideal before Mesh
					row = append(row, gib(idealActive(live, 1<<20, traceClasses)))
				}
				tr := workload.NewSpikeTrace(opts.Seed, size, count, rate)
				row = append(row, gib(runTrace(tr, v, 8, opts.Seed)))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

func gib(b int64) float64 { return float64(b) / float64(1<<30) }

// Fig18 regenerates Figure 18: active memory for the three Redis traces
// under vanilla CoRM (classes whose block capacity exceeds the ID space
// are skipped), varying allocator threads.
func Fig18(opts Options) []stats.Table {
	return redisFigure(opts, "Figure 18 (vanilla CoRM)", fig17Variants)
}

// Fig19 regenerates Figure 19: the same traces under hybrid CoRM
// (CoRM-0 for oversized classes).
func Fig19(opts Options) []stats.Table {
	variants := []strategyVariant{
		{"No", core.StrategyNone, 0},
		{"Mesh", core.StrategyMesh, 0},
		{"CoRM-0+CoRM-8", core.StrategyHybrid, 8},
		{"CoRM-0+CoRM-12", core.StrategyHybrid, 12},
		{"CoRM-0+CoRM-16", core.StrategyHybrid, 16},
	}
	return redisFigure(opts, "Figure 19 (hybrid CoRM)", variants)
}

func redisFigure(opts Options, title string, variants []strategyVariant) []stats.Table {
	opts = opts.withDefaults()
	var tables []stats.Table
	for _, tc := range workload.RedisTraces {
		headers := []string{"threads", "No", "Ideal"}
		for _, v := range variants[1:] {
			headers = append(headers, v.Name)
		}
		t := stats.Table{
			Title:   fmt.Sprintf("%s: active memory (GiB), %s, 1 MiB blocks", title, tc.Name),
			Headers: headers,
		}
		live := traceLiveBySize(tc.Make(opts.Seed))
		ideal := gib(idealActive(live, 1<<20, traceClasses))
		for _, threads := range []int{1, 8, 16, 32} {
			row := []interface{}{threads}
			for i, v := range variants {
				if i == 1 {
					row = append(row, ideal)
				}
				row = append(row, gib(runTrace(tc.Make(opts.Seed), v, threads, opts.Seed)))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}
