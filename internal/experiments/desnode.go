// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each FigNN function runs the corresponding experiment —
// over the discrete-event simulation for latency/throughput studies, or
// functionally for the memory-accounting studies — and returns plain-text
// tables with the same rows/series the paper plots. cmd/corm-bench and the
// top-level benchmarks share these harnesses.
package experiments

import (
	"errors"
	"time"

	"corm/internal/core"
	"corm/internal/sim"
	"corm/internal/timing"
)

// DESNode wraps a functional CoRM store with the simulated resources that
// produce realistic queueing: the RPC worker pool (§2.2.2) and the NIC's
// inbound processing engine. All latency constants come from the store's
// timing model.
type DESNode struct {
	Eng     *sim.Engine
	Store   *core.Store
	Workers *sim.Resource // RPC worker threads
	Engine  *sim.Resource // NIC inbound engine (one-sided ops)
	Leader  *sim.Resource // the compaction-leader thread's availability
	Model   timing.Model
}

// NewDESNode builds the simulation around an existing store.
func NewDESNode(eng *sim.Engine, store *core.Store) *DESNode {
	return &DESNode{
		Eng:     eng,
		Store:   store,
		Workers: sim.NewResource(eng, store.Workers()),
		Engine:  sim.NewResource(eng, 1),
		Leader:  sim.NewResource(eng, 1),
		Model:   store.Config().Model,
	}
}

// RPC models one RPC round trip: wire out, queue for a worker, handle,
// store work, wire back — while the worker stays busy for its post-
// processing share after the reply leaves (this split is what bounds the
// RPC plateau of Fig 12 without inflating Fig 9 latencies).
//
// work runs the functional store operation and returns any extra modeled
// service time (e.g. a block refill, a correction hop).
func (n *DESNode) RPC(p *sim.Proc, payload int, work func() (time.Duration, error)) (time.Duration, error) {
	start := p.Now()
	rtt := n.Model.NIC.RPCRTT(payload)
	p.Wait(rtt / 2)

	// The incoming send passes through the same NIC inbound engine as
	// one-sided operations before landing in the RPC queue (§2.2.2).
	n.Engine.Use(p, n.Model.NIC.EngineTime(payload))

	n.Workers.Acquire(p)
	p.Wait(n.Model.CPU.WorkerHandle)
	var err error
	var extra time.Duration
	if work != nil {
		extra, err = work()
	}
	if extra > 0 {
		p.Wait(extra)
	}
	// The reply departs now; the worker remains busy for the post share.
	n.Eng.Schedule(n.Model.CPU.WorkerPost, n.Workers.Release)

	p.Wait(rtt / 2)
	return time.Duration(p.Now() - start), err
}

// OneSided models a one-sided verb: the request transits the wire, queues
// on the NIC's inbound engine for its occupancy share, and completes after
// the remaining latency. cost comes from the functional rnic layer (wire,
// MTT cache misses, ODP faults, client-side checks).
func (n *DESNode) OneSided(p *sim.Proc, cost time.Duration, engine time.Duration) time.Duration {
	start := p.Now()
	pre := (cost - engine) / 2
	if pre > 0 {
		p.Wait(pre)
	}
	n.Engine.Acquire(p)
	if engine > 0 {
		p.Wait(engine)
	}
	n.Engine.Release()
	post := cost - engine - pre
	if post > 0 {
		p.Wait(post)
	}
	return time.Duration(p.Now() - start)
}

// DirectRead performs the functional one-sided read and charges its DES
// cost. The returned error distinguishes indirect pointers and
// inconsistent reads, as in the client library.
func (n *DESNode) DirectRead(p *sim.Proc, client *core.ClientQP, addr core.Addr, buf []byte) (time.Duration, error) {
	cost, err := client.DirectRead(addr, buf)
	lat := n.OneSided(p, cost.Latency, cost.Engine)
	return lat, err
}

// ScanRead performs the functional block-scan read and charges its cost.
func (n *DESNode) ScanRead(p *sim.Proc, client *core.ClientQP, addr *core.Addr, buf []byte) (time.Duration, error) {
	cost, err := client.ScanRead(addr, buf)
	lat := n.OneSided(p, cost.Latency, cost.Engine)
	return lat, err
}

// correctionExtra models the server-side pointer-correction cost for RPC
// operations (§3.2.1): with thread messaging, two inter-thread hops plus
// possibly waiting for the owner thread (busy during compaction); with
// block scanning, a scan proportional to the block's slot count.
func (n *DESNode) correctionExtra(p *sim.Proc, classSize int) time.Duration {
	cpu := n.Model.CPU
	switch n.Store.Config().Correction {
	case core.CorrectScan:
		slots := n.Store.Config().BlockBytes / core.DataStride(classSize)
		return time.Duration(slots) * cpu.ScanPerSlot
	default: // CorrectMessaging
		// The owner thread must answer; if it is the busy compaction
		// leader, the request stalls until the leader frees up.
		n.Leader.Acquire(p)
		n.Leader.Release()
		return 2 * cpu.HopLatency
	}
}

// RPCReadObj is the full RPC read of an object: store read + correction
// accounting. addr is corrected in place, as the server would report back.
func (n *DESNode) RPCReadObj(p *sim.Proc, addr *core.Addr, buf []byte) (time.Duration, error) {
	size := n.Store.ClassSize(int(addr.Class()))
	return n.RPC(p, size, func() (time.Duration, error) {
		before := addr.HasFlag(core.FlagIndirectObserved)
		_, err := n.Store.Read(addr, buf)
		var extra time.Duration
		if !before && addr.HasFlag(core.FlagIndirectObserved) {
			extra = n.correctionExtra(p, size)
		}
		return extra, err
	})
}

// RPCWriteObj is the RPC write path.
func (n *DESNode) RPCWriteObj(p *sim.Proc, addr *core.Addr, payload []byte) (time.Duration, error) {
	return n.RPC(p, len(payload), func() (time.Duration, error) {
		before := addr.HasFlag(core.FlagIndirectObserved)
		err := n.Store.Write(addr, payload)
		var extra time.Duration
		if !before && addr.HasFlag(core.FlagIndirectObserved) {
			extra = n.correctionExtra(p, n.Store.ClassSize(int(addr.Class())))
		}
		return extra, err
	})
}

// RPCAllocObj models Alloc: base RPC + allocator work (+ refill).
func (n *DESNode) RPCAllocObj(p *sim.Proc, thread, size int) (core.Addr, time.Duration, error) {
	var addr core.Addr
	lat, err := n.RPC(p, 16, func() (time.Duration, error) {
		res, err := n.Store.AllocOn(thread, size)
		if err != nil {
			return 0, err
		}
		addr = res.Addr
		extra := n.Model.CPU.AllocWork
		if res.Refilled {
			extra += n.Model.CPU.BlockRefill
		}
		return extra, nil
	})
	return addr, lat, err
}

// RPCFreeObj models Free.
func (n *DESNode) RPCFreeObj(p *sim.Proc, addr *core.Addr) (time.Duration, error) {
	return n.RPC(p, 16, func() (time.Duration, error) {
		return n.Model.CPU.AllocWork, n.Store.Free(addr)
	})
}

// RPCReleaseObj models ReleasePtr.
func (n *DESNode) RPCReleaseObj(p *sim.Proc, addr *core.Addr) (core.Addr, time.Duration, error) {
	var out core.Addr
	lat, err := n.RPC(p, 16, func() (time.Duration, error) {
		na, err := n.Store.ReleasePtr(addr)
		out = na
		return n.Model.CPU.ReleaseWork, err
	})
	return out, lat, err
}

// RetryableDirectRead keeps retrying inconsistent one-sided reads with a
// backoff, as CoRM clients do (§3.2.3). Indirect-pointer errors surface.
func (n *DESNode) RetryableDirectRead(p *sim.Proc, client *core.ClientQP, addr core.Addr, buf []byte, backoff time.Duration) (time.Duration, int, error) {
	var total time.Duration
	retries := 0
	for {
		lat, err := n.DirectRead(p, client, addr, buf)
		total += lat
		if !errors.Is(err, core.ErrInconsistent) {
			return total, retries, err
		}
		retries++
		if retries > 1000 {
			return total, retries, err
		}
		p.Wait(backoff)
		total += backoff
	}
}
