package experiments

import (
	"fmt"

	"corm/internal/core"
	"corm/internal/stats"
)

// Table1 reproduces the paper's system-comparison matrix.
func Table1() []stats.Table {
	t := stats.Table{
		Title:   "Table 1: comparison of Mesh, FaRM, and CoRM",
		Headers: []string{"system", "type", "RDMA", "mem. compaction", "vaddr reuse"},
	}
	t.AddRow("Mesh", "Allocator", "no", "yes", "no")
	t.AddRow("FaRM", "DSM", "yes", "no", "-")
	t.AddRow("CoRM", "DSM", "yes", "yes", "yes")
	return []stats.Table{t}
}

// Table3 reproduces the per-object metadata overheads for 1 MiB blocks:
// the 28-bit home-block address (48-bit pointers, 20-bit-aligned blocks)
// plus the object ID bits.
func Table3() []stats.Table {
	t := stats.Table{
		Title:   "Table 3: per-object memory overhead for 1 MiB blocks",
		Headers: []string{"algorithm", "bits", "stored bytes"},
	}
	row := func(name string, cfg core.Config) {
		cfg.BlockBytes = 1 << 20
		full := cfg
		bits := map[core.Strategy]int{
			core.StrategyMesh:  0,
			core.StrategyNone:  0,
			core.StrategyCoRM0: 28,
			core.StrategyCoRM:  28 + cfg.IDBits,
		}[cfg.Strategy]
		_ = full
		t.AddRow(name, bits, overheadBytes(cfg))
	}
	row("Mesh", core.Config{Strategy: core.StrategyMesh})
	row("CoRM-0", core.Config{Strategy: core.StrategyCoRM0})
	row("CoRM-8", core.Config{Strategy: core.StrategyCoRM, IDBits: 8})
	row("CoRM-12", core.Config{Strategy: core.StrategyCoRM, IDBits: 12})
	row("CoRM-16", core.Config{Strategy: core.StrategyCoRM, IDBits: 16})
	return []stats.Table{t}
}

// overheadBytes mirrors the accounting-mode header the store charges.
func overheadBytes(cfg core.Config) string {
	switch cfg.Strategy {
	case core.StrategyMesh, core.StrategyNone:
		return "0"
	case core.StrategyCoRM0:
		return fmt.Sprintf("%d", (28+7)/8)
	default:
		return fmt.Sprintf("%d", (28+cfg.IDBits+7)/8)
	}
}
