package experiments

import (
	"fmt"
	"time"

	"corm/internal/core"
	"corm/internal/stats"
	"corm/internal/timing"
)

// Fig8 regenerates Figure 8: the latency of the three RDMA remapping
// strategies on a ConnectX-5 (§3.5). Each strategy is measured by
// actually compacting two single-page blocks in a store configured for it
// and capturing the per-phase costs, then issuing the first and second
// one-sided reads through the remapped address to observe the ODP fault
// (or its absence).
func Fig8() []stats.Table {
	t := stats.Table{
		Title: "Figure 8: RDMA remapping latencies, ConnectX-5",
		Headers: []string{"strategy", "mmap", "fix (rereg/advise)", "first read", "second read",
			"QP-break window"},
	}
	for _, remap := range []core.RemapStrategy{core.RemapRereg, core.RemapODP, core.RemapODPPrefetch} {
		mmapT, fixT, breakW, first, second := remapCosts(remap)
		t.AddRow(remap.String(), mmapT, fixT, first, second, fmt.Sprintf("%v", breakW))
	}
	return []stats.Table{t}
}

// remapCosts compacts two sparse single-page blocks under one remapping
// strategy and reports the phase costs plus post-remap read latencies.
func remapCosts(remap core.RemapStrategy) (mmapT, fixT time.Duration, breakWindow bool, first, second time.Duration) {
	s, err := core.NewStore(core.Config{
		Workers:    2,
		BlockBytes: 4096,
		Strategy:   core.StrategyCoRM,
		DataBacked: true,
		Remap:      remap,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		panic(err)
	}
	// Thread 0 keeps one object at slot 0 (block A); thread 1 keeps two
	// objects at slots 1-2 (block B). A is the least-utilized block, so the
	// merge moves A's object into B without offset conflicts and remaps
	// A's virtual address — the pointer a0 stays direct but its page
	// translation changed.
	a0, _ := s.AllocOn(0, 32)
	drop, _ := s.AllocOn(1, 32)
	s.AllocOn(1, 32)
	s.AllocOn(1, 32)
	if err := s.Free(&drop.Addr); err != nil {
		panic(err)
	}
	class := int(a0.Addr.Class())

	r := s.CompactClass(core.CompactOptions{
		Class: class, Leader: 0,
		OnPhase: func(p core.Phase, d time.Duration) {
			switch p {
			case core.PhaseMmap:
				mmapT += d
			case core.PhaseRereg:
				fixT += d
				breakWindow = true
			case core.PhaseAdvise:
				fixT += d
			}
		},
	})
	if r.BlocksFreed != 1 || r.ObjectsMoved != 0 {
		panic(fmt.Sprintf("fig8: expected one conflict-free merge, got %+v", r))
	}

	// First read through the remapped address pays the ODP fault (if any);
	// the second is steady state.
	client := s.ConnectClient()
	buf := make([]byte, 32)
	cost, err := client.DirectRead(a0.Addr, buf)
	if err != nil {
		panic(err)
	}
	first = cost.Latency
	cost, err = client.DirectRead(a0.Addr, buf)
	if err != nil {
		panic(err)
	}
	second = cost.Latency
	return
}
