package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parseUS extracts the float from a "3.51us" cell.
func parseUS(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "us"), 64)
	if err != nil {
		t.Fatalf("bad latency cell %q", cell)
	}
	return v
}

// TestFig9Invariants runs the (reduced) Fig 9 harness and asserts the
// paper's qualitative claims about operation latencies.
func TestFig9Invariants(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long simulation")
	}
	tbl := Fig9(Options{Seed: 1})[0]
	// Columns: size, Alloc, Free, RPC-baseline, Read, Write, DirectRead, RDMA-baseline.
	// Alloc/Free RPCs carry a fixed 16-byte payload, so they compare
	// against the smallest size's baseline, not the per-row one.
	rpcBaseSmall := parseUS(t, tbl.Rows[0][3])
	for _, row := range tbl.Rows {
		size := row[0]
		alloc := parseUS(t, row[1])
		rpcBase := parseUS(t, row[3])
		read := parseUS(t, row[4])
		direct := parseUS(t, row[6])
		rdma := parseUS(t, row[7])

		// §4.1: RDMA requests stay under 4 us; DirectRead ~ raw RDMA for
		// small objects; one-sided beats RPC at every size.
		if rdma >= 4.1 {
			t.Errorf("size %s: raw RDMA %vus exceeds ~4us", size, rdma)
		}
		if direct >= read {
			t.Errorf("size %s: DirectRead %v >= RPC read %v", size, direct, read)
		}
		if direct > rdma*1.45 {
			t.Errorf("size %s: consistency overhead too high (%v vs %v)", size, direct, rdma)
		}
		// Alloc = base RPC + ~0.5us allocator work (plus occasional refill).
		if alloc < rpcBaseSmall+0.3 || alloc > rpcBaseSmall+6 {
			t.Errorf("size %s: alloc %v vs small-payload baseline %v", size, alloc, rpcBaseSmall)
		}
		_ = rpcBase
	}
}

// TestFig11RemoteInvariants asserts CoRM ~ FaRM and the raw-RDMA gap.
func TestFig11RemoteInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long simulation")
	}
	opts := Options{Seed: 1}
	for _, size := range []int{8, 2048} {
		corm := remoteReadRate(opts, size, true)
		farm := remoteReadRate(opts, size, false)
		raw := rawReadRate(opts, size)
		// §4.2.1: FaRM is not more than ~1.01x faster than CoRM.
		if corm < farm*0.97 || corm > farm*1.03 {
			t.Errorf("size %d: CoRM %v vs FaRM %v diverge", size, corm, farm)
		}
		// Both trail raw RDMA slightly (consistency checks, stride).
		if corm > raw {
			t.Errorf("size %d: CoRM %v beats raw RDMA %v", size, corm, raw)
		}
		if corm < raw*0.9 {
			t.Errorf("size %d: consistency overhead too large: %v vs %v", size, corm, raw)
		}
	}
	// Paper: ~380 Kreq/s per client for small objects.
	raw := rawReadRate(opts, 8)
	if raw < 330e3 || raw > 430e3 {
		t.Errorf("raw small-read rate = %v, want ~380K", raw)
	}
}

// TestFig16Invariants checks the timeline experiment's headline effects at
// a small scale: the RPC client stalls under messaging correction but not
// under scan correction, and the RDMA client outpaces the RPC client
// during recovery.
func TestFig16Invariants(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long simulation")
	}
	// Reduced scale via the bench hook (messaging mode).
	if freed := TimelineBench(30_000, 1); freed == 0 {
		t.Fatal("no compaction in timeline run")
	}
}
