package rpc

import (
	"bytes"
	"testing"

	"corm/internal/core"
)

// FuzzDecodeBatch drives every wire decoder — batch sub-record framing
// plus the single-op request/response/info decoders the sub-records reuse
// — with arbitrary payloads. Decoders must return errors (never panic) on
// garbage, and a successful decode must round-trip byte-identically: all
// the encodings are canonical, so re-marshalling the decoded form is a
// strong oracle against silently misparsed fields.
func FuzzDecodeBatch(f *testing.F) {
	addr := core.MakeAddr(0x7f0000001000, 42, 0xdead, 3)
	reqs := []Request{
		{Op: OpRead, Addr: addr, Size: 64},
		{Op: OpWrite, Addr: addr, Payload: []byte("payload bytes")},
		{Op: OpAlloc, Size: 128},
		{Op: OpFree, Addr: addr},
	}
	f.Add(MarshalBatchRequests(nil, reqs))
	f.Add(MarshalBatchRequests(nil, nil))
	resps := []Response{
		{Status: StatusOK, Addr: addr, Payload: []byte("result")},
		{Status: StatusNotFound},
	}
	f.Add(MarshalBatchResponses(nil, resps))
	f.Add((&Request{Op: OpRead, Addr: addr, Size: 32}).Marshal())
	f.Add((&Response{Status: StatusOK, Payload: []byte("x")}).Marshal())
	info := Info{BlockBytes: 1 << 20, Consistency: core.ConsistencyVersions, Classes: []int{64, 128, 256}}
	f.Add(info.Marshal())
	// Corrupt count and truncated record seeds.
	f.Add([]byte{255, 255, 255, 255})
	f.Add([]byte{2, 0, 0, 0, 3, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		if subs, err := DecodeBatchRequests(data, nil); err == nil {
			re := MarshalBatchRequests(nil, subs)
			if !bytes.Equal(re, data) {
				t.Fatalf("batch request round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if subs, err := DecodeBatchResponses(data, nil); err == nil {
			re := MarshalBatchResponses(nil, subs)
			if !bytes.Equal(re, data) {
				t.Fatalf("batch response round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if req, err := UnmarshalRequest(data); err == nil {
			if re := req.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("request round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if resp, err := UnmarshalResponse(data); err == nil {
			if re := resp.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("response round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if info, err := UnmarshalInfo(data); err == nil {
			if re := info.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("info round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
	})
}
