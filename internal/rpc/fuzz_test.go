package rpc

import (
	"bytes"
	"testing"

	"corm/internal/core"
)

// FuzzDecodeBatch drives every wire decoder — batch sub-record framing
// plus the single-op request/response/info decoders the sub-records reuse
// — with arbitrary payloads. Decoders must return errors (never panic) on
// garbage, and a successful decode must round-trip byte-identically: all
// the encodings are canonical, so re-marshalling the decoded form is a
// strong oracle against silently misparsed fields.
func FuzzDecodeBatch(f *testing.F) {
	addr := core.MakeAddr(0x7f0000001000, 42, 0xdead, 3)
	reqs := []Request{
		{Op: OpRead, Addr: addr, Size: 64},
		{Op: OpWrite, Addr: addr, Payload: []byte("payload bytes")},
		{Op: OpAlloc, Size: 128},
		{Op: OpFree, Addr: addr},
	}
	f.Add(MarshalBatchRequests(nil, reqs))
	f.Add(MarshalBatchRequests(nil, nil))
	resps := []Response{
		{Status: StatusOK, Addr: addr, Payload: []byte("result")},
		{Status: StatusNotFound},
	}
	f.Add(MarshalBatchResponses(nil, resps))
	f.Add((&Request{Op: OpRead, Addr: addr, Size: 32}).Marshal())
	f.Add((&Response{Status: StatusOK, Payload: []byte("x")}).Marshal())
	info := Info{BlockBytes: 1 << 20, Consistency: core.ConsistencyVersions, Classes: []int{64, 128, 256}}
	f.Add(info.Marshal())
	// Corrupt count and truncated record seeds.
	f.Add([]byte{255, 255, 255, 255})
	f.Add([]byte{2, 0, 0, 0, 3, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		if subs, err := DecodeBatchRequests(data, nil); err == nil {
			re := MarshalBatchRequests(nil, subs)
			if !bytes.Equal(re, data) {
				t.Fatalf("batch request round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if subs, err := DecodeBatchResponses(data, nil); err == nil {
			re := MarshalBatchResponses(nil, subs)
			if !bytes.Equal(re, data) {
				t.Fatalf("batch response round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if req, err := UnmarshalRequest(data); err == nil {
			if re := req.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("request round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if resp, err := UnmarshalResponse(data); err == nil {
			if re := resp.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("response round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if info, err := UnmarshalInfo(data); err == nil {
			if re := info.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("info round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
	})
}

// FuzzDecodeCAS drives the mutating pushdown payload decoders (CAS,
// FetchAdd, CondWrite) with arbitrary bytes. The view decoders alias the
// input, so a successful decode re-marshalled must reproduce the input
// byte-identically — the encodings are canonical.
func FuzzDecodeCAS(f *testing.F) {
	f.Add((&CASReq{Token: 1, Offset: 8, Old: []byte("old"), New: []byte("new")}).Marshal())
	f.Add((&CASReq{Old: nil, New: nil}).Marshal())
	f.Add((&FAddReq{Token: 2, Offset: 0, Delta: -1}).Marshal())
	f.Add((&CondWriteReq{Token: 3, Mode: CondIfVersion, Version: 9, Value: []byte("v")}).Marshal())
	f.Add((&CondWriteReq{Mode: CondIfAbsent}).Marshal())
	// Truncated header and length-mismatch seeds.
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := UnmarshalCASReqView(data); err == nil {
			if re := r.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("CAS round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if r, err := UnmarshalFAddReq(data); err == nil {
			if re := r.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("FetchAdd round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
		if r, err := UnmarshalCondWriteReqView(data); err == nil {
			if re := r.Marshal(); !bytes.Equal(re, data) {
				t.Fatalf("CondWrite round trip mismatch:\n in: %x\nout: %x", data, re)
			}
		}
	})
}

// FuzzDecodeScan drives the scan payload decoder and the predicate
// evaluator: decode must never panic, a decoded request must re-marshal
// canonically, and EvalPred must stay total over arbitrary
// predicate/offset/arg/payload combinations.
func FuzzDecodeScan(f *testing.F) {
	f.Add((&ScanReq{Class: 1, Pred: PredEq, Offset: 0, Limit: 10, Arg: []byte("arg")}).Marshal(), []byte("payload"))
	f.Add((&ScanReq{Class: 3, Pred: PredGtU64, Offset: 4, Arg: []byte{1, 2, 3, 4, 5, 6, 7, 8}}).Marshal(), []byte("0123456789ab"))
	f.Add((&ScanReq{Pred: 99}).Marshal(), []byte{})
	f.Add([]byte{5}, []byte{1})

	f.Fuzz(func(t *testing.T, data, pay []byte) {
		r, err := UnmarshalScanReqView(data)
		if err != nil {
			return
		}
		if re := r.Marshal(); !bytes.Equal(re, data) {
			t.Fatalf("scan round trip mismatch:\n in: %x\nout: %x", data, re)
		}
		// Predicate evaluation is total: any decoded request against any
		// payload returns without panicking, and an overrunning range
		// never matches.
		match := EvalPred(r.Pred, int(r.Offset), r.Arg, pay)
		if match && int(r.Offset)+len(r.Arg) > len(pay) {
			t.Fatalf("predicate matched past the payload: off=%d arg=%d pay=%d", r.Offset, len(r.Arg), len(pay))
		}
	})
}
