package rpc

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"corm/internal/core"
	"corm/internal/timing"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	store, err := core.NewStore(core.Config{
		Workers:    4,
		Strategy:   core.StrategyCoRM,
		DataBacked: true,
		Remap:      core.RemapODPPrefetch,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(store)
	t.Cleanup(s.Close)
	return s
}

func TestRequestWireRoundtrip(t *testing.T) {
	f := func(op uint8, lo, hi uint64, size uint32, payload []byte) bool {
		req := Request{
			Op:      OpCode(op),
			Addr:    core.Addr{Lo: lo, Hi: hi},
			Size:    size,
			Payload: payload,
		}
		got, err := UnmarshalRequest(req.Marshal())
		if err != nil {
			return false
		}
		return got.Op == req.Op && got.Addr == req.Addr && got.Size == req.Size &&
			bytes.Equal(got.Payload, req.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseWireRoundtrip(t *testing.T) {
	f := func(status uint8, lo, hi uint64, payload []byte) bool {
		resp := Response{Status: Status(status), Addr: core.Addr{Lo: lo, Hi: hi}, Payload: payload}
		got, err := UnmarshalResponse(resp.Marshal())
		if err != nil {
			return false
		}
		return got.Status == resp.Status && got.Addr == resp.Addr &&
			bytes.Equal(got.Payload, resp.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireRejectsCorruptFrames(t *testing.T) {
	if _, err := UnmarshalRequest([]byte{1, 2, 3}); err == nil {
		t.Error("short request accepted")
	}
	req := Request{Op: OpRead, Payload: []byte("hello")}
	raw := req.Marshal()
	if _, err := UnmarshalRequest(raw[:len(raw)-2]); err == nil {
		t.Error("truncated request accepted")
	}
	if _, err := UnmarshalResponse([]byte{0}); err == nil {
		t.Error("short response accepted")
	}
}

func TestInfoRoundtrip(t *testing.T) {
	info := Info{BlockBytes: 1 << 20, Classes: []int{8, 16, 32}}
	got, err := UnmarshalInfo(info.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockBytes != info.BlockBytes || len(got.Classes) != 3 || got.Classes[2] != 32 {
		t.Fatalf("info = %+v", got)
	}
	if _, err := UnmarshalInfo([]byte{1}); err == nil {
		t.Error("short info accepted")
	}
}

func TestStatusErrMapping(t *testing.T) {
	cases := []error{nil, core.ErrNotFound, core.ErrCompacting, core.ErrInvalidAddr, core.ErrNoClass}
	for _, want := range cases {
		got := StatusOf(want).Err()
		if want == nil {
			if got != nil {
				t.Errorf("nil -> %v", got)
			}
			continue
		}
		if !errors.Is(got, want) {
			t.Errorf("roundtrip of %v = %v", want, got)
		}
	}
}

func TestServerAllocReadWriteFree(t *testing.T) {
	s := testServer(t)

	resp := s.Submit(Request{Op: OpAlloc, Size: 128})
	if resp.Status != StatusOK {
		t.Fatalf("alloc: %v", resp.Status)
	}
	addr := resp.Addr

	payload := bytes.Repeat([]byte{0xAB}, 128)
	if resp = s.Submit(Request{Op: OpWrite, Addr: addr, Payload: payload}); resp.Status != StatusOK {
		t.Fatalf("write: %v", resp.Status)
	}
	resp = s.Submit(Request{Op: OpRead, Addr: addr})
	if resp.Status != StatusOK || !bytes.Equal(resp.Payload, payload) {
		t.Fatalf("read: %v (%d bytes)", resp.Status, len(resp.Payload))
	}
	if resp = s.Submit(Request{Op: OpFree, Addr: addr}); resp.Status != StatusOK {
		t.Fatalf("free: %v", resp.Status)
	}
	if resp = s.Submit(Request{Op: OpRead, Addr: addr}); resp.Status != StatusNotFound {
		t.Fatalf("read-after-free: %v", resp.Status)
	}
}

func TestServerInfo(t *testing.T) {
	s := testServer(t)
	resp := s.Submit(Request{Op: OpInfo})
	if resp.Status != StatusOK {
		t.Fatal(resp.Status)
	}
	info, err := UnmarshalInfo(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.BlockBytes != 4096 || len(info.Classes) == 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestServerErrors(t *testing.T) {
	s := testServer(t)
	if resp := s.Submit(Request{Op: OpAlloc, Size: 1 << 30}); resp.Status != StatusNoClass {
		t.Errorf("oversized alloc: %v", resp.Status)
	}
	bogus := core.MakeAddr(0xbeef00, 1, 1, 1)
	if resp := s.Submit(Request{Op: OpRead, Addr: bogus}); resp.Status != StatusInvalid {
		t.Errorf("bogus read: %v", resp.Status)
	}
	if resp := s.Submit(Request{Op: OpCode(200)}); resp.Status != StatusInvalid {
		t.Errorf("unknown op: %v", resp.Status)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			var addrs []core.Addr
			for i := 0; i < 100; i++ {
				resp := s.Submit(Request{Op: OpAlloc, Size: 64})
				if resp.Status != StatusOK {
					t.Errorf("client %d alloc: %v", c, resp.Status)
					return
				}
				addrs = append(addrs, resp.Addr)
			}
			buf := bytes.Repeat([]byte{byte(c)}, 64)
			for _, a := range addrs {
				if resp := s.Submit(Request{Op: OpWrite, Addr: a, Payload: buf}); resp.Status != StatusOK {
					t.Errorf("write: %v", resp.Status)
					return
				}
			}
			for _, a := range addrs {
				resp := s.Submit(Request{Op: OpRead, Addr: a})
				if resp.Status != StatusOK || !bytes.Equal(resp.Payload, buf) {
					t.Errorf("read: %v", resp.Status)
					return
				}
				if resp := s.Submit(Request{Op: OpFree, Addr: a}); resp.Status != StatusOK {
					t.Errorf("free: %v", resp.Status)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerReleasePtr(t *testing.T) {
	s := testServer(t)
	resp := s.Submit(Request{Op: OpAlloc, Size: 64})
	addr := resp.Addr
	resp = s.Submit(Request{Op: OpRelease, Addr: addr})
	if resp.Status != StatusOK {
		t.Fatalf("release: %v", resp.Status)
	}
	// Released-in-place pointer still reads.
	if resp = s.Submit(Request{Op: OpRead, Addr: resp.Addr}); resp.Status != StatusOK {
		t.Fatalf("read after release: %v", resp.Status)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	store, _ := core.NewStore(core.Config{DataBacked: true, Strategy: core.StrategyCoRM,
		Remap: core.RemapODPPrefetch, Model: timing.Default().WithNIC(timing.ConnectX5())})
	s := NewServer(store)
	s.Close()
	if resp := s.Submit(Request{Op: OpInfo}); resp.Status != StatusError {
		t.Fatalf("submit after close: %v", resp.Status)
	}
	s.Close() // idempotent
}
