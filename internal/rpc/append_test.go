package rpc

import (
	"bytes"
	"testing"

	"corm/internal/core"
)

// submitAppend runs one request through the zero-copy append path and
// decodes the marshalled response it produced.
func submitAppend(t *testing.T, s *Server, req Request) Response {
	t.Helper()
	out := s.SubmitAppend(req, nil)
	resp, err := UnmarshalResponse(out)
	if err != nil {
		t.Fatalf("SubmitAppend produced an undecodable response: %v", err)
	}
	return resp
}

// TestSubmitAppendMatchesSubmit: the append path must be observationally
// identical to Submit for every op shape — same statuses, same corrected
// addresses, same payload bytes.
func TestSubmitAppendMatchesSubmit(t *testing.T) {
	s := testServer(t)

	alloc := submitAppend(t, s, Request{Op: OpAlloc, Size: 64})
	if alloc.Status != StatusOK {
		t.Fatalf("alloc via append path: %v", alloc.Status)
	}
	addr := alloc.Addr

	payload := bytes.Repeat([]byte{0xAB}, 64)
	if w := submitAppend(t, s, Request{Op: OpWrite, Addr: addr, Payload: payload}); w.Status != StatusOK {
		t.Fatalf("write via append path: %v", w.Status)
	}

	got := submitAppend(t, s, Request{Op: OpRead, Addr: addr, Size: 64})
	want := s.Submit(Request{Op: OpRead, Addr: addr, Size: 64})
	if got.Status != want.Status || got.Addr != want.Addr || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("append read %+v, Submit read %+v", got, want)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("read back %x, wrote %x", got.Payload, payload)
	}

	// Partial read: Size below the class size truncates the payload.
	if short := submitAppend(t, s, Request{Op: OpRead, Addr: addr, Size: 16}); len(short.Payload) != 16 ||
		!bytes.Equal(short.Payload, payload[:16]) {
		t.Fatalf("partial read returned %d bytes", len(short.Payload))
	}

	// Error shapes must match too.
	bad := Request{Op: OpRead, Addr: core.Addr{Lo: ^uint64(0), Hi: ^uint64(0)}}
	if ga, gs := submitAppend(t, s, bad), s.Submit(bad); ga.Status != gs.Status {
		t.Fatalf("append bad-read status %v, Submit %v", ga.Status, gs.Status)
	}
	if free := submitAppend(t, s, Request{Op: OpFree, Addr: addr}); free.Status != StatusOK {
		t.Fatalf("free via append path: %v", free.Status)
	}
}

// TestSubmitAppendPreservesPrefix: the response appends after whatever the
// caller already staged in dst (the transport puts the frame header there).
func TestSubmitAppendPreservesPrefix(t *testing.T) {
	s := testServer(t)
	prefix := []byte("frame-header")
	out := s.SubmitAppend(Request{Op: OpInfo}, append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("prefix clobbered: %q", out[:len(prefix)])
	}
	resp, err := UnmarshalResponse(out[len(prefix):])
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("info after prefix: %v %v", resp.Status, err)
	}
}

// TestSubmitAppendClosed: a closed server answers StatusError on the
// append path, mirroring Submit.
func TestSubmitAppendClosed(t *testing.T) {
	s := testServer(t)
	s.Close()
	if resp := submitAppend(t, s, Request{Op: OpInfo}); resp.Status != StatusError {
		t.Fatalf("closed server answered %v", resp.Status)
	}
}

// TestSubmitAppendBatch: the batched append path agrees with the batched
// Submit path sub-op by sub-op, across enough sub-ops to exercise the
// worker-token sharding (when the host has spare parallelism) and the
// single-chunk fast path.
func TestSubmitAppendBatch(t *testing.T) {
	s := testServer(t)
	for _, n := range []int{1, 4, 48} {
		addrs := make([]core.Addr, n)
		payload := bytes.Repeat([]byte{0x5C}, 64)
		for i := range addrs {
			a := submitAppend(t, s, Request{Op: OpAlloc, Size: 64})
			if a.Status != StatusOK {
				t.Fatalf("alloc %d: %v", i, a.Status)
			}
			addrs[i] = a.Addr
			if w := s.Submit(Request{Op: OpWrite, Addr: addrs[i], Payload: payload}); w.Status != StatusOK {
				t.Fatalf("write %d: %v", i, w.Status)
			}
		}
		subs := make([]Request, n)
		for i := range subs {
			subs[i] = Request{Op: OpRead, Addr: addrs[i], Size: 64}
		}
		// A nested batch and a bad op must fail per-sub, not poison the frame.
		subs[0] = Request{Op: OpBatch}
		if n > 2 {
			subs[1] = Request{Op: OpCode(200)}
		}
		body := MarshalBatchRequests(nil, subs)

		out := s.SubmitAppend(Request{Op: OpBatch, Payload: body}, nil)
		resp, err := UnmarshalResponse(out)
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("n=%d: batch append: %v %v", n, resp.Status, err)
		}
		gotSubs, err := DecodeBatchResponses(resp.Payload, nil)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		wantResp := s.Submit(Request{Op: OpBatch, Payload: body})
		wantSubs, err := DecodeBatchResponses(wantResp.Payload, nil)
		if err != nil {
			t.Fatalf("n=%d: decode Submit batch: %v", n, err)
		}
		if len(gotSubs) != n || len(wantSubs) != n {
			t.Fatalf("n=%d: got %d/%d sub-responses", n, len(gotSubs), len(wantSubs))
		}
		for i := range gotSubs {
			if gotSubs[i].Status != wantSubs[i].Status || gotSubs[i].Addr != wantSubs[i].Addr ||
				!bytes.Equal(gotSubs[i].Payload, wantSubs[i].Payload) {
				t.Fatalf("n=%d sub %d: append %+v vs Submit %+v", n, i, gotSubs[i], wantSubs[i])
			}
		}
		if gotSubs[0].Status != StatusInvalid {
			t.Fatalf("nested batch answered %v, want invalid", gotSubs[0].Status)
		}
	}
}

// TestSubmitAppendBatchCorrupt: a malformed batch payload yields
// StatusInvalid, and an empty batch a well-formed zero-count response.
func TestSubmitAppendBatchCorrupt(t *testing.T) {
	s := testServer(t)
	if resp := submitAppend(t, s, Request{Op: OpBatch, Payload: []byte{1, 2, 3}}); resp.Status != StatusInvalid {
		t.Fatalf("corrupt batch answered %v", resp.Status)
	}
	empty := submitAppend(t, s, Request{Op: OpBatch, Payload: MarshalBatchRequests(nil, nil)})
	if empty.Status != StatusOK {
		t.Fatalf("empty batch answered %v", empty.Status)
	}
	if subs, err := DecodeBatchResponses(empty.Payload, nil); err != nil || len(subs) != 0 {
		t.Fatalf("empty batch decoded to %d subs, err %v", len(subs), err)
	}
}

// TestUnmarshalViews: the alias-not-copy decoders agree with their copying
// twins and actually alias the input buffer.
func TestUnmarshalViews(t *testing.T) {
	req := Request{Op: OpWrite, Addr: core.Addr{Lo: 3, Hi: 5}, Size: 9, Payload: []byte("payload")}
	buf := req.Marshal()
	view, err := UnmarshalRequestView(buf)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := UnmarshalRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if view.Op != copied.Op || view.Addr != copied.Addr || view.Size != copied.Size ||
		!bytes.Equal(view.Payload, copied.Payload) {
		t.Fatalf("view %+v vs copy %+v", view, copied)
	}
	buf[len(buf)-1] ^= 0xFF
	if bytes.Equal(view.Payload, copied.Payload) {
		t.Fatal("request view did not alias the buffer")
	}

	resp := Response{Status: StatusOK, Addr: core.Addr{Lo: 1}, Payload: []byte("resp")}
	rbuf := resp.Marshal()
	rview, err := UnmarshalResponseView(rbuf)
	if err != nil {
		t.Fatal(err)
	}
	rcopy, err := UnmarshalResponse(rbuf)
	if err != nil {
		t.Fatal(err)
	}
	if rview.Status != rcopy.Status || !bytes.Equal(rview.Payload, rcopy.Payload) {
		t.Fatalf("view %+v vs copy %+v", rview, rcopy)
	}
	rbuf[len(rbuf)-1] ^= 0xFF
	if bytes.Equal(rview.Payload, rcopy.Payload) {
		t.Fatal("response view did not alias the buffer")
	}

	// Error cases: short frames and length-field lies.
	if _, err := UnmarshalRequestView([]byte{1, 2}); err == nil {
		t.Fatal("short request view decoded")
	}
	bad := req.Marshal()
	bad[21] ^= 0xFF
	if _, err := UnmarshalRequestView(bad); err == nil {
		t.Fatal("length-lying request view decoded")
	}
	if _, err := UnmarshalResponseView([]byte{1}); err == nil {
		t.Fatal("short response view decoded")
	}
	rbad := resp.Marshal()
	rbad[17] ^= 0xFF
	if _, err := UnmarshalResponseView(rbad); err == nil {
		t.Fatal("length-lying response view decoded")
	}
}

// TestOpCodeString: every opcode names itself; unknown codes print their
// numeric value.
func TestOpCodeString(t *testing.T) {
	want := map[OpCode]string{
		OpAlloc: "alloc", OpFree: "free", OpRead: "read", OpWrite: "write",
		OpRelease: "release", OpInfo: "info", OpBatch: "batch",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if got := OpCode(99).String(); got != "op(99)" {
		t.Fatalf("unknown opcode printed %q", got)
	}
}

// TestSubResponsePool: the pooled sub-response slices come back empty and
// survive a put/get cycle without carrying stale elements.
func TestSubResponsePool(t *testing.T) {
	s := GetSubResponses()
	if len(s) != 0 {
		t.Fatalf("pooled sub-responses arrive with %d elements", len(s))
	}
	s = append(s, Response{Status: StatusOK, Payload: []byte("x")})
	PutSubResponses(s)
	again := GetSubResponses()
	if len(again) != 0 {
		t.Fatalf("recycled sub-responses arrive with %d elements", len(again))
	}
	PutSubResponses(again)
}

// TestServerStoreAccessor: the store handed to NewServer is the one
// exposed.
func TestServerStoreAccessor(t *testing.T) {
	s := testServer(t)
	if s.Store() == nil {
		t.Fatal("Store() returned nil")
	}
	if s.Store().Workers() < 1 {
		t.Fatal("store reports no workers")
	}
}
