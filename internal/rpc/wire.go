// Package rpc implements CoRM's RPC layer (§2.2.2): the wire protocol for
// memory-management operations and the worker pool that drains the shared
// RPC queue. One-sided reads never pass through here — that is the point
// of the paper — but every other Table 2 operation does.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"corm/internal/core"
)

// OpCode identifies an RPC operation.
type OpCode uint8

const (
	OpAlloc OpCode = iota + 1
	OpFree
	OpRead
	OpWrite
	OpRelease
	OpInfo  // fetch store parameters (classes, block size) at connect time
	OpBatch // N sub-operations in one frame; see batch.go for the framing

	// Near-data compute: operations executed next to the data, under the
	// per-block locks, in one round trip (pushdown.go has the payload
	// encodings). They close the two-round-trip window a client-side
	// read-modify-write leaves open to compaction.
	OpCAS       // compare-and-swap a byte range inside the object
	OpFetchAdd  // fetch-and-add a little-endian u64 inside the object
	OpCondWrite // conditional full-object write (if-version / if-absent)
	OpScan      // predicate-filtered scan over one size class
	OpMultiRMW  // batch restricted to CAS/FetchAdd/CondWrite sub-ops
)

func (o OpCode) String() string {
	switch o {
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRelease:
		return "release"
	case OpInfo:
		return "info"
	case OpBatch:
		return "batch"
	case OpCAS:
		return "cas"
	case OpFetchAdd:
		return "fetchadd"
	case OpCondWrite:
		return "condwrite"
	case OpScan:
		return "scan"
	case OpMultiRMW:
		return "multirmw"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is an RPC result code.
type Status uint8

const (
	StatusOK Status = iota
	StatusNotFound
	StatusCompacting
	StatusInvalid
	StatusNoClass
	StatusError
	// StatusTooLarge rejects a batch whose packed response would exceed the
	// transport frame limit; the client must split the batch.
	StatusTooLarge
	// StatusConflict reports a pushdown condition that did not hold (CAS
	// compare mismatch, CondWrite version mismatch). The operation was not
	// applied; retrying it verbatim is safe but will conflict again until
	// the caller refreshes its view.
	StatusConflict
	// StatusNoData rejects a data-dependent pushdown op on an
	// accounting-only (non-data-backed) store.
	StatusNoData
	// StatusThrottled sheds a request the server refused to queue: every
	// worker was busy and the waiting line was at its configured depth
	// limit. The operation was NOT attempted — retrying after backoff is
	// always safe, and callers should treat it as overload pressure, not
	// as a node fault (it must never trip a circuit breaker).
	StatusThrottled
	// StatusCorrupt reports a memory-safety canary violation: the slot's
	// guard bytes were overwritten, so the payload cannot be trusted.
	StatusCorrupt
)

// ErrTooLarge is the client-side sentinel for StatusTooLarge.
var ErrTooLarge = errors.New("rpc: batch response exceeds frame limit")

// ErrThrottled is the client-side sentinel for StatusThrottled: the server
// shed the request under load before executing it. Deliberately NOT a
// transport error — the connection is healthy, the node is just saturated.
var ErrThrottled = errors.New("rpc: request shed by server load control")

// StatusOf maps store errors onto wire codes.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, core.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, core.ErrCompacting):
		return StatusCompacting
	case errors.Is(err, core.ErrInvalidAddr):
		return StatusInvalid
	case errors.Is(err, core.ErrNoClass):
		return StatusNoClass
	case errors.Is(err, core.ErrConflict):
		return StatusConflict
	case errors.Is(err, core.ErrNoData):
		return StatusNoData
	case errors.Is(err, ErrThrottled):
		return StatusThrottled
	case errors.Is(err, core.ErrCorruption):
		return StatusCorrupt
	case errors.Is(err, core.ErrShortBuffer):
		// A pushdown range that overruns the object is a malformed request,
		// not a server fault.
		return StatusInvalid
	}
	return StatusError
}

// Err converts a non-OK status back into a sentinel error.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotFound:
		return core.ErrNotFound
	case StatusCompacting:
		return core.ErrCompacting
	case StatusInvalid:
		return core.ErrInvalidAddr
	case StatusNoClass:
		return core.ErrNoClass
	case StatusTooLarge:
		return ErrTooLarge
	case StatusConflict:
		return core.ErrConflict
	case StatusNoData:
		return core.ErrNoData
	case StatusThrottled:
		return ErrThrottled
	case StatusCorrupt:
		return core.ErrCorruption
	}
	return errors.New("rpc: remote error")
}

// Request is one RPC call.
type Request struct {
	Op      OpCode
	Addr    core.Addr
	Size    uint32 // Alloc: object size; Read: buffer size
	Payload []byte // Write: object contents
}

// Response is the reply.
type Response struct {
	Status  Status
	Addr    core.Addr // corrected/new pointer (Alloc, Release, corrected ops)
	Payload []byte    // Read results; Info: encoded parameters
}

const reqHeader = 1 + 16 + 4 + 4 // op + addr + size + payload len

// addrFrom decodes a 16-byte little-endian Addr at the head of buf.
func addrFrom(buf []byte) core.Addr {
	return core.Addr{Lo: binary.LittleEndian.Uint64(buf), Hi: binary.LittleEndian.Uint64(buf[8:])}
}

// Marshal encodes the request.
func (r *Request) Marshal() []byte {
	return r.MarshalAppend(make([]byte, 0, reqHeader+len(r.Payload)))
}

// MarshalAppend encodes the request onto dst — the allocation-free variant
// the transport hot path uses with pooled buffers.
func (r *Request) MarshalAppend(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, reqHeader+len(r.Payload))...)
	buf := dst[off:]
	buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(buf[1:], r.Addr.Lo)
	binary.LittleEndian.PutUint64(buf[9:], r.Addr.Hi)
	binary.LittleEndian.PutUint32(buf[17:], r.Size)
	binary.LittleEndian.PutUint32(buf[21:], uint32(len(r.Payload)))
	copy(buf[25:], r.Payload)
	return dst
}

// UnmarshalRequest decodes a request frame.
func UnmarshalRequest(buf []byte) (Request, error) {
	if len(buf) < reqHeader {
		return Request{}, fmt.Errorf("rpc: short request (%d bytes)", len(buf))
	}
	r := Request{
		Op:   OpCode(buf[0]),
		Addr: core.Addr{Lo: binary.LittleEndian.Uint64(buf[1:]), Hi: binary.LittleEndian.Uint64(buf[9:])},
		Size: binary.LittleEndian.Uint32(buf[17:]),
	}
	n := binary.LittleEndian.Uint32(buf[21:])
	if int(n) != len(buf)-reqHeader {
		return Request{}, fmt.Errorf("rpc: payload length mismatch (%d vs %d)", n, len(buf)-reqHeader)
	}
	if n > 0 {
		r.Payload = append([]byte(nil), buf[25:]...)
	}
	return r, nil
}

// UnmarshalRequestView decodes a request frame without copying: the
// returned request's Payload aliases buf. The transport server uses it
// with receive-buffer leases — the frame stays leased until the request
// is fully executed, so the alias is safe.
func UnmarshalRequestView(buf []byte) (Request, error) {
	if len(buf) < reqHeader {
		return Request{}, fmt.Errorf("rpc: short request (%d bytes)", len(buf))
	}
	r := Request{
		Op:   OpCode(buf[0]),
		Addr: core.Addr{Lo: binary.LittleEndian.Uint64(buf[1:]), Hi: binary.LittleEndian.Uint64(buf[9:])},
		Size: binary.LittleEndian.Uint32(buf[17:]),
	}
	n := binary.LittleEndian.Uint32(buf[21:])
	if int(n) != len(buf)-reqHeader {
		return Request{}, fmt.Errorf("rpc: payload length mismatch (%d vs %d)", n, len(buf)-reqHeader)
	}
	if n > 0 {
		r.Payload = buf[25:]
	}
	return r, nil
}

const respHeader = 1 + 16 + 4

// Marshal encodes the response.
func (r *Response) Marshal() []byte {
	return r.MarshalAppend(make([]byte, 0, respHeader+len(r.Payload)))
}

// MarshalAppend encodes the response onto dst — the allocation-free variant
// the transport hot path uses with pooled buffers.
func (r *Response) MarshalAppend(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, respHeader+len(r.Payload))...)
	buf := dst[off:]
	buf[0] = byte(r.Status)
	binary.LittleEndian.PutUint64(buf[1:], r.Addr.Lo)
	binary.LittleEndian.PutUint64(buf[9:], r.Addr.Hi)
	binary.LittleEndian.PutUint32(buf[17:], uint32(len(r.Payload)))
	copy(buf[21:], r.Payload)
	return dst
}

// UnmarshalResponse decodes a response frame.
func UnmarshalResponse(buf []byte) (Response, error) {
	if len(buf) < respHeader {
		return Response{}, fmt.Errorf("rpc: short response (%d bytes)", len(buf))
	}
	r := Response{
		Status: Status(buf[0]),
		Addr:   core.Addr{Lo: binary.LittleEndian.Uint64(buf[1:]), Hi: binary.LittleEndian.Uint64(buf[9:])},
	}
	n := binary.LittleEndian.Uint32(buf[17:])
	if int(n) != len(buf)-respHeader {
		return Response{}, fmt.Errorf("rpc: payload length mismatch")
	}
	if n > 0 {
		r.Payload = append([]byte(nil), buf[21:]...)
	}
	return r, nil
}

// UnmarshalResponseView decodes a response frame without copying: the
// returned response's Payload aliases buf. Clients use it with
// receive-buffer leases (transport.Conn.CallLease) and must keep the
// lease alive while the payload is referenced.
func UnmarshalResponseView(buf []byte) (Response, error) {
	if len(buf) < respHeader {
		return Response{}, fmt.Errorf("rpc: short response (%d bytes)", len(buf))
	}
	r := Response{
		Status: Status(buf[0]),
		Addr:   core.Addr{Lo: binary.LittleEndian.Uint64(buf[1:]), Hi: binary.LittleEndian.Uint64(buf[9:])},
	}
	n := binary.LittleEndian.Uint32(buf[17:])
	if int(n) != len(buf)-respHeader {
		return Response{}, fmt.Errorf("rpc: payload length mismatch")
	}
	if n > 0 {
		r.Payload = buf[21:]
	}
	return r, nil
}

// Info carries store parameters to clients at connect time.
type Info struct {
	BlockBytes  int
	Consistency core.ConsistencyMode
	Classes     []int
}

// Marshal encodes the info payload.
func (i *Info) Marshal() []byte {
	buf := make([]byte, 12+4*len(i.Classes))
	binary.LittleEndian.PutUint32(buf[0:], uint32(i.BlockBytes))
	binary.LittleEndian.PutUint32(buf[4:], uint32(i.Consistency))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(i.Classes)))
	for k, c := range i.Classes {
		binary.LittleEndian.PutUint32(buf[12+4*k:], uint32(c))
	}
	return buf
}

// UnmarshalInfo decodes the info payload.
func UnmarshalInfo(buf []byte) (Info, error) {
	if len(buf) < 12 {
		return Info{}, errors.New("rpc: short info")
	}
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	if len(buf) != 12+4*n {
		return Info{}, errors.New("rpc: info length mismatch")
	}
	info := Info{
		BlockBytes:  int(binary.LittleEndian.Uint32(buf[0:])),
		Consistency: core.ConsistencyMode(binary.LittleEndian.Uint32(buf[4:])),
	}
	for k := 0; k < n; k++ {
		info.Classes = append(info.Classes, int(binary.LittleEndian.Uint32(buf[12+4*k:])))
	}
	return info, nil
}
