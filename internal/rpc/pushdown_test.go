package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"testing"

	"corm/internal/core"
)

// TestPushdownEncodingRoundtrips: each pushdown payload encoding is
// canonical — marshal, view-unmarshal, re-marshal must be byte-identical,
// and the decoded fields must match.
func TestPushdownEncodingRoundtrips(t *testing.T) {
	cas := CASReq{Token: 0xfeed, Offset: 12, Old: []byte("old"), New: []byte("newer")}
	got, err := UnmarshalCASReqView(cas.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Token != cas.Token || got.Offset != cas.Offset ||
		!bytes.Equal(got.Old, cas.Old) || !bytes.Equal(got.New, cas.New) {
		t.Fatalf("CAS round trip: got %+v want %+v", got, cas)
	}
	if !bytes.Equal(got.Marshal(), cas.Marshal()) {
		t.Fatal("CAS re-marshal differs")
	}

	fa := FAddReq{Token: 7, Offset: 8, Delta: -3}
	gfa, err := UnmarshalFAddReq(fa.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if gfa != fa {
		t.Fatalf("FetchAdd round trip: got %+v want %+v", gfa, fa)
	}

	cw := CondWriteReq{Token: 9, Mode: CondIfVersion, Version: 4, Value: []byte("v")}
	gcw, err := UnmarshalCondWriteReqView(cw.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if gcw.Token != cw.Token || gcw.Mode != cw.Mode || gcw.Version != cw.Version ||
		!bytes.Equal(gcw.Value, cw.Value) {
		t.Fatalf("CondWrite round trip: got %+v want %+v", gcw, cw)
	}

	sc := ScanReq{Class: 2, Pred: PredGtU64, Offset: 16, Limit: 5, Arg: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	gsc, err := UnmarshalScanReqView(sc.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if gsc.Class != sc.Class || gsc.Pred != sc.Pred || gsc.Offset != sc.Offset ||
		gsc.Limit != sc.Limit || !bytes.Equal(gsc.Arg, sc.Arg) {
		t.Fatalf("Scan round trip: got %+v want %+v", gsc, sc)
	}

	// Truncated and inflated buffers must error, never panic.
	for _, enc := range [][]byte{cas.Marshal(), cw.Marshal(), sc.Marshal()} {
		if _, err := UnmarshalCASReqView(enc[:len(enc)-1]); err == nil {
			if _, err2 := UnmarshalCondWriteReqView(enc[:len(enc)-1]); err2 == nil {
				if _, err3 := UnmarshalScanReqView(enc[:len(enc)-1]); err3 == nil {
					t.Fatal("every decoder accepted a truncated buffer")
				}
			}
		}
	}
	if _, err := UnmarshalFAddReq(make([]byte, faddReqBytes+1)); err == nil {
		t.Fatal("FetchAdd decoder accepted an oversized buffer")
	}
}

func u64le(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// TestEvalPred exercises the predicate table, including the
// never-match-on-overrun rule.
func TestEvalPred(t *testing.T) {
	pay := append(u64le(100), []byte("suffix")...)
	cases := []struct {
		name string
		pred uint8
		off  int
		arg  []byte
		want bool
	}{
		{"eq match", PredEq, 8, []byte("suffix"), true},
		{"eq mismatch", PredEq, 8, []byte("suffiy"), false},
		{"ne", PredNe, 8, []byte("suffiy"), true},
		{"lt true", PredLtU64, 0, u64le(101), true},
		{"lt false", PredLtU64, 0, u64le(100), false},
		{"gt true", PredGtU64, 0, u64le(99), true},
		{"gt false", PredGtU64, 0, u64le(100), false},
		{"overrun never matches", PredEq, 12, []byte("suffix"), false},
		{"negative offset", PredEq, -1, []byte("s"), false},
		{"numeric overrun", PredGtU64, 10, u64le(0), false},
		{"numeric short arg", PredGtU64, 0, []byte{1}, false},
		{"unknown pred", 99, 0, []byte{1}, false},
	}
	for _, c := range cases {
		if got := EvalPred(c.pred, c.off, c.arg, pay); got != c.want {
			t.Errorf("%s: EvalPred=%v want %v", c.name, got, c.want)
		}
	}
}

// pushdownObject allocates one written object on the test server.
func pushdownObject(t *testing.T, s *Server, size int, payload []byte) core.Addr {
	t.Helper()
	resp := s.Submit(Request{Op: OpAlloc, Size: uint32(size)})
	if resp.Status != StatusOK {
		t.Fatalf("alloc: %v", resp.Status)
	}
	addr := resp.Addr
	if resp := s.Submit(Request{Op: OpWrite, Addr: addr, Payload: payload}); resp.Status != StatusOK {
		t.Fatalf("write: %v", resp.Status)
	}
	return addr
}

// TestSubmitPushdownOps drives the five opcodes through the Submit path
// end to end against a live store.
func TestSubmitPushdownOps(t *testing.T) {
	s := testServer(t)
	addr := pushdownObject(t, s, 16, make([]byte, 16))

	// FetchAdd: two adds observe 0 then 5.
	fa := FAddReq{Token: 1, Offset: 0, Delta: 5}
	resp := s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()})
	if resp.Status != StatusOK || binary.LittleEndian.Uint64(resp.Payload) != 0 {
		t.Fatalf("first fetchadd: %v %x", resp.Status, resp.Payload)
	}
	fa.Token = 2
	resp = s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()})
	if resp.Status != StatusOK || binary.LittleEndian.Uint64(resp.Payload) != 5 {
		t.Fatalf("second fetchadd: %v %x", resp.Status, resp.Payload)
	}

	// CAS: success then conflict.
	cas := CASReq{Token: 3, Offset: 0, Old: u64le(10), New: u64le(42)}
	if resp = s.Submit(Request{Op: OpCAS, Addr: addr, Payload: cas.Marshal()}); resp.Status != StatusOK {
		t.Fatalf("cas: %v", resp.Status)
	}
	cas.Token = 4
	resp = s.Submit(Request{Op: OpCAS, Addr: addr, Payload: cas.Marshal()})
	if resp.Status != StatusConflict || len(resp.Payload) != 0 {
		t.Fatalf("cas conflict: %v %x", resp.Status, resp.Payload)
	}
	if !errors.Is(resp.Status.Err(), core.ErrConflict) {
		t.Fatalf("conflict maps to %v", resp.Status.Err())
	}

	// CondWrite if-version: the store version moved with every mutation
	// above; read it back via a conflict probe, then succeed with it.
	cw := CondWriteReq{Token: 5, Mode: CondIfVersion, Version: 0xffff, Value: u64le(1)}
	resp = s.Submit(Request{Op: OpCondWrite, Addr: addr, Payload: cw.Marshal()})
	if resp.Status != StatusConflict || len(resp.Payload) != 4 {
		t.Fatalf("condwrite probe: %v %x", resp.Status, resp.Payload)
	}
	observed := binary.LittleEndian.Uint32(resp.Payload)
	cw = CondWriteReq{Token: 6, Mode: CondIfVersion, Version: observed, Value: u64le(77)}
	resp = s.Submit(Request{Op: OpCondWrite, Addr: addr, Payload: cw.Marshal()})
	if resp.Status != StatusOK || binary.LittleEndian.Uint32(resp.Payload) != observed+1 {
		t.Fatalf("condwrite: %v %x", resp.Status, resp.Payload)
	}

	// CondWrite if-absent on a fresh object, twice.
	fresh := s.Submit(Request{Op: OpAlloc, Size: 16})
	if fresh.Status != StatusOK {
		t.Fatalf("alloc: %v", fresh.Status)
	}
	cw = CondWriteReq{Token: 7, Mode: CondIfAbsent, Value: u64le(1)}
	if resp = s.Submit(Request{Op: OpCondWrite, Addr: fresh.Addr, Payload: cw.Marshal()}); resp.Status != StatusOK {
		t.Fatalf("if-absent first: %v", resp.Status)
	}
	cw.Token = 8
	if resp = s.Submit(Request{Op: OpCondWrite, Addr: fresh.Addr, Payload: cw.Marshal()}); resp.Status != StatusConflict {
		t.Fatalf("if-absent second: %v", resp.Status)
	}

	// Scan: exactly the two objects of this class exist; one matches.
	sc := ScanReq{Class: addr.Class(), Pred: PredEq, Offset: 0, Arg: u64le(77)}
	resp = s.Submit(Request{Op: OpScan, Payload: sc.Marshal()})
	if resp.Status != StatusOK {
		t.Fatalf("scan: %v", resp.Status)
	}
	subs, err := DecodeBatchResponses(resp.Payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || binary.LittleEndian.Uint64(subs[0].Payload) != 77 {
		t.Fatalf("scan matches: %d", len(subs))
	}
	if subs[0].Addr.VAddr() != addr.VAddr() {
		t.Fatalf("scan returned pointer %v, want %v", subs[0].Addr, addr)
	}

	// MultiRMW: a fetch-add and a CAS in one frame; a nested read is
	// rejected per sub-op.
	body := AppendBatchHeader(nil, 2)
	faSub := FAddReq{Token: 9, Offset: 8, Delta: 1}
	sub := Request{Op: OpFetchAdd, Addr: addr, Payload: faSub.Marshal()}
	body = AppendSubRequest(body, &sub)
	sub = Request{Op: OpRead, Addr: addr, Size: 16}
	body = AppendSubRequest(body, &sub)
	resp = s.Submit(Request{Op: OpMultiRMW, Payload: body})
	if resp.Status != StatusOK {
		t.Fatalf("multirmw: %v", resp.Status)
	}
	subs, err = DecodeBatchResponses(resp.Payload, nil)
	if err != nil || len(subs) != 2 {
		t.Fatalf("multirmw decode: %v %d", err, len(subs))
	}
	if subs[0].Status != StatusOK {
		t.Fatalf("rmw fetchadd: %v", subs[0].Status)
	}
	if subs[1].Status != StatusInvalid {
		t.Fatalf("nested read in MultiRMW must be rejected, got %v", subs[1].Status)
	}
}

// TestPushdownDedupReplay: re-submitting the same token replays the
// recorded outcome without re-applying the mutation — the property that
// makes pushdown mutations safe to retry across reconnects.
func TestPushdownDedupReplay(t *testing.T) {
	s := testServer(t)
	addr := pushdownObject(t, s, 16, make([]byte, 16))

	fa := FAddReq{Token: 0xabc, Offset: 0, Delta: 7}
	first := s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()})
	if first.Status != StatusOK {
		t.Fatalf("fetchadd: %v", first.Status)
	}
	replay := s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()})
	if replay.Status != StatusOK || !bytes.Equal(replay.Payload, first.Payload) {
		t.Fatalf("replay: %v %x want %x", replay.Status, replay.Payload, first.Payload)
	}
	// The replay must not have applied the delta again.
	fa = FAddReq{Token: 0xdef, Offset: 0, Delta: 0}
	probe := s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()})
	if v := binary.LittleEndian.Uint64(probe.Payload); v != 7 {
		t.Fatalf("counter is %d after replay, want 7", v)
	}

	// Conflict outcomes replay too.
	cas := CASReq{Token: 0x111, Offset: 0, Old: u64le(999), New: u64le(1)}
	c1 := s.Submit(Request{Op: OpCAS, Addr: addr, Payload: cas.Marshal()})
	c2 := s.Submit(Request{Op: OpCAS, Addr: addr, Payload: cas.Marshal()})
	if c1.Status != StatusConflict || c2.Status != StatusConflict {
		t.Fatalf("conflict replay: %v %v", c1.Status, c2.Status)
	}

	// Token 0 opts out of dedup: both submissions apply.
	fa = FAddReq{Token: 0, Offset: 0, Delta: 1}
	s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()})
	s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()})
	fa = FAddReq{Token: 0x222, Offset: 0, Delta: 0}
	probe = s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()})
	if v := binary.LittleEndian.Uint64(probe.Payload); v != 9 {
		t.Fatalf("counter is %d after tokenless adds, want 9", v)
	}
}

// TestPushdownInvalidInputs: malformed payloads and bad parameters surface
// as StatusInvalid, never panics or corruption.
func TestPushdownInvalidInputs(t *testing.T) {
	s := testServer(t)
	addr := pushdownObject(t, s, 16, make([]byte, 16))

	for _, req := range []Request{
		{Op: OpCAS, Addr: addr, Payload: []byte{1, 2, 3}},
		{Op: OpFetchAdd, Addr: addr, Payload: make([]byte, faddReqBytes-1)},
		{Op: OpCondWrite, Addr: addr, Payload: []byte{0}},
		{Op: OpScan, Payload: []byte{9}},
	} {
		if resp := s.Submit(req); resp.Status != StatusInvalid {
			t.Errorf("op %v with garbage payload: %v, want StatusInvalid", req.Op, resp.Status)
		}
	}

	// Out-of-range offset is a short-buffer error carried as StatusInvalid.
	fa := FAddReq{Token: 1, Offset: 1 << 20, Delta: 1}
	if resp := s.Submit(Request{Op: OpFetchAdd, Addr: addr, Payload: fa.Marshal()}); resp.Status != StatusInvalid {
		t.Errorf("oob fetchadd: %v", resp.Status)
	}
	// Unknown CondWrite mode.
	cw := CondWriteReq{Token: 2, Mode: 99, Value: []byte{1}}
	if resp := s.Submit(Request{Op: OpCondWrite, Addr: addr, Payload: cw.Marshal()}); resp.Status != StatusInvalid {
		t.Errorf("bad condwrite mode: %v", resp.Status)
	}
	// Unknown predicate.
	sc := ScanReq{Class: addr.Class(), Pred: 99}
	if resp := s.Submit(Request{Op: OpScan, Payload: sc.Marshal()}); resp.Status != StatusInvalid {
		t.Errorf("bad pred: %v", resp.Status)
	}
	// Scan of a class that does not exist.
	sc = ScanReq{Class: 250, Pred: PredEq, Arg: []byte{1}}
	if resp := s.Submit(Request{Op: OpScan, Payload: sc.Marshal()}); resp.Status == StatusOK {
		t.Errorf("scan of bogus class: %v", resp.Status)
	}
}

// TestScanLimitTruncation: Limit bounds the match count.
func TestScanLimitTruncation(t *testing.T) {
	s := testServer(t)
	var addr core.Addr
	for i := 0; i < 10; i++ {
		addr = pushdownObject(t, s, 16, u64le(5))
	}
	sc := ScanReq{Class: addr.Class(), Pred: PredEq, Offset: 0, Limit: 3, Arg: u64le(5)}
	resp := s.Submit(Request{Op: OpScan, Payload: sc.Marshal()})
	if resp.Status != StatusOK {
		t.Fatalf("scan: %v", resp.Status)
	}
	subs, err := DecodeBatchResponses(resp.Payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("limit=3 scan returned %d matches", len(subs))
	}
}

// TestMultiRMWSharded drives a MultiRMW frame large enough that the server
// fans it out across idle worker tokens. The chunk split must preserve
// sub-response order and per-op atomicity; GOMAXPROCS is raised because
// the server refuses to shard when the scheduler has no spare parallelism.
func TestMultiRMWSharded(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	s := testServer(t)
	const n = 64
	addrs := make([]core.Addr, n)
	for i := range addrs {
		addrs[i] = pushdownObject(t, s, 16, make([]byte, 16))
	}

	body := AppendBatchHeader(nil, n)
	for i := range addrs {
		fa := FAddReq{Token: uint64(1000 + i), Offset: 0, Delta: int64(i + 1)}
		sub := Request{Op: OpFetchAdd, Addr: addrs[i], Payload: fa.Marshal()}
		body = AppendSubRequest(body, &sub)
	}
	resp := s.Submit(Request{Op: OpMultiRMW, Payload: body})
	if resp.Status != StatusOK {
		t.Fatalf("multi-rmw: %v", resp.Status)
	}
	subs, err := DecodeBatchResponses(resp.Payload, nil)
	if err != nil || len(subs) != n {
		t.Fatalf("decode: %d subs, %v", len(subs), err)
	}
	for i, sub := range subs {
		if sub.Status != StatusOK {
			t.Fatalf("sub %d: %v", i, sub.Status)
		}
		if got := binary.LittleEndian.Uint64(sub.Payload); got != 0 {
			t.Fatalf("sub %d pre-add = %d, want 0", i, got)
		}
	}
	// Second pass proves each delta landed on its own object.
	for i := range addrs {
		fa := FAddReq{Token: uint64(2000 + i), Offset: 0, Delta: 0}
		resp := s.Submit(Request{Op: OpFetchAdd, Addr: addrs[i], Payload: fa.Marshal()})
		if resp.Status != StatusOK {
			t.Fatalf("readback %d: %v", i, resp.Status)
		}
		if got := binary.LittleEndian.Uint64(resp.Payload); got != uint64(i+1) {
			t.Fatalf("counter %d = %d, want %d", i, got, i+1)
		}
	}
}
