// Pushdown payload encodings: the typed request bodies of the near-data
// compute opcodes. Each opcode rides the generic Request/Response frame —
// Addr and Status travel in the frame header exactly like every other
// operation, so pointer correction and the retry machinery apply unchanged
// — and packs its operands into the request payload with the canonical
// little-endian encodings below.
//
//	OpCAS:       token(8) off(4) oldLen(4) newLen(4) old new
//	OpFetchAdd:  token(8) off(4) delta(8, two's complement)
//	OpCondWrite: token(8) mode(1) version(4) valueLen(4) value
//	OpScan:      class(1) pred(1) off(4) limit(4) argLen(4) arg
//	OpMultiRMW:  batch framing (count(4) + sub-requests), CAS/FetchAdd/
//	             CondWrite sub-ops only
//
// Responses: FetchAdd returns the pre-add value (8 bytes). CondWrite
// returns the object version (4 bytes) — the new version on success, the
// observed one on StatusConflict. CAS returns no payload (StatusConflict
// alone reports a lost race; the caller re-reads). Scan returns matches in
// the OpBatch sub-response framing: count(4) then per match status(1)
// addr(16) plen(4) payload, each match carrying the object's current
// pointer, so a scan doubles as bulk pointer correction.
//
// The token is a client-minted per-operation dedup token (0 = none): a
// mutating pushdown op re-issued across a transport reconnect presents the
// same token, and the server replays the recorded outcome instead of
// applying the mutation twice. This is what makes CAS/FetchAdd safely
// retryable — a class of operation the plain write path must never retry.
package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrPushdownCorrupt reports a pushdown payload that does not parse.
var ErrPushdownCorrupt = errors.New("rpc: corrupt pushdown payload")

// CondWrite modes.
const (
	// CondIfVersion applies the write only if the object's version equals
	// the request's Version field.
	CondIfVersion uint8 = 1
	// CondIfAbsent applies the write only if the object has never been
	// written (version 0) since allocation.
	CondIfAbsent uint8 = 2
)

// Scan predicates. Numeric predicates interpret 8 bytes at Offset as a
// little-endian u64 and require an 8-byte Arg.
const (
	PredEq    uint8 = 1 // payload[off:off+len(arg)] == arg
	PredNe    uint8 = 2 // payload[off:off+len(arg)] != arg
	PredLtU64 uint8 = 3 // u64le(payload[off:]) < u64le(arg)
	PredGtU64 uint8 = 4 // u64le(payload[off:]) > u64le(arg)
)

// EvalPred evaluates a scan predicate against an object payload. A range
// that overruns the payload never matches. Exported so clients can apply
// the identical predicate to locally fetched records (the fallback path the
// consistency property test compares against).
func EvalPred(pred uint8, off int, arg, pay []byte) bool {
	if off < 0 || off+len(arg) > len(pay) {
		return false
	}
	switch pred {
	case PredEq:
		return bytes.Equal(pay[off:off+len(arg)], arg)
	case PredNe:
		return !bytes.Equal(pay[off:off+len(arg)], arg)
	case PredLtU64:
		if len(arg) != 8 || off+8 > len(pay) {
			return false
		}
		return binary.LittleEndian.Uint64(pay[off:]) < binary.LittleEndian.Uint64(arg)
	case PredGtU64:
		if len(arg) != 8 || off+8 > len(pay) {
			return false
		}
		return binary.LittleEndian.Uint64(pay[off:]) > binary.LittleEndian.Uint64(arg)
	}
	return false
}

// validPred reports whether a predicate byte names a known predicate.
func validPred(pred uint8) bool { return pred >= PredEq && pred <= PredGtU64 }

// --- CAS ---

const casReqHeader = 8 + 4 + 4 + 4 // token + offset + oldLen + newLen

// CASReq is the OpCAS payload: compare len(Old) bytes at Offset with Old
// and, only if they match, overwrite len(New) bytes at Offset with New.
type CASReq struct {
	Token  uint64
	Offset uint32
	Old    []byte
	New    []byte
}

// MarshalAppend encodes the CAS payload onto dst.
func (r *CASReq) MarshalAppend(dst []byte) []byte {
	var hdr [casReqHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], r.Token)
	binary.LittleEndian.PutUint32(hdr[8:], r.Offset)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(r.Old)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(r.New)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Old...)
	return append(dst, r.New...)
}

// Marshal encodes the CAS payload.
func (r *CASReq) Marshal() []byte {
	return r.MarshalAppend(make([]byte, 0, casReqHeader+len(r.Old)+len(r.New)))
}

// UnmarshalCASReqView decodes an OpCAS payload without copying: Old and New
// alias buf, which must stay alive while the request is used.
func UnmarshalCASReqView(buf []byte) (CASReq, error) {
	if len(buf) < casReqHeader {
		return CASReq{}, fmt.Errorf("%w: short CAS header (%d bytes)", ErrPushdownCorrupt, len(buf))
	}
	oldLen := int(binary.LittleEndian.Uint32(buf[12:]))
	newLen := int(binary.LittleEndian.Uint32(buf[16:]))
	if oldLen < 0 || newLen < 0 || len(buf) != casReqHeader+oldLen+newLen {
		return CASReq{}, fmt.Errorf("%w: CAS length mismatch", ErrPushdownCorrupt)
	}
	r := CASReq{
		Token:  binary.LittleEndian.Uint64(buf),
		Offset: binary.LittleEndian.Uint32(buf[8:]),
	}
	if oldLen > 0 {
		r.Old = buf[casReqHeader : casReqHeader+oldLen : casReqHeader+oldLen]
	}
	if newLen > 0 {
		r.New = buf[casReqHeader+oldLen : casReqHeader+oldLen+newLen : casReqHeader+oldLen+newLen]
	}
	return r, nil
}

// --- FetchAdd ---

const faddReqBytes = 8 + 4 + 8 // token + offset + delta

// FAddReq is the OpFetchAdd payload: atomically add Delta to the
// little-endian u64 at Offset, returning the pre-add value.
type FAddReq struct {
	Token  uint64
	Offset uint32
	Delta  int64
}

// MarshalAppend encodes the FetchAdd payload onto dst.
func (r *FAddReq) MarshalAppend(dst []byte) []byte {
	var buf [faddReqBytes]byte
	binary.LittleEndian.PutUint64(buf[0:], r.Token)
	binary.LittleEndian.PutUint32(buf[8:], r.Offset)
	binary.LittleEndian.PutUint64(buf[12:], uint64(r.Delta))
	return append(dst, buf[:]...)
}

// Marshal encodes the FetchAdd payload.
func (r *FAddReq) Marshal() []byte {
	return r.MarshalAppend(make([]byte, 0, faddReqBytes))
}

// UnmarshalFAddReq decodes an OpFetchAdd payload (fixed-size; no aliasing).
func UnmarshalFAddReq(buf []byte) (FAddReq, error) {
	if len(buf) != faddReqBytes {
		return FAddReq{}, fmt.Errorf("%w: FetchAdd payload is %d bytes, want %d", ErrPushdownCorrupt, len(buf), faddReqBytes)
	}
	return FAddReq{
		Token:  binary.LittleEndian.Uint64(buf),
		Offset: binary.LittleEndian.Uint32(buf[8:]),
		Delta:  int64(binary.LittleEndian.Uint64(buf[12:])),
	}, nil
}

// --- CondWrite ---

const condWriteHeader = 8 + 1 + 4 + 4 // token + mode + version + valueLen

// CondWriteReq is the OpCondWrite payload: a full-object write applied only
// when the version condition holds.
type CondWriteReq struct {
	Token   uint64
	Mode    uint8  // CondIfVersion | CondIfAbsent
	Version uint32 // expected version (CondIfVersion)
	Value   []byte
}

// MarshalAppend encodes the CondWrite payload onto dst.
func (r *CondWriteReq) MarshalAppend(dst []byte) []byte {
	var hdr [condWriteHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], r.Token)
	hdr[8] = r.Mode
	binary.LittleEndian.PutUint32(hdr[9:], r.Version)
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(r.Value)))
	dst = append(dst, hdr[:]...)
	return append(dst, r.Value...)
}

// Marshal encodes the CondWrite payload.
func (r *CondWriteReq) Marshal() []byte {
	return r.MarshalAppend(make([]byte, 0, condWriteHeader+len(r.Value)))
}

// UnmarshalCondWriteReqView decodes an OpCondWrite payload without copying:
// Value aliases buf.
func UnmarshalCondWriteReqView(buf []byte) (CondWriteReq, error) {
	if len(buf) < condWriteHeader {
		return CondWriteReq{}, fmt.Errorf("%w: short CondWrite header (%d bytes)", ErrPushdownCorrupt, len(buf))
	}
	vlen := int(binary.LittleEndian.Uint32(buf[13:]))
	if vlen < 0 || len(buf) != condWriteHeader+vlen {
		return CondWriteReq{}, fmt.Errorf("%w: CondWrite length mismatch", ErrPushdownCorrupt)
	}
	r := CondWriteReq{
		Token:   binary.LittleEndian.Uint64(buf),
		Mode:    buf[8],
		Version: binary.LittleEndian.Uint32(buf[9:]),
	}
	if vlen > 0 {
		r.Value = buf[condWriteHeader : condWriteHeader+vlen : condWriteHeader+vlen]
	}
	return r, nil
}

// --- Scan ---

const scanReqHeader = 1 + 1 + 4 + 4 + 4 // class + pred + offset + limit + argLen

// ScanReq is the OpScan payload: enumerate one size class server-side,
// returning every live object whose payload satisfies the predicate.
type ScanReq struct {
	Class  uint8
	Pred   uint8
	Offset uint32
	Limit  uint32 // max matches returned (0 = all that fit the frame)
	Arg    []byte
}

// MarshalAppend encodes the scan payload onto dst.
func (r *ScanReq) MarshalAppend(dst []byte) []byte {
	var hdr [scanReqHeader]byte
	hdr[0] = r.Class
	hdr[1] = r.Pred
	binary.LittleEndian.PutUint32(hdr[2:], r.Offset)
	binary.LittleEndian.PutUint32(hdr[6:], r.Limit)
	binary.LittleEndian.PutUint32(hdr[10:], uint32(len(r.Arg)))
	dst = append(dst, hdr[:]...)
	return append(dst, r.Arg...)
}

// Marshal encodes the scan payload.
func (r *ScanReq) Marshal() []byte {
	return r.MarshalAppend(make([]byte, 0, scanReqHeader+len(r.Arg)))
}

// UnmarshalScanReqView decodes an OpScan payload without copying: Arg
// aliases buf.
func UnmarshalScanReqView(buf []byte) (ScanReq, error) {
	if len(buf) < scanReqHeader {
		return ScanReq{}, fmt.Errorf("%w: short scan header (%d bytes)", ErrPushdownCorrupt, len(buf))
	}
	alen := int(binary.LittleEndian.Uint32(buf[10:]))
	if alen < 0 || len(buf) != scanReqHeader+alen {
		return ScanReq{}, fmt.Errorf("%w: scan length mismatch", ErrPushdownCorrupt)
	}
	r := ScanReq{
		Class:  buf[0],
		Pred:   buf[1],
		Offset: binary.LittleEndian.Uint32(buf[2:]),
		Limit:  binary.LittleEndian.Uint32(buf[6:]),
	}
	if alen > 0 {
		r.Arg = buf[scanReqHeader : scanReqHeader+alen : scanReqHeader+alen]
	}
	return r, nil
}
