// Server-side execution of the pushdown opcodes, plus the op-level dedup
// cache that makes the mutating ones retryable. A plain OpWrite is
// idempotent (last-writer-wins), so the client retries it freely across
// reconnects; CAS and FetchAdd are not — a duplicate delivery double-applies
// the mutation. The client therefore mints a per-operation token, and the
// server remembers the terminal outcome of each tokened op: a retry that
// presents a known token replays the recorded response instead of executing
// again. Only terminal outcomes (StatusOK, StatusConflict) are cached —
// caching a retryable StatusCompacting would wedge the retry loop replaying
// it forever. The cache is direct-mapped and bounded, so a sufficiently
// delayed duplicate can miss (its entry evicted by a colliding token) and
// double-apply; with 4096 slots and random 64-bit token bases that needs
// thousands of in-flight mutations between the original and the retry,
// far beyond what one connection's pipelining window can hold.
package rpc

import (
	"encoding/binary"
	"sync"

	"corm/internal/core"
)

// dedupSlots sizes the direct-mapped outcome cache (power of two).
const dedupSlots = 1 << 12

// dedupEntry is one cached terminal outcome, fixed-size so replays never
// allocate: the value buffer holds FetchAdd's 8-byte old value or
// CondWrite's 4-byte version (vlen 8, 4, or 0 for CAS).
type dedupEntry struct {
	token  uint64
	status Status
	vlen   uint8
	addr   core.Addr
	val    [8]byte
}

// dedupCache maps token hashes to their slot. Per-slot locking is overkill
// for the replay rate (retries are rare); a striped mutex set over the
// slots keeps unrelated tokens from serializing without per-entry cost.
// The zero value is ready to use.
type dedupCache struct {
	locks [64]striped
	slots [dedupSlots]dedupEntry
}

// striped pads each stripe mutex to its own cacheline so neighboring
// stripes do not false-share under contending tokened bursts.
type striped struct {
	mu sync.Mutex
	_  [56]byte
}

// dedupSlot mixes the token down to a cache index. Tokens are random-based
// but sequential per client (base + seq), so fold the high bits in to keep
// one client's burst from marching through a single stripe linearly.
func dedupSlot(token uint64) uint32 {
	x := token * 0x9e3779b97f4a7c15
	return uint32(x>>32) & (dedupSlots - 1)
}

// replay looks up a token's recorded outcome. ok=false means the op must
// execute.
func (d *dedupCache) replay(token uint64) (Response, bool) {
	if token == 0 {
		return Response{}, false
	}
	slot := dedupSlot(token)
	mu := &d.locks[slot&63].mu
	mu.Lock()
	e := &d.slots[slot]
	if e.token != token {
		mu.Unlock()
		return Response{}, false
	}
	resp := Response{Status: e.status, Addr: e.addr}
	if e.vlen > 0 {
		resp.Payload = append(make([]byte, 0, e.vlen), e.val[:e.vlen]...)
	}
	mu.Unlock()
	mDedupHits.Inc()
	return resp, true
}

// record caches a terminal outcome for a token. Non-terminal statuses
// (retryable or malformed) are not recorded: the retry should re-execute.
func (d *dedupCache) record(token uint64, resp *Response) {
	if token == 0 || (resp.Status != StatusOK && resp.Status != StatusConflict) {
		return
	}
	slot := dedupSlot(token)
	mu := &d.locks[slot&63].mu
	mu.Lock()
	e := &d.slots[slot]
	e.token = token
	e.status = resp.Status
	e.addr = resp.Addr
	e.vlen = uint8(copy(e.val[:], resp.Payload))
	mu.Unlock()
}

// execCAS serves one OpCAS request.
func (s *Server) execCAS(req *Request) Response {
	r, err := UnmarshalCASReqView(req.Payload)
	if err != nil {
		return Response{Status: StatusInvalid, Addr: req.Addr}
	}
	if resp, ok := s.dedup.replay(r.Token); ok {
		return resp
	}
	addr := req.Addr
	err = s.store.CAS(&addr, int(r.Offset), r.Old, r.New)
	resp := Response{Status: StatusOf(err), Addr: addr}
	s.dedup.record(r.Token, &resp)
	return resp
}

// execFetchAdd serves one OpFetchAdd request; the success payload is the
// 8-byte little-endian pre-add value.
func (s *Server) execFetchAdd(req *Request) Response {
	r, err := UnmarshalFAddReq(req.Payload)
	if err != nil {
		return Response{Status: StatusInvalid, Addr: req.Addr}
	}
	if resp, ok := s.dedup.replay(r.Token); ok {
		return resp
	}
	addr := req.Addr
	prev, err := s.store.FetchAdd(&addr, int(r.Offset), r.Delta)
	resp := Response{Status: StatusOf(err), Addr: addr}
	if err == nil {
		p := make([]byte, 8)
		binary.LittleEndian.PutUint64(p, prev)
		resp.Payload = p
	}
	s.dedup.record(r.Token, &resp)
	return resp
}

// execCondWrite serves one OpCondWrite request; the payload is the object
// version — new on success, the observed one on StatusConflict, so the
// caller learns what to expect next without a read.
func (s *Server) execCondWrite(req *Request) Response {
	r, err := UnmarshalCondWriteReqView(req.Payload)
	if err != nil || (r.Mode != CondIfVersion && r.Mode != CondIfAbsent) {
		return Response{Status: StatusInvalid, Addr: req.Addr}
	}
	if resp, ok := s.dedup.replay(r.Token); ok {
		return resp
	}
	addr := req.Addr
	ver, err := s.store.CondWrite(&addr, r.Version, r.Mode == CondIfAbsent, r.Value)
	resp := Response{Status: StatusOf(err), Addr: addr}
	if resp.Status == StatusOK || resp.Status == StatusConflict {
		p := make([]byte, 4)
		binary.LittleEndian.PutUint32(p, ver)
		resp.Payload = p
	}
	s.dedup.record(r.Token, &resp)
	return resp
}

// scanAppend serves one OpScan by streaming matches straight into the
// outgoing frame in the OpBatch sub-response framing: the response header
// and match count are reserved up front, each match appends a
// (StatusOK, current pointer, payload) record as the store emits it, and
// both are back-filled at the end. A scan that would overflow the frame
// limit stops early and returns the matches collected so far (clients
// bound result sets with Limit); nothing is staged outside dst.
func (s *Server) scanAppend(req Request, dst []byte) []byte {
	r, err := UnmarshalScanReqView(req.Payload)
	if err != nil || !validPred(r.Pred) {
		resp := Response{Status: StatusInvalid}
		return resp.MarshalAppend(dst)
	}
	head := len(dst)
	dst = growBytes(dst, respHeader)
	dst = AppendBatchHeader(dst, 0) // count back-filled below
	count, limit := 0, int(r.Limit)
	truncated := false
	pred := func(pay []byte) bool {
		return EvalPred(r.Pred, int(r.Offset), r.Arg, pay)
	}
	emit := func(addr core.Addr, pay []byte) bool {
		if len(dst)-head+respHeader+len(pay) > maxBatchResp {
			truncated = true
			return false
		}
		off := len(dst)
		dst = growBytes(dst, respHeader+len(pay))
		putRespHeader(dst[off:], StatusOK, addr, len(pay))
		copy(dst[off+respHeader:], pay)
		count++
		return limit == 0 || count < limit
	}
	if err := s.store.ScanClass(int(r.Class), pred, emit); err != nil {
		resp := Response{Status: StatusOf(err)}
		return resp.MarshalAppend(dst[:head])
	}
	putRespHeader(dst[head:], StatusOK, core.Addr{}, len(dst)-head-respHeader)
	binary.LittleEndian.PutUint32(dst[head+respHeader:], uint32(count))
	mScanMatches.Observe(int64(count))
	if truncated {
		mScanTruncated.Inc()
	}
	return dst
}

// execScan is scanAppend for the copying Submit path.
func (s *Server) execScan(req Request) Response {
	out := s.scanAppend(req, nil)
	resp, err := UnmarshalResponse(out)
	if err != nil {
		return Response{Status: StatusError}
	}
	return resp
}
