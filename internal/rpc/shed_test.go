package rpc

import (
	"errors"
	"testing"
	"time"

	"corm/internal/core"
)

func shedStore(t *testing.T) *core.Store {
	t.Helper()
	store, err := core.NewStore(core.Config{Workers: 1, Strategy: core.StrategyCoRM, DataBacked: true, Seed: 1})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return store
}

// TestQueueDepthShedding pins the overload-control contract: with the sole
// worker busy and the waiting line full, new arrivals are rejected with
// StatusThrottled instead of queuing, and service resumes normally once the
// worker frees up — tokens never leak through the shed path.
func TestQueueDepthShedding(t *testing.T) {
	s := NewServer(shedStore(t))
	s.SetQueueLimit(1)

	tok := <-s.tokens // occupy the only worker
	queuedResp := make(chan Response, 1)
	go func() { queuedResp <- s.Submit(Request{Op: OpInfo}) }()
	for i := 0; s.queued.Load() == 0; i++ {
		if i > 5000 {
			t.Fatal("queued submission never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Line is full (depth 1 of limit 1): the next arrival sheds without
	// blocking, on both the Response and the append-marshalled path.
	if resp := s.Submit(Request{Op: OpInfo}); resp.Status != StatusThrottled {
		t.Fatalf("Submit over full queue: status %v, want StatusThrottled", resp.Status)
	}
	out := s.SubmitAppend(Request{Op: OpInfo}, nil)
	if len(out) < 1 || Status(out[0]) != StatusThrottled {
		t.Fatalf("SubmitAppend over full queue: got %v, want StatusThrottled record", out)
	}

	s.tokens <- tok
	if r := <-queuedResp; r.Status != StatusOK {
		t.Fatalf("queued submission: status %v, want OK", r.Status)
	}
	// The shed path must not have consumed the token.
	if resp := s.Submit(Request{Op: OpInfo}); resp.Status != StatusOK {
		t.Fatalf("post-drain Submit: status %v, want OK", resp.Status)
	}
}

// TestQueueUnlimitedByDefault: without SetQueueLimit, contended submissions
// wait their turn — the pre-overload-control behavior is untouched.
func TestQueueUnlimitedByDefault(t *testing.T) {
	s := NewServer(shedStore(t))
	if s.QueueLimit() != 0 {
		t.Fatalf("default queue limit %d, want 0 (unbounded)", s.QueueLimit())
	}
	tok := <-s.tokens
	results := make(chan Response, 4)
	for i := 0; i < 4; i++ {
		go func() { results <- s.Submit(Request{Op: OpInfo}) }()
	}
	for i := 0; s.queued.Load() < 4; i++ {
		if i > 5000 {
			t.Fatalf("only %d of 4 submissions queued", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	s.tokens <- tok
	for i := 0; i < 4; i++ {
		if r := <-results; r.Status != StatusOK {
			t.Fatalf("queued submission %d: status %v, want OK", i, r.Status)
		}
	}
}

// TestThrottledStatusRoundTrip: the wire mapping is lossless and the
// sentinel is recognizable with errors.Is — the property the cluster layer
// relies on to keep throttles out of the circuit breakers.
func TestThrottledStatusRoundTrip(t *testing.T) {
	if got := StatusOf(ErrThrottled); got != StatusThrottled {
		t.Fatalf("StatusOf(ErrThrottled) = %v", got)
	}
	if !errors.Is(StatusThrottled.Err(), ErrThrottled) {
		t.Fatal("StatusThrottled.Err() is not ErrThrottled")
	}
	if got := StatusOf(core.ErrCorruption); got != StatusCorrupt {
		t.Fatalf("StatusOf(ErrCorruption) = %v", got)
	}
	if !errors.Is(StatusCorrupt.Err(), core.ErrCorruption) {
		t.Fatal("StatusCorrupt.Err() is not core.ErrCorruption")
	}
}
