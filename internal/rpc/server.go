package rpc

import (
	"sync"

	"corm/internal/core"
)

// Server executes requests against the store on behalf of a bounded set of
// worker threads — the architecture of §2.2.2: requests enter a shared
// queue and any worker picks them up. The "queue" is a pool of worker
// tokens: a Submit borrows a thread ID (blocking while all workers are
// busy, exactly like sitting in the shared queue) and executes on the
// calling goroutine. This keeps the paper's invariant — at most one
// in-flight request per worker thread, so thread-local allocators are
// never used concurrently — without paying two goroutine handoffs per
// request, which dominates the RPC hot path once the transport pipelines.
type Server struct {
	store  *core.Store
	tokens chan int // thread IDs 0..Workers-1; ownership = execution right

	// mu is held shared by Submit and exclusively by Close, so concurrent
	// submissions never serialize on each other — only against shutdown.
	mu     sync.RWMutex
	closed bool
}

// NewServer builds the worker-token pool over the store.
func NewServer(store *core.Store) *Server {
	s := &Server{
		store:  store,
		tokens: make(chan int, store.Workers()),
	}
	for i := 0; i < store.Workers(); i++ {
		s.tokens <- i
	}
	return s
}

// Store exposes the underlying store.
func (s *Server) Store() *core.Store { return s.store }

// Close stops accepting requests and waits for in-flight ones to drain.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// Submit executes a request on a borrowed worker thread and returns its
// response. Concurrent Submits proceed in parallel up to the worker count;
// beyond that they wait their turn, like requests queued in §2.2.2's
// shared RPC queue.
func (s *Server) Submit(req Request) Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Response{Status: StatusError}
	}
	thread := <-s.tokens
	resp := s.execute(thread, req)
	s.tokens <- thread
	return resp
}

// execute dispatches one request against the store on behalf of a worker
// thread. The (possibly corrected) pointer travels back in the response so
// clients can fix their copies (§3.2).
func (s *Server) execute(thread int, req Request) Response {
	switch req.Op {
	case OpInfo:
		cfg := s.store.Config()
		info := Info{BlockBytes: cfg.BlockBytes, Consistency: cfg.Consistency, Classes: cfg.Classes}
		return Response{Status: StatusOK, Payload: info.Marshal()}

	case OpAlloc:
		res, err := s.store.AllocOn(thread, int(req.Size))
		if err != nil {
			return Response{Status: StatusOf(err)}
		}
		return Response{Status: StatusOK, Addr: res.Addr}

	case OpFree:
		addr := req.Addr
		err := s.store.Free(&addr)
		return Response{Status: StatusOf(err), Addr: addr}

	case OpRead:
		addr := req.Addr
		size := s.store.ClassSize(int(addr.Class()))
		if int(req.Size) > 0 && int(req.Size) < size {
			size = int(req.Size)
		}
		buf := make([]byte, s.store.ClassSize(int(addr.Class())))
		if _, err := s.store.Read(&addr, buf); err != nil {
			return Response{Status: StatusOf(err), Addr: addr}
		}
		return Response{Status: StatusOK, Addr: addr, Payload: buf[:size]}

	case OpWrite:
		addr := req.Addr
		err := s.store.Write(&addr, req.Payload)
		return Response{Status: StatusOf(err), Addr: addr}

	case OpRelease:
		addr := req.Addr
		na, err := s.store.ReleasePtr(&addr)
		if err != nil {
			return Response{Status: StatusOf(err), Addr: addr}
		}
		return Response{Status: StatusOK, Addr: na}
	}
	return Response{Status: StatusInvalid}
}
