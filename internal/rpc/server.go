package rpc

import (
	"sync"

	"corm/internal/core"
)

// Server drains a shared RPC queue with a pool of worker goroutines, one
// per store worker thread — the architecture of §2.2.2: requests are
// pushed into the queue and any worker picks them up. Allocation requests
// are served from the executing worker's thread-local allocator.
type Server struct {
	store *core.Store
	queue chan task
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

type task struct {
	req   Request
	reply chan Response
}

// NewServer starts the worker pool over the store.
func NewServer(store *core.Store) *Server {
	s := &Server{
		store: store,
		queue: make(chan task, 1024),
	}
	for i := 0; i < store.Workers(); i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Store exposes the underlying store.
func (s *Server) Store() *core.Store { return s.store }

// Close stops the workers after the queue drains.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit enqueues a request and waits for its response.
func (s *Server) Submit(req Request) Response {
	reply := make(chan Response, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Response{Status: StatusError}
	}
	s.queue <- task{req: req, reply: reply}
	s.mu.Unlock()
	return <-reply
}

func (s *Server) worker(thread int) {
	defer s.wg.Done()
	for t := range s.queue {
		t.reply <- s.execute(thread, t.req)
	}
}

// execute dispatches one request against the store on behalf of a worker
// thread. The (possibly corrected) pointer travels back in the response so
// clients can fix their copies (§3.2).
func (s *Server) execute(thread int, req Request) Response {
	switch req.Op {
	case OpInfo:
		cfg := s.store.Config()
		info := Info{BlockBytes: cfg.BlockBytes, Consistency: cfg.Consistency, Classes: cfg.Classes}
		return Response{Status: StatusOK, Payload: info.Marshal()}

	case OpAlloc:
		res, err := s.store.AllocOn(thread, int(req.Size))
		if err != nil {
			return Response{Status: StatusOf(err)}
		}
		return Response{Status: StatusOK, Addr: res.Addr}

	case OpFree:
		addr := req.Addr
		err := s.store.Free(&addr)
		return Response{Status: StatusOf(err), Addr: addr}

	case OpRead:
		addr := req.Addr
		size := s.store.ClassSize(int(addr.Class()))
		if int(req.Size) > 0 && int(req.Size) < size {
			size = int(req.Size)
		}
		buf := make([]byte, s.store.ClassSize(int(addr.Class())))
		if _, err := s.store.Read(&addr, buf); err != nil {
			return Response{Status: StatusOf(err), Addr: addr}
		}
		return Response{Status: StatusOK, Addr: addr, Payload: buf[:size]}

	case OpWrite:
		addr := req.Addr
		err := s.store.Write(&addr, req.Payload)
		return Response{Status: StatusOf(err), Addr: addr}

	case OpRelease:
		addr := req.Addr
		na, err := s.store.ReleasePtr(&addr)
		if err != nil {
			return Response{Status: StatusOf(err), Addr: addr}
		}
		return Response{Status: StatusOK, Addr: na}
	}
	return Response{Status: StatusInvalid}
}
