package rpc

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"corm/internal/core"
)

// Server executes requests against the store on behalf of a bounded set of
// worker threads — the architecture of §2.2.2: requests enter a shared
// queue and any worker picks them up. The "queue" is a pool of worker
// tokens: a Submit borrows a thread ID (blocking while all workers are
// busy, exactly like sitting in the shared queue) and executes on the
// calling goroutine. This keeps the paper's invariant — at most one
// in-flight request per worker thread, so thread-local allocators are
// never used concurrently — without paying two goroutine handoffs per
// request, which dominates the RPC hot path once the transport pipelines.
type Server struct {
	store  *core.Store
	tokens chan int // thread IDs 0..Workers-1; ownership = execution right

	// dedup replays the recorded outcome of tokened pushdown mutations
	// (CAS/FetchAdd/CondWrite) re-delivered across reconnects.
	dedup dedupCache

	// queued counts submissions currently waiting behind busy workers;
	// maxQueue is the depth at which further arrivals are shed with
	// StatusThrottled instead of joining the line (0 = never shed). The
	// overload-control mirror of the compactor's op-rate shedding: a
	// bounded queue keeps tail latency bounded, because a request that
	// would wait behind an unbounded line is better rejected at arrival
	// while the client still has its timeout budget to retry elsewhere.
	queued   atomic.Int64
	maxQueue atomic.Int64

	// mu is held shared by Submit and exclusively by Close, so concurrent
	// submissions never serialize on each other — only against shutdown.
	mu     sync.RWMutex
	closed bool
}

// NewServer builds the worker-token pool over the store.
func NewServer(store *core.Store) *Server {
	s := &Server{
		store:  store,
		tokens: make(chan int, store.Workers()),
	}
	for i := 0; i < store.Workers(); i++ {
		s.tokens <- i
	}
	return s
}

// Store exposes the underlying store.
func (s *Server) Store() *core.Store { return s.store }

// SetQueueLimit bounds how many submissions may wait behind busy workers
// before new arrivals are shed with StatusThrottled. 0 (the default)
// disables shedding — submissions queue without bound, the pre-overload-
// control behavior. Safe to call while serving.
func (s *Server) SetQueueLimit(n int) { s.maxQueue.Store(int64(n)) }

// QueueLimit reports the configured shed threshold (0 = unbounded).
func (s *Server) QueueLimit() int { return int(s.maxQueue.Load()) }

// Close stops accepting requests and waits for in-flight ones to drain.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// Submit executes a request on a borrowed worker thread and returns its
// response. Concurrent Submits proceed in parallel up to the worker count;
// beyond that they wait their turn, like requests queued in §2.2.2's
// shared RPC queue. An OpBatch request may additionally borrow idle worker
// tokens and shard its sub-operations across them.
func (s *Server) Submit(req Request) Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Response{Status: StatusError}
	}
	mRequests.Inc()
	thread, ok := s.grabToken()
	if !ok {
		return Response{Status: StatusThrottled}
	}
	start := time.Now()
	var resp Response
	switch req.Op {
	case OpBatch:
		resp = s.executeBatch(thread, req, false)
	case OpMultiRMW:
		resp = s.executeBatch(thread, req, true)
	default:
		resp = s.execute(thread, req)
	}
	observeOp(req.Op, start)
	s.tokens <- thread
	return resp
}

// grabToken borrows a worker thread. Fast path: a token is free and the
// grab costs one channel op. Only a contended grab — one that actually
// queues behind busy workers — pays for a timestamp, so the uncontended
// hot path stays clock-free. A contended grab first claims a place in the
// bounded waiting line; if the line is full the request is shed (ok=false)
// without blocking, so overload rejects at arrival instead of building an
// unbounded queue whose tail latency has already blown every SLO.
func (s *Server) grabToken() (thread int, ok bool) {
	select {
	case thread := <-s.tokens:
		return thread, true
	default:
	}
	depth := s.queued.Add(1)
	if max := s.maxQueue.Load(); max > 0 && depth > max {
		s.queued.Add(-1)
		mShed.Inc()
		return 0, false
	}
	mTokenContended.Inc()
	mQueueDepth.Add(1)
	waitStart := time.Now()
	thread = <-s.tokens
	s.queued.Add(-1)
	mQueueDepth.Dec()
	mTokenWait.Record(time.Since(waitStart))
	return thread, true
}

// growBytes extends b by n bytes, reusing capacity without zeroing it —
// callers overwrite the extension in full (or truncate back).
func growBytes(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	return append(b, make([]byte, n)...)
}

// putRespHeader writes a sub/response record header in place.
func putRespHeader(buf []byte, status Status, addr core.Addr, plen int) {
	buf[0] = byte(status)
	binary.LittleEndian.PutUint64(buf[1:], addr.Lo)
	binary.LittleEndian.PutUint64(buf[9:], addr.Hi)
	binary.LittleEndian.PutUint32(buf[17:], uint32(plen))
}

// SubmitAppend executes a request and appends the marshalled response
// directly onto dst — the zero-copy server path: read payloads are staged
// and unpacked in place inside the outgoing frame buffer, so a read
// response is never built as a separate Response-plus-copy. Worker-token
// semantics match Submit exactly.
func (s *Server) SubmitAppend(req Request, dst []byte) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		r := Response{Status: StatusError}
		return r.MarshalAppend(dst)
	}
	mRequests.Inc()
	thread, ok := s.grabToken()
	if !ok {
		r := Response{Status: StatusThrottled}
		return r.MarshalAppend(dst)
	}
	start := time.Now()
	switch req.Op {
	case OpBatch:
		dst = s.executeBatchAppend(thread, req, dst, false)
	case OpMultiRMW:
		dst = s.executeBatchAppend(thread, req, dst, true)
	case OpRead:
		dst = s.readAppend(req, dst)
	case OpScan:
		dst = s.scanAppend(req, dst)
	default:
		resp := s.execute(thread, req)
		dst = resp.MarshalAppend(dst)
	}
	observeOp(req.Op, start)
	s.tokens <- thread
	return dst
}

// readAppend serves one OpRead by staging the slot directly in the
// response frame: header space is reserved, the raw slot lands after it,
// the payload unpacks in place, and the header is back-filled with the
// corrected pointer. No scratch buffer, no payload copy.
func (s *Server) readAppend(req Request, dst []byte) []byte {
	addr := req.Addr
	size, stride, ok := s.classDims(addr)
	if !ok {
		r := Response{Status: StatusInvalid, Addr: addr}
		return r.MarshalAppend(dst)
	}
	want := size
	if int(req.Size) > 0 && int(req.Size) < size {
		want = int(req.Size)
	}
	off := len(dst)
	dst = growBytes(dst, respHeader+stride)
	if _, err := s.store.ReadStaged(&addr, dst[off+respHeader:]); err != nil {
		r := Response{Status: StatusOf(err), Addr: addr}
		return r.MarshalAppend(dst[:off])
	}
	putRespHeader(dst[off:], StatusOK, addr, want)
	return dst[:off+respHeader+want]
}

// maxBatchResp caps the packed size of one batch response so it still fits
// the transport frame limit (8 MiB) with header headroom; a batch that
// would overflow is rejected whole with StatusTooLarge.
const maxBatchResp = (8 << 20) - 1024

// minBatchChunk is the smallest sub-op range worth a worker handoff: below
// it, the goroutine + token traffic costs more than the parallelism pays,
// especially on small hosts.
const minBatchChunk = 8

// maxBatchChunks bounds how many workers one batch may fan out across —
// enough to saturate the worker pool on big hosts while keeping the token
// list on the caller's stack.
const maxBatchChunks = 16

// chunkOutsPool recycles the per-batch chunk-output slice.
var chunkOutsPool = slicePool[[]byte]{minCap: maxBatchChunks}

// getChunkOuts borrows an n-element nil-filled chunk-output slice.
func getChunkOuts(n int) [][]byte {
	s := chunkOutsPool.get()
	if cap(s) < n {
		return make([][]byte, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// putChunkOuts recycles a slice from getChunkOuts, dropping any buffer
// references its elements still hold.
func putChunkOuts(s [][]byte) {
	for i := range s {
		s[i] = nil
	}
	chunkOutsPool.put(s)
}

// executeBatch unpacks an OpBatch request and dispatches its sub-operations
// across the worker-token pool: the borrowed thread always executes, and if
// the batch is large enough, idle worker tokens are grabbed (non-blocking,
// so a batch never stalls behind the queue it is part of) and the sub-op
// range is sharded across them. Each chunk packs its sub-responses — every
// one with its own Status and corrected Addr — into its own buffer as it
// executes, so the input order is preserved by concatenation and no
// per-sub-op response structs are allocated. With rmwOnly set (OpMultiRMW)
// only the pushdown mutation opcodes are admitted as sub-ops.
func (s *Server) executeBatch(thread int, req Request, rmwOnly bool) Response {
	subs, err := DecodeBatchRequests(req.Payload, GetSubRequests())
	if err != nil {
		PutSubRequests(subs)
		return Response{Status: StatusInvalid}
	}
	n := len(subs)
	if n == 0 {
		PutSubRequests(subs)
		return Response{Status: StatusOK, Payload: AppendBatchHeader(nil, 0)}
	}
	outs := s.runBatchChunks(thread, subs, rmwOnly)
	PutSubRequests(subs)

	total := batchCountBytes
	for _, o := range outs {
		total += len(o)
	}
	if total > maxBatchResp {
		for _, o := range outs {
			putPackBuf(o)
		}
		putChunkOuts(outs)
		return Response{Status: StatusTooLarge}
	}
	payload := AppendBatchHeader(make([]byte, 0, total), n)
	for _, o := range outs {
		payload = append(payload, o...)
		putPackBuf(o)
	}
	putChunkOuts(outs)
	return Response{Status: StatusOK, Payload: payload}
}

// executeBatchAppend is executeBatch marshalled straight into the outgoing
// frame: the response header and batch count are written in place and the
// packed chunk outputs are concatenated after them, skipping the
// intermediate payload buffer and the Response-payload copy entirely.
func (s *Server) executeBatchAppend(thread int, req Request, dst []byte, rmwOnly bool) []byte {
	subs, err := DecodeBatchRequests(req.Payload, GetSubRequests())
	if err != nil {
		PutSubRequests(subs)
		r := Response{Status: StatusInvalid}
		return r.MarshalAppend(dst)
	}
	n := len(subs)
	if n == 0 {
		PutSubRequests(subs)
		off := len(dst)
		dst = growBytes(dst, respHeader)
		putRespHeader(dst[off:], StatusOK, core.Addr{}, batchCountBytes)
		return AppendBatchHeader(dst, 0)
	}
	outs := s.runBatchChunks(thread, subs, rmwOnly)
	PutSubRequests(subs)

	total := batchCountBytes
	for _, o := range outs {
		total += len(o)
	}
	if total > maxBatchResp {
		for _, o := range outs {
			putPackBuf(o)
		}
		putChunkOuts(outs)
		r := Response{Status: StatusTooLarge}
		return r.MarshalAppend(dst)
	}
	off := len(dst)
	dst = growBytes(dst, respHeader)
	putRespHeader(dst[off:], StatusOK, core.Addr{}, total)
	dst = AppendBatchHeader(dst, n)
	for _, o := range outs {
		dst = append(dst, o...)
		putPackBuf(o)
	}
	putChunkOuts(outs)
	return dst
}

// runBatchChunks shards subs across the borrowed thread plus any idle
// worker tokens (grabbed non-blocking, so a batch never stalls behind the
// queue it is part of), one extra worker per additional minBatchChunk of
// subs. Returns the packed per-chunk outputs in input order (pack-pool
// buffers; caller recycles).
func (s *Server) runBatchChunks(thread int, subs []Request, rmwOnly bool) [][]byte {
	n := len(subs)
	// Sharding only pays when the scheduler has spare parallelism: with a
	// single P the extra goroutines cannot overlap, so every fan-out is
	// pure closure-allocation and context-switch cost on the hot path.
	maxExtra := runtime.GOMAXPROCS(0) - 1
	if t := cap(s.tokens) - 1; t < maxExtra {
		maxExtra = t
	}
	if maxExtra > maxBatchChunks-1 {
		maxExtra = maxBatchChunks - 1
	}
	var extraArr [maxBatchChunks - 1]int
	extra := extraArr[:0]
	for len(extra) < maxExtra && (len(extra)+1)*minBatchChunk < n {
		select {
		case t := <-s.tokens:
			extra = append(extra, t)
		default:
			goto sized
		}
	}
sized:
	chunks := len(extra) + 1
	mBatchSubOps.Observe(int64(n))
	mBatchWorkers.Observe(int64(chunks))
	outs := getChunkOuts(chunks)
	if chunks == 1 {
		outs[0] = s.executeChunk(thread, subs, rmwOnly)
		return outs
	}
	s.runShardedChunks(thread, subs, extra, outs, rmwOnly)
	return outs
}

// runShardedChunks is the fan-out half of runBatchChunks, split out so the
// WaitGroup capture only heap-allocates on calls that actually shard.
func (s *Server) runShardedChunks(thread int, subs []Request, extra []int, outs [][]byte, rmwOnly bool) {
	n, chunks := len(subs), len(outs)
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		wg.Add(1)
		go func(c, tok, lo, hi int) {
			defer wg.Done()
			outs[c] = s.executeChunk(tok, subs[lo:hi], rmwOnly)
		}(c, extra[c-1], lo, hi)
	}
	outs[0] = s.executeChunk(thread, subs[:n/chunks], rmwOnly)
	wg.Wait()
	for _, t := range extra {
		s.tokens <- t
	}
}

// executeChunk runs a contiguous sub-op range on one worker token,
// returning the packed sub-response records (from the pack pool). Read
// payloads are staged and unpacked in place inside the packed output, so a
// chunk costs O(1) buffers and zero payload copies regardless of length.
func (s *Server) executeChunk(thread int, subs []Request, rmwOnly bool) []byte {
	out := getPackBuf()
	for i := range subs {
		out = s.executeSub(thread, &subs[i], out, rmwOnly)
	}
	return out
}

// executeSub runs one batched sub-operation and appends its packed
// sub-response record onto out. Reads reserve their record in out and land
// the slot there directly (see readAppend). Nested batches and scans are
// rejected per sub-op; an OpMultiRMW frame (rmwOnly) additionally rejects
// everything but the pushdown mutations.
func (s *Server) executeSub(thread int, sub *Request, out []byte, rmwOnly bool) []byte {
	if rmwOnly {
		switch sub.Op {
		case OpCAS, OpFetchAdd, OpCondWrite:
		default:
			resp := Response{Status: StatusInvalid}
			return AppendSubResponse(out, &resp)
		}
	}
	var resp Response
	switch sub.Op {
	case OpRead:
		return s.readAppend(*sub, out)
	case OpBatch, OpScan, OpMultiRMW:
		resp = Response{Status: StatusInvalid}
	default:
		resp = s.execute(thread, *sub)
	}
	return AppendSubResponse(out, &resp)
}

// classDims bounds-checks a pointer's size class before indexing the class
// table, so a garbage address yields StatusInvalid instead of a panic. It
// returns the class's payload size and slot stride.
func (s *Server) classDims(addr core.Addr) (size, stride int, ok bool) {
	cls := int(addr.Class())
	if cls < 0 || cls >= len(s.store.Config().Classes) {
		return 0, 0, false
	}
	return s.store.ClassSize(cls), s.store.Stride(cls), true
}

// execute dispatches one request against the store on behalf of a worker
// thread. The (possibly corrected) pointer travels back in the response so
// clients can fix their copies (§3.2).
func (s *Server) execute(thread int, req Request) Response {
	switch req.Op {
	case OpInfo:
		cfg := s.store.Config()
		info := Info{BlockBytes: cfg.BlockBytes, Consistency: cfg.Consistency, Classes: cfg.Classes}
		return Response{Status: StatusOK, Payload: info.Marshal()}

	case OpAlloc:
		res, err := s.store.AllocOn(thread, int(req.Size))
		if err != nil {
			return Response{Status: StatusOf(err)}
		}
		return Response{Status: StatusOK, Addr: res.Addr}

	case OpFree:
		addr := req.Addr
		err := s.store.Free(&addr)
		return Response{Status: StatusOf(err), Addr: addr}

	case OpRead:
		addr := req.Addr
		size, _, ok := s.classDims(addr)
		if !ok {
			return Response{Status: StatusInvalid, Addr: addr}
		}
		if int(req.Size) > 0 && int(req.Size) < size {
			size = int(req.Size)
		}
		buf := make([]byte, s.store.ClassSize(int(addr.Class())))
		if _, err := s.store.Read(&addr, buf); err != nil {
			return Response{Status: StatusOf(err), Addr: addr}
		}
		return Response{Status: StatusOK, Addr: addr, Payload: buf[:size]}

	case OpWrite:
		addr := req.Addr
		err := s.store.Write(&addr, req.Payload)
		return Response{Status: StatusOf(err), Addr: addr}

	case OpRelease:
		addr := req.Addr
		na, err := s.store.ReleasePtr(&addr)
		if err != nil {
			return Response{Status: StatusOf(err), Addr: addr}
		}
		return Response{Status: StatusOK, Addr: na}

	case OpCAS:
		return s.execCAS(&req)

	case OpFetchAdd:
		return s.execFetchAdd(&req)

	case OpCondWrite:
		return s.execCondWrite(&req)

	case OpScan:
		return s.execScan(req)
	}
	return Response{Status: StatusInvalid}
}
