package rpc

import (
	"sync"
	"time"

	"corm/internal/core"
)

// Server executes requests against the store on behalf of a bounded set of
// worker threads — the architecture of §2.2.2: requests enter a shared
// queue and any worker picks them up. The "queue" is a pool of worker
// tokens: a Submit borrows a thread ID (blocking while all workers are
// busy, exactly like sitting in the shared queue) and executes on the
// calling goroutine. This keeps the paper's invariant — at most one
// in-flight request per worker thread, so thread-local allocators are
// never used concurrently — without paying two goroutine handoffs per
// request, which dominates the RPC hot path once the transport pipelines.
type Server struct {
	store  *core.Store
	tokens chan int // thread IDs 0..Workers-1; ownership = execution right

	// mu is held shared by Submit and exclusively by Close, so concurrent
	// submissions never serialize on each other — only against shutdown.
	mu     sync.RWMutex
	closed bool
}

// NewServer builds the worker-token pool over the store.
func NewServer(store *core.Store) *Server {
	s := &Server{
		store:  store,
		tokens: make(chan int, store.Workers()),
	}
	for i := 0; i < store.Workers(); i++ {
		s.tokens <- i
	}
	return s
}

// Store exposes the underlying store.
func (s *Server) Store() *core.Store { return s.store }

// Close stops accepting requests and waits for in-flight ones to drain.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// Submit executes a request on a borrowed worker thread and returns its
// response. Concurrent Submits proceed in parallel up to the worker count;
// beyond that they wait their turn, like requests queued in §2.2.2's
// shared RPC queue. An OpBatch request may additionally borrow idle worker
// tokens and shard its sub-operations across them.
func (s *Server) Submit(req Request) Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Response{Status: StatusError}
	}
	mRequests.Inc()
	// Fast path: a token is free and the grab costs one channel op. Only a
	// contended Submit — one that actually queues behind busy workers — pays
	// for a timestamp, so the uncontended hot path stays clock-free.
	var thread int
	select {
	case thread = <-s.tokens:
	default:
		mTokenContended.Inc()
		waitStart := time.Now()
		thread = <-s.tokens
		mTokenWait.Record(time.Since(waitStart))
	}
	start := time.Now()
	var resp Response
	if req.Op == OpBatch {
		resp = s.executeBatch(thread, req)
	} else {
		resp = s.execute(thread, req)
	}
	observeOp(req.Op, start)
	s.tokens <- thread
	return resp
}

// maxBatchResp caps the packed size of one batch response so it still fits
// the transport frame limit (8 MiB) with header headroom; a batch that
// would overflow is rejected whole with StatusTooLarge.
const maxBatchResp = (8 << 20) - 1024

// minBatchChunk is the smallest sub-op range worth a worker handoff: below
// it, the goroutine + token traffic costs more than the parallelism pays,
// especially on small hosts.
const minBatchChunk = 8

// executeBatch unpacks an OpBatch request and dispatches its sub-operations
// across the worker-token pool: the borrowed thread always executes, and if
// the batch is large enough, idle worker tokens are grabbed (non-blocking,
// so a batch never stalls behind the queue it is part of) and the sub-op
// range is sharded across them. Each chunk packs its sub-responses — every
// one with its own Status and corrected Addr — into its own buffer as it
// executes, so the input order is preserved by concatenation and no
// per-sub-op response structs are allocated.
func (s *Server) executeBatch(thread int, req Request) Response {
	subs, err := DecodeBatchRequests(req.Payload, GetSubRequests())
	if err != nil {
		PutSubRequests(subs)
		return Response{Status: StatusInvalid}
	}
	n := len(subs)
	if n == 0 {
		PutSubRequests(subs)
		return Response{Status: StatusOK, Payload: AppendBatchHeader(nil, 0)}
	}

	// Borrow extra idle workers, one per additional minBatchChunk of subs.
	var extra []int
	for (len(extra)+1)*minBatchChunk < n && len(extra)+1 < cap(s.tokens) {
		select {
		case t := <-s.tokens:
			extra = append(extra, t)
		default:
			goto sized
		}
	}
sized:
	chunks := len(extra) + 1
	mBatchSubOps.Observe(int64(n))
	mBatchWorkers.Observe(int64(chunks))
	outs := make([][]byte, chunks)
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		wg.Add(1)
		go func(c, tok, lo, hi int) {
			defer wg.Done()
			outs[c] = s.executeChunk(tok, subs[lo:hi])
		}(c, extra[c-1], lo, hi)
	}
	outs[0] = s.executeChunk(thread, subs[:n/chunks])
	wg.Wait()
	for _, t := range extra {
		s.tokens <- t
	}
	PutSubRequests(subs)

	total := batchCountBytes
	for _, o := range outs {
		total += len(o)
	}
	if total > maxBatchResp {
		for _, o := range outs {
			putPackBuf(o)
		}
		return Response{Status: StatusTooLarge}
	}
	payload := AppendBatchHeader(make([]byte, 0, total), n)
	for _, o := range outs {
		payload = append(payload, o...)
		putPackBuf(o)
	}
	return Response{Status: StatusOK, Payload: payload}
}

// executeChunk runs a contiguous sub-op range on one worker token,
// returning the packed sub-response records (from the pack pool). Reads
// land in a shared scratch buffer that is re-encoded into the packed output
// immediately, so a chunk costs O(1) buffers regardless of length.
func (s *Server) executeChunk(thread int, subs []Request) []byte {
	out := getPackBuf()
	scratch := getPackBuf()
	for i := range subs {
		out, scratch = s.executeSub(thread, &subs[i], out, scratch)
	}
	putPackBuf(scratch)
	return out
}

// executeSub runs one batched sub-operation and appends its packed
// sub-response record onto out. Nested batches are rejected per sub-op.
func (s *Server) executeSub(thread int, sub *Request, out, scratch []byte) (o, sc []byte) {
	var resp Response
	switch sub.Op {
	case OpRead:
		addr := sub.Addr
		size, ok := s.classSize(addr)
		if !ok {
			resp = Response{Status: StatusInvalid, Addr: addr}
			break
		}
		want := size
		if int(sub.Size) > 0 && int(sub.Size) < size {
			want = int(sub.Size)
		}
		if cap(scratch) < size {
			putPackBuf(scratch)
			scratch = make([]byte, size)
		}
		scratch = scratch[:size]
		if _, err := s.store.Read(&addr, scratch); err != nil {
			resp = Response{Status: StatusOf(err), Addr: addr}
		} else {
			resp = Response{Status: StatusOK, Addr: addr, Payload: scratch[:want]}
		}
	case OpBatch:
		resp = Response{Status: StatusInvalid}
	default:
		resp = s.execute(thread, *sub)
	}
	return AppendSubResponse(out, &resp), scratch
}

// classSize bounds-checks a pointer's size class before indexing the class
// table, so a garbage address yields StatusInvalid instead of a panic.
func (s *Server) classSize(addr core.Addr) (int, bool) {
	cls := int(addr.Class())
	if cls < 0 || cls >= len(s.store.Config().Classes) {
		return 0, false
	}
	return s.store.ClassSize(cls), true
}

// execute dispatches one request against the store on behalf of a worker
// thread. The (possibly corrected) pointer travels back in the response so
// clients can fix their copies (§3.2).
func (s *Server) execute(thread int, req Request) Response {
	switch req.Op {
	case OpInfo:
		cfg := s.store.Config()
		info := Info{BlockBytes: cfg.BlockBytes, Consistency: cfg.Consistency, Classes: cfg.Classes}
		return Response{Status: StatusOK, Payload: info.Marshal()}

	case OpAlloc:
		res, err := s.store.AllocOn(thread, int(req.Size))
		if err != nil {
			return Response{Status: StatusOf(err)}
		}
		return Response{Status: StatusOK, Addr: res.Addr}

	case OpFree:
		addr := req.Addr
		err := s.store.Free(&addr)
		return Response{Status: StatusOf(err), Addr: addr}

	case OpRead:
		addr := req.Addr
		classSize, ok := s.classSize(addr)
		if !ok {
			return Response{Status: StatusInvalid, Addr: addr}
		}
		size := classSize
		if int(req.Size) > 0 && int(req.Size) < size {
			size = int(req.Size)
		}
		buf := make([]byte, classSize)
		if _, err := s.store.Read(&addr, buf); err != nil {
			return Response{Status: StatusOf(err), Addr: addr}
		}
		return Response{Status: StatusOK, Addr: addr, Payload: buf[:size]}

	case OpWrite:
		addr := req.Addr
		err := s.store.Write(&addr, req.Payload)
		return Response{Status: StatusOf(err), Addr: addr}

	case OpRelease:
		addr := req.Addr
		na, err := s.store.ReleasePtr(&addr)
		if err != nil {
			return Response{Status: StatusOf(err), Addr: addr}
		}
		return Response{Status: StatusOK, Addr: na}
	}
	return Response{Status: StatusInvalid}
}
