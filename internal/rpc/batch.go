// Batch framing for OpBatch: many sub-operations in one RPC frame.
//
// PR 2 amortized syscalls (group-commit frames, seq-ID multiplexing) but
// every operation still paid one frame header, one pending-map entry, and
// one scheduler handoff per call. OpBatch amortizes the *operation*: the
// payload of a single request packs N sub-requests (read/write/alloc/free/
// release), the server fans the sub-ops across its worker-token pool, and
// the response packs N sub-responses — each with its own Status and its own
// corrected Addr, so per-sub-op pointer correction survives batching. This
// is the Active-Access/doorbell-batching lever: one round trip, one
// pending-map entry, N operations.
//
// Batch payload layout (little-endian):
//
//	request:  count(4) then per sub: op(1) addr(16) size(4) plen(4) payload
//	response: count(4) then per sub: status(1) addr(16) plen(4) payload
//
// Sub records reuse the exact single-op encodings, so a sub-request is
// decoded by the same field offsets as a top-level one. Decoding is
// zero-copy: sub payloads alias the batch buffer, which both sides own for
// the lifetime of the batch (the server decodes out of the request's
// heap-owned Payload; the client decodes out of the response's).
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrBatchCorrupt reports an OpBatch payload whose framing does not parse.
var ErrBatchCorrupt = errors.New("rpc: corrupt batch payload")

// batchCountBytes prefixes every batch payload.
const batchCountBytes = 4

// MaxBatchOps bounds the sub-operation count of one batch: a denial-of-
// service guard (a 4-byte count could otherwise promise 4G sub-ops) far
// above any useful batch (frame size limits bite first).
const MaxBatchOps = 1 << 16

// AppendBatchHeader starts a batch payload: the sub-operation count.
func AppendBatchHeader(dst []byte, count int) []byte {
	var hdr [batchCountBytes]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(count))
	return append(dst, hdr[:]...)
}

// AppendSubRequest encodes one sub-request record onto dst.
func AppendSubRequest(dst []byte, r *Request) []byte {
	return r.MarshalAppend(dst)
}

// AppendSubResponse encodes one sub-response record onto dst.
func AppendSubResponse(dst []byte, r *Response) []byte {
	return r.MarshalAppend(dst)
}

// MarshalBatchRequests packs subs into a complete OpBatch request payload.
func MarshalBatchRequests(dst []byte, subs []Request) []byte {
	dst = AppendBatchHeader(dst, len(subs))
	for i := range subs {
		dst = AppendSubRequest(dst, &subs[i])
	}
	return dst
}

// MarshalBatchResponses packs subs into a complete OpBatch response payload.
func MarshalBatchResponses(dst []byte, subs []Response) []byte {
	dst = AppendBatchHeader(dst, len(subs))
	for i := range subs {
		dst = AppendSubResponse(dst, &subs[i])
	}
	return dst
}

// batchCount validates and strips the count prefix.
func batchCount(buf []byte) (int, []byte, error) {
	if len(buf) < batchCountBytes {
		return 0, nil, fmt.Errorf("%w: short count", ErrBatchCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n > MaxBatchOps {
		return 0, nil, fmt.Errorf("%w: %d sub-ops exceeds limit", ErrBatchCorrupt, n)
	}
	return n, buf[batchCountBytes:], nil
}

// DecodeBatchRequests parses an OpBatch request payload, appending each
// sub-request onto subs (pass a pooled slice to avoid allocation). Sub
// payloads alias buf; the caller must keep buf alive while subs are used.
func DecodeBatchRequests(buf []byte, subs []Request) ([]Request, error) {
	n, rest, err := batchCount(buf)
	if err != nil {
		return subs, err
	}
	for i := 0; i < n; i++ {
		if len(rest) < reqHeader {
			return subs, fmt.Errorf("%w: truncated sub-request %d", ErrBatchCorrupt, i)
		}
		plen := int(binary.LittleEndian.Uint32(rest[21:]))
		if plen < 0 || len(rest) < reqHeader+plen {
			return subs, fmt.Errorf("%w: sub-request %d payload overruns", ErrBatchCorrupt, i)
		}
		sub := Request{
			Op:   OpCode(rest[0]),
			Addr: addrFrom(rest[1:]),
			Size: binary.LittleEndian.Uint32(rest[17:]),
		}
		if plen > 0 {
			sub.Payload = rest[reqHeader : reqHeader+plen : reqHeader+plen]
		}
		subs = append(subs, sub)
		rest = rest[reqHeader+plen:]
	}
	if len(rest) != 0 {
		return subs, fmt.Errorf("%w: %d trailing bytes", ErrBatchCorrupt, len(rest))
	}
	return subs, nil
}

// DecodeBatchResponses parses an OpBatch response payload, appending each
// sub-response onto resps. Sub payloads alias buf.
func DecodeBatchResponses(buf []byte, resps []Response) ([]Response, error) {
	n, rest, err := batchCount(buf)
	if err != nil {
		return resps, err
	}
	for i := 0; i < n; i++ {
		if len(rest) < respHeader {
			return resps, fmt.Errorf("%w: truncated sub-response %d", ErrBatchCorrupt, i)
		}
		plen := int(binary.LittleEndian.Uint32(rest[17:]))
		if plen < 0 || len(rest) < respHeader+plen {
			return resps, fmt.Errorf("%w: sub-response %d payload overruns", ErrBatchCorrupt, i)
		}
		sub := Response{
			Status: Status(rest[0]),
			Addr:   addrFrom(rest[1:]),
		}
		if plen > 0 {
			sub.Payload = rest[respHeader : respHeader+plen : respHeader+plen]
		}
		resps = append(resps, sub)
		rest = rest[respHeader+plen:]
	}
	if len(rest) != 0 {
		return resps, fmt.Errorf("%w: %d trailing bytes", ErrBatchCorrupt, len(rest))
	}
	return resps, nil
}

// slicePool is a sync.Pool of slices that stores *[]T boxes rather than
// raw slices: putting a bare slice into a pool boxes its three-word header
// into a fresh interface allocation on every Put, which shows up as ~one
// alloc per recycle on the batched hot path. Pointers convert to interfaces
// allocation-free, and the empty boxes are themselves recycled, so
// steady-state get/put allocates nothing.
type slicePool[T any] struct {
	slices sync.Pool // holds *[]T with a live backing array
	boxes  sync.Pool // holds *[]T with a nil slice, awaiting reuse
	minCap int
}

func (p *slicePool[T]) get() []T {
	if q, _ := p.slices.Get().(*[]T); q != nil {
		s := *q
		*q = nil
		p.boxes.Put(q)
		return s[:0]
	}
	return make([]T, 0, p.minCap)
}

func (p *slicePool[T]) put(s []T) {
	q, _ := p.boxes.Get().(*[]T)
	if q == nil {
		q = new([]T)
	}
	*q = s[:0]
	p.slices.Put(q)
}

// Slice pools for the batched hot path: a batch borrows its sub-request and
// sub-response slices (and the server its packed-payload scratch) here so
// the marginal allocation cost per sub-op stays near zero.
var (
	subReqPool  = slicePool[Request]{minCap: 64}
	subRespPool = slicePool[Response]{minCap: 64}
	packPool    = slicePool[byte]{minCap: 4096}
)

// GetSubRequests borrows an empty sub-request slice.
func GetSubRequests() []Request { return subReqPool.get() }

// PutSubRequests recycles a slice from GetSubRequests. The elements may
// alias decoded buffers, so they are cleared before pooling.
func PutSubRequests(s []Request) {
	for i := range s {
		s[i] = Request{}
	}
	subReqPool.put(s)
}

// GetSubResponses borrows an empty sub-response slice.
func GetSubResponses() []Response { return subRespPool.get() }

// PutSubResponses recycles a slice from GetSubResponses.
func PutSubResponses(s []Response) {
	for i := range s {
		s[i] = Response{}
	}
	subRespPool.put(s)
}

// getPackBuf borrows a payload-packing scratch buffer.
func getPackBuf() []byte { return packPool.get() }

// putPackBuf recycles a buffer from getPackBuf.
func putPackBuf(b []byte) { packPool.put(b) }
