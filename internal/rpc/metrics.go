package rpc

import (
	"time"

	"corm/internal/metrics"
)

// RPC-layer metrics. Latency histograms are per opcode, indexed by OpCode
// so the hot path never formats a name: the array lookup is free and the
// label is baked into the registered metric name.
var (
	mOpLatency = [...]*metrics.Histogram{
		OpAlloc:     metrics.Default().Histogram(`corm_rpc_latency_ns{op="alloc"}`, "RPC service time by opcode"),
		OpFree:      metrics.Default().Histogram(`corm_rpc_latency_ns{op="free"}`, "RPC service time by opcode"),
		OpRead:      metrics.Default().Histogram(`corm_rpc_latency_ns{op="read"}`, "RPC service time by opcode"),
		OpWrite:     metrics.Default().Histogram(`corm_rpc_latency_ns{op="write"}`, "RPC service time by opcode"),
		OpRelease:   metrics.Default().Histogram(`corm_rpc_latency_ns{op="release"}`, "RPC service time by opcode"),
		OpInfo:      metrics.Default().Histogram(`corm_rpc_latency_ns{op="info"}`, "RPC service time by opcode"),
		OpBatch:     metrics.Default().Histogram(`corm_rpc_latency_ns{op="batch"}`, "RPC service time by opcode"),
		OpCAS:       metrics.Default().Histogram(`corm_rpc_latency_ns{op="cas"}`, "RPC service time by opcode"),
		OpFetchAdd:  metrics.Default().Histogram(`corm_rpc_latency_ns{op="fetchadd"}`, "RPC service time by opcode"),
		OpCondWrite: metrics.Default().Histogram(`corm_rpc_latency_ns{op="condwrite"}`, "RPC service time by opcode"),
		OpScan:      metrics.Default().Histogram(`corm_rpc_latency_ns{op="scan"}`, "RPC service time by opcode"),
		OpMultiRMW:  metrics.Default().Histogram(`corm_rpc_latency_ns{op="multirmw"}`, "RPC service time by opcode"),
	}
	mRequests = metrics.Default().Counter("corm_rpc_requests_total",
		"requests submitted to the worker pool")
	mBatchSubOps = metrics.Default().Histogram("corm_rpc_batch_subops",
		"sub-operations per OpBatch request")
	mBatchWorkers = metrics.Default().Histogram("corm_rpc_batch_workers",
		"worker tokens used by one OpBatch (1 = no extra borrowed)")
	mTokenContended = metrics.Default().Counter("corm_rpc_token_waits_total",
		"Submits that blocked waiting for a worker token")
	mTokenWait = metrics.Default().Histogram("corm_rpc_token_wait_ns",
		"time spent queued for a worker token (contended Submits only)")
	mShed = metrics.Default().Counter("corm_rpc_shed_total",
		"requests rejected with StatusThrottled by queue-depth load shedding")
	mQueueDepth = metrics.Default().Gauge("corm_rpc_queue_depth",
		"submissions currently waiting behind busy workers (sums across servers)")
	mScanMatches = metrics.Default().Histogram("corm_rpc_scan_matches",
		"matches returned per OpScan request")
	mScanTruncated = metrics.Default().Counter("corm_rpc_scan_truncated_total",
		"OpScan responses cut short by the frame limit")
	mDedupHits = metrics.Default().Counter("corm_rpc_dedup_replays_total",
		"tokened pushdown retries answered from the outcome cache")
)

// observeOp records one request's service time into its opcode histogram.
func observeOp(op OpCode, start time.Time) {
	if int(op) < len(mOpLatency) {
		if h := mOpLatency[op]; h != nil {
			h.Record(time.Since(start))
		}
	}
}
