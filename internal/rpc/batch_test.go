package rpc

import (
	"bytes"
	"errors"
	"testing"

	"corm/internal/core"
)

// batchCall submits a packed OpBatch built from subs and decodes the
// sub-responses.
func batchCall(t *testing.T, s *Server, subs []Request) []Response {
	t.Helper()
	payload := MarshalBatchRequests(nil, subs)
	resp := s.Submit(Request{Op: OpBatch, Payload: payload})
	if resp.Status != StatusOK {
		t.Fatalf("batch status %v", resp.Status)
	}
	out, err := DecodeBatchResponses(resp.Payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(subs) {
		t.Fatalf("%d sub-responses for %d sub-requests", len(out), len(subs))
	}
	return out
}

// TestBatchWireRoundtrip: batch encode/decode preserves every sub-record,
// including zero-length and aliased payloads.
func TestBatchWireRoundtrip(t *testing.T) {
	subs := []Request{
		{Op: OpAlloc, Size: 64},
		{Op: OpWrite, Addr: core.Addr{Lo: 7, Hi: 9}, Payload: []byte("hello")},
		{Op: OpRead, Addr: core.Addr{Lo: 1}, Size: 32},
		{Op: OpFree, Addr: core.Addr{Lo: 2, Hi: 3}},
	}
	buf := MarshalBatchRequests(nil, subs)
	got, err := DecodeBatchRequests(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(subs) {
		t.Fatalf("decoded %d subs, want %d", len(got), len(subs))
	}
	for i := range subs {
		if got[i].Op != subs[i].Op || got[i].Addr != subs[i].Addr || got[i].Size != subs[i].Size ||
			!bytes.Equal(got[i].Payload, subs[i].Payload) {
			t.Fatalf("sub %d mismatch: %+v vs %+v", i, got[i], subs[i])
		}
	}

	resps := []Response{
		{Status: StatusOK, Addr: core.Addr{Lo: 11}, Payload: []byte{1, 2, 3}},
		{Status: StatusNotFound},
	}
	rbuf := MarshalBatchResponses(nil, resps)
	rgot, err := DecodeBatchResponses(rbuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resps {
		if rgot[i].Status != resps[i].Status || rgot[i].Addr != resps[i].Addr ||
			!bytes.Equal(rgot[i].Payload, resps[i].Payload) {
			t.Fatalf("sub-response %d mismatch", i)
		}
	}
}

// TestBatchEmpty: a zero-sub-op batch is legal and returns zero
// sub-responses.
func TestBatchEmpty(t *testing.T) {
	s := testServer(t)
	out := batchCall(t, s, nil)
	if len(out) != 0 {
		t.Fatalf("want 0 sub-responses, got %d", len(out))
	}
}

// TestBatchCorruptPayloads: truncated or trailing-garbage batch payloads
// fail decoding and the server answers StatusInvalid instead of panicking.
func TestBatchCorruptPayloads(t *testing.T) {
	full := MarshalBatchRequests(nil, []Request{{Op: OpAlloc, Size: 64}})
	bad := [][]byte{
		nil,                                     // no count
		{1, 0, 0},                               // short count
		full[:len(full)-3],                      // truncated record
		append(append([]byte{}, full...), 0xFF), // trailing bytes
	}
	for i, b := range bad {
		if _, err := DecodeBatchRequests(b, nil); !errors.Is(err, ErrBatchCorrupt) {
			t.Fatalf("case %d: want ErrBatchCorrupt, got %v", i, err)
		}
	}
	s := testServer(t)
	resp := s.Submit(Request{Op: OpBatch, Payload: []byte{1, 0}})
	if resp.Status != StatusInvalid {
		t.Fatalf("corrupt batch: want StatusInvalid, got %v", resp.Status)
	}
}

// TestBatchNestedRejected: a batch sub-op may not itself be a batch; the
// sub-response reports StatusInvalid while siblings still execute.
func TestBatchNestedRejected(t *testing.T) {
	s := testServer(t)
	out := batchCall(t, s, []Request{
		{Op: OpAlloc, Size: 64},
		{Op: OpBatch},
		{Op: OpAlloc, Size: 64},
	})
	if out[0].Status != StatusOK || out[2].Status != StatusOK {
		t.Fatalf("sibling sub-ops failed: %v %v", out[0].Status, out[2].Status)
	}
	if out[1].Status != StatusInvalid {
		t.Fatalf("nested batch: want StatusInvalid, got %v", out[1].Status)
	}
}

// TestBatchLifecycle: alloc, write, read, free through one batch each,
// with pointer-corrected Addr and payload data surviving the round trip.
func TestBatchLifecycle(t *testing.T) {
	s := testServer(t)
	const n = 48 // > minBatchChunk * workers: exercises token-pool sharding
	allocs := make([]Request, n)
	for i := range allocs {
		allocs[i] = Request{Op: OpAlloc, Size: 64}
	}
	ars := batchCall(t, s, allocs)
	addrs := make([]core.Addr, n)
	seen := make(map[core.Addr]bool)
	for i, r := range ars {
		if r.Status != StatusOK {
			t.Fatalf("alloc %d: %v", i, r.Status)
		}
		if seen[r.Addr] {
			t.Fatalf("alloc %d: duplicate address %v", i, r.Addr)
		}
		seen[r.Addr] = true
		addrs[i] = r.Addr
	}

	writes := make([]Request, n)
	for i := range writes {
		writes[i] = Request{Op: OpWrite, Addr: addrs[i], Payload: bytes.Repeat([]byte{byte(i + 1)}, 64)}
	}
	for i, r := range batchCall(t, s, writes) {
		if r.Status != StatusOK {
			t.Fatalf("write %d: %v", i, r.Status)
		}
	}

	reads := make([]Request, n)
	for i := range reads {
		reads[i] = Request{Op: OpRead, Addr: addrs[i], Size: 64}
	}
	for i, r := range batchCall(t, s, reads) {
		if r.Status != StatusOK {
			t.Fatalf("read %d: %v", i, r.Status)
		}
		if want := bytes.Repeat([]byte{byte(i + 1)}, 64); !bytes.Equal(r.Payload, want) {
			t.Fatalf("read %d: payload %v", i, r.Payload[:4])
		}
	}

	frees := make([]Request, n)
	for i := range frees {
		frees[i] = Request{Op: OpFree, Addr: addrs[i]}
	}
	for i, r := range batchCall(t, s, frees) {
		if r.Status != StatusOK {
			t.Fatalf("free %d: %v", i, r.Status)
		}
	}
}

// TestBatchMixedFailures: one failing sub-op (a read of a freed object)
// among successes carries its own status without poisoning the batch.
func TestBatchMixedFailures(t *testing.T) {
	s := testServer(t)
	live := batchCall(t, s, []Request{{Op: OpAlloc, Size: 64}})[0].Addr
	dead := batchCall(t, s, []Request{{Op: OpAlloc, Size: 64}})[0].Addr
	if r := batchCall(t, s, []Request{{Op: OpFree, Addr: dead}})[0]; r.Status != StatusOK {
		t.Fatalf("free: %v", r.Status)
	}
	out := batchCall(t, s, []Request{
		{Op: OpRead, Addr: live, Size: 64},
		{Op: OpRead, Addr: dead, Size: 64},
		{Op: OpRead, Addr: live, Size: 64},
	})
	if out[0].Status != StatusOK || out[2].Status != StatusOK {
		t.Fatalf("live reads failed: %v %v", out[0].Status, out[2].Status)
	}
	if !errors.Is(out[1].Status.Err(), core.ErrNotFound) {
		t.Fatalf("dead read: want ErrNotFound, got %v", out[1].Status.Err())
	}
}

// TestBatchGarbageAddrClass: a sub-read whose pointer encodes an
// out-of-range size class answers StatusInvalid rather than panicking the
// worker.
func TestBatchGarbageAddrClass(t *testing.T) {
	s := testServer(t)
	garbage := core.Addr{Hi: uint64(250) << 32} // class 250: out of range
	out := batchCall(t, s, []Request{{Op: OpRead, Addr: garbage, Size: 64}})
	if out[0].Status != StatusInvalid {
		t.Fatalf("want StatusInvalid, got %v", out[0].Status)
	}
	if resp := s.Submit(Request{Op: OpRead, Addr: garbage, Size: 64}); resp.Status != StatusInvalid {
		t.Fatalf("single-op: want StatusInvalid, got %v", resp.Status)
	}
}
