package soak

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"corm/internal/cluster"
	"corm/internal/core"
	"corm/internal/fault"
)

// canaryObjectBytes sizes the per-node sentinel object whose guard bytes
// ActCorrupt overwrites.
const canaryObjectBytes = 64

// run is the live state of one executing scenario.
type run struct {
	spec Spec
	logf func(string, ...any)

	cl         *cluster.LocalCluster
	kv         *cluster.KV
	adm        *cluster.Admission
	compactors []*core.Compactor
	replicator *cluster.Replicator
	injector   *fault.Injector

	recorders []*recorder
	phase     atomic.Int32
	start     time.Time
	stop      chan struct{}

	// Chaos goroutine state: it is the sole writer between start and the
	// close of chaosDone, after which the runner reads it single-threaded.
	down        map[int]bool
	canaryAddrs []core.Addr
	chaosRan    int
	chaosDone   chan struct{}
}

// Run executes one soak scenario end to end and returns its Report. logf
// (nil = silent) receives progress lines. The returned error covers
// harness failures — a spec that cannot run; a finished run's verdict is
// Report.Pass, never an error.
func Run(spec Spec, logf func(string, ...any)) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &run{
		spec:      spec,
		logf:      logf,
		stop:      make(chan struct{}),
		down:      make(map[int]bool),
		chaosDone: make(chan struct{}),
	}
	defer func() {
		if r.cl != nil {
			r.cl.Close()
		}
	}()
	if err := r.setup(); err != nil {
		return nil, err
	}
	before := sampleCounters()
	if err := r.preload(); err != nil {
		return nil, fmt.Errorf("soak: preload: %w", err)
	}
	acked := r.drive()
	r.recover()
	verified, lost := r.audit(acked)
	r.teardown()
	return r.report(before, verified, lost), nil
}

// setup spins the cluster and its background machinery per the spec.
func (r *run) setup() error {
	s := r.spec
	r.logf("soak %s: %d nodes, %d tenants, k=%d W=%d, %v",
		s.Name, s.Nodes, len(s.Tenants), s.Replicas, s.WriteConcern, s.Duration)
	opts := cluster.HarnessOptions{
		Canaries:       true,
		QueueLimit:     s.QueueLimit,
		MemBudgetBytes: s.MemBudgetBytes,
		TierSpec:       s.TierSpec,
	}
	if s.NetFault != nil {
		r.injector = fault.NewInjector(s.Seed, fault.Plan{
			Latency:        s.NetFault.Latency,
			Jitter:         s.NetFault.Jitter,
			WriteResetRate: s.NetFault.ResetRate,
			ReadResetRate:  s.NetFault.ResetRate,
		})
		opts.Dialer = r.injector.Dial
	}
	cl, err := cluster.SpinLocalOptions(s.Nodes, s.Seed, opts)
	if err != nil {
		return err
	}
	r.cl = cl
	r.kv = cluster.NewReplicatedKV(cl.Pool(), cluster.ReplicationConfig{
		Replicas: s.Replicas, WriteConcern: s.WriteConcern,
	})
	if s.Compaction {
		for i := 0; i < cl.Nodes(); i++ {
			c := core.NewCompactor(cl.Node(i).Store(), core.CompactorConfig{
				Interval: 20 * time.Millisecond,
			})
			c.Start()
			r.compactors = append(r.compactors, c)
		}
	}
	if s.Replicas > 1 {
		r.replicator = cluster.NewReplicator(r.kv, cluster.ReplicatorConfig{
			Interval: 20 * time.Millisecond,
		})
		r.replicator.Start()
	}
	r.adm = cluster.NewAdmission()
	for _, t := range s.Tenants {
		if t.Admission != nil {
			r.adm.SetTenant(t.Name, t.Admission.RatePerSec, t.Admission.Burst)
		}
		r.recorders = append(r.recorders, newRecorder(t.Name, s.Phases))
	}
	// One sentinel object per node, allocated straight on the store so it
	// exists (and can be corrupted) even while the node's listener is dead.
	for i := 0; i < cl.Nodes(); i++ {
		addr, err := r.allocCanary(cl.Node(i).Store())
		if err != nil {
			return err
		}
		r.canaryAddrs = append(r.canaryAddrs, addr)
	}
	return nil
}

func (r *run) allocCanary(st *core.Store) (core.Addr, error) {
	res, err := st.AllocOn(0, canaryObjectBytes)
	if err != nil {
		return core.Addr{}, fmt.Errorf("soak: canary alloc: %w", err)
	}
	return res.Addr, nil
}

// preload writes seq 0 of every tenant key so reads never miss and the
// audit has a baseline for keys the run never rewrites.
func (r *run) preload() error {
	for _, t := range r.spec.Tenants {
		val := make([]byte, t.ValueBytes)
		for k := 0; k < t.Keys; k++ {
			encodeValue(val, uint64(k), 0, t.Name)
			var err error
			// A few retries ride out injected connection resets (NetFault
			// is live during preload too).
			for attempt := 0; attempt < 5; attempt++ {
				if err = r.kv.Put(keyName(t.Name, uint64(k)), val); err == nil {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err != nil {
				return err
			}
		}
	}
	r.logf("soak %s: preloaded %d tenants", r.spec.Name, len(r.spec.Tenants))
	return nil
}

// drive runs the measured window: phase scheduler, chaos schedule, and
// every tenant client, then merges the clients' acked-write maps.
func (r *run) drive() []map[uint64]uint64 {
	r.start = time.Now()
	go r.phaseLoop()
	go r.chaosLoop()

	acked := make([]map[uint64]uint64, len(r.spec.Tenants))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for ti := range r.spec.Tenants {
		t := &tenantRunner{
			spec:  r.spec.Tenants[ti],
			kv:    r.kv,
			adm:   r.adm,
			rec:   r.recorders[ti],
			phase: &r.phase,
			start: r.start,
			stop:  r.stop,
		}
		acked[ti] = make(map[uint64]uint64)
		for cid := 0; cid < t.spec.Clients; cid++ {
			wg.Add(1)
			go func(ti, cid int, t *tenantRunner) {
				defer wg.Done()
				got := t.runClient(cid, r.spec.Seed*1_000_003+int64(ti)*8191+int64(cid))
				mu.Lock()
				// Client write partitions are disjoint, so the merge
				// never sees two writers for one key.
				for k, v := range got {
					acked[ti][k] = v
				}
				mu.Unlock()
			}(ti, cid, t)
		}
	}

	time.Sleep(r.spec.Duration)
	close(r.stop)
	wg.Wait()
	<-r.chaosDone
	return acked
}

// phaseLoop advances the current phase index as the clock crosses each
// declared boundary.
func (r *run) phaseLoop() {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			elapsed := time.Since(r.start)
			idx := len(r.spec.Phases) - 1
			for i, p := range r.spec.Phases {
				if elapsed < p.Until {
					idx = i
					break
				}
			}
			r.phase.Store(int32(idx))
		}
	}
}

// chaosLoop fires the fault schedule in After order.
func (r *run) chaosLoop() {
	defer close(r.chaosDone)
	events := append([]ChaosEvent(nil), r.spec.Chaos...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].After < events[j].After })
	for _, e := range events {
		wait := e.After - time.Since(r.start)
		if wait > 0 {
			select {
			case <-r.stop:
				return
			case <-time.After(wait):
			}
		}
		r.fire(e)
	}
}

// fire executes one chaos event against the live cluster.
func (r *run) fire(e ChaosEvent) {
	node := r.cl.Node(e.Node)
	switch e.Action {
	case ActKill:
		if r.down[e.Node] {
			return
		}
		node.Kill()
		r.down[e.Node] = true
	case ActRestart:
		if !r.down[e.Node] {
			return
		}
		if err := node.Restart(); err != nil {
			r.logf("soak chaos: restart node %d: %v", e.Node, err)
			return
		}
		r.down[e.Node] = false
	case ActWipe:
		if !r.down[e.Node] {
			node.Kill()
		}
		if err := node.Wipe(); err != nil {
			r.logf("soak chaos: wipe node %d: %v", e.Node, err)
			return
		}
		r.down[e.Node] = false
		// The wiped store is brand new: plant a fresh sentinel in it.
		if addr, err := r.allocCanary(node.Store()); err == nil {
			r.canaryAddrs[e.Node] = addr
		} else {
			r.logf("soak chaos: %v", err)
		}
	case ActCorrupt:
		if err := node.Store().CorruptSlotTail(&r.canaryAddrs[e.Node]); err != nil {
			r.logf("soak chaos: corrupt node %d: %v", e.Node, err)
			return
		}
	}
	r.chaosRan++
	r.logf("soak chaos: %s node %d at +%v", e.Action, e.Node, time.Since(r.start).Round(time.Millisecond))
}

// recover restarts any node the chaos schedule left down, so the audit
// reads against a whole cluster (the state an operator would restore).
func (r *run) recover() {
	// The audit must measure what the cluster holds, not the network's
	// mood: stop injecting before reading anything back.
	if r.injector != nil {
		r.injector.Disable()
	}
	for i, isDown := range r.down {
		if !isDown {
			continue
		}
		if err := r.cl.Node(i).Restart(); err != nil {
			r.logf("soak recover: node %d: %v", i, err)
			continue
		}
		r.down[i] = false
	}
	if r.replicator != nil {
		r.replicator.Kick()
	}
}

// audit proves durability: every key must read back exactly its last acked
// sequence number (failed replicated Puts roll back completely, so nothing
// between acks can surface). Keys that fail get retry passes — repair may
// still be healing replicas — before they count as lost.
func (r *run) audit(acked []map[uint64]uint64) (verified, lost int) {
	type pending struct {
		tenant int
		key    uint64
		want   uint64
	}
	var failing []pending
	check := func(p pending) bool {
		t := r.spec.Tenants[p.tenant]
		v, found, err := r.kv.Get(keyName(t.Name, p.key))
		if err != nil || !found {
			return false
		}
		seq, ok := decodeValue(v, p.key, t.Name, t.ValueBytes)
		return ok && seq == p.want
	}
	for ti, t := range r.spec.Tenants {
		for k := 0; k < t.Keys; k++ {
			p := pending{tenant: ti, key: uint64(k), want: acked[ti][uint64(k)]}
			verified++
			if !check(p) {
				failing = append(failing, p)
			}
		}
	}
	for pass := 0; pass < 20 && len(failing) > 0; pass++ {
		time.Sleep(50 * time.Millisecond)
		var still []pending
		for _, p := range failing {
			if !check(p) {
				still = append(still, p)
			}
		}
		failing = still
	}
	for _, p := range failing {
		r.logf("soak audit: LOST %s/%d want seq %d",
			r.spec.Tenants[p.tenant].Name, p.key, p.want)
	}
	return verified, len(failing)
}

// teardown sweeps the canary sentinels (reading each one trips detection
// on any injected corruption) and stops the background machinery.
func (r *run) teardown() {
	buf := make([]byte, canaryObjectBytes)
	for i := 0; i < r.cl.Nodes(); i++ {
		// ErrCorruption here is the sweep working, not a failure; the
		// violation counter it bumps is the report's source of truth.
		_, _ = r.cl.Node(i).Store().Read(&r.canaryAddrs[i], buf)
	}
	if r.replicator != nil {
		r.replicator.Stop()
	}
	for _, c := range r.compactors {
		c.Stop()
	}
}

// report assembles the final Report and renders the verdict.
func (r *run) report(before map[string]int64, verified, lost int) *Report {
	rep := &Report{
		Scenario:        r.spec.Name,
		Seed:            r.spec.Seed,
		Nodes:           r.spec.Nodes,
		Replicas:        r.spec.Replicas,
		WriteConcern:    r.spec.WriteConcern,
		Seconds:         time.Since(r.start).Seconds(),
		ChaosEvents:     r.chaosRan,
		VerifiedKeys:    verified,
		LostAckedWrites: lost,
		CanaryExpected:  r.spec.ExpectCanary,
		Cluster:         counterDeltas(before),
		SLOPass:         true,
	}
	rep.CanaryViolations = rep.Cluster["corm_core_canary_violations_total"]
	for ti, t := range r.spec.Tenants {
		rec := r.recorders[ti]
		tr := TenantReport{
			Name:      t.Name,
			Ops:       rec.ops.Load(),
			Errors:    rec.errs.Load(),
			Throttled: rec.throttled.Load(),
			Get:       quantilesOf(rec.overall[opGet]),
			Put:       quantilesOf(rec.overall[opPut]),
		}
		if tr.Ops > 0 {
			tr.ErrorRate = float64(tr.Errors) / float64(tr.Ops)
		}
		for pi, p := range r.spec.Phases {
			tr.Phases = append(tr.Phases, PhaseReport{
				Phase: p.Name,
				Get:   quantilesOf(rec.phases[pi][opGet]),
				Put:   quantilesOf(rec.phases[pi][opPut]),
			})
		}
		evaluateSLO(&tr, t.SLO)
		if !tr.SLO.Pass {
			rep.SLOPass = false
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	canaryOK := rep.CanaryViolations == 0
	if r.spec.ExpectCanary {
		canaryOK = rep.CanaryViolations > 0
	}
	rep.Pass = rep.SLOPass && rep.LostAckedWrites == 0 && canaryOK
	return rep
}
