package soak

import (
	"testing"
	"time"

	"corm/internal/workload"
)

// shortSpec is a compressed chaos scenario: 3 nodes, replicated writes,
// compaction on, one node killed and restarted mid-run. Small enough to
// run under -race in CI, complete enough to exercise every layer the full
// soak composes.
func shortSpec(d time.Duration) Spec {
	return Spec{
		Name:         "test-short",
		Seed:         11,
		Nodes:        3,
		Replicas:     3,
		WriteConcern: 2,
		Duration:     d,
		Compaction:   true,
		Phases: []PhaseSpec{
			{Name: "steady", Until: d / 3},
			{Name: "degraded", Until: d},
		},
		Chaos: []ChaosEvent{
			{After: d / 3, Action: ActKill, Node: 1},
			{After: 2 * d / 3, Action: ActRestart, Node: 1},
		},
		Tenants: []TenantSpec{
			{
				Name: "alpha", Clients: 2, Keys: 96, ValueBytes: 128,
				Mix: workload.Mix95, Dist: workload.DistZipf, Theta: 0.99,
				TargetOpsPerSec: 400,
				SLO:             SLO{MaxErrorRate: 0.02},
			},
			{
				Name: "beta", Clients: 2, Keys: 64, ValueBytes: 256,
				Mix: workload.Mix50, Dist: workload.DistUniform,
				TargetOpsPerSec: 200,
				SLO:             SLO{MaxErrorRate: 0.02},
			},
		},
	}
}

// TestSoakChaosRun drives the full harness — replication, compaction,
// kill/restart chaos, two tenants — and demands a clean verdict: every
// acked write read back, no canary violations, SLOs held.
func TestSoakChaosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	rep, err := Run(shortSpec(3*time.Second), t.Logf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.LostAckedWrites != 0 {
		t.Fatalf("lost %d acked writes", rep.LostAckedWrites)
	}
	if rep.CanaryViolations != 0 {
		t.Fatalf("unexpected canary violations: %d", rep.CanaryViolations)
	}
	if !rep.SLOPass || !rep.Pass {
		t.Fatalf("run failed: slo=%v pass=%v tenants=%+v", rep.SLOPass, rep.Pass, rep.Tenants)
	}
	if rep.ChaosEvents != 2 {
		t.Fatalf("chaos events executed = %d, want 2", rep.ChaosEvents)
	}
	if rep.VerifiedKeys != 96+64 {
		t.Fatalf("verified %d keys, want 160", rep.VerifiedKeys)
	}
	for _, tn := range rep.Tenants {
		if tn.Ops == 0 {
			t.Fatalf("tenant %s recorded no ops", tn.Name)
		}
		if len(tn.Phases) != 2 {
			t.Fatalf("tenant %s has %d phase reports, want 2", tn.Name, len(tn.Phases))
		}
	}
}

// TestSoakOverloadDegradesGracefully is the backpressure proof: an
// unpaced flood tenant behind a tight admission cap must be throttled —
// not errored — while the paced SLO tenant keeps meeting its targets.
func TestSoakOverloadDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	spec := Spec{
		Name:         "test-overload",
		Seed:         13,
		Nodes:        3,
		Replicas:     2,
		WriteConcern: 2,
		Duration:     2500 * time.Millisecond,
		QueueLimit:   64,
		Tenants: []TenantSpec{
			{
				Name: "slo", Clients: 2, Keys: 128, ValueBytes: 128,
				Mix: workload.Mix95, Dist: workload.DistZipf, Theta: 0.99,
				TargetOpsPerSec: 300,
				SLO:             SLO{MaxErrorRate: 0.02},
			},
			{
				Name: "flood", Clients: 4, Keys: 128, ValueBytes: 128,
				Mix: workload.Mix50, Dist: workload.DistUniform,
				Admission: &AdmissionSpec{RatePerSec: 200, Burst: 16},
				SLO:       SLO{MaxErrorRate: 0.02},
			},
		},
	}
	rep, err := Run(spec, t.Logf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var slo, flood *TenantReport
	for i := range rep.Tenants {
		switch rep.Tenants[i].Name {
		case "slo":
			slo = &rep.Tenants[i]
		case "flood":
			flood = &rep.Tenants[i]
		}
	}
	if flood.Throttled == 0 {
		t.Fatal("flood tenant was never throttled — admission cap did nothing")
	}
	if !flood.SLO.Pass {
		t.Fatalf("flood tenant errored instead of shedding: %+v", flood.SLO)
	}
	if !slo.SLO.Pass {
		t.Fatalf("slo tenant breached under overload: %+v", slo.SLO)
	}
	if rep.LostAckedWrites != 0 {
		t.Fatalf("lost %d acked writes under overload", rep.LostAckedWrites)
	}
	if !rep.Pass {
		t.Fatalf("overload run failed: %+v", rep)
	}
	adm := rep.Cluster["corm_cluster_admission_throttled_total"]
	if adm == 0 {
		t.Fatal("admission throttle counter never moved")
	}
}

// TestSoakTieredOversubscribed runs the full stack under a resident
// budget ~2× smaller than the working set: the clock must evict cold
// blocks to the compressed tier and fault them back on access, under
// compaction + replication + kill/restart chaos — with zero lost acked
// writes and zero corruption.
func TestSoakTieredOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	spec := shortSpec(3 * time.Second)
	spec.Name = "test-tiered"
	spec.Seed = 23
	// Working set: 96×128 + 64×256 ≈ 28 KiB of payload per node plus
	// block slack; a 64 KiB budget (16 frames) forces steady eviction.
	spec.MemBudgetBytes = 64 << 10
	spec.TierSpec = "compressed"
	rep, err := Run(spec, t.Logf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.LostAckedWrites != 0 {
		t.Fatalf("lost %d acked writes under oversubscription", rep.LostAckedWrites)
	}
	if rep.CanaryViolations != 0 {
		t.Fatalf("canary violations under oversubscription: %d", rep.CanaryViolations)
	}
	if !rep.Pass {
		t.Fatalf("tiered run failed: %+v", rep.Tenants)
	}
	if rep.Cluster["corm_tier_evictions_total"] == 0 {
		t.Fatal("budget 2x below working set but nothing was evicted")
	}
	if rep.Cluster["corm_tier_faultins_total"] == 0 {
		t.Fatal("evicted blocks were never faulted back in")
	}
}

// TestSoakCanaryScenario injects a slot-tail corruption mid-run and
// demands the sweep detects it: the run passes BECAUSE violations were
// found (ExpectCanary inverts the criterion).
func TestSoakCanaryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	spec := Spec{
		Name:         "test-canary",
		Seed:         17,
		Nodes:        2,
		Replicas:     2,
		WriteConcern: 1,
		Duration:     1500 * time.Millisecond,
		ExpectCanary: true,
		Chaos: []ChaosEvent{
			{After: 500 * time.Millisecond, Action: ActCorrupt, Node: 0},
		},
		Tenants: []TenantSpec{
			{
				Name: "probe", Clients: 1, Keys: 32, ValueBytes: 64,
				Mix: workload.Mix95, Dist: workload.DistUniform,
				TargetOpsPerSec: 100,
				SLO:             SLO{MaxErrorRate: 0.02},
			},
		},
	}
	rep, err := Run(spec, t.Logf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.CanaryViolations == 0 {
		t.Fatal("injected corruption went undetected")
	}
	if !rep.Pass {
		t.Fatalf("canary scenario failed: %+v", rep)
	}

	// The same corruption without ExpectCanary must fail the run.
	spec.ExpectCanary = false
	spec.Name = "test-canary-strict"
	rep, err = Run(spec, t.Logf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Pass {
		t.Fatal("corrupted run passed with ExpectCanary off")
	}
}

// TestSoakNetFault runs with continuous connection resets and jitter
// injected on every pool connection (internal/fault underneath the KV):
// errors are tolerated up to the SLO, but no acked write may be lost and
// the audit must still complete once injection stops.
func TestSoakNetFault(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	spec := Spec{
		Name:         "test-netfault",
		Seed:         19,
		Nodes:        3,
		Replicas:     3,
		WriteConcern: 2,
		Duration:     2 * time.Second,
		NetFault: &NetFaultSpec{
			Latency: 20 * time.Microsecond, Jitter: 30 * time.Microsecond,
			ResetRate: 0.001,
		},
		Tenants: []TenantSpec{
			{
				Name: "jittery", Clients: 2, Keys: 64, ValueBytes: 128,
				Mix: workload.Mix50, Dist: workload.DistUniform,
				TargetOpsPerSec: 300,
				SLO:             SLO{MaxErrorRate: 0.25},
			},
		},
	}
	rep, err := Run(spec, t.Logf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.LostAckedWrites != 0 {
		t.Fatalf("lost %d acked writes under network faults", rep.LostAckedWrites)
	}
	if !rep.Pass {
		t.Fatalf("netfault run failed: %+v", rep.Tenants)
	}
}

// TestSpecValidation exercises the declarative layer's guard rails.
func TestSpecValidation(t *testing.T) {
	base := func() Spec {
		return Spec{Nodes: 2, Tenants: []TenantSpec{{Name: "a"}}}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no tenants", func(s *Spec) { s.Tenants = nil }},
		{"empty tenant name", func(s *Spec) { s.Tenants[0].Name = "" }},
		{"duplicate tenant", func(s *Spec) { s.Tenants = append(s.Tenants, TenantSpec{Name: "a"}) }},
		{"chaos node out of range", func(s *Spec) { s.Chaos = []ChaosEvent{{Node: 5}} }},
		{"phase order", func(s *Spec) {
			// The last phase is normalized to Duration, so the violation
			// must sit in the middle of the list.
			s.Phases = []PhaseSpec{
				{Name: "a", Until: 3 * time.Second},
				{Name: "b", Until: time.Second},
				{Name: "c", Until: 2 * time.Second},
			}
		}},
		{"empty phase name", func(s *Spec) { s.Phases = []PhaseSpec{{Until: time.Second}} }},
	}
	for _, c := range cases {
		s := base()
		c.mutate(&s)
		if err := s.withDefaults().validate(); err == nil {
			t.Fatalf("%s: validate accepted bad spec", c.name)
		}
	}
	ok := base().withDefaults()
	if err := ok.validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if ok.WriteConcern != ok.Replicas {
		t.Fatalf("write concern default = %d, want %d", ok.WriteConcern, ok.Replicas)
	}
	if ok.Tenants[0].ValueBytes < auditHeaderBytes {
		t.Fatalf("value bytes %d below audit header", ok.Tenants[0].ValueBytes)
	}
}

// TestScenarioRegistry pins the built-in catalogue.
func TestScenarioRegistry(t *testing.T) {
	want := []string{"canary", "overload", "smoke", "standard", "tiered"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		spec, err := Lookup(name, 2*time.Second)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		spec = spec.withDefaults()
		if err := spec.validate(); err != nil {
			t.Fatalf("scenario %s invalid: %v", name, err)
		}
		if spec.Duration != 2*time.Second {
			t.Fatalf("scenario %s ignored duration override", name)
		}
	}
	if _, err := Lookup("nope", 0); err == nil {
		t.Fatal("Lookup accepted unknown scenario")
	}
}

// TestValueAudit pins the audit encoding round trip and its rejections.
func TestValueAudit(t *testing.T) {
	v := make([]byte, 64)
	encodeValue(v, 42, 7, "gold")
	if seq, ok := decodeValue(v, 42, "gold", 64); !ok || seq != 7 {
		t.Fatalf("round trip: seq=%d ok=%v", seq, ok)
	}
	if _, ok := decodeValue(v, 43, "gold", 64); ok {
		t.Fatal("accepted wrong key")
	}
	if _, ok := decodeValue(v, 42, "silver", 64); ok {
		t.Fatal("accepted wrong tenant")
	}
	if _, ok := decodeValue(v[:32], 42, "gold", 64); ok {
		t.Fatal("accepted truncated value")
	}
}
