package soak

import (
	"fmt"
	"sync/atomic"
	"time"

	"corm/internal/metrics"
)

// recorder accumulates one tenant's measurements: an overall get/put
// histogram pair (SLOs judge the whole run) plus a pair per phase. The
// histograms live in the process-global metrics registry under labeled
// names — the soak IS the metrics layer's consumer — and are reset at run
// start because registry registration is idempotent across runs in one
// process.
type recorder struct {
	tenant    string
	overall   [2]*metrics.Histogram // [opGet, opPut]
	phases    [][2]*metrics.Histogram
	ops       atomic.Int64
	errs      atomic.Int64
	throttled atomic.Int64
}

const (
	opGet = 0
	opPut = 1
)

var opNames = [2]string{"get", "put"}

func newRecorder(tenant string, phases []PhaseSpec) *recorder {
	r := &recorder{tenant: tenant}
	reg := metrics.Default()
	for op, name := range opNames {
		h := reg.Histogram(
			fmt.Sprintf(`corm_soak_latency_ns{tenant=%q,op=%q}`, tenant, name),
			"soak client-observed operation latency")
		h.Reset()
		r.overall[op] = h
	}
	for _, p := range phases {
		var pair [2]*metrics.Histogram
		for op, name := range opNames {
			h := reg.Histogram(
				fmt.Sprintf(`corm_soak_latency_ns{tenant=%q,op=%q,phase=%q}`, tenant, name, p.Name),
				"soak client-observed operation latency by phase")
			h.Reset()
			pair[op] = h
		}
		r.phases = append(r.phases, pair)
	}
	return r
}

// observe records one served operation's latency under the current phase.
func (r *recorder) observe(phase int, op int, d time.Duration) {
	r.ops.Add(1)
	r.overall[op].Record(d)
	if phase >= 0 && phase < len(r.phases) {
		r.phases[phase][op].Record(d)
	}
}

func (r *recorder) noteError()    { r.ops.Add(1); r.errs.Add(1) }
func (r *recorder) noteThrottle() { r.throttled.Add(1) }

// QuantilesUs is a p50/p99/p99.9 triple in microseconds.
type QuantilesUs struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_us"`
	P99   float64 `json:"p99_us"`
	P999  float64 `json:"p999_us"`
	Max   float64 `json:"max_us"`
}

func quantilesOf(h *metrics.Histogram) QuantilesUs {
	s := h.Snapshot()
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return QuantilesUs{
		Count: s.Count,
		P50:   us(s.Quantile(0.50)),
		P99:   us(s.Quantile(0.99)),
		P999:  us(s.Quantile(0.999)),
		Max:   us(s.Max),
	}
}

// PhaseReport is one tenant's latency shape during one phase.
type PhaseReport struct {
	Phase string      `json:"phase"`
	Get   QuantilesUs `json:"get"`
	Put   QuantilesUs `json:"put"`
}

// SLOReport echoes the declared targets (in microseconds; 0 = not
// enforced) next to the verdict, so the JSON is self-describing.
type SLOReport struct {
	GetP99Us     float64  `json:"get_p99_us,omitempty"`
	GetP999Us    float64  `json:"get_p999_us,omitempty"`
	PutP99Us     float64  `json:"put_p99_us,omitempty"`
	PutP999Us    float64  `json:"put_p999_us,omitempty"`
	MaxErrorRate float64  `json:"max_error_rate"`
	Pass         bool     `json:"pass"`
	Breaches     []string `json:"breaches,omitempty"`
}

// TenantReport is one tenant's full outcome.
type TenantReport struct {
	Name      string        `json:"name"`
	Ops       int64         `json:"ops"`
	Errors    int64         `json:"errors"`
	Throttled int64         `json:"throttled"`
	ErrorRate float64       `json:"error_rate"`
	Get       QuantilesUs   `json:"get"`
	Put       QuantilesUs   `json:"put"`
	Phases    []PhaseReport `json:"phases"`
	SLO       SLOReport     `json:"slo"`
}

// Report is the machine-readable outcome of one soak run — the content of
// BENCH_soak.json.
type Report struct {
	Scenario     string  `json:"scenario"`
	Seed         int64   `json:"seed"`
	Nodes        int     `json:"nodes"`
	Replicas     int     `json:"replicas"`
	WriteConcern int     `json:"write_concern"`
	Seconds      float64 `json:"seconds"`

	Tenants []TenantReport `json:"tenants"`

	ChaosEvents      int   `json:"chaos_events"`
	VerifiedKeys     int   `json:"verified_keys"`
	LostAckedWrites  int   `json:"lost_acked_writes"`
	CanaryViolations int64 `json:"canary_violations"`
	CanaryExpected   bool  `json:"canary_expected"`

	// Cluster samples selected registry counters as run deltas — the
	// background machinery's activity record (compaction merges, shed
	// requests, failovers, repairs).
	Cluster map[string]int64 `json:"cluster"`

	SLOPass bool `json:"slo_pass"`
	// Pass is the overall verdict: every SLO held, no acked write was
	// lost, and the canary criterion matched expectation.
	Pass bool `json:"pass"`
}

// evaluateSLO fills a tenant report's verdict from its declared targets.
func evaluateSLO(t *TenantReport, slo SLO) {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	t.SLO = SLOReport{
		GetP99Us:     us(slo.GetP99),
		GetP999Us:    us(slo.GetP999),
		PutP99Us:     us(slo.PutP99),
		PutP999Us:    us(slo.PutP999),
		MaxErrorRate: slo.MaxErrorRate,
		Pass:         true,
	}
	breach := func(format string, args ...any) {
		t.SLO.Pass = false
		t.SLO.Breaches = append(t.SLO.Breaches, fmt.Sprintf(format, args...))
	}
	check := func(name string, got, want float64) {
		if want > 0 && got > want {
			breach("%s %.0fµs > target %.0fµs", name, got, want)
		}
	}
	check("get p99", t.Get.P99, t.SLO.GetP99Us)
	check("get p99.9", t.Get.P999, t.SLO.GetP999Us)
	check("put p99", t.Put.P99, t.SLO.PutP99Us)
	check("put p99.9", t.Put.P999, t.SLO.PutP999Us)
	if t.ErrorRate > slo.MaxErrorRate {
		breach("error rate %.4f > target %.4f", t.ErrorRate, slo.MaxErrorRate)
	}
}

// clusterCounterNames are the registry counters sampled into the report.
var clusterCounterNames = []string{
	"corm_compaction_merges_total",
	"corm_compaction_blocks_freed_total",
	"corm_compactor_cycles_total",
	"corm_rpc_shed_total",
	"corm_rpc_requests_total",
	"corm_cluster_admission_throttled_total",
	"corm_cluster_breaker_trips_total",
	"corm_cluster_failovers_total",
	"corm_cluster_replicas_repaired_total",
	"corm_cluster_write_concern_misses_total",
	"corm_core_canary_violations_total",
	"corm_tier_evictions_total",
	"corm_tier_faultins_total",
	"corm_tier_reclaim_runs_total",
	"corm_rnic_host_faults_total",
}

// sampleCounters snapshots the sampled registry counters.
func sampleCounters() map[string]int64 {
	out := make(map[string]int64, len(clusterCounterNames))
	for _, name := range clusterCounterNames {
		out[name] = metrics.Default().Counter(name, "").Value()
	}
	return out
}

// counterDeltas subtracts a before-snapshot from the current values.
func counterDeltas(before map[string]int64) map[string]int64 {
	after := sampleCounters()
	for k, v := range before {
		after[k] -= v
	}
	return after
}
