// Package soak is the production soak harness: a multi-node, multi-tenant
// scenario engine that drives the full stack — replicated cluster KV over
// the in-process harness, background compaction, chaos (kill / restart /
// wipe / corrupt), admission control, and server-side load shedding — the
// way production traffic would, simultaneously, and judges the run against
// declared SLOs.
//
// A Spec is declarative: tenants × workload mix × skew × chaos schedule ×
// SLO targets. Run executes it and produces a machine-readable Report
// (per-tenant/per-phase latency quantiles, error and throttle counts,
// lost-acked-write audit, canary-corruption audit, SLO pass/fail booleans)
// that `corm-bench soak` serializes as BENCH_soak.json and CI gates on.
package soak

import (
	"fmt"
	"time"

	"corm/internal/workload"
)

// SLO declares a tenant's latency and error targets. Zero-valued fields
// are not enforced, so a tenant can declare only the bounds it cares
// about. Latencies are end-to-end client-observed (admission wait
// excluded — a throttled op is shed, not served).
type SLO struct {
	// GetP99/GetP999 bound read latency quantiles.
	GetP99  time.Duration
	GetP999 time.Duration
	// PutP99/PutP999 bound write latency quantiles.
	PutP99  time.Duration
	PutP999 time.Duration
	// MaxErrorRate bounds errors/ops over the whole run. Throttled
	// operations are shed load, not errors — graceful degradation is the
	// point — so they count separately.
	MaxErrorRate float64
}

// NetFaultSpec scripts background network flakiness for the whole run:
// every pool connection is wrapped by a seeded internal/fault Injector, so
// the soak exercises redial, retry, and breaker paths continuously instead
// of only at chaos events. Injection is disabled before the final audit.
type NetFaultSpec struct {
	// Latency/Jitter delay every wire operation (fixed + uniform random).
	Latency time.Duration
	Jitter  time.Duration
	// ResetRate resets a connection with this per-operation probability.
	ResetRate float64
}

// AdmissionSpec caps a tenant's offered load at the client/cluster edge.
type AdmissionSpec struct {
	// RatePerSec is the steady-state admitted rate.
	RatePerSec float64
	// Burst is the bucket depth (ops admitted instantaneously).
	Burst int
}

// TenantSpec declares one tenant's workload shape and targets.
type TenantSpec struct {
	// Name labels the tenant in the report and metrics.
	Name string
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Keys is the tenant's key-space size.
	Keys int
	// ValueBytes is the object payload size (clamped to >= 24, the
	// audit-header minimum).
	ValueBytes int
	// Mix is the read:write ratio.
	Mix workload.Mix
	// Dist selects the key distribution; Theta applies to DistZipf.
	Dist  workload.Dist
	Theta float64
	// TargetOpsPerSec paces the tenant's offered load (split across its
	// clients). 0 = unpaced: offer as fast as possible (the overload
	// tenant shape).
	TargetOpsPerSec float64
	// Ramp, when set, replaces TargetOpsPerSec with a diurnal curve.
	Ramp *workload.Ramp
	// Storm, when set, overlays recurring hot-key storms on the stream.
	Storm *workload.StormConfig
	// Admission, when set, caps the tenant at the admission controller.
	Admission *AdmissionSpec
	// SLO is the tenant's declared targets.
	SLO SLO
}

// ChaosAction is one kind of scheduled fault.
type ChaosAction int

const (
	// ActKill closes a node's listener (store survives).
	ActKill ChaosAction = iota
	// ActRestart brings a killed node back over its surviving store.
	ActRestart
	// ActWipe brings a killed node back with an empty store (machine
	// replacement; the replicator's repair case). Applies to a down node
	// or a live one (which is killed first).
	ActWipe
	// ActCorrupt overwrites a guard byte of the node's canary object —
	// an injected memory-safety violation the canary sweep must catch.
	ActCorrupt
)

func (a ChaosAction) String() string {
	switch a {
	case ActKill:
		return "kill"
	case ActRestart:
		return "restart"
	case ActWipe:
		return "wipe"
	case ActCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("chaos(%d)", int(a))
}

// ChaosEvent schedules one fault at an offset from the run start.
type ChaosEvent struct {
	After  time.Duration
	Action ChaosAction
	Node   int
}

// PhaseSpec names a window of the run; per-phase latency histograms are
// keyed by it. Until is the phase's end offset from the run start; phases
// must be declared in increasing Until order and the last one is extended
// to cover the full duration.
type PhaseSpec struct {
	Name  string
	Until time.Duration
}

// Spec is one declarative soak scenario.
type Spec struct {
	// Name labels the scenario in the report.
	Name string
	// Seed makes workload streams and chaos deterministic.
	Seed int64
	// Nodes is the cluster size.
	Nodes int
	// Replicas/WriteConcern configure the replicated KV (defaults 1/k).
	Replicas     int
	WriteConcern int
	// Duration is the measured soak window.
	Duration time.Duration
	// Compaction runs a background compactor on every node.
	Compaction bool
	// QueueLimit bounds each node's rpc.Server waiting line (0 = off).
	QueueLimit int
	// MemBudgetBytes caps each node's resident memory; cold blocks spill
	// to TierSpec and fault back in on access. 0 = uncapped (no tiering).
	MemBudgetBytes int64
	// TierSpec selects the spill backend; empty with a budget defaults to
	// "compressed".
	TierSpec string
	// Phases partitions the run for per-phase histograms; empty = one
	// phase named "soak".
	Phases []PhaseSpec
	// Chaos is the fault schedule.
	Chaos []ChaosEvent
	// NetFault, when set, injects continuous network flakiness on every
	// pool connection (forces the TCP wire path).
	NetFault *NetFaultSpec
	// Tenants is the tenant set.
	Tenants []TenantSpec
	// ExpectCanary inverts the canary criterion: the scenario injects
	// corruption (ActCorrupt) and PASSES iff it is detected. Without it,
	// any detected violation fails the run.
	ExpectCanary bool
}

// withDefaults fills unset fields and normalizes phases.
func (s Spec) withDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Nodes == 0 {
		s.Nodes = 3
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.WriteConcern == 0 {
		s.WriteConcern = s.Replicas
	}
	if s.Duration == 0 {
		s.Duration = 10 * time.Second
	}
	if len(s.Phases) == 0 {
		s.Phases = []PhaseSpec{{Name: "soak", Until: s.Duration}}
	}
	s.Phases[len(s.Phases)-1].Until = s.Duration
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if t.Clients == 0 {
			t.Clients = 2
		}
		if t.Keys == 0 {
			t.Keys = 512
		}
		if t.ValueBytes < auditHeaderBytes {
			t.ValueBytes = auditHeaderBytes
		}
		if t.Mix == (workload.Mix{}) {
			t.Mix = workload.Mix95
		}
		if t.Dist == workload.DistZipf && t.Theta == 0 {
			t.Theta = 0.99
		}
	}
	return s
}

// validate rejects specs the runner cannot execute.
func (s Spec) validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("soak: need at least one node")
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("soak: need at least one tenant")
	}
	seen := map[string]bool{}
	for _, t := range s.Tenants {
		if t.Name == "" {
			return fmt.Errorf("soak: tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("soak: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
	}
	var prev time.Duration
	for _, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("soak: phase with empty name")
		}
		if p.Until < prev {
			return fmt.Errorf("soak: phase %q ends before its predecessor", p.Name)
		}
		prev = p.Until
	}
	for _, e := range s.Chaos {
		if e.Node < 0 || e.Node >= s.Nodes {
			return fmt.Errorf("soak: chaos event targets node %d of %d", e.Node, s.Nodes)
		}
	}
	return nil
}
