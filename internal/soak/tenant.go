package soak

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"

	"corm/internal/cluster"
	"corm/internal/workload"
)

// auditHeaderBytes is the self-describing prefix every soak value carries:
// the writer's sequence number, the key, and a tenant fingerprint. The
// post-run audit decodes it to prove every acked write survived.
const auditHeaderBytes = 24

// encodeValue stamps the audit header and fills the tail with a fixed
// pattern (deterministic, so torn or misrouted bytes are visible).
func encodeValue(dst []byte, key, seq uint64, tenant string) {
	binary.LittleEndian.PutUint64(dst[0:8], seq)
	binary.LittleEndian.PutUint64(dst[8:16], key)
	binary.LittleEndian.PutUint64(dst[16:24], tenantFingerprint(tenant))
	for i := auditHeaderBytes; i < len(dst); i++ {
		dst[i] = byte(0xA0 + i%7)
	}
}

// decodeValue recovers (seq, key, ok): ok demands the length, the embedded
// key, and the tenant fingerprint all match expectation.
func decodeValue(v []byte, wantKey uint64, tenant string, wantLen int) (seq uint64, ok bool) {
	if len(v) != wantLen || len(v) < auditHeaderBytes {
		return 0, false
	}
	if binary.LittleEndian.Uint64(v[8:16]) != wantKey {
		return 0, false
	}
	if binary.LittleEndian.Uint64(v[16:24]) != tenantFingerprint(tenant) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v[0:8]), true
}

func tenantFingerprint(tenant string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	return h.Sum64()
}

// keyName maps a tenant's numeric key into the shared KV namespace.
func keyName(tenant string, key uint64) string {
	// Fixed-width decimal keeps allocation size uniform per tenant.
	buf := make([]byte, 0, len(tenant)+12)
	buf = append(buf, tenant...)
	buf = append(buf, '/')
	var digits [10]byte
	for i := 9; i >= 0; i-- {
		digits[i] = byte('0' + key%10)
		key /= 10
	}
	return string(append(buf, digits[:]...))
}

// tenantRunner drives one tenant's client goroutines against the KV.
type tenantRunner struct {
	spec  TenantSpec
	kv    *cluster.KV
	adm   *cluster.Admission
	rec   *recorder
	phase *atomic.Int32
	start time.Time
	stop  chan struct{}
}

// throttleBackoff is how long a client sits out after a throttle —
// production clients back off on 429s; a spin would burn the host CPU the
// measured tenants need.
const throttleBackoff = 200 * time.Microsecond

// rate evaluates the tenant's offered load at an elapsed offset.
func (t *tenantRunner) rate(elapsed time.Duration) float64 {
	if t.spec.Ramp != nil {
		return t.spec.Ramp.Rate(elapsed)
	}
	return t.spec.TargetOpsPerSec
}

// runClient is one client goroutine's lifetime: draw from the key stream,
// pace to the tenant's offered rate, pass admission, execute against the
// KV, and record. Writes stay inside the client's own key partition so the
// post-run audit has a single writer per key; it returns the client's
// acked-write map (key -> last acked seq).
func (t *tenantRunner) runClient(cid int, seed int64) map[uint64]uint64 {
	rng := rand.New(rand.NewSource(seed))
	var keys workload.KeyGen
	switch t.spec.Dist {
	case workload.DistZipf:
		keys = workload.NewZipf(rng, uint64(t.spec.Keys), t.spec.Theta, true)
	default:
		keys = workload.NewUniform(rng, uint64(t.spec.Keys))
	}
	if t.spec.Storm != nil {
		keys = workload.NewStorm(seed+7919, keys, *t.spec.Storm)
	}
	partLo := cid * t.spec.Keys / t.spec.Clients
	partHi := (cid + 1) * t.spec.Keys / t.spec.Clients
	if partHi <= partLo {
		partHi = partLo + 1 // more clients than keys: overlap is fine for reads
	}
	mixTotal := t.spec.Mix.Read + t.spec.Mix.Write

	acked := make(map[uint64]uint64)
	val := make([]byte, t.spec.ValueBytes)
	var seq uint64
	for {
		select {
		case <-t.stop:
			return acked
		default:
		}
		if r := t.rate(time.Since(t.start)); r > 0 {
			interval := time.Duration(float64(time.Second) * float64(t.spec.Clients) / r)
			select {
			case <-t.stop:
				return acked
			case <-time.After(interval):
			}
		}

		key := keys.Next()
		write := t.spec.Mix.Write > 0 && (t.spec.Mix.Read == 0 || rng.Intn(mixTotal) >= t.spec.Mix.Read)
		if write {
			key = uint64(partLo) + key%uint64(partHi-partLo)
		}
		if err := t.adm.Admit(t.spec.Name); err != nil {
			t.rec.noteThrottle()
			time.Sleep(throttleBackoff)
			continue
		}

		phase := int(t.phase.Load())
		name := keyName(t.spec.Name, key)
		begin := time.Now()
		if write {
			seq++
			encodeValue(val, key, seq, t.spec.Name)
			err := t.kv.Put(name, val)
			switch {
			case err == nil:
				t.rec.observe(phase, opPut, time.Since(begin))
				acked[key] = seq
			case errors.Is(err, cluster.ErrThrottled):
				t.rec.noteThrottle()
				time.Sleep(throttleBackoff)
			default:
				t.rec.noteError()
			}
			continue
		}
		v, found, err := t.kv.Get(name)
		switch {
		case err == nil && found:
			if _, ok := decodeValue(v, key, t.spec.Name, t.spec.ValueBytes); !ok {
				// Wrong key, wrong tenant, or wrong shape: the read was
				// served but the bytes are not a value any writer acked.
				t.rec.noteError()
				continue
			}
			t.rec.observe(phase, opGet, time.Since(begin))
		case errors.Is(err, cluster.ErrThrottled):
			t.rec.noteThrottle()
			time.Sleep(throttleBackoff)
		default:
			// Not-found counts too: every key was preloaded, so a miss is
			// a served-but-wrong answer, not an expected state.
			t.rec.noteError()
		}
	}
}
