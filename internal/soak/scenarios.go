package soak

import (
	"fmt"
	"sort"
	"time"

	"corm/internal/workload"
)

// Built-in scenarios. Each is a function of the run duration so callers
// (CI smoke vs. a long local soak) stretch the same shape over different
// windows; chaos offsets scale with the window.

var scenarios = map[string]func(d time.Duration) Spec{
	"smoke":    smokeSpec,
	"standard": standardSpec,
	"overload": overloadSpec,
	"canary":   canarySpec,
	"tiered":   tieredSpec,
}

// Lookup resolves a named scenario at the given duration (0 = the
// scenario's default).
func Lookup(name string, d time.Duration) (Spec, error) {
	fn, ok := scenarios[name]
	if !ok {
		return Spec{}, fmt.Errorf("soak: unknown scenario %q (have %v)", name, Names())
	}
	return fn(d), nil
}

// Names lists the built-in scenarios, sorted.
func Names() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// smokeSpec is the CI gate: 3 nodes, 2 tenants, compaction on, one node
// killed mid-run and restarted, generous SLOs. Short enough for a -race
// CI step, real enough to catch lost acks and SLO regressions.
func smokeSpec(d time.Duration) Spec {
	if d <= 0 {
		d = 8 * time.Second
	}
	return Spec{
		Name:         "smoke",
		Seed:         1,
		Nodes:        3,
		Replicas:     3,
		WriteConcern: 2,
		Duration:     d,
		Compaction:   true,
		Phases: []PhaseSpec{
			{Name: "steady", Until: d / 4},
			{Name: "degraded", Until: 3 * d / 4},
			{Name: "healed", Until: d},
		},
		Chaos: []ChaosEvent{
			{After: d / 4, Action: ActKill, Node: 1},
			{After: 3 * d / 4, Action: ActRestart, Node: 1},
		},
		Tenants: []TenantSpec{
			{
				Name: "oltp", Clients: 3, Keys: 256, ValueBytes: 128,
				Mix: workload.Mix95, Dist: workload.DistZipf, Theta: 0.99,
				TargetOpsPerSec: 600,
				SLO: SLO{
					GetP99: 250 * time.Millisecond, PutP99: 500 * time.Millisecond,
					MaxErrorRate: 0.01,
				},
			},
			{
				Name: "batch", Clients: 2, Keys: 128, ValueBytes: 512,
				Mix: workload.Mix50, Dist: workload.DistUniform,
				TargetOpsPerSec: 300,
				SLO:             SLO{MaxErrorRate: 0.01},
			},
		},
	}
}

// standardSpec is the full production rehearsal: three tenant tiers with
// diurnal ramps and hot-key storms, compaction, a kill/restart plus a
// wipe (the re-replication case), admission caps on the batch tier, and
// bounded server queues.
func standardSpec(d time.Duration) Spec {
	if d <= 0 {
		d = 30 * time.Second
	}
	return Spec{
		Name:         "standard",
		Seed:         7,
		Nodes:        3,
		Replicas:     3,
		WriteConcern: 2,
		Duration:     d,
		Compaction:   true,
		QueueLimit:   256,
		Phases: []PhaseSpec{
			{Name: "rampup", Until: d / 3},
			{Name: "chaos", Until: 2 * d / 3},
			{Name: "recovery", Until: d},
		},
		Chaos: []ChaosEvent{
			{After: d / 3, Action: ActKill, Node: 2},
			{After: d / 2, Action: ActRestart, Node: 2},
			{After: 7 * d / 12, Action: ActWipe, Node: 0},
		},
		// Continuous low-grade network flakiness underneath the scheduled
		// chaos: every connection occasionally resets and carries jitter.
		NetFault: &NetFaultSpec{
			Latency: 20 * time.Microsecond, Jitter: 30 * time.Microsecond,
			ResetRate: 0.0002,
		},
		Tenants: []TenantSpec{
			{
				// Latency-sensitive gold tier: diurnal ramp, skewed reads.
				Name: "gold", Clients: 4, Keys: 1024, ValueBytes: 128,
				Mix: workload.Mix95, Dist: workload.DistZipf, Theta: 0.99,
				Ramp: &workload.Ramp{Base: 400, Peak: 1600, Period: d},
				SLO: SLO{
					GetP99: 250 * time.Millisecond, GetP999: time.Second,
					PutP99:       500 * time.Millisecond,
					MaxErrorRate: 0.01,
				},
			},
			{
				// Mid-tier with recurring hot-key storms.
				Name: "silver", Clients: 3, Keys: 2048, ValueBytes: 256,
				Mix: workload.Mix95, Dist: workload.DistUniform,
				TargetOpsPerSec: 500,
				Storm: &workload.StormConfig{
					HotKeys: 16, Fraction: 0.7,
					Period: d / 3, Duration: d / 12,
				},
				SLO: SLO{GetP99: 500 * time.Millisecond, MaxErrorRate: 0.01},
			},
			{
				// Write-heavy batch tier, capped at admission so it cannot
				// starve the paying tiers.
				Name: "batch", Clients: 2, Keys: 512, ValueBytes: 1024,
				Mix: workload.Mix50, Dist: workload.DistUniform,
				Admission: &AdmissionSpec{RatePerSec: 400, Burst: 64},
				SLO:       SLO{MaxErrorRate: 0.01},
			},
		},
	}
}

// overloadSpec proves graceful degradation: an unpaced flood tenant
// hammers the cluster through a tight admission cap and a bounded server
// queue while a paced SLO tenant must keep meeting its latency targets.
// The flood is shed (throttles, not errors); the SLO tenant must pass.
func overloadSpec(d time.Duration) Spec {
	if d <= 0 {
		d = 6 * time.Second
	}
	return Spec{
		Name:         "overload",
		Seed:         3,
		Nodes:        3,
		Replicas:     2,
		WriteConcern: 2,
		Duration:     d,
		QueueLimit:   64,
		Tenants: []TenantSpec{
			{
				Name: "slo", Clients: 2, Keys: 256, ValueBytes: 128,
				Mix: workload.Mix95, Dist: workload.DistZipf, Theta: 0.99,
				TargetOpsPerSec: 400,
				SLO: SLO{
					GetP99: 250 * time.Millisecond, PutP99: 500 * time.Millisecond,
					MaxErrorRate: 0.01,
				},
			},
			{
				// Unpaced: offers load as fast as it can generate it.
				Name: "flood", Clients: 4, Keys: 256, ValueBytes: 128,
				Mix: workload.Mix50, Dist: workload.DistUniform,
				Admission: &AdmissionSpec{RatePerSec: 500, Burst: 32},
				SLO:       SLO{MaxErrorRate: 0.01},
			},
		},
	}
}

// tieredSpec soaks elastic memory at ~2× oversubscription: each node's
// resident budget is about half the tenants' combined working set, so the
// clock must keep evicting cold blocks to the compressed tier while the
// Zipf tenant's hot set stays resident — all with compaction merging
// blocks, replication repairing them, and a kill/restart mid-run. Lost
// acked writes or canary violations fail the run, proving eviction and
// fault-in never drop or corrupt data under the full stack.
func tieredSpec(d time.Duration) Spec {
	if d <= 0 {
		d = 8 * time.Second
	}
	return Spec{
		Name:         "tiered",
		Seed:         11,
		Nodes:        3,
		Replicas:     3,
		WriteConcern: 2,
		Duration:     d,
		Compaction:   true,
		// Working set per node: hot 1024×1024B + cold 2048×1024B ≈ 3 MiB
		// of payload (every node replicates every key at Replicas=3).
		// A 1.5 MiB budget is ~2× oversubscribed, so steady-state traffic
		// cannot run without eviction.
		MemBudgetBytes: 3 << 19,
		TierSpec:       "compressed",
		Phases: []PhaseSpec{
			{Name: "steady", Until: d / 4},
			{Name: "degraded", Until: 3 * d / 4},
			{Name: "healed", Until: d},
		},
		Chaos: []ChaosEvent{
			{After: d / 4, Action: ActKill, Node: 1},
			{After: 3 * d / 4, Action: ActRestart, Node: 1},
		},
		Tenants: []TenantSpec{
			{
				// Skewed tenant: its top keys should stay resident.
				Name: "hot", Clients: 3, Keys: 1024, ValueBytes: 1024,
				Mix: workload.Mix95, Dist: workload.DistZipf, Theta: 0.99,
				TargetOpsPerSec: 500,
				SLO: SLO{
					GetP99: 500 * time.Millisecond, PutP99: time.Second,
					MaxErrorRate: 0.01,
				},
			},
			{
				// Uniform sweeper: touches everything, forcing continuous
				// eviction/fault-in churn against the budget.
				Name: "sweep", Clients: 2, Keys: 2048, ValueBytes: 1024,
				Mix: workload.Mix50, Dist: workload.DistUniform,
				TargetOpsPerSec: 250,
				SLO:             SLO{MaxErrorRate: 0.01},
			},
		},
	}
}

// canarySpec injects a slot-boundary corruption on every node mid-run and
// passes only if the canary sweep detects it — the harness checking its
// own smoke detector.
func canarySpec(d time.Duration) Spec {
	if d <= 0 {
		d = 4 * time.Second
	}
	return Spec{
		Name:         "canary",
		Seed:         5,
		Nodes:        3,
		Replicas:     2,
		WriteConcern: 1,
		Duration:     d,
		ExpectCanary: true,
		Chaos: []ChaosEvent{
			{After: d / 2, Action: ActCorrupt, Node: 0},
			{After: d / 2, Action: ActCorrupt, Node: 1},
			{After: d / 2, Action: ActCorrupt, Node: 2},
		},
		Tenants: []TenantSpec{
			{
				Name: "probe", Clients: 2, Keys: 128, ValueBytes: 128,
				Mix: workload.Mix95, Dist: workload.DistUniform,
				TargetOpsPerSec: 300,
				SLO:             SLO{MaxErrorRate: 0.01},
			},
		},
	}
}
