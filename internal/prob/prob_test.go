package prob

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestExactSmallCases(t *testing.T) {
	// n=4, b1=1, b2=1: second ID avoids 1 of 4 -> 3/4.
	if p := NoCollision(4, 10, 1, 1); !almost(p, 0.75, 1e-12) {
		t.Errorf("p = %v, want 0.75", p)
	}
	// n=4, b1=2, b2=2: C(2,2)/C(4,2) = 1/6.
	if p := NoCollision(4, 10, 2, 2); !almost(p, 1.0/6, 1e-12) {
		t.Errorf("p = %v, want 1/6", p)
	}
	// Empty blocks always compact.
	if NoCollision(16, 16, 0, 5) != 1 || NoCollision(16, 16, 5, 0) != 1 {
		t.Error("empty block should compact with probability 1")
	}
}

func TestCapacityCutoff(t *testing.T) {
	// b1+b2 > s: not compactable regardless of ID space.
	if NoCollision(1<<16, 8, 5, 4) != 0 {
		t.Error("over-capacity merge must have probability 0")
	}
	if NoCollision(1<<16, 9, 5, 4) <= 0 {
		t.Error("exact-capacity merge must be possible")
	}
}

func TestSymmetry(t *testing.T) {
	// p(B1,B2) = p(B2,B1) (§3.4).
	f := func(b1, b2 uint8) bool {
		n, s := 1<<12, 256
		x, y := int(b1)%120, int(b2)%120
		return almost(NoCollision(n, s, x, y), NoCollision(n, s, y, x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicity(t *testing.T) {
	// More bits -> higher probability; fuller blocks -> lower probability.
	s := 256
	for b := 1; b <= 120; b += 7 {
		p8, p12, p16 := CoRM(8, s, b, b), CoRM(12, s, b, b), CoRM(16, s, b, b)
		if p8 > p12+1e-12 || p12 > p16+1e-12 {
			t.Fatalf("bits monotonicity violated at b=%d: %v %v %v", b, p8, p12, p16)
		}
	}
	prev := 1.0
	for b := 0; b <= 128; b += 8 {
		p := CoRM(16, s, b, b)
		if p > prev+1e-12 {
			t.Fatalf("occupancy monotonicity violated at b=%d", b)
		}
		prev = p
	}
}

func TestProbabilityBounds(t *testing.T) {
	f := func(bits, b1, b2 uint8) bool {
		x := int(bits)%13 + 4 // 4..16 bits
		s := 256
		p := CoRM(x, s, int(b1), int(b2))
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoRM8EqualsMeshFor16ByteObjects(t *testing.T) {
	// §3.4: 4 KiB block of 16 B objects holds 256 slots; with 8-bit IDs
	// CoRM's ID space equals Mesh's offset space, so probabilities match.
	s := 4096 / 16
	for b := 8; b <= 100; b += 9 {
		if !almost(CoRM(8, s, b, b), Mesh(s, b, b), 1e-9) {
			t.Fatalf("CoRM-8 != Mesh at b=%d", b)
		}
	}
}

func TestCoRMBeatsMeshForLargeObjects(t *testing.T) {
	// §3.4/Fig 7: for 128 B objects (s=32) at 50% occupancy Mesh is near
	// zero while CoRM-8 succeeds often.
	s := 4096 / 128
	b := BlocksAtOccupancy(s, 0.5)
	mesh, corm8 := Mesh(s, b, b), CoRM(8, s, b, b)
	if mesh > 0.01 {
		t.Errorf("Mesh at 50%% of 128B = %v, want near zero", mesh)
	}
	if corm8 < 0.3 {
		t.Errorf("CoRM-8 at 50%% of 128B = %v, want substantial", corm8)
	}
}

func TestCoRMCapacityExceedsIDSpace(t *testing.T) {
	// §4.4.1: CoRM-8 cannot manage blocks holding more than 256 objects.
	if CoRM(8, 512, 1, 1) != 0 {
		t.Error("CoRM-8 must refuse blocks with 512 slots")
	}
	if CoRM(16, 512, 1, 1) <= 0 {
		t.Error("CoRM-16 handles 512-slot blocks")
	}
}

func TestFigure7Shape(t *testing.T) {
	pts := Figure7()
	if len(pts) != 4*5 {
		t.Fatalf("points = %d, want 20", len(pts))
	}
	for _, p := range pts {
		// CoRM-16 dominates CoRM-8 dominates (for >=16B-but-large classes)...
		if p.CoRM16 < p.CoRM8-1e-9 {
			t.Errorf("CoRM16 < CoRM8 at size=%d occ=%v", p.ObjectSize, p.Occupancy)
		}
		// Paper: "CoRM performs better than Mesh in all situations".
		if p.CoRM16 < p.Mesh-1e-9 {
			t.Errorf("CoRM16 < Mesh at size=%d occ=%v", p.ObjectSize, p.Occupancy)
		}
		// "With 16-bit IDs, CoRM consistently provides a higher chance of
		// compaction regardless of block occupancy": stay well above Mesh
		// at 50% occupancy for 256B objects.
		if p.Occupancy == 0.5 && p.ObjectSize == 256 {
			if p.CoRM16 < 0.9 {
				t.Errorf("CoRM16 at 256B/50%% = %v, want ~1", p.CoRM16)
			}
			if p.Mesh > 0.05 {
				t.Errorf("Mesh at 256B/50%% = %v, want ~0", p.Mesh)
			}
		}
	}
}
