// Package prob computes CoRM's analytical compaction probability (§3.4).
//
// Two blocks B1 and B2 of the same size class, holding b1 and b2 objects
// with identifiers drawn uniformly at random from an ID space of size n,
// can be compacted iff their ID sets are disjoint and the objects fit in a
// single block (b1+b2 <= s). The probability of no collision is
//
//	p(B1,B2) = C(n-b1, b2) / C(n, b2)
//
// For Mesh the "identifier" of an object is its slot offset, so n = s (the
// block's slot capacity). For CoRM-x, n = 2^x independent of the class, so
// large classes — where Mesh's offset space collapses — retain a high
// compaction probability.
package prob

import "math"

// lnChoose returns ln C(n, k) using the log-gamma function, valid for large
// n (ID spaces up to 2^20 and beyond).
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// NoCollision returns the probability that b2 IDs drawn uniformly without
// replacement from an n-sized space avoid b1 occupied IDs, with s the slot
// capacity of the merged block. It returns 0 when the merged objects cannot
// fit (b1+b2 > s) or the ID space is too small.
func NoCollision(n, s, b1, b2 int) float64 {
	if b1 < 0 || b2 < 0 {
		panic("prob: negative object count")
	}
	if b1+b2 > s {
		return 0
	}
	if b1+b2 > n {
		return 0
	}
	if b1 == 0 || b2 == 0 {
		return 1
	}
	return math.Exp(lnChoose(n-b1, b2) - lnChoose(n, b2))
}

// Mesh returns the probability that two blocks with b1 and b2 objects can
// be compacted under Mesh's offset-conflict rule: IDs are the s possible
// slot offsets.
func Mesh(s, b1, b2 int) float64 {
	return NoCollision(s, s, b1, b2)
}

// CoRM returns the probability that two blocks compact under CoRM with
// idBits-bit random object identifiers and slot capacity s. Blocks whose
// capacity exceeds the ID space cannot be managed by CoRM-idBits at all
// (§4.4.1), so the probability is 0.
func CoRM(idBits, s, b1, b2 int) float64 {
	n := 1 << idBits
	if s > n {
		return 0
	}
	return NoCollision(n, s, b1, b2)
}

// BlocksAtOccupancy converts an occupancy fraction to an object count for a
// block holding s slots, rounding to nearest.
func BlocksAtOccupancy(s int, occ float64) int {
	return int(occ*float64(s) + 0.5)
}

// Point is one Fig 7 sample.
type Point struct {
	ObjectSize int
	Occupancy  float64
	Mesh       float64
	CoRM8      float64
	CoRM16     float64
}

// Figure7 reproduces the paper's Fig 7 grid: 4 KiB blocks, object sizes
// 16–256 B (powers of two), occupancies 12.5–50 %.
func Figure7() []Point {
	var out []Point
	for _, occ := range []float64{0.125, 0.25, 0.375, 0.5} {
		for size := 16; size <= 256; size *= 2 {
			s := 4096 / size
			b := BlocksAtOccupancy(s, occ)
			out = append(out, Point{
				ObjectSize: size,
				Occupancy:  occ,
				Mesh:       Mesh(s, b, b),
				CoRM8:      CoRM(8, s, b, b),
				CoRM16:     CoRM(16, s, b, b),
			})
		}
	}
	return out
}
