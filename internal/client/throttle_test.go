package client

import (
	"testing"
	"time"
)

// TestTokenBucketRefill steps a fake clock to pin the accrual math: burst
// drains immediately, tokens return at exactly the configured rate, and the
// balance never exceeds burst.
func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewTokenBucket(10, 5).withClock(func() time.Time { return now })

	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("burst op %d rejected", i)
		}
	}
	if b.Allow() {
		t.Fatal("op beyond burst admitted with no time elapsed")
	}
	// 100ms at 10/s accrues exactly one token.
	now = now.Add(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("op rejected after one token accrued")
	}
	if b.Allow() {
		t.Fatal("second op admitted on one accrued token")
	}
	// A long idle period caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("post-idle op %d rejected (burst should be refilled)", i)
		}
	}
	if b.Allow() {
		t.Fatal("idle credit exceeded burst")
	}
}

// TestTokenBucketUnlimited: nil buckets and non-positive rates admit all.
func TestTokenBucketUnlimited(t *testing.T) {
	var nilBucket *TokenBucket
	if !nilBucket.Allow() {
		t.Fatal("nil bucket rejected")
	}
	b := NewTokenBucket(0, 1)
	for i := 0; i < 1000; i++ {
		if !b.Allow() {
			t.Fatalf("unlimited bucket rejected op %d", i)
		}
	}
}

// TestTokenBucketSetRate retunes a bucket on the fly without resetting the
// accrued balance.
func TestTokenBucketSetRate(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewTokenBucket(1, 1).withClock(func() time.Time { return now })
	if !b.Allow() {
		t.Fatal("initial token rejected")
	}
	if b.Allow() {
		t.Fatal("empty bucket admitted")
	}
	b.SetRate(100, 10)
	now = now.Add(100 * time.Millisecond) // 10 tokens at the new rate
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("retuned op %d rejected", i)
		}
	}
	if b.Allow() {
		t.Fatal("retuned bucket over-admitted")
	}
}
