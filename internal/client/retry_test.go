package client

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"corm/internal/core"
	"corm/internal/fault"
	"corm/internal/rpc"
	"corm/internal/timing"
	"corm/internal/transport"
)

func newRetryServer(t *testing.T) (*rpc.Server, *transport.Server) {
	t.Helper()
	store, err := core.NewStore(core.Config{
		Workers: 2, Strategy: core.StrategyCoRM, DataBacked: true,
		Remap: core.RemapODPPrefetch,
		Model: timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ts, err := transport.Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	return srv, ts
}

func fastOpts() transport.Options {
	return transport.Options{
		CallTimeout:    2 * time.Second,
		RedialAttempts: 3,
		RedialBase:     time.Millisecond,
		RedialMax:      10 * time.Millisecond,
		Seed:           1,
	}
}

// TestReadRetriesAcrossConnReset: an injected mid-frame reset on the RPC
// channel is invisible to Read — the context re-issues the idempotent
// request over a re-dialed channel.
func TestReadRetriesAcrossConnReset(t *testing.T) {
	_, ts := newRetryServer(t)
	inj := fault.NewInjector(21, fault.Plan{})
	opts := fastOpts()
	opts.Dialer = inj.Dial
	ctx, err := CreateCtxOptions(ts.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	addr, err := ctx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5A}, 64)
	if err := ctx.Write(&addr, want); err != nil {
		t.Fatal(err)
	}

	// Arm a reset for the next write op on the (already dialed) RPC
	// channel and disarm as soon as it fires, so exactly one request frame
	// is lost; the client's backed-off re-issue lands after the disarm.
	inj.SetPlan(fault.Plan{ResetAfterWrites: 1})
	go func() {
		for inj.Stats().Resets == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		inj.SetPlan(fault.Plan{})
	}()

	buf := make([]byte, 64)
	n, err := ctx.Read(&addr, buf)
	if err != nil {
		t.Fatalf("read across reset failed: %v", err)
	}
	if n != 64 || !bytes.Equal(buf, want) {
		t.Fatalf("read returned wrong data after retry")
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("scenario fired no reset — test exercised nothing")
	}
}

// TestWriteIsNotRetried: non-idempotent operations surface the typed error
// instead of being silently re-issued.
func TestWriteIsNotRetried(t *testing.T) {
	_, ts := newRetryServer(t)
	inj := fault.NewInjector(23, fault.Plan{})
	opts := fastOpts()
	opts.Dialer = inj.Dial
	ctx, err := CreateCtxOptions(ts.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	addr, err := ctx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	inj.SetPlan(fault.Plan{ResetAfterWrites: 1})
	err = ctx.Write(&addr, bytes.Repeat([]byte{1}, 64))
	if !errors.Is(err, transport.ErrConnBroken) {
		t.Fatalf("write during reset = %v, want ErrConnBroken surfaced", err)
	}
}

// TestDirectReadAutoReconnectsQP: a QP break (fabric event) is repaired
// transparently — DirectRead re-establishes the DMA channel itself instead
// of pushing ReconnectDMA onto every caller.
func TestDirectReadAutoReconnectsQP(t *testing.T) {
	srv, ts := newRetryServer(t)
	ctx, err := CreateCtxOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	addr, err := ctx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x3C}, 64)
	if err := ctx.Write(&addr, want); err != nil {
		t.Fatal(err)
	}

	inj := fault.NewInjector(25, fault.Plan{})
	inj.BreakQPs(srv.Store().NIC())

	buf := make([]byte, 64)
	n, err := ctx.DirectRead(&addr, buf)
	if err != nil {
		t.Fatalf("direct read across QP break failed: %v", err)
	}
	if n != 64 || !bytes.Equal(buf, want) {
		t.Fatal("direct read returned wrong data after QP repair")
	}
}

// TestLocalBackendAutoReconnectsQP: the in-process backend heals its
// simulated QP the same way.
func TestLocalBackendAutoReconnectsQP(t *testing.T) {
	srv, _ := newRetryServer(t)
	ctx, err := NewLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	addr, err := ctx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x77}, 64)
	if err := ctx.Write(&addr, want); err != nil {
		t.Fatal(err)
	}
	srv.Store().NIC().BreakAllQPs()
	buf := make([]byte, 64)
	if _, err := ctx.DirectRead(&addr, buf); err != nil {
		t.Fatalf("local direct read across QP break failed: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("local direct read returned wrong data after QP repair")
	}
}

// TestInfoProbe: Info is exported, idempotent, and usable as a liveness
// probe.
func TestInfoProbe(t *testing.T) {
	_, ts := newRetryServer(t)
	ctx, err := CreateCtxOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	info, err := ctx.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.BlockBytes == 0 || len(info.Classes) == 0 {
		t.Fatalf("info = %+v, want populated parameters", info)
	}
}
