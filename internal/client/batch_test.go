package client

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corm/internal/core"
	"corm/internal/fault"
	"corm/internal/rpc"
	"corm/internal/transport"
)

// putN allocates and writes n distinct 64-byte objects.
func putN(t *testing.T, ctx *Ctx, n int) ([]*core.Addr, [][]byte) {
	t.Helper()
	addrs := make([]*core.Addr, n)
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		a, err := ctx.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = bytes.Repeat([]byte{byte(i + 1)}, 64)
		if err := ctx.Write(&a, want[i]); err != nil {
			t.Fatal(err)
		}
		addrs[i] = &a
	}
	return addrs, want
}

// TestMultiReadRoundtrip: a MultiRead returns every object's payload in
// input order, over both backends.
func TestMultiReadRoundtrip(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		const n = 16
		addrs, want := putN(t, ctx, n)
		bufs := make([][]byte, n)
		for i := range bufs {
			bufs[i] = make([]byte, 64)
		}
		results, err := ctx.MultiRead(addrs, bufs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("sub %d: %v", i, r.Err)
			}
			if r.N != 64 || !bytes.Equal(bufs[i], want[i]) {
				t.Fatalf("sub %d: n=%d payload mismatch", i, r.N)
			}
		}
		// Empty batches never touch the wire.
		if rs, err := ctx.MultiRead(nil, nil); err != nil || rs != nil {
			t.Fatalf("empty batch: %v %v", rs, err)
		}
	})
}

// TestMultiReadCorrectsPointers: compaction moves objects between a write
// and a batched read; every sub-read still lands and folds the corrected
// pointer (with FlagIndirectObserved) into the caller's copy.
func TestMultiReadCorrectsPointers(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		const n = 24
		addrs, want := putN(t, ctx, n)
		// Fragment: free every other object, then compact the class.
		for i := 1; i < n; i += 2 {
			if err := ctx.Free(addrs[i]); err != nil {
				t.Fatal(err)
			}
		}
		store.CompactClass(core.CompactOptions{Class: store.Allocator().Config().ClassFor(64), Leader: 0, MaxOccupancy: core.Occ(1.0)})
		var live []*core.Addr
		var liveWant [][]byte
		for i := 0; i < n; i += 2 {
			live = append(live, addrs[i])
			liveWant = append(liveWant, want[i])
		}
		bufs := make([][]byte, len(live))
		for i := range bufs {
			bufs[i] = make([]byte, 64)
		}
		results, err := ctx.MultiRead(live, bufs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("sub %d: %v", i, r.Err)
			}
			if !bytes.Equal(bufs[i], liveWant[i]) {
				t.Fatalf("sub %d: payload mismatch after compaction", i)
			}
		}
		// Re-read through the (possibly corrected) pointers one at a time to
		// prove the corrections were folded back into the callers' copies.
		for i, a := range live {
			buf := make([]byte, 64)
			if _, err := ctx.Read(a, buf); err != nil || !bytes.Equal(buf, liveWant[i]) {
				t.Fatalf("re-read %d: %v", i, err)
			}
		}
	})
}

// TestMultiWriteMixedFailures: a freed pointer among valid ones fails only
// its own sub-op.
func TestMultiWriteMixedFailures(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		addrs, _ := putN(t, ctx, 3)
		if err := ctx.Free(addrs[1]); err != nil {
			t.Fatal(err)
		}
		payloads := [][]byte{
			bytes.Repeat([]byte{0xA1}, 64),
			bytes.Repeat([]byte{0xA2}, 64),
			bytes.Repeat([]byte{0xA3}, 64),
		}
		results, err := ctx.MultiWrite(addrs, payloads)
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err != nil || results[2].Err != nil {
			t.Fatalf("valid writes failed: %v %v", results[0].Err, results[2].Err)
		}
		if !errors.Is(results[1].Err, core.ErrNotFound) {
			t.Fatalf("freed write: want ErrNotFound, got %v", results[1].Err)
		}
	})
}

// TestMultiAllocFree: a batched alloc yields distinct usable pointers; a
// batched free releases them all.
func TestMultiAllocFree(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		sizes := make([]int, 20)
		for i := range sizes {
			sizes[i] = 64
		}
		rs, err := ctx.MultiAlloc(sizes)
		if err != nil {
			t.Fatal(err)
		}
		addrs := make([]*core.Addr, len(rs))
		for i := range rs {
			if rs[i].Err != nil {
				t.Fatalf("alloc %d: %v", i, rs[i].Err)
			}
			addrs[i] = &rs[i].Addr
		}
		frees, err := ctx.MultiFree(addrs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range frees {
			if r.Err != nil {
				t.Fatalf("free %d: %v", i, r.Err)
			}
		}
		// Freed pointers now read as not-found.
		bufs := make([][]byte, len(addrs))
		for i := range bufs {
			bufs[i] = make([]byte, 64)
		}
		reads, err := ctx.MultiRead(addrs, bufs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reads {
			if !errors.Is(r.Err, core.ErrNotFound) {
				t.Fatalf("read-after-free %d: want ErrNotFound, got %v", i, r.Err)
			}
		}
	})
}

// TestBatchOversizedFrame: a batch whose frame exceeds the transport limit
// fails cleanly with ErrFrameTooLarge — before touching the wire, leaving
// the channel healthy for the next (sane) call.
func TestBatchOversizedFrame(t *testing.T) {
	_, ts := newRetryServer(t)
	ctx, err := CreateCtxOptions(ts.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	a, err := ctx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}

	// 5 sub-writes of 2 MiB each: 10 MiB batch > the 8 MiB frame cap.
	huge := make([]byte, 2<<20)
	addrs := make([]*core.Addr, 5)
	payloads := make([][]byte, 5)
	for i := range addrs {
		aa := a
		addrs[i] = &aa
		payloads[i] = huge
	}
	if _, err := ctx.MultiWrite(addrs, payloads); !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}

	// The channel survived: a normal operation still works.
	buf := make([]byte, 64)
	if _, err := ctx.Read(&a, buf); err != nil {
		t.Fatalf("read after oversized batch: %v", err)
	}
}

// TestMultiReadRetriesAcrossConnReset: an injected mid-batch connection
// reset is invisible to MultiRead — the idempotent batch is re-issued over
// a re-dialed channel.
func TestMultiReadRetriesAcrossConnReset(t *testing.T) {
	_, ts := newRetryServer(t)
	inj := fault.NewInjector(33, fault.Plan{})
	opts := fastOpts()
	opts.Dialer = inj.Dial
	ctx, err := CreateCtxOptions(ts.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	addrs, want := putN(t, ctx, 8)
	// Arm a reset for the next write on the dialed RPC channel and disarm
	// as soon as it fires, so exactly one batch frame is lost; the
	// client's backed-off re-issue lands after the disarm.
	inj.SetPlan(fault.Plan{ResetAfterWrites: 1})
	go func() {
		for inj.Stats().Resets == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		inj.SetPlan(fault.Plan{})
	}()

	bufs := make([][]byte, len(addrs))
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	results, err := ctx.MultiRead(addrs, bufs)
	if err != nil {
		t.Fatalf("MultiRead across reset: %v", err)
	}
	for i, r := range results {
		if r.Err != nil || !bytes.Equal(bufs[i], want[i]) {
			t.Fatalf("sub %d after reset: %v", i, r.Err)
		}
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("fault never fired; test proved nothing")
	}
}

// TestMultiWriteSurfacesConnBroken: writes are never re-issued — a
// mid-batch connection fault surfaces as ErrConnBroken to the caller.
func TestMultiWriteSurfacesConnBroken(t *testing.T) {
	_, ts := newRetryServer(t)
	inj := fault.NewInjector(34, fault.Plan{})
	opts := fastOpts()
	opts.Dialer = inj.Dial
	ctx, err := CreateCtxOptions(ts.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	addrs, _ := putN(t, ctx, 4)
	inj.SetPlan(fault.Plan{ResetAfterWrites: 1})
	payloads := make([][]byte, len(addrs))
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{0xEE}, 64)
	}
	if _, err := ctx.MultiWrite(addrs, payloads); !errors.Is(err, transport.ErrConnBroken) {
		t.Fatalf("want ErrConnBroken, got %v", err)
	}
	if inj.Stats().Resets == 0 {
		t.Fatal("fault never fired; test proved nothing")
	}
}

// countingBackend wraps a Backend and counts OpBatch calls, to prove that
// asynchronous reads coalesce.
type countingBackend struct {
	Backend
	batches atomic.Int64
	subs    atomic.Int64
}

func (cb *countingBackend) Call(req rpc.Request) (rpc.Response, error) {
	if req.Op == rpc.OpBatch {
		cb.batches.Add(1)
		if subs, err := rpc.DecodeBatchRequests(req.Payload, nil); err == nil {
			cb.subs.Add(int64(len(subs)))
		}
	}
	return cb.Backend.Call(req)
}

// TestReadAsyncCoalesces: futures issued back-to-back resolve correctly
// and ride far fewer OpBatch round trips than there are reads.
func TestReadAsyncCoalesces(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	inner, err := NewLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{Backend: inner.backend}
	ctx := inner
	ctx.backend = cb
	t.Cleanup(func() { ctx.Close() })
	ctx.AsyncWindow = 2 * time.Millisecond
	ctx.AsyncMaxBatch = 64

	const n = 32
	addrs, want := putN(t, ctx, n)
	bufs := make([][]byte, n)
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 64)
		futs[i] = ctx.ReadAsync(addrs[i], bufs[i])
	}
	for i, f := range futs {
		nn, err := f.Wait()
		if err != nil || nn != 64 {
			t.Fatalf("future %d: n=%d err=%v", i, nn, err)
		}
		if !bytes.Equal(bufs[i], want[i]) {
			t.Fatalf("future %d: payload mismatch", i)
		}
	}
	if got := cb.subs.Load(); got != n {
		t.Fatalf("%d sub-reads dispatched, want %d", got, n)
	}
	if got := cb.batches.Load(); got >= n/2 {
		t.Fatalf("%d batches for %d reads: no coalescing", got, n)
	}
}

// TestReadAsyncMaxBatchFlush: hitting AsyncMaxBatch flushes immediately,
// without waiting for the window.
func TestReadAsyncMaxBatchFlush(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ctx, err := NewLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	ctx.AsyncWindow = time.Hour // only a full batch can flush
	ctx.AsyncMaxBatch = 4

	addrs, want := putN(t, ctx, 4)
	bufs := make([][]byte, 4)
	futs := make([]*Future, 4)
	for i := range addrs {
		bufs[i] = make([]byte, 64)
		futs[i] = ctx.ReadAsync(addrs[i], bufs[i])
	}
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		for _, f := range futs {
			f.Wait()
		}
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("full batch did not flush without the window timer")
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i], want[i]) {
			t.Fatalf("future %d: payload mismatch", i)
		}
	}
}

// TestReadAsyncConcurrent: many goroutines issuing async reads against one
// context race the batcher's flush paths (window, max-batch, Flush) —
// run under -race this is the batcher's memory-safety proof.
func TestReadAsyncConcurrent(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ctx, err := NewLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	ctx.AsyncWindow = 100 * time.Microsecond
	ctx.AsyncMaxBatch = 8

	addrs, want := putN(t, ctx, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 50; i++ {
				k := (g + i) % len(addrs)
				a := *addrs[k] // private pointer copy per read
				f := ctx.ReadAsync(&a, buf)
				if i%10 == 0 {
					ctx.Flush()
				}
				if n, err := f.Wait(); err != nil || n != 64 {
					t.Errorf("g%d i%d: n=%d err=%v", g, i, n, err)
					return
				}
				if !bytes.Equal(buf, want[k]) {
					t.Errorf("g%d i%d: payload mismatch", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
