package client

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"corm/internal/core"
	"corm/internal/rpc"
)

func u64le(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// counterObj allocates a zeroed object of the given size.
func counterObj(t *testing.T, ctx *Ctx, size int) core.Addr {
	t.Helper()
	a, err := ctx.Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Write(&a, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFetchAddAndCAS(t *testing.T) {
	eachBackend(t, func(t *testing.T, _ *core.Store, ctx *Ctx) {
		a := counterObj(t, ctx, 16)

		old, err := ctx.FetchAdd(&a, 0, 5)
		if err != nil || old != 0 {
			t.Fatalf("first add: %d %v", old, err)
		}
		old, err = ctx.FetchAdd(&a, 0, -2)
		if err != nil || old != 5 {
			t.Fatalf("second add: %d %v", old, err)
		}

		// CAS success, then conflict against the changed bytes.
		if err := ctx.CAS(&a, 0, u64le(3), u64le(99)); err != nil {
			t.Fatalf("cas: %v", err)
		}
		err = ctx.CAS(&a, 0, u64le(3), u64le(1))
		if !errors.Is(err, core.ErrConflict) {
			t.Fatalf("cas conflict: %v", err)
		}
		buf := make([]byte, 8)
		if _, err := ctx.Read(&a, buf); err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint64(buf); v != 99 {
			t.Fatalf("counter = %d, want 99", v)
		}

		// Out-of-range offsets are rejected, never silently clamped.
		if _, err := ctx.FetchAdd(&a, 1<<16, 1); err == nil {
			t.Fatal("oob fetchadd succeeded")
		}
	})
}

func TestPutIfAndPutIfAbsent(t *testing.T) {
	eachBackend(t, func(t *testing.T, _ *core.Store, ctx *Ctx) {
		a, err := ctx.Alloc(16)
		if err != nil {
			t.Fatal(err)
		}

		// First-writer-wins initialization.
		ver, err := ctx.PutIfAbsent(&a, []byte("first"))
		if err != nil {
			t.Fatalf("if-absent: %v", err)
		}
		if _, err := ctx.PutIfAbsent(&a, []byte("second")); !errors.Is(err, core.ErrConflict) {
			t.Fatalf("second if-absent: %v", err)
		}

		// Optimistic write chain: each PutIf seeds the next version.
		ver2, err := ctx.PutIf(&a, ver, []byte("update-1"))
		if err != nil || ver2 != ver+1 {
			t.Fatalf("putif: ver=%d err=%v", ver2, err)
		}
		// Stale version: conflict, and the observed version is returned.
		obs, err := ctx.PutIf(&a, ver, []byte("stale"))
		if !errors.Is(err, core.ErrConflict) || obs != ver2 {
			t.Fatalf("stale putif: obs=%d err=%v", obs, err)
		}
		buf := make([]byte, 8)
		if _, err := ctx.Read(&a, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, []byte("update-1")) {
			t.Fatalf("payload %q after rejected stale write", buf)
		}
	})
}

func TestScanWhere(t *testing.T) {
	eachBackend(t, func(t *testing.T, _ *core.Store, ctx *Ctx) {
		var class int
		for i := 1; i <= 10; i++ {
			a, err := ctx.Alloc(16)
			if err != nil {
				t.Fatal(err)
			}
			if err := ctx.Write(&a, u64le(uint64(i*10))); err != nil {
				t.Fatal(err)
			}
			class = int(a.Class())
		}
		matches, err := ctx.ScanWhere(class, rpc.PredGtU64, 0, u64le(70), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 3 { // 80, 90, 100
			t.Fatalf("got %d matches, want 3", len(matches))
		}
		for _, m := range matches {
			if v := binary.LittleEndian.Uint64(m.Payload); v <= 70 {
				t.Fatalf("match %d violates predicate", v)
			}
			if m.Addr.IsZero() {
				t.Fatal("match carries no pointer")
			}
		}
		// Limit clamps the result.
		matches, err = ctx.ScanWhere(class, rpc.PredGtU64, 0, u64le(0), 2)
		if err != nil || len(matches) != 2 {
			t.Fatalf("limited scan: %d %v", len(matches), err)
		}
	})
}

func TestRMWMixedBatch(t *testing.T) {
	eachBackend(t, func(t *testing.T, _ *core.Store, ctx *Ctx) {
		c1 := counterObj(t, ctx, 16)
		c2 := counterObj(t, ctx, 16)
		c3, err := ctx.Alloc(16)
		if err != nil {
			t.Fatal(err)
		}

		ops := []RMWOp{
			{Kind: RMWFetchAdd, Addr: &c1, Offset: 0, Delta: 7},
			{Kind: RMWCas, Addr: &c2, Offset: 0, Old: u64le(0), New: u64le(11)},
			{Kind: RMWCondWrite, Addr: &c3, Mode: rpc.CondIfAbsent, Value: []byte("init")},
			{Kind: RMWCas, Addr: &c2, Offset: 0, Old: u64le(999), New: u64le(1)}, // loses
		}
		results, err := ctx.RMW(ops)
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err != nil || results[0].Old != 0 {
			t.Fatalf("rmw fetchadd: %+v", results[0])
		}
		if results[1].Err != nil {
			t.Fatalf("rmw cas: %v", results[1].Err)
		}
		if results[2].Err != nil || results[2].Version == 0 {
			t.Fatalf("rmw condwrite: %+v", results[2])
		}
		if !errors.Is(results[3].Err, core.ErrConflict) {
			t.Fatalf("losing cas: %v", results[3].Err)
		}

		// Batch-level validation.
		if _, err := ctx.RMW([]RMWOp{{Kind: 77, Addr: &c1}}); err == nil {
			t.Fatal("unknown kind accepted")
		}
		if _, err := ctx.RMW([]RMWOp{{Kind: RMWCas}}); err == nil {
			t.Fatal("nil addr accepted")
		}
		if res, err := ctx.RMW(nil); err != nil || res != nil {
			t.Fatalf("empty batch: %v %v", res, err)
		}
	})
}

func TestMultiFetchAdd(t *testing.T) {
	eachBackend(t, func(t *testing.T, _ *core.Store, ctx *Ctx) {
		// 64 ops: large enough that the server shards the MultiRMW batch
		// across idle worker tokens.
		addrs := make([]*core.Addr, 64)
		for i := range addrs {
			a := counterObj(t, ctx, 16)
			addrs[i] = &a
		}
		results, err := ctx.MultiFetchAdd(addrs, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil || r.Old != 0 {
				t.Fatalf("op %d: %+v", i, r)
			}
		}
		results, err = ctx.MultiFetchAdd(addrs, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil || r.Old != 3 {
				t.Fatalf("second pass op %d: %+v", i, r)
			}
		}
	})
}

func TestFetchAddAsync(t *testing.T) {
	eachBackend(t, func(t *testing.T, _ *core.Store, ctx *Ctx) {
		a := counterObj(t, ctx, 16)
		const n = 100
		futs := make([]*AtomicFuture, n)
		addrs := make([]core.Addr, n)
		for i := range futs {
			addrs[i] = a
			futs[i] = ctx.FetchAddAsync(&addrs[i], 0, 1)
		}
		ctx.Flush()
		seen := make(map[uint64]bool)
		for i, f := range futs {
			old, err := f.Wait()
			if err != nil {
				t.Fatalf("future %d: %v", i, err)
			}
			if seen[old] {
				t.Fatalf("pre-add value %d observed twice — increments not atomic", old)
			}
			seen[old] = true
		}
		final, err := ctx.FetchAdd(&a, 0, 0)
		if err != nil || final != n {
			t.Fatalf("final counter %d, want %d", final, n)
		}
	})
}

func TestWriteAsync(t *testing.T) {
	eachBackend(t, func(t *testing.T, _ *core.Store, ctx *Ctx) {
		a := counterObj(t, ctx, 16)
		fut := ctx.WriteAsync(&a, []byte("async-write"))
		ctx.Flush()
		if _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 11)
		if _, err := ctx.Read(&a, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, []byte("async-write")) {
			t.Fatalf("read back %q", buf)
		}
	})
}

// TestPushdownSurvivesCompaction: pushdown atomics against objects that a
// compaction pass relocates keep working and fold the corrected pointer
// into the caller's copy.
func TestPushdownSurvivesCompaction(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		// Fragment the class so compaction relocates survivors.
		var addrs []core.Addr
		for i := 0; i < 256; i++ {
			a := counterObj(t, ctx, 16)
			addrs = append(addrs, a)
		}
		for i := range addrs {
			if i%2 == 1 {
				if err := ctx.Free(&addrs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		a := addrs[0]
		if _, err := ctx.FetchAdd(&a, 0, 41); err != nil {
			t.Fatal(err)
		}
		store.CompactClass(core.CompactOptions{Class: int(a.Class()), Leader: 0, MaxOccupancy: core.Occ(1.0)})
		old, err := ctx.FetchAdd(&a, 0, 1)
		if err != nil || old != 41 {
			t.Fatalf("post-compaction fetchadd: %d %v", old, err)
		}
	})
}

// TestCloseDrainsAtomicFutures: Close resolves every pending future with
// an error instead of leaving waiters hung.
func TestCloseDrainsAtomicFutures(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ctx, err := NewLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	a := counterObj(t, ctx, 16)
	futs := []*AtomicFuture{
		ctx.FetchAddAsync(&a, 0, 1),
		ctx.FetchAddAsync(&a, 0, 1),
	}
	wfut := ctx.WriteAsync(&a, []byte("pending"))
	ctx.Close()
	for _, f := range futs {
		if _, err := f.Wait(); err == nil {
			t.Fatal("future resolved OK after Close without a flush")
		}
	}
	if _, err := wfut.Wait(); err == nil {
		t.Fatal("write future resolved OK after Close without a flush")
	}
}

// TestScanReadAfterRelocation: a stale pointer still reads through the
// block-scan fallback, and the pointer comes back corrected.
func TestScanReadAfterRelocation(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		var addrs []core.Addr
		for i := 0; i < 256; i++ {
			a, err := ctx.Alloc(16)
			if err != nil {
				t.Fatal(err)
			}
			if err := ctx.Write(&a, u64le(uint64(i))); err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, a)
		}
		for i := range addrs {
			if i%2 == 1 {
				if err := ctx.Free(&addrs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		stale := addrs[0]
		store.CompactClass(core.CompactOptions{Class: int(stale.Class()), Leader: 0, MaxOccupancy: core.Occ(1.0)})

		if _, err := ctx.ScanRead(&stale, make([]byte, 4)); !errors.Is(err, core.ErrShortBuffer) {
			t.Fatalf("short buffer: %v", err)
		}
		buf := make([]byte, 16)
		if _, err := ctx.SmartRead(&stale, buf); err != nil {
			t.Fatalf("smart read: %v", err)
		}
		if v := binary.LittleEndian.Uint64(buf); v != 0 {
			t.Fatalf("read back %d, want 0", v)
		}
	})
}

func TestNextTokenNeverZero(t *testing.T) {
	c := &Ctx{}
	c.tokenBase = ^uint64(0) // forces the wrap case on the first mint
	for i := 0; i < 3; i++ {
		if c.nextToken() == 0 {
			t.Fatal("minted the reserved zero token")
		}
	}
}
