package client

import "corm/internal/metrics"

// Client-library metrics: retry and fallback counters for the paths whose
// frequency the paper's evaluation turns on (how often the one-sided fast
// path degrades), plus the async batcher's coalescing efficiency.
var (
	clRetries = metrics.Default().Counter("corm_client_rpc_retries_total",
		"idempotent RPCs re-issued across transport reconnects")
	clDMARetries = metrics.Default().Counter("corm_client_dma_retries_total",
		"one-sided reads re-issued after a transport fault or QP repair")
	clQPReconnects = metrics.Default().Counter("corm_client_qp_reconnects_total",
		"broken QPs repaired via ReconnectDMA")
	clScanFallbacks = metrics.Default().Counter("corm_client_scan_fallbacks_total",
		"SmartReads that fell back from DirectRead to ScanRead (§3.2.2)")
	clInconsistentRetries = metrics.Default().Counter("corm_client_inconsistent_retries_total",
		"one-sided reads retried on a torn/locked object (§3.2.3)")
	clAsyncFlushSize = metrics.Default().Histogram("corm_client_async_flush_size",
		"asynchronous reads coalesced per batcher flush")
	clPushdownRetries = metrics.Default().Counter("corm_client_pushdown_retries_total",
		"pushdown ops retried after racing a compaction (corrected pointer)")
)
